(* Tests for TRI-CRIT on chains (R7/R8) and forks (R9): waterfilling
   optimality structure, greedy vs exact, and the fork algorithm. *)

let rel = Rel.make ~lambda0:1e-5 ~sensitivity:3. ~fmin:0.2 ~fmax:1.0 ~frel:0.8 ()
let model = Speed.continuous ~fmin:0.2 ~fmax:1.0

let chain_instance ~seed ~n =
  let rng = Es_util.Rng.create ~seed in
  let dag = Generators.chain rng ~n ~wlo:0.5 ~whi:3. in
  (dag, Mapping.single_processor dag)

(* waterfill *)

let test_waterfill_uniform_no_floors () =
  match
    Tricrit_chain.waterfill ~eff_weights:[| 1.; 2.; 3. |] ~floors:[| 0.; 0.; 0. |]
      ~fmax:1. ~deadline:12.
  with
  | None -> Alcotest.fail "feasible"
  | Some speeds ->
    Array.iter (fun f -> Alcotest.(check (float 1e-9)) "common speed" 0.5 f) speeds

let test_waterfill_floor_clamps () =
  match
    Tricrit_chain.waterfill ~eff_weights:[| 1.; 1. |] ~floors:[| 0.9; 0. |] ~fmax:1.
      ~deadline:20.
  with
  | None -> Alcotest.fail "feasible"
  | Some speeds ->
    Alcotest.(check (float 1e-9)) "clamped at floor" 0.9 speeds.(0);
    Alcotest.(check bool) "other one slow" true (speeds.(1) < 0.9)

let test_waterfill_deadline_tight () =
  match
    Tricrit_chain.waterfill ~eff_weights:[| 2.; 2. |] ~floors:[| 0.; 0. |] ~fmax:1.
      ~deadline:4.
  with
  | None -> Alcotest.fail "feasible exactly at fmax"
  | Some speeds -> Array.iter (fun f -> Alcotest.(check (float 1e-6)) "at fmax" 1. f) speeds

let test_waterfill_infeasible () =
  Alcotest.(check bool) "over capacity" true
    (Tricrit_chain.waterfill ~eff_weights:[| 2.; 2. |] ~floors:[| 0.; 0. |] ~fmax:1.
       ~deadline:3.9
    = None)

let test_waterfill_time_exhausted_or_floors () =
  (* ported onto the Es_check waterfilling oracle, which checks the
     full KKT structure: bounds, common water level above the floors,
     and deadline saturation unless every task is floor-clamped *)
  let eff_weights = [| 1.; 2.; 1.5 |] and floors = [| 0.4; 0.3; 0.5 |] in
  match Tricrit_chain.waterfill ~eff_weights ~floors ~fmax:1. ~deadline:9. with
  | None -> Alcotest.fail "feasible"
  | Some speeds ->
    let verdict =
      Es_check.Kkt.check_waterfill ~tol:1e-6 ~eff_weights ~floors ~fmax:1. ~deadline:9.
        ~speeds
    in
    Alcotest.(check bool) (Es_check.Kkt.describe verdict) true (Es_check.Kkt.is_ok verdict)

(* chain solvers *)

let count_reexec sol =
  Array.fold_left (fun a b -> if b then a + 1 else a) 0 sol.Tricrit_chain.reexecuted

let test_chain_no_reexec_at_tight_deadline () =
  let _, m = chain_instance ~seed:81 ~n:8 in
  let dmin = Dag.total_weight (Mapping.dag m) in
  match Tricrit_chain.solve_exact ?max_n:None ~rel ~deadline:dmin m with
  | None -> Alcotest.fail "feasible"
  | Some sol -> Alcotest.(check int) "no slack, no re-execution" 0 (count_reexec sol)

let test_chain_reexec_appears_with_slack () =
  let _, m = chain_instance ~seed:82 ~n:8 in
  let dmin = Dag.total_weight (Mapping.dag m) in
  match Tricrit_chain.solve_exact ?max_n:None ~rel ~deadline:(4. *. dmin) m with
  | None -> Alcotest.fail "feasible"
  | Some sol -> Alcotest.(check bool) "re-executions used" true (count_reexec sol > 0)

let test_chain_exact_beats_baseline () =
  let _, m = chain_instance ~seed:83 ~n:8 in
  let dmin = Dag.total_weight (Mapping.dag m) in
  let deadline = 3. *. dmin in
  match
    ( Tricrit_chain.solve_exact ?max_n:None ~rel ~deadline m,
      Tricrit_chain.no_reexecution ~rel ~deadline m )
  with
  | Some e, Some b ->
    Alcotest.(check bool) "exact <= baseline" true
      (e.Tricrit_chain.energy <= b.Tricrit_chain.energy +. 1e-9)
  | _ -> Alcotest.fail "both feasible"

let test_chain_greedy_close_to_exact () =
  List.iter
    (fun seed ->
      let _, m = chain_instance ~seed ~n:9 in
      let dmin = Dag.total_weight (Mapping.dag m) in
      List.iter
        (fun slack ->
          let deadline = slack *. dmin in
          match
            ( Tricrit_chain.solve_exact ?max_n:None ~rel ~deadline m,
              Tricrit_chain.solve_greedy ~rel ~deadline m )
          with
          | Some e, Some g ->
            Alcotest.(check bool)
              (Printf.sprintf "greedy within 2%% (slack %.1f)" slack)
              true
              (g.Tricrit_chain.energy <= e.Tricrit_chain.energy *. 1.02)
          | None, None -> ()
          | _ -> Alcotest.fail "feasibility disagreement")
        [ 1.2; 2.; 3.5 ])
    [ 84; 85 ]

let test_chain_schedules_validate () =
  let _, m = chain_instance ~seed:86 ~n:8 in
  let dmin = Dag.total_weight (Mapping.dag m) in
  List.iter
    (fun slack ->
      let deadline = slack *. dmin in
      List.iter
        (fun sol ->
          match sol with
          | None -> ()
          | Some (s : Tricrit_chain.solution) ->
            Alcotest.(check bool) "validator accepts" true
              (Validate.is_feasible ~deadline ~rel ~model s.schedule))
        [
          Tricrit_chain.solve_greedy ~rel ~deadline m;
          Tricrit_chain.no_reexecution ~rel ~deadline m;
        ])
    [ 1.0; 1.5; 2.5; 4. ]

let test_chain_infeasible_deadline () =
  let _, m = chain_instance ~seed:87 ~n:5 in
  let dmin = Dag.total_weight (Mapping.dag m) in
  Alcotest.(check bool) "below fmax capacity" true
    (Tricrit_chain.solve_greedy ~rel ~deadline:(0.9 *. dmin) m = None)

let test_chain_energy_monotone_in_deadline () =
  let _, m = chain_instance ~seed:88 ~n:8 in
  let dmin = Dag.total_weight (Mapping.dag m) in
  let energies =
    List.filter_map
      (fun slack ->
        Option.map (fun (s : Tricrit_chain.solution) -> s.energy)
          (Tricrit_chain.solve_greedy ~rel ~deadline:(slack *. dmin) m))
      [ 1.0; 1.4; 2.0; 3.0; 4.5 ]
  in
  let rec non_increasing = function
    | a :: (b :: _ as rest) -> b <= a +. 1e-9 && non_increasing rest
    | _ -> true
  in
  Alcotest.(check int) "all feasible" 5 (List.length energies);
  Alcotest.(check bool) "monotone" true (non_increasing energies)

let test_chain_respects_max_n () =
  let _, m = chain_instance ~seed:89 ~n:25 in
  Alcotest.(check bool) "guard triggers" true
    (match Tricrit_chain.solve_exact ?max_n:None ~rel ~deadline:100. m with
    | exception Invalid_argument _ -> true
    | _ -> false)

(* equal-speed re-execution optimality: 2D scan over (f1, f2) pairs for
   a single task under a time budget never beats the equal-speed
   choice *)
let test_equal_speed_reexec_optimal () =
  let w = 2. in
  let budget = 12. in
  (* equal speeds: f = max(flo, 2w/budget) *)
  let flo =
    match Rel.min_reexec_speed rel ~w with
    | Some f -> f
    | None -> Alcotest.fail "re-execution speed floor exists"
  in
  let f_eq = Float.max (Float.max flo rel.Rel.fmin) (2. *. w /. budget) in
  let e_eq = 2. *. w *. f_eq *. f_eq in
  let target = Rel.target_failure rel ~w in
  let best_uneq = ref infinity in
  let steps = 60 in
  for i = 0 to steps do
    for j = 0 to steps do
      let f1 = 0.2 +. (0.8 *. float_of_int i /. float_of_int steps) in
      let f2 = 0.2 +. (0.8 *. float_of_int j /. float_of_int steps) in
      let time = (w /. f1) +. (w /. f2) in
      let ok_rel = Rel.reexec_failure rel ~f1 ~f2 ~w <= target *. (1. +. 1e-12) in
      if time <= budget && ok_rel then begin
        let e = (w *. f1 *. f1) +. (w *. f2 *. f2) in
        if e < !best_uneq then best_uneq := e
      end
    done
  done;
  Alcotest.(check bool)
    (Printf.sprintf "equal speeds optimal (%.5f vs grid %.5f)" e_eq !best_uneq)
    true
    (e_eq <= !best_uneq *. (1. +. 1e-2))

(* fork *)

let test_fork_best_in_window_prefers_cheap () =
  (* huge window: re-execution at a low speed wins over single at frel *)
  match Tricrit_fork.best_in_window ~rel ~w:1. ~window:100. with
  | None -> Alcotest.fail "feasible"
  | Some d -> Alcotest.(check bool) "re-executes" true d.Tricrit_fork.reexec

let test_fork_best_in_window_tight () =
  (* window barely fits a single execution at fmax *)
  match Tricrit_fork.best_in_window ~rel ~w:1. ~window:1.01 with
  | None -> Alcotest.fail "feasible"
  | Some d ->
    Alcotest.(check bool) "single" true (not d.Tricrit_fork.reexec);
    Alcotest.(check bool) "fast" true (d.Tricrit_fork.speed >= 0.8)

let test_fork_best_in_window_infeasible () =
  Alcotest.(check bool) "window too small" true
    (Tricrit_fork.best_in_window ~rel ~w:1. ~window:0.5 = None)

let test_fork_solver_feasible () =
  let rng = Es_util.Rng.create ~seed:90 in
  let dag = Generators.fork rng ~n:6 ~wlo:0.5 ~whi:3. in
  let dmin =
    List_sched.makespan_at_speed (Mapping.one_task_per_proc dag) ~f:1.
  in
  List.iter
    (fun slack ->
      let deadline = slack *. dmin in
      match Tricrit_fork.solve ?grid:None ~rel ~deadline dag with
      | None -> Alcotest.failf "feasible at slack %.1f" slack
      | Some sol ->
        Alcotest.(check bool) "validator accepts" true
          (Validate.is_feasible ~deadline ~rel ~model sol.Tricrit_fork.schedule))
    [ 1.05; 1.5; 2.5; 4. ]

let test_fork_beats_or_matches_heuristics () =
  let rng = Es_util.Rng.create ~seed:91 in
  let dag = Generators.fork rng ~n:6 ~wlo:0.5 ~whi:3. in
  let mapping = Mapping.one_task_per_proc dag in
  let dmin = List_sched.makespan_at_speed mapping ~f:1. in
  List.iter
    (fun slack ->
      let deadline = slack *. dmin in
      match (Tricrit_fork.solve ?grid:None ~rel ~deadline dag, Heuristics.best_of ~rel ~deadline mapping) with
      | Some poly, Some (heur, _) ->
        Alcotest.(check bool)
          (Printf.sprintf "poly %.4f <= heuristic %.4f (slack %.1f)"
             poly.Tricrit_fork.energy heur.Heuristics.energy slack)
          true
          (poly.Tricrit_fork.energy <= heur.Heuristics.energy *. (1. +. 1e-3))
      | None, None -> ()
      | _ -> Alcotest.fail "feasibility disagreement")
    [ 1.2; 2.; 3. ]

let test_fork_rejects_non_fork () =
  let chain = Sp.to_dag (Sp.chain [| 1.; 2.; 1. |]) in
  Alcotest.(check bool) "not a fork" true
    (match Tricrit_fork.solve ?grid:None ~rel ~deadline:10. chain with
    | exception Invalid_argument _ -> true
    | _ -> false)

let test_fork_source_window_sane () =
  let rng = Es_util.Rng.create ~seed:92 in
  let dag = Generators.fork rng ~n:4 ~wlo:1. ~whi:2. in
  let deadline = 10. in
  match Tricrit_fork.solve ?grid:None ~rel ~deadline dag with
  | None -> Alcotest.fail "feasible"
  | Some sol ->
    Alcotest.(check bool) "window inside (0, D)" true
      (sol.Tricrit_fork.source_window > 0. && sol.Tricrit_fork.source_window < deadline)

let suite =
  ( "tricrit",
    [
      Alcotest.test_case "waterfill uniform" `Quick test_waterfill_uniform_no_floors;
      Alcotest.test_case "waterfill floor clamps" `Quick test_waterfill_floor_clamps;
      Alcotest.test_case "waterfill deadline tight" `Quick test_waterfill_deadline_tight;
      Alcotest.test_case "waterfill infeasible" `Quick test_waterfill_infeasible;
      Alcotest.test_case "waterfill KKT" `Quick test_waterfill_time_exhausted_or_floors;
      Alcotest.test_case "chain: tight deadline, no re-exec" `Quick
        test_chain_no_reexec_at_tight_deadline;
      Alcotest.test_case "chain: slack brings re-exec" `Quick test_chain_reexec_appears_with_slack;
      Alcotest.test_case "chain: exact beats baseline" `Quick test_chain_exact_beats_baseline;
      Alcotest.test_case "chain: greedy near exact" `Slow test_chain_greedy_close_to_exact;
      Alcotest.test_case "chain: schedules validate" `Quick test_chain_schedules_validate;
      Alcotest.test_case "chain: infeasible deadline" `Quick test_chain_infeasible_deadline;
      Alcotest.test_case "chain: monotone in deadline" `Quick test_chain_energy_monotone_in_deadline;
      Alcotest.test_case "chain: max_n guard" `Quick test_chain_respects_max_n;
      Alcotest.test_case "equal-speed re-exec optimal" `Slow test_equal_speed_reexec_optimal;
      Alcotest.test_case "fork: window prefers cheap" `Quick test_fork_best_in_window_prefers_cheap;
      Alcotest.test_case "fork: tight window" `Quick test_fork_best_in_window_tight;
      Alcotest.test_case "fork: window infeasible" `Quick test_fork_best_in_window_infeasible;
      Alcotest.test_case "fork: solver feasible" `Quick test_fork_solver_feasible;
      Alcotest.test_case "fork: poly <= heuristics" `Slow test_fork_beats_or_matches_heuristics;
      Alcotest.test_case "fork: rejects non-fork" `Quick test_fork_rejects_non_fork;
      Alcotest.test_case "fork: window sane" `Quick test_fork_source_window_sane;
    ] )
