(* Tests for the fault-injection simulator: empirical failure rates
   must match the analytic Eq. (1) quantities, re-execution must absorb
   faults, and the realised timeline must never exceed the worst
   case. *)

(* a large lambda0 so failures are measurable with 10^4..10^5 trials *)
let rel = Rel.make ~lambda0:0.05 ~sensitivity:3. ~fmin:0.2 ~fmax:1.0 ~frel:0.8 ()

let chain_schedule ~speed =
  let rng = Es_util.Rng.create ~seed:101 in
  let d = Generators.chain rng ~n:5 ~wlo:0.5 ~whi:1.5 in
  let m = Mapping.single_processor d in
  Schedule.uniform m ~speed

let test_analytic_failure_matches_formula () =
  let s = chain_schedule ~speed:0.5 in
  let d = Schedule.dag s in
  for i = 0 to Dag.n d - 1 do
    let expected = Rel.failure_prob rel ~f:0.5 ~w:(Dag.weight d i) in
    Alcotest.(check (float 1e-12))
      "analytic" expected
      (Sim.analytic_task_failure ~rel s i)
  done

let test_empirical_matches_analytic () =
  let s = chain_schedule ~speed:0.5 in
  let rng = Es_util.Rng.create ~seed:102 in
  let report = Sim.monte_carlo rng ~rel ~trials:40_000 s in
  let d = Schedule.dag s in
  for i = 0 to Dag.n d - 1 do
    let analytic = Sim.analytic_task_failure ~rel s i in
    let measured = report.Sim.task_failure_rate.(i) in
    Alcotest.(check bool)
      (Printf.sprintf "task %d: |%.4f - %.4f| small" i measured analytic)
      true
      (Float.abs (measured -. analytic) < 0.01)
  done

let test_reexecution_absorbs_faults () =
  let s = chain_schedule ~speed:0.5 in
  let d = Schedule.dag s in
  (* re-execute every task at the same speed *)
  let s2 =
    List.fold_left
      (fun acc i ->
        match Schedule.executions acc i with
        | e :: _ -> Schedule.with_execs acc i [ e; e ]
        | [] -> acc)
      s
      (List.init (Dag.n d) Fun.id)
  in
  let rng = Es_util.Rng.create ~seed:103 in
  let r1 = Sim.monte_carlo rng ~rel ~trials:20_000 s in
  let r2 = Sim.monte_carlo rng ~rel ~trials:20_000 s2 in
  Alcotest.(check bool) "re-execution helps" true
    (r2.Sim.success_rate > r1.Sim.success_rate);
  (* each task failure should drop roughly to eps² *)
  for i = 0 to Dag.n d - 1 do
    Alcotest.(check bool) "squared failure" true
      (r2.Sim.task_failure_rate.(i) <= r1.Sim.task_failure_rate.(i) +. 1e-6)
  done

let test_realised_never_exceeds_worst_case () =
  let s = chain_schedule ~speed:0.5 in
  let d = Schedule.dag s in
  let s2 =
    List.fold_left
      (fun acc i ->
        match Schedule.executions acc i with
        | e :: _ -> Schedule.with_execs acc i [ e; e ]
        | [] -> acc)
      s
      (List.init (Dag.n d) Fun.id)
  in
  let rng = Es_util.Rng.create ~seed:104 in
  let report = Sim.monte_carlo rng ~rel ~trials:5_000 s2 in
  Alcotest.(check bool) "makespan bounded" true
    (report.Sim.max_realised_makespan <= report.Sim.worst_case_makespan +. 1e-9);
  Alcotest.(check bool) "energy bounded" true
    (report.Sim.mean_realised_energy <= report.Sim.worst_case_energy +. 1e-9)

let test_faster_is_more_reliable () =
  let slow = chain_schedule ~speed:0.3 in
  let fast = chain_schedule ~speed:1.0 in
  let rng = Es_util.Rng.create ~seed:105 in
  let rs = Sim.monte_carlo rng ~rel ~trials:20_000 slow in
  let rf = Sim.monte_carlo rng ~rel ~trials:20_000 fast in
  Alcotest.(check bool) "DVFS hurts reliability" true
    (rf.Sim.success_rate > rs.Sim.success_rate)

let test_single_run_consistency () =
  let s = chain_schedule ~speed:1.0 in
  let rng = Es_util.Rng.create ~seed:106 in
  let r = Sim.run rng ~rel s in
  Alcotest.(check bool) "faults consistent with success" true
    ((r.Sim.faults = 0) = (r.Sim.realised_makespan <= Schedule.makespan s +. 1e-9)
    || r.Sim.faults > 0);
  Alcotest.(check bool) "energy positive" true (r.Sim.realised_energy > 0.)

let test_zero_fault_rate () =
  let safe = Rel.make ~lambda0:0. ~sensitivity:3. ~fmin:0.2 ~fmax:1.0 () in
  let s = chain_schedule ~speed:0.5 in
  let rng = Es_util.Rng.create ~seed:107 in
  let report = Sim.monte_carlo rng ~rel:safe ~trials:1_000 s in
  Alcotest.(check (float 1e-12)) "always succeeds" 1. report.Sim.success_rate;
  Alcotest.(check (float 1e-12)) "no faults" 0. report.Sim.mean_faults

let test_deterministic_given_seed () =
  let s = chain_schedule ~speed:0.5 in
  let r1 = Sim.monte_carlo (Es_util.Rng.create ~seed:1) ~rel ~trials:2_000 s in
  let r2 = Sim.monte_carlo (Es_util.Rng.create ~seed:1) ~rel ~trials:2_000 s in
  Alcotest.(check (float 0.)) "same success rate" r1.Sim.success_rate r2.Sim.success_rate;
  Alcotest.(check (float 0.)) "same mean energy" r1.Sim.mean_realised_energy
    r2.Sim.mean_realised_energy

let test_executionless_task_rejected () =
  (* Sim raises Invalid_argument on a task with no attempts; the
     schedule layer upholds the same invariant at construction time,
     so such a schedule cannot even be built through the public API *)
  let s = chain_schedule ~speed:0.5 in
  Alcotest.(check bool) "executionless schedule is unconstructible" true
    (match Schedule.with_execs s 0 [] with
    | exception Invalid_argument _ -> true
    | _ -> false)

let suite =
  ( "sim",
    [
      Alcotest.test_case "analytic failure formula" `Quick test_analytic_failure_matches_formula;
      Alcotest.test_case "empirical matches analytic" `Slow test_empirical_matches_analytic;
      Alcotest.test_case "re-execution absorbs faults" `Slow test_reexecution_absorbs_faults;
      Alcotest.test_case "realised <= worst case" `Quick test_realised_never_exceeds_worst_case;
      Alcotest.test_case "faster is more reliable" `Slow test_faster_is_more_reliable;
      Alcotest.test_case "single run consistency" `Quick test_single_run_consistency;
      Alcotest.test_case "zero fault rate" `Quick test_zero_fault_rate;
      Alcotest.test_case "deterministic given seed" `Quick test_deterministic_given_seed;
      Alcotest.test_case "executionless task rejected" `Quick
        test_executionless_task_rejected;
    ] )
