(* Test entry point: every suite of the reproduction in one runner. *)
let () =
  Alcotest.run "energy_sched"
    [
      Test_util.suite;
      Test_obs.suite;
      Test_par.suite;
      Test_linalg.suite;
      Test_lp.suite;
      Test_numopt.suite;
      Test_dag.suite;
      Test_sp.suite;
      Test_platform.suite;
      Test_rel.suite;
      Test_sched.suite;
      Test_validate.suite;
      Test_sim.suite;
      Test_bicrit.suite;
      Test_vdd.suite;
      Test_discrete.suite;
      Test_tricrit.suite;
      Test_tricrit_vdd.suite;
      Test_heuristics.suite;
      Test_complexity.suite;
      Test_replication.suite;
      Test_pareto.suite;
      Test_extensions.suite;
      Test_extensions2.suite;
      Test_facade.suite;
      Test_check.suite;
      Test_serve.suite;
    ]
