The verification harness lists its relation catalogue:

  $ escheck --list
  lp-cert                  every simplex optimum of the VDD LP carries a valid primal-dual certificate
  lp-warm                  warm-started LP re-optimisation matches cold solves and stays certified
  kkt                      every continuous barrier result satisfies the KKT optimality conditions
  deadline-scaling         doubling the deadline halves continuous speeds and quarters the energy
  work-scaling             doubling all weights doubles continuous speeds and multiplies energy by 8
  model-dominance          E_CONT <= E_VDD <= E_INCR <= E_DISCRETE on a shared speed grid
  closed-form-vs-barrier   the paper's chain/fork/SP closed forms agree with the barrier solver
  simplex-vs-brute         single-processor VDD LP optimum equals the hull closed form W·H(D/W)
  discrete-vs-brute        branch-and-bound DISCRETE optima match exhaustive enumeration
  feasibility              every solver schedule passes Validate.check under its own model

A small seeded run is deterministic, passes, and writes a JSON report:

  $ escheck --seed 1 --trials 5 --out report.json
  escheck: base seed 1, 5 trials per relation
  
    lp-cert                      5 run     5 pass     0 skip     0 fail
    lp-warm                      5 run     5 pass     0 skip     0 fail
    kkt                          5 run     5 pass     0 skip     0 fail
    deadline-scaling             5 run     5 pass     0 skip     0 fail
    work-scaling                 5 run     5 pass     0 skip     0 fail
    model-dominance              5 run     5 pass     0 skip     0 fail
    closed-form-vs-barrier       5 run     5 pass     0 skip     0 fail
    simplex-vs-brute             5 run     5 pass     0 skip     0 fail
    discrete-vs-brute            5 run     5 pass     0 skip     0 fail
    feasibility                  5 run     5 pass     0 skip     0 fail
  
  all relations hold: no counterexample found

  $ grep -c '"ok": true' report.json
  1

Reproducing a single trial with its printed seed is a supported
invocation (this is the command shape escheck prints for
counterexamples):

  $ escheck --relation lp-cert --seed 3 --trials 1 | tail -n 1
  all relations hold: no counterexample found

Unknown relations are rejected with a non-zero exit:

  $ escheck --relation no-such-relation
  escheck: unknown relation(s): no-such-relation (try --list)
  [2]
