The esservd wire protocol: one JSON request per line on stdin, one
JSON response per line on stdout, in request order.  Floats are
clipped to four decimals here for display stability; the full-width
values are pinned by the unit and bench suites.

  $ clip() { sed -E 's/([0-9]+\.[0-9]{4})[0-9]+/\1/g'; }

A cold solve is a cache miss; a byte-identical duplicate sent in a
later batch is answered from the cache.

  $ R='{"id":1,"tasks":[1.0,2.0],"edges":[[0,1]],"model":{"kind":"continuous","fmin":0.1,"fmax":5.0},"deadline":6.0}'
  $ printf '%s\n%s\n' "$R" "$R" | esservd --batch 1 | clip
  {"id":1,"status":"ok","cache":"miss","engine":"continuous convex solve","exact":true,"energy":0.7500,"makespan":5.9999,"speeds":[0.5000,0.5000]}
  {"id":1,"status":"ok","cache":"hit","engine":"continuous convex solve","exact":true,"energy":0.7500,"makespan":5.9999,"speeds":[0.5000,0.5000]}

A uniformly scaled twin (work x2, deadline x1.25) of an already
solved continuous instance is answered by rescaling the cached
optimum: energy follows c^3/d^2, speeds follow c/d.

  $ S='{"id":2,"tasks":[2.0,4.0],"edges":[[0,1]],"model":{"kind":"continuous","fmin":0.1,"fmax":5.0},"deadline":7.5}'
  $ printf '%s\n%s\n' "$R" "$S" | esservd --batch 1 | clip
  {"id":1,"status":"ok","cache":"miss","engine":"continuous convex solve","exact":true,"energy":0.7500,"makespan":5.9999,"speeds":[0.5000,0.5000]}
  {"id":2,"status":"ok","cache":"rescale-hit","engine":"continuous convex solve","exact":true,"energy":3.8400,"makespan":7.4999,"speeds":[0.8000,0.8000]}

Discrete menus go through the branch-and-bound engine and report it.

  $ printf '%s\n' '{"id":5,"tasks":[1.0,2.0],"edges":[[0,1]],"model":{"kind":"discrete","levels":[0.5,1.0,2.0]},"deadline":4.0}' | esservd
  {"id":5,"status":"ok","cache":"miss","engine":"discrete branch-and-bound","exact":true,"energy":2.25,"makespan":4,"speeds":[0.5,1]}

A malformed line yields an error response and the stream continues.

  $ printf '%s\n%s\n' 'not json' "$R" | esservd --batch 1 | clip
  {"id":null,"status":"error","error":"malformed JSON: expected null at offset 0"}
  {"id":1,"status":"ok","cache":"miss","engine":"continuous convex solve","exact":true,"energy":0.7500,"makespan":5.9999,"speeds":[0.5000,0.5000]}

An unmeetable deadline is reported as infeasible, not as an error.

  $ printf '%s\n' '{"id":4,"tasks":[1.0,1.0],"edges":[[0,1]],"model":{"kind":"continuous","fmin":0.5,"fmax":1.0},"deadline":0.5}' | esservd
  {"id":4,"status":"infeasible","cache":"miss","error":"infeasible: the deadline cannot be met under this model"}

Admission control: with a queue of one, the second and third request
of a batch are shed with a retryable status.

  $ printf '%s\n%s\n%s\n' \
  >   '{"id":"a","tasks":[1.0],"model":{"kind":"continuous","fmin":0.1,"fmax":5.0},"deadline":4.0}' \
  >   '{"id":"b","tasks":[2.0],"model":{"kind":"continuous","fmin":0.1,"fmax":5.0},"deadline":4.0}' \
  >   '{"id":"c","tasks":[3.0],"model":{"kind":"continuous","fmin":0.1,"fmax":5.0},"deadline":4.0}' \
  > | esservd --batch 4 --queue 1 | clip
  {"id":"a","status":"ok","cache":"miss","engine":"continuous convex solve","exact":true,"energy":0.0625,"makespan":3.9999,"speeds":[0.2500]}
  {"id":"b","status":"shed","error":"queue full"}
  {"id":"c","status":"shed","error":"queue full"}

The Unix-domain socket transport speaks the same protocol: start a
daemon for a single connection, then drive it with the client mode.

  $ esservd --socket esserv.sock --once &
  $ for i in $(seq 50); do [ -S esserv.sock ] && break; sleep 0.1; done
  $ printf '%s\n' "$R" | esservd --connect esserv.sock | clip
  {"id":1,"status":"ok","cache":"miss","engine":"continuous convex solve","exact":true,"energy":0.7500,"makespan":5.9999,"speeds":[0.5000,0.5000]}
  $ wait
