The experiment sweeps must be byte-identical however many worker
domains run them: every repetition gets its RNG stream by an up-front
`Rng.split` in submission order, and rows are joined in submission
order (lib/par determinism contract).

E1 draws its per-n fork instances from pre-split streams:

  $ experiments e1 --seed 42 --jobs 1 > e1_j1.txt
  $ experiments e1 --seed 42 --jobs 4 > e1_j4.txt
  $ cmp e1_j1.txt e1_j4.txt

E3 seeds one generator per level count (seed + m), repetitions inside
a task stay on that task's stream:

  $ experiments e3 --seed 42 --jobs 1 > e3_j1.txt
  $ experiments e3 --seed 42 --jobs 4 > e3_j4.txt
  $ cmp e3_j1.txt e3_j4.txt

A different seed still agrees across jobs (the contract is per-seed
determinism, not a hard-coded table):

  $ experiments e1 --seed 7 --jobs 1 > s7_j1.txt
  $ experiments e1 --seed 7 --jobs 4 > s7_j4.txt
  $ cmp s7_j1.txt s7_j4.txt
