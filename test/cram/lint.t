The rule catalogue is discoverable from the CLI.

  $ eslint --list-rules
  E001  polymorphic structural comparison or hash (compare, Hashtbl.hash); use a typed comparator: Float.compare, Int.compare, String.compare, List.compare
  E002  partial stdlib function (List.hd, List.tl, List.nth, Option.get, Float.of_string); use a total match or the _opt variant
  E003  catch-all exception handler (with _ -> ... / with e -> ()); match the exceptions you expect and let the rest propagate
  E004  direct printing from library code (print_string, Printf.printf); return a string / use a Buffer, or annotate a render entry point with [@lint.allow "E004"]
  E005  library module without an .mli interface
  E006  unsafe representation escape (Obj.magic, Marshal)

Every rule fires on its fixture, with exact file:line:col diagnostics
and a non-zero exit code.

  $ eslint --rules E001 ../fixtures/lint/e001_poly_compare.ml
  ../fixtures/lint/e001_poly_compare.ml:2:23 [E001] polymorphic structural operation compare; use a typed comparator (Float.compare, Int.compare, String.compare, List.compare, ...)
  ../fixtures/lint/e001_poly_compare.ml:3:26 [E001] polymorphic structural operation compare; use a typed comparator (Float.compare, Int.compare, String.compare, List.compare, ...)
  ../fixtures/lint/e001_poly_compare.ml:4:13 [E001] polymorphic structural operation Hashtbl.hash; use a typed comparator (Float.compare, Int.compare, String.compare, List.compare, ...)
  eslint: 3 finding(s)
  [1]

  $ eslint --rules E002 ../fixtures/lint/e002_partial.ml
  ../fixtures/lint/e002_partial.ml:2:12 [E002] partial stdlib function List.hd; use a total match or the _opt variant
  ../fixtures/lint/e002_partial.ml:3:11 [E002] partial stdlib function List.tl; use a total match or the _opt variant
  ../fixtures/lint/e002_partial.ml:4:12 [E002] partial stdlib function List.nth; use a total match or the _opt variant
  ../fixtures/lint/e002_partial.ml:5:13 [E002] partial stdlib function Option.get; use a total match or the _opt variant
  ../fixtures/lint/e002_partial.ml:6:13 [E002] partial stdlib function Float.of_string; use a total match or the _opt variant
  eslint: 5 finding(s)
  [1]

  $ eslint --rules E003 ../fixtures/lint/e003_catchall.ml
  ../fixtures/lint/e003_catchall.ml:2:34 [E003] catch-all exception handler 'with _ ->' swallows every exception (including Out_of_memory and Assert_failure); match the exceptions you expect
  ../fixtures/lint/e003_catchall.ml:4:35 [E003] exception handler binds every exception and discards it; match the exceptions you expect
  eslint: 2 finding(s)
  [1]

  $ eslint --rules E004 ../fixtures/lint/e004
  ../fixtures/lint/e004/lib/printy.ml:2:15 [E004] direct printing via print_string from library code; return a string or annotate the render entry point with [@lint.allow "E004"]
  ../fixtures/lint/e004/lib/printy.ml:3:14 [E004] direct printing via Printf.printf from library code; return a string or annotate the render entry point with [@lint.allow "E004"]
  eslint: 2 finding(s)
  [1]

  $ eslint --rules E005 ../fixtures/lint/e005
  ../fixtures/lint/e005/lib/nomli.ml:1:0 [E005] library module nomli.ml has no .mli interface; write one (or allow-list generated modules)
  eslint: 1 finding(s)
  [1]

  $ eslint --rules E006 ../fixtures/lint/e006_unsafe.ml
  ../fixtures/lint/e006_unsafe.ml:2:20 [E006] unsafe representation escape Obj.magic
  ../fixtures/lint/e006_unsafe.ml:3:17 [E006] unsafe representation escape Marshal.to_string
  ../fixtures/lint/e006_unsafe.ml:4:20 [E006] unsafe representation escape Marshal.from_string
  eslint: 3 finding(s)
  [1]

Clean code and fully suppressed code exit 0 with no output.

  $ eslint ../fixtures/lint/clean.ml

  $ eslint ../fixtures/lint/suppressed.ml

[@lint.allow "E001"] suppresses only E001: the E002 inside the same
expression is still reported.

  $ eslint ../fixtures/lint/mixed_suppressed.ml
  ../fixtures/lint/mixed_suppressed.ml:4:13 [E002] partial stdlib function List.hd; use a total match or the _opt variant
  eslint: 1 finding(s)
  [1]

A checked-in allowlist exempts a path/rule pair without touching the
source; other rules in the same file still fire.

  $ cat > exemptions.allow <<'EOF'
  > # Obj.magic fixture is expected here
  > lint/e006_unsafe.ml E006
  > EOF

  $ eslint --allow-file exemptions.allow ../fixtures/lint/e006_unsafe.ml

Unknown rules and bad allowlists are operational errors (exit 2), not
findings.

  $ eslint --rules E999 ../fixtures/lint/clean.ml
  eslint: unknown rule id "E999"
  [2]

  $ echo "lib/foo.ml E999" > bad.allow
  $ eslint --allow-file bad.allow ../fixtures/lint/clean.ml
  eslint: bad.allow:1: unknown rule id "E999"
  [2]
