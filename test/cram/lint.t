The rule catalogue is discoverable from the CLI.

  $ eslint --list-rules
  E001  polymorphic structural comparison or hash (compare, Hashtbl.hash); use a typed comparator: Float.compare, Int.compare, String.compare, List.compare
  E002  partial stdlib function (List.hd, List.tl, List.nth, List.find, List.assoc, Option.get, Hashtbl.find, Float.of_string); use a total match or the _opt variant
  E003  catch-all exception handler (with _ -> ... / with e -> ()); match the exceptions you expect and let the rest propagate
  E004  direct printing from library code (print_string, Printf.printf); return a string / use a Buffer, or annotate a render entry point with [@lint.allow "E004"]
  E005  library module without an .mli interface
  E006  unsafe representation escape (Obj.magic, Marshal)
  E007  module-level mutable state (ref, Hashtbl/Queue/Stack/Buffer created at top level, mutable record field) in domain-shared solver code (lib/core, lib/sched, lib/sim); make it immutable, move it into the call, or justify with [@lint.allow "E007"]
  U001  unit mismatch between the operands of a float addition, subtraction, comparison or min/max (adding an energy to a time, comparing a speed against a deadline)
  U002  unit mismatch against a [@units] annotation: argument at an annotated call site, annotated record field, value constraint, or the result of an exported function
  U003  public float in a lib/core or lib/platform interface without a [@units "..."] annotation (work, freq, time, energy, power, prob, dimensionless, and products/quotients/powers thereof)

Every rule fires on its fixture, with exact file:line:col diagnostics
and a non-zero exit code.

  $ eslint --rules E001 ../fixtures/lint/e001_poly_compare.ml
  ../fixtures/lint/e001_poly_compare.ml:2:23 [E001] polymorphic structural operation compare; use a typed comparator (Float.compare, Int.compare, String.compare, List.compare, ...)
  ../fixtures/lint/e001_poly_compare.ml:3:26 [E001] polymorphic structural operation compare; use a typed comparator (Float.compare, Int.compare, String.compare, List.compare, ...)
  ../fixtures/lint/e001_poly_compare.ml:4:13 [E001] polymorphic structural operation Hashtbl.hash; use a typed comparator (Float.compare, Int.compare, String.compare, List.compare, ...)
  eslint: 3 finding(s)
  [1]

  $ eslint --rules E002 ../fixtures/lint/e002_partial.ml
  ../fixtures/lint/e002_partial.ml:2:12 [E002] partial stdlib function List.hd; use a total match or the _opt variant
  ../fixtures/lint/e002_partial.ml:3:11 [E002] partial stdlib function List.tl; use a total match or the _opt variant
  ../fixtures/lint/e002_partial.ml:4:12 [E002] partial stdlib function List.nth; use a total match or the _opt variant
  ../fixtures/lint/e002_partial.ml:5:13 [E002] partial stdlib function Option.get; use a total match or the _opt variant
  ../fixtures/lint/e002_partial.ml:6:13 [E002] partial stdlib function Float.of_string; use a total match or the _opt variant
  eslint: 5 finding(s)
  [1]

  $ eslint --rules E003 ../fixtures/lint/e003_catchall.ml
  ../fixtures/lint/e003_catchall.ml:2:34 [E003] catch-all exception handler 'with _ ->' swallows every exception (including Out_of_memory and Assert_failure); match the exceptions you expect
  ../fixtures/lint/e003_catchall.ml:4:35 [E003] exception handler binds every exception and discards it; match the exceptions you expect
  eslint: 2 finding(s)
  [1]

  $ eslint --rules E004 ../fixtures/lint/e004
  ../fixtures/lint/e004/lib/printy.ml:2:15 [E004] direct printing via print_string from library code; return a string or annotate the render entry point with [@lint.allow "E004"]
  ../fixtures/lint/e004/lib/printy.ml:3:14 [E004] direct printing via Printf.printf from library code; return a string or annotate the render entry point with [@lint.allow "E004"]
  eslint: 2 finding(s)
  [1]

  $ eslint --rules E005 ../fixtures/lint/e005
  ../fixtures/lint/e005/lib/nomli.ml:1:0 [E005] library module nomli.ml has no .mli interface; write one (or allow-list generated modules)
  eslint: 1 finding(s)
  [1]

  $ eslint --rules E006 ../fixtures/lint/e006_unsafe.ml
  ../fixtures/lint/e006_unsafe.ml:2:20 [E006] unsafe representation escape Obj.magic
  ../fixtures/lint/e006_unsafe.ml:3:17 [E006] unsafe representation escape Marshal.to_string
  ../fixtures/lint/e006_unsafe.ml:4:20 [E006] unsafe representation escape Marshal.from_string
  eslint: 3 finding(s)
  [1]

E007 fires on module-level mutable state in the domain-shared
libraries; the [@@lint.allow]-annotated Buffer and the per-call
factory in the same fixture stay silent.

  $ eslint --rules E007 ../fixtures/lint/e007
  ../fixtures/lint/e007/lib/core/mutstate.ml:2:0 [E007] module-level mutable state (ref) in domain-shared code; worker domains race on it — make it immutable, pass state explicitly, or justify with [@lint.allow "E007"]
  ../fixtures/lint/e007/lib/core/mutstate.ml:4:0 [E007] module-level mutable state (Hashtbl.create) in domain-shared code; worker domains race on it — make it immutable, pass state explicitly, or justify with [@lint.allow "E007"]
  ../fixtures/lint/e007/lib/core/mutstate.ml:6:15 [E007] mutable record field total in domain-shared code; values of this type race when shared across worker domains — drop [mutable] or use Atomic.t
  eslint: 3 finding(s)
  [1]

Clean code and fully suppressed code exit 0 with no output.

  $ eslint ../fixtures/lint/clean.ml

  $ eslint ../fixtures/lint/suppressed.ml

[@lint.allow "E001"] suppresses only E001: the E002 inside the same
expression is still reported.

  $ eslint ../fixtures/lint/mixed_suppressed.ml
  ../fixtures/lint/mixed_suppressed.ml:4:13 [E002] partial stdlib function List.hd; use a total match or the _opt variant
  eslint: 1 finding(s)
  [1]

A checked-in allowlist exempts a path/rule pair without touching the
source; other rules in the same file still fire.

  $ cat > exemptions.allow <<'EOF'
  > # Obj.magic fixture is expected here
  > lint/e006_unsafe.ml E006
  > EOF

  $ eslint --allow-file exemptions.allow ../fixtures/lint/e006_unsafe.ml

Unknown rules and bad allowlists are operational errors (exit 2), not
findings.

  $ eslint --rules E999 ../fixtures/lint/clean.ml
  eslint: unknown rule id "E999"
  [2]

  $ echo "lib/foo.ml E999" > bad.allow
  $ eslint --allow-file bad.allow ../fixtures/lint/clean.ml
  eslint: bad.allow:1: unknown rule id "E999"
  [2]

The dimensional-analysis pass.  U001 fires on mixed-unit arithmetic
and is suppressible at the site; U002 checks annotated call sites and
record fields across files (pass 1 reads the .mli); U003 demands
annotations on public floats in core interfaces.

  $ eslint --rules U001 ../fixtures/lint/u001_mismatch.ml
  ../fixtures/lint/u001_mismatch.ml:6:16 [U001] operands of (+.) have units energy and time
  ../fixtures/lint/u001_mismatch.ml:7:16 [U001] operands of < have units energy and time
  ../fixtures/lint/u001_mismatch.ml:8:16 [U001] operands of Float.min have units energy and time
  eslint: 3 finding(s)
  [1]

  $ eslint --rules U001 ../fixtures/lint/u001_suppressed.ml

  $ eslint --rules U002 ../fixtures/lint/u002
  ../fixtures/lint/u002/use.ml:6:18 [U002] ~w of Metrics.cost has units time, expected work
  ../fixtures/lint/u002/use.ml:10:2 [U002] record field elapsed expects units time, got energy
  eslint: 2 finding(s)
  [1]

  $ eslint --rules U003 ../fixtures/lint/u003
  ../fixtures/lint/u003/lib/core/therm.mli:4:16 [U003] public float without a [@units] annotation; annotate as (float[@units "work|freq|time|energy|power|prob|dimensionless"]) or suppress with [@lint.allow "U003"]
  eslint: 1 finding(s)
  [1]

--units=false switches the whole U family off without touching the
E rules.

  $ eslint --units=false ../fixtures/lint/u001_mismatch.ml

  $ eslint --units=false ../fixtures/lint/e002_partial.ml
  ../fixtures/lint/e002_partial.ml:2:12 [E002] partial stdlib function List.hd; use a total match or the _opt variant
  ../fixtures/lint/e002_partial.ml:3:11 [E002] partial stdlib function List.tl; use a total match or the _opt variant
  ../fixtures/lint/e002_partial.ml:4:12 [E002] partial stdlib function List.nth; use a total match or the _opt variant
  ../fixtures/lint/e002_partial.ml:5:13 [E002] partial stdlib function Option.get; use a total match or the _opt variant
  ../fixtures/lint/e002_partial.ml:6:13 [E002] partial stdlib function Float.of_string; use a total match or the _opt variant
  eslint: 5 finding(s)
  [1]

Machine-readable output: --format json for tooling, --format sarif for
GitHub code scanning (1-based columns there).

  $ eslint --format json --rules U001 ../fixtures/lint/u001_mismatch.ml
  {
    "schema": "eslint-json/1",
    "findings": [
      {"file": "../fixtures/lint/u001_mismatch.ml", "line": 6, "col": 16, "rule": "U001", "message": "operands of (+.) have units energy and time"},
      {"file": "../fixtures/lint/u001_mismatch.ml", "line": 7, "col": 16, "rule": "U001", "message": "operands of < have units energy and time"},
      {"file": "../fixtures/lint/u001_mismatch.ml", "line": 8, "col": 16, "rule": "U001", "message": "operands of Float.min have units energy and time"}
    ],
    "errors": []
  }
  [1]

  $ eslint --format sarif --rules U002 ../fixtures/lint/u002
  {
    "$schema": "https://json.schemastore.org/sarif-2.1.0.json",
    "version": "2.1.0",
    "runs": [
      {
        "tool": {
          "driver": {
            "name": "eslint",
            "informationUri": "DESIGN.md",
            "rules": [
            {"id": "U002", "shortDescription": {"text": "unit mismatch against a [@units] annotation: argument at an annotated call site, annotated record field, value constraint, or the result of an exported function"}}
            ]
          }
        },
        "results": [
          {"ruleId": "U002", "level": "error", "message": {"text": "~w of Metrics.cost has units time, expected work"}, "locations": [{"physicalLocation": {"artifactLocation": {"uri": "../fixtures/lint/u002/use.ml"}, "region": {"startLine": 6, "startColumn": 19}}}]},
          {"ruleId": "U002", "level": "error", "message": {"text": "record field elapsed expects units time, got energy"}, "locations": [{"physicalLocation": {"artifactLocation": {"uri": "../fixtures/lint/u002/use.ml"}, "region": {"startLine": 10, "startColumn": 3}}}]}
        ]
      }
    ]
  }
  [1]

  $ eslint --format json ../fixtures/lint/clean.ml
  {
    "schema": "eslint-json/1",
    "findings": [],
    "errors": []
  }
