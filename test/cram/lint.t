The rule catalogue is discoverable from the CLI.

  $ eslint --list-rules
  E001  polymorphic structural comparison or hash (compare, Hashtbl.hash); use a typed comparator: Float.compare, Int.compare, String.compare, List.compare
  E002  partial stdlib function (List.hd, List.tl, List.nth, List.find, List.assoc, Option.get, Hashtbl.find, Float.of_string); use a total match or the _opt variant
  E003  catch-all exception handler (with _ -> ... / with e -> ()); match the exceptions you expect and let the rest propagate
  E004  direct printing from library code (print_string, Printf.printf); return a string / use a Buffer, or annotate a render entry point with [@lint.allow "E004"]
  E005  library module without an .mli interface
  E006  unsafe representation escape (Obj.magic, Marshal)
  E007  module-level mutable state (ref, Hashtbl/Queue/Stack/Buffer created at top level, mutable record field) in domain-shared solver code (lib/core, lib/sched, lib/sim); make it immutable, move it into the call, or justify with [@lint.allow "E007"]
  U001  unit mismatch between the operands of a float addition, subtraction, comparison or min/max (adding an energy to a time, comparing a speed against a deadline)
  U002  unit mismatch against a [@units] annotation: argument at an annotated call site, annotated record field, value constraint, or the result of an exported function
  U003  public float in a lib/core or lib/platform interface without a [@units "..."] annotation (work, freq, time, energy, power, prob, dimensionless, and products/quotients/powers thereof)
  P001  parallel region captures and writes shared mutable state (ref, mutable field, Hashtbl/Queue/Stack/Buffer defined outside the region) without Atomic/Mutex protection — a data race across worker domains
  P002  parallel region reaches an ambient-nondeterminism source (Random.*, Sys.time, Unix.gettimeofday, Domain.self, Gc stats, hash-ordered Hashtbl iteration over a captured table); output would depend on scheduling — derive per-task streams with Rng.split / map_seeded
  P003  parallel region reaches a blocking operation (Mutex.lock/protect on a captured lock, Condition.wait, Unix.sleep*, raw Pool.submit re-entry); workers stall or deadlock — keep worker code non-blocking
  P004  Domain.* / Domain.DLS use outside the sanctioned owners lib/par and lib/obs; route domain management through Es_par.Pool so the pool owns every worker domain
  X001  exported lib/ value may raise but its .mli doc comment has no @raise tag; document the contract or narrow the exceptions with try/with
  X002  callback handed to a parallel region may raise an exception other than the sanctioned Task_error wrapping; a raise inside a worker strands the joiner — make the task total or pre-validate its inputs
  R001  resource acquired but never released in this binding (open_in/open_out or Unix.openfile without close, Pool.create without shutdown, Mutex.lock without unlock); release it or use the with_/protect form
  R002  code between a resource acquire and its unprotected release may raise, leaking the resource on the exceptional path; wrap the body in Fun.protect ~finally (or Mutex.protect for locks)
  R003  Obs.enable without a balanced Obs.disable on every path (missing or unprotected while the code between may raise); put the disable in a Fun.protect ~finally

Every rule fires on its fixture, with exact file:line:col diagnostics
and a non-zero exit code.

  $ eslint --rules E001 ../fixtures/lint/e001_poly_compare.ml
  ../fixtures/lint/e001_poly_compare.ml:2:23 [E001] polymorphic structural operation compare; use a typed comparator (Float.compare, Int.compare, String.compare, List.compare, ...)
  ../fixtures/lint/e001_poly_compare.ml:3:26 [E001] polymorphic structural operation compare; use a typed comparator (Float.compare, Int.compare, String.compare, List.compare, ...)
  ../fixtures/lint/e001_poly_compare.ml:4:13 [E001] polymorphic structural operation Hashtbl.hash; use a typed comparator (Float.compare, Int.compare, String.compare, List.compare, ...)
  eslint: 3 finding(s)
  [1]

  $ eslint --rules E002 ../fixtures/lint/e002_partial.ml
  ../fixtures/lint/e002_partial.ml:2:12 [E002] partial stdlib function List.hd; use a total match or the _opt variant
  ../fixtures/lint/e002_partial.ml:3:11 [E002] partial stdlib function List.tl; use a total match or the _opt variant
  ../fixtures/lint/e002_partial.ml:4:12 [E002] partial stdlib function List.nth; use a total match or the _opt variant
  ../fixtures/lint/e002_partial.ml:5:13 [E002] partial stdlib function Option.get; use a total match or the _opt variant
  ../fixtures/lint/e002_partial.ml:6:13 [E002] partial stdlib function Float.of_string; use a total match or the _opt variant
  eslint: 5 finding(s)
  [1]

  $ eslint --rules E003 ../fixtures/lint/e003_catchall.ml
  ../fixtures/lint/e003_catchall.ml:2:34 [E003] catch-all exception handler 'with _ ->' swallows every exception (including Out_of_memory and Assert_failure); match the exceptions you expect
  ../fixtures/lint/e003_catchall.ml:4:35 [E003] exception handler binds every exception and discards it; match the exceptions you expect
  eslint: 2 finding(s)
  [1]

  $ eslint --rules E004 ../fixtures/lint/e004
  ../fixtures/lint/e004/lib/printy.ml:2:15 [E004] direct printing via print_string from library code; return a string or annotate the render entry point with [@lint.allow "E004"]
  ../fixtures/lint/e004/lib/printy.ml:3:14 [E004] direct printing via Printf.printf from library code; return a string or annotate the render entry point with [@lint.allow "E004"]
  eslint: 2 finding(s)
  [1]

  $ eslint --rules E005 ../fixtures/lint/e005
  ../fixtures/lint/e005/lib/nomli.ml:1:0 [E005] library module nomli.ml has no .mli interface; write one (or allow-list generated modules)
  eslint: 1 finding(s)
  [1]

  $ eslint --rules E006 ../fixtures/lint/e006_unsafe.ml
  ../fixtures/lint/e006_unsafe.ml:2:20 [E006] unsafe representation escape Obj.magic
  ../fixtures/lint/e006_unsafe.ml:3:17 [E006] unsafe representation escape Marshal.to_string
  ../fixtures/lint/e006_unsafe.ml:4:20 [E006] unsafe representation escape Marshal.from_string
  eslint: 3 finding(s)
  [1]

E007 fires on module-level mutable state in the domain-shared
libraries; the [@@lint.allow]-annotated Buffer and the per-call
factory in the same fixture stay silent.

  $ eslint --rules E007 ../fixtures/lint/e007
  ../fixtures/lint/e007/lib/core/mutstate.ml:2:0 [E007] module-level mutable state (ref) in domain-shared code; worker domains race on it — make it immutable, pass state explicitly, or justify with [@lint.allow "E007"]
  ../fixtures/lint/e007/lib/core/mutstate.ml:4:0 [E007] module-level mutable state (Hashtbl.create) in domain-shared code; worker domains race on it — make it immutable, pass state explicitly, or justify with [@lint.allow "E007"]
  ../fixtures/lint/e007/lib/core/mutstate.ml:6:15 [E007] mutable record field total in domain-shared code; values of this type race when shared across worker domains — drop [mutable] or use Atomic.t
  eslint: 3 finding(s)
  [1]

Top-level synchronisation primitives (Atomic, Mutex, Condition) are
domain-safe by construction and exempt from E007.

  $ eslint --rules E007 ../fixtures/lint/e007/lib/core/atomics.ml

Clean code and fully suppressed code exit 0 with no output.

  $ eslint ../fixtures/lint/clean.ml

  $ eslint ../fixtures/lint/suppressed.ml

[@lint.allow "E001"] suppresses only E001: the E002 inside the same
expression is still reported.

  $ eslint ../fixtures/lint/mixed_suppressed.ml
  ../fixtures/lint/mixed_suppressed.ml:4:13 [E002] partial stdlib function List.hd; use a total match or the _opt variant
  eslint: 1 finding(s)
  [1]

A checked-in allowlist exempts a path/rule pair without touching the
source; other rules in the same file still fire.

  $ cat > exemptions.allow <<'EOF'
  > # Obj.magic fixture is expected here
  > lint/e006_unsafe.ml E006
  > EOF

  $ eslint --allow-file exemptions.allow ../fixtures/lint/e006_unsafe.ml

Unknown rules and bad allowlists are operational errors (exit 2), not
findings.

  $ eslint --rules E999 ../fixtures/lint/clean.ml
  eslint: unknown rule id "E999"
  [2]

  $ echo "lib/foo.ml E999" > bad.allow
  $ eslint --allow-file bad.allow ../fixtures/lint/clean.ml
  eslint: bad.allow:1: unknown rule id "E999"
  [2]

The dimensional-analysis pass.  U001 fires on mixed-unit arithmetic
and is suppressible at the site; U002 checks annotated call sites and
record fields across files (pass 1 reads the .mli); U003 demands
annotations on public floats in core interfaces.

  $ eslint --rules U001 ../fixtures/lint/u001_mismatch.ml
  ../fixtures/lint/u001_mismatch.ml:6:16 [U001] operands of (+.) have units energy and time
  ../fixtures/lint/u001_mismatch.ml:7:16 [U001] operands of < have units energy and time
  ../fixtures/lint/u001_mismatch.ml:8:16 [U001] operands of Float.min have units energy and time
  eslint: 3 finding(s)
  [1]

  $ eslint --rules U001 ../fixtures/lint/u001_suppressed.ml

  $ eslint --rules U002 ../fixtures/lint/u002
  ../fixtures/lint/u002/use.ml:6:18 [U002] ~w of Metrics.cost has units time, expected work
  ../fixtures/lint/u002/use.ml:10:2 [U002] record field elapsed expects units time, got energy
  eslint: 2 finding(s)
  [1]

  $ eslint --rules U003 ../fixtures/lint/u003
  ../fixtures/lint/u003/lib/core/therm.mli:4:16 [U003] public float without a [@units] annotation; annotate as (float[@units "work|freq|time|energy|power|prob|dimensionless"]) or suppress with [@lint.allow "U003"]
  eslint: 1 finding(s)
  [1]

--units=false switches the whole U family off without touching the
E rules.

  $ eslint --units=false ../fixtures/lint/u001_mismatch.ml

  $ eslint --units=false ../fixtures/lint/e002_partial.ml
  ../fixtures/lint/e002_partial.ml:2:12 [E002] partial stdlib function List.hd; use a total match or the _opt variant
  ../fixtures/lint/e002_partial.ml:3:11 [E002] partial stdlib function List.tl; use a total match or the _opt variant
  ../fixtures/lint/e002_partial.ml:4:12 [E002] partial stdlib function List.nth; use a total match or the _opt variant
  ../fixtures/lint/e002_partial.ml:5:13 [E002] partial stdlib function Option.get; use a total match or the _opt variant
  ../fixtures/lint/e002_partial.ml:6:13 [E002] partial stdlib function Float.of_string; use a total match or the _opt variant
  eslint: 5 finding(s)
  [1]

The parallel-safety pass.  P001 anchors each race at the parallel
region and carries a witness call chain in the message — here the
captured-Hashtbl write lives one module away from the region, and the
captured ref is written inline.

  $ eslint --rules P001 ../fixtures/lint/p001
  ../fixtures/lint/p001/worker.ml:9:2 [P001] parallel region (Par.parallel_map) writes captured mutable state without Atomic/Mutex protection: 'incr' on captured ref 'total'; witness: region@../fixtures/lint/p001/worker.ml:9 -> incr total@../fixtures/lint/p001/worker.ml:12
  ../fixtures/lint/p001/worker.ml:9:2 [P001] parallel region (Par.parallel_map) writes captured mutable state without Atomic/Mutex protection: Hashtbl.replace on captured container 'hits'; witness: region@../fixtures/lint/p001/worker.ml:9 -> Counter.memo@../fixtures/lint/p001/worker.ml:11 -> Hashtbl.replace hits@../fixtures/lint/p001/counter.ml:7
  eslint: 2 finding(s)
  [1]

P002 flags ambient nondeterminism reachable from a region; the
site-suppressed twin fixture ([@lint.allow "P002"] on the region
expression) stays silent.

  $ eslint --rules P002 ../fixtures/lint/p002
  ../fixtures/lint/p002/seeds.ml:6:2 [P002] parallel region (Par.parallel_map) reaches ambient nondeterminism: Random.float (use a pre-split Rng stream / map_seeded); witness: region@../fixtures/lint/p002/seeds.ml:6 -> Random.float@../fixtures/lint/p002/seeds.ml:6
  eslint: 1 finding(s)
  [1]

P003 flags blocking operations in worker code: a captured lock and an
outright sleep.

  $ eslint --rules P003 ../fixtures/lint/p003
  ../fixtures/lint/p003/block.ml:8:2 [P003] parallel region (Par.parallel_map) reaches a blocking operation: Mutex.lock on captured lock 'lock'; witness: region@../fixtures/lint/p003/block.ml:8 -> Mutex.lock lock@../fixtures/lint/p003/block.ml:10
  ../fixtures/lint/p003/block.ml:8:2 [P003] parallel region (Par.parallel_map) reaches a blocking operation: Unix.sleepf; witness: region@../fixtures/lint/p003/block.ml:8 -> Unix.sleepf@../fixtures/lint/p003/block.ml:11
  eslint: 2 finding(s)
  [1]

P004 keeps raw Domain management inside its sanctioned owners.

  $ eslint --rules P004 ../fixtures/lint/p004
  ../fixtures/lint/p004/spawn.ml:6:10 [P004] Domain.spawn used outside the sanctioned owners (lib/par, lib/obs); route domain management through Es_par.Pool or justify with [@lint.allow "P004"]
  ../fixtures/lint/p004/spawn.ml:7:2 [P004] Domain.join used outside the sanctioned owners (lib/par, lib/obs); route domain management through Es_par.Pool or justify with [@lint.allow "P004"]
  eslint: 2 finding(s)
  [1]

A checked-in allowlist exempts a path/P-rule pair like any other rule.

  $ cat > par.allow <<'EOF'
  > # this fixture spawns raw domains on purpose
  > p004/spawn.ml P004
  > EOF

  $ eslint --rules P004 --allow-file par.allow ../fixtures/lint/p004

--par=false switches the whole P family off without touching the
other rules — the exception-flow pass still sees the same raising
lock-holding region and reports it from its own angle.

  $ eslint --par=false ../fixtures/lint/p003/block.ml
  ../fixtures/lint/p003/block.ml:9:4 [X002] callback passed to Par.parallel_map may raise (an unknown external is reached in call position) beyond the sanctioned Task_error wrapping — a raise inside a worker surfaces at the joiner and abandons the batch; witness: Unix.sleepf@../fixtures/lint/p003/block.ml:11; make the task total (or use Par.try_map and handle the error value)
  ../fixtures/lint/p003/block.ml:10:6 [R002] code between Mutex.lock 'lock' and its unprotected unlock may raise (an unknown external is reached in call position); witness: Unix.sleepf@../fixtures/lint/p003/block.ml:11; use Mutex.protect so the unlock runs on the raising path
  eslint: 2 finding(s)
  [1]

Naming a file both directly and through its directory reports each
finding exactly once.

  $ eslint --rules P004 ../fixtures/lint/p004 ../fixtures/lint/p004/spawn.ml
  ../fixtures/lint/p004/spawn.ml:6:10 [P004] Domain.spawn used outside the sanctioned owners (lib/par, lib/obs); route domain management through Es_par.Pool or justify with [@lint.allow "P004"]
  ../fixtures/lint/p004/spawn.ml:7:2 [P004] Domain.join used outside the sanctioned owners (lib/par, lib/obs); route domain management through Es_par.Pool or justify with [@lint.allow "P004"]
  eslint: 2 finding(s)
  [1]

--exclude tolerates a trailing slash on the pruned path.

  $ eslint --rules P001,P002,P003,P004 --exclude ../fixtures/lint/p001/ --exclude ../fixtures/lint/p002 --exclude ../fixtures/lint/p003 --exclude ../fixtures/lint/p004 ../fixtures/lint

The exit-code contract is documented in the man page.

  $ eslint --help=plain | grep -A 8 "EXIT STATUS"
  EXIT STATUS
         eslint exits with:
  
         0   the scan completed with no findings.
  
         1   the scan completed and reported findings.
  
         2   operational error: unparsable source file, bad allowlist, unknown
             rule id or missing path.

Machine-readable output: --format json for tooling, --format sarif for
GitHub code scanning (1-based columns there).

  $ eslint --format json --rules U001 ../fixtures/lint/u001_mismatch.ml
  {
    "schema": "eslint-json/1",
    "findings": [
      {"file": "../fixtures/lint/u001_mismatch.ml", "line": 6, "col": 16, "rule": "U001", "message": "operands of (+.) have units energy and time"},
      {"file": "../fixtures/lint/u001_mismatch.ml", "line": 7, "col": 16, "rule": "U001", "message": "operands of < have units energy and time"},
      {"file": "../fixtures/lint/u001_mismatch.ml", "line": 8, "col": 16, "rule": "U001", "message": "operands of Float.min have units energy and time"}
    ],
    "errors": []
  }
  [1]

  $ eslint --format sarif --rules U002 ../fixtures/lint/u002
  {
    "$schema": "https://json.schemastore.org/sarif-2.1.0.json",
    "version": "2.1.0",
    "runs": [
      {
        "tool": {
          "driver": {
            "name": "eslint",
            "informationUri": "DESIGN.md",
            "rules": [
            {"id": "U002", "shortDescription": {"text": "unit mismatch against a [@units] annotation: argument at an annotated call site, annotated record field, value constraint, or the result of an exported function"}}
            ]
          }
        },
        "results": [
          {"ruleId": "U002", "level": "error", "message": {"text": "~w of Metrics.cost has units time, expected work"}, "locations": [{"physicalLocation": {"artifactLocation": {"uri": "../fixtures/lint/u002/use.ml"}, "region": {"startLine": 6, "startColumn": 19}}}]},
          {"ruleId": "U002", "level": "error", "message": {"text": "record field elapsed expects units time, got energy"}, "locations": [{"physicalLocation": {"artifactLocation": {"uri": "../fixtures/lint/u002/use.ml"}, "region": {"startLine": 10, "startColumn": 3}}}]}
        ]
      }
    ]
  }
  [1]

  $ eslint --format json ../fixtures/lint/clean.ml
  {
    "schema": "eslint-json/1",
    "findings": [],
    "errors": []
  }

A P001 witness trace survives into the SARIF report verbatim, so code
scanning shows the full region -> callee -> write chain.

  $ eslint --format sarif --rules P001 ../fixtures/lint/p001
  {
    "$schema": "https://json.schemastore.org/sarif-2.1.0.json",
    "version": "2.1.0",
    "runs": [
      {
        "tool": {
          "driver": {
            "name": "eslint",
            "informationUri": "DESIGN.md",
            "rules": [
            {"id": "P001", "shortDescription": {"text": "parallel region captures and writes shared mutable state (ref, mutable field, Hashtbl/Queue/Stack/Buffer defined outside the region) without Atomic/Mutex protection — a data race across worker domains"}}
            ]
          }
        },
        "results": [
          {"ruleId": "P001", "level": "error", "message": {"text": "parallel region (Par.parallel_map) writes captured mutable state without Atomic/Mutex protection: 'incr' on captured ref 'total'; witness: region@../fixtures/lint/p001/worker.ml:9 -> incr total@../fixtures/lint/p001/worker.ml:12"}, "locations": [{"physicalLocation": {"artifactLocation": {"uri": "../fixtures/lint/p001/worker.ml"}, "region": {"startLine": 9, "startColumn": 3}}}]},
          {"ruleId": "P001", "level": "error", "message": {"text": "parallel region (Par.parallel_map) writes captured mutable state without Atomic/Mutex protection: Hashtbl.replace on captured container 'hits'; witness: region@../fixtures/lint/p001/worker.ml:9 -> Counter.memo@../fixtures/lint/p001/worker.ml:11 -> Hashtbl.replace hits@../fixtures/lint/p001/counter.ml:7"}, "locations": [{"physicalLocation": {"artifactLocation": {"uri": "../fixtures/lint/p001/worker.ml"}, "region": {"startLine": 9, "startColumn": 3}}}]}
        ]
      }
    ]
  }
  [1]

The exception-flow pass.  X001 anchors an undocumented raising export
at its .mli declaration and reconstructs the shortest call chain down
to the terminal raise site — here the chain crosses a module boundary
twice.  The documented twin [read_checked] and the pure [zero] stay
silent.

  $ eslint --only X001 ../fixtures/lint/x001
  ../fixtures/lint/x001/lib/meter.mli:5:0 [X001] exported value 'read' may raise Invalid_argument but its doc comment has no @raise tag; witness: Meter.read@../fixtures/lint/x001/lib/meter.mli:5 -> Probe.sample@../fixtures/lint/x001/lib/meter.ml:5 -> Invalid_argument@../fixtures/lint/x001/lib/probe.ml:6; document the contract (@raise Invalid_argument ...) or narrow the exceptions in the implementation
  eslint: 1 finding(s)
  [1]

X002 flags raising callbacks handed to a parallel region, in both
shapes: a lambda whose body reaches the raising Model.rate, and the
raising node passed as a bare identifier.

  $ eslint --only X002 ../fixtures/lint/x002
  ../fixtures/lint/x002/sweep.ml:8:32 [X002] callback passed to Par.parallel_map may raise Invalid_argument beyond the sanctioned Task_error wrapping — a raise inside a worker surfaces at the joiner and abandons the batch; witness: Model.rate@../fixtures/lint/x002/sweep.ml:8 -> Invalid_argument@../fixtures/lint/x002/model.ml:6; make the task total (or use Par.try_map and handle the error value)
  ../fixtures/lint/x002/sweep.ml:10:54 [X002] callback Model.rate passed to Par.parallel_map may raise Invalid_argument beyond the sanctioned Task_error wrapping — a raise inside a worker surfaces at the joiner and abandons the batch; witness: Model.rate@../fixtures/lint/x002/sweep.ml:10 -> Invalid_argument@../fixtures/lint/x002/model.ml:6; make the task total (or use Par.try_map and handle the error value)
  eslint: 2 finding(s)
  [1]

The resource-lifecycle pass.  R001 is the unconditional leak: a handle
acquired and never released in its binding, on any path.

  $ eslint --only R001 ../fixtures/lint/r001
  ../fixtures/lint/r001/log.ml:6:2 [R001] output channel 'oc' acquired here is never released in this binding; release it on every path with Fun.protect ~finally:close_out (or justify ownership transfer with [@lint.allow "R001"])
  ../fixtures/lint/r001/log.ml:10:2 [R001] worker pool 'pool' acquired here is never released in this binding; release it on every path with Pool.with_pool (or justify ownership transfer with [@lint.allow "R001"])
  eslint: 2 finding(s)
  [1]

R002 is the exceptional-path leak: the release exists but is
unprotected, and the code between acquire and release may raise — the
witness names the raising encoder one module away.  The Fun.protect
twin [save_protected] stays silent.

  $ eslint --only R002 ../fixtures/lint/r002
  ../fixtures/lint/r002/writer.ml:7:2 [R002] output channel 'oc' is released, but the code between acquire and release may raise Invalid_argument, Sys_error and the release is not protected — the exceptional path leaks it; witness: Enc.render@../fixtures/lint/r002/writer.ml:8 -> Invalid_argument@../fixtures/lint/r002/enc.ml:5; wrap the body in Fun.protect ~finally:close_out
  eslint: 1 finding(s)
  [1]

R003 guards the telemetry toggle protocol: a bare disable after a
raising step, and a missing disable.  The Fun.protect twin stays
silent.

  $ eslint --only R003 ../fixtures/lint/r003
  ../fixtures/lint/r003/trace.ml:11:2 [R003] code between Obs.enable and its unprotected Obs.disable may raise Failure; witness: Trace.checkpoint@../fixtures/lint/r003/trace.ml:12 -> Failure@../fixtures/lint/r003/trace.ml:7; move the disable into a Fun.protect ~finally so the raising path restores the toggle
  ../fixtures/lint/r003/trace.ml:17:2 [R003] Obs.enable is never balanced by Obs.disable in the rest of this statement sequence; the telemetry toggle leaks across the next caller — put the disable in a Fun.protect ~finally
  eslint: 2 finding(s)
  [1]

--effects=false switches the whole X/R family off without touching
the other rules; --only/--skip filter by rule id on top of the family
switches, and reject unknown ids like any other rule list.

  $ eslint --effects=false ../fixtures/lint/r003/trace.ml

  $ eslint --skip R003 ../fixtures/lint/r003/trace.ml

  $ eslint --only R001,R002 ../fixtures/lint/r002
  ../fixtures/lint/r002/writer.ml:7:2 [R002] output channel 'oc' is released, but the code between acquire and release may raise Invalid_argument, Sys_error and the release is not protected — the exceptional path leaks it; witness: Enc.render@../fixtures/lint/r002/writer.ml:8 -> Invalid_argument@../fixtures/lint/r002/enc.ml:5; wrap the body in Fun.protect ~finally:close_out
  eslint: 1 finding(s)
  [1]

  $ eslint --skip X999 ../fixtures/lint/clean.ml
  eslint: unknown rule id "X999"
  [2]

  $ eslint --rules X001 --only X001 ../fixtures/lint/x001
  eslint: --rules and --only are aliases; give only one
  [2]

  $ eslint --only X002 --skip X002 ../fixtures/lint/x002
  eslint: empty rule list (--units/--par/--effects=false or --skip removed every rule)
  [2]

--stats reports the shared-callgraph build and the effects fixpoint
on stderr (timings normalised here).

  $ eslint --only R003 --stats ../fixtures/lint/r003/trace.ml 2>&1 >/dev/null | sed 's/total=.*/total=<t>/'
  eslint: 2 finding(s)
  eslint: stats: eslint.callgraph.build count=1 total=<t>
  eslint: stats: eslint.effects.infer count=1 total=<t>

An R002 witness trace survives into the SARIF report verbatim, like
the P001 one.

  $ eslint --format sarif --only R002 ../fixtures/lint/r002
  {
    "$schema": "https://json.schemastore.org/sarif-2.1.0.json",
    "version": "2.1.0",
    "runs": [
      {
        "tool": {
          "driver": {
            "name": "eslint",
            "informationUri": "DESIGN.md",
            "rules": [
            {"id": "R002", "shortDescription": {"text": "code between a resource acquire and its unprotected release may raise, leaking the resource on the exceptional path; wrap the body in Fun.protect ~finally (or Mutex.protect for locks)"}}
            ]
          }
        },
        "results": [
          {"ruleId": "R002", "level": "error", "message": {"text": "output channel 'oc' is released, but the code between acquire and release may raise Invalid_argument, Sys_error and the release is not protected — the exceptional path leaks it; witness: Enc.render@../fixtures/lint/r002/writer.ml:8 -> Invalid_argument@../fixtures/lint/r002/enc.ml:5; wrap the body in Fun.protect ~finally:close_out"}, "locations": [{"physicalLocation": {"artifactLocation": {"uri": "../fixtures/lint/r002/writer.ml"}, "region": {"startLine": 7, "startColumn": 3}}}]}
        ]
      }
    ]
  }
  [1]
