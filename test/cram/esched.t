The CLI pipeline is deterministic given a seed: generate a workload,
solve it under two models, and check the validator's verdict.

  $ esched generate -w fork -n 4 --seed 7 | head -3
  tasks: 5, edges: 4, total weight: 11.977
  critical path (at fmax): 5.229
  T0 (w=2.25144) -> T1, T2, T3, T4

  $ esched solve -w fork -n 4 --seed 7 -m continuous --slack 2 | tail -3
  energy: 2.407788
  worst-case makespan: 10.457184
  validation: OK

  $ esched solve -w fork -n 4 --seed 7 -m vdd --slack 2 | head -2
  n=5 p=4 Dmin=5.2286 deadline=10.4572 model=vdd-hopping
  engine: vdd-hopping LP (provably optimal)

The VDD-HOPPING Pareto sweep warm-starts each LP from the previous
deadline's optimal basis; the front is pinned identical under cold
solves and under a parallel sweep.

  $ esched pareto -w fork -n 4 --seed 7 --vdd
  Energy/deadline front (BI-CRIT, vdd-hopping LP, warm starts)
  D/Dmin  energy   #re-executed
  -----------------------------
    1.05  9.25112             0
    1.20  6.90623             0
    1.50  4.39611             0
    2.00  2.55273             0
    2.50  1.72444             0
    3.00  1.34798             0
    4.00  0.73006             0
    6.00  0.47909             0
  

  $ esched pareto -w fork -n 4 --seed 7 --vdd --cold --jobs 4 | tail -8
    1.20  6.90623             0
    1.50  4.39611             0
    2.00  2.55273             0
    2.50  1.72444             0
    3.00  1.34798             0
    4.00  0.73006             0
    6.00  0.47909             0
  

  $ esched pareto -w fork -n 4 --seed 7 --vdd --stats | grep -E "lp_solves|lp_warm_starts"
    lp_solves                                       8
    lp_warm_starts                                  7

TRI-CRIT with reliability engages re-execution machinery end to end.

  $ esched solve -w fork -n 4 --seed 7 -m continuous -r --slack 3 | grep validation
  validation: OK
