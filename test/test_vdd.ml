(* Tests for BI-CRIT under VDD-HOPPING (R3/R4): the LP optimum sits
   between the continuous bound and any single-speed discrete solution,
   uses at most two consecutive speeds per task, and the
   continuous-to-vdd emulation is feasible and time-exact. *)

let levels = [| 0.2; 0.4; 0.6; 0.8; 1.0 |]
let model = Speed.vdd_hopping levels

let instance ~seed ~p =
  let rng = Es_util.Rng.create ~seed in
  let dag = Generators.random_layered rng ~layers:4 ~width:3 ~density:0.5 ~wlo:1. ~whi:3. in
  let mapping = List_sched.schedule dag ~p ~priority:List_sched.Bottom_level in
  let dmin = List_sched.makespan_at_speed mapping ~f:1. in
  (mapping, dmin)

let test_lp_feasible_schedule () =
  let mapping, dmin = instance ~seed:51 ~p:2 in
  let deadline = 1.4 *. dmin in
  match Bicrit_vdd.solve ~deadline ~levels mapping with
  | None -> Alcotest.fail "expected feasible"
  | Some sched ->
    Alcotest.(check bool) "validator accepts" true
      (Validate.is_feasible ~deadline ~model sched)

let test_lp_infeasible_detected () =
  let mapping, dmin = instance ~seed:52 ~p:2 in
  Alcotest.(check bool) "too tight" true
    (Bicrit_vdd.solve ~deadline:(0.5 *. dmin) ~levels mapping = None)

let test_two_speed_support () =
  List.iter
    (fun seed ->
      let mapping, dmin = instance ~seed ~p:2 in
      let deadline = 1.6 *. dmin in
      match Bicrit_vdd.solve ~deadline ~levels mapping with
      | None -> Alcotest.fail "expected feasible"
      | Some sched ->
        Alcotest.(check bool) "two consecutive speeds" true
          (Bicrit_vdd.two_speed_support ~levels sched))
    [ 53; 54; 55; 56 ]

let test_lp_between_continuous_and_discrete () =
  (* ported onto the Es_check model-dominance oracle (which checks the
     full E_CONT <= E_VDD <= E_INCR <= E_DISCRETE chain plus round-up
     dominance); the instance is kept small enough that the oracle
     runs the exact solvers instead of skipping *)
  let relation =
    match Es_check.Relation.find "model-dominance" with
    | Some r -> r
    | None -> Alcotest.fail "model-dominance registered"
  in
  let rng = Es_util.Rng.create ~seed:57 in
  let dag = Generators.random_layered rng ~layers:3 ~width:2 ~density:0.5 ~wlo:1. ~whi:3. in
  let inst = Es_check.Gen.of_dag ~shape:Es_check.Gen.Layered ~procs:2 ~slack:1.5 ~levels dag in
  match relation.Es_check.Relation.run inst with
  | Es_check.Relation.Pass -> ()
  | Es_check.Relation.Skip msg -> Alcotest.fail ("oracle must not skip here: " ^ msg)
  | Es_check.Relation.Fail msg ->
    Alcotest.fail (msg ^ "\non instance:\n" ^ Es_check.Gen.describe inst)

let test_lp_tightens_with_more_levels () =
  (* refining the level set can only help *)
  let mapping, dmin = instance ~seed:58 ~p:2 in
  let deadline = 1.5 *. dmin in
  let coarse = [| 0.2; 1.0 |] in
  let fine = [| 0.2; 0.4; 0.6; 0.8; 1.0 |] in
  match
    (Bicrit_vdd.energy ~deadline ~levels:coarse mapping,
     Bicrit_vdd.energy ~deadline ~levels:fine mapping)
  with
  | Some ec, Some ef -> Alcotest.(check bool) "finer no worse" true (ef <= ec *. (1. +. 1e-9))
  | _ -> Alcotest.fail "both feasible"

let test_emulation_time_exact () =
  let mapping, dmin = instance ~seed:59 ~p:2 in
  let deadline = 1.5 *. dmin in
  let n = Dag.n (Mapping.dag mapping) in
  match
    Bicrit_continuous.solve_general ~lo:(Array.make n 0.2) ~hi:(Array.make n 1.)
      ~deadline mapping
  with
  | None -> Alcotest.fail "continuous feasible"
  | Some { speeds; _ } -> (
    match Bicrit_vdd.emulate_continuous ~levels ~speeds mapping with
    | None -> Alcotest.fail "emulation in range"
    | Some sched ->
      let dag = Mapping.dag mapping in
      for i = 0 to n - 1 do
        let t_cont = Dag.weight dag i /. speeds.(i) in
        Alcotest.(check (float 1e-9))
          "per-task time preserved" t_cont (Schedule.duration sched i)
      done;
      Alcotest.(check bool) "feasible under vdd" true
        (Validate.is_feasible ~deadline ~model sched))

let test_emulation_energy_sandwich () =
  (* E_cont <= E_lp <= E_emulated *)
  let mapping, dmin = instance ~seed:60 ~p:3 in
  let deadline = 1.4 *. dmin in
  let n = Dag.n (Mapping.dag mapping) in
  match
    Bicrit_continuous.solve_general ~lo:(Array.make n 0.2) ~hi:(Array.make n 1.)
      ~deadline mapping
  with
  | None -> Alcotest.fail "continuous feasible"
  | Some { speeds; energy = e_cont } -> (
    match
      ( Bicrit_vdd.energy ~deadline ~levels mapping,
        Bicrit_vdd.emulate_continuous ~levels ~speeds mapping )
    with
    | Some e_lp, Some emu ->
      let e_emu = Schedule.energy emu in
      Alcotest.(check bool) "cont <= lp" true (e_cont <= e_lp *. (1. +. 1e-6));
      Alcotest.(check bool) "lp <= emulated" true (e_lp <= e_emu *. (1. +. 1e-6))
    | _ -> Alcotest.fail "both must exist")

let test_single_task_exact_mix () =
  (* one task, weight 1, deadline between the two levels' durations:
     the optimal mix is analytic *)
  let dag = Dag.make ?labels:None ~weights:[| 1. |] ~edges:[] in
  let mapping = Mapping.single_processor dag in
  let levels = [| 0.5; 1.0 |] in
  let deadline = 1.5 in
  (* α·0.5 + β·1 = 1, α + β = 1.5 → β = 0.5, α = 1.
     energy = 0.125·1 + 1·0.5 = 0.625 *)
  match Bicrit_vdd.energy ~deadline ~levels mapping with
  | Some e ->
    Alcotest.(check (float 1e-7)) "analytic mix" 0.625 e;
    (* the Es_check hull oracle derives the same value geometrically *)
    (match Es_check.Brute.vdd_chain_optimum ~levels ~weights:[| 1. |] ~deadline with
    | Some h -> Alcotest.(check (float 1e-9)) "hull oracle agrees" h e
    | None -> Alcotest.fail "hull oracle feasible")
  | None -> Alcotest.fail "feasible"

let qcheck_vdd_below_best_single_speed =
  QCheck.Test.make ~name:"vdd LP at least as good as any single level" ~count:30
    QCheck.(int_bound 10_000)
    (fun seed ->
      let rng = Es_util.Rng.create ~seed in
      let dag = Generators.chain rng ~n:(1 + Es_util.Rng.int rng 5) ~wlo:0.5 ~whi:2. in
      let mapping = Mapping.single_processor dag in
      let dmin = Dag.total_weight dag in
      let deadline = Es_util.Rng.uniform_in rng 1.1 3. *. dmin in
      match Bicrit_vdd.energy ~deadline ~levels mapping with
      | None -> false
      | Some e_lp ->
        (* best single level meeting the deadline *)
        let best_single =
          Array.to_list levels
          |> List.filter_map (fun f ->
                 if Dag.total_weight dag /. f <= deadline then
                   Some (Dag.total_weight dag *. f *. f)
                 else None)
          |> List.fold_left Float.min infinity
        in
        e_lp <= best_single *. (1. +. 1e-6))

let suite =
  ( "bicrit-vdd",
    [
      Alcotest.test_case "lp feasible schedule" `Quick test_lp_feasible_schedule;
      Alcotest.test_case "lp infeasible detected" `Quick test_lp_infeasible_detected;
      Alcotest.test_case "two-speed support" `Quick test_two_speed_support;
      Alcotest.test_case "cont <= vdd <= discrete" `Slow test_lp_between_continuous_and_discrete;
      Alcotest.test_case "more levels help" `Quick test_lp_tightens_with_more_levels;
      Alcotest.test_case "emulation time-exact" `Quick test_emulation_time_exact;
      Alcotest.test_case "emulation energy sandwich" `Quick test_emulation_energy_sandwich;
      Alcotest.test_case "single task analytic mix" `Quick test_single_task_exact_mix;
      QCheck_alcotest.to_alcotest qcheck_vdd_below_best_single_speed;
    ] )
