(* Tests for the convex-hull view of VDD-HOPPING, the realised-trace
   simulator, the Cholesky generator, and cross-solver property
   tests. *)

let rel = Rel.make ~lambda0:1e-5 ~sensitivity:3. ~fmin:0.2 ~fmax:1.0 ~frel:0.8 ()
let levels = [| 0.2; 0.4; 0.6; 0.8; 1.0 |]

(* --- Vdd_hull ------------------------------------------------------- *)

let test_hull_at_level_points () =
  (* g(1/f_k) = f_k² exactly at every level *)
  Array.iter
    (fun f ->
      Alcotest.(check (float 1e-9))
        (Printf.sprintf "g(1/%g)" f)
        (f *. f)
        (Vdd_hull.energy_per_work ~levels (1. /. f)))
    levels

let test_hull_between_levels () =
  (* between levels, g is the chord: strictly above the continuous
     curve u⁻², strictly below the worse of the two endpoints *)
  let u = 0.5 *. ((1. /. 0.8) +. (1. /. 0.6)) in
  let g = Vdd_hull.energy_per_work ~levels u in
  Alcotest.(check bool) "above continuous curve" true (g > (1. /. u) ** 2.);
  Alcotest.(check bool) "below slow endpoint" true (g < 0.8 *. 0.8)

let test_hull_too_fast_infeasible () =
  Alcotest.(check bool) "u < 1/fmax" true
    (Vdd_hull.energy_per_work ~levels 0.5 = infinity)

let test_hull_slow_saturates () =
  (* slower than 1/fmin: cost stays at the fmin point *)
  Alcotest.(check (float 1e-9)) "saturated" (0.2 *. 0.2)
    (Vdd_hull.energy_per_work ~levels 100.)

let test_hull_chain_matches_lp () =
  List.iter
    (fun seed ->
      let rng = Es_util.Rng.create ~seed in
      let dag = Generators.chain rng ~n:6 ~wlo:0.5 ~whi:2.5 in
      let m = Mapping.single_processor dag in
      let w = Dag.total_weight dag in
      List.iter
        (fun slack ->
          let deadline = slack *. w in
          match
            ( Vdd_hull.chain_energy ~levels ~total_weight:w ~deadline,
              Bicrit_vdd.energy ~deadline ~levels m )
          with
          | Some closed, Some lp ->
            Alcotest.(check bool)
              (Printf.sprintf "closed %.6f = LP %.6f (slack %.2f)" closed lp slack)
              true
              (Float.abs (closed -. lp) < 1e-6 *. closed)
          | None, None -> ()
          | _ -> Alcotest.fail "feasibility disagreement")
        [ 1.05; 1.33; 1.8; 2.6; 6. ])
    [ 601; 602 ]

let test_hull_chain_schedule_feasible () =
  let rng = Es_util.Rng.create ~seed:603 in
  let dag = Generators.chain rng ~n:5 ~wlo:0.5 ~whi:2. in
  let m = Mapping.single_processor dag in
  let deadline = 1.5 *. Dag.total_weight dag in
  match Vdd_hull.chain_schedule ~levels ~deadline m with
  | None -> Alcotest.fail "feasible"
  | Some sched ->
    Alcotest.(check bool) "validator accepts" true
      (Validate.is_feasible ~deadline ~model:(Speed.vdd_hopping levels) sched);
    (* energy matches the closed form *)
    (match
       Vdd_hull.chain_energy ~levels ~total_weight:(Dag.total_weight dag) ~deadline
     with
    | Some closed ->
      Alcotest.(check bool) "energy matches closed form" true
        (Float.abs (Schedule.energy sched -. closed) < 1e-6 *. closed)
    | None -> Alcotest.fail "closed form exists")

let test_hull_bracket_consecutive () =
  match Vdd_hull.bracket_for_time ~levels 1.4 with
  | Some (lo, hi) ->
    (* 1/0.8 = 1.25 <= 1.4 <= 1/0.6 ≈ 1.67 *)
    Alcotest.(check (float 1e-9)) "lo" 0.6 lo;
    Alcotest.(check (float 1e-9)) "hi" 0.8 hi
  | None -> Alcotest.fail "bracket exists"

(* --- Trace ---------------------------------------------------------- *)

let traced_schedule () =
  let rng = Es_util.Rng.create ~seed:611 in
  let dag = Generators.chain rng ~n:5 ~wlo:0.5 ~whi:1.5 in
  let m = Mapping.single_processor dag in
  let s = Schedule.uniform m ~speed:0.5 in
  (* re-execute every task so failures are absorbed *)
  List.fold_left
    (fun acc i ->
      match Schedule.executions acc i with
      | e :: _ -> Schedule.with_execs acc i [ e; e ]
      | [] -> acc)
    s
    (List.init (Dag.n dag) Fun.id)

let hot = Rel.make ~lambda0:0.05 ~sensitivity:3. ~fmin:0.2 ~fmax:1.0 ~frel:0.8 ()

let test_trace_events_ordered_and_within_makespan () =
  let sched = traced_schedule () in
  let t = Trace.run (Es_util.Rng.create ~seed:612) ~rel:hot sched in
  List.iter
    (fun (ev : Trace.event) ->
      Alcotest.(check bool) "start < finish" true (ev.start < ev.finish);
      Alcotest.(check bool) "within makespan" true (ev.finish <= t.Trace.makespan +. 1e-9))
    t.Trace.events;
  let rec sorted = function
    | (a : Trace.event) :: (b :: _ as rest) -> a.start <= b.start && sorted rest
    | _ -> true
  in
  Alcotest.(check bool) "sorted by start" true (sorted t.Trace.events)

let test_trace_second_attempt_iff_failure () =
  let sched = traced_schedule () in
  let t = Trace.run (Es_util.Rng.create ~seed:613) ~rel:hot sched in
  (* a second attempt of task i exists iff its first attempt failed *)
  List.iter
    (fun (ev : Trace.event) ->
      if ev.attempt = 2 then begin
        match
          List.find_opt
            (fun (e : Trace.event) -> e.task = ev.task && e.attempt = 1)
            t.Trace.events
        with
        | None -> Alcotest.fail "second attempt without a first attempt"
        | Some first ->
          Alcotest.(check bool) "first failed" true first.failed;
          Alcotest.(check (float 1e-9)) "back to back" first.finish ev.start
      end)
    t.Trace.events

let test_trace_energy_consistent_with_events () =
  let sched = traced_schedule () in
  let t = Trace.run (Es_util.Rng.create ~seed:614) ~rel:hot sched in
  (* realised energy at constant speed 0.5: 0.5³ × total event time *)
  let event_time =
    List.fold_left (fun acc (e : Trace.event) -> acc +. (e.finish -. e.start)) 0. t.Trace.events
  in
  Alcotest.(check (float 1e-6)) "energy = f³·time" (0.125 *. event_time) t.Trace.energy

let test_trace_render () =
  let sched = traced_schedule () in
  let t = Trace.run (Es_util.Rng.create ~seed:615) ~rel:hot sched in
  let s = Trace.render ?width:None sched t in
  Alcotest.(check bool) "renders" true (String.length s > 0)

let test_trace_success_agrees_with_sim () =
  let sched = traced_schedule () in
  (* identical seeds must produce identical verdicts in Sim.run *)
  let t = Trace.run (Es_util.Rng.create ~seed:616) ~rel:hot sched in
  let r = Sim.run (Es_util.Rng.create ~seed:616) ~rel:hot sched in
  Alcotest.(check bool) "same success" r.Sim.success t.Trace.success;
  Alcotest.(check (float 1e-9)) "same makespan" r.Sim.realised_makespan t.Trace.makespan

(* --- cholesky generator --------------------------------------------- *)

let test_cholesky_structure () =
  let d = Generators.cholesky ~n:3 in
  (* 3 potrf + 3 trsm + 3 syrk + 1 gemm = 10 tasks *)
  Alcotest.(check int) "task count" 10 (Dag.n d);
  Alcotest.(check (list int)) "single source (potrf 0)" [ 0 ] (Dag.sources d);
  (* the last potrf is the sink of the factorisation *)
  Alcotest.(check bool) "acyclic (topo order exists)" true
    (Array.length (Dag.topological_order d) = 10)

let test_cholesky_critical_path_grows () =
  let cp n =
    let d = Generators.cholesky ~n in
    Dag.critical_path_length d ~durations:(Dag.weights d)
  in
  Alcotest.(check bool) "cp grows with n" true (cp 5 > cp 3 && cp 3 > cp 2)

(* --- cross-solver property tests ------------------------------------ *)

let qcheck_solver_chain_consistency =
  QCheck.Test.make ~name:"barrier = closed form on random chains" ~count:40
    QCheck.(pair (int_bound 100_000) (float_range 1.1 4.))
    (fun (seed, slack) ->
      let rng = Es_util.Rng.create ~seed in
      let n = 2 + Es_util.Rng.int rng 6 in
      let dag = Generators.chain rng ~n ~wlo:0.5 ~whi:2.5 in
      let m = Mapping.single_processor dag in
      let w = Dag.total_weight dag in
      let deadline = slack *. w in
      match
        ( Bicrit_continuous.chain ~weights:(Dag.weights dag) ~deadline ~fmin:0.05 ~fmax:1.,
          Bicrit_continuous.solve_general ~lo:(Array.make n 0.05) ~hi:(Array.make n 1.)
            ~deadline m )
      with
      | Some cf, Some nm ->
        Float.abs (cf.Bicrit_continuous.energy -. nm.Bicrit_continuous.energy)
        < 1e-5 *. cf.Bicrit_continuous.energy
      | None, None -> true
      | _ -> false)

let qcheck_greedy_feasible_schedules =
  QCheck.Test.make ~name:"tri-crit greedy schedules always validate" ~count:25
    QCheck.(pair (int_bound 100_000) (float_range 1.2 5.))
    (fun (seed, slack) ->
      let rng = Es_util.Rng.create ~seed in
      let n = 3 + Es_util.Rng.int rng 7 in
      let dag = Generators.chain rng ~n ~wlo:0.5 ~whi:2.5 in
      let m = Mapping.single_processor dag in
      let deadline = slack *. Dag.total_weight dag in
      match Tricrit_chain.solve_greedy ~rel ~deadline m with
      | None -> slack < 1.0001 (* only near-tight deadlines may fail *)
      | Some sol ->
        Validate.is_feasible ~deadline ~rel ~model:(Speed.continuous ~fmin:0.2 ~fmax:1.)
          sol.Tricrit_chain.schedule)

let qcheck_vdd_lp_above_continuous =
  QCheck.Test.make ~name:"vdd LP >= continuous optimum" ~count:20
    QCheck.(int_bound 100_000)
    (fun seed ->
      let rng = Es_util.Rng.create ~seed in
      let dag = Generators.random_layered rng ~layers:3 ~width:3 ~density:0.5 ~wlo:1. ~whi:2. in
      let m = List_sched.schedule dag ~p:2 ~priority:List_sched.Bottom_level in
      let dmin = List_sched.makespan_at_speed m ~f:1. in
      let deadline = 1.5 *. dmin in
      let n = Dag.n dag in
      match
        ( Bicrit_vdd.energy ~deadline ~levels m,
          Bicrit_continuous.solve_general ~lo:(Array.make n 0.2) ~hi:(Array.make n 1.)
            ~deadline m )
      with
      | Some lp, Some cont -> lp >= cont.Bicrit_continuous.energy *. (1. -. 1e-6)
      | _ -> false)

let suite =
  ( "hull-trace-properties",
    [
      Alcotest.test_case "hull at level points" `Quick test_hull_at_level_points;
      Alcotest.test_case "hull between levels" `Quick test_hull_between_levels;
      Alcotest.test_case "hull too fast" `Quick test_hull_too_fast_infeasible;
      Alcotest.test_case "hull slow saturates" `Quick test_hull_slow_saturates;
      Alcotest.test_case "hull chain = LP" `Slow test_hull_chain_matches_lp;
      Alcotest.test_case "hull schedule feasible" `Quick test_hull_chain_schedule_feasible;
      Alcotest.test_case "hull bracket consecutive" `Quick test_hull_bracket_consecutive;
      Alcotest.test_case "trace ordered events" `Quick
        test_trace_events_ordered_and_within_makespan;
      Alcotest.test_case "trace 2nd attempt iff failure" `Quick
        test_trace_second_attempt_iff_failure;
      Alcotest.test_case "trace energy consistent" `Quick
        test_trace_energy_consistent_with_events;
      Alcotest.test_case "trace renders" `Quick test_trace_render;
      Alcotest.test_case "trace agrees with sim" `Quick test_trace_success_agrees_with_sim;
      Alcotest.test_case "cholesky structure" `Quick test_cholesky_structure;
      Alcotest.test_case "cholesky critical path" `Quick test_cholesky_critical_path_grows;
      QCheck_alcotest.to_alcotest qcheck_solver_chain_consistency;
      QCheck_alcotest.to_alcotest qcheck_greedy_feasible_schedules;
      QCheck_alcotest.to_alcotest qcheck_vdd_lp_above_continuous;
    ] )

(* --- Tricrit_sp ------------------------------------------------------ *)

let test_sp_heuristic_feasible () =
  let rng = Es_util.Rng.create ~seed:621 in
  for _ = 1 to 3 do
    let sp = Generators.random_sp rng ~n:8 ~wlo:0.5 ~whi:3. in
    let dag = Sp.to_dag sp in
    let mapping = Mapping.one_task_per_proc dag in
    let dmin = List_sched.makespan_at_speed mapping ~f:1. in
    List.iter
      (fun slack ->
        let deadline = slack *. dmin in
        match Tricrit_sp.solve ~rel ~deadline sp with
        | None -> ()
        | Some sol ->
          Alcotest.(check bool) "validator accepts" true
            (Validate.is_feasible ~deadline ~rel
               ~model:(Speed.continuous ~fmin:0.2 ~fmax:1.) sol.Heuristics.schedule))
      [ 1.2; 2.; 3.5 ]
  done

let test_sp_heuristic_on_fork_matches_fork_oracle () =
  (* on a fork, family C's window allocation is exactly the fork
     algorithm's structure, so it should be near the fork optimum *)
  let rng = Es_util.Rng.create ~seed:622 in
  let dag = Generators.fork rng ~n:6 ~wlo:0.5 ~whi:3. in
  let sp =
    Sp.fork ~root:(Dag.weight dag 0) (Array.init 6 (fun i -> Dag.weight dag (i + 1)))
  in
  let dmin = List_sched.makespan_at_speed (Mapping.one_task_per_proc dag) ~f:1. in
  List.iter
    (fun slack ->
      let deadline = slack *. dmin in
      match (Tricrit_sp.solve ~rel ~deadline sp, Tricrit_fork.solve ?grid:None ~rel ~deadline dag) with
      | Some c, Some poly ->
        Alcotest.(check bool)
          (Printf.sprintf "within 5%% of fork optimum (%.4f vs %.4f, slack %.1f)"
             c.Heuristics.energy poly.Tricrit_fork.energy slack)
          true
          (c.Heuristics.energy <= poly.Tricrit_fork.energy *. 1.05)
      | None, None -> ()
      | _ -> Alcotest.fail "feasibility disagreement")
    [ 1.3; 2.; 3. ]

let test_sp_decide_subset_leaf_order () =
  let sp = Sp.Series (Sp.leaf 1., Sp.Parallel (Sp.leaf 2., Sp.leaf 3.)) in
  let subset = Tricrit_sp.decide_subset ~rel ~deadline:100. sp in
  Alcotest.(check int) "one decision per leaf" 3 (Array.length subset)

let sp_cases =
  [
    Alcotest.test_case "sp heuristic feasible" `Slow test_sp_heuristic_feasible;
    Alcotest.test_case "sp heuristic ~ fork oracle" `Slow
      test_sp_heuristic_on_fork_matches_fork_oracle;
    Alcotest.test_case "sp decide subset leaf order" `Quick test_sp_decide_subset_leaf_order;
  ]

let suite = (fst suite, snd suite @ sp_cases)
