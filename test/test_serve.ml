(* Tests for the serving subsystem (lib/serve): wire-protocol parsing
   and rendering, canonicalization invariance (the qcheck properties
   ISSUE 9 asks for), structural-cache semantics including the
   rescale-hit soundness conditions, and the batching server's
   admission control and determinism. *)

module Protocol = Es_serve.Protocol
module Canon = Es_serve.Canon
module Cache = Es_serve.Cache
module Server = Es_serve.Server
module CGen = Es_check.Gen
module Rng = Es_util.Rng
module Pool = Es_par.Pool

(* --- helpers -------------------------------------------------------- *)

let continuous_instance (inst : CGen.inst) =
  {
    Protocol.weights = inst.CGen.weights;
    edges = inst.CGen.edges;
    procs = inst.CGen.procs;
    order = None;
    model = Speed.continuous ~fmin:(CGen.fmin inst) ~fmax:(CGen.fmax inst);
    deadline = CGen.deadline inst;
    rel = None;
  }

(* Relabel an instance and its resolved order: new task [j] is old
   task [sigma.(j)], and the processor chains are shuffled too (the
   canonical keys must not see either renaming). *)
let relabel ~sigma ~proc_rot (pi : Protocol.instance) order =
  let n = Array.length pi.Protocol.weights in
  let inv = Array.make n 0 in
  Array.iteri (fun nw old -> inv.(old) <- nw) sigma;
  let weights = Array.init n (fun j -> pi.Protocol.weights.(sigma.(j))) in
  let edges = List.map (fun (a, b) -> (inv.(a), inv.(b))) pi.Protocol.edges in
  let p = Array.length order in
  let order' =
    Array.init p (fun q ->
        List.map (fun t -> inv.(t)) order.((q + proc_rot) mod p))
  in
  ({ pi with Protocol.weights; edges }, order')

let permutation rng n =
  let sigma = Array.init n (fun i -> i) in
  Rng.shuffle rng sigma;
  sigma

let solve_line line =
  let srv = Server.create { Server.default_config with Server.batch = 1 } in
  match Server.process_batch srv ~pool:None [ line ] with
  | [ r ] -> r
  | _ -> Alcotest.fail "expected exactly one response"

(* --- protocol ------------------------------------------------------- *)

let chain_line =
  {|{"id":7,"tasks":[1,2,3],"edges":[[0,1],[1,2]],"model":{"kind":"continuous","fmin":0.1,"fmax":5},"deadline":10}|}

let test_parse_roundtrip () =
  match Protocol.parse_line chain_line with
  | Protocol.Malformed m -> Alcotest.fail m
  | Protocol.Request req ->
    Alcotest.(check int) "tasks" 3 (Array.length req.Protocol.inst.Protocol.weights);
    Alcotest.(check int) "edges" 2 (List.length req.Protocol.inst.Protocol.edges);
    Alcotest.(check (float 0.)) "deadline" 10. req.Protocol.inst.Protocol.deadline

let test_parse_rejects () =
  let malformed = function
    | Protocol.Malformed _ -> true
    | Protocol.Request _ -> false
  in
  List.iter
    (fun line ->
      Alcotest.(check bool) ("rejects " ^ line) true (malformed (Protocol.parse_line line)))
    [
      "not json";
      "[1,2]";
      {|{"tasks":[1],"deadline":1}|};
      {|{"tasks":[1],"model":{"kind":"warp"},"deadline":1}|};
      {|{"tasks":[1],"model":{"kind":"continuous","fmin":2,"fmax":1},"deadline":1}|};
      {|{"tasks":[1],"model":{"kind":"continuous","fmin":0.1,"fmax":1},"deadline":1,"procs":0}|};
      {|{"tasks":"x","model":{"kind":"continuous","fmin":0.1,"fmax":1},"deadline":1}|};
    ]

let test_render_is_compact_json () =
  let r = solve_line chain_line in
  (* one line, parseable, and echoing the id *)
  Alcotest.(check bool) "single line" false (String.contains r '\n');
  let j = Es_obs.Obs_json.of_string r in
  (match Es_obs.Obs_json.member "id" j with
  | Some (Es_obs.Obs_json.Num x) -> Alcotest.(check (float 0.)) "id" 7. x
  | _ -> Alcotest.fail "id missing");
  match Es_obs.Obs_json.member "status" j with
  | Some (Es_obs.Obs_json.Str s) -> Alcotest.(check string) "status" "ok" s
  | _ -> Alcotest.fail "status missing"

(* --- canon: qcheck properties --------------------------------------- *)

let qcheck_canon_relabel_invariant =
  let open QCheck2 in
  let gen = Gen.pair (CGen.qgen ()) (Gen.int_bound 1_000_000) in
  Test.make ~name:"canon: keys invariant under task/processor relabeling"
    ~count:200 gen (fun (ginst, seed) ->
      let pi = continuous_instance ginst in
      let order = Protocol.resolve_order pi in
      let n = Array.length pi.Protocol.weights in
      let rng = Rng.create ~seed in
      let sigma = permutation rng n in
      let proc_rot = Rng.int rng (max 1 (Array.length order)) in
      let pi', order' = relabel ~sigma ~proc_rot pi order in
      let c = Canon.of_instance ~order pi in
      let c' = Canon.of_instance ~order:order' pi' in
      String.equal c.Canon.exact_key c'.Canon.exact_key
      && Option.equal String.equal c.Canon.scaled_key c'.Canon.scaled_key)

let qcheck_canon_scaled_key_agreement =
  let open QCheck2 in
  let gen =
    Gen.triple (CGen.qgen ()) (Gen.float_range 0.5 3.) (Gen.float_range 0.5 3.)
  in
  Test.make ~name:"canon: scaled key ignores uniform work/deadline scaling"
    ~count:200 gen (fun (ginst, c, d) ->
      let pi = continuous_instance ginst in
      let order = Protocol.resolve_order pi in
      let scaled =
        {
          pi with
          Protocol.weights = Array.map (fun w -> w *. c) pi.Protocol.weights;
          deadline = pi.Protocol.deadline *. d;
        }
      in
      let k = Canon.of_instance ~order pi in
      let k' = Canon.of_instance ~order scaled in
      (* same canonical shape -> same scaled key; the exact key must
         split unless the scaling is the identity *)
      Option.equal String.equal k.Canon.scaled_key k'.Canon.scaled_key
      && Option.is_some k.Canon.scaled_key
      && (Float.abs (c -. 1.) < 1e-9 && Float.abs (d -. 1.) < 1e-9
         || not (String.equal k.Canon.exact_key k'.Canon.exact_key)))

let test_canon_distinguishes_chains () =
  (* same weight multiset, different precedence order: distinct keys *)
  let mk weights =
    let pi =
      {
        Protocol.weights;
        edges = [ (0, 1); (1, 2) ];
        procs = 1;
        order = None;
        model = Speed.continuous ~fmin:0.1 ~fmax:5.;
        deadline = 10.;
        rel = None;
      }
    in
    let order = Protocol.resolve_order pi in
    Canon.of_instance ~order pi
  in
  let a = mk [| 1.; 2.; 3. |] and b = mk [| 2.; 1.; 3. |] in
  Alcotest.(check bool) "chain 1-2-3 <> chain 2-1-3" false
    (String.equal a.Canon.exact_key b.Canon.exact_key)

(* --- cache ---------------------------------------------------------- *)

let solved_of (pi : Protocol.instance) =
  match
    Solver.solve
      {
        Solver.mapping = Protocol.resolve_mapping pi;
        model = pi.Protocol.model;
        deadline = pi.Protocol.deadline;
        rel = pi.Protocol.rel;
      }
  with
  | Ok a ->
    Protocol.Solved
      (Protocol.solved_of_schedule ~engine:a.Solver.engine ~exact:a.Solver.exact
         a.Solver.schedule)
  | Error e -> Alcotest.fail e

let diamond =
  {
    Protocol.weights = [| 1.; 1.5; 2.; 1. |];
    edges = [ (0, 1); (0, 2); (1, 3); (2, 3) ];
    procs = 2;
    order = None;
    model = Speed.continuous ~fmin:0.05 ~fmax:5.;
    deadline = 8.;
    rel = None;
  }

let test_cache_exact_hit_permutes () =
  let cache = Cache.create () in
  let order = Protocol.resolve_order diamond in
  let canon = Canon.of_instance ~order diamond in
  Cache.insert cache ~inst:diamond ~canon (solved_of diamond);
  (* relabeled duplicate must hit and return speeds in its own labels *)
  let sigma = [| 3; 2; 1; 0 |] in
  let pi', order' = relabel ~sigma ~proc_rot:1 diamond order in
  let canon' = Canon.of_instance ~order:order' pi' in
  match Cache.lookup cache ~inst:pi' ~order:order' ~canon:canon' with
  | Some { Cache.status = Protocol.Solved s; disposition = Protocol.Hit } ->
    (match solved_of pi' with
    | Protocol.Solved fresh ->
      Array.iteri
        (fun i v ->
          Alcotest.(check (float 1e-6)) (Printf.sprintf "speed %d" i) fresh.Protocol.speeds.(i) v)
        s.Protocol.speeds
    | _ -> Alcotest.fail "fresh solve failed")
  | _ -> Alcotest.fail "expected an exact hit"

let test_cache_rescale_hit_law () =
  let cache = Cache.create () in
  let order = Protocol.resolve_order diamond in
  let canon = Canon.of_instance ~order diamond in
  (match solved_of diamond with
  | Protocol.Solved s as status ->
    Cache.insert cache ~inst:diamond ~canon status;
    let c = 2. and d = 1.25 in
    let scaled =
      {
        diamond with
        Protocol.weights = Array.map (fun w -> w *. c) diamond.Protocol.weights;
        deadline = diamond.Protocol.deadline *. d;
      }
    in
    let order' = Protocol.resolve_order scaled in
    let canon' = Canon.of_instance ~order:order' scaled in
    (match Cache.lookup cache ~inst:scaled ~order:order' ~canon:canon' with
    | Some { Cache.status = Protocol.Solved s'; disposition = Protocol.Rescale_hit } ->
      (* E' = E * c^3/d^2, f' = f * c/d: the scaling laws of escheck *)
      Alcotest.(check (float 1e-4))
        "energy follows c3/d2"
        (s.Protocol.energy *. (c ** 3.) /. (d ** 2.))
        s'.Protocol.energy;
      Array.iteri
        (fun i v ->
          Alcotest.(check (float 1e-6)) (Printf.sprintf "speed %d scales" i)
            (s.Protocol.speeds.(i) *. c /. d)
            v)
        s'.Protocol.speeds
    | _ -> Alcotest.fail "expected a rescale hit")
  | _ -> Alcotest.fail "diamond must solve")

let test_cache_rescale_requires_interior () =
  (* a deadline so loose every speed clamps at fmin: the bound is
     active, the optimum is not scale-covariant, so no rescaling *)
  let tight = { diamond with Protocol.deadline = 50.; model = Speed.continuous ~fmin:0.8 ~fmax:4. } in
  let cache = Cache.create () in
  let order = Protocol.resolve_order tight in
  let canon = Canon.of_instance ~order tight in
  Cache.insert cache ~inst:tight ~canon (solved_of tight);
  let scaled =
    { tight with Protocol.deadline = tight.Protocol.deadline *. 1.05 }
  in
  let canon' = Canon.of_instance ~order scaled in
  match Cache.lookup cache ~inst:scaled ~order ~canon:canon' with
  | None -> ()
  | Some { Cache.disposition = Protocol.Rescale_hit; _ } ->
    Alcotest.fail "boundary optimum must not be rescaled"
  | Some _ -> Alcotest.fail "unexpected exact hit"

(* --- server --------------------------------------------------------- *)

let test_server_hits_across_batches () =
  let srv = Server.create { Server.default_config with Server.batch = 1 } in
  match Server.process_batch srv ~pool:None [ chain_line ] with
  | [ first ] ->
    (match Server.process_batch srv ~pool:None [ chain_line ] with
    | [ second ] ->
      Alcotest.(check bool) "first is a miss" true
        (Astring.String.is_infix ~affix:{|"cache":"miss"|} first);
      Alcotest.(check bool) "second is a hit" true
        (Astring.String.is_infix ~affix:{|"cache":"hit"|} second)
    | _ -> Alcotest.fail "one response expected")
  | _ -> Alcotest.fail "one response expected"

let test_server_sheds_beyond_queue () =
  let srv =
    Server.create { Server.default_config with Server.batch = 4; queue = 1 }
  in
  let lines = [ chain_line; chain_line; "nonsense"; chain_line ] in
  match Server.process_batch srv ~pool:None lines with
  | [ r1; r2; r3; r4 ] ->
    Alcotest.(check bool) "1 admitted" true
      (Astring.String.is_infix ~affix:{|"status":"ok"|} r1);
    Alcotest.(check bool) "2 shed" true
      (Astring.String.is_infix ~affix:{|"status":"shed"|} r2);
    Alcotest.(check bool) "malformed answered, no slot" true
      (Astring.String.is_infix ~affix:{|"status":"error"|} r3);
    Alcotest.(check bool) "4 shed" true
      (Astring.String.is_infix ~affix:{|"status":"shed"|} r4)
  | _ -> Alcotest.fail "four responses expected"

let trace_lines () =
  let rng = Rng.create ~seed:41 in
  let insts =
    List.init 10 (fun i ->
        let inst = CGen.generate rng in
        let pi = continuous_instance inst in
        let nums xs =
          Es_obs.Obs_json.List
            (Array.to_list (Array.map (fun x -> Es_obs.Obs_json.Num x) xs))
        in
        Es_obs.Obs_json.to_compact_string
          (Es_obs.Obs_json.Obj
             [
               ("id", Es_obs.Obs_json.Num (float_of_int i));
               ("tasks", nums pi.Protocol.weights);
               ( "edges",
                 Es_obs.Obs_json.List
                   (List.map
                      (fun (a, b) ->
                        Es_obs.Obs_json.List
                          [
                            Es_obs.Obs_json.Num (float_of_int a);
                            Es_obs.Obs_json.Num (float_of_int b);
                          ])
                      pi.Protocol.edges) );
               ("procs", Es_obs.Obs_json.Num (float_of_int pi.Protocol.procs));
               ( "model",
                 Es_obs.Obs_json.Obj
                   [
                     ("kind", Es_obs.Obs_json.Str "continuous");
                     ("fmin", Es_obs.Obs_json.Num (CGen.fmin inst));
                     ("fmax", Es_obs.Obs_json.Num (CGen.fmax inst));
                   ] );
               ("deadline", Es_obs.Obs_json.Num pi.Protocol.deadline);
             ]))
  in
  insts @ insts (* every instance twice: second pass hits *)

let run_whole_trace pool =
  let srv =
    Server.create { Server.default_config with Server.batch = 5; selfcheck = 1 }
  in
  let rec go acc = function
    | [] -> List.concat (List.rev acc)
    | lines ->
      let batch = List.filteri (fun i _ -> i < 5) lines in
      let rest = List.filteri (fun i _ -> i >= 5) lines in
      go (Server.process_batch srv ~pool batch :: acc) rest
  in
  go [] (trace_lines ())

let test_server_jobs_determinism () =
  let seq = run_whole_trace None in
  let par = Pool.with_pool ~domains:2 (fun pool -> run_whole_trace (Some pool)) in
  Alcotest.(check (list string)) "byte-identical across pool sizes" seq par

let suite =
  ( "serve",
    [
      Alcotest.test_case "protocol: parse round-trip" `Quick test_parse_roundtrip;
      Alcotest.test_case "protocol: malformed inputs rejected" `Quick test_parse_rejects;
      Alcotest.test_case "protocol: responses are compact JSON" `Quick
        test_render_is_compact_json;
      QCheck_alcotest.to_alcotest qcheck_canon_relabel_invariant;
      QCheck_alcotest.to_alcotest qcheck_canon_scaled_key_agreement;
      Alcotest.test_case "canon: weight order matters on a chain" `Quick
        test_canon_distinguishes_chains;
      Alcotest.test_case "cache: exact hit permutes speeds" `Quick
        test_cache_exact_hit_permutes;
      Alcotest.test_case "cache: rescale hit follows the scaling laws" `Quick
        test_cache_rescale_hit_law;
      Alcotest.test_case "cache: boundary optima are not rescaled" `Quick
        test_cache_rescale_requires_interior;
      Alcotest.test_case "server: duplicate hits across batches" `Quick
        test_server_hits_across_batches;
      Alcotest.test_case "server: sheds beyond the queue bound" `Quick
        test_server_sheds_beyond_queue;
      Alcotest.test_case "server: responses identical across pool sizes" `Quick
        test_server_jobs_determinism;
    ] )
