(* Tests for the Pareto-front exploration and an end-to-end pipeline
   integration test (generate → map → optimize → validate →
   simulate). *)

let rel = Rel.make ~lambda0:1e-5 ~sensitivity:3. ~fmin:0.2 ~fmax:1.0 ~frel:0.8 ()

let test_bicrit_front_monotone () =
  let rng = Es_util.Rng.create ~seed:401 in
  let dag = Generators.random_layered rng ~layers:4 ~width:3 ~density:0.5 ~wlo:1. ~whi:3. in
  let m = List_sched.schedule dag ~p:2 ~priority:List_sched.Bottom_level in
  let dmin = List_sched.makespan_at_speed m ~f:1. in
  let deadlines = List.map (fun s -> s *. dmin) [ 1.05; 1.3; 1.7; 2.2; 3. ] in
  let front = Pareto.bicrit_front ~fmin:0.2 ~fmax:1. ~deadlines m in
  Alcotest.(check int) "all feasible" 5 (List.length front);
  Alcotest.(check bool) "is a front" true (Pareto.is_front front)

let test_tricrit_front () =
  let rng = Es_util.Rng.create ~seed:402 in
  let dag = Generators.chain rng ~n:6 ~wlo:1. ~whi:2. in
  let m = Mapping.single_processor dag in
  let dmin = Dag.total_weight dag in
  let deadlines = List.map (fun s -> s *. dmin) [ 1.1; 1.8; 3.; 4.5 ] in
  let front = Pareto.tricrit_front ~rel ~deadlines m in
  Alcotest.(check int) "all feasible" 4 (List.length front);
  (* re-execution count grows along the front *)
  let counts = List.map (fun p -> p.Pareto.n_reexecuted) front in
  Alcotest.(check bool) "re-exec eventually engages" true
    (List.fold_left max 0 counts > 0)

let test_dominates () =
  let a = { Pareto.deadline = 1.; energy = 1.; n_reexecuted = 0 } in
  let b = { Pareto.deadline = 2.; energy = 2.; n_reexecuted = 0 } in
  Alcotest.(check bool) "a dominates b" true (Pareto.dominates a b);
  Alcotest.(check bool) "b not dominates a" false (Pareto.dominates b a);
  Alcotest.(check bool) "no self domination" false (Pareto.dominates a a)

let test_is_front_rejects_dominated () =
  let pts =
    [
      { Pareto.deadline = 1.; energy = 1.; n_reexecuted = 0 };
      { Pareto.deadline = 2.; energy = 2.; n_reexecuted = 0 };
    ]
  in
  Alcotest.(check bool) "dominated point detected" false (Pareto.is_front pts)

(* end-to-end: full pipeline on every speed model *)
let test_pipeline_all_models () =
  let rng = Es_util.Rng.create ~seed:403 in
  let dag = Generators.random_layered rng ~layers:3 ~width:3 ~density:0.5 ~wlo:1. ~whi:2. in
  let m = List_sched.schedule dag ~p:2 ~priority:List_sched.Bottom_level in
  let dmin = List_sched.makespan_at_speed m ~f:1. in
  let deadline = 2. *. dmin in
  let levels = [| 0.2; 0.4; 0.6; 0.8; 1.0 |] in
  let n = Dag.n dag in
  let schedules =
    [
      ( "continuous",
        Speed.continuous ~fmin:0.2 ~fmax:1.,
        Bicrit_continuous.solve ~deadline ~fmin:0.2 ~fmax:1. m );
      ("vdd", Speed.vdd_hopping levels, Bicrit_vdd.solve ~deadline ~levels m);
      ( "discrete",
        Speed.discrete levels,
        Option.map (fun (r : Bicrit_discrete.exact) -> r.schedule)
          (Bicrit_discrete.solve_exact ?node_limit:None ~deadline ~levels m) );
      ( "incremental",
        Speed.incremental ~fmin:0.2 ~fmax:1. ~delta:0.2,
        Bicrit_incremental.approximate ~deadline ~fmin:0.2 ~fmax:1. ~delta:0.2 m );
    ]
  in
  ignore n;
  List.iter
    (fun (name, model, sched) ->
      match sched with
      | None -> Alcotest.failf "%s infeasible" name
      | Some s ->
        Alcotest.(check bool) (name ^ " validates") true
          (Validate.is_feasible ~deadline ~model s);
        (* simulate: without reliability constraints enforced, just
           check the simulator runs and reports sane numbers *)
        let report = Sim.monte_carlo (Es_util.Rng.create ~seed:404) ~rel ~trials:200 s in
        Alcotest.(check bool) (name ^ " sim sane") true
          (report.Sim.success_rate >= 0. && report.Sim.success_rate <= 1.))
    schedules

(* Warm-start invariance: the vdd front computed with warm-chained
   bases must equal the all-cold front point-for-point, and must not
   depend on how many pool domains execute the 25-deadline blocks.
   rtol 1e-9 — warm and cold solves land on the same optimal basis, so
   the agreement is near-exact, not merely approximate. *)
let check_fronts_equal ~rtol name a b =
  Alcotest.(check int) (name ^ ": same length") (List.length a) (List.length b);
  List.iter2
    (fun (p : Pareto.point) (q : Pareto.point) ->
      Alcotest.(check (float 0.)) (name ^ ": same deadline") p.deadline q.deadline;
      let scale = Float.max 1. (Float.abs p.energy) in
      Alcotest.(check bool)
        (Printf.sprintf "%s: energy %.12g ~ %.12g" name p.energy q.energy)
        true
        (Float.abs (p.energy -. q.energy) <= rtol *. scale))
    a b

let test_vdd_warm_front_invariance () =
  let levels = [| 0.2; 0.4; 0.6; 0.8; 1.0 |] in
  List.iter
    (fun seed ->
      let rng = Es_util.Rng.create ~seed in
      let dag =
        Generators.random_layered rng ~layers:4 ~width:3 ~density:0.5 ~wlo:1. ~whi:3.
      in
      let m = List_sched.schedule dag ~p:2 ~priority:List_sched.Bottom_level in
      let dmin = List_sched.makespan_at_speed m ~f:1. in
      (* more deadlines than one 25-block, so chaining + the block
         partition are both exercised *)
      let deadlines =
        List.init 30 (fun i -> dmin *. (1.02 +. (0.07 *. float_of_int i)))
      in
      let cold = Pareto.bicrit_vdd_front ~warm:false ~levels ~deadlines m in
      let warm = Pareto.bicrit_vdd_front ~warm:true ~levels ~deadlines m in
      check_fronts_equal ~rtol:1e-9 (Printf.sprintf "seed %d warm=cold" seed) cold warm;
      let warm_par =
        Es_par.Pool.with_pool ~domains:4 (fun pool ->
            Pareto.bicrit_vdd_front ~pool ~warm:true ~levels ~deadlines m)
      in
      check_fronts_equal ~rtol:0. (Printf.sprintf "seed %d jobs1=jobs4" seed) warm
        warm_par;
      Alcotest.(check bool) (Printf.sprintf "seed %d is a front" seed) true
        (Pareto.is_front warm))
    [ 407; 408 ]

let test_pipeline_tricrit_with_simulation () =
  let rng = Es_util.Rng.create ~seed:405 in
  let dag = Generators.chain rng ~n:6 ~wlo:1. ~whi:2. in
  let m = Mapping.single_processor dag in
  let deadline = 3. *. Dag.total_weight dag in
  (* a measurable fault rate for the simulation check *)
  let hot = Rel.make ~lambda0:0.02 ~sensitivity:3. ~fmin:0.2 ~fmax:1.0 ~frel:0.8 () in
  match Heuristics.best_of ~rel:hot ~deadline m with
  | None -> Alcotest.fail "feasible"
  | Some (sol, _) ->
    let report =
      Sim.monte_carlo (Es_util.Rng.create ~seed:406) ~rel:hot ~trials:20_000
        sol.Heuristics.schedule
    in
    (* every task satisfies the reliability threshold, so the empirical
       per-task failure rate must be at most the single-execution
       threshold failure of the heaviest task (plus noise) *)
    let worst_target =
      Array.fold_left Float.max 0.
        (Array.map (fun w -> Rel.target_failure hot ~w) (Dag.weights dag))
    in
    Array.iter
      (fun measured ->
        Alcotest.(check bool)
          (Printf.sprintf "measured %.5f <= target %.5f + noise" measured worst_target)
          true
          (measured <= worst_target +. 0.01))
      report.Sim.task_failure_rate

let suite =
  ( "pareto-and-pipeline",
    [
      Alcotest.test_case "bicrit front monotone" `Quick test_bicrit_front_monotone;
      Alcotest.test_case "tricrit front" `Slow test_tricrit_front;
      Alcotest.test_case "dominates" `Quick test_dominates;
      Alcotest.test_case "is_front rejects dominated" `Quick test_is_front_rejects_dominated;
      Alcotest.test_case "vdd warm front invariance" `Slow test_vdd_warm_front_invariance;
      Alcotest.test_case "pipeline all models" `Slow test_pipeline_all_models;
      Alcotest.test_case "pipeline tricrit + simulation" `Slow
        test_pipeline_tricrit_with_simulation;
    ] )
