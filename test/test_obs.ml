(* Tests for the telemetry layer (Es_obs): counter/timer/span
   semantics under a fake clock, disabled-mode no-ops, snapshot
   filtering, and the JSON round-trip used by the bench baseline.

   Obs state is process-global and shared with the instrumented
   solver libraries, so every test starts from [reset] and restores
   the disabled state and the real clock on the way out. *)

module Obs = Es_obs.Obs
module Json = Es_obs.Obs_json

(* A stepping fake clock: tests advance it explicitly, so timer totals
   are exact and assertable. *)
let fake_time = ref 0.

let with_obs f =
  Obs.reset ();
  Obs.enable ();
  fake_time := 0.;
  Obs.set_clock (fun () -> !fake_time);
  Fun.protect
    ~finally:(fun () ->
      Obs.disable ();
      Obs.reset ();
      Obs.set_clock Unix.gettimeofday)
    f

let check_float = Alcotest.(check (float 1e-12))

let test_counter_semantics () =
  with_obs @@ fun () ->
  let c = Obs.counter "test_obs_counter" in
  Alcotest.(check int) "starts at zero" 0 (Obs.value c);
  Obs.incr c;
  Obs.incr c;
  Obs.add c 5;
  Alcotest.(check int) "incr + add" 7 (Obs.value c);
  (* find-or-create returns the same cell *)
  let c' = Obs.counter "test_obs_counter" in
  Obs.incr c';
  Alcotest.(check int) "same handle by name" 8 (Obs.value c);
  Obs.reset ();
  Alcotest.(check int) "reset zeroes in place" 0 (Obs.value c)

let test_disabled_is_noop () =
  Obs.reset ();
  Obs.disable ();
  let c = Obs.counter "test_obs_disabled" in
  Obs.incr c;
  Obs.add c 10;
  Alcotest.(check int) "counter untouched" 0 (Obs.value c);
  (* when disabled, [time] must run the thunk without reading the
     clock at all — a poisoned clock proves it *)
  Obs.set_clock (fun () -> Alcotest.fail "clock read while disabled");
  Fun.protect ~finally:(fun () -> Obs.set_clock Unix.gettimeofday) @@ fun () ->
  let t = Obs.timer "test_obs_disabled_timer" in
  Alcotest.(check int) "thunk still runs" 41 (Obs.time t (fun () -> 41));
  Alcotest.(check int) "span thunk still runs" 42 (Obs.with_span "s" (fun () -> 42));
  Alcotest.(check int) "no invocation recorded" 0 (Obs.timer_count t)

let test_timer_accumulates_fake_clock () =
  with_obs @@ fun () ->
  let t = Obs.timer "test_obs_timer" in
  let v =
    Obs.time t (fun () ->
        fake_time := !fake_time +. 1.5;
        "done")
  in
  Alcotest.(check string) "returns thunk value" "done" v;
  ignore (Obs.time t (fun () -> fake_time := !fake_time +. 0.25));
  check_float "total is sum of deltas" 1.75 (Obs.timer_total t);
  Alcotest.(check int) "two invocations" 2 (Obs.timer_count t)

let test_timer_records_on_exception () =
  with_obs @@ fun () ->
  let t = Obs.timer "test_obs_timer_exn" in
  (try
     Obs.time t (fun () ->
         fake_time := !fake_time +. 2.;
         failwith "boom")
   with Failure _ -> ());
  check_float "duration recorded despite raise" 2. (Obs.timer_total t);
  Alcotest.(check int) "invocation recorded" 1 (Obs.timer_count t)

let test_timer_clamps_backward_clock () =
  with_obs @@ fun () ->
  let t = Obs.timer "test_obs_timer_backward" in
  ignore (Obs.time t (fun () -> fake_time := !fake_time -. 5.));
  check_float "negative delta clamped to zero" 0. (Obs.timer_total t);
  Alcotest.(check int) "still counted" 1 (Obs.timer_count t)

let test_span_nesting_aggregates_by_path () =
  with_obs @@ fun () ->
  for _ = 1 to 2 do
    Obs.with_span "outer" (fun () ->
        fake_time := !fake_time +. 1.;
        Obs.with_span "inner" (fun () -> fake_time := !fake_time +. 0.5))
  done;
  let snap = Obs.snapshot () in
  let find path =
    match List.find_opt (fun (s : Obs.span_stat) -> s.path = path) snap.Obs.spans with
    | Some s -> s
    | None -> Alcotest.failf "span %s missing" (String.concat "/" path)
  in
  let outer = find [ "outer" ] and inner = find [ "outer"; "inner" ] in
  Alcotest.(check int) "outer entered twice" 2 outer.Obs.span_count;
  Alcotest.(check int) "inner entered twice" 2 inner.Obs.span_count;
  check_float "outer includes inner" 3. outer.Obs.span_total;
  check_float "inner total" 1. inner.Obs.span_total

let test_snapshot_omits_idle_and_sorts () =
  with_obs @@ fun () ->
  let b = Obs.counter "test_obs_b" and a = Obs.counter "test_obs_a" in
  let idle = Obs.counter "test_obs_idle" in
  ignore idle;
  let t_idle = Obs.timer "test_obs_timer_idle" in
  ignore t_idle;
  Obs.incr b;
  Obs.incr a;
  let snap = Obs.snapshot () in
  let names = List.map fst snap.Obs.counters in
  Alcotest.(check bool) "zero counter omitted" false
    (List.mem "test_obs_idle" names);
  Alcotest.(check bool) "idle timer omitted" true (snap.Obs.timers = []);
  Alcotest.(check (list string)) "sorted by name" [ "test_obs_a"; "test_obs_b" ] names

let test_json_round_trip () =
  with_obs @@ fun () ->
  let c = Obs.counter "test_obs_rt_counter" in
  Obs.add c 17;
  let t = Obs.timer "test_obs_rt_timer" in
  ignore (Obs.time t (fun () -> fake_time := !fake_time +. 0.125));
  Obs.with_span "solve" (fun () ->
      fake_time := !fake_time +. 0.0625;
      Obs.with_span "lp" (fun () -> fake_time := !fake_time +. 0.03125));
  let snap = Obs.snapshot () in
  let parsed = Obs.of_json (Json.of_string (Obs.render_json snap)) in
  Alcotest.(check bool) "snapshot survives JSON round-trip" true (parsed = snap)

let test_render_text_mentions_everything () =
  with_obs @@ fun () ->
  let c = Obs.counter "test_obs_text_counter" in
  Obs.incr c;
  let t = Obs.timer "test_obs_text_timer" in
  ignore (Obs.time t (fun () -> fake_time := !fake_time +. 1e-3));
  let s = Obs.render_text (Obs.snapshot ()) in
  List.iter
    (fun affix ->
      Alcotest.(check bool) (affix ^ " present") true
        (Astring.String.is_infix ~affix s))
    [ "counters:"; "test_obs_text_counter"; "timers:"; "test_obs_text_timer" ];
  Obs.reset ();
  Alcotest.(check bool) "empty snapshot says so" true
    (Astring.String.is_infix ~affix:"no telemetry"
       (Obs.render_text (Obs.snapshot ())))

let test_pp_duration_units () =
  Alcotest.(check string) "seconds" "1.500 s" (Obs.pp_duration 1.5);
  Alcotest.(check string) "milliseconds" "2.500 ms" (Obs.pp_duration 2.5e-3);
  Alcotest.(check string) "microseconds" "150.000 us" (Obs.pp_duration 1.5e-4);
  Alcotest.(check string) "nanoseconds" "120 ns" (Obs.pp_duration 1.2e-7)

(* ------------------------------------------------------------------ *)
(* domain safety: no lost increments under parallel mutation           *)
(* ------------------------------------------------------------------ *)

let hammer_domains = 4
let hammer_iters = 50_000

let test_counter_hammer () =
  Obs.reset ();
  Obs.enable ();
  Fun.protect ~finally:(fun () -> Obs.disable (); Obs.reset ()) @@ fun () ->
  let c = Obs.counter "test_obs_hammer_counter" in
  let doms =
    List.init hammer_domains (fun _ ->
        Domain.spawn (fun () ->
            for _ = 1 to hammer_iters do
              Obs.incr c
            done;
            Obs.add c 2))
  in
  List.iter Domain.join doms;
  Alcotest.(check int) "no increment lost across 4 domains"
    (hammer_domains * (hammer_iters + 2))
    (Obs.value c)

let test_timer_hammer () =
  Obs.reset ();
  Obs.enable ();
  Fun.protect
    ~finally:(fun () ->
      Obs.disable ();
      Obs.reset ();
      Obs.set_clock Unix.gettimeofday)
    @@ fun () ->
    (* a constant clock: every delta is 0, so only the exact invocation
       count is interesting (and totals must stay finite and zero) *)
    Obs.set_clock (fun () -> 1.);
    let t = Obs.timer "test_obs_hammer_timer" in
    let iters = 10_000 in
    let doms =
      List.init hammer_domains (fun _ ->
          Domain.spawn (fun () ->
              for _ = 1 to iters do
                ignore (Obs.time t (fun () -> ()))
              done))
    in
    List.iter Domain.join doms;
    Alcotest.(check int) "no invocation lost across 4 domains"
      (hammer_domains * iters) (Obs.timer_count t);
    check_float "constant clock accumulates zero" 0. (Obs.timer_total t)

let test_span_stacks_are_per_domain () =
  with_obs @@ fun () ->
  (* each domain nests its own spans; a shared-stack implementation
     would interleave the paths and fabricate cross-domain nestings *)
  let doms =
    List.init hammer_domains (fun k ->
        Domain.spawn (fun () ->
            let name = Printf.sprintf "dom%d" k in
            for _ = 1 to 500 do
              Obs.with_span name (fun () -> Obs.with_span "inner" (fun () -> ()))
            done))
  in
  List.iter Domain.join doms;
  let snap = Obs.snapshot () in
  let expected =
    List.concat_map
      (fun k ->
        let name = Printf.sprintf "dom%d" k in
        [ [ name ]; [ name; "inner" ] ])
      (List.init hammer_domains Fun.id)
    |> List.sort (List.compare String.compare)
  in
  Alcotest.(check (list (list string)))
    "exactly the per-domain paths, no interleavings" expected
    (List.map (fun (s : Obs.span_stat) -> s.path) snap.Obs.spans);
  List.iter
    (fun (s : Obs.span_stat) ->
      Alcotest.(check int)
        (String.concat "/" s.path ^ " count")
        500 s.Obs.span_count)
    snap.Obs.spans

let test_json_parser_values () =
  let open Json in
  Alcotest.(check bool) "null" true (of_string "null" = Null);
  Alcotest.(check bool) "bools" true
    (of_string " true " = Bool true && of_string "false" = Bool false);
  Alcotest.(check bool) "negative exponent number" true
    (of_string "-1.25e2" = Num (-125.));
  Alcotest.(check bool) "string escapes" true
    (of_string {|"a\"b\\c\n\tA"|} = Str "a\"b\\c\n\tA");
  Alcotest.(check bool) "nested" true
    (of_string {|{"xs": [1, {"y": "z"}], "e": {}}|}
    = Obj [ ("xs", List [ Num 1.; Obj [ ("y", Str "z") ] ]); ("e", Obj []) ])

let test_json_parser_rejects_garbage () =
  List.iter
    (fun bad ->
      Alcotest.(check bool) (Printf.sprintf "rejects %S" bad) true
        (match Json.of_string bad with
        | exception Json.Parse_error _ -> true
        | _ -> false))
    [ ""; "{"; "[1,]"; "{\"a\" 1}"; "tru"; "\"unterminated"; "1 2"; "{\"a\":}" ]

let test_json_printer_round_trips_floats () =
  let open Json in
  List.iter
    (fun x ->
      match of_string (to_string (Num x)) with
      | Num y -> Alcotest.(check (float 0.)) (Printf.sprintf "%h" x) x y
      | _ -> Alcotest.fail "not a number")
    [ 0.; 1.; -1.; 0.1; 1. /. 3.; 1e-300; 6.02214076e23 ];
  (* non-finite numbers degrade to null rather than emit invalid JSON *)
  Alcotest.(check bool) "nan -> null" true (of_string (to_string (Num Float.nan)) = Null);
  Alcotest.(check bool) "inf -> null" true
    (of_string (to_string (Num Float.infinity)) = Null)

let suite =
  ( "obs",
    [
      Alcotest.test_case "counter semantics" `Quick test_counter_semantics;
      Alcotest.test_case "disabled is a no-op" `Quick test_disabled_is_noop;
      Alcotest.test_case "timer accumulates (fake clock)" `Quick
        test_timer_accumulates_fake_clock;
      Alcotest.test_case "timer records on exception" `Quick
        test_timer_records_on_exception;
      Alcotest.test_case "timer clamps backward clock" `Quick
        test_timer_clamps_backward_clock;
      Alcotest.test_case "span nesting aggregates by path" `Quick
        test_span_nesting_aggregates_by_path;
      Alcotest.test_case "snapshot omits idle, sorts" `Quick
        test_snapshot_omits_idle_and_sorts;
      Alcotest.test_case "JSON round-trip" `Quick test_json_round_trip;
      Alcotest.test_case "text rendering" `Quick test_render_text_mentions_everything;
      Alcotest.test_case "pp_duration units" `Quick test_pp_duration_units;
      Alcotest.test_case "counter hammer (4 domains)" `Quick test_counter_hammer;
      Alcotest.test_case "timer hammer (4 domains)" `Quick test_timer_hammer;
      Alcotest.test_case "span stacks are per-domain" `Quick
        test_span_stacks_are_per_domain;
      Alcotest.test_case "JSON parser values" `Quick test_json_parser_values;
      Alcotest.test_case "JSON parser rejects garbage" `Quick
        test_json_parser_rejects_garbage;
      Alcotest.test_case "JSON float round-trip" `Quick
        test_json_printer_round_trips_floats;
    ] )
