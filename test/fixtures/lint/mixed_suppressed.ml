(* Fixture: [@lint.allow "E001"] covers this whole expression, but it
   only names E001 — the List.hd inside is an E002 and must still be
   reported. *)
let first = (List.hd (List.sort compare [ 3; 1; 2 ])) [@lint.allow "E001"]
