val counter : int Atomic.t
val lock : Mutex.t
val ready : Condition.t
val bump : unit -> unit
