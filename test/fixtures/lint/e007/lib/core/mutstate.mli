(* Interface present so the fixture isolates E007 (no E005). *)
type accum

val fresh_counter : unit -> int ref
val bump : unit -> unit
val label : accum -> string
