(* E007 fixture: module-level mutable state on a domain-shared path. *)
let hits = ref 0

let cache : (int, float) Hashtbl.t = Hashtbl.create 64

type accum = { mutable total : float; label : string }

let scratch = Buffer.create 256 [@@lint.allow "E007"]

(* A factory allocates per call — not shared state, not a finding. *)
let fresh_counter () = ref 0

let bump () = incr hits
let label a = a.label
