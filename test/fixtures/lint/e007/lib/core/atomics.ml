(* E007 exemption fixture: top-level synchronisation primitives are
   domain-safe by construction — Atomic/Mutex/Condition exist to be
   shared across domains, so none of these bindings may fire E007. *)

let counter = Atomic.make 0
let lock = Mutex.create ()
let ready = Condition.create ()
let bump () = Atomic.incr counter
