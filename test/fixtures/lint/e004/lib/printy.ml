(* Fixture: E004 — direct printing from library code. *)
let greet () = print_string "hello"
let shout n = Printf.printf "hello %d\n" n
let render () = Printf.sprintf "no finding: sprintf returns a string"
