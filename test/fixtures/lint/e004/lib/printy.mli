val greet : unit -> unit
val shout : int -> unit
val render : unit -> string
