(* Fixture: E001 — polymorphic structural comparison and hashing. *)
let sorted = List.sort compare [ 3.0; 1.0; nan ]
let uniq = List.sort_uniq Stdlib.compare [ 0.0; -0.0 ]
let hashed = Hashtbl.hash sorted
let typed_ok = List.sort Float.compare [ 3.0; 1.0 ]
