(* P001 fixture, region side: the closure writes a captured ref
   directly and reaches Counter.memo's Hashtbl write one call away —
   both races, both anchored at the region call site with a witness
   chain. *)

let total = ref 0

let run pool xs =
  Es_par.Par.parallel_map ~pool
    (fun x ->
      Counter.memo x (2 * x);
      incr total;
      x)
    xs
