(* P001 fixture, callee side: module-level mutable state plus the
   helper that writes it.  No parallel region here — this file alone
   is silent; the race only exists once worker.ml calls [memo] from a
   region (the cross-module witness case). *)

let hits : (int, int) Hashtbl.t = Hashtbl.create 16
let memo key v = Hashtbl.replace hits key v
