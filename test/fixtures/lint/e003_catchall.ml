(* Fixture: E003 — catch-all exception handlers. *)
let swallow_all f = try f () with _ -> 0

let swallow_unit f = try f () with e -> ()

(* neither of these is a finding: selective, re-raising, or guarded *)
let selective f = try f () with Not_found -> 0
let reraise f = try f () with e -> raise e
let guarded f = try f () with _ when Sys.win32 -> 0
