(* The same mixture as u001_mismatch.ml, acknowledged at the site. *)
let wasted () =
  let e : (float[@units "energy"]) = 3.0 in
  let t : (float[@units "time"]) = 2.0 in
  let scalarised = (e +. t) [@lint.allow "U001"] in
  scalarised
