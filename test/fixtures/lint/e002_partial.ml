(* Fixture: E002 — partial stdlib functions. *)
let first = List.hd [ 1; 2 ]
let rest = List.tl [ 1; 2 ]
let third = List.nth [ 1; 2; 3 ] 2
let forced = Option.get (Some first)
let parsed = Float.of_string "1.5"
let total_ok = match rest with [] -> 0 | x :: _ -> x + third + forced
