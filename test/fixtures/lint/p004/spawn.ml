(* P004 fixture: raw domain management outside lib/par and lib/obs.
   Worker domains are owned by Es_par.Pool; ad-hoc Domain.spawn
   fragments that ownership. *)

let run f =
  let d = Domain.spawn f in
  Domain.join d
