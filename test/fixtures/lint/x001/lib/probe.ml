(* X001 fixture, callee side: the terminal raise site.  Meter.read
   reaches [sample] one module away, so the witness chain in the
   diagnostic has a cross-module hop. *)

let sample ticks =
  if ticks <= 0 then invalid_arg "Probe.sample: ticks must be positive";
  float_of_int ticks *. 0.5
