(* X001 fixture, interface side: [read] may raise but carries no
   @raise tag (the finding); [read_checked] documents the same
   contract and stays silent; [zero] is pure and needs nothing. *)

val read : ticks:int -> float
(** Average load over [ticks]. *)

val read_checked : ticks:int -> float
(** Average load over [ticks].

    @raise Invalid_argument unless [ticks > 0]. *)

val zero : float
