(* X001 fixture, implementation side: [read] propagates Probe.sample's
   Invalid_argument; [read_checked] does too but its interface
   documents the contract; [zero] is pure. *)

let read ~ticks = Probe.sample ticks
let read_checked ~ticks = Probe.sample ticks
let zero = 0.
