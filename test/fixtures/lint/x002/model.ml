(* X002 fixture, callee side: the raising task body.  No parallel
   region here — this file alone is silent; the finding only exists
   once sweep.ml maps [rate] over a pool. *)

let rate x =
  if x < 0. then invalid_arg "Model.rate: negative input";
  x *. 2.
