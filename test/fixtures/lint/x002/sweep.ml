(* X002 fixture, region side: both callback shapes.  The lambda's body
   calls the raising Model.rate (evidence found inside the
   expression); the bare identifier is a raising node of the graph
   (witness chain via its summary).  Either way a worker raise
   surfaces at the joiner and abandons the batch. *)

let run_lambda pool xs =
  Es_par.Par.parallel_map ~pool (fun x -> Model.rate x +. 1.) xs

let run_ident pool xs = Es_par.Par.parallel_map ~pool Model.rate xs
