[@@@lint.allow "E006"]

(* Fixture: every finding below is suppressed — narrow expression and
   binding attributes for E001/E002/E003, the floating file-wide
   attribute above for E006.  The linter must report nothing. *)
let sorted = (List.sort compare [ 3; 1; 2 ]) [@lint.allow "E001"]
let first = (List.hd sorted) [@lint.allow "E002"]
let swallow f = (try f () with _ -> first) [@lint.allow "E003"]
let hashed = Hashtbl.hash sorted [@@lint.allow "E001"]
let coerced : int = Obj.magic hashed
