(* P003 fixture: blocking operations inside a parallel region — a
   captured lock serialises the sweep (or deadlocks it), and sleeping
   stalls a worker domain outright. *)

let lock = Mutex.create ()

let run pool xs =
  Es_par.Par.parallel_map ~pool
    (fun x ->
      Mutex.lock lock;
      Unix.sleepf 0.01;
      Mutex.unlock lock;
      x)
    xs
