(* U001 fixture: additive, comparison and min/max contexts require
   operands of equal units. *)
let wasted () =
  let e : (float[@units "energy"]) = 3.0 in
  let t : (float[@units "time"]) = 2.0 in
  let bad_sum = e +. t in
  let bad_cmp = e < t in
  let bad_min = Float.min e t in
  (bad_sum, bad_cmp, bad_min)
