(* R003 fixture: the telemetry toggle protocol.  [run] brackets a
   raising step with enable/disable but the disable is bare — the
   raising path leaves telemetry on for the next caller.  [run_forever]
   never disables at all.  [run_protected] is the fixed twin. *)

let checkpoint n =
  if n = 0 then failwith "Trace.checkpoint: empty window";
  n - 1

let run n =
  Es_obs.Obs.enable ();
  let r = checkpoint n in
  Es_obs.Obs.disable ();
  r

let run_forever n =
  Es_obs.Obs.enable ();
  checkpoint n

let run_protected n =
  Es_obs.Obs.enable ();
  Fun.protect
    ~finally:(fun () -> Es_obs.Obs.disable ())
    (fun () -> checkpoint n)
