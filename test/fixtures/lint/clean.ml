(* Fixture: no findings under any rule. *)
let sorted = List.sort Int.compare [ 3; 1; 2 ]
let speeds = List.sort_uniq Float.compare [ 1.0; 0.5 ]
let first = match sorted with [] -> 0 | x :: _ -> x
let selective f = try f () with Not_found -> List.length speeds
let render () = Printf.sprintf "%d" first
