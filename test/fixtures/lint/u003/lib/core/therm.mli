(* U003 fixture: public floats in a lib/core interface must carry a
   [@units] annotation (or a suppression). *)

val threshold : float

val budget : (float[@units "energy"])

val legacy : float [@@lint.allow "U003"]
