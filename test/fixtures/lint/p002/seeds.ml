(* P002 fixture: ambient randomness inside a parallel region — the
   result depends on which worker domain draws first.  The sanctioned
   pattern is Par.map_seeded with a pre-split Rng stream. *)

let draw pool xs =
  Es_par.Par.parallel_map ~pool (fun x -> float_of_int x +. Random.float 1.0) xs
