(* Same pattern as seeds.ml but suppressed at the site: the fixture
   pins that [@lint.allow "P002"] on the region expression silences
   exactly this finding. *)

let draw pool xs =
  (Es_par.Par.parallel_map ~pool
     (fun x -> float_of_int x +. Random.float 1.0)
     xs
  [@lint.allow "P002"])
