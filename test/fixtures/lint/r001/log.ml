(* R001 fixture: two handles acquired and never released in their
   binding — an output channel and a worker pool.  Every path leaks
   them, not just the exceptional one. *)

let dump path xs =
  let oc = open_out path in
  List.iter (fun x -> output_string oc (string_of_float x ^ "\n")) xs

let fan_out n f xs =
  let pool = Es_par.Pool.create ~domains:n () in
  Es_par.Par.parallel_map ~pool f xs
