(* Implementation consistent with the annotated interface:
   w·f² : work·freq² = energy. *)

type sample = {
  elapsed : (float[@units "time"]);
  joules : (float[@units "energy"]);
}

let cost ~w ~f = w *. f *. f
