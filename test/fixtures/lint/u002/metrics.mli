(* U002 fixture interface: pass 1 harvests these [@units] signatures
   so call sites and record constructions in sibling files check. *)

type sample = {
  elapsed : (float[@units "time"]);
  joules : (float[@units "energy"]);
}

val cost :
  w:(float[@units "work"]) -> f:(float[@units "freq"]) -> (float[@units "energy"])
