(* U002 fixture: unit mismatches at an annotated call site and in an
   annotated record construction. *)

let bad_call () =
  let d : (float[@units "time"]) = 4.0 in
  Metrics.cost ~w:d ~f:1.5

let bad_record () =
  let e : (float[@units "energy"]) = 9.0 in
  { Metrics.elapsed = e; joules = e }
