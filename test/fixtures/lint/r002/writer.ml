(* R002 fixture, acquire side: the channel IS closed, but the encode
   loop between open_out and close_out may raise (Enc.render), and the
   close is not in a Fun.protect ~finally — the exceptional path leaks
   the handle.  [save_protected] is the fixed twin and stays silent. *)

let save path xs =
  let oc = open_out path in
  List.iter (fun x -> output_string oc (Enc.render x ^ "\n")) xs;
  close_out oc

let save_protected path xs =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> List.iter (fun x -> output_string oc (Enc.render x ^ "\n")) xs)
