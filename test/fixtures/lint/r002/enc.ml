(* R002 fixture, callee side: the raising encoder between acquire and
   release in writer.ml.  The witness chain crosses into this file. *)

let render x =
  if Float.is_nan x then invalid_arg "Enc.render: not a number";
  string_of_float x
