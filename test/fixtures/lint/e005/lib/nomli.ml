(* Fixture: E005 — library module without an .mli interface. *)
let answer = 42
