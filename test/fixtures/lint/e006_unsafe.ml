(* Fixture: E006 — unsafe representation escapes. *)
let coerced : int = Obj.magic "boom"
let serialised = Marshal.to_string coerced []
let revived : int = Marshal.from_string serialised 0
