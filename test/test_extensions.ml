(* Tests for the extension modules: exact general-DAG TRI-CRIT, the
   chain knapsack DP, checkpointing, the static-power ablation and the
   VDD split refinement. *)

let rel = Rel.make ~lambda0:1e-5 ~sensitivity:3. ~fmin:0.2 ~fmax:1.0 ~frel:0.8 ()
let model = Speed.continuous ~fmin:0.2 ~fmax:1.0

(* --- Tricrit_exact -------------------------------------------------- *)

let small_dag_mapping ~seed =
  let rng = Es_util.Rng.create ~seed in
  let dag = Generators.random_layered rng ~layers:3 ~width:3 ~density:0.5 ~wlo:1. ~whi:3. in
  List_sched.schedule dag ~p:2 ~priority:List_sched.Bottom_level

let test_exact_below_heuristics () =
  List.iter
    (fun seed ->
      let m = small_dag_mapping ~seed in
      let dmin = List_sched.makespan_at_speed m ~f:1. in
      List.iter
        (fun slack ->
          let deadline = slack *. dmin in
          match
            (Tricrit_exact.solve ?max_n:None ~rel ~deadline m, Heuristics.best_of ~rel ~deadline m)
          with
          | Some exact, Some (heur, _) ->
            Alcotest.(check bool)
              (Printf.sprintf "exact %.4f <= heur %.4f (slack %.1f)"
                 exact.Heuristics.energy heur.Heuristics.energy slack)
              true
              (exact.Heuristics.energy <= heur.Heuristics.energy *. (1. +. 1e-6))
          | None, None -> ()
          | _ -> Alcotest.fail "feasibility disagreement")
        [ 1.3; 2.2 ])
    [ 501; 502 ]

let test_exact_matches_chain_exact () =
  let rng = Es_util.Rng.create ~seed:503 in
  let dag = Generators.chain rng ~n:7 ~wlo:0.5 ~whi:3. in
  let m = Mapping.single_processor dag in
  let deadline = 2.5 *. Dag.total_weight dag in
  match
    (Tricrit_exact.solve ?max_n:None ~rel ~deadline m, Tricrit_chain.solve_exact ?max_n:None ~rel ~deadline m)
  with
  | Some g, Some c ->
    (* same combinatorial optimum; the waterfilling and the barrier
       solver must agree closely *)
    Alcotest.(check bool)
      (Printf.sprintf "general %.5f ~ chain %.5f" g.Heuristics.energy
         c.Tricrit_chain.energy)
      true
      (Float.abs (g.Heuristics.energy -. c.Tricrit_chain.energy)
      < 1e-3 *. c.Tricrit_chain.energy)
  | _ -> Alcotest.fail "both feasible"

let test_exact_schedule_validates () =
  let m = small_dag_mapping ~seed:504 in
  let dmin = List_sched.makespan_at_speed m ~f:1. in
  let deadline = 2.5 *. dmin in
  match Tricrit_exact.solve ?max_n:None ~rel ~deadline m with
  | None -> Alcotest.fail "feasible"
  | Some sol ->
    Alcotest.(check bool) "validator accepts" true
      (Validate.is_feasible ~deadline ~rel ~model sol.Heuristics.schedule)

let test_candidates_prune () =
  let rng = Es_util.Rng.create ~seed:505 in
  let dag = Generators.chain rng ~n:6 ~wlo:0.5 ~whi:3. in
  let cand = Tricrit_exact.candidates ~rel dag in
  (* with these parameters re-execution is always potentially useful *)
  Alcotest.(check bool) "candidates exist" true (Array.exists Fun.id cand);
  (* a much higher fault rate pushes floors above frel/√2: no candidates *)
  let hot = Rel.make ~lambda0:0.2 ~sensitivity:3. ~fmin:0.2 ~fmax:1.0 ~frel:0.8 () in
  let cand_hot = Tricrit_exact.candidates ~rel:hot dag in
  Alcotest.(check bool) "hot rate prunes more" true
    (Array.to_list cand_hot
     |> List.filter Fun.id |> List.length
     <= (Array.to_list cand |> List.filter Fun.id |> List.length))

let test_max_n_guard () =
  let rng = Es_util.Rng.create ~seed:506 in
  let dag = Generators.chain rng ~n:20 ~wlo:1. ~whi:2. in
  let m = Mapping.single_processor dag in
  Alcotest.(check bool) "guard" true
    (match Tricrit_exact.solve ?max_n:None ~rel ~deadline:1000. m with
    | exception Invalid_argument _ -> true
    | _ -> false)

(* --- chain DP ------------------------------------------------------- *)

let chain_mapping ~seed ~n =
  let rng = Es_util.Rng.create ~seed in
  Mapping.single_processor (Generators.chain rng ~n ~wlo:0.5 ~whi:3.)

let test_dp_between_exact_and_baseline () =
  List.iter
    (fun seed ->
      let m = chain_mapping ~seed ~n:9 in
      let dmin = Dag.total_weight (Mapping.dag m) in
      List.iter
        (fun slack ->
          let deadline = slack *. dmin in
          match
            ( Tricrit_chain.solve_exact ?max_n:None ~rel ~deadline m,
              Tricrit_chain.solve_dp ?buckets:None ~rel ~deadline m,
              Tricrit_chain.no_reexecution ~rel ~deadline m )
          with
          | Some e, Some dp, Some base ->
            Alcotest.(check bool) "dp >= exact" true
              (dp.Tricrit_chain.energy >= e.Tricrit_chain.energy -. 1e-9);
            Alcotest.(check bool) "dp <= baseline" true
              (dp.Tricrit_chain.energy <= base.Tricrit_chain.energy +. 1e-9)
          | None, None, None -> ()
          | _ -> Alcotest.fail "feasibility disagreement")
        [ 1.5; 2.5; 4. ])
    [ 511; 512 ]

let test_dp_optimal_in_loose_regime () =
  (* with lots of slack the DP regime assumptions hold and it should
     essentially match the exact optimum *)
  (* the floors sit at fmin = 0.2, so re-executing everything takes
     2Σw/0.2 = 10·Dmin: slack 12 makes the knapsack regime exact *)
  let m = chain_mapping ~seed:513 ~n:9 in
  let deadline = 12. *. Dag.total_weight (Mapping.dag m) in
  match
    ( Tricrit_chain.solve_exact ?max_n:None ~rel ~deadline m,
      Tricrit_chain.solve_dp ?buckets:None ~rel ~deadline m )
  with
  | Some e, Some dp ->
    Alcotest.(check bool)
      (Printf.sprintf "dp %.5f within 1%% of exact %.5f" dp.Tricrit_chain.energy
         e.Tricrit_chain.energy)
      true
      (dp.Tricrit_chain.energy <= e.Tricrit_chain.energy *. 1.01)
  | _ -> Alcotest.fail "both feasible"

let test_dp_schedule_validates () =
  let m = chain_mapping ~seed:514 ~n:10 in
  let deadline = 3. *. Dag.total_weight (Mapping.dag m) in
  match Tricrit_chain.solve_dp ?buckets:None ~rel ~deadline m with
  | None -> Alcotest.fail "feasible"
  | Some sol ->
    Alcotest.(check bool) "validator accepts" true
      (Validate.is_feasible ~deadline ~rel ~model sol.Tricrit_chain.schedule)

(* --- checkpointing -------------------------------------------------- *)

let weights = [| 1.; 2.; 1.5; 2.5; 1. |]
let dmin = Array.fold_left ( +. ) 0. weights

let test_ckpt_evaluate_partition_checked () =
  Alcotest.(check bool) "bad partition" true
    (Checkpointing.evaluate ~rel ~checkpoint_work:0.1 ~deadline:100. ~weights [ 2; 2 ]
    = None)

let test_ckpt_single_segment_floor () =
  (* one big segment: floor for the whole chain's work *)
  match Checkpointing.evaluate ~rel ~checkpoint_work:0. ~deadline:1000. ~weights [ 5 ] with
  | None -> Alcotest.fail "feasible"
  | Some sol ->
    Alcotest.(check int) "one speed" 1 (Array.length sol.Checkpointing.speeds);
    (match Checkpointing.segment_floor ~rel ~work:dmin with
    | None -> Alcotest.fail "segment floor exists"
    | Some flo ->
      Alcotest.(check (float 1e-9)) "at its floor"
        (Float.max 0.2 flo) sol.Checkpointing.speeds.(0))

let test_ckpt_zero_cost_prefers_fine_segments () =
  (* without checkpoint cost, finer segmentation is never worse: the
     solver should find something at least as good as per-task *)
  let deadline = 3. *. dmin in
  match
    ( Checkpointing.solve ?speed_grid:None ~rel ~checkpoint_work:0. ~deadline ~weights,
      Checkpointing.reexec_equivalent ~rel ~deadline ~weights )
  with
  | Some best, Some per_task ->
    Alcotest.(check bool)
      (Printf.sprintf "solver %.5f <= per-task %.5f" best.Checkpointing.energy
         per_task.Checkpointing.energy)
      true
      (best.Checkpointing.energy <= per_task.Checkpointing.energy *. (1. +. 1e-6))
  | _ -> Alcotest.fail "both feasible"

let test_ckpt_cost_coarsens_segments () =
  (* rising checkpoint cost must not increase the number of segments
     chosen, and energy grows with the cost *)
  let deadline = 3. *. dmin in
  let solve c =
    Checkpointing.solve ?speed_grid:None ~rel ~checkpoint_work:c ~deadline ~weights
  in
  match (solve 0.05, solve 1.5) with
  | Some cheap, Some pricey ->
    Alcotest.(check bool) "energy grows with cost" true
      (pricey.Checkpointing.energy >= cheap.Checkpointing.energy -. 1e-9);
    Alcotest.(check bool) "coarser segmentation" true
      (List.length pricey.Checkpointing.segments
      <= List.length cheap.Checkpointing.segments)
  | _ -> Alcotest.fail "both feasible"

let test_ckpt_time_within_deadline () =
  List.iter
    (fun slack ->
      let deadline = slack *. dmin in
      match
        Checkpointing.solve ?speed_grid:None ~rel ~checkpoint_work:0.2 ~deadline ~weights
      with
      | None -> ()
      | Some sol ->
        Alcotest.(check bool) "time <= D" true
          (sol.Checkpointing.time <= deadline *. (1. +. 1e-9)))
    [ 2.2; 3.; 5. ]

let test_ckpt_infeasible () =
  (* worst case needs at least 2·Σw/fmax *)
  Alcotest.(check bool) "too tight" true
    (Checkpointing.solve ?speed_grid:None ~rel ~checkpoint_work:0.1
       ~deadline:(1.5 *. dmin) ~weights
    = None)

(* --- static power --------------------------------------------------- *)

let test_power_critical_speed () =
  Alcotest.(check (float 1e-12)) "crit of 2f³" 1. (Power.critical_speed ~static:2.);
  Alcotest.(check (float 1e-9)) "crit of 0.25" 0.5 (Power.critical_speed ~static:0.25)

let test_power_energy_formula () =
  Alcotest.(check (float 1e-12)) "E(w=2, f=0.5, s=0.1)"
    (2. *. (0.25 +. 0.2)) (Power.energy ~static:0.1 ~w:2. ~f:0.5)

let test_power_aware_never_below_critical () =
  let weights = [| 1.; 2.; 3. |] in
  match Power.chain_aware ~static:0.25 ~weights ~deadline:1000. ~fmin:0.01 ~fmax:1. with
  | None -> Alcotest.fail "feasible"
  | Some r ->
    Array.iter
      (fun f ->
        Alcotest.(check (float 1e-9)) "at critical speed" 0.5 f)
      r.Power.speeds

let test_power_penalty_grows_with_slack () =
  let weights = [| 1.; 2.; 3. |] in
  let penalties =
    List.filter_map
      (fun slack ->
        Power.ablation_penalty ~static:0.25 ~weights ~deadline:(slack *. 6.)
          ~fmin:0.01 ~fmax:1.)
      [ 1.1; 2.; 4.; 10. ]
  in
  let rec non_decreasing = function
    | a :: (b :: _ as rest) -> b >= a -. 1e-9 && non_decreasing rest
    | _ -> true
  in
  Alcotest.(check int) "all feasible" 4 (List.length penalties);
  Alcotest.(check bool) "penalty grows" true (non_decreasing penalties);
  match penalties with
  | [ tight; _; _; loose ] ->
    Alcotest.(check bool) "harmless when tight" true (tight < 1.15);
    Alcotest.(check bool) "severe when loose" true (loose > 1.5)
  | _ -> Alcotest.fail "expected four penalties"

let test_power_always_on_constant () =
  (* the paper's regime: static part independent of the schedule *)
  let e1 = Power.always_on_energy ~static:0.3 ~p:4 ~deadline:10. ~dynamic:5. in
  let e2 = Power.always_on_energy ~static:0.3 ~p:4 ~deadline:10. ~dynamic:7. in
  Alcotest.(check (float 1e-12)) "difference is dynamic only" 2. (e2 -. e1)

(* --- vdd split refinement ------------------------------------------- *)

let test_refine_never_worse () =
  let rng = Es_util.Rng.create ~seed:521 in
  let dag = Generators.chain rng ~n:5 ~wlo:0.5 ~whi:2. in
  let m = Mapping.single_processor dag in
  let levels = [| 0.2; 0.4; 0.6; 0.8; 1.0 |] in
  let deadline = 3. *. Dag.total_weight dag in
  match Tricrit_vdd.solve_heuristic ~rel ~deadline ~levels m with
  | None -> Alcotest.fail "feasible"
  | Some sol ->
    let refined = Tricrit_vdd.refine_splits ?rounds:None ~rel ~deadline ~levels m sol in
    Alcotest.(check bool)
      (Printf.sprintf "refined %.5f <= %.5f" refined.Tricrit_vdd.energy
         sol.Tricrit_vdd.energy)
      true
      (refined.Tricrit_vdd.energy <= sol.Tricrit_vdd.energy +. 1e-12);
    Alcotest.(check bool) "still feasible" true
      (Validate.is_feasible ~deadline ~rel ~model:(Speed.vdd_hopping levels)
         refined.Tricrit_vdd.schedule)

let suite =
  ( "extensions",
    [
      Alcotest.test_case "exact <= heuristics" `Slow test_exact_below_heuristics;
      Alcotest.test_case "exact general = exact chain" `Slow test_exact_matches_chain_exact;
      Alcotest.test_case "exact validates" `Slow test_exact_schedule_validates;
      Alcotest.test_case "candidate prune" `Quick test_candidates_prune;
      Alcotest.test_case "exact max_n guard" `Quick test_max_n_guard;
      Alcotest.test_case "dp between exact and baseline" `Slow
        test_dp_between_exact_and_baseline;
      Alcotest.test_case "dp optimal when loose" `Quick test_dp_optimal_in_loose_regime;
      Alcotest.test_case "dp validates" `Quick test_dp_schedule_validates;
      Alcotest.test_case "ckpt partition checked" `Quick test_ckpt_evaluate_partition_checked;
      Alcotest.test_case "ckpt single segment floor" `Quick test_ckpt_single_segment_floor;
      Alcotest.test_case "ckpt zero cost fine segments" `Quick
        test_ckpt_zero_cost_prefers_fine_segments;
      Alcotest.test_case "ckpt cost coarsens" `Quick test_ckpt_cost_coarsens_segments;
      Alcotest.test_case "ckpt time within deadline" `Quick test_ckpt_time_within_deadline;
      Alcotest.test_case "ckpt infeasible" `Quick test_ckpt_infeasible;
      Alcotest.test_case "power critical speed" `Quick test_power_critical_speed;
      Alcotest.test_case "power energy formula" `Quick test_power_energy_formula;
      Alcotest.test_case "power aware floors at critical" `Quick
        test_power_aware_never_below_critical;
      Alcotest.test_case "power penalty grows with slack" `Quick
        test_power_penalty_grows_with_slack;
      Alcotest.test_case "power always-on constant" `Quick test_power_always_on_constant;
      Alcotest.test_case "vdd refine never worse" `Slow test_refine_never_worse;
    ] )
