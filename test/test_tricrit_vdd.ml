(* Tests for TRI-CRIT under VDD-HOPPING (R11): the fixed-subset LP,
   exhaustive search, and the continuous-heuristic bridge. *)

let rel = Rel.make ~lambda0:1e-5 ~sensitivity:3. ~fmin:0.2 ~fmax:1.0 ~frel:0.8 ()
let levels = [| 0.2; 0.4; 0.6; 0.8; 1.0 |]
let model = Speed.vdd_hopping levels

let small_instance ~seed =
  let rng = Es_util.Rng.create ~seed in
  let dag = Generators.chain rng ~n:5 ~wlo:0.5 ~whi:2. in
  let m = Mapping.single_processor dag in
  (m, Dag.total_weight dag)

let test_empty_subset_is_bicrit_with_floor () =
  let m, dmin = small_instance ~seed:301 in
  let deadline = 2. *. dmin in
  let n = Dag.n (Mapping.dag m) in
  match Tricrit_vdd.solve_subset ~rel ~deadline ~levels m ~subset:(Array.make n false) with
  | None -> Alcotest.fail "feasible"
  | Some sol ->
    Alcotest.(check bool) "validator accepts" true
      (Validate.is_feasible ~deadline ~rel ~model sol.Tricrit_vdd.schedule);
    (* no task may dip below frel on average: energy at least Σ w·frel²
       is NOT required pointwise under hopping, but the failure budget
       keeps the mix near frel, so energy >= 0.95·Σ w·0.64 *)
    let floor_energy = 0.64 *. Dag.total_weight (Mapping.dag m) in
    Alcotest.(check bool) "energy near frel floor" true
      (sol.Tricrit_vdd.energy >= 0.9 *. floor_energy)

let test_exact_feasible_and_validates () =
  let m, dmin = small_instance ~seed:302 in
  List.iter
    (fun slack ->
      let deadline = slack *. dmin in
      match Tricrit_vdd.solve_exact ?max_n:None ~rel ~deadline ~levels m with
      | None -> Alcotest.failf "feasible at slack %.1f" slack
      | Some sol ->
        Alcotest.(check bool) "validator accepts" true
          (Validate.is_feasible ~deadline ~rel ~model sol.Tricrit_vdd.schedule))
    [ 1.1; 2.; 3.5 ]

let test_exact_improves_with_slack () =
  let m, dmin = small_instance ~seed:303 in
  let energies =
    List.filter_map
      (fun slack ->
        Option.map (fun (s : Tricrit_vdd.solution) -> s.energy)
          (Tricrit_vdd.solve_exact ?max_n:None ~rel ~deadline:(slack *. dmin) ~levels m))
      [ 1.1; 1.6; 2.4; 4. ]
  in
  let rec non_increasing = function
    | a :: (b :: _ as rest) -> b <= a +. 1e-9 && non_increasing rest
    | _ -> true
  in
  Alcotest.(check int) "all feasible" 4 (List.length energies);
  Alcotest.(check bool) "monotone" true (non_increasing energies)

let test_reexec_engages_under_vdd () =
  let m, dmin = small_instance ~seed:304 in
  match Tricrit_vdd.solve_exact ?max_n:None ~rel ~deadline:(4. *. dmin) ~levels m with
  | None -> Alcotest.fail "feasible"
  | Some sol ->
    Alcotest.(check bool) "re-execution used" true
      (Array.exists Fun.id sol.Tricrit_vdd.reexecuted)

let test_heuristic_close_to_exact () =
  List.iter
    (fun seed ->
      let m, dmin = small_instance ~seed in
      List.iter
        (fun slack ->
          let deadline = slack *. dmin in
          match
            ( Tricrit_vdd.solve_exact ?max_n:None ~rel ~deadline ~levels m,
              Tricrit_vdd.solve_heuristic ~rel ~deadline ~levels m )
          with
          | Some e, Some h ->
            Alcotest.(check bool)
              (Printf.sprintf "heuristic within 25%% (slack %.1f: %.4f vs %.4f)" slack
                 h.Tricrit_vdd.energy e.Tricrit_vdd.energy)
              true
              (h.Tricrit_vdd.energy <= e.Tricrit_vdd.energy *. 1.25 +. 1e-9)
          | None, None -> ()
          | Some _, None -> Alcotest.fail "heuristic lost a feasible instance"
          | None, Some _ -> Alcotest.fail "heuristic claims infeasible instance")
        [ 1.2; 2.5 ])
    [ 305; 306 ]

let test_vdd_tricrit_above_continuous_tricrit () =
  (* discrete levels can only cost more than the continuous optimum *)
  let m, dmin = small_instance ~seed:307 in
  let deadline = 2.5 *. dmin in
  match
    (Tricrit_vdd.solve_exact ?max_n:None ~rel ~deadline ~levels m, Tricrit_chain.solve_exact ?max_n:None ~rel ~deadline m)
  with
  | Some vdd, Some cont ->
    Alcotest.(check bool)
      (Printf.sprintf "vdd %.4f >= continuous %.4f" vdd.Tricrit_vdd.energy
         cont.Tricrit_chain.energy)
      true
      (* the equal-split restriction can cost a little; allow 1% slack
         in the other direction only *)
      (vdd.Tricrit_vdd.energy >= cont.Tricrit_chain.energy *. 0.99)
  | _ -> Alcotest.fail "both feasible"

let test_refine_splits_cache_saves_lp_solves () =
  (* A/B over the probe cache: cached and uncached refinement must
     agree on the result, and the cache must pay strictly fewer LP
     solves — uncached, the accepted θ is re-solved and a second round
     replays every golden-section probe from scratch. *)
  let module Obs = Es_obs.Obs in
  let m, dmin = small_instance ~seed:304 in
  let deadline = 4. *. dmin in
  match Tricrit_vdd.solve_heuristic ~rel ~deadline ~levels m with
  | None -> Alcotest.fail "feasible"
  | Some sol ->
    let lp_solves = Obs.counter "lp_solves" in
    let cache_hits = Obs.counter "tricrit_vdd_probe_cache_hits" in
    let run ~use_cache =
      Obs.reset ();
      Obs.enable ();
      Fun.protect ~finally:(fun () -> Obs.disable ()) @@ fun () ->
      let refined =
        Tricrit_vdd.refine_splits ~rounds:2 ~use_cache ~rel ~deadline ~levels m sol
      in
      (refined, Obs.value lp_solves, Obs.value cache_hits)
    in
    let refined_c, solves_c, hits_c = run ~use_cache:true in
    let refined_u, solves_u, hits_u = run ~use_cache:false in
    Alcotest.(check bool) "instance exercises re-execution" true
      (Array.exists Fun.id sol.Tricrit_vdd.reexecuted);
    Alcotest.(check (float 1e-9)) "same energy either way"
      refined_u.Tricrit_vdd.energy refined_c.Tricrit_vdd.energy;
    Alcotest.(check bool) "refinement does not regress" true
      (refined_c.Tricrit_vdd.energy <= sol.Tricrit_vdd.energy +. 1e-9);
    Alcotest.(check int) "uncached path never hits" 0 hits_u;
    Alcotest.(check bool)
      (Printf.sprintf "cache hits (%d) observed" hits_c)
      true (hits_c > 0);
    Alcotest.(check bool)
      (Printf.sprintf "fewer LP solves cached (%d < %d)" solves_c solves_u)
      true
      (solves_c < solves_u)

let test_infeasible_detected () =
  let m, dmin = small_instance ~seed:308 in
  Alcotest.(check bool) "too tight" true
    (Tricrit_vdd.solve_exact ?max_n:None ~rel ~deadline:(0.8 *. dmin) ~levels m = None)

let test_max_n_guard () =
  let rng = Es_util.Rng.create ~seed:309 in
  let dag = Generators.chain rng ~n:14 ~wlo:1. ~whi:2. in
  let m = Mapping.single_processor dag in
  Alcotest.(check bool) "guard" true
    (match Tricrit_vdd.solve_exact ?max_n:None ~rel ~deadline:100. ~levels m with
    | exception Invalid_argument _ -> true
    | _ -> false)

let suite =
  ( "tricrit-vdd",
    [
      Alcotest.test_case "empty subset = floored bicrit" `Quick
        test_empty_subset_is_bicrit_with_floor;
      Alcotest.test_case "exact validates" `Slow test_exact_feasible_and_validates;
      Alcotest.test_case "exact monotone in slack" `Slow test_exact_improves_with_slack;
      Alcotest.test_case "re-exec engages" `Slow test_reexec_engages_under_vdd;
      Alcotest.test_case "heuristic close to exact" `Slow test_heuristic_close_to_exact;
      Alcotest.test_case "vdd >= continuous" `Slow test_vdd_tricrit_above_continuous_tricrit;
      Alcotest.test_case "refine cache saves LP solves" `Slow
        test_refine_splits_cache_saves_lp_solves;
      Alcotest.test_case "infeasible detected" `Quick test_infeasible_detected;
      Alcotest.test_case "max_n guard" `Quick test_max_n_guard;
    ] )
