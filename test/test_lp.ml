(* Tests for the simplex solver and the LP problem builder, including a
   brute-force cross-check on random small LPs: the simplex optimum
   must match the best vertex found by enumerating constraint
   intersections. *)

module Simplex = Es_lp.Simplex
module Problem = Es_lp.Problem

let check_float = Alcotest.(check (float 1e-7))

let constr coeffs relation rhs = { Simplex.coeffs; relation; rhs }

let test_simple_min () =
  (* min x + y  s.t. x + 2y >= 4, 3x + y >= 6, x,y >= 0.
     Optimum at intersection: x = 8/5, y = 6/5, value 14/5. *)
  match
    Simplex.solve ~obj:[| 1.; 1. |]
      [ constr [| 1.; 2. |] Simplex.Ge 4.; constr [| 3.; 1. |] Simplex.Ge 6. ]
  with
  | Simplex.Optimal { objective; solution } ->
    check_float "objective" 2.8 objective;
    check_float "x" 1.6 solution.(0);
    check_float "y" 1.2 solution.(1)
  | _ -> Alcotest.fail "expected optimal"

let test_le_only () =
  (* min -x - 2y s.t. x + y <= 4, y <= 3 → x=1,y=3, value -7 *)
  match
    Simplex.solve ~obj:[| -1.; -2. |]
      [ constr [| 1.; 1. |] Simplex.Le 4.; constr [| 0.; 1. |] Simplex.Le 3. ]
  with
  | Simplex.Optimal { objective; _ } -> check_float "objective" (-7.) objective
  | _ -> Alcotest.fail "expected optimal"

let test_equality () =
  (* min x + 3y s.t. x + y = 2 → x=2, y=0 *)
  match Simplex.solve ~obj:[| 1.; 3. |] [ constr [| 1.; 1. |] Simplex.Eq 2. ] with
  | Simplex.Optimal { objective; solution } ->
    check_float "objective" 2. objective;
    check_float "y stays 0" 0. solution.(1)
  | _ -> Alcotest.fail "expected optimal"

let test_infeasible () =
  match
    Simplex.solve ~obj:[| 1. |]
      [ constr [| 1. |] Simplex.Ge 3.; constr [| 1. |] Simplex.Le 1. ]
  with
  | Simplex.Infeasible -> ()
  | _ -> Alcotest.fail "expected infeasible"

let test_unbounded () =
  match Simplex.solve ~obj:[| -1. |] [ constr [| -1. |] Simplex.Le 0. ] with
  | Simplex.Unbounded -> ()
  | _ -> Alcotest.fail "expected unbounded"

let test_negative_rhs_normalised () =
  (* x >= 2 written as -x <= -2 *)
  match Simplex.solve ~obj:[| 1. |] [ constr [| -1. |] Simplex.Le (-2.) ] with
  | Simplex.Optimal { objective; _ } -> check_float "objective" 2. objective
  | _ -> Alcotest.fail "expected optimal"

let test_degenerate_terminates () =
  (* classic degeneracy: redundant constraints through the optimum *)
  match
    Simplex.solve ~obj:[| -1.; -1. |]
      [
        constr [| 1.; 0. |] Simplex.Le 1.;
        constr [| 0.; 1. |] Simplex.Le 1.;
        constr [| 1.; 1. |] Simplex.Le 2.;
        constr [| 2.; 2. |] Simplex.Le 4.;
      ]
  with
  | Simplex.Optimal { objective; _ } -> check_float "objective" (-2.) objective
  | _ -> Alcotest.fail "expected optimal"

(* Brute-force LP reference: enumerate all choices of n constraints
   (from rows plus axes), solve the linear system, keep feasible points,
   return the best objective.  Sound for bounded non-degenerate LPs. *)
let brute_force ~obj rows =
  let n = Array.length obj in
  let planes =
    (* each row as (coeffs, rhs) equality candidate; plus axes x_i = 0 *)
    List.map (fun (r : Simplex.constr) -> (r.coeffs, r.rhs)) rows
    @ List.init n (fun i -> (Array.init n (fun j -> if i = j then 1. else 0.), 0.))
  in
  let planes = Array.of_list planes in
  let m = Array.length planes in
  let best = ref None in
  let feasible x =
    Array.for_all (fun v -> v >= -1e-7) x
    && List.for_all
         (fun (r : Simplex.constr) ->
           let lhs = ref 0. in
           Array.iteri (fun i c -> lhs := !lhs +. (c *. x.(i))) r.coeffs;
           match r.relation with
           | Simplex.Le -> !lhs <= r.rhs +. 1e-7
           | Simplex.Ge -> !lhs >= r.rhs -. 1e-7
           | Simplex.Eq -> Float.abs (!lhs -. r.rhs) <= 1e-7)
         rows
  in
  let rec choose k start acc =
    if k = 0 then begin
      let a = Array.of_list (List.rev_map (fun i -> Array.copy (fst planes.(i))) acc) in
      let b = Array.of_list (List.rev_map (fun i -> snd planes.(i)) acc) in
      match Es_linalg.Mat.solve a b with
      | x when feasible x ->
        let v = ref 0. in
        Array.iteri (fun i c -> v := !v +. (c *. x.(i))) obj;
        (match !best with
        | Some bv when bv <= !v -> ()
        | _ -> best := Some !v)
      | _ -> ()
      | exception Es_linalg.Mat.Singular -> ()
    end
    else
      for i = start to m - 1 do
        choose (k - 1) (i + 1) (i :: acc)
      done
  in
  choose n 0 [];
  !best

let qcheck_simplex_matches_brute_force =
  QCheck.Test.make ~name:"simplex matches vertex enumeration" ~count:60
    QCheck.(int_bound 100_000)
    (fun seed ->
      let rng = Es_util.Rng.create ~seed in
      let n = 2 + Es_util.Rng.int rng 2 in
      let m = 2 + Es_util.Rng.int rng 3 in
      (* keep the polytope bounded with a box row, keep costs positive *)
      let rows =
        List.init m (fun _ ->
            let coeffs = Array.init n (fun _ -> Es_util.Rng.uniform_in rng 0.1 2.) in
            constr coeffs Simplex.Ge (Es_util.Rng.uniform_in rng 0.5 4.))
      in
      let obj = Array.init n (fun _ -> Es_util.Rng.uniform_in rng 0.2 2.) in
      match (Simplex.solve ~obj rows, brute_force ~obj rows) with
      | Simplex.Optimal { objective; _ }, Some bf -> Float.abs (objective -. bf) < 1e-5
      | Simplex.Infeasible, None -> true
      | _ -> false)

let test_problem_builder () =
  let lp = Problem.create () in
  let x = Problem.var lp ~obj:2. "x" in
  let y = Problem.var lp ~obj:3. "y" in
  Problem.ge lp [ (1., x); (1., y) ] 10.;
  Problem.le lp [ (1., x) ] 4.;
  (* min 2x + 3y, x+y >= 10, x <= 4 → x=4, y=6, value 26 *)
  match Problem.solve lp with
  | Problem.Solution s ->
    check_float "objective" 26. (Problem.objective s);
    check_float "x" 4. (Problem.value s x);
    check_float "y" 6. (Problem.value s y)
  | _ -> Alcotest.fail "expected solution"

let test_problem_upper_bound () =
  let lp = Problem.create () in
  let x = Problem.var lp ~obj:(-1.) "x" in
  Problem.upper_bound lp x 7.;
  match Problem.solve lp with
  | Problem.Solution s -> check_float "x at bound" 7. (Problem.value s x)
  | _ -> Alcotest.fail "expected solution"

let test_problem_obj_coeff_update () =
  let lp = Problem.create () in
  let x = Problem.var lp ~obj:1. "x" in
  let y = Problem.var lp ~obj:1. "y" in
  Problem.obj_coeff lp x (-2.);
  Problem.upper_bound lp x 3.;
  Problem.upper_bound lp y 3.;
  (* min -2x + y → x = 3, y = 0 *)
  match Problem.solve lp with
  | Problem.Solution s ->
    check_float "objective" (-6.) (Problem.objective s);
    check_float "x" 3. (Problem.value s x)
  | _ -> Alcotest.fail "expected solution"

let test_problem_counts () =
  let lp = Problem.create () in
  let x = Problem.var lp "x" in
  Problem.le lp [ (1., x) ] 1.;
  Problem.ge lp [ (1., x) ] 0.;
  Alcotest.(check int) "vars" 1 (Problem.n_vars lp);
  Alcotest.(check int) "rows" 2 (Problem.n_constraints lp)

let suite =
  ( "lp",
    [
      Alcotest.test_case "simple minimisation" `Quick test_simple_min;
      Alcotest.test_case "le-only problem" `Quick test_le_only;
      Alcotest.test_case "equality row" `Quick test_equality;
      Alcotest.test_case "infeasible detected" `Quick test_infeasible;
      Alcotest.test_case "unbounded detected" `Quick test_unbounded;
      Alcotest.test_case "negative rhs normalised" `Quick test_negative_rhs_normalised;
      Alcotest.test_case "degenerate instance terminates" `Quick test_degenerate_terminates;
      QCheck_alcotest.to_alcotest qcheck_simplex_matches_brute_force;
      Alcotest.test_case "problem builder" `Quick test_problem_builder;
      Alcotest.test_case "problem upper bound" `Quick test_problem_upper_bound;
      Alcotest.test_case "problem obj update" `Quick test_problem_obj_coeff_update;
      Alcotest.test_case "problem counts" `Quick test_problem_counts;
    ] )

(* --- duals ----------------------------------------------------------- *)

let test_duals_simple () =
  (* min x + y s.t. x + 2y >= 4, 3x + y >= 6: optimum (1.6, 1.2).
     Duals solve: y1 + 3y2 = 1, 2y1 + y2 = 1 → y1 = 0.4, y2 = 0.2. *)
  match
    Simplex.solve ?max_iters:None ~obj:[| 1.; 1. |]
      [ constr [| 1.; 2. |] Simplex.Ge 4.; constr [| 3.; 1. |] Simplex.Ge 6. ]
  with
  | Simplex.Optimal { duals; _ } ->
    check_float "dual 1" 0.4 duals.(0);
    check_float "dual 2" 0.2 duals.(1)
  | _ -> Alcotest.fail "expected optimal"

let test_duals_nonbinding_row_zero () =
  (* min x s.t. x >= 2, x <= 100 — the upper bound is slack *)
  match
    Simplex.solve ?max_iters:None ~obj:[| 1. |]
      [ constr [| 1. |] Simplex.Ge 2.; constr [| 1. |] Simplex.Le 100. ]
  with
  | Simplex.Optimal { duals; _ } ->
    check_float "binding" 1. duals.(0);
    check_float "slack row" 0. duals.(1)
  | _ -> Alcotest.fail "expected optimal"

let test_duals_equality () =
  (* min 2x + 3y s.t. x + y = 5 → all mass on x, dual = 2 *)
  match Simplex.solve ?max_iters:None ~obj:[| 2.; 3. |] [ constr [| 1.; 1. |] Simplex.Eq 5. ] with
  | Simplex.Optimal { duals; _ } -> check_float "eq dual" 2. duals.(0)
  | _ -> Alcotest.fail "expected optimal"

let qcheck_duals_predict_rhs_perturbation =
  (* finite-difference check: objective(b + h) − objective(b) ≈ y·h for
     a small perturbation of one ≥ row *)
  QCheck.Test.make ~name:"duals = dObj/dRhs (finite differences)" ~count:40
    QCheck.(int_bound 100_000)
    (fun seed ->
      let rng = Es_util.Rng.create ~seed in
      let n = 2 + Es_util.Rng.int rng 2 in
      let rows b0 =
        List.init 3 (fun k ->
            let coeffs =
              Array.init n (fun j ->
                  (* deterministic per (seed, k, j): rebuild from a fresh
                     stream so both solves see identical rows *)
                  let r = Es_util.Rng.create ~seed:((seed * 31) + (k * 7) + j) in
                  Es_util.Rng.uniform_in r 0.2 2.)
            in
            constr coeffs Simplex.Ge (if k = 0 then b0 else 3.))
      in
      let obj =
        Array.init n (fun j ->
            let r = Es_util.Rng.create ~seed:((seed * 17) + j) in
            Es_util.Rng.uniform_in r 0.5 2.)
      in
      let h = 1e-5 in
      match (Simplex.solve ?max_iters:None ~obj (rows 3.), Simplex.solve ?max_iters:None ~obj (rows (3. +. h))) with
      | Simplex.Optimal { objective = o1; duals; _ }, Simplex.Optimal { objective = o2; _ }
        ->
        Float.abs (o2 -. o1 -. (duals.(0) *. h)) < 1e-7
      | _ -> false)

let duals_cases =
  [
    Alcotest.test_case "duals simple" `Quick test_duals_simple;
    Alcotest.test_case "duals nonbinding zero" `Quick test_duals_nonbinding_row_zero;
    Alcotest.test_case "duals equality" `Quick test_duals_equality;
    QCheck_alcotest.to_alcotest qcheck_duals_predict_rhs_perturbation;
  ]

let suite = (fst suite, snd suite @ duals_cases)

(* --- revised simplex: differential harness --------------------------- *)

(* The revised sparse core (Sparse + Lu + Revised) is locked against
   the retained dense tableau (Simplex.solve_dense): agreement on
   outcome class, objective to rtol 1e-8, and Lp_cert certification of
   both solvers' duals, over seeded random LPs with mixed row senses —
   plus warm-started re-solves against cold solves of the same
   restated problem. *)

module Sparse = Es_lp.Sparse
module Revised = Es_lp.Revised
module Lu = Es_lp.Lu
module Lp_cert = Es_check.Lp_cert
module CGen = Es_check.Gen

let close_rel ?(rtol = 1e-8) a b =
  Float.abs (a -. b)
  <= rtol *. Float.max 1. (Float.max (Float.abs a) (Float.abs b))

let is_certified ~obj ~constraints outcome =
  match Lp_cert.certify_outcome ~obj ~constraints outcome with
  | Some (Lp_cert.Certified _) -> true
  | Some (Lp_cert.Rejected _) -> false
  | None -> true (* Infeasible/Unbounded claims carry no certificate *)

let outcomes_agree a b =
  match (a, b) with
  | Simplex.Optimal { objective = oa; _ }, Simplex.Optimal { objective = ob; _ }
    ->
    close_rel oa ob
  | Simplex.Infeasible, Simplex.Infeasible -> true
  | Simplex.Unbounded, Simplex.Unbounded -> true
  | _ -> false

(* mixed-sense random LP; mostly positive objectives so a decent
   fraction is bounded, with a sprinkle of negative costs to exercise
   the Unbounded class on both solvers *)
let random_lp rng =
  let n = 2 + Es_util.Rng.int rng 3 in
  let m = 2 + Es_util.Rng.int rng 4 in
  let rows =
    List.init m (fun _ ->
        let coeffs =
          Array.init n (fun _ ->
              if Es_util.Rng.uniform_in rng 0. 1. < 0.25 then 0.
              else Es_util.Rng.uniform_in rng (-2.) 2.)
        in
        let relation =
          match Es_util.Rng.int rng 3 with
          | 0 -> Simplex.Le
          | 1 -> Simplex.Ge
          | _ -> Simplex.Eq
        in
        constr coeffs relation (Es_util.Rng.uniform_in rng (-2.) 4.))
  in
  let obj =
    Array.init n (fun _ ->
        if Es_util.Rng.uniform_in rng 0. 1. < 0.85 then
          Es_util.Rng.uniform_in rng 0.1 2.
        else Es_util.Rng.uniform_in rng (-1.) 0.)
  in
  (obj, rows)

let qcheck_differential_random =
  QCheck.Test.make
    ~name:"differential: revised vs dense on random mixed-sense LPs" ~count:300
    QCheck.(int_bound 1_000_000)
    (fun seed ->
      let rng = Es_util.Rng.create ~seed in
      let obj, rows = random_lp rng in
      let dense = Simplex.solve_dense ~obj rows in
      let revised = Simplex.solve ~obj rows in
      outcomes_agree dense revised
      && is_certified ~obj ~constraints:rows dense
      && is_certified ~obj ~constraints:rows revised)

let qcheck_differential_warm_random =
  QCheck.Test.make
    ~name:"differential: warm restart vs cold on perturbed rhs" ~count:300
    QCheck.(int_bound 1_000_000)
    (fun seed ->
      let rng = Es_util.Rng.create ~seed:(seed + 7_000_000) in
      let obj, rows = random_lp rng in
      let sp = Sparse.of_rows ~obj rows in
      match Revised.solve sp with
      | Simplex.Infeasible, _ | Simplex.Unbounded, _ -> true
      | Simplex.Optimal _, None -> false (* optimal must return its basis *)
      | Simplex.Optimal _, Some basis ->
        (* restate the same columns at a perturbed rhs: warm from the
           old basis must agree with a cold solve, and its duals must
           certify *)
        let rhs' =
          Array.map
            (fun v -> (v *. Es_util.Rng.uniform_in rng 0.8 1.2) +. 0.1)
            (Sparse.rhs sp)
        in
        let sp' = Sparse.with_rhs sp rhs' in
        let rows' =
          List.mapi
            (fun i (r : Simplex.constr) -> { r with rhs = rhs'.(i) })
            rows
        in
        let warm, _ = Revised.solve_from basis sp' in
        let cold, _ = Revised.solve sp' in
        outcomes_agree warm cold
        && is_certified ~obj ~constraints:rows' warm)

(* Structured instances: the Section-IV VDD LP over Es_check.Gen's
   shrinking generator, cold + warm (restated at a looser deadline)
   against the dense reference. *)
let qcheck_differential_vdd =
  QCheck2.Test.make
    ~name:"differential: vdd LP dense vs revised, cold and warm" ~count:250
    ~print:CGen.qprint (CGen.qgen ())
    (fun inst ->
      let mapping = CGen.mapping inst in
      let levels = inst.CGen.levels in
      let deadline = CGen.deadline inst in
      let check_at ?basis deadline =
        let lp = Bicrit_vdd.lp ~deadline ~levels mapping in
        let obj = Problem.objective_coeffs lp in
        let rows = Problem.constraints lp in
        let dense = Simplex.solve_dense ~obj rows in
        let outcome, next = Problem.solve_warm ?basis lp in
        let ok =
          match (dense, outcome) with
          | Simplex.Optimal { objective = od; _ }, Problem.Solution s ->
            close_rel od (Problem.objective s)
            && (match Lp_cert.certify_problem lp s with
               | Lp_cert.Certified _ -> true
               | Lp_cert.Rejected _ -> false)
          | Simplex.Infeasible, Problem.Infeasible -> true
          | Simplex.Unbounded, Problem.Unbounded -> true
          | _ -> false
        in
        (ok, next)
      in
      let ok_cold, basis = check_at deadline in
      ok_cold
      &&
      match basis with
      | None -> true
      | Some _ ->
        fst (check_at ?basis deadline) (* warm re-solve of the same LP *)
        && fst (check_at ?basis (1.25 *. deadline))
        && fst (check_at ?basis (0.8 *. deadline)))

(* --- degeneracy regression corpus ------------------------------------ *)

(* Beale's classic cycling LP: Dantzig pricing with fixed tie-breaking
   can cycle forever on it; Bland's rule terminates.  Optimum −0.05 at
   x = (0.04, 0, 1, 0). *)
let beale_obj = [| -0.75; 150.; -0.02; 6. |]

let beale_rows =
  [
    constr [| 0.25; -60.; -0.04; 9. |] Simplex.Le 0.;
    constr [| 0.5; -90.; -0.02; 3. |] Simplex.Le 0.;
    constr [| 0.; 0.; 1.; 0. |] Simplex.Le 1.;
  ]

let test_beale_terminates () =
  match Simplex.solve ~obj:beale_obj beale_rows with
  | Simplex.Optimal { objective; solution; _ } ->
    check_float "objective" (-0.05) objective;
    check_float "x3 at bound" 1. solution.(2)
  | _ -> Alcotest.fail "expected optimal"

let test_beale_pure_bland () =
  (* bland_after:1 forces Bland's rule from the first pivot *)
  match Revised.solve ~bland_after:1 (Sparse.of_rows ~obj:beale_obj beale_rows) with
  | Simplex.Optimal { objective; _ }, Some _ -> check_float "objective" (-0.05) objective
  | _ -> Alcotest.fail "expected optimal with basis"

let test_duplicate_row_ties () =
  (* duplicated rows make every ratio-test step a tie at the same rhs:
     the Bland tie-break on basis index must still terminate *)
  let rows =
    [
      constr [| 1.; 1. |] Simplex.Le 2.;
      constr [| 1.; 1. |] Simplex.Le 2.;
      constr [| 1.; 1. |] Simplex.Le 2.;
      constr [| 2.; 2. |] Simplex.Le 4.;
      constr [| 1.; 0. |] Simplex.Le 1.5;
    ]
  in
  let obj = [| -1.; -1. |] in
  (match Simplex.solve ~obj rows with
  | Simplex.Optimal { objective; _ } -> check_float "revised" (-2.) objective
  | _ -> Alcotest.fail "expected optimal");
  match Simplex.solve_dense ~obj rows with
  | Simplex.Optimal { objective; _ } -> check_float "dense" (-2.) objective
  | _ -> Alcotest.fail "expected optimal"

let test_refactor_threshold () =
  (* refactor_every:1 rebuilds the LU at every pivot; the result must
     match the eta-file path, and the refactorisation counter must show
     the threshold actually firing *)
  let rng = Es_util.Rng.create ~seed:4242 in
  let obj, rows = random_lp rng in
  let sp = Sparse.of_rows ~obj rows in
  let c_refactor = Es_obs.Obs.counter "simplex_refactorizations" in
  let before = Es_obs.Obs.value c_refactor in
  Es_obs.Obs.enable ();
  let eager =
    Fun.protect
      ~finally:(fun () -> Es_obs.Obs.disable ())
      (fun () -> Revised.solve ~refactor_every:1 sp)
  in
  let lazy_ = Revised.solve ~refactor_every:10_000 sp in
  (match (fst eager, fst lazy_) with
  | Simplex.Optimal { objective = a; _ }, Simplex.Optimal { objective = b; _ } ->
    check_float "same optimum" a b
  | Simplex.Infeasible, Simplex.Infeasible -> ()
  | _ -> Alcotest.fail "outcome mismatch across refactor thresholds");
  Alcotest.(check bool) "refactorisations counted" true
    (Es_obs.Obs.value c_refactor > before)

(* --- LU reconstruction property -------------------------------------- *)

(* After k product-form updates, the factorisation must still solve
   against the *current* basis matrix: B·ftran(b) ≈ b and
   Bᵀ·btran-consistency (column · y = c), both to rtol 1e-10 — the
   L·U ≈ B reconstruction check, phrased through the solves the
   simplex actually uses. *)
let qcheck_lu_reconstruction =
  QCheck.Test.make ~name:"lu: reconstruction after k eta updates" ~count:100
    QCheck.(int_bound 1_000_000)
    (fun seed ->
      let rng = Es_util.Rng.create ~seed:(seed + 11) in
      let m = 3 + Es_util.Rng.int rng 18 in
      (* diagonally dominant random sparse columns: nonsingular.  Rows
         are unique within a column, like any real CSC column. *)
      let random_col k =
        let seen = Array.make m false in
        seen.(k) <- true;
        let entries = ref [ (k, 2. +. Es_util.Rng.uniform_in rng 0. 2.) ] in
        for _ = 1 to Es_util.Rng.int rng 3 do
          let r = Es_util.Rng.int rng m in
          if not seen.(r) then begin
            seen.(r) <- true;
            entries := (r, Es_util.Rng.uniform_in rng (-0.5) 0.5) :: !entries
          end
        done;
        List.sort (fun (a, _) (b, _) -> Int.compare a b) !entries
      in
      let cols = Array.init m random_col in
      let lu = Lu.factor ~m ~col:(fun k -> cols.(k)) (Array.init m Fun.id) in
      (* k eta updates, each replacing a random position with a fresh
         column; keep the shadow matrix in sync *)
      let k_updates = 1 + Es_util.Rng.int rng 8 in
      for _ = 1 to k_updates do
        let pos = Es_util.Rng.int rng m in
        let fresh = random_col pos in
        let a = Array.make m 0. in
        List.iter (fun (r, v) -> a.(r) <- v) fresh;
        let w = Lu.ftran lu a in
        match Lu.update lu ~pos ~w with
        | () -> cols.(pos) <- fresh
        | exception Lu.Unstable -> () (* skip the swap, keep B in sync *)
      done;
      let mat_vec x =
        let out = Array.make m 0. in
        Array.iteri
          (fun k col -> List.iter (fun (r, v) -> out.(r) <- out.(r) +. (v *. x.(k))) col)
          cols;
        out
      in
      let b = Array.init m (fun _ -> Es_util.Rng.uniform_in rng (-3.) 3.) in
      let x = Lu.ftran lu (Array.copy b) in
      let recon = mat_vec x in
      let scale =
        Array.fold_left (fun acc v -> Float.max acc (Float.abs v)) 1. b
      in
      let ftran_ok =
        Array.for_all2
          (fun a b -> Float.abs (a -. b) <= 1e-10 *. scale)
          recon b
      in
      (* Bᵀ y = c  ⇔  (column k) · y = c_k for every k *)
      let c = Array.init m (fun _ -> Es_util.Rng.uniform_in rng (-3.) 3.) in
      let y = Lu.btran lu (Array.copy c) in
      let cscale =
        Array.fold_left (fun acc v -> Float.max acc (Float.abs v)) 1. c
      in
      let btran_ok =
        Array.for_all (fun k ->
            let dot =
              List.fold_left (fun acc (r, v) -> acc +. (v *. y.(r))) 0. cols.(k)
            in
            Float.abs (dot -. c.(k)) <= 1e-10 *. cscale)
          (Array.init m Fun.id)
      in
      ftran_ok && btran_ok)

let test_lu_singular_detected () =
  (* two identical columns: factor must raise Singular *)
  let cols = [| [ (0, 1.); (1, 1.) ]; [ (0, 1.); (1, 1.) ] |] in
  match Lu.factor ~m:2 ~col:(fun k -> cols.(k)) [| 0; 1 |] with
  | _ -> Alcotest.fail "expected Singular"
  | exception Lu.Singular -> ()

let test_warm_stale_basis_falls_back () =
  (* a basis from one LP handed to a structurally different LP must
     degrade to a cold solve, not crash or mis-certify *)
  let obj = [| 1.; 1. |] in
  let rows1 = [ constr [| 1.; 2. |] Simplex.Ge 4.; constr [| 3.; 1. |] Simplex.Ge 6. ] in
  let sp1 = Sparse.of_rows ~obj rows1 in
  match Revised.solve sp1 with
  | _, None -> Alcotest.fail "expected a basis"
  | _, Some basis ->
    let rows2 =
      [
        constr [| 1.; 1. |] Simplex.Le 4.;
        constr [| 0.; 1. |] Simplex.Le 3.;
        constr [| 1.; 0. |] Simplex.Le 3.;
      ]
    in
    let sp2 = Sparse.of_rows ~obj:[| -1.; -2. |] rows2 in
    (match Revised.solve_from basis sp2 with
    | Simplex.Optimal { objective; _ }, Some _ -> check_float "objective" (-7.) objective
    | _ -> Alcotest.fail "expected optimal via fallback")

let revised_cases =
  [
    QCheck_alcotest.to_alcotest qcheck_differential_random;
    QCheck_alcotest.to_alcotest qcheck_differential_warm_random;
    QCheck_alcotest.to_alcotest qcheck_differential_vdd;
    Alcotest.test_case "beale terminates (dantzig+fallback)" `Quick test_beale_terminates;
    Alcotest.test_case "beale under pure bland" `Quick test_beale_pure_bland;
    Alcotest.test_case "duplicate-row rhs ties" `Quick test_duplicate_row_ties;
    Alcotest.test_case "refactorisation threshold" `Quick test_refactor_threshold;
    QCheck_alcotest.to_alcotest qcheck_lu_reconstruction;
    Alcotest.test_case "lu singular detected" `Quick test_lu_singular_detected;
    Alcotest.test_case "stale warm basis falls back" `Quick test_warm_stale_basis_falls_back;
  ]

let suite = (fst suite, snd suite @ revised_cases)
