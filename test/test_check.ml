(* Tests for the verification subsystem (lib/check): the certificate
   checkers accept genuine solver output and reject corrupted output,
   the brute-force oracles agree with the production solvers on pinned
   instances, random raw LPs always carry valid certificates, and the
   fuzz runner shrinks deterministically. *)

module Simplex = Es_lp.Simplex
module Lp_cert = Es_check.Lp_cert
module Kkt = Es_check.Kkt
module Brute = Es_check.Brute
module CGen = Es_check.Gen
module Relation = Es_check.Relation
module Runner = Es_check.Runner

let levels = [| 0.2; 0.6; 1.0 |]

(* --- Lp_cert: certificates and corruption --------------------------- *)

(* min x + 2y  s.t.  x + y >= 1,  y <= 5:  optimum x=1, y=0, E=1 *)
let tiny_obj = [| 1.; 2. |]

let tiny_rows =
  [
    { Simplex.coeffs = [| 1.; 1. |]; relation = Simplex.Ge; rhs = 1. };
    { Simplex.coeffs = [| 0.; 1. |]; relation = Simplex.Le; rhs = 5. };
  ]

let solved_tiny () =
  match Simplex.solve ~obj:tiny_obj tiny_rows with
  | Simplex.Optimal { objective; solution; duals } -> (objective, solution, duals)
  | Simplex.Infeasible | Simplex.Unbounded -> Alcotest.fail "tiny LP must be optimal"

let is_certified = function Lp_cert.Certified _ -> true | Lp_cert.Rejected _ -> false

let test_cert_accepts_simplex () =
  let objective, solution, duals = solved_tiny () in
  Alcotest.(check bool) "genuine optimum certified" true
    (is_certified
       (Lp_cert.certify ~tol:1e-6 ~obj:tiny_obj ~constraints:tiny_rows ~objective ~solution ~duals))

let test_cert_rejects_corrupted_objective () =
  (* the acceptance criterion: +1% on the reported energy must fail *)
  let objective, solution, duals = solved_tiny () in
  Alcotest.(check bool) "objective +1% rejected" false
    (is_certified
       (Lp_cert.certify ~tol:1e-6 ~obj:tiny_obj ~constraints:tiny_rows ~objective:(1.01 *. objective)
          ~solution ~duals))

let test_cert_rejects_corrupted_solution () =
  let objective, solution, duals = solved_tiny () in
  let solution = Array.copy solution in
  solution.(1) <- solution.(1) +. 0.05;
  Alcotest.(check bool) "perturbed primal rejected" false
    (is_certified
       (Lp_cert.certify ~tol:1e-6 ~obj:tiny_obj ~constraints:tiny_rows ~objective ~solution ~duals))

let test_cert_rejects_corrupted_duals () =
  let objective, solution, duals = solved_tiny () in
  let duals = Array.map (fun y -> -.y) duals in
  Alcotest.(check bool) "sign-flipped duals rejected" false
    (is_certified
       (Lp_cert.certify ~tol:1e-6 ~obj:tiny_obj ~constraints:tiny_rows ~objective ~solution ~duals))

let test_cert_vdd_problem () =
  (* end-to-end on the real VDD LP, plus the +1% corruption *)
  let rng = Es_util.Rng.create ~seed:11 in
  let dag = Generators.random_layered rng ~layers:3 ~width:2 ~density:0.5 ~wlo:1. ~whi:3. in
  let mapping = List_sched.schedule dag ~p:2 ~priority:List_sched.Bottom_level in
  let deadline = 1.4 *. List_sched.makespan_at_speed mapping ~f:1. in
  let lp = Bicrit_vdd.lp ~deadline ~levels mapping in
  match Es_lp.Problem.solve lp with
  | Es_lp.Problem.Infeasible | Es_lp.Problem.Unbounded -> Alcotest.fail "feasible by construction"
  | Es_lp.Problem.Solution s ->
    Alcotest.(check bool) "vdd optimum certified" true
      (is_certified (Lp_cert.certify_problem lp s));
    let corrupted =
      Lp_cert.certify ~tol:1e-6
        ~obj:(Es_lp.Problem.objective_coeffs lp)
        ~constraints:(Es_lp.Problem.constraints lp)
        ~objective:(1.01 *. Es_lp.Problem.objective s)
        ~solution:(Es_lp.Problem.values s) ~duals:(Es_lp.Problem.duals s)
    in
    Alcotest.(check bool) "vdd energy +1% rejected" false (is_certified corrupted)

(* Random raw LPs with mixed <=/>=/= rows, negative rhs and mixed-sign
   coefficients: harsher on the dual-sign bookkeeping than the
   structured VDD LPs.  Every Optimal claim must carry a valid
   primal-dual certificate. *)
let qcheck_random_lp_certificates =
  let open QCheck2 in
  let gen =
    Gen.(
      int_range 1 4 >>= fun nv ->
      int_range 1 4 >>= fun nc ->
      list_size (return nc)
        (triple
           (array_size (return nv) (float_range (-2.) 2.))
           (oneofl [ Simplex.Le; Simplex.Ge; Simplex.Eq ])
           (float_range (-2.) 2.))
      >>= fun rows ->
      (* non-negative objective keeps a decent fraction bounded *)
      array_size (return nv) (float_range 0. 2.) >|= fun obj -> (obj, rows))
  in
  Test.make ~name:"random LPs: every simplex optimum is certified" ~count:500 gen
    (fun (obj, rows) ->
      let constraints =
        List.map (fun (coeffs, relation, rhs) -> { Simplex.coeffs; relation; rhs }) rows
      in
      match Simplex.solve ~obj constraints with
      | exception Failure _ -> true (* pivot limit: no claim to check *)
      | Simplex.Infeasible | Simplex.Unbounded -> true
      | Simplex.Optimal _ as o -> (
        match Lp_cert.certify_outcome ~obj ~constraints o with
        | Some (Lp_cert.Certified _) -> true
        | Some (Lp_cert.Rejected _ as v) -> Test.fail_report (Lp_cert.describe v)
        | None -> false))

(* --- Kkt: optimality oracles and corruption ------------------------- *)

let test_kkt_chain_certified () =
  let weights = [| 1.; 2.; 1.5 |] and deadline = 12. in
  match Bicrit_continuous.chain ~weights ~deadline ~fmin:0.2 ~fmax:1. with
  | None -> Alcotest.fail "feasible"
  | Some r ->
    Alcotest.(check bool) "closed form passes" true
      (Kkt.is_ok (Kkt.check_chain ~weights ~deadline ~fmin:0.2 ~fmax:1. r));
    let corrupt = { r with Bicrit_continuous.energy = 1.01 *. r.Bicrit_continuous.energy } in
    Alcotest.(check bool) "energy +1% caught" false
      (Kkt.is_ok (Kkt.check_chain ~weights ~deadline ~fmin:0.2 ~fmax:1. corrupt))

let test_kkt_rejects_uncommon_speeds () =
  (* feasible but suboptimal: distinct speeds above the floor *)
  let v =
    Kkt.check_waterfill ~tol:1e-6 ~eff_weights:[| 1.; 1. |] ~floors:[| 0.; 0. |] ~fmax:10. ~deadline:4.
      ~speeds:[| 1.; 1. /. 3. |]
  in
  Alcotest.(check bool) "uncommon speeds rejected" false (Kkt.is_ok v);
  let ok =
    Kkt.check_waterfill ~tol:1e-6 ~eff_weights:[| 1.; 1. |] ~floors:[| 0.; 0. |] ~fmax:10. ~deadline:4.
      ~speeds:[| 0.5; 0.5 |]
  in
  Alcotest.(check bool) "true waterfill accepted" true (Kkt.is_ok ok)

let test_kkt_general_certified_and_corrupted () =
  let rng = Es_util.Rng.create ~seed:21 in
  let dag = Generators.random_layered rng ~layers:3 ~width:3 ~density:0.5 ~wlo:1. ~whi:3. in
  let mapping = List_sched.schedule dag ~p:2 ~priority:List_sched.Bottom_level in
  let n = Dag.n dag in
  let lo = Array.make n 0.2 and hi = Array.make n 1. in
  let deadline = 1.5 *. List_sched.makespan_at_speed mapping ~f:1. in
  match Bicrit_continuous.solve_general ~lo ~hi ~deadline mapping with
  | None -> Alcotest.fail "feasible by construction"
  | Some r ->
    Alcotest.(check bool) "barrier optimum passes KKT" true
      (Kkt.is_ok (Kkt.check_general ~deadline ~lo ~hi mapping r));
    let speeds = Array.copy r.Bicrit_continuous.speeds in
    speeds.(0) <- Float.min hi.(0) (speeds.(0) *. 1.1);
    let corrupt = { r with Bicrit_continuous.speeds = speeds } in
    Alcotest.(check bool) "perturbed speeds caught" false
      (Kkt.is_ok (Kkt.check_general ~deadline ~lo ~hi mapping corrupt))

(* --- Brute: hull geometry and exhaustive enumeration ----------------- *)

let test_hull_vertices () =
  (* u ↦ 1/u² is strictly convex, so every level is a hull vertex *)
  let h = Brute.hull ~levels in
  Alcotest.(check int) "all levels on the hull" (Array.length levels) (Array.length h);
  let u0, e0 = h.(0) in
  Alcotest.(check (float 1e-12)) "first vertex is fmax" 1. u0;
  Alcotest.(check (float 1e-12)) "fmax energy density" 1. e0

let test_hull_single_task_mix () =
  (* the analytic two-level mix from test_vdd, via the hull oracle *)
  match Brute.vdd_chain_optimum ~levels:[| 0.5; 1.0 |] ~weights:[| 1. |] ~deadline:1.5 with
  | None -> Alcotest.fail "feasible"
  | Some e -> Alcotest.(check (float 1e-9)) "analytic mix" 0.625 e

let test_hull_infeasible () =
  Alcotest.(check bool) "too tight for fmax" true
    (Brute.vdd_chain_optimum ~levels ~weights:[| 4. |] ~deadline:3.9 = None)

let test_brute_matches_branch_and_bound () =
  let rng = Es_util.Rng.create ~seed:31 in
  let dag = Generators.random_dag rng ~n:4 ~p:0.4 ~wlo:0.5 ~whi:2. in
  let mapping = List_sched.schedule dag ~p:2 ~priority:List_sched.Bottom_level in
  let deadline = 1.3 *. List_sched.makespan_at_speed mapping ~f:1. in
  match
    ( Bicrit_discrete.solve_exact ~deadline ~levels mapping,
      Brute.discrete_optimum ~levels ~deadline mapping )
  with
  | Some e, Some b ->
    Alcotest.(check (float 1e-9)) "B&B equals enumeration" b e.Bicrit_discrete.energy
  | _ -> Alcotest.fail "feasible by construction"

(* --- Gen / Runner: determinism and shrinking ------------------------- *)

let test_generate_deterministic () =
  let inst seed = CGen.generate (Es_util.Rng.create ~seed) in
  Alcotest.(check string) "same seed, same instance" (CGen.describe (inst 99))
    (CGen.describe (inst 99));
  Alcotest.(check bool) "different seed, different instance" false
    (String.equal (CGen.describe (inst 99)) (CGen.describe (inst 100)))

let test_shrinker_reaches_minimum () =
  (* a synthetic relation failing iff n >= 3 must shrink to exactly 3 *)
  let synthetic =
    {
      Relation.name = "synthetic";
      descr = "fails on any instance with at least 3 tasks";
      shapes = CGen.all_shapes;
      run =
        (fun t ->
          if Array.length t.CGen.weights >= 3 then Relation.Fail "n >= 3" else Relation.Pass);
    }
  in
  let rng = Es_util.Rng.create ~seed:5 in
  let rec failing_instance () =
    let i = CGen.generate rng in
    if Array.length i.CGen.weights >= 5 then i else failing_instance ()
  in
  let shrunk, steps = Runner.shrink_to_minimal synthetic (failing_instance ()) in
  Alcotest.(check int) "minimal size reached" 3 (Array.length shrunk.CGen.weights);
  Alcotest.(check bool) "took at least one step" true (steps > 0)

let test_runner_seeded_fuzz () =
  (* the whole relation catalogue on a small seeded run, inside the
     tier-1 suite: any regression that breaks a solver invariant fails
     here even before CI's bigger escheck run *)
  let report = Runner.run ~seed:7 ~trials:20 Relation.all in
  let failures =
    List.concat_map (fun s -> s.Runner.failures) report.Runner.summaries
  in
  (match failures with
  | [] -> ()
  | f :: _ ->
    Alcotest.fail
      (Printf.sprintf "relation %s failed (%s); reproduce: %s" f.Runner.relation
         f.Runner.message (Runner.repro f)));
  Alcotest.(check bool) "report ok" true (Runner.ok report)

let test_runner_render_deterministic () =
  let r () = Runner.render (Runner.run ~seed:3 ~trials:5 Relation.all) in
  Alcotest.(check string) "two identical runs render identically" (r ()) (r ())

let test_relation_registry () =
  let names = Relation.names () in
  Alcotest.(check int) "no duplicate names" (List.length names)
    (List.length (List.sort_uniq String.compare names));
  Alcotest.(check bool) "at least 6 relations" true (List.length names >= 6);
  Alcotest.(check bool) "find hit" true (Option.is_some (Relation.find "lp-cert"));
  Alcotest.(check bool) "find miss" true (Option.is_none (Relation.find "no-such"))

let test_report_json () =
  let first = match Relation.all with r :: _ -> [ r ] | [] -> [] in
  let report = Runner.run ~seed:13 ~trials:3 first in
  let json = Runner.to_json report in
  match Es_obs.Obs_json.member "ok" json with
  | Some (Es_obs.Obs_json.Bool b) -> Alcotest.(check bool) "json ok flag" true b
  | _ -> Alcotest.fail "report JSON lacks an ok flag"

let suite =
  ( "check",
    [
      Alcotest.test_case "lp-cert accepts genuine optimum" `Quick test_cert_accepts_simplex;
      Alcotest.test_case "lp-cert rejects +1% objective" `Quick
        test_cert_rejects_corrupted_objective;
      Alcotest.test_case "lp-cert rejects perturbed primal" `Quick
        test_cert_rejects_corrupted_solution;
      Alcotest.test_case "lp-cert rejects flipped duals" `Quick
        test_cert_rejects_corrupted_duals;
      Alcotest.test_case "lp-cert certifies the vdd LP" `Quick test_cert_vdd_problem;
      QCheck_alcotest.to_alcotest qcheck_random_lp_certificates;
      Alcotest.test_case "kkt chain certificate and corruption" `Quick
        test_kkt_chain_certified;
      Alcotest.test_case "kkt rejects uncommon speeds" `Quick test_kkt_rejects_uncommon_speeds;
      Alcotest.test_case "kkt general certificate and corruption" `Quick
        test_kkt_general_certified_and_corrupted;
      Alcotest.test_case "hull keeps all convex vertices" `Quick test_hull_vertices;
      Alcotest.test_case "hull analytic two-level mix" `Quick test_hull_single_task_mix;
      Alcotest.test_case "hull detects infeasibility" `Quick test_hull_infeasible;
      Alcotest.test_case "enumeration matches branch-and-bound" `Quick
        test_brute_matches_branch_and_bound;
      Alcotest.test_case "instance generation is seeded" `Quick test_generate_deterministic;
      Alcotest.test_case "shrinker reaches the minimum" `Quick test_shrinker_reaches_minimum;
      Alcotest.test_case "seeded fuzz over all relations" `Slow test_runner_seeded_fuzz;
      Alcotest.test_case "render is deterministic" `Quick test_runner_render_deterministic;
      Alcotest.test_case "relation registry" `Quick test_relation_registry;
      Alcotest.test_case "json report" `Quick test_report_json;
    ] )
