(* Dedicated coverage for Sched.Validate: one unit test per violation
   constructor, plus a QCheck2 property that [check] and [is_feasible]
   agree on randomly generated (and randomly broken) schedules. *)

module CGen = Es_check.Gen

let levels = [| 0.2; 0.6; 1.0 |]
let cont = Speed.continuous ~fmin:0.2 ~fmax:1.0
let rel = Rel.make ~lambda0:1e-5 ~sensitivity:3. ~fmin:0.2 ~fmax:1.0 ~frel:0.8 ()

let chain_sched ~speed =
  let dag = Dag.make ?labels:None ~weights:[| 1.; 1. |] ~edges:[ (0, 1) ] in
  Schedule.uniform (Mapping.single_processor dag) ~speed

let has p viols = List.exists p viols

let test_feasible_is_clean () =
  let sched = chain_sched ~speed:1.0 in
  (match Validate.check ~deadline:2.5 ~model:cont sched with
  | [] -> ()
  | v :: _ -> Alcotest.fail (Validate.explain (Schedule.dag sched) v));
  Alcotest.(check bool) "is_feasible agrees" true
    (Validate.is_feasible ~deadline:2.5 ~model:cont sched)

let test_inadmissible_speed () =
  let sched = chain_sched ~speed:1.5 in
  let viols = Validate.check ~deadline:100. ~model:cont sched in
  Alcotest.(check bool) "above fmax flagged" true
    (has (function Validate.Inadmissible_speed _ -> true | _ -> false) viols);
  (* VDD is stricter: parts must sit exactly on a level *)
  let off_level = chain_sched ~speed:0.5 in
  let viols = Validate.check ~deadline:100. ~model:(Speed.vdd_hopping levels) off_level in
  Alcotest.(check bool) "off-level vdd speed flagged" true
    (has (function Validate.Inadmissible_speed _ -> true | _ -> false) viols)

let test_speed_change_forbidden () =
  let dag = Dag.make ?labels:None ~weights:[| 1.1 |] ~edges:[] in
  let mapping = Mapping.single_processor dag in
  (* two parts summing to the task's work: legal under VDD-HOPPING,
     forbidden under DISCRETE/INCREMENTAL *)
  let execs =
    [| [ [ { Schedule.speed = 1.0; time = 0.5 }; { Schedule.speed = 0.6; time = 1.0 } ] ] |]
  in
  let sched = Schedule.make mapping ~executions:execs in
  let viols = Validate.check ~model:(Speed.discrete levels) sched in
  Alcotest.(check bool) "mid-task hop flagged under discrete" true
    (has (function Validate.Speed_change_forbidden _ -> true | _ -> false) viols);
  let viols_vdd = Validate.check ~model:(Speed.vdd_hopping levels) sched in
  Alcotest.(check bool) "same schedule fine under vdd" false
    (has (function Validate.Speed_change_forbidden _ -> true | _ -> false) viols_vdd)

let test_deadline_exceeded () =
  let sched = chain_sched ~speed:0.2 in
  (* serial work 2 at speed 0.2: makespan 10 *)
  let viols = Validate.check ~deadline:5. ~model:cont sched in
  Alcotest.(check bool) "late schedule flagged" true
    (has
       (function
         | Validate.Deadline_exceeded { makespan; deadline } ->
           Float.abs (makespan -. 10.) < 1e-9 && Float.abs (deadline -. 5.) < 1e-9
         | _ -> false)
       viols)

let test_reliability_violated () =
  (* a single slow execution has a much higher failure probability than
     the frel target *)
  let sched = chain_sched ~speed:0.2 in
  let viols = Validate.check ~rel ~model:cont sched in
  Alcotest.(check bool) "slow single execution flagged" true
    (has (function Validate.Reliability_violated _ -> true | _ -> false) viols);
  let fast = chain_sched ~speed:1.0 in
  Alcotest.(check bool) "fast execution satisfies the target" false
    (has
       (function Validate.Reliability_violated _ -> true | _ -> false)
       (Validate.check ~rel ~model:cont fast))

(* Random schedules — genuine solver output and deliberately broken
   variants alike — on which the two entry points must agree. *)
let qcheck_check_iff_is_feasible =
  let open QCheck2 in
  let gen =
    Gen.(
      CGen.qgen () >>= fun inst ->
      float_range 0.1 1.3 >>= fun speed ->
      float_range 0.5 2. >|= fun dscale -> (inst, speed, dscale))
  in
  Test.make ~name:"Validate.check = [] iff Validate.is_feasible" ~count:200 gen
    (fun (inst, speed, dscale) ->
      let sched = Schedule.uniform (CGen.mapping inst) ~speed in
      let deadline = dscale *. CGen.deadline inst in
      List.for_all
        (fun model ->
          let viols = Validate.check ~deadline ~model sched in
          let empty = match viols with [] -> true | _ :: _ -> false in
          Bool.equal (Validate.is_feasible ~deadline ~model sched) empty)
        [
          cont;
          Speed.vdd_hopping levels;
          Speed.discrete levels;
          Speed.incremental ~fmin:0.2 ~fmax:1.0 ~delta:0.4;
        ])

let suite =
  ( "validate",
    [
      Alcotest.test_case "feasible schedule is clean" `Quick test_feasible_is_clean;
      Alcotest.test_case "inadmissible speed" `Quick test_inadmissible_speed;
      Alcotest.test_case "speed change forbidden" `Quick test_speed_change_forbidden;
      Alcotest.test_case "deadline exceeded" `Quick test_deadline_exceeded;
      Alcotest.test_case "reliability violated" `Quick test_reliability_violated;
      QCheck_alcotest.to_alcotest qcheck_check_iff_is_feasible;
    ] )
