(* lib/par: determinism, exception propagation, pool lifecycle. *)

module Pool = Es_par.Pool
module Par = Es_par.Par
module Rng = Es_util.Rng

let with_pool4 f = Pool.with_pool ~domains:4 f

(* A mildly uneven workload so tasks finish out of submission order. *)
let busy n =
  let acc = ref 0 in
  for i = 1 to 1 + ((n * 7919) mod 997) do
    acc := (!acc + (i * n)) mod 1_000_003
  done;
  !acc

let test_map_ordering () =
  let xs = List.init 200 Fun.id in
  let expected = List.map busy xs in
  with_pool4 (fun pool ->
      Alcotest.(check (list int))
        "parallel = sequential" expected
        (Par.parallel_map ~pool busy xs);
      Alcotest.(check (list int))
        "chunk:1" expected
        (Par.parallel_map ~pool ~chunk:1 busy xs);
      Alcotest.(check (list int))
        "chunk:17" expected
        (Par.parallel_map ~pool ~chunk:17 busy xs));
  Alcotest.(check (list int))
    "no pool" expected
    (Par.parallel_map busy xs)

exception Boom of int

let test_exception_index () =
  let xs = List.init 50 Fun.id in
  let f x = if x mod 20 = 3 then raise (Boom x) else x in
  let check_raises name run =
    match run () with
    | (_ : int list) -> Alcotest.failf "%s: expected Task_error" name
    | exception Par.Task_error { index; exn; _ } ->
      (* tasks 3, 23 and 43 all fail; the join must pick the lowest
         index regardless of which worker finished first *)
      Alcotest.(check int) (name ^ ": lowest failing index") 3 index;
      (match exn with
      | Boom v -> Alcotest.(check int) (name ^ ": original exn") 3 v
      | _ -> Alcotest.failf "%s: wrong exception payload" name)
  in
  check_raises "sequential" (fun () -> Par.parallel_map f xs);
  with_pool4 (fun pool ->
      check_raises "parallel" (fun () -> Par.parallel_map ~pool ~chunk:1 f xs);
      (* same contract when chunks land on different shards and get
         stolen: auto-tuned and odd explicit chunkings agree *)
      check_raises "parallel auto-chunk" (fun () -> Par.parallel_map ~pool f xs);
      check_raises "parallel chunk:7" (fun () ->
          Par.parallel_map ~pool ~chunk:7 f xs))

let test_default_chunk_pins () =
  (* ceiling division, floored at 2 items per chunk: small n must not
     degenerate to one task per item (9/(4*4) used to floor to 0) *)
  List.iter
    (fun ((pool_size, n), expected) ->
      Alcotest.(check int)
        (Printf.sprintf "pool=%d n=%d" pool_size n)
        expected
        (Par.default_chunk ~pool_size ~n))
    [
      ((4, 9), 2);
      ((4, 16), 2);
      ((4, 32), 2);
      ((4, 200), 13);
      ((4, 1000), 63);
      ((1, 100), 25);
      ((4, 1), 2);
      ((4, 0), 2);
      ((8, 64), 2);
    ];
  Alcotest.check_raises "pool_size 0"
    (Invalid_argument "Par.default_chunk: pool_size must be >= 1") (fun () ->
      ignore (Par.default_chunk ~pool_size:0 ~n:10))

let test_empty_input () =
  with_pool4 (fun pool ->
      Alcotest.(check (list int))
        "parallel_map []" []
        (Par.parallel_map ~pool busy []);
      Alcotest.(check (list int))
        "map_seeded []" []
        (Par.map_seeded ~pool ~rng:(Rng.create ~seed:5) (fun _ x -> busy x) []);
      Alcotest.(check int)
        "try_map []" 0
        (List.length (Par.try_map ~pool ~timeout:0.01 busy []));
      (* X002 allowed: raising inside the worker is the point — the
         callback must never run on an empty input *)
      (Par.parallel_iteri ~pool (fun _ _ -> Alcotest.fail "no items to visit") []
      [@lint.allow "X002"]);
      Alcotest.(check int)
        "map_reduce [] keeps init" 42
        (Par.map_reduce ~pool ~map:busy ~reduce:( + ) 42 []))

let test_chunk_exceeds_n () =
  let xs = List.init 10 Fun.id in
  let expected = List.map busy xs in
  with_pool4 (fun pool ->
      Alcotest.(check (list int))
        "chunk:50 on 10 items" expected
        (Par.parallel_map ~pool ~chunk:50 busy xs))

let test_pool_reuse () =
  with_pool4 (fun pool ->
      for round = 1 to 5 do
        let xs = List.init 40 (fun i -> i + (round * 100)) in
        Alcotest.(check (list int))
          (Printf.sprintf "round %d" round)
          (List.map busy xs)
          (Par.parallel_map ~pool busy xs)
      done;
      Alcotest.(check int) "pool size" 4 (Pool.size pool))

let test_shutdown_rejects_submit () =
  let pool = Pool.create ~domains:2 () in
  Pool.shutdown pool;
  Pool.shutdown pool (* idempotent *);
  Alcotest.check_raises "submit after shutdown"
    (Invalid_argument "Pool.submit: pool is shut down") (fun () ->
      Pool.submit pool (fun () -> ()))

let test_nested_map_runs_inline () =
  with_pool4 (fun pool ->
      let outer = List.init 8 Fun.id in
      let result =
        (* chunk:1 pins every outer item to a pool task (the default
           probe would run the first items inline, outside a worker) *)
        (* X002 allowed: the in-worker assertion raising IS the test *)
        (Par.parallel_map ~pool ~chunk:1
           (fun i ->
             (* inside a worker: must fall back to inline execution
                rather than deadlock on the queue we are draining *)
             Alcotest.(check bool) "in worker" true (Pool.in_worker ());
             let inner = List.init 5 (fun j -> (i * 10) + j) in
             List.fold_left ( + ) 0 (Par.parallel_map ~pool busy inner))
           outer
        [@lint.allow "X002"])
      in
      let expected =
        List.map
          (fun i ->
            let inner = List.init 5 (fun j -> (i * 10) + j) in
            List.fold_left ( + ) 0 (List.map busy inner))
          outer
      in
      Alcotest.(check (list int)) "nested result" expected result)

let test_map_reduce () =
  let xs = List.init 300 (fun i -> i + 1) in
  (* deliberately non-associative, non-commutative reduce: the
     contract is exact equality with the sequential left fold *)
  let reduce acc v = (acc * 31) + v in
  let expected = List.fold_left reduce 7 (List.map busy xs) in
  with_pool4 (fun pool ->
      Alcotest.(check int)
        "fold order preserved" expected
        (Par.map_reduce ~pool ~map:busy ~reduce 7 xs))

let test_try_map_outcomes () =
  let f x = if x = 2 then failwith "bad task" else x * x in
  let classify = function
    | Par.Done v -> Printf.sprintf "done:%d" v
    | Par.Failed { exn; _ } -> "failed:" ^ Printexc.to_string exn
    | Par.Timed_out -> "timeout"
  in
  let expected =
    [ "done:0"; "done:1"; "failed:Failure(\"bad task\")"; "done:9" ]
  in
  with_pool4 (fun pool ->
      Alcotest.(check (list string))
        "per-task outcomes" expected
        (List.map classify (Par.try_map ~pool f [ 0; 1; 2; 3 ])))

let test_try_map_timeout () =
  with_pool4 (fun pool ->
      let f x =
        if x = 1 then Unix.sleepf 0.25 (* straggler *) else ();
        x
      in
      let outs = Par.try_map ~pool ~timeout:0.05 f [ 0; 1; 2; 3 ] in
      let tags =
        List.map
          (function
            | Par.Done v -> string_of_int v
            | Par.Timed_out -> "T"
            | Par.Failed _ -> "F")
          outs
      in
      Alcotest.(check (list string)) "straggler marked" [ "0"; "T"; "2"; "3" ] tags)

let test_pool_reuse_after_timeout () =
  with_pool4 (fun pool ->
      let f x =
        if x = 0 then Unix.sleepf 0.2;
        x
      in
      (match Par.try_map ~pool ~timeout:0.05 f [ 0; 1; 2; 3 ] with
      | Par.Timed_out :: _ -> ()
      | _ -> Alcotest.fail "straggler not timed out");
      (* the straggler's worker is still busy draining its late task;
         the pool must keep serving new sweeps correctly meanwhile *)
      let xs = List.init 60 Fun.id in
      Alcotest.(check (list int))
        "map after timeout" (List.map busy xs)
        (Par.parallel_map ~pool busy xs);
      Alcotest.(check (list int))
        "second round" (List.map busy xs)
        (Par.parallel_map ~pool ~chunk:3 busy xs))

let test_parallel_iteri_failure () =
  let xs = List.init 100 Fun.id in
  let f i _ = if i mod 25 = 7 then raise (Boom i) in
  let check name run =
    match run () with
    | () -> Alcotest.failf "%s: expected Task_error" name
    | exception Par.Task_error { index; _ } ->
      Alcotest.(check int) (name ^ ": lowest failing index") 7 index
  in
  check "sequential" (fun () -> Par.parallel_iteri f xs);
  with_pool4 (fun pool ->
      check "parallel" (fun () -> Par.parallel_iteri ~pool f xs);
      check "parallel chunk:4" (fun () -> Par.parallel_iteri ~pool ~chunk:4 f xs))

let test_submit_batch_drains () =
  let hits = Array.make 32 0 in
  let pool = Pool.create ~domains:3 () in
  Pool.submit_batch pool (Array.init 32 (fun i () -> hits.(i) <- hits.(i) + 1));
  Pool.shutdown pool;
  Alcotest.(check (list int))
    "each batched task ran exactly once"
    (List.init 32 (fun _ -> 1))
    (Array.to_list hits)

let test_map_seeded_across_jobs () =
  (* the determinism contract across job counts, at the unit level:
     jobs ∈ {1, 2, 4} must produce identical draws *)
  let xs = List.init 40 Fun.id in
  let draw rng x = float_of_int x +. Rng.float rng 1. in
  let run jobs =
    let rng = Rng.create ~seed:123 in
    if jobs = 1 then Par.map_seeded ~rng draw xs
    else Pool.with_pool ~domains:jobs (fun pool -> Par.map_seeded ~pool ~rng draw xs)
  in
  let reference = run 1 in
  List.iter
    (fun jobs ->
      Alcotest.(check (list (float 0.)))
        (Printf.sprintf "jobs=%d" jobs)
        reference (run jobs))
    [ 2; 4 ]

let test_map_seeded_deterministic () =
  let xs = List.init 30 Fun.id in
  let draw rng x = float_of_int x +. Rng.float rng 1. in
  let reference =
    let rng = Rng.create ~seed:99 in
    let seeded = List.map (fun x -> (Rng.split rng, x)) xs in
    List.map (fun (r, x) -> draw r x) seeded
  in
  with_pool4 (fun pool ->
      let rng = Rng.create ~seed:99 in
      Alcotest.(check (list (float 0.)))
        "streams independent of scheduling" reference
        (Par.map_seeded ~pool ~rng draw xs));
  let rng = Rng.create ~seed:99 in
  Alcotest.(check (list (float 0.)))
    "sequential path identical" reference
    (Par.map_seeded ~rng draw xs)

let test_parallel_iteri () =
  let xs = List.init 100 (fun i -> i * 3) in
  with_pool4 (fun pool ->
      let slots = Array.make 100 (-1) in
      Par.parallel_iteri ~pool (fun i x -> slots.(i) <- busy x) xs;
      Alcotest.(check (list int))
        "disjoint slot writes" (List.map busy xs)
        (Array.to_list slots))

(* QCheck law: parallel_map is observationally List.map, for random
   inputs, random chunking and a pure function. *)
let law_parallel_map_is_map =
  QCheck.Test.make ~count:60 ~name:"parallel_map = List.map"
    QCheck.(pair (small_list int) (int_range 1 9))
    (fun (xs, chunk) ->
      let f x = (x * x) - (3 * x) + 1 in
      Pool.with_pool ~domains:3 (fun pool ->
          Par.parallel_map ~pool ~chunk f xs = List.map f xs))

let suite =
  ( "par",
    [
      Alcotest.test_case "map ordering" `Quick test_map_ordering;
      Alcotest.test_case "exception index" `Quick test_exception_index;
      Alcotest.test_case "default_chunk pins" `Quick test_default_chunk_pins;
      Alcotest.test_case "empty input" `Quick test_empty_input;
      Alcotest.test_case "chunk exceeds n" `Quick test_chunk_exceeds_n;
      Alcotest.test_case "pool reuse" `Quick test_pool_reuse;
      Alcotest.test_case "pool reuse after timeout" `Slow
        test_pool_reuse_after_timeout;
      Alcotest.test_case "parallel_iteri failure index" `Quick
        test_parallel_iteri_failure;
      Alcotest.test_case "submit_batch drains" `Quick test_submit_batch_drains;
      Alcotest.test_case "map_seeded across jobs" `Quick
        test_map_seeded_across_jobs;
      Alcotest.test_case "shutdown rejects submit" `Quick
        test_shutdown_rejects_submit;
      Alcotest.test_case "nested map runs inline" `Quick
        test_nested_map_runs_inline;
      Alcotest.test_case "map_reduce fold order" `Quick test_map_reduce;
      Alcotest.test_case "try_map outcomes" `Quick test_try_map_outcomes;
      Alcotest.test_case "try_map timeout" `Slow test_try_map_timeout;
      Alcotest.test_case "map_seeded deterministic" `Quick
        test_map_seeded_deterministic;
      Alcotest.test_case "parallel_iteri" `Quick test_parallel_iteri;
      QCheck_alcotest.to_alcotest law_parallel_map_is_map;
    ] )
