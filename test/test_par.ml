(* lib/par: determinism, exception propagation, pool lifecycle. *)

module Pool = Es_par.Pool
module Par = Es_par.Par
module Rng = Es_util.Rng

let with_pool4 f = Pool.with_pool ~domains:4 f

(* A mildly uneven workload so tasks finish out of submission order. *)
let busy n =
  let acc = ref 0 in
  for i = 1 to 1 + ((n * 7919) mod 997) do
    acc := (!acc + (i * n)) mod 1_000_003
  done;
  !acc

let test_map_ordering () =
  let xs = List.init 200 Fun.id in
  let expected = List.map busy xs in
  with_pool4 (fun pool ->
      Alcotest.(check (list int))
        "parallel = sequential" expected
        (Par.parallel_map ~pool busy xs);
      Alcotest.(check (list int))
        "chunk:1" expected
        (Par.parallel_map ~pool ~chunk:1 busy xs);
      Alcotest.(check (list int))
        "chunk:17" expected
        (Par.parallel_map ~pool ~chunk:17 busy xs));
  Alcotest.(check (list int))
    "no pool" expected
    (Par.parallel_map busy xs)

exception Boom of int

let test_exception_index () =
  let xs = List.init 50 Fun.id in
  let f x = if x mod 20 = 3 then raise (Boom x) else x in
  let check_raises name run =
    match run () with
    | (_ : int list) -> Alcotest.failf "%s: expected Task_error" name
    | exception Par.Task_error { index; exn; _ } ->
      (* tasks 3, 23 and 43 all fail; the join must pick the lowest
         index regardless of which worker finished first *)
      Alcotest.(check int) (name ^ ": lowest failing index") 3 index;
      (match exn with
      | Boom v -> Alcotest.(check int) (name ^ ": original exn") 3 v
      | _ -> Alcotest.failf "%s: wrong exception payload" name)
  in
  check_raises "sequential" (fun () -> Par.parallel_map f xs);
  with_pool4 (fun pool ->
      check_raises "parallel" (fun () -> Par.parallel_map ~pool ~chunk:1 f xs))

let test_pool_reuse () =
  with_pool4 (fun pool ->
      for round = 1 to 5 do
        let xs = List.init 40 (fun i -> i + (round * 100)) in
        Alcotest.(check (list int))
          (Printf.sprintf "round %d" round)
          (List.map busy xs)
          (Par.parallel_map ~pool busy xs)
      done;
      Alcotest.(check int) "pool size" 4 (Pool.size pool))

let test_shutdown_rejects_submit () =
  let pool = Pool.create ~domains:2 () in
  Pool.shutdown pool;
  Pool.shutdown pool (* idempotent *);
  Alcotest.check_raises "submit after shutdown"
    (Invalid_argument "Pool.submit: pool is shut down") (fun () ->
      Pool.submit pool (fun () -> ()))

let test_nested_map_runs_inline () =
  with_pool4 (fun pool ->
      let outer = List.init 8 Fun.id in
      let result =
        Par.parallel_map ~pool
          (fun i ->
            (* inside a worker: must fall back to inline execution
               rather than deadlock on the queue we are draining *)
            Alcotest.(check bool) "in worker" true (Pool.in_worker ());
            let inner = List.init 5 (fun j -> (i * 10) + j) in
            List.fold_left ( + ) 0 (Par.parallel_map ~pool busy inner))
          outer
      in
      let expected =
        List.map
          (fun i ->
            let inner = List.init 5 (fun j -> (i * 10) + j) in
            List.fold_left ( + ) 0 (List.map busy inner))
          outer
      in
      Alcotest.(check (list int)) "nested result" expected result)

let test_map_reduce () =
  let xs = List.init 300 (fun i -> i + 1) in
  (* deliberately non-associative, non-commutative reduce: the
     contract is exact equality with the sequential left fold *)
  let reduce acc v = (acc * 31) + v in
  let expected = List.fold_left reduce 7 (List.map busy xs) in
  with_pool4 (fun pool ->
      Alcotest.(check int)
        "fold order preserved" expected
        (Par.map_reduce ~pool ~map:busy ~reduce 7 xs))

let test_try_map_outcomes () =
  let f x = if x = 2 then failwith "bad task" else x * x in
  let classify = function
    | Par.Done v -> Printf.sprintf "done:%d" v
    | Par.Failed { exn; _ } -> "failed:" ^ Printexc.to_string exn
    | Par.Timed_out -> "timeout"
  in
  let expected =
    [ "done:0"; "done:1"; "failed:Failure(\"bad task\")"; "done:9" ]
  in
  with_pool4 (fun pool ->
      Alcotest.(check (list string))
        "per-task outcomes" expected
        (List.map classify (Par.try_map ~pool f [ 0; 1; 2; 3 ])))

let test_try_map_timeout () =
  with_pool4 (fun pool ->
      let f x =
        if x = 1 then Unix.sleepf 0.25 (* straggler *) else ();
        x
      in
      let outs = Par.try_map ~pool ~timeout:0.05 f [ 0; 1; 2; 3 ] in
      let tags =
        List.map
          (function
            | Par.Done v -> string_of_int v
            | Par.Timed_out -> "T"
            | Par.Failed _ -> "F")
          outs
      in
      Alcotest.(check (list string)) "straggler marked" [ "0"; "T"; "2"; "3" ] tags)

let test_map_seeded_deterministic () =
  let xs = List.init 30 Fun.id in
  let draw rng x = float_of_int x +. Rng.float rng 1. in
  let reference =
    let rng = Rng.create ~seed:99 in
    let seeded = List.map (fun x -> (Rng.split rng, x)) xs in
    List.map (fun (r, x) -> draw r x) seeded
  in
  with_pool4 (fun pool ->
      let rng = Rng.create ~seed:99 in
      Alcotest.(check (list (float 0.)))
        "streams independent of scheduling" reference
        (Par.map_seeded ~pool ~rng draw xs));
  let rng = Rng.create ~seed:99 in
  Alcotest.(check (list (float 0.)))
    "sequential path identical" reference
    (Par.map_seeded ~rng draw xs)

let test_parallel_iteri () =
  let xs = List.init 100 (fun i -> i * 3) in
  with_pool4 (fun pool ->
      let slots = Array.make 100 (-1) in
      Par.parallel_iteri ~pool (fun i x -> slots.(i) <- busy x) xs;
      Alcotest.(check (list int))
        "disjoint slot writes" (List.map busy xs)
        (Array.to_list slots))

(* QCheck law: parallel_map is observationally List.map, for random
   inputs, random chunking and a pure function. *)
let law_parallel_map_is_map =
  QCheck.Test.make ~count:60 ~name:"parallel_map = List.map"
    QCheck.(pair (small_list int) (int_range 1 9))
    (fun (xs, chunk) ->
      let f x = (x * x) - (3 * x) + 1 in
      Pool.with_pool ~domains:3 (fun pool ->
          Par.parallel_map ~pool ~chunk f xs = List.map f xs))

let suite =
  ( "par",
    [
      Alcotest.test_case "map ordering" `Quick test_map_ordering;
      Alcotest.test_case "exception index" `Quick test_exception_index;
      Alcotest.test_case "pool reuse" `Quick test_pool_reuse;
      Alcotest.test_case "shutdown rejects submit" `Quick
        test_shutdown_rejects_submit;
      Alcotest.test_case "nested map runs inline" `Quick
        test_nested_map_runs_inline;
      Alcotest.test_case "map_reduce fold order" `Quick test_map_reduce;
      Alcotest.test_case "try_map outcomes" `Quick test_try_map_outcomes;
      Alcotest.test_case "try_map timeout" `Slow test_try_map_timeout;
      Alcotest.test_case "map_seeded deterministic" `Quick
        test_map_seeded_deterministic;
      Alcotest.test_case "parallel_iteri" `Quick test_parallel_iteri;
      QCheck_alcotest.to_alcotest law_parallel_map_is_map;
    ] )
