(* Tests for Es_util: RNG determinism and distributions, statistics,
   float helpers, table rendering. *)

module Rng = Es_util.Rng
module Stats = Es_util.Stats
module Futil = Es_util.Futil
module Table = Es_util.Table

let check_float = Alcotest.(check (float 1e-9))

let test_rng_determinism () =
  let a = Rng.create ~seed:123 and b = Rng.create ~seed:123 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Rng.bits64 a) (Rng.bits64 b)
  done

let test_rng_seed_sensitivity () =
  let a = Rng.create ~seed:1 and b = Rng.create ~seed:2 in
  let same = ref 0 in
  for _ = 1 to 64 do
    if Rng.bits64 a = Rng.bits64 b then incr same
  done;
  Alcotest.(check bool) "streams differ" true (!same < 4)

let test_rng_int_range () =
  let r = Rng.create ~seed:5 in
  for _ = 1 to 10_000 do
    let v = Rng.int r 7 in
    Alcotest.(check bool) "in range" true (v >= 0 && v < 7)
  done

let test_rng_int_uniform () =
  let r = Rng.create ~seed:6 in
  let counts = Array.make 8 0 in
  let trials = 80_000 in
  for _ = 1 to trials do
    let v = Rng.int r 8 in
    counts.(v) <- counts.(v) + 1
  done;
  Array.iter
    (fun c ->
      let freq = float_of_int c /. float_of_int trials in
      Alcotest.(check bool) "frequency near 1/8" true (Float.abs (freq -. 0.125) < 0.01))
    counts

let test_rng_float_range () =
  let r = Rng.create ~seed:7 in
  for _ = 1 to 10_000 do
    let v = Rng.uniform_in r 2. 5. in
    Alcotest.(check bool) "in [2,5)" true (v >= 2. && v < 5.)
  done

let test_rng_gaussian_moments () =
  let r = Rng.create ~seed:8 in
  let n = 50_000 in
  let xs = Array.init n (fun _ -> Rng.gaussian ~mu:3. ~sigma:2. r) in
  Alcotest.(check bool) "mean ~ 3" true (Float.abs (Stats.mean xs -. 3.) < 0.05);
  Alcotest.(check bool) "std ~ 2" true (Float.abs (Stats.stddev xs -. 2.) < 0.05)

let test_rng_exponential_mean () =
  let r = Rng.create ~seed:9 in
  let xs = Array.init 50_000 (fun _ -> Rng.exponential r ~rate:4.) in
  Alcotest.(check bool) "mean ~ 1/4" true (Float.abs (Stats.mean xs -. 0.25) < 0.01)

let test_rng_bernoulli () =
  let r = Rng.create ~seed:10 in
  let hits = ref 0 in
  for _ = 1 to 50_000 do
    if Rng.bernoulli r 0.3 then incr hits
  done;
  let freq = float_of_int !hits /. 50_000. in
  Alcotest.(check bool) "p ~ 0.3" true (Float.abs (freq -. 0.3) < 0.02)

let test_rng_shuffle_permutation () =
  let r = Rng.create ~seed:11 in
  let a = Array.init 20 Fun.id in
  Rng.shuffle r a;
  let sorted = Array.copy a in
  Array.sort Int.compare sorted;
  Alcotest.(check (array int)) "is a permutation" (Array.init 20 Fun.id) sorted

let test_rng_split_independent () =
  let r = Rng.create ~seed:12 in
  let a = Rng.split r in
  let b = Rng.split r in
  Alcotest.(check bool) "split streams differ" true (Rng.bits64 a <> Rng.bits64 b)

let test_stats_mean_var () =
  let xs = [| 1.; 2.; 3.; 4.; 5. |] in
  check_float "mean" 3. (Stats.mean xs);
  check_float "variance" 2.5 (Stats.variance xs);
  check_float "median" 3. (Stats.median xs)

let test_stats_quantiles () =
  let xs = [| 4.; 1.; 3.; 2. |] in
  check_float "q0 = min" 1. (Stats.quantile xs 0.);
  check_float "q1 = max" 4. (Stats.quantile xs 1.);
  check_float "q0.5 interpolates" 2.5 (Stats.quantile xs 0.5)

let test_stats_quantile_nan_total_order () =
  (* regression: quantile once sorted with polymorphic [compare];
     [Float.compare] is the guaranteed total order, under which NaNs
     sort below every number — so upper quantiles of a NaN-polluted
     sample stay finite and deterministic *)
  let xs = [| 2.; Float.nan; 1.; 3. |] in
  check_float "max quantile skips the NaN" 3. (Stats.quantile xs 1.);
  Alcotest.(check bool) "min quantile is the NaN" true
    (Float.is_nan (Stats.quantile xs 0.));
  Alcotest.(check bool) "median finite and ordered" true
    (let m = Stats.quantile xs 0.5 in m >= 1. && m <= 2.)

let test_stats_quantile_signed_zero_and_negatives () =
  let xs = [| 0.; -1.; -0.; 1. |] in
  check_float "q0 = -1" (-1.) (Stats.quantile xs 0.);
  check_float "q1 = 1" 1. (Stats.quantile xs 1.);
  (* Float.compare puts -0. before 0.; interpolation across the two
     zeros must still give zero *)
  check_float "median across signed zeros" 0. (Stats.quantile xs 0.5)

let test_stats_geometric_mean () =
  check_float "gm(1,4) = 2" 2. (Stats.geometric_mean [| 1.; 4. |])

let test_stats_online () =
  let o = Stats.online_create () in
  let xs = [| 2.; 4.; 4.; 4.; 5.; 5.; 7.; 9. |] in
  Array.iter (Stats.online_add o) xs;
  Alcotest.(check int) "count" 8 (Stats.online_count o);
  check_float "mean" (Stats.mean xs) (Stats.online_mean o);
  check_float "stddev" (Stats.stddev xs) (Stats.online_stddev o)

let test_futil_approx () =
  Alcotest.(check bool) "close" true (Futil.approx_equal 1.0 (1.0 +. 1e-12));
  Alcotest.(check bool) "far" false (Futil.approx_equal 1.0 1.1)

let test_futil_clamp () =
  check_float "below" 1. (Futil.clamp ~lo:1. ~hi:2. 0.);
  check_float "above" 2. (Futil.clamp ~lo:1. ~hi:2. 3.);
  check_float "inside" 1.5 (Futil.clamp ~lo:1. ~hi:2. 1.5)

let test_futil_kahan () =
  (* naive summation of 0.1 drifts; Kahan stays tight *)
  let xs = Array.make 1_000_000 0.1 in
  Alcotest.(check bool) "compensated" true (Float.abs (Futil.sum xs -. 100_000.) < 1e-6)

let test_futil_cbrt () =
  check_float "cbrt 27" 3. (Futil.cbrt 27.);
  check_float "cbrt -8" (-2.) (Futil.cbrt (-8.))

let test_table_render () =
  let t = Table.create ~columns:[ "name"; "value" ] in
  Table.add_row t [ "alpha"; "1.5" ];
  Table.add_row t [ "b"; "22" ];
  let s = Table.render t in
  Alcotest.(check bool) "has header" true (String.length s > 0);
  Alcotest.(check bool) "contains rows" true
    (Astring.String.is_infix ~affix:"alpha" s && Astring.String.is_infix ~affix:"22" s)

let test_table_arity () =
  let t = Table.create ~columns:[ "a"; "b" ] in
  Alcotest.check_raises "arity mismatch" (Invalid_argument "Table.add_row: arity mismatch")
    (fun () -> Table.add_row t [ "only-one" ])

let qcheck_quantile_bounds =
  QCheck.Test.make ~name:"quantile between min and max" ~count:200
    QCheck.(pair (array_of_size Gen.(1 -- 30) (float_bound_exclusive 100.)) (float_bound_inclusive 1.))
    (fun (xs, q) ->
      QCheck.assume (Array.length xs > 0);
      let v = Stats.quantile xs q in
      v >= Stats.min xs -. 1e-9 && v <= Stats.max xs +. 1e-9)

let qcheck_clamp_idempotent =
  QCheck.Test.make ~name:"clamp is idempotent" ~count:500
    QCheck.(triple (float_range (-100.) 100.) (float_range (-100.) 100.) (float_range (-100.) 100.))
    (fun (a, b, x) ->
      let lo = Float.min a b and hi = Float.max a b in
      let once = Futil.clamp ~lo ~hi x in
      Futil.clamp ~lo ~hi once = once)

let suite =
  ( "util",
    [
      Alcotest.test_case "rng determinism" `Quick test_rng_determinism;
      Alcotest.test_case "rng seed sensitivity" `Quick test_rng_seed_sensitivity;
      Alcotest.test_case "rng int range" `Quick test_rng_int_range;
      Alcotest.test_case "rng int uniform" `Quick test_rng_int_uniform;
      Alcotest.test_case "rng float range" `Quick test_rng_float_range;
      Alcotest.test_case "rng gaussian moments" `Quick test_rng_gaussian_moments;
      Alcotest.test_case "rng exponential mean" `Quick test_rng_exponential_mean;
      Alcotest.test_case "rng bernoulli" `Quick test_rng_bernoulli;
      Alcotest.test_case "rng shuffle permutation" `Quick test_rng_shuffle_permutation;
      Alcotest.test_case "rng split independence" `Quick test_rng_split_independent;
      Alcotest.test_case "stats mean/var/median" `Quick test_stats_mean_var;
      Alcotest.test_case "stats quantiles" `Quick test_stats_quantiles;
      Alcotest.test_case "stats quantile NaN total order" `Quick
        test_stats_quantile_nan_total_order;
      Alcotest.test_case "stats quantile signed zeros" `Quick
        test_stats_quantile_signed_zero_and_negatives;
      Alcotest.test_case "stats geometric mean" `Quick test_stats_geometric_mean;
      Alcotest.test_case "stats online accumulator" `Quick test_stats_online;
      Alcotest.test_case "futil approx_equal" `Quick test_futil_approx;
      Alcotest.test_case "futil clamp" `Quick test_futil_clamp;
      Alcotest.test_case "futil kahan sum" `Quick test_futil_kahan;
      Alcotest.test_case "futil cbrt" `Quick test_futil_cbrt;
      Alcotest.test_case "table render" `Quick test_table_render;
      Alcotest.test_case "table arity check" `Quick test_table_arity;
      QCheck_alcotest.to_alcotest qcheck_quantile_bounds;
      QCheck_alcotest.to_alcotest qcheck_clamp_idempotent;
    ] )
