(* Tests for the static-analysis subsystem (Es_analysis): each rule of
   the catalogue fires on its fixture, clean code is silent, and
   [@lint.allow] / the checked-in allowlist suppress exactly the rules
   they name.  Fixtures live in test/fixtures/lint and are declared as
   test deps, so paths are relative to the test's working directory. *)

module Lint = Es_analysis.Lint
module Rules = Es_analysis.Rules
module Allowlist = Es_analysis.Allowlist

let fixture name = Filename.concat "../fixtures/lint" name

let lint ?(rules = Rules.all) ?(allow = Allowlist.empty) name =
  match Lint.lint_file { Lint.rules; allow } (fixture name) with
  | Ok diags -> diags
  | Error msg -> Alcotest.failf "lint_file %s: %s" name msg

let rule_ids diags =
  List.map (fun (d : Lint.diagnostic) -> Rules.id d.rule) diags

let check_ids = Alcotest.(check (list string))

(* ------------------------------------------------------------------ *)
(* every rule triggers on its fixture                                  *)
(* ------------------------------------------------------------------ *)

let trigger_fixtures =
  [
    (Rules.E001, "e001_poly_compare.ml", 3);
    (Rules.E002, "e002_partial.ml", 5);
    (Rules.E003, "e003_catchall.ml", 2);
    (Rules.E004, "e004/lib/printy.ml", 2);
    (Rules.E005, "e005/lib/nomli.ml", 1);
    (Rules.E006, "e006_unsafe.ml", 3);
    (Rules.E007, "e007/lib/core/mutstate.ml", 3);
  ]

let test_each_rule_triggers () =
  List.iter
    (fun (rule, name, expected) ->
      let diags = lint name in
      check_ids
        (Printf.sprintf "%s findings in %s" (Rules.id rule) name)
        (List.init expected (fun _ -> Rules.id rule))
        (rule_ids diags))
    trigger_fixtures

let test_exact_diagnostic () =
  match lint "e001_poly_compare.ml" with
  | d :: _ ->
    Alcotest.(check string)
      "first finding rendered exactly"
      "../fixtures/lint/e001_poly_compare.ml:2:23 [E001] polymorphic \
       structural operation compare; use a typed comparator \
       (Float.compare, Int.compare, String.compare, List.compare, ...)"
      (Lint.to_string d)
  | [] -> Alcotest.fail "expected findings in e001 fixture"

let test_clean_is_silent () =
  check_ids "clean fixture" [] (rule_ids (lint "clean.ml"))

(* ------------------------------------------------------------------ *)
(* suppression                                                         *)
(* ------------------------------------------------------------------ *)

let test_suppressed_is_silent () =
  check_ids "suppressed fixture" [] (rule_ids (lint "suppressed.ml"))

let test_suppression_is_rule_specific () =
  (* [@lint.allow "E001"] wraps an expression containing both an E001
     and an E002: only the named rule may be silenced. *)
  let diags = lint "mixed_suppressed.ml" in
  check_ids "only E002 survives" [ "E002" ] (rule_ids diags)

let test_file_wide_suppression_is_rule_specific () =
  let src = "[@@@lint.allow \"E006\"]\nlet x : int = Obj.magic (List.hd [])\n" in
  match Lint.lint_source Lint.default_config ~file:"wide.ml" src with
  | Ok diags -> check_ids "E002 survives file-wide E006" [ "E002" ] (rule_ids diags)
  | Error msg -> Alcotest.fail msg

let test_malformed_allow_payload_is_an_error () =
  let src = "let x = (compare 1 2) [@lint.allow]\n" in
  match Lint.lint_source Lint.default_config ~file:"bad.ml" src with
  | Ok _ -> Alcotest.fail "malformed [@lint.allow] must be rejected"
  | Error msg ->
    Alcotest.(check bool) "error mentions the attribute" true
      (Astring.String.is_infix ~affix:"lint.allow" msg)

(* ------------------------------------------------------------------ *)
(* rule toggling                                                       *)
(* ------------------------------------------------------------------ *)

let test_rules_are_toggleable () =
  let diags = lint ~rules:[ Rules.E002 ] "e001_poly_compare.ml" in
  check_ids "E001 off: nothing fires" [] (rule_ids diags);
  let diags = lint ~rules:[ Rules.E001 ] "mixed_suppressed.ml" in
  check_ids "E002 off and E001 suppressed" [] (rule_ids diags)

let test_e004_only_applies_to_lib_paths () =
  let src = "let main () = print_string \"cli output is fine\"\n" in
  match Lint.lint_source Lint.default_config ~file:"bin/tool.ml" src with
  | Ok diags -> check_ids "no E004 outside lib/" [] (rule_ids diags)
  | Error msg -> Alcotest.fail msg

let lint_string ?(rules = Rules.all) ~file src =
  match Lint.lint_source { Lint.rules; allow = Allowlist.empty } ~file src with
  | Ok diags -> diags
  | Error msg -> Alcotest.failf "lint_source %s: %s" file msg

let test_e007_scoped_to_domain_libs () =
  let src = "let total = ref 0\ntype t = { mutable n : int }\n" in
  (* lib/obs and lib/util are not domain-shared scope; bin owns its CLI
     state.  Restrict to E007 so the missing-.mli rule stays out of the
     way. *)
  List.iter
    (fun file ->
      check_ids
        (Printf.sprintf "no E007 in %s" file)
        []
        (rule_ids (lint_string ~rules:[ Rules.E007 ] ~file src)))
    [ "lib/obs/counters.ml"; "lib/util/pool.ml"; "bin/sweep.ml" ];
  check_ids "E007 fires on a domain-shared path"
    [ "E007"; "E007" ]
    (rule_ids (lint_string ~rules:[ Rules.E007 ] ~file:"lib/sim/state.ml" src))

let test_e007_exempts_domain_safe_creators () =
  (* top-level Atomic/Mutex/Condition are mutable on purpose — they
     exist to be shared across domains; the fixture pins their silence *)
  check_ids "sync primitives exempt" []
    (rule_ids (lint ~rules:[ Rules.E007 ] "e007/lib/core/atomics.ml"))

let test_e007_factories_and_locals_ok () =
  let src =
    "let make () = ref 0\n\
     let table n = Hashtbl.create n\n\
     let count xs =\n\
    \  let acc = ref 0 in\n\
    \  List.iter (fun _ -> incr acc) xs;\n\
    \  !acc\n"
  in
  check_ids "per-call and function-local allocation is fine" []
    (rule_ids (lint_string ~rules:[ Rules.E007 ] ~file:"lib/sched/factory.ml" src))

(* ------------------------------------------------------------------ *)
(* allowlist                                                           *)
(* ------------------------------------------------------------------ *)

let allowlist_of_string s =
  match Allowlist.parse ~file:"<test>" s with
  | Ok t -> t
  | Error msg -> Alcotest.failf "allowlist parse: %s" msg

let test_allowlist_suppresses_by_path_suffix () =
  let allow = allowlist_of_string "# comment\nlint/e006_unsafe.ml E006\n" in
  check_ids "allow-listed rule silenced" []
    (rule_ids (lint ~allow "e006_unsafe.ml"));
  (* the exemption names E006 only: other rules still fire there *)
  let allow = allowlist_of_string "lint/e001_poly_compare.ml E002" in
  let diags = lint ~allow "e001_poly_compare.ml" in
  Alcotest.(check int) "E001 unaffected by an E002 exemption" 3 (List.length diags)

let test_allowlist_rejects_unknown_rules () =
  match Allowlist.parse ~file:"<test>" "lib/foo.ml E999" with
  | Ok _ -> Alcotest.fail "unknown rule id must be rejected"
  | Error _ -> ()

let test_allowlist_no_partial_segment_match () =
  let allow = allowlist_of_string "e001_poly_compare.ml E001" in
  (* suffix must start at a path-segment boundary *)
  Alcotest.(check bool) "segment boundary respected" false
    (Allowlist.permits allow ~file:"not_e001_poly_compare.ml" Rules.E001)

let test_allowlist_directory_entries () =
  let allow = allowlist_of_string "lint/ E006" in
  check_ids "directory entry silences the whole subtree" []
    (rule_ids (lint ~allow "e006_unsafe.ml"));
  Alcotest.(check bool) "leading-prefix form matches too" true
    (Allowlist.permits
       (allowlist_of_string "test/ E004")
       ~file:"test/lint/runner.ml" Rules.E004);
  Alcotest.(check bool) "a directory entry is not a suffix match" false
    (Allowlist.permits
       (allowlist_of_string "lint/ E006")
       ~file:"notlint/e006_unsafe.ml" Rules.E006)

(* ------------------------------------------------------------------ *)
(* dimensional analysis: the U rules                                   *)
(* ------------------------------------------------------------------ *)

let lint_dir ?(rules = Rules.all) ?(allow = Allowlist.empty) name =
  let diags, errors = Lint.lint_paths { Lint.rules; allow } [ fixture name ] in
  List.iter (fun e -> Alcotest.failf "lint_paths %s: %s" name e) errors;
  diags

let test_u001_triggers () =
  check_ids "three mixed-unit contexts" [ "U001"; "U001"; "U001" ]
    (rule_ids (lint "u001_mismatch.ml"))

let test_u001_suppressed () =
  check_ids "[@lint.allow \"U001\"] silences the site" []
    (rule_ids (lint "u001_suppressed.ml"))

let test_u002_interprocedural () =
  (* pass 1 reads metrics.mli; the bad call site and the bad record
     construction live in a different file of the same directory *)
  let diags = lint_dir ~rules:[ Rules.U002 ] "u002" in
  check_ids "call site and record field" [ "U002"; "U002" ] (rule_ids diags);
  List.iter
    (fun (d : Lint.diagnostic) ->
      Alcotest.(check bool) "reported in the using file" true
        (Astring.String.is_suffix ~affix:"use.ml" d.file))
    diags

let test_u003_scope_and_suppression () =
  (* one unannotated public float fires; the annotated and the
     [@@lint.allow]-suppressed declarations stay silent *)
  check_ids "exactly the bare float" [ "U003" ]
    (rule_ids (lint_dir "u003"))

let test_u003_only_in_core_interfaces () =
  let src = "val helper : float\n" in
  match
    Lint.lint_source Lint.default_config ~file:"lib/dag/helper.mli" src
  with
  | Ok diags -> check_ids "no U003 outside lib/core|lib/platform" [] (rule_ids diags)
  | Error msg -> Alcotest.fail msg

let test_exported_result_checked () =
  (* interprocedural return units: an exported function whose body
     disagrees with its own .mli annotation is a U002 *)
  let env =
    Lint.build_units_env Lint.default_config [ fixture "u002/metrics.mli" ]
  in
  let src = "let cost ~w ~f = w /. f\n" in
  match
    Lint.lint_source ~units_env:env Lint.default_config
      ~file:(fixture "u002/metrics.ml") src
  with
  | Ok diags -> check_ids "body units vs signature" [ "U002" ] (rule_ids diags)
  | Error msg -> Alcotest.fail msg

let test_malformed_units_payload_is_an_error () =
  let src = "val x : (float[@units \"furlong\"])\n" in
  match Lint.lint_source Lint.default_config ~file:"lib/core/x.mli" src with
  | Ok _ -> Alcotest.fail "unknown unit name must be rejected"
  | Error msg ->
    Alcotest.(check bool) "error names the bad unit" true
      (Astring.String.is_infix ~affix:"furlong" msg)

(* ------------------------------------------------------------------ *)
(* parallel safety: the P rules                                        *)
(* ------------------------------------------------------------------ *)

let messages diags = List.map (fun (d : Lint.diagnostic) -> d.Lint.message) diags
let infix affix s = Astring.String.is_infix ~affix s

let test_p001_cross_module_witness () =
  (* the Hashtbl write lives in counter.ml, the region in worker.ml:
     pass 1 builds the graph over the directory and the finding is
     anchored at the region with the full call chain in the message *)
  let diags = lint_dir ~rules:[ Rules.P001 ] "p001" in
  check_ids "captured ref + captured Hashtbl" [ "P001"; "P001" ]
    (rule_ids diags);
  List.iter
    (fun (d : Lint.diagnostic) ->
      Alcotest.(check bool) "anchored at the region file" true
        (Astring.String.is_suffix ~affix:"worker.ml" d.file))
    diags;
  Alcotest.(check bool) "witness chain crosses into counter.ml" true
    (List.exists
       (fun m ->
         infix "witness: region@" m
         && infix "Counter.memo@" m
         && infix "Hashtbl.replace hits@" m
         && infix "counter.ml" m)
       (messages diags))

let test_p002_triggers_and_suppression () =
  (* seeds.ml fires; seeds_quiet.ml carries [@lint.allow "P002"] on
     the region expression and must stay silent *)
  let diags = lint_dir ~rules:[ Rules.P002 ] "p002" in
  check_ids "only the unsuppressed region" [ "P002" ] (rule_ids diags);
  Alcotest.(check bool) "names Random.float" true
    (List.exists (infix "Random.float") (messages diags))

let test_p003_blocking () =
  let diags = lint ~rules:[ Rules.P003 ] "p003/block.ml" in
  check_ids "captured lock + sleep" [ "P003"; "P003" ] (rule_ids diags)

let test_p004_domain_ownership () =
  let diags = lint ~rules:[ Rules.P004 ] "p004/spawn.ml" in
  check_ids "spawn and join" [ "P004"; "P004" ] (rule_ids diags)

let test_p004_allowlisted () =
  let allow = allowlist_of_string "p004/spawn.ml P004" in
  check_ids "allow-listed file is silent" []
    (rule_ids (lint ~rules:[ Rules.P004 ] ~allow "p004/spawn.ml"))

let test_p_rules_toggle_off () =
  (* --par=false in the driver filters Rules.par: with the family
     removed, the raciest fixture of the set is silent *)
  let rules =
    List.filter (fun r -> not (List.mem r Rules.par)) Rules.all
  in
  check_ids "no P findings with the family off" []
    (rule_ids
       (List.filter
          (fun (d : Lint.diagnostic) -> List.mem d.Lint.rule Rules.par)
          (lint_dir ~rules "p001")))

let parse_structure ~file src =
  let lexbuf = Lexing.from_string src in
  Location.init lexbuf file;
  Parse.implementation lexbuf

(* Lint [region_src] as [region_file] against a two-file graph that
   also contains a lock-holding helper at [helper_file]. *)
let lint_with_helper ~helper_file ~helper_mod ~region_file =
  let helper_src =
    "let m = Mutex.create ()\n\
     let note x = Mutex.lock m; ignore x; Mutex.unlock m\n"
  in
  let region_src =
    Printf.sprintf
      "let run pool xs =\n\
      \  Es_par.Par.parallel_map ~pool (fun x -> %s.note x; x) xs\n"
      helper_mod
  in
  let g = Es_analysis.Callgraph.create () in
  Es_analysis.Callgraph.add_source g ~file:helper_file
    (parse_structure ~file:helper_file helper_src);
  Es_analysis.Callgraph.add_source g ~file:region_file
    (parse_structure ~file:region_file region_src);
  let par_ctx = Es_analysis.Par_rules.make_ctx g in
  match
    Lint.lint_source ~par_ctx
      { Lint.rules = [ Rules.P003 ]; allow = Allowlist.empty }
      ~file:region_file region_src
  with
  | Ok diags -> diags
  | Error msg -> Alcotest.failf "lint_source %s: %s" region_file msg

let test_par_sanctioned_owner_is_terminal () =
  (* a helper under lib/obs may hold locks — reachability must stop at
     the sanctioned owner instead of flagging its internals ... *)
  check_ids "lock inside lib/obs not reported through the region" []
    (rule_ids
       (lint_with_helper ~helper_file:"lib/obs/obs_helper.ml"
          ~helper_mod:"Obs_helper" ~region_file:"lib/sim/sweep.ml"));
  (* ... while the identical helper anywhere else is a real P003 *)
  check_ids "same lock outside the owners is reported" [ "P003" ]
    (rule_ids
       (lint_with_helper ~helper_file:"lib/util/helper.ml"
          ~helper_mod:"Helper" ~region_file:"lib/sim/sweep.ml"))

(* ------------------------------------------------------------------ *)
(* the unit algebra: laws of the abelian group                         *)
(* ------------------------------------------------------------------ *)

module Units = Es_analysis.Units

let arb_unit =
  let gen =
    QCheck.Gen.(
      map3
        (fun a b c ->
          Units.(mul (pow work a) (mul (pow freq b) (pow prob c))))
        (int_range (-2) 2) (int_range (-2) 2) (int_range (-2) 2))
  in
  QCheck.make ~print:Units.to_string gen

let qtest name arb law =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~count:500 ~name arb law)

let algebra_properties =
  [
    qtest "mul commutes" (QCheck.pair arb_unit arb_unit) (fun (a, b) ->
        Units.(equal (mul a b) (mul b a)));
    qtest "mul associates" (QCheck.triple arb_unit arb_unit arb_unit)
      (fun (a, b, c) -> Units.(equal (mul (mul a b) c) (mul a (mul b c))));
    qtest "dimensionless is neutral" arb_unit (fun a ->
        Units.(equal (mul a dimensionless) a));
    qtest "inverse cancels" arb_unit (fun a ->
        Units.(equal (mul a (inv a)) dimensionless));
    qtest "div is mul-inverse" (QCheck.pair arb_unit arb_unit) (fun (a, b) ->
        Units.(equal (div a b) (mul a (inv b))));
    qtest "pow adds exponents"
      (QCheck.triple arb_unit QCheck.(int_range (-3) 3) QCheck.(int_range (-3) 3))
      (fun (a, m, n) ->
        Units.(equal (pow a (m + n)) (mul (pow a m) (pow a n))));
    qtest "pow distributes over mul"
      (QCheck.triple arb_unit arb_unit QCheck.(int_range (-3) 3))
      (fun (a, b, n) ->
        Units.(equal (pow (mul a b) n) (mul (pow a n) (pow b n))));
    qtest "sqrt inverts squaring" arb_unit (fun a ->
        match Units.sqrt (Units.mul a a) with
        | Some r -> Units.equal r a
        | None -> false);
    qtest "printing round-trips" arb_unit (fun a ->
        match Units.parse (Units.to_string a) with
        | Ok a' -> Units.equal a' a
        | Error _ -> false);
  ]

let test_derived_aliases () =
  (* the catalogue identities the pass relies on: time = work/freq,
     energy = work·freq², power = freq³ = energy/time *)
  let check name a b = Alcotest.(check bool) name true (Units.equal a b) in
  check "time" Units.time Units.(div work freq);
  check "energy" Units.energy Units.(mul work (pow freq 2));
  check "power" Units.power Units.(pow freq 3);
  check "power = energy/time" Units.power Units.(div energy time);
  (match Units.parse "speed" with
  | Ok u -> check "speed aliases freq" u Units.freq
  | Error e -> Alcotest.fail e);
  match Units.parse "work^2/time" with
  | Ok u -> check "compound grammar" u Units.(div (pow work 2) time)
  | Error e -> Alcotest.fail e

(* ------------------------------------------------------------------ *)
(* catalogue                                                           *)
(* ------------------------------------------------------------------ *)

let test_rule_ids_round_trip () =
  List.iter
    (fun r ->
      match Rules.of_id (String.lowercase_ascii (Rules.id r)) with
      | Some r' -> Alcotest.(check string) "round trip" (Rules.id r) (Rules.id r')
      | None -> Alcotest.failf "of_id failed for %s" (Rules.id r))
    Rules.all;
  Alcotest.(check bool) "unknown id" true (Rules.of_id "E999" = None)

let suite =
  ( "lint",
    [
      Alcotest.test_case "every rule triggers on its fixture" `Quick
        test_each_rule_triggers;
      Alcotest.test_case "exact diagnostic text" `Quick test_exact_diagnostic;
      Alcotest.test_case "clean fixture is silent" `Quick test_clean_is_silent;
      Alcotest.test_case "suppressed fixture is silent" `Quick
        test_suppressed_is_silent;
      Alcotest.test_case "suppression is rule-specific" `Quick
        test_suppression_is_rule_specific;
      Alcotest.test_case "file-wide suppression is rule-specific" `Quick
        test_file_wide_suppression_is_rule_specific;
      Alcotest.test_case "malformed allow payload errors" `Quick
        test_malformed_allow_payload_is_an_error;
      Alcotest.test_case "rules toggle independently" `Quick
        test_rules_are_toggleable;
      Alcotest.test_case "E004 scoped to lib paths" `Quick
        test_e004_only_applies_to_lib_paths;
      Alcotest.test_case "E007 scoped to domain-shared libs" `Quick
        test_e007_scoped_to_domain_libs;
      Alcotest.test_case "E007 exempts domain-safe creators" `Quick
        test_e007_exempts_domain_safe_creators;
      Alcotest.test_case "E007 skips factories and locals" `Quick
        test_e007_factories_and_locals_ok;
      Alcotest.test_case "allowlist suppresses by path suffix" `Quick
        test_allowlist_suppresses_by_path_suffix;
      Alcotest.test_case "allowlist rejects unknown rules" `Quick
        test_allowlist_rejects_unknown_rules;
      Alcotest.test_case "allowlist respects segment boundaries" `Quick
        test_allowlist_no_partial_segment_match;
      Alcotest.test_case "allowlist directory entries" `Quick
        test_allowlist_directory_entries;
      Alcotest.test_case "U001 triggers on mixed units" `Quick
        test_u001_triggers;
      Alcotest.test_case "U001 suppressible at the site" `Quick
        test_u001_suppressed;
      Alcotest.test_case "U002 checks annotated call sites" `Quick
        test_u002_interprocedural;
      Alcotest.test_case "U003 scope and suppression" `Quick
        test_u003_scope_and_suppression;
      Alcotest.test_case "U003 limited to core interfaces" `Quick
        test_u003_only_in_core_interfaces;
      Alcotest.test_case "exported result units checked" `Quick
        test_exported_result_checked;
      Alcotest.test_case "malformed units payload errors" `Quick
        test_malformed_units_payload_is_an_error;
      Alcotest.test_case "P001 cross-module witness chain" `Quick
        test_p001_cross_module_witness;
      Alcotest.test_case "P002 triggers and suppresses" `Quick
        test_p002_triggers_and_suppression;
      Alcotest.test_case "P003 flags blocking regions" `Quick
        test_p003_blocking;
      Alcotest.test_case "P004 flags raw Domain use" `Quick
        test_p004_domain_ownership;
      Alcotest.test_case "P004 allowlist exemption" `Quick
        test_p004_allowlisted;
      Alcotest.test_case "P family toggles off" `Quick test_p_rules_toggle_off;
      Alcotest.test_case "sanctioned owners are terminal" `Quick
        test_par_sanctioned_owner_is_terminal;
      Alcotest.test_case "derived unit aliases" `Quick test_derived_aliases;
      Alcotest.test_case "rule ids round trip" `Quick test_rule_ids_round_trip;
    ] )

let () =
  Alcotest.run "energy_sched_lint"
    [ suite; ("units-algebra", algebra_properties) ]
