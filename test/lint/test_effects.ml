(* Tests for the may-raise effect inference (layer 1 of the
   exception-flow pass): introduction from raise/failwith/invalid_arg,
   cross-module propagation, try/with narrowing and catch-all
   clearing, locally-scoped exceptions, Top on unknown externals,
   fixpoint termination on recursion, and (as a QCheck property)
   monotonicity of summaries under edge insertion on seeded synthetic
   graphs. *)

module Callgraph = Es_analysis.Callgraph
module Effects = Es_analysis.Effects

let parse_structure ~file src =
  let lexbuf = Lexing.from_string src in
  Location.init lexbuf file;
  Parse.implementation lexbuf

let env_of sources =
  let g = Callgraph.create () in
  List.iter
    (fun (file, src) -> Callgraph.add_source g ~file (parse_structure ~file src))
    sources;
  Effects.infer g

let exns env id = Effects.to_list (Effects.summary env id)

let check_exns msg env id expected =
  Alcotest.(check (option (list string))) msg expected (exns env id)

(* ------------------------------------------------------------------ *)

let test_introduction () =
  let env =
    env_of
      [
        ( "lib/x/m.ml",
          "let f () = invalid_arg \"f\"\n\
           let g () = failwith \"g\"\n\
           let h () = raise Exit\n\
           let pure x = x + 1\n" );
      ]
  in
  check_exns "invalid_arg introduces Invalid_argument" env "M.f"
    (Some [ "Invalid_argument" ]);
  check_exns "failwith introduces Failure" env "M.g" (Some [ "Failure" ]);
  check_exns "raise introduces the constructor" env "M.h" (Some [ "Exit" ]);
  check_exns "arithmetic is pure" env "M.pure" (Some [])

let test_cross_module () =
  let env =
    env_of
      [
        ("lib/x/store.ml", "let put k = if k < 0 then invalid_arg \"put\"\n");
        ("lib/x/client.ml", "let go k = Store.put k\n");
      ]
  in
  check_exns "callee summary flows to the caller" env "Client.go"
    (Some [ "Invalid_argument" ])

let test_try_narrows () =
  let env =
    env_of
      [
        ( "lib/x/m.ml",
          "let risky k = if k < 0 then invalid_arg \"risky\" else k\n\
           let guarded k = try risky k with Invalid_argument _ -> 0\n\
           let rethrow k =\n\
          \  try risky k with Invalid_argument _ -> failwith \"no\"\n" );
      ]
  in
  check_exns "specific handler removes the constructor" env "M.guarded"
    (Some []);
  check_exns "handler body effects are added back" env "M.rethrow"
    (Some [ "Failure" ])

let test_catchall_clears_top () =
  let env =
    env_of
      [
        ( "lib/x/m.ml",
          "let wild x = External_lib.frob x\n\
           let tamed x = try External_lib.frob x with _ -> 0\n" );
      ]
  in
  check_exns "unknown external in call position is Top" env "M.wild" None;
  check_exns "an unguarded catch-all clears even Top" env "M.tamed" (Some [])

let test_local_exception_scoped () =
  (* the internal-iterator escape idiom: the exception is declared,
     raised and caught entirely inside the binding, and its name is
     not even denotable by callers — the summary must stay pure *)
  let env =
    env_of
      [
        ( "lib/x/m.ml",
          "let first_pos xs =\n\
          \  let exception Found of int in\n\
          \  try\n\
          \    List.iter (fun x -> if x > 0 then raise (Found x)) xs;\n\
          \    0\n\
          \  with Found x -> x\n" );
      ]
  in
  check_exns "locally-declared exception stays in scope" env "M.first_pos"
    (Some [])

let test_recursion_fixpoint () =
  let env =
    env_of
      [
        ( "lib/x/cycle.ml",
          "let rec odd n = if n = 0 then false else even (n - 1)\n\
           and even n =\n\
          \  if n < 0 then invalid_arg \"even\"\n\
          \  else if n = 0 then true\n\
          \  else odd (n - 1)\n" );
      ]
  in
  check_exns "the exception reaches the whole cycle" env "Cycle.odd"
    (Some [ "Invalid_argument" ]);
  check_exns "the introducer keeps it too" env "Cycle.even"
    (Some [ "Invalid_argument" ])

(* ------------------------------------------------------------------ *)
(* property: summaries are monotone under adding callgraph edges       *)
(* ------------------------------------------------------------------ *)

let node_gen = QCheck.Gen.oneofl [ "a"; "b"; "c"; "d"; "e"; "f"; "g" ]

let spec_gen =
  QCheck.Gen.(
    list_size (int_range 0 12) (pair node_gen (list_size (int_range 0 3) node_gen)))

let summary_gen =
  QCheck.Gen.(
    frequency
      [
        (1, return Effects.Top);
        ( 4,
          map
            (fun l -> Effects.Known (Effects.SSet.of_list l))
            (list_size (int_range 0 2) (oneofl [ "A"; "B"; "C" ])) );
      ])

let seeds_gen =
  QCheck.Gen.(list_size (int_range 0 5) (pair node_gen summary_gen))

let print_summary s =
  match Effects.to_list s with
  | None -> "Top"
  | Some xs -> "{" ^ String.concat "," xs ^ "}"

let print_case (spec, seeds, (src, dst), root) =
  Printf.sprintf "{%s} seeds {%s} +%s->%s from %s"
    (String.concat "; "
       (List.map (fun (s, ds) -> s ^ "->[" ^ String.concat "," ds ^ "]") spec))
    (String.concat "; "
       (List.map (fun (n, s) -> n ^ "=" ^ print_summary s) seeds))
    src dst root

let arb_case =
  QCheck.make ~print:print_case
    QCheck.Gen.(quad spec_gen seeds_gen (pair node_gen node_gen) node_gen)

(* the lattice order, through the public interface *)
let leq a b =
  match (Effects.to_list a, Effects.to_list b) with
  | _, None -> true
  | None, Some _ -> false
  | Some xs, Some ys -> List.for_all (fun x -> List.mem x ys) xs

let monotone_law (spec, seeds, (src, dst), root) =
  let summarise extra =
    let g = Callgraph.of_edges spec in
    (match extra with Some (s, d) -> Callgraph.add_edge g s d | None -> ());
    Effects.summary (Effects.infer ~seeds g) root
  in
  leq (summarise None) (summarise (Some (src, dst)))

let summaries_monotone =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~count:300
       ~name:"adding a callgraph edge never shrinks a summary" arb_case
       monotone_law)

(* ------------------------------------------------------------------ *)

let suite =
  ( "effects",
    [
      Alcotest.test_case "introduction forms" `Quick test_introduction;
      Alcotest.test_case "cross-module propagation" `Quick test_cross_module;
      Alcotest.test_case "try/with narrows" `Quick test_try_narrows;
      Alcotest.test_case "catch-all clears Top" `Quick test_catchall_clears_top;
      Alcotest.test_case "local exception stays scoped" `Quick
        test_local_exception_scoped;
      Alcotest.test_case "recursion reaches a fixpoint" `Quick
        test_recursion_fixpoint;
      summaries_monotone;
    ] )

let () = Alcotest.run "energy_sched_effects" [ suite ]
