(* Tests for the call-graph harvester behind the parallel-safety pass:
   direct and cross-module edges, module-alias expansion, fixpoint
   termination on recursion, the opaque-terminal default for unknown
   externals, and (as a QCheck property) monotonicity of reachability
   under edge insertion. *)

module Callgraph = Es_analysis.Callgraph

let parse_structure ~file src =
  let lexbuf = Lexing.from_string src in
  Location.init lexbuf file;
  Parse.implementation lexbuf

let graph_of sources =
  let g = Callgraph.create () in
  List.iter
    (fun (file, src) -> Callgraph.add_source g ~file (parse_structure ~file src))
    sources;
  g

let edge_names g id = List.map fst (Callgraph.edges g id)
let contains xs x = List.mem x xs
let check_mem msg xs x = Alcotest.(check bool) msg true (contains xs x)

(* ------------------------------------------------------------------ *)

let test_direct_call () =
  let g =
    graph_of
      [
        ( "lib/x/m.ml",
          "let helper x = x + 1\nlet main xs = List.map helper xs\n" );
      ]
  in
  check_mem "main references helper" (edge_names g "M.main") "M.helper";
  check_mem "helper reachable from main"
    (Callgraph.reachable g ~roots:[ "M.main" ])
    "M.helper";
  Alcotest.(check bool)
    "no reverse edge" false
    (contains (edge_names g "M.helper") "M.main")

let test_cross_module_call () =
  let g =
    graph_of
      [
        ("lib/x/store.ml", "let put k = k\n");
        ("lib/x/client.ml", "let go k = Store.put k\n");
      ]
  in
  check_mem "edge crosses module boundary" (edge_names g "Client.go")
    "Store.put";
  Alcotest.(check bool) "callee is a known def" true
    (Callgraph.has_def g "Store.put")

let test_module_alias () =
  let g =
    graph_of
      [
        ("lib/x/store.ml", "let put k = k\n");
        ("lib/x/client.ml", "module S = Store\nlet go k = S.put k\n");
      ]
  in
  (* [S.put] must resolve through the alias to the Store node *)
  check_mem "alias expands to the aliased module" (edge_names g "Client.go")
    "Store.put";
  check_mem "reachability follows the alias"
    (Callgraph.reachable g ~roots:[ "Client.go" ])
    "Store.put"

let test_recursion_terminates () =
  (* mutual recursion plus self-recursion: reachability must terminate
     by visited-set and include the whole cycle once *)
  let g =
    graph_of
      [
        ( "lib/x/cycle.ml",
          "let rec odd n = if n = 0 then false else even (n - 1)\n\
           and even n = if n = 0 then true else odd (n - 1)\n\
           let rec loop x = loop x\n" );
      ]
  in
  let r = Callgraph.reachable g ~roots:[ "Cycle.odd" ] in
  check_mem "odd reaches even" r "Cycle.even";
  check_mem "cycle includes the root" r "Cycle.odd";
  let self = Callgraph.reachable g ~roots:[ "Cycle.loop" ] in
  check_mem "self-recursion terminates" self "Cycle.loop"

let test_unknown_external_is_opaque_terminal () =
  let g = graph_of [ ("lib/x/m.ml", "let f xs = External_lib.frob xs\n") ] in
  (* the unknown name appears as a leaf: reachable, but with no def and
     no outgoing edges — the soundness default assumes no further
     effects and leaves danger to the explicit deny-lists *)
  let r = Callgraph.reachable g ~roots:[ "M.f" ] in
  check_mem "external is reachable" r "External_lib.frob";
  Alcotest.(check bool) "external has no def" false
    (Callgraph.has_def g "External_lib.frob");
  Alcotest.(check (list (pair string Alcotest.reject)))
    "external has no outgoing edges" []
    (Callgraph.edges g "External_lib.frob")

let test_resolve_strips_stdlib () =
  let g = graph_of [ ("lib/x/m.ml", "let f h = Stdlib.Hashtbl.reset h\n") ] in
  check_mem "Stdlib. prefix is stripped" (edge_names g "M.f") "Hashtbl.reset"

(* ------------------------------------------------------------------ *)
(* property: reachability is monotone under adding edges               *)
(* ------------------------------------------------------------------ *)

let node_gen = QCheck.Gen.oneofl [ "a"; "b"; "c"; "d"; "e"; "f"; "g" ]

let spec_gen =
  QCheck.Gen.(list_size (int_range 0 12) (pair node_gen (list_size (int_range 0 3) node_gen)))

let print_spec spec =
  String.concat "; "
    (List.map (fun (s, ds) -> s ^ "->[" ^ String.concat "," ds ^ "]") spec)

let arb_case =
  QCheck.make
    ~print:(fun (spec, (s, d), root) ->
      Printf.sprintf "{%s} +%s->%s from %s" (print_spec spec) s d root)
    QCheck.Gen.(triple spec_gen (pair node_gen node_gen) node_gen)

let subset xs ys = List.for_all (fun x -> List.mem x ys) xs

let monotone_law (spec, (src, dst), root) =
  let before =
    Callgraph.reachable (Callgraph.of_edges spec) ~roots:[ root ]
  in
  let grown = Callgraph.of_edges spec in
  Callgraph.add_edge grown src dst;
  let after = Callgraph.reachable grown ~roots:[ root ] in
  subset before after

let reachability_monotone =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~count:300 ~name:"reachable set only grows with edges"
       arb_case monotone_law)

(* ------------------------------------------------------------------ *)

let suite =
  ( "callgraph",
    [
      Alcotest.test_case "direct call becomes an edge" `Quick test_direct_call;
      Alcotest.test_case "cross-module call resolves" `Quick
        test_cross_module_call;
      Alcotest.test_case "module alias expands" `Quick test_module_alias;
      Alcotest.test_case "recursion terminates" `Quick test_recursion_terminates;
      Alcotest.test_case "unknown external is an opaque terminal" `Quick
        test_unknown_external_is_opaque_terminal;
      Alcotest.test_case "Stdlib prefix stripped" `Quick
        test_resolve_strips_stdlib;
      reachability_monotone;
    ] )

let () = Alcotest.run "energy_sched_callgraph" [ suite ]
