(* Tests for BI-CRIT CONTINUOUS: closed forms (R1), their agreement
   with the convex solver (R2), and structural properties of the
   optimum. *)

let check_float tol = Alcotest.(check (float tol))

let fmin = 0.01 (* effectively unconstrained from below *)
let fmax = 10.

let solve_dag mapping ~deadline =
  let n = Dag.n (Mapping.dag mapping) in
  Bicrit_continuous.solve_general ~lo:(Array.make n fmin) ~hi:(Array.make n fmax)
    ~deadline mapping

let test_chain_closed_form () =
  match Bicrit_continuous.chain ~weights:[| 1.; 2.; 3. |] ~deadline:12. ~fmin ~fmax with
  | None -> Alcotest.fail "feasible"
  | Some { speeds; energy } ->
    Array.iter (fun f -> check_float 1e-12 "uniform speed" 0.5 f) speeds;
    check_float 1e-12 "energy = W³/D² shape" (6. *. 0.25) energy

let test_chain_infeasible () =
  Alcotest.(check bool) "too tight" true
    (Bicrit_continuous.chain ~weights:[| 10. |] ~deadline:0.5 ~fmin ~fmax:1. = None)

let test_chain_fmin_clamp () =
  (* loose deadline: speed clamps at fmin, deadline not tight *)
  match Bicrit_continuous.chain ~weights:[| 1. |] ~deadline:1000. ~fmin:0.5 ~fmax:1. with
  | Some { speeds; _ } -> check_float 1e-12 "clamped at fmin" 0.5 speeds.(0)
  | None -> Alcotest.fail "feasible"

let test_fork_theorem_formula () =
  (* the paper's fork theorem, unclamped regime *)
  let root = 1. and children = [| 1.; 2.; 2. |] in
  let deadline = 10. in
  let w3 = Float.cbrt (1. +. 8. +. 8.) in
  match Bicrit_continuous.fork_speeds ~root ~children ~deadline ~fmax with
  | None -> Alcotest.fail "feasible"
  | Some { speeds; energy } ->
    check_float 1e-12 "f0" ((w3 +. 1.) /. 10.) speeds.(0);
    check_float 1e-12 "f1 proportional" (speeds.(0) *. 1. /. w3) speeds.(1);
    check_float 1e-12 "f2 proportional" (speeds.(0) *. 2. /. w3) speeds.(2);
    check_float 1e-10 "energy matches closed form"
      (Bicrit_continuous.fork_energy ~root ~children ~deadline)
      energy

let test_fork_fmax_saturated () =
  (* tight deadline forces the source to fmax *)
  let root = 5. and children = [| 1.; 1. |] in
  let deadline = 6. in
  match Bicrit_continuous.fork_speeds ~root ~children ~deadline ~fmax:1. with
  | None -> Alcotest.fail "feasible"
  | Some { speeds; _ } ->
    check_float 1e-12 "source at fmax" 1. speeds.(0);
    (* children run at w/(D - w0/fmax) = 1/(6 - 5) = 1 *)
    check_float 1e-12 "children fill window" 1. speeds.(1)

let test_fork_infeasible () =
  Alcotest.(check bool) "no window" true
    (Bicrit_continuous.fork_speeds ~root:5. ~children:[| 1. |] ~deadline:4. ~fmax:1. = None)

(* ported onto the Es_check closed-form-vs-barrier oracle so the test
   suite and the escheck fuzzer share one comparison implementation *)
let closed_form_relation () =
  match Es_check.Relation.find "closed-form-vs-barrier" with
  | Some r -> r
  | None -> Alcotest.fail "closed-form-vs-barrier registered"

let check_relation_passes relation inst =
  match relation.Es_check.Relation.run inst with
  | Es_check.Relation.Pass -> ()
  | Es_check.Relation.Skip msg -> Alcotest.fail ("unexpected skip: " ^ msg)
  | Es_check.Relation.Fail msg ->
    Alcotest.fail (msg ^ "\non instance:\n" ^ Es_check.Gen.describe inst)

let test_fork_matches_solver () =
  let rng = Es_util.Rng.create ~seed:31 in
  let relation = closed_form_relation () in
  for _ = 1 to 5 do
    let n = 2 + Es_util.Rng.int rng 6 in
    let dag = Generators.fork rng ~n ~wlo:0.5 ~whi:4. in
    let deadline = Es_util.Rng.uniform_in rng 5. 15. in
    let dmin = List_sched.makespan_at_speed (Mapping.one_task_per_proc dag) ~f:fmax in
    let inst =
      Es_check.Gen.of_dag ~shape:Es_check.Gen.Fork ~procs:(n + 1) ~slack:(deadline /. dmin)
        ~levels:[| fmin; fmax |] dag
    in
    check_relation_passes relation inst
  done

let test_sp_equivalent_weight_energy () =
  (* E = Weq³ / D² for SP graphs, checked against the numeric solver
     through the shared Es_check oracle; the Weq recursion itself is
     pinned against one hand-computed instance below *)
  let rng = Es_util.Rng.create ~seed:32 in
  let relation = closed_form_relation () in
  for _ = 1 to 5 do
    let sp = Generators.random_sp rng ~n:(2 + Es_util.Rng.int rng 8) ~wlo:0.5 ~whi:3. in
    let deadline = Es_util.Rng.uniform_in rng 8. 20. in
    let dag = Sp.to_dag sp in
    let weq = Bicrit_continuous.sp_equivalent_weight sp in
    let closed = weq ** 3. /. (deadline *. deadline) in
    let cf = Bicrit_continuous.sp_speeds sp ~deadline in
    Alcotest.(check bool)
      (Printf.sprintf "sp_speeds energy %g matches Weq³/D² %g" cf.energy closed)
      true
      (Float.abs (closed -. cf.energy) < 1e-9 *. closed);
    let dmin = List_sched.makespan_at_speed (Mapping.one_task_per_proc dag) ~f:fmax in
    let inst =
      Es_check.Gen.of_dag ~shape:Es_check.Gen.Sp ~procs:(Dag.n dag) ~slack:(deadline /. dmin)
        ~levels:[| fmin; fmax |] dag
    in
    check_relation_passes relation inst
  done

let test_sp_speeds_meet_deadline_and_energy () =
  let rng = Es_util.Rng.create ~seed:33 in
  for _ = 1 to 5 do
    let sp = Generators.random_sp rng ~n:(2 + Es_util.Rng.int rng 8) ~wlo:0.5 ~whi:3. in
    let deadline = Es_util.Rng.uniform_in rng 8. 20. in
    let { Bicrit_continuous.speeds; energy } = Bicrit_continuous.sp_speeds sp ~deadline in
    let dag = Sp.to_dag sp in
    let durations = Array.mapi (fun i f -> Dag.weight dag i /. f) speeds in
    let cp = Dag.critical_path_length dag ~durations in
    Alcotest.(check bool) "deadline met" true (cp <= deadline *. (1. +. 1e-9));
    let weq = Bicrit_continuous.sp_equivalent_weight sp in
    check_float (1e-9 *. energy) "energy = Weq³/D²" (weq ** 3. /. (deadline *. deadline)) energy
  done

let test_solver_monotone_in_deadline () =
  let rng = Es_util.Rng.create ~seed:34 in
  let dag = Generators.random_layered rng ~layers:4 ~width:3 ~density:0.5 ~wlo:1. ~whi:3. in
  let mapping = List_sched.schedule dag ~p:2 ~priority:List_sched.Bottom_level in
  let dmin = List_sched.makespan_at_speed mapping ~f:fmax in
  let energies =
    List.filter_map
      (fun slack ->
        Option.map (fun (r : Bicrit_continuous.result) -> r.energy)
          (solve_dag mapping ~deadline:(slack *. dmin)))
      [ 1.05; 1.3; 1.8; 2.5; 4. ]
  in
  let rec decreasing = function
    | a :: (b :: _ as rest) -> b <= a +. 1e-9 && decreasing rest
    | _ -> true
  in
  Alcotest.(check int) "all feasible" 5 (List.length energies);
  Alcotest.(check bool) "energy decreasing in deadline" true (decreasing energies)

let test_solver_beats_uniform () =
  (* optimal energy must be <= running everything at the single speed
     that exactly meets the deadline *)
  let rng = Es_util.Rng.create ~seed:35 in
  let dag = Generators.random_layered rng ~layers:5 ~width:3 ~density:0.4 ~wlo:1. ~whi:3. in
  let mapping = List_sched.schedule dag ~p:3 ~priority:List_sched.Bottom_level in
  let dmin = List_sched.makespan_at_speed mapping ~f:1. in
  let deadline = 1.5 *. dmin in
  (* uniform speed meeting D exactly: f = dmin/deadline · 1 *)
  let f_uniform = dmin /. deadline in
  let uniform_energy = Dag.total_weight dag *. f_uniform *. f_uniform in
  match solve_dag mapping ~deadline with
  | None -> Alcotest.fail "feasible"
  | Some { energy; _ } ->
    Alcotest.(check bool) "no worse than uniform" true (energy <= uniform_energy *. (1. +. 1e-6))

let test_solver_infeasible_detected () =
  let rng = Es_util.Rng.create ~seed:36 in
  let dag = Generators.chain rng ~n:4 ~wlo:1. ~whi:2. in
  let mapping = Mapping.single_processor dag in
  Alcotest.(check bool) "too tight" true
    (solve_dag mapping ~deadline:(0.5 *. Dag.total_weight dag /. fmax) = None)

let test_solver_speeds_within_bounds () =
  let rng = Es_util.Rng.create ~seed:37 in
  let dag = Generators.random_layered rng ~layers:4 ~width:4 ~density:0.4 ~wlo:1. ~whi:3. in
  let mapping = List_sched.schedule dag ~p:2 ~priority:List_sched.Bottom_level in
  let n = Dag.n dag in
  let lo = Array.make n 0.3 and hi = Array.make n 0.9 in
  let dmin =
    Dag.critical_path_length (Mapping.constraint_dag mapping)
      ~durations:(Array.map (fun w -> w /. 0.9) (Dag.weights dag))
  in
  match Bicrit_continuous.solve_general ~lo ~hi ~deadline:(2. *. dmin) mapping with
  | None -> Alcotest.fail "feasible"
  | Some { speeds; _ } ->
    Array.iter
      (fun f -> Alcotest.(check bool) "within [0.3, 0.9]" true (f >= 0.3 -. 1e-9 && f <= 0.9 +. 1e-9))
      speeds

let test_effective_weights_model_reexecution () =
  (* doubling a weight doubles its duration at equal speed: the
     schedule with eff weight 2w must take the re-execution time into
     account *)
  let dag = Dag.make ?labels:None ~weights:[| 2.; 2. |] ~edges:[ (0, 1) ] in
  let mapping = Mapping.single_processor dag in
  let eff = [| 4.; 2. |] in
  let lo = Array.make 2 fmin and hi = Array.make 2 1. in
  (* time needed at fmax: (4 + 2)/1 = 6 *)
  Alcotest.(check bool) "infeasible below 6" true
    (Bicrit_continuous.solve_general ~eff_weights:eff ~lo ~hi ~deadline:5.9 mapping = None);
  Alcotest.(check bool) "feasible at 6+" true
    (Bicrit_continuous.solve_general ~eff_weights:eff ~lo ~hi ~deadline:6.01 mapping <> None)

let test_lower_bound_below_feasible_solutions () =
  let rng = Es_util.Rng.create ~seed:38 in
  let dag = Generators.random_layered rng ~layers:4 ~width:3 ~density:0.4 ~wlo:1. ~whi:3. in
  let mapping = List_sched.schedule dag ~p:2 ~priority:List_sched.Bottom_level in
  let dmin = List_sched.makespan_at_speed mapping ~f:1. in
  let deadline = 2. *. dmin in
  let lb = Bicrit_continuous.energy_lower_bound ~deadline ~fmin:0.2 ~fmax:1. mapping in
  (* any uniform-speed feasible schedule is above the bound *)
  let f = Float.max 0.2 (dmin /. deadline) in
  let uniform = Dag.total_weight dag *. f *. f in
  Alcotest.(check bool) "lb <= uniform" true (lb <= uniform *. (1. +. 1e-9))

let qcheck_chain_energy_formula =
  QCheck.Test.make ~name:"chain energy = (Σw)³/D² when unclamped" ~count:100
    QCheck.(pair (list_of_size Gen.(1 -- 10) (float_range 0.5 3.)) (float_range 20. 60.))
    (fun (ws, deadline) ->
      QCheck.assume (ws <> []);
      let weights = Array.of_list ws in
      match Bicrit_continuous.chain ~weights ~deadline ~fmin:0.001 ~fmax:100. with
      | None -> false
      | Some { energy; _ } ->
        let total = Array.fold_left ( +. ) 0. weights in
        Float.abs (energy -. (total ** 3. /. (deadline *. deadline))) < 1e-6 *. energy)

let suite =
  ( "bicrit-continuous",
    [
      Alcotest.test_case "chain closed form" `Quick test_chain_closed_form;
      Alcotest.test_case "chain infeasible" `Quick test_chain_infeasible;
      Alcotest.test_case "chain fmin clamp" `Quick test_chain_fmin_clamp;
      Alcotest.test_case "fork theorem formula" `Quick test_fork_theorem_formula;
      Alcotest.test_case "fork fmax saturated" `Quick test_fork_fmax_saturated;
      Alcotest.test_case "fork infeasible" `Quick test_fork_infeasible;
      Alcotest.test_case "fork matches solver" `Slow test_fork_matches_solver;
      Alcotest.test_case "sp eq-weight energy vs solver" `Slow test_sp_equivalent_weight_energy;
      Alcotest.test_case "sp speeds meet deadline" `Quick test_sp_speeds_meet_deadline_and_energy;
      Alcotest.test_case "solver monotone in deadline" `Slow test_solver_monotone_in_deadline;
      Alcotest.test_case "solver beats uniform" `Quick test_solver_beats_uniform;
      Alcotest.test_case "solver infeasible detected" `Quick test_solver_infeasible_detected;
      Alcotest.test_case "solver respects bounds" `Quick test_solver_speeds_within_bounds;
      Alcotest.test_case "effective weights = re-execution time" `Quick
        test_effective_weights_model_reexecution;
      Alcotest.test_case "lower bound sanity" `Quick test_lower_bound_below_feasible_solutions;
      QCheck_alcotest.to_alcotest qcheck_chain_energy_formula;
    ] )

let qcheck_solve_general_fuzz =
  QCheck.Test.make ~name:"solve_general outputs always feasible and bounded" ~count:30
    QCheck.(triple (int_bound 100_000) (int_range 1 4) (float_range 1.05 3.))
    (fun (seed, p, slack) ->
      let rng = Es_util.Rng.create ~seed in
      let dag =
        Generators.random_layered rng ~layers:(2 + Es_util.Rng.int rng 3) ~width:3
          ~density:0.5 ~wlo:0.5 ~whi:3.
      in
      let m = List_sched.schedule dag ~p ~priority:List_sched.Bottom_level in
      let dmin = List_sched.makespan_at_speed m ~f:1. in
      let deadline = slack *. dmin in
      let n = Dag.n dag in
      match
        Bicrit_continuous.solve_general ~lo:(Array.make n 0.2) ~hi:(Array.make n 1.)
          ~deadline m
      with
      | None -> false (* slack > 1: must be feasible *)
      | Some { speeds; energy } ->
        let bounds_ok =
          Array.for_all (fun f -> f >= 0.2 -. 1e-9 && f <= 1. +. 1e-9) speeds
        in
        let durations = Array.mapi (fun i f -> Dag.weight dag i /. f) speeds in
        let ms =
          Dag.critical_path_length (Mapping.constraint_dag m) ~durations
        in
        let uniform_f = Float.max 0.2 (dmin /. deadline) in
        let uniform_e = Dag.total_weight dag *. uniform_f *. uniform_f in
        bounds_ok && ms <= deadline *. (1. +. 1e-6) && energy <= uniform_e *. (1. +. 1e-6))

let suite = (fst suite, snd suite @ [ QCheck_alcotest.to_alcotest qcheck_solve_general_fuzz ])
