(* escheck: seeded metamorphic / differential fuzzing of the solvers.

   Draws random instances (trial t of a run with base seed S uses seed
   S+t), checks every registered relation from Es_check.Relation,
   shrinks any counterexample to a minimal instance and prints the
   exact command line that replays it.  Exit code 1 when a
   counterexample survives, so CI can gate on it. *)

module Relation = Es_check.Relation
module Runner = Es_check.Runner
module Json = Es_obs.Obs_json

let list_relations () =
  List.iter (fun r -> Printf.printf "%-24s %s\n" r.Relation.name r.Relation.descr) Relation.all;
  0

let select = function
  | [] -> Ok Relation.all
  | names ->
    let missing = List.filter (fun n -> Option.is_none (Relation.find n)) names in
    (match missing with
    | [] -> Ok (List.filter_map Relation.find names)
    | _ :: _ ->
      Error
        (Printf.sprintf "unknown relation(s): %s (try --list)" (String.concat ", " missing)))

let write_json path report =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc (Json.to_string (Runner.to_json report));
      output_char oc '\n')

let run seed trials relations out max_failures list_only =
  if list_only then list_relations ()
  else
    match select relations with
    | Error msg ->
      prerr_endline ("escheck: " ^ msg);
      2
    | Ok rels ->
      let report = Runner.run ~max_failures ~seed ~trials rels in
      print_string (Runner.render report);
      Option.iter (fun path -> write_json path report) out;
      if Runner.ok report then 0 else 1

open Cmdliner

let seed_arg =
  Arg.(value & opt int 1 & info [ "seed" ] ~docv:"N" ~doc:"Base seed; trial $(i,t) uses seed N+t.")

let trials_arg =
  Arg.(value & opt int 50 & info [ "trials" ] ~docv:"N" ~doc:"Instances per relation.")

let relation_arg =
  Arg.(
    value & opt_all string []
    & info [ "relation" ] ~docv:"NAME"
        ~doc:"Check only this relation (repeatable; default: all).")

let out_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "out" ] ~docv:"FILE" ~doc:"Write a JSON report to $(docv).")

let max_failures_arg =
  Arg.(
    value & opt int 5
    & info [ "max-failures" ] ~docv:"N"
        ~doc:"Stop a relation after shrinking $(docv) counterexamples.")

let list_arg =
  Arg.(value & flag & info [ "list" ] ~doc:"List the registered relations and exit.")

let cmd =
  let info =
    Cmd.info "escheck" ~version:"1.0.0"
      ~doc:"Certificate checking and metamorphic fuzzing of the energy-scheduling solvers"
  in
  Cmd.v info
    Term.(
      const run $ seed_arg $ trials_arg $ relation_arg $ out_arg $ max_failures_arg $ list_arg)

let () = exit (Cmd.eval' cmd)
