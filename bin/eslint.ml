(* eslint: AST-driven static analysis over the repo's own sources.

   Usage:
     eslint [PATH]...                    lint files / directories (default .)
     eslint --rules E001,U001 lib        enforce a subset of the catalogue
     eslint --only R001,X001 lib         same as --rules
     eslint --skip E005,P002 lib         enforce everything but these
     eslint --units=false lib            switch off the dimensional analysis
     eslint --par=false lib              switch off the parallel-safety pass
     eslint --effects=false lib          switch off the exception/resource pass
     eslint --format json|sarif lib      machine-readable reports
     eslint --exclude test/fixtures ...  prune a subtree from the scan
     eslint --allow-file lint.allow ...  load checked-in path exemptions
     eslint --stats lib                  report analysis timings on stderr
     eslint --list-rules                 print the rule catalogue

   Exit codes: 0 clean, 1 findings reported, 2 operational error
   (unparsable file, bad allowlist, unknown rule id). *)

open Cmdliner
module Lint = Es_analysis.Lint
module Rules = Es_analysis.Rules
module Allowlist = Es_analysis.Allowlist
module Obs = Es_obs.Obs

let parse_rules spec =
  let ids =
    String.split_on_char ',' spec
    |> List.map String.trim
    |> List.filter (fun s -> s <> "")
  in
  let resolve acc id =
    match (acc, Rules.of_id id) with
    | Error _, _ -> acc
    | Ok rules, Some r -> Ok (r :: rules)
    | Ok _, None -> Error (Printf.sprintf "unknown rule id %S" id)
  in
  match List.fold_left resolve (Ok []) ids with
  | Ok [] -> Error "empty rule list"
  | Ok rules -> Ok (List.sort_uniq Rules.compare_rule rules)
  | Error _ as e -> e

let list_rules () =
  List.iter
    (fun r -> Printf.printf "%s  %s\n" (Rules.id r) (Rules.describe r))
    Rules.all;
  0

(* ------------------------------------------------------------------ *)
(* output formats                                                      *)
(* ------------------------------------------------------------------ *)

let json_escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let print_human diags errors =
  List.iter (fun d -> print_endline (Lint.to_string d)) diags;
  (* keep stdout/stderr ordering deterministic for cram tests *)
  flush stdout;
  List.iter (fun e -> prerr_endline ("eslint: " ^ e)) errors;
  if diags <> [] then Printf.eprintf "eslint: %d finding(s)\n" (List.length diags)

(* Render a JSON array block: "[]" when empty, one element per line
   otherwise, closed at [indent]. *)
let json_array ~indent items =
  if items = [] then "[]"
  else Printf.sprintf "[\n%s\n%s]" (String.concat ",\n" items) indent

(* {"schema":"eslint-json/1","findings":[...],"errors":[...]} *)
let print_json (diags : Lint.diagnostic list) errors =
  let finding (d : Lint.diagnostic) =
    Printf.sprintf
      "    {\"file\": \"%s\", \"line\": %d, \"col\": %d, \"rule\": \"%s\", \
       \"message\": \"%s\"}"
      (json_escape d.file) d.line d.col (Rules.id d.rule)
      (json_escape d.message)
  in
  let error e = Printf.sprintf "    \"%s\"" (json_escape e) in
  Printf.printf "{\n  \"schema\": \"eslint-json/1\",\n  \"findings\": %s,\n  \"errors\": %s\n}\n"
    (json_array ~indent:"  " (List.map finding diags))
    (json_array ~indent:"  " (List.map error errors))

(* Minimal SARIF 2.1.0 for GitHub code scanning.  Columns are 1-based
   there, 0-based in our diagnostics. *)
let print_sarif rules (diags : Lint.diagnostic list) =
  let rule r =
    Printf.sprintf
      "          {\"id\": \"%s\", \"shortDescription\": {\"text\": \"%s\"}}"
      (Rules.id r)
      (json_escape (Rules.describe r))
  in
  let result (d : Lint.diagnostic) =
    Printf.sprintf
      "        {\"ruleId\": \"%s\", \"level\": \"error\", \"message\": \
       {\"text\": \"%s\"}, \"locations\": [{\"physicalLocation\": \
       {\"artifactLocation\": {\"uri\": \"%s\"}, \"region\": {\"startLine\": \
       %d, \"startColumn\": %d}}}]}"
      (Rules.id d.rule) (json_escape d.message) (json_escape d.file)
      (max 1 d.line) (d.col + 1)
  in
  Printf.printf
    "{\n\
    \  \"$schema\": \"https://json.schemastore.org/sarif-2.1.0.json\",\n\
    \  \"version\": \"2.1.0\",\n\
    \  \"runs\": [\n\
    \    {\n\
    \      \"tool\": {\n\
    \        \"driver\": {\n\
    \          \"name\": \"eslint\",\n\
    \          \"informationUri\": \"DESIGN.md\",\n\
    \          \"rules\": %s\n\
    \        }\n\
    \      },\n\
    \      \"results\": %s\n\
    \    }\n\
    \  ]\n\
     }\n"
    (json_array ~indent:"          " (List.map rule rules))
    (json_array ~indent:"      " (List.map result diags))

(* ------------------------------------------------------------------ *)
(* driver                                                              *)
(* ------------------------------------------------------------------ *)

(* Timer handles shared with lib/analysis/lint.ml — [Obs.timer] is
   find-or-create by name, so these resolve to the cells the engine
   accumulates into. *)
let stats_timers = [ "eslint.callgraph.build"; "eslint.effects.infer" ]

let print_stats () =
  List.iter
    (fun name ->
      let t = Obs.timer name in
      Printf.eprintf "eslint: stats: %s count=%d total=%s\n" name
        (Obs.timer_count t)
        (Obs.pp_duration (Obs.timer_total t)))
    stats_timers

let run list_only rules_spec only_spec skip_spec units par effects stats format
    allow_file exclude paths =
  if list_only then list_rules ()
  else
    let fail msg =
      prerr_endline ("eslint: " ^ msg);
      2
    in
    let rules =
      match (rules_spec, only_spec) with
      | Some _, Some _ -> Error "--rules and --only are aliases; give only one"
      | None, None -> Ok Rules.all
      | Some spec, None | None, Some spec -> parse_rules spec
    in
    let rules =
      Result.map
        (fun rs ->
          let rs =
            if units then rs
            else List.filter (fun r -> not (List.mem r Rules.units)) rs
          in
          let rs =
            if par then rs
            else List.filter (fun r -> not (List.mem r Rules.par)) rs
          in
          if effects then rs
          else List.filter (fun r -> not (List.mem r Rules.effects)) rs)
        rules
    in
    let rules =
      match (rules, skip_spec) with
      | Error _, _ | _, None -> rules
      | Ok rs, Some spec ->
        Result.map
          (fun skip -> List.filter (fun r -> not (List.mem r skip)) rs)
          (parse_rules spec)
    in
    let allow =
      match allow_file with
      | None -> Ok Allowlist.empty
      | Some file -> Allowlist.load file
    in
    match (rules, allow) with
    | Error msg, _ | _, Error msg -> fail msg
    | Ok [], Ok _ ->
      fail
        "empty rule list (--units/--par/--effects=false or --skip removed \
         every rule)"
    | Ok rules, Ok allow ->
      let config = { Lint.rules; allow } in
      let paths = if paths = [] then [ "." ] else paths in
      let missing = List.filter (fun p -> not (Sys.file_exists p)) paths in
      if missing <> [] then
        fail ("no such path: " ^ String.concat ", " missing)
      else begin
        if stats then Obs.enable ();
        let diags, errors =
          Fun.protect
            ~finally:(fun () -> if stats then Obs.disable ())
            (fun () -> Lint.lint_paths ~exclude config paths)
        in
        (match format with
        | `Human -> print_human diags errors
        | `Json -> print_json diags errors
        | `Sarif ->
          print_sarif rules diags;
          flush stdout;
          List.iter (fun e -> prerr_endline ("eslint: " ^ e)) errors);
        if stats then print_stats ();
        if errors <> [] then 2 else if diags <> [] then 1 else 0
      end

let cmd =
  let list_arg =
    Arg.(value & flag & info [ "list-rules" ] ~doc:"Print the rule catalogue and exit.")
  in
  let rules_arg =
    Arg.(value & opt (some string) None
         & info [ "rules" ] ~docv:"RULES"
             ~doc:"Comma-separated rule ids to enforce (default: all).")
  in
  let only_arg =
    Arg.(value & opt (some string) None
         & info [ "only" ] ~docv:"RULES"
             ~doc:"Alias of $(b,--rules): enforce exactly these rule ids.")
  in
  let skip_arg =
    Arg.(value & opt (some string) None
         & info [ "skip" ] ~docv:"RULES"
             ~doc:"Comma-separated rule ids to drop from the selection; \
                   unknown ids are an error.")
  in
  let units_arg =
    Arg.(value & opt bool true
         & info [ "units" ] ~docv:"BOOL"
             ~doc:"Enable the dimensional-analysis pass (U001-U003). On by \
                   default; $(b,--units=false) switches the family off.")
  in
  let par_arg =
    Arg.(value & opt bool true
         & info [ "par" ] ~docv:"BOOL"
             ~doc:"Enable the interprocedural parallel-safety pass \
                   (P001-P004): race, nondeterminism, blocking and domain- \
                   ownership checks over parallel regions, with witness call \
                   chains in the messages. On by default; $(b,--par=false) \
                   switches the family off.")
  in
  let effects_arg =
    Arg.(value & opt bool true
         & info [ "effects" ] ~docv:"BOOL"
             ~doc:"Enable the exception-flow and resource-lifecycle pass \
                   (X001-X002, R001-R003): may-raise effect inference over \
                   the cross-module call graph, undocumented raising \
                   exports, raising parallel callbacks and leak/protocol \
                   checking with witness chains. On by default; \
                   $(b,--effects=false) switches the family off.")
  in
  let stats_arg =
    Arg.(value & flag
         & info [ "stats" ]
             ~doc:"Report analysis-phase timings (call-graph construction, \
                   effect inference) on stderr after the run.")
  in
  let format_arg =
    Arg.(value
         & opt (enum [ ("human", `Human); ("json", `Json); ("sarif", `Sarif) ]) `Human
         & info [ "format" ] ~docv:"FMT"
             ~doc:"Output format: $(b,human) (default), $(b,json), or \
                   $(b,sarif) (GitHub code-scanning annotations).")
  in
  let allow_arg =
    Arg.(value & opt (some string) None
         & info [ "allow-file" ] ~docv:"FILE"
             ~doc:"Checked-in allowlist of '<path> <rule>' exemptions.")
  in
  let exclude_arg =
    Arg.(value & opt_all string []
         & info [ "exclude" ] ~docv:"PATH"
             ~doc:"Prune a path prefix from directory recursion (repeatable); \
                   e.g. $(b,--exclude test/fixtures).")
  in
  let paths_arg =
    Arg.(value & pos_all string [] & info [] ~docv:"PATH"
           ~doc:"Files or directories to lint (default: current directory).")
  in
  let exits =
    [
      Cmd.Exit.info 0 ~doc:"the scan completed with no findings.";
      Cmd.Exit.info 1 ~doc:"the scan completed and reported findings.";
      Cmd.Exit.info 2
        ~doc:"operational error: unparsable source file, bad allowlist, \
              unknown rule id or missing path.";
    ]
  in
  let info =
    Cmd.info "eslint" ~version:"1.0.0" ~exits
      ~doc:"AST-driven lint for float-safety, totality, dimensional and \
            parallel-safety invariants."
  in
  Cmd.v info
    Term.(const run $ list_arg $ rules_arg $ only_arg $ skip_arg $ units_arg
          $ par_arg $ effects_arg $ stats_arg $ format_arg $ allow_arg
          $ exclude_arg $ paths_arg)

let () = exit (Cmd.eval' cmd)
