(* eslint: AST-driven static analysis over the repo's own sources.

   Usage:
     eslint [PATH]...                    lint files / directories (default .)
     eslint --rules E001,E004 lib       enforce a subset of the catalogue
     eslint --allow-file lint.allow ... load checked-in path exemptions
     eslint --list-rules                print the rule catalogue

   Exit codes: 0 clean, 1 findings reported, 2 operational error
   (unparsable file, bad allowlist, unknown rule id). *)

open Cmdliner
module Lint = Es_analysis.Lint
module Rules = Es_analysis.Rules
module Allowlist = Es_analysis.Allowlist

let parse_rules spec =
  let ids =
    String.split_on_char ',' spec
    |> List.map String.trim
    |> List.filter (fun s -> s <> "")
  in
  let resolve acc id =
    match (acc, Rules.of_id id) with
    | Error _, _ -> acc
    | Ok rules, Some r -> Ok (r :: rules)
    | Ok _, None -> Error (Printf.sprintf "unknown rule id %S" id)
  in
  match List.fold_left resolve (Ok []) ids with
  | Ok [] -> Error "empty rule list"
  | Ok rules -> Ok (List.sort_uniq Rules.compare_rule rules)
  | Error _ as e -> e

let list_rules () =
  List.iter
    (fun r -> Printf.printf "%s  %s\n" (Rules.id r) (Rules.describe r))
    Rules.all;
  0

let run list_only rules_spec allow_file paths =
  if list_only then list_rules ()
  else
    let fail msg =
      prerr_endline ("eslint: " ^ msg);
      2
    in
    let rules =
      match rules_spec with
      | None -> Ok Rules.all
      | Some spec -> parse_rules spec
    in
    let allow =
      match allow_file with
      | None -> Ok Allowlist.empty
      | Some file -> Allowlist.load file
    in
    match (rules, allow) with
    | Error msg, _ | _, Error msg -> fail msg
    | Ok rules, Ok allow ->
      let config = { Lint.rules; allow } in
      let paths = if paths = [] then [ "." ] else paths in
      let missing = List.filter (fun p -> not (Sys.file_exists p)) paths in
      if missing <> [] then
        fail ("no such path: " ^ String.concat ", " missing)
      else begin
        let diags, errors = Lint.lint_paths config paths in
        List.iter (fun d -> print_endline (Lint.to_string d)) diags;
        (* keep stdout/stderr ordering deterministic for cram tests *)
        flush stdout;
        List.iter (fun e -> prerr_endline ("eslint: " ^ e)) errors;
        if errors <> [] then 2
        else if diags <> [] then begin
          Printf.eprintf "eslint: %d finding(s)\n" (List.length diags);
          1
        end
        else 0
      end

let cmd =
  let list_arg =
    Arg.(value & flag & info [ "list-rules" ] ~doc:"Print the rule catalogue and exit.")
  in
  let rules_arg =
    Arg.(value & opt (some string) None
         & info [ "rules" ] ~docv:"RULES"
             ~doc:"Comma-separated rule ids to enforce (default: all).")
  in
  let allow_arg =
    Arg.(value & opt (some string) None
         & info [ "allow-file" ] ~docv:"FILE"
             ~doc:"Checked-in allowlist of '<path> <rule>' exemptions.")
  in
  let paths_arg =
    Arg.(value & pos_all string [] & info [] ~docv:"PATH"
           ~doc:"Files or directories to lint (default: current directory).")
  in
  let info =
    Cmd.info "eslint" ~version:"1.0.0"
      ~doc:"AST-driven lint for float-safety and totality invariants."
  in
  Cmd.v info Term.(const run $ list_arg $ rules_arg $ allow_arg $ paths_arg)

let () = exit (Cmd.eval' cmd)
