(* Experiment harness: one subcommand per experiment of DESIGN.md
   (E1..E12), each regenerating the corresponding table of the
   reproduction.  `experiments all` runs everything in order, which is
   how EXPERIMENTS.md is produced. *)

module Rng = Es_util.Rng
module Table = Es_util.Table
module Stats = Es_util.Stats
module Par = Es_par.Par
module Pool = Es_par.Pool

(* X002 allowed file-wide: every sweep maps a solver over instances
   this harness just generated, so the solvers' documented @raise
   contracts (malformed DAG, infeasible window) cannot trigger — and
   if a bug ever makes one trigger, the run SHOULD die loudly at the
   joiner, not average a partial table. *)
[@@@lint.allow "X002"]

(* --jobs N: worker domains for the repetition sweeps (0 = the
   machine's recommended domain count).  The pool is created lazily on
   first use and shut down at the end of the run; with --jobs 1
   everything stays on the sequential reference path.  Every sweep
   below computes its table rows through [pmap]/[pmap_seeded], which
   keep results in submission order and give each task a pre-split RNG
   stream — so the output is byte-identical for any N (see
   test/cram/experiments_jobs.t); chunk granularity is auto-tuned by
   lib/par from a per-item cost probe. *)
let jobs = ref 1

let set_jobs j =
  (* sizing query only — worker domains themselves live in Es_par.Pool *)
  jobs := (if j <= 0 then (Domain.recommended_domain_count () [@lint.allow "P004"]) else j)

let pool : Pool.t option ref = ref None
let current_pool () = !pool

(* Run [f] with the worker pool installed for its dynamic extent
   (when [--jobs N] asks for more than one domain); [Pool.with_pool]
   owns the shutdown on both the normal and the exceptional path. *)
let with_jobs f =
  if !jobs <= 1 then f ()
  else
    Pool.with_pool ~domains:!jobs (fun p ->
        pool := Some p;
        Fun.protect ~finally:(fun () -> pool := None) f)

let pmap f xs = Par.parallel_map ?pool:(current_pool ()) f xs
let pmap_seeded ~rng f xs = Par.map_seeded ?pool:(current_pool ()) ~rng f xs

let fmin = 0.2
let fmax = 1.0
let frel = 0.8

let rel_params ?(lambda0 = 1e-5) () =
  Rel.make ~lambda0 ~sensitivity:3. ~fmin ~fmax ~frel ()

let levels_of m =
  Array.init m (fun i ->
      fmin +. ((fmax -. fmin) *. float_of_int i /. float_of_int (max 1 (m - 1))))

let count_true = Array.fold_left (fun a b -> if b then a + 1 else a) 0

let uniform_bounds n = (Array.make n fmin, Array.make n fmax)

let csv_mode = ref false

let header id title =
  if not !csv_mode then Printf.printf "\n=== %s: %s ===\n\n" id title
  else Printf.printf "\n# %s: %s\n" id title

(* All experiment tables funnel through here so `--csv` can switch the
   output format globally. *)
let emit ?caption t =
  if !csv_mode then print_string (Table.render_csv t)
  else Table.print ?caption t

(* ------------------------------------------------------------------ *)
(* E1: fork closed form vs convex solver                               *)
(* ------------------------------------------------------------------ *)

let e1 ~seed () =
  header "E1" "CONTINUOUS BI-CRIT on forks: closed form vs convex solver (R1/R2)";
  let rng = Rng.create ~seed in
  let t = Table.create ~columns:[ "n"; "E closed-form"; "E solver"; "rel gap"; "f0 gap" ] in
  let rows =
    pmap_seeded ~rng
      (fun rng n ->
        let dag = Generators.fork rng ~n ~wlo:0.5 ~whi:4. in
        let root = Dag.weight dag 0 in
        let children = Array.init n (fun i -> Dag.weight dag (i + 1)) in
        let mapping = Mapping.one_task_per_proc dag in
        let dmin = List_sched.makespan_at_speed mapping ~f:fmax in
        let deadline = 2. *. dmin in
        match
          ( Bicrit_continuous.fork_speeds ~root ~children ~deadline ~fmax:1e9,
            Bicrit_continuous.solve_general
              ~lo:(Array.make (n + 1) 1e-4)
              ~hi:(Array.make (n + 1) 1e9)
              ~deadline mapping )
        with
        | Some cf, Some nm ->
          [
            string_of_int n;
            Printf.sprintf "%.6f" cf.Bicrit_continuous.energy;
            Printf.sprintf "%.6f" nm.Bicrit_continuous.energy;
            Printf.sprintf "%.2e"
              (Float.abs (cf.energy -. nm.energy) /. cf.energy);
            Printf.sprintf "%.2e"
              (Float.abs (cf.speeds.(0) -. nm.speeds.(0)) /. cf.speeds.(0));
          ]
        | _ -> [ string_of_int n; "infeasible"; "-"; "-"; "-" ])
      [ 2; 4; 8; 16; 32; 64 ]
  in
  List.iter (Table.add_row t) rows;
  emit ~caption:"Fork theorem: f0 = ((Σw³)^⅓ + w0)/D, E = ((Σw³)^⅓ + w0)³/D²" t

(* ------------------------------------------------------------------ *)
(* E2: series-parallel closed form vs solver                           *)
(* ------------------------------------------------------------------ *)

let e2 ~seed () =
  header "E2" "CONTINUOUS BI-CRIT on SP graphs: Weq recursion vs convex solver (R1/R2)";
  let rng = Rng.create ~seed in
  let t = Table.create ~columns:[ "n"; "Weq"; "E = Weq³/D²"; "E solver"; "rel gap" ] in
  let rows =
    pmap_seeded ~rng
      (fun rng n ->
        let sp = Generators.random_sp rng ~n ~wlo:0.5 ~whi:3. in
        let dag = Sp.to_dag sp in
        let mapping = Mapping.one_task_per_proc dag in
        let weq = Bicrit_continuous.sp_equivalent_weight sp in
        (* the paper normalises speeds to f_ref = 1: D = 2·Weq/f_ref *)
        let fref : (float[@units "freq"]) = 1.0 in
        let deadline = 2. *. weq /. fref in
        let closed = weq ** 3. /. (deadline *. deadline) in
        match
          Bicrit_continuous.solve_general ~lo:(Array.make n 1e-4) ~hi:(Array.make n 1e9)
            ~deadline mapping
        with
        | Some nm ->
          [
            string_of_int n;
            Printf.sprintf "%.4f" weq;
            Printf.sprintf "%.6f" closed;
            Printf.sprintf "%.6f" nm.Bicrit_continuous.energy;
            Printf.sprintf "%.2e" (Float.abs (closed -. nm.energy) /. closed);
          ]
        | None -> [ string_of_int n; "-"; "-"; "infeasible"; "-" ])
      [ 3; 5; 8; 12; 20; 32 ]
  in
  List.iter (Table.add_row t) rows;
  emit
    ~caption:"SP recursion: series adds Weq, parallel combines as (Wa³+Wb³)^⅓" t

(* ------------------------------------------------------------------ *)
(* E3: VDD-HOPPING LP vs continuous lower bound                        *)
(* ------------------------------------------------------------------ *)

let e3 ~seed () =
  header "E3" "VDD-HOPPING BI-CRIT in P: LP vs continuous bound (R3/R4)";
  let instances = 5 in
  let t =
    Table.create
      ~columns:[ "m levels"; "E_vdd/E_cont (geo mean)"; "E_emul/E_vdd"; "two-speed" ]
  in
  let rows =
    pmap
      (fun m ->
        let rng = Rng.create ~seed:(seed + m) in
        let levels = levels_of m in
        let ratios = ref [] and emu_ratios = ref [] and two_speed_ok = ref true in
        for _ = 1 to instances do
          let dag =
            Generators.random_layered rng ~layers:4 ~width:3 ~density:0.5 ~wlo:1. ~whi:3.
          in
          let mapping = List_sched.schedule dag ~p:3 ~priority:List_sched.Bottom_level in
          let dmin = List_sched.makespan_at_speed mapping ~f:fmax in
          let deadline = 1.6 *. dmin in
          let n = Dag.n dag in
          let lo, hi = uniform_bounds n in
          match
            ( Bicrit_vdd.solve ~deadline ~levels mapping,
              Bicrit_continuous.solve_general ~lo ~hi ~deadline mapping )
          with
          | Some vdd, Some cont ->
            let e_vdd = Schedule.energy vdd in
            ratios := (e_vdd /. cont.Bicrit_continuous.energy) :: !ratios;
            if not (Bicrit_vdd.two_speed_support ~levels vdd) then two_speed_ok := false;
            (match Bicrit_vdd.emulate_continuous ~levels ~speeds:cont.speeds mapping with
            | Some emu -> emu_ratios := (Schedule.energy emu /. e_vdd) :: !emu_ratios
            | None -> ())
          | _ -> ()
        done;
        [
          string_of_int m;
          Printf.sprintf "%.4f" (Stats.geometric_mean (Array.of_list !ratios));
          Printf.sprintf "%.4f" (Stats.geometric_mean (Array.of_list !emu_ratios));
          (if !two_speed_ok then "yes" else "NO");
        ])
      [ 2; 3; 5; 8; 10 ]
  in
  List.iter (Table.add_row t) rows;
  emit
    ~caption:
      "LP optimum approaches the continuous bound as the level set refines;\n\
       optimal bases use at most two consecutive speeds per task" t

(* ------------------------------------------------------------------ *)
(* E4: INCREMENTAL approximation ratio vs delta                        *)
(* ------------------------------------------------------------------ *)

let e4 ~seed () =
  header "E4" "INCREMENTAL round-up approximation vs the (1+δ/fmin)² bound (R6)";
  let instances = 5 in
  let t =
    Table.create ~columns:[ "delta"; "measured ratio (max)"; "bound (1+d/fmin)²"; "slack" ]
  in
  let rows =
    pmap
      (fun delta ->
        let rng = Rng.create ~seed:(seed + int_of_float (delta *. 1000.)) in
        let worst = ref 1. in
        for _ = 1 to instances do
          let dag =
            Generators.random_layered rng ~layers:4 ~width:3 ~density:0.5 ~wlo:1. ~whi:3.
          in
          let mapping = List_sched.schedule dag ~p:3 ~priority:List_sched.Bottom_level in
          let dmin = List_sched.makespan_at_speed mapping ~f:fmax in
          let deadline = 1.7 *. dmin in
          let n = Dag.n dag in
          let lo, hi = uniform_bounds n in
          match
            ( Bicrit_incremental.approximate ~deadline ~fmin ~fmax ~delta mapping,
              Bicrit_continuous.solve_general ~lo ~hi ~deadline mapping )
          with
          | Some approx, Some cont ->
            let r = Schedule.energy approx /. cont.Bicrit_continuous.energy in
            if r > !worst then worst := r
          | _ -> ()
        done;
        let bound = Bicrit_incremental.bound ~fmin ~delta ~k:None in
        [
          Printf.sprintf "%.3f" delta;
          Printf.sprintf "%.4f" !worst;
          Printf.sprintf "%.4f" bound;
          Printf.sprintf "%.4f" (bound -. !worst);
        ])
      [ 0.01; 0.02; 0.05; 0.1; 0.2; 0.4 ]
  in
  List.iter (Table.add_row t) rows;
  emit
    ~caption:"Measured ratio is always below the proven bound and shrinks with δ" t

(* ------------------------------------------------------------------ *)
(* E5: DISCRETE exact vs round-up; 2-PARTITION reduction               *)
(* ------------------------------------------------------------------ *)

let e5 ~seed () =
  header "E5" "DISCRETE BI-CRIT: exact B&B vs round-up; NP-completeness gadget (R5)";
  let levels = levels_of 4 in
  let t =
    Table.create
      ~columns:[ "instance"; "n"; "E exact"; "E round-up"; "ratio"; "B&B nodes" ]
  in
  let rng = Rng.create ~seed in
  let rows =
    pmap_seeded ~rng
      (fun rng k ->
        let dag =
          Generators.random_layered rng ~layers:3 ~width:3 ~density:0.5 ~wlo:1. ~whi:3.
        in
        let mapping = List_sched.schedule dag ~p:2 ~priority:List_sched.Bottom_level in
        let dmin = List_sched.makespan_at_speed mapping ~f:fmax in
        let deadline = 1.5 *. dmin in
        match
          ( Bicrit_discrete.solve_exact ?node_limit:None ~deadline ~levels mapping,
            Bicrit_discrete.round_up ~deadline ~levels mapping )
        with
        | Some exact, Some approx ->
          let ea = Schedule.energy approx in
          [
            Printf.sprintf "random-%d" k;
            string_of_int (Dag.n dag);
            Printf.sprintf "%.5f" exact.Bicrit_discrete.energy;
            Printf.sprintf "%.5f" ea;
            Printf.sprintf "%.4f" (ea /. exact.Bicrit_discrete.energy);
            string_of_int exact.Bicrit_discrete.nodes_explored;
          ]
        | _ -> [ Printf.sprintf "random-%d" k; "-"; "infeasible"; "-"; "-"; "-" ])
      [ 1; 2; 3; 4; 5; 6 ]
  in
  List.iter (Table.add_row t) rows;
  emit ~caption:"Round-up stays close to the exact optimum on random DAGs" t;
  let t2 = Table.create ~columns:[ "2-PARTITION instance"; "expected"; "via scheduling" ] in
  let rows2 =
    pmap
      (fun items ->
        let expected = Complexity.two_partition_brute_force items in
        let got = Complexity.decide_two_partition items in
        [
          String.concat "," (List.map string_of_int (Array.to_list items));
          string_of_bool expected;
          string_of_bool got;
        ])
      [ [| 3; 1; 2 |]; [| 1; 1; 1 |]; [| 5; 3; 2; 4 |]; [| 8; 3; 3 |]; [| 7; 3; 2; 2 |] ]
  in
  List.iter (Table.add_row t2) rows2;
  emit
    ~caption:
      "Reduction gadget: chain of the items, speeds {1,2}, D = 3S/4, E* = 5S/2 —\n\
       the scheduling decision answers 2-PARTITION exactly" t2

(* ------------------------------------------------------------------ *)
(* E6: TRI-CRIT chain                                                  *)
(* ------------------------------------------------------------------ *)

let e6 ~seed () =
  header "E6" "TRI-CRIT on a chain: slow-all-equally + re-execution subset (R7/R8)";
  let rel = rel_params () in
  let rng = Rng.create ~seed in
  let dag = Generators.chain rng ~n:10 ~wlo:0.5 ~whi:3. in
  let m = Mapping.single_processor dag in
  let dmin = Dag.total_weight dag /. fmax in
  let t =
    Table.create
      ~columns:
        [ "D/Dmin"; "E no-reexec"; "E greedy"; "E exact"; "#reexec greedy"; "#reexec exact" ]
  in
  let rows =
    pmap
      (fun slack ->
        let deadline = slack *. dmin in
        let cell = function
          | None -> ("infeasible", "-")
          | Some (s : Tricrit_chain.solution) ->
            (Printf.sprintf "%.5f" s.energy, string_of_int (count_true s.reexecuted))
        in
        let b, _ = cell (Tricrit_chain.no_reexecution ~rel ~deadline m) in
        let g, gn = cell (Tricrit_chain.solve_greedy ~rel ~deadline m) in
        let e, en = cell (Tricrit_chain.solve_exact ?max_n:None ~rel ~deadline m) in
        [ Printf.sprintf "%.2f" slack; b; g; e; gn; en ])
      [ 1.0; 1.2; 1.5; 2.0; 2.5; 3.0; 4.0; 6.0 ]
  in
  List.iter (Table.add_row t) rows;
  emit
    ~caption:
      "Re-execution engages once slack allows running below f_rel;\n\
       greedy subset selection tracks the exponential optimum" t

(* ------------------------------------------------------------------ *)
(* E7: TRI-CRIT fork                                                   *)
(* ------------------------------------------------------------------ *)

let e7 ~seed () =
  header "E7" "TRI-CRIT on a fork: polynomial algorithm vs heuristics (R9)";
  let rel = rel_params () in
  let rng = Rng.create ~seed in
  let dag = Generators.fork rng ~n:8 ~wlo:0.5 ~whi:3. in
  let mapping = Mapping.one_task_per_proc dag in
  let dmin = List_sched.makespan_at_speed mapping ~f:fmax in
  let t =
    Table.create
      ~columns:[ "D/Dmin"; "E fork-poly"; "#reexec"; "E family A"; "E family B"; "E best-of" ]
  in
  let rows =
    pmap
      (fun slack ->
        let deadline = slack *. dmin in
        let poly = Tricrit_fork.solve ?grid:None ~rel ~deadline dag in
        let h name f =
          match f ~rel ~deadline mapping with
          | Some (s : Heuristics.solution) -> Printf.sprintf "%.5f" s.energy
          | None -> "inf"
          | exception _ -> "err(" ^ name ^ ")"
        in
        let best =
          match Heuristics.best_of ~rel ~deadline mapping with
          | Some (s, _) -> Printf.sprintf "%.5f" s.Heuristics.energy
          | None -> "inf"
        in
        match poly with
        | Some p ->
          [
            Printf.sprintf "%.2f" slack;
            Printf.sprintf "%.5f" p.Tricrit_fork.energy;
            string_of_int (count_true p.Tricrit_fork.reexecuted);
            h "A" Heuristics.chain_oriented;
            h "B" Heuristics.parallel_oriented;
            best;
          ]
        | None -> [ Printf.sprintf "%.2f" slack; "infeasible"; "-"; "-"; "-"; "-" ])
      [ 1.05; 1.2; 1.5; 2.0; 3.0; 4.0 ]
  in
  List.iter (Table.add_row t) rows;
  emit
    ~caption:
      "The window-split algorithm is optimal for forks; family B (slack-driven)\n\
       follows it closely, family A catches up when slack is large" t

(* ------------------------------------------------------------------ *)
(* E8: heuristic comparison across DAG classes                         *)
(* ------------------------------------------------------------------ *)

let e8 ~seed () =
  header "E8"
    "TRI-CRIT heuristic families across DAG classes, energy / lower bound (R10)";
  let rel = rel_params () in
  let classes =
    [
      ( "chain",
        fun rng -> Mapping.single_processor (Generators.chain rng ~n:12 ~wlo:0.5 ~whi:3.) );
      ( "fork",
        fun rng -> Mapping.one_task_per_proc (Generators.fork rng ~n:10 ~wlo:0.5 ~whi:3.) );
      ( "fork-join",
        fun rng ->
          let d = Generators.fork_join rng ~n:8 ~wlo:0.5 ~whi:3. in
          List_sched.schedule d ~p:8 ~priority:List_sched.Bottom_level );
      ( "sp-random",
        fun rng ->
          let sp = Generators.random_sp rng ~n:12 ~wlo:0.5 ~whi:3. in
          Mapping.one_task_per_proc (Sp.to_dag sp) );
      ( "layered",
        fun rng ->
          let d = Generators.random_layered rng ~layers:5 ~width:4 ~density:0.4 ~wlo:1. ~whi:3. in
          List_sched.schedule d ~p:4 ~priority:List_sched.Bottom_level );
      ( "stencil",
        fun _ -> List_sched.schedule (Generators.stencil ~rows:4 ~cols:4) ~p:4
            ~priority:List_sched.Bottom_level );
      ( "cholesky",
        fun _ -> List_sched.schedule (Generators.cholesky ~n:4) ~p:4
            ~priority:List_sched.Bottom_level );
      ( "fft",
        fun _ -> List_sched.schedule (Generators.fft ~levels:3) ~p:8
            ~priority:List_sched.Bottom_level );
      ( "out-tree",
        fun rng ->
          let d = Generators.out_tree rng ~n:14 ~max_children:3 ~wlo:0.5 ~whi:3. in
          List_sched.schedule d ~p:4 ~priority:List_sched.Bottom_level );
    ]
  in
  let instances = 3 in
  let t =
    Table.create
      ~columns:[ "class"; "slack"; "A/LB"; "B/LB"; "BEST/LB"; "wins" ]
  in
  let cells =
    List.concat_map
      (fun (name, build) ->
        List.map (fun slack -> (name, build, slack)) [ 1.2; 2.0; 3.0 ])
      classes
  in
  let rows =
    pmap
      (fun (name, build, slack) ->
        let rng = Rng.create ~seed:(seed + Hashtbl.hash (name, int_of_float (slack *. 100.))) in
        let ra = ref [] and rb = ref [] and rbest = ref [] in
        let wins = Hashtbl.create 3 in
        for _ = 1 to instances do
          let m = build rng in
          let dmin = List_sched.makespan_at_speed m ~f:fmax in
          let deadline = slack *. dmin in
          let lb = Lower_bounds.tricrit ~rel ~deadline m in
          let record acc = function
            | Some (s : Heuristics.solution) -> acc := (s.energy /. lb) :: !acc
            | None -> ()
          in
          record ra (Heuristics.chain_oriented ~rel ~deadline m);
          record rb (Heuristics.parallel_oriented ~rel ~deadline m);
          match Heuristics.best_of ~rel ~deadline m with
          | Some (s, who) ->
            rbest := (s.Heuristics.energy /. lb) :: !rbest;
            let key =
              match who with
              | Heuristics.Chain_oriented -> "A"
              | Heuristics.Parallel_oriented -> "B"
              | Heuristics.Baseline_only -> "base"
            in
            Hashtbl.replace wins key (1 + Option.value ~default:0 (Hashtbl.find_opt wins key))
          | None -> ()
        done;
        let gm acc =
          match !acc with
          | [] -> "-"
          | l -> Printf.sprintf "%.4f" (Stats.geometric_mean (Array.of_list l))
        in
        let winners =
          Hashtbl.fold (fun k v acc -> Printf.sprintf "%s:%d %s" k v acc) wins ""
        in
        [ name; Printf.sprintf "%.1f" slack; gm ra; gm rb; gm rbest; winners ])
      cells
  in
  List.iter (Table.add_row t) rows;
  emit
    ~caption:
      "The two families are complementary (A on serial structures, B on parallel\n\
       ones); BEST always matches the better of the two — the paper's headline" t

(* ------------------------------------------------------------------ *)
(* E9: TRI-CRIT VDD-HOPPING                                            *)
(* ------------------------------------------------------------------ *)

let e9 ~seed () =
  header "E9" "TRI-CRIT VDD-HOPPING: subset+LP exact vs continuous-bridge heuristic (R11)";
  let rel = rel_params () in
  let levels = levels_of 5 in
  let rng = Rng.create ~seed in
  let dag = Generators.chain rng ~n:6 ~wlo:0.5 ~whi:2. in
  let m = Mapping.single_processor dag in
  let dmin = Dag.total_weight dag /. fmax in
  let t =
    Table.create
      ~columns:
        [ "D/Dmin"; "E exact (2^n LPs)"; "#re"; "E heuristic"; "E refined"; "E continuous" ]
  in
  let rows =
    pmap
      (fun slack ->
        let deadline = slack *. dmin in
        let fmt = function
          | None -> ("infeasible", "-")
          | Some (s : Tricrit_vdd.solution) ->
            (Printf.sprintf "%.5f" s.energy, string_of_int (count_true s.reexecuted))
        in
        let e, en = fmt (Tricrit_vdd.solve_exact ?max_n:None ~rel ~deadline ~levels m) in
        let heuristic = Tricrit_vdd.solve_heuristic ~rel ~deadline ~levels m in
        let h, _ = fmt heuristic in
        let r =
          match heuristic with
          | None -> "-"
          | Some sol ->
            Printf.sprintf "%.5f"
              (Tricrit_vdd.refine_splits ?rounds:None ~rel ~deadline ~levels m sol)
                .Tricrit_vdd.energy
        in
        let c =
          match Tricrit_chain.solve_exact ?max_n:None ~rel ~deadline m with
          | Some s -> Printf.sprintf "%.5f" s.Tricrit_chain.energy
          | None -> "infeasible"
        in
        [ Printf.sprintf "%.2f" slack; e; en; h; r; c ])
      [ 1.1; 1.5; 2.0; 3.0; 4.0 ]
  in
  List.iter (Table.add_row t) rows;
  emit
    ~caption:
      "With the subset fixed the problem is an LP (failure is linear in the\n\
       per-speed time shares); choosing the subset is the NP-complete part" t

(* ------------------------------------------------------------------ *)
(* E10: fault injection                                                *)
(* ------------------------------------------------------------------ *)

let e10 ~seed ~trials () =
  header "E10" "Fault injection: Eq. (1) analytic vs Monte-Carlo (model validation)";
  (* large lambda0 so rates are measurable *)
  let rel = rel_params ~lambda0:0.004 () in
  let rng = Rng.create ~seed in
  let dag = Generators.chain rng ~n:6 ~wlo:0.5 ~whi:2. in
  let m = Mapping.single_processor dag in
  let single = Schedule.uniform m ~speed:0.5 in
  let reexec =
    List.fold_left
      (fun acc i ->
        match Schedule.executions acc i with
        | e :: _ -> Schedule.with_execs acc i [ e; e ]
        | [] -> acc)
      single
      (List.init (Dag.n dag) Fun.id)
  in
  let t =
    Table.create
      ~columns:[ "schedule"; "task"; "analytic eps"; "measured"; "abs err" ]
  in
  List.iter
    (fun (name, sched) ->
      let report =
        Sim.monte_carlo_par ?pool:(current_pool ()) (Rng.split rng) ~rel ~trials
          sched
      in
      for i = 0 to Dag.n dag - 1 do
        let analytic = Sim.analytic_task_failure ~rel sched i in
        let measured = report.Sim.task_failure_rate.(i) in
        Table.add_row t
          [
            name;
            Dag.label dag i;
            Printf.sprintf "%.5f" analytic;
            Printf.sprintf "%.5f" measured;
            Printf.sprintf "%.5f" (Float.abs (analytic -. measured));
          ]
      done;
      Printf.printf "%s: success rate %.4f, mean faults/run %.4f\n" name
        report.Sim.success_rate report.Sim.mean_faults)
    [ ("single@0.5", single); ("re-exec@0.5", reexec) ];
  emit ~caption:(Printf.sprintf "%d Monte-Carlo trials per schedule" trials) t

(* ------------------------------------------------------------------ *)
(* E11: impact of the list-scheduling priority                         *)
(* ------------------------------------------------------------------ *)

let e11 ~seed () =
  header "E11" "Mapping impact: list-scheduling priority vs final TRI-CRIT energy (R12)";
  let rel = rel_params () in
  let instances = 4 in
  let t =
    Table.create
      ~columns:[ "priority"; "Dmin vs critical-path"; "E best-of / best priority" ]
  in
  (* collect energies per priority over shared instances *)
  let results = Hashtbl.create 8 in
  let dmins = Hashtbl.create 8 in
  for k = 1 to instances do
    let rng = Rng.create ~seed:(seed + k) in
    let dag = Generators.random_layered rng ~layers:5 ~width:4 ~density:0.4 ~wlo:1. ~whi:3. in
    let per_priority =
      List.map
        (fun prio ->
          let m = List_sched.schedule dag ~p:4 ~priority:prio in
          let dmin = List_sched.makespan_at_speed m ~f:fmax in
          (* deadline fixed across priorities: generous slack over the
             best mapping's dmin so all mappings stay feasible *)
          (prio, m, dmin))
        List_sched.all_priorities
    in
    let best_dmin =
      List.fold_left (fun acc (_, _, d) -> Float.min acc d) infinity per_priority
    in
    let deadline = 2.5 *. best_dmin in
    let energies =
      List.filter_map
        (fun (prio, m, dmin) ->
          match Heuristics.best_of ~rel ~deadline m with
          | Some (s, _) -> Some (prio, dmin, s.Heuristics.energy)
          | None -> None)
        per_priority
    in
    let best_e = List.fold_left (fun acc (_, _, e) -> Float.min acc e) infinity energies in
    List.iter
      (fun (prio, dmin, e) ->
        let key = List_sched.priority_name prio in
        Hashtbl.replace results key ((e /. best_e) :: Option.value ~default:[] (Hashtbl.find_opt results key));
        Hashtbl.replace dmins key ((dmin /. best_dmin) :: Option.value ~default:[] (Hashtbl.find_opt dmins key)))
      energies
  done;
  List.iter
    (fun prio ->
      let key = List_sched.priority_name prio in
      let e = Option.value ~default:[] (Hashtbl.find_opt results key) in
      let d = Option.value ~default:[] (Hashtbl.find_opt dmins key) in
      if e <> [] then
        Table.add_row t
          [
            key;
            Printf.sprintf "%.4f" (Stats.geometric_mean (Array.of_list d));
            Printf.sprintf "%.4f" (Stats.geometric_mean (Array.of_list e));
          ])
    List_sched.all_priorities;
  emit
    ~caption:
      "Critical-path (bottom-level) mapping is near-best downstream;\n\
       poor mapping priorities cost energy even after re-optimisation" t

(* ------------------------------------------------------------------ *)
(* E12: replication vs re-execution                                    *)
(* ------------------------------------------------------------------ *)

let e12 ~seed () =
  header "E12" "Replication vs re-execution on a mirrored chain (R13, Section V)";
  let rel = rel_params () in
  let rng = Rng.create ~seed in
  let weights = Rng.sample_weights rng ~n:8 ~lo:0.5 ~hi:3. in
  let dmin = Es_util.Futil.sum weights /. fmax in
  let t =
    Table.create
      ~columns:
        [ "D/Dmin"; "E single-only"; "E reexec-only"; "E combined"; "#re"; "#repl" ]
  in
  List.iter
    (fun slack ->
      let deadline = slack *. dmin in
      let single =
        Replication.evaluate ~rel ~deadline ~weights
          ~kinds:(Array.make 8 Replication.Single)
      in
      let reexec = Replication.reexec_only ~rel ~deadline ~weights in
      let combined = Replication.solve_greedy ~rel ~deadline ~weights in
      let fmt = function
        | Some (s : Replication.solution) -> Printf.sprintf "%.5f" s.energy
        | None -> "infeasible"
      in
      let counts = function
        | Some (s : Replication.solution) ->
          let c k = Array.fold_left (fun a x -> if x = k then a + 1 else a) 0 s.kinds in
          (string_of_int (c Replication.Reexecute), string_of_int (c Replication.Replicate))
        | None -> ("-", "-")
      in
      let nre, nrep = counts combined in
      Table.add_row t
        [ Printf.sprintf "%.2f" slack; fmt single; fmt reexec; fmt combined; nre; nrep ])
    [ 1.0; 1.2; 1.5; 2.0; 3.0; 4.0 ];
  emit
    ~caption:
      "Replication reaches re-execution's energy gains without paying chain time,\n\
       so it wins at tight deadlines; both converge when slack abounds" t


(* ------------------------------------------------------------------ *)
(* E13: heuristics vs exact optimum on small general DAGs             *)
(* ------------------------------------------------------------------ *)

let e13 ~seed () =
  header "E13" "Heuristic quality vs exact TRI-CRIT optimum on small DAGs (R10 ground truth)";
  let rel = rel_params () in
  let t =
    Table.create
      ~columns:[ "class"; "slack"; "E exact"; "E best-of"; "gap"; "E best+LS"; "gap+LS" ]
  in
  let classes =
    [
      ("chain", fun rng -> Mapping.single_processor (Generators.chain rng ~n:8 ~wlo:0.5 ~whi:3.));
      ("fork", fun rng -> Mapping.one_task_per_proc (Generators.fork rng ~n:7 ~wlo:0.5 ~whi:3.));
      ( "layered",
        fun rng ->
          let d = Generators.random_layered rng ~layers:3 ~width:3 ~density:0.5 ~wlo:1. ~whi:3. in
          List_sched.schedule d ~p:2 ~priority:List_sched.Bottom_level );
    ]
  in
  List.iter
    (fun (name, build) ->
      let rng = Rng.create ~seed:(seed + Hashtbl.hash name) in
      let m = build rng in
      let dmin = List_sched.makespan_at_speed m ~f:fmax in
      List.iter
        (fun slack ->
          let deadline = slack *. dmin in
          match
            (Tricrit_exact.solve ?max_n:None ~rel ~deadline m, Heuristics.best_of ~rel ~deadline m)
          with
          | Some e, Some (h, _) ->
            let refined = Heuristics.local_search ?sweeps:None ?max_candidates:None ~rel ~deadline m h in
            Table.add_row t
              [
                name;
                Printf.sprintf "%.1f" slack;
                Printf.sprintf "%.5f" e.Heuristics.energy;
                Printf.sprintf "%.5f" h.Heuristics.energy;
                Printf.sprintf "%.2f%%"
                  (100. *. ((h.Heuristics.energy /. e.Heuristics.energy) -. 1.));
                Printf.sprintf "%.5f" refined.Heuristics.energy;
                Printf.sprintf "%.2f%%"
                  (100. *. ((refined.Heuristics.energy /. e.Heuristics.energy) -. 1.));
              ]
          | _ ->
            Table.add_row t
              [ name; Printf.sprintf "%.1f" slack; "inf"; "inf"; "-"; "-"; "-" ])
        [ 1.5; 2.5; 4. ])
    classes;
  emit
    ~caption:"Best-of-two heuristics vs the 2^n-subsets exact optimum" t

(* ------------------------------------------------------------------ *)
(* E14: checkpointing vs re-execution                                 *)
(* ------------------------------------------------------------------ *)

let e14 ~seed () =
  header "E14" "Checkpointing granularity vs per-task re-execution (Section II, third technique)";
  let rel = rel_params () in
  let rng = Rng.create ~seed in
  let weights = Rng.sample_weights rng ~n:10 ~lo:0.5 ~hi:2.5 in
  let total = Es_util.Futil.sum weights in
  let deadline = 4. *. total in
  let t =
    Table.create
      ~columns:[ "checkpoint work"; "E optimal ckpt"; "#segments"; "E per-task (c=0)" ]
  in
  let per_task =
    match Checkpointing.reexec_equivalent ~rel ~deadline ~weights with
    | Some s -> s.Checkpointing.energy
    | None -> nan
  in
  List.iter
    (fun c ->
      match Checkpointing.solve ?speed_grid:None ~rel ~checkpoint_work:c ~deadline ~weights with
      | Some sol ->
        Table.add_row t
          [
            Printf.sprintf "%.2f" c;
            Printf.sprintf "%.5f" sol.Checkpointing.energy;
            string_of_int (List.length sol.Checkpointing.segments);
            Printf.sprintf "%.5f" per_task;
          ]
      | None -> Table.add_row t [ Printf.sprintf "%.2f" c; "infeasible"; "-"; "-" ])
    [ 0.; 0.05; 0.1; 0.25; 0.5; 1.; 2. ];
  emit
    ~caption:
      "Costlier checkpoints push the optimal segmentation coarser; at zero cost\n\
       checkpoint-after-every-task (= re-execution) is optimal" t

(* ------------------------------------------------------------------ *)
(* E15: static-power ablation                                          *)
(* ------------------------------------------------------------------ *)

let e15 ~seed () =
  header "E15" "Ablation: the paper's zero-static-power assumption (Section II)";
  let rng = Rng.create ~seed in
  let weights = Rng.sample_weights rng ~n:8 ~lo:0.5 ~hi:3. in
  let total = Es_util.Futil.sum weights in
  let t =
    Table.create
      ~columns:[ "sigma"; "f_crit"; "slack"; "naive E"; "aware E"; "penalty" ]
  in
  List.iter
    (fun static ->
      List.iter
        (fun slack ->
          let deadline = slack *. total in
          match
            ( Power.chain_naive ~static ~weights ~deadline ~fmin:0.05 ~fmax,
              Power.chain_aware ~static ~weights ~deadline ~fmin:0.05 ~fmax )
          with
          | Some naive, Some aware ->
            Table.add_row t
              [
                Printf.sprintf "%.3f" static;
                Printf.sprintf "%.3f" (Power.critical_speed ~static);
                Printf.sprintf "%.1f" slack;
                Printf.sprintf "%.5f" naive.Power.energy;
                Printf.sprintf "%.5f" aware.Power.energy;
                Printf.sprintf "%.3fx" (naive.Power.energy /. aware.Power.energy);
              ]
          | _ -> Table.add_row t [ Printf.sprintf "%.3f" static; "-"; "-"; "-"; "-"; "-" ])
        [ 1.5; 4.; 10. ])
    [ 0.; 0.05; 0.25; 1. ];
  emit
    ~caption:
      "With race-to-idle processors, ignoring leakage (the paper's model) is\n\
       harmless at tight deadlines but increasingly wasteful below the critical\n\
       speed; with always-on processors (the paper's stated assumption) the\n\
       static term is schedule-independent and the ablation is moot" t


(* ------------------------------------------------------------------ *)
(* E16: convex-hull closed form for VDD-HOPPING chains                *)
(* ------------------------------------------------------------------ *)

let e16 ~seed () =
  header "E16" "VDD-HOPPING on chains: convex-hull closed form W·g(D/W) vs the LP (R4)";
  let levels = levels_of 5 in
  let rng = Rng.create ~seed in
  let dag = Generators.chain rng ~n:8 ~wlo:0.5 ~whi:3. in
  let m = Mapping.single_processor dag in
  let w = Dag.total_weight dag in
  let t = Table.create ~columns:[ "D/Dmin"; "E hull"; "E LP"; "rel gap" ] in
  List.iter
    (fun slack ->
      let deadline = slack *. w in
      match
        ( Vdd_hull.chain_energy ~levels ~total_weight:w ~deadline,
          Bicrit_vdd.energy ~deadline ~levels m )
      with
      | Some hull, Some lp ->
        Table.add_row t
          [
            Printf.sprintf "%.2f" slack;
            Printf.sprintf "%.6f" hull;
            Printf.sprintf "%.6f" lp;
            Printf.sprintf "%.2e" (Float.abs (hull -. lp) /. hull);
          ]
      | _ -> Table.add_row t [ Printf.sprintf "%.2f" slack; "infeasible"; "-"; "-" ])
    [ 1.0; 1.15; 1.4; 1.8; 2.5; 4.0; 6.0 ];
  emit
    ~caption:
      "On a chain the optimal VDD energy is W·g(D/W) with g the lower convex\n\
       hull of the (1/f, f²) level points — the geometric reason two\n\
       consecutive speeds suffice (R4)" t

(* ------------------------------------------------------------------ *)
(* E17: shadow price of the deadline (LP duality)                     *)
(* ------------------------------------------------------------------ *)

let e17 ~seed () =
  header "E17" "Sensitivity: the LP dual prices the deadline (slope of the Pareto front)";
  let levels = levels_of 5 in
  let rng = Rng.create ~seed in
  let dag = Generators.random_layered rng ~layers:4 ~width:3 ~density:0.5 ~wlo:1. ~whi:3. in
  let m = List_sched.schedule dag ~p:3 ~priority:List_sched.Bottom_level in
  let dmin = List_sched.makespan_at_speed m ~f:fmax in
  let t =
    Table.create
      ~columns:[ "D/Dmin"; "E*"; "dual dE/dD"; "finite diff"; "abs err" ]
  in
  List.iter
    (fun slack ->
      let deadline = slack *. dmin in
      match Bicrit_vdd.energy_with_deadline_price ~deadline ~levels m with
      | None -> Table.add_row t [ Printf.sprintf "%.2f" slack; "infeasible"; "-"; "-"; "-" ]
      | Some (e, price) ->
        let h = 1e-4 *. dmin in
        let fd =
          match
            ( Bicrit_vdd.energy ~deadline:(deadline +. h) ~levels m,
              Bicrit_vdd.energy ~deadline:(deadline -. h) ~levels m )
          with
          | Some ep, Some em -> Some ((ep -. em) /. (2. *. h))
          | _ -> None
        in
        (match fd with
        | Some fd ->
          Table.add_row t
            [
              Printf.sprintf "%.2f" slack;
              Printf.sprintf "%.5f" e;
              Printf.sprintf "%.5f" price;
              Printf.sprintf "%.5f" fd;
              Printf.sprintf "%.1e" (Float.abs (price -. fd));
            ]
        | None ->
          Table.add_row t
            [ Printf.sprintf "%.2f" slack; Printf.sprintf "%.5f" e;
              Printf.sprintf "%.5f" price; "-"; "-" ]))
    [ 1.1; 1.3; 1.6; 2.0; 2.8; 4.0 ];
  emit
    ~caption:
      "The sum of the deadline rows' dual multipliers equals the slope of the\n\
       energy/deadline front: tight deadlines are expensive at the margin, and\n\
       the price vanishes once every task already runs at its cheapest mix" t


(* ------------------------------------------------------------------ *)
(* E18: structure-aware SP heuristic                                  *)
(* ------------------------------------------------------------------ *)

let e18 ~seed () =
  header "E18" "TRI-CRIT on SP graphs: structure-aware family C vs A/B (Section V future work)";
  let rel = rel_params () in
  let instances = 4 in
  let t =
    Table.create
      ~columns:[ "slack"; "A/exact"; "B/exact"; "C(sp)/exact"; "best-of(A,B)/exact" ]
  in
  List.iter
    (fun slack ->
      let rng = Rng.create ~seed:(seed + int_of_float (slack *. 10.)) in
      let ra = ref [] and rb = ref [] and rc = ref [] and rbest = ref [] in
      for _ = 1 to instances do
        let sp = Generators.random_sp rng ~n:9 ~wlo:0.5 ~whi:3. in
        let dag = Sp.to_dag sp in
        let mapping = Mapping.one_task_per_proc dag in
        let dmin = List_sched.makespan_at_speed mapping ~f:fmax in
        let deadline = slack *. dmin in
        match Tricrit_exact.solve ?max_n:None ~rel ~deadline mapping with
        | None -> ()
        | Some exact ->
          let record acc = function
            | Some (s : Heuristics.solution) ->
              acc := (s.energy /. exact.Heuristics.energy) :: !acc
            | None -> ()
          in
          record ra (Heuristics.chain_oriented ~rel ~deadline mapping);
          record rb (Heuristics.parallel_oriented ~rel ~deadline mapping);
          record rc (Tricrit_sp.solve ~rel ~deadline sp);
          record rbest
            (Option.map fst (Heuristics.best_of ~rel ~deadline mapping))
      done;
      let gm acc =
        match !acc with
        | [] -> "-"
        | l -> Printf.sprintf "%.4f" (Stats.geometric_mean (Array.of_list l))
      in
      Table.add_row t [ Printf.sprintf "%.1f" slack; gm ra; gm rb; gm rc; gm rbest ])
    [ 1.3; 1.8; 2.5; 3.5 ];
  emit
    ~caption:
      "Exploiting the SP decomposition (window allocation by equivalent weight +\n\
       per-leaf fork oracle) on graphs where generic families must guess" t


(* ------------------------------------------------------------------ *)
(* E19: processor-count ablation of heuristic complementarity         *)
(* ------------------------------------------------------------------ *)

let e19 ~seed () =
  header "E19"
    "Ablation: processor count interpolates between the chain and parallel regimes";
  let rel = rel_params () in
  let rng = Rng.create ~seed in
  let dag = Generators.random_layered rng ~layers:5 ~width:4 ~density:0.4 ~wlo:1. ~whi:3. in
  let t =
    Table.create ~columns:[ "p"; "Dmin"; "A/LB"; "B/LB"; "winner" ]
  in
  List.iter
    (fun p ->
      let m = List_sched.schedule dag ~p ~priority:List_sched.Bottom_level in
      let dmin = List_sched.makespan_at_speed m ~f:fmax in
      let deadline = 2.2 *. dmin in
      let lb = Lower_bounds.tricrit ~rel ~deadline m in
      let ratio = function
        | Some (s : Heuristics.solution) -> Some (s.energy /. lb)
        | None -> None
      in
      let a = ratio (Heuristics.chain_oriented ~rel ~deadline m) in
      let b = ratio (Heuristics.parallel_oriented ~rel ~deadline m) in
      let fmt = function Some r -> Printf.sprintf "%.4f" r | None -> "-" in
      let winner =
        match (a, b) with
        | Some ra, Some rb ->
          if Float.abs (ra -. rb) < 1e-6 then "tie"
          else if ra < rb then "A"
          else "B"
        | _ -> "-"
      in
      Table.add_row t
        [ string_of_int p; Printf.sprintf "%.3f" dmin; fmt a; fmt b; winner ])
    [ 1; 2; 3; 4; 6; 8; 12 ];
  emit
    ~caption:
      "On one processor every DAG is a chain (family A territory); as p grows\n\
       the same DAG becomes parallel and family B takes over — the mapping,\n\
       not just the DAG shape, decides which strategy fits" t


(* ------------------------------------------------------------------ *)
(* E20: scalability of the polynomial machinery                       *)
(* ------------------------------------------------------------------ *)

let e20 ~seed () =
  header "E20" "Scalability: wall-clock of the polynomial solvers vs instance size";
  let rel = rel_params () in
  let t =
    Table.create
      ~columns:
        [ "n"; "bi-crit convex (s)"; "vdd LP (s)"; "best-of heuristics (s)"; "BEST/LB" ]
  in
  List.iter
    (fun target_n ->
      let rng = Rng.create ~seed:(seed + target_n) in
      let dag =
        Generators.random_layered rng ~layers:(target_n / 6) ~width:8 ~density:0.3
          ~wlo:1. ~whi:3.
      in
      let m = List_sched.schedule dag ~p:8 ~priority:List_sched.Bottom_level in
      let n = Dag.n dag in
      let dmin = List_sched.makespan_at_speed m ~f:fmax in
      let deadline = 2. *. dmin in
      let time f =
        let t0 = Unix.gettimeofday () in
        let r = f () in
        (Unix.gettimeofday () -. t0, r)
      in
      let t_cont, _ =
        time (fun () -> Bicrit_continuous.solve ~deadline ~fmin ~fmax m)
      in
      let t_vdd, _ = time (fun () -> Bicrit_vdd.solve ~deadline ~levels:(levels_of 5) m) in
      let t_heur, best = time (fun () -> Heuristics.best_of ~rel ~deadline m) in
      let ratio =
        match best with
        | Some (sol, _) ->
          Printf.sprintf "%.4f"
            (sol.Heuristics.energy /. Lower_bounds.tricrit ~rel ~deadline m)
        | None -> "-"
      in
      Table.add_row t
        [
          string_of_int n;
          Printf.sprintf "%.3f" t_cont;
          Printf.sprintf "%.3f" t_vdd;
          Printf.sprintf "%.3f" t_heur;
          ratio;
        ])
    [ 24; 48; 72; 96 ];
  emit
    ~caption:
      "The convex solve is the dominant cost (dense Newton, O(n³) per step);\n\
       the LP and the heuristics remain interactive well past 100 tasks" t

(* ------------------------------------------------------------------ *)
(* cmdliner wiring                                                     *)
(* ------------------------------------------------------------------ *)

open Cmdliner

let seed_arg =
  Arg.(value & opt int 42 & info [ "seed" ] ~docv:"SEED" ~doc:"Random seed.")

let csv_arg =
  Arg.(value & flag & info [ "csv" ] ~doc:"Emit tables as CSV instead of aligned text.")

let stats_arg =
  Arg.(value & flag & info [ "stats" ]
         ~doc:"Print solver telemetry (counters, per-phase timers) after the run.")

let jobs_arg =
  Arg.(
    value
    (* sizing query for the CLI default — no domain is spawned here *)
    & opt int (Domain.recommended_domain_count () [@lint.allow "P004"])
    & info [ "jobs"; "j" ] ~docv:"N"
        ~doc:
          "Worker domains for the repetition sweeps (default: the recommended \
           domain count of this machine).  Output is byte-identical for every \
           $(docv); 1 runs fully sequentially.")

let with_stats stats f =
  if stats then Es_obs.Obs.enable ();
  Fun.protect
    ~finally:(fun () -> if stats then Es_obs.Obs.disable ())
    (fun () ->
      with_jobs f;
      if stats then begin
        print_newline ();
        print_string (Es_obs.Obs.render_text (Es_obs.Obs.snapshot ()))
      end)

let trials_arg =
  Arg.(value & opt int 50_000 & info [ "trials" ] ~docv:"N" ~doc:"Monte-Carlo trials (E10).")

let cmd_of name doc f =
  Cmd.v (Cmd.info name ~doc)
    Term.(
      const (fun seed csv stats j ->
          csv_mode := csv;
          set_jobs j;
          with_stats stats (fun () -> f ~seed ()))
      $ seed_arg $ csv_arg $ stats_arg $ jobs_arg)

let e10_cmd =
  Cmd.v
    (Cmd.info "e10" ~doc:"Fault-injection validation of Eq. (1)")
    Term.(
      const (fun seed trials csv stats j ->
          csv_mode := csv;
          set_jobs j;
          with_stats stats (fun () -> e10 ~seed ~trials ()))
      $ seed_arg $ trials_arg $ csv_arg $ stats_arg $ jobs_arg)

let all_cmd =
  Cmd.v
    (Cmd.info "all" ~doc:"Run every experiment in order (regenerates EXPERIMENTS.md data)")
    Term.(
      const (fun seed trials csv stats j ->
          csv_mode := csv;
          set_jobs j;
          with_stats stats @@ fun () ->
          e1 ~seed ();
          e2 ~seed ();
          e3 ~seed ();
          e4 ~seed ();
          e5 ~seed ();
          e6 ~seed ();
          e7 ~seed ();
          e8 ~seed ();
          e9 ~seed ();
          e10 ~seed ~trials ();
          e11 ~seed ();
          e12 ~seed ();
          e13 ~seed ();
          e14 ~seed ();
          e15 ~seed ();
          e16 ~seed ();
          e17 ~seed ();
          e18 ~seed ();
          e19 ~seed ())
      $ seed_arg $ trials_arg $ csv_arg $ stats_arg $ jobs_arg)

let () =
  let info =
    Cmd.info "experiments" ~version:"1.0.0"
      ~doc:
        "Reproduction harness for 'Energy-aware scheduling: models and complexity \
         results' (IPDPSW 2012): one subcommand per experiment of DESIGN.md."
  in
  let cmds =
    [
      cmd_of "e1" "Fork closed form vs convex solver (R1/R2)" e1;
      cmd_of "e2" "Series-parallel closed form vs solver (R1/R2)" e2;
      cmd_of "e3" "VDD-HOPPING LP vs continuous bound (R3/R4)" e3;
      cmd_of "e4" "INCREMENTAL approximation ratio (R6)" e4;
      cmd_of "e5" "DISCRETE exact vs round-up + 2-PARTITION gadget (R5)" e5;
      cmd_of "e6" "TRI-CRIT chain (R7/R8)" e6;
      cmd_of "e7" "TRI-CRIT fork (R9)" e7;
      cmd_of "e8" "Heuristic families across DAG classes (R10)" e8;
      cmd_of "e9" "TRI-CRIT VDD-HOPPING (R11)" e9;
      e10_cmd;
      cmd_of "e11" "List-scheduling priority impact (R12)" e11;
      cmd_of "e12" "Replication vs re-execution (R13)" e12;
      cmd_of "e13" "Heuristics vs exact optimum on small DAGs" e13;
      cmd_of "e14" "Checkpointing vs re-execution" e14;
      cmd_of "e15" "Static-power ablation" e15;
      cmd_of "e16" "VDD convex-hull closed form vs LP" e16;
      cmd_of "e17" "Deadline shadow price (LP duality)" e17;
      cmd_of "e18" "SP structure-aware heuristic" e18;
      cmd_of "e19" "Processor-count ablation" e19;
      cmd_of "e20" "Scalability of the polynomial solvers" e20;
      all_cmd;
    ]
  in
  exit (Cmd.eval (Cmd.group info cmds))
