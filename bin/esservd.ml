(* esservd: scheduling-as-a-service over newline-delimited JSON.

   Default mode serves stdin -> stdout (one request per line, one
   response per line, in order).  `--socket PATH` listens on a
   Unix-domain socket instead, serving connections one at a time;
   `--connect PATH` is the matching client: it forwards stdin to the
   socket, half-closes, and streams the responses to stdout.  See
   lib/serve/protocol.mli for the wire grammar and lib/serve/server.mli
   for batching, admission control and cache semantics. *)

module Server = Es_serve.Server
module Obs = Es_obs.Obs
module Pool = Es_par.Pool
module Stats = Es_util.Stats

let with_pool jobs f =
  if jobs <= 1 then f None
  else Pool.with_pool ~domains:jobs (fun p -> f (Some p))

(* --stats goes to stderr: stdout is the protocol stream. *)
let dump_stats srv =
  let samples = Server.samples srv in
  List.iter
    (fun tag ->
      let xs =
        Array.of_list
          (List.filter_map
             (fun (t, w) -> if String.equal t tag then Some w else None)
             samples)
      in
      if Array.length xs > 0 then
        Printf.eprintf "serve.lat.%-12s n=%-6d p50=%.6fs p99=%.6fs\n" tag
          (Array.length xs)
          (Stats.quantile xs 0.5)
          (Stats.quantile xs 0.99))
    [ "miss"; "hit"; "rescale-hit" ];
  prerr_string (Obs.render_text (Obs.snapshot ()))

let ignore_unix f = try f () with Unix.Unix_error (_, _, _) -> ()

let serve_socket srv ~pool path ~once =
  Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
  let sock = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  ignore_unix (fun () -> Unix.unlink path);
  Fun.protect
    ~finally:(fun () ->
      ignore_unix (fun () -> Unix.close sock);
      ignore_unix (fun () -> Unix.unlink path))
    (fun () ->
      Unix.bind sock (Unix.ADDR_UNIX path);
      Unix.listen sock 8;
      let rec accept_loop () =
        let fd, _ = Unix.accept sock in
        let ic = Unix.in_channel_of_descr fd in
        let oc = Unix.out_channel_of_descr fd in
        Fun.protect
          ~finally:(fun () ->
            (try flush oc with Sys_error _ -> ());
            ignore_unix (fun () -> Unix.close fd))
          (fun () -> Server.run srv ~pool ic oc);
        if not once then accept_loop ()
      in
      accept_loop ();
      0)

let client path =
  Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
  let sock = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () -> ignore_unix (fun () -> Unix.close sock))
    (fun () ->
      Unix.connect sock (Unix.ADDR_UNIX path);
      let oc = Unix.out_channel_of_descr sock in
      (try
         while true do
           let line = input_line stdin in
           output_string oc line;
           output_char oc '\n'
         done
       with End_of_file -> ());
      flush oc;
      Unix.shutdown sock Unix.SHUTDOWN_SEND;
      let ic = Unix.in_channel_of_descr sock in
      (try
         while true do
           print_endline (input_line ic)
         done
       with End_of_file -> ());
      0)

let main socket_path connect_to once batch queue jobs cache selfcheck
    exact_threshold stats =
  match connect_to with
  | Some path -> client path
  | None ->
    let config =
      {
        Server.jobs;
        batch = max 1 batch;
        queue = max 0 queue;
        cache_capacity = max 1 cache;
        selfcheck = max 0 selfcheck;
        exact_threshold;
      }
    in
    if stats then Obs.enable ();
    Fun.protect
      ~finally:(fun () -> if stats then Obs.disable ())
      (fun () ->
        let srv = Server.create config in
        let code =
          with_pool config.Server.jobs (fun pool ->
              match socket_path with
              | None ->
                Server.run srv ~pool stdin stdout;
                0
              | Some path -> serve_socket srv ~pool path ~once)
        in
        if stats then dump_stats srv;
        code)

open Cmdliner

let socket_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "socket" ] ~docv:"PATH"
        ~doc:"Listen on a Unix-domain socket instead of serving stdin/stdout.")

let connect_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "connect" ] ~docv:"PATH"
        ~doc:
          "Client mode: forward stdin to the daemon at $(docv), print the \
           responses, exit.")

let once_arg =
  Arg.(
    value & flag
    & info [ "once" ]
        ~doc:"With $(b,--socket): exit after serving one connection.")

let batch_arg =
  Arg.(
    value & opt int 8
    & info [ "batch" ] ~docv:"N" ~doc:"Max requests per batch window.")

let queue_arg =
  Arg.(
    value & opt int 64
    & info [ "queue" ] ~docv:"N"
        ~doc:"Admission bound: requests per batch window beyond it are shed.")

let jobs_arg =
  Arg.(
    value
    & opt int (Domain.recommended_domain_count () [@lint.allow "P004"])
    & info [ "jobs" ] ~docv:"N"
        ~doc:
          "Worker domains for the solve phase.  Responses are \
           byte-identical for every N.")

let cache_arg =
  Arg.(
    value & opt int 4096
    & info [ "cache" ] ~docv:"N" ~doc:"Cache capacity (entries per table).")

let selfcheck_arg =
  Arg.(
    value & opt int 0
    & info [ "selfcheck" ] ~docv:"K"
        ~doc:
          "Re-solve every $(docv)-th rescale-hit and report agreement \
           (0 = off).")

let exact_threshold_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "exact-threshold" ] ~docv:"N"
        ~doc:"Instance-size bound for the exponential exact engines.")

let stats_arg =
  Arg.(
    value & flag
    & info [ "stats" ] ~doc:"Print telemetry and latency quantiles to stderr.")

let cmd =
  let info =
    Cmd.info "esservd" ~version:"1.0.0"
      ~doc:"Energy-aware scheduling as a service (newline-delimited JSON)"
  in
  Cmd.v info
    Term.(
      const main $ socket_arg $ connect_arg $ once_arg $ batch_arg $ queue_arg
      $ jobs_arg $ cache_arg $ selfcheck_arg $ exact_threshold_arg $ stats_arg)

let () = exit (Cmd.eval' cmd)
