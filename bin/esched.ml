(* esched: command-line front end to the library.

   Subcommands:
     generate  — build a workload DAG and print it (DOT or summary)
     solve     — map a DAG and minimise energy under a speed model,
                 optionally with the TRI-CRIT reliability constraint
     simulate  — Monte-Carlo fault injection on the solved schedule
     demo      — the full pipeline on one instance, with a Gantt chart *)

module Rng = Es_util.Rng
module Obs = Es_obs.Obs
module Pool = Es_par.Pool

(* `--jobs N`: worker domains for the sweep subcommands (pareto,
   simulate).  Lazy pool, shut down when the command finishes; results
   are identical for every N by the lib/par determinism contract. *)
let jobs = ref 1

let pool : Pool.t option ref = ref None
let current_pool () = !pool

(* Run [f] with the worker pool installed for its dynamic extent
   (when [--jobs N] asks for more than one domain); [Pool.with_pool]
   owns the shutdown on both the normal and the exceptional path. *)
let with_jobs f =
  if !jobs <= 1 then f ()
  else
    Pool.with_pool ~domains:!jobs (fun p ->
        pool := Some p;
        Fun.protect ~finally:(fun () -> pool := None) f)

(* `--stats`: enable telemetry around the run, render it afterwards *)
let with_stats stats f =
  if stats then Obs.enable ();
  Fun.protect
    ~finally:(fun () -> if stats then Obs.disable ())
    (fun () ->
      let code = with_jobs f in
      if stats then begin
        print_newline ();
        print_string (Obs.render_text (Obs.snapshot ()))
      end;
      code)

let fmin = 0.2
let fmax = 1.0

type workload = Chain | Fork | Fork_join | Layered | Stencil | Lu | Fft

let workload_conv =
  Cmdliner.Arg.enum
    [
      ("chain", Chain); ("fork", Fork); ("fork-join", Fork_join);
      ("layered", Layered); ("stencil", Stencil); ("lu", Lu); ("fft", Fft);
    ]

let build_dag kind ~n ~seed =
  let rng = Rng.create ~seed in
  match kind with
  | Chain -> Generators.chain rng ~n ~wlo:0.5 ~whi:3.
  | Fork -> Generators.fork rng ~n ~wlo:0.5 ~whi:3.
  | Fork_join -> Generators.fork_join rng ~n ~wlo:0.5 ~whi:3.
  | Layered ->
    Generators.random_layered rng ~layers:(max 2 (n / 4)) ~width:4 ~density:0.4
      ~wlo:0.5 ~whi:3.
  | Stencil ->
    let side = max 2 (int_of_float (sqrt (float_of_int n))) in
    Generators.stencil ~rows:side ~cols:side
  | Lu -> Generators.lu ~n:(max 2 (int_of_float (Float.cbrt (float_of_int n))))
  | Fft ->
    let levels = max 1 (int_of_float (Float.log2 (float_of_int (max 2 n)) /. 2.)) in
    Generators.fft ~levels

type model_kind = Continuous | Discrete | Vdd | Incremental

let model_conv =
  Cmdliner.Arg.enum
    [
      ("continuous", Continuous); ("discrete", Discrete); ("vdd", Vdd);
      ("incremental", Incremental);
    ]

let levels5 = [| 0.2; 0.4; 0.6; 0.8; 1.0 |]

let speed_model = function
  | Continuous -> Speed.continuous ~fmin ~fmax
  | Discrete -> Speed.discrete levels5
  | Vdd -> Speed.vdd_hopping levels5
  | Incremental -> Speed.incremental ~fmin ~fmax ~delta:0.1

(* --- generate ----------------------------------------------------- *)

let generate kind n seed dot =
  let dag = build_dag kind ~n ~seed in
  if dot then print_string (Dot.of_dag dag)
  else begin
    Printf.printf "tasks: %d, edges: %d, total weight: %.3f\n" (Dag.n dag)
      (Dag.n_edges dag) (Dag.total_weight dag);
    Printf.printf "critical path (at fmax): %.3f\n"
      (Dag.critical_path_length dag
         ~durations:(Array.map (fun w -> w /. fmax) (Dag.weights dag)));
    Format.printf "%a" Dag.pp dag
  end;
  0

(* --- solve -------------------------------------------------------- *)

let solve kind n seed p slack model_kind reliability gantt stats =
  with_stats stats @@ fun () ->
  let dag = build_dag kind ~n ~seed in
  let mapping = List_sched.schedule dag ~p ~priority:List_sched.Bottom_level in
  let dmin = List_sched.makespan_at_speed mapping ~f:fmax in
  let deadline = slack *. dmin in
  Printf.printf "n=%d p=%d Dmin=%.4f deadline=%.4f model=%s%s\n" (Dag.n dag) p dmin
    deadline
    (match model_kind with
    | Continuous -> "continuous" | Discrete -> "discrete" | Vdd -> "vdd-hopping"
    | Incremental -> "incremental")
    (if reliability then " + reliability" else "");
  let request =
    {
      Solver.mapping;
      model = speed_model model_kind;
      deadline;
      rel =
        (if reliability then
           Some (Rel.make ~lambda0:1e-5 ~sensitivity:3. ~fmin ~fmax ~frel:0.8 ())
         else None);
    }
  in
  match Obs.with_span "solve" (fun () -> Solver.solve ?exact_threshold:None request) with
  | Error msg ->
    print_endline msg;
    1
  | Ok { Solver.schedule = sched; engine; exact; _ } ->
    Printf.printf "engine: %s (%s)\n" engine
      (if exact then "provably optimal" else "heuristic/approximation");
    Printf.printf "energy: %.6f\nworst-case makespan: %.6f\n" (Schedule.energy sched)
      (Schedule.makespan sched);
    let model = speed_model model_kind in
    let rel =
      if reliability then
        Some (Rel.make ~lambda0:1e-5 ~sensitivity:3. ~fmin ~fmax ~frel:0.8 ())
      else None
    in
    let violations =
      Obs.with_span "validate" (fun () -> Validate.check ~deadline ?rel ~model sched)
    in
    if violations = [] then print_endline "validation: OK"
    else
      List.iter
        (fun v -> Printf.printf "VIOLATION: %s\n" (Validate.explain dag v))
        violations;
    if gantt then Gantt.print ?width:None ~deadline sched;
    if violations = [] then 0 else 1

(* --- simulate ------------------------------------------------------ *)

let simulate kind n seed p slack trials lambda0 stats j =
  jobs := max 1 j;
  with_stats stats @@ fun () ->
  let dag = build_dag kind ~n ~seed in
  let mapping = List_sched.schedule dag ~p ~priority:List_sched.Bottom_level in
  let dmin = List_sched.makespan_at_speed mapping ~f:fmax in
  let deadline = slack *. dmin in
  let rel = Rel.make ~lambda0 ~sensitivity:3. ~fmin ~fmax ~frel:0.8 () in
  match Obs.with_span "heuristics" (fun () -> Heuristics.best_of ~rel ~deadline mapping) with
  | None ->
    print_endline "infeasible";
    1
  | Some (sol, _) ->
    let report =
      Obs.with_span "monte_carlo" (fun () ->
          Sim.monte_carlo_par ?pool:(current_pool ())
            (Rng.create ~seed:(seed + 1))
            ~rel ~trials sol.Heuristics.schedule)
    in
    Printf.printf "energy (worst case): %.6f\n" report.Sim.worst_case_energy;
    Printf.printf "success rate: %.5f over %d trials\n" report.Sim.success_rate trials;
    Printf.printf "mean faults/run: %.4f\n" report.Sim.mean_faults;
    Printf.printf "realised makespan: mean %.4f, max %.4f (worst case %.4f)\n"
      report.Sim.mean_realised_makespan report.Sim.max_realised_makespan
      report.Sim.worst_case_makespan;
    Printf.printf "realised energy: mean %.4f (worst case %.4f)\n"
      report.Sim.mean_realised_energy report.Sim.worst_case_energy;
    0

(* --- pareto --------------------------------------------------------- *)

let pareto kind n seed p reliability vdd cold stats j =
  jobs := max 1 j;
  with_stats stats @@ fun () ->
  let dag = build_dag kind ~n ~seed in
  let mapping = List_sched.schedule dag ~p ~priority:List_sched.Bottom_level in
  let dmin = List_sched.makespan_at_speed mapping ~f:fmax in
  let deadlines =
    List.map (fun s -> s *. dmin) [ 1.05; 1.2; 1.5; 2.; 2.5; 3.; 4.; 6. ]
  in
  let points =
    if reliability then begin
      let rel = Rel.make ~lambda0:1e-5 ~sensitivity:3. ~fmin ~fmax ~frel:0.8 () in
      Pareto.tricrit_front ?pool:(current_pool ()) ~rel ~deadlines mapping
    end
    else if vdd then
      Pareto.bicrit_vdd_front ?pool:(current_pool ()) ~warm:(not cold)
        ~levels:levels5 ~deadlines mapping
    else Pareto.bicrit_front ?pool:(current_pool ()) ~fmin ~fmax ~deadlines mapping
  in
  let table = Es_util.Table.create ~columns:[ "D/Dmin"; "energy"; "#re-executed" ] in
  List.iter
    (fun pt ->
      Es_util.Table.add_row table
        [
          Printf.sprintf "%.2f" (pt.Pareto.deadline /. dmin);
          Printf.sprintf "%.5f" pt.Pareto.energy;
          string_of_int pt.Pareto.n_reexecuted;
        ])
    points;
  Es_util.Table.print
    ~caption:
      (Printf.sprintf "Energy/deadline front (%s)"
         (if reliability then "TRI-CRIT, best-of heuristics"
          else if vdd then
            Printf.sprintf "BI-CRIT, vdd-hopping LP, %s starts"
              (if cold then "cold" else "warm")
          else "BI-CRIT, continuous"))
    table;
  if Pareto.is_front points then 0
  else begin
    prerr_endline "warning: dominated point in the sweep";
    1
  end

(* --- demo ---------------------------------------------------------- *)

let demo seed =
  let rng = Rng.create ~seed in
  let dag = Generators.random_layered rng ~layers:4 ~width:3 ~density:0.5 ~wlo:1. ~whi:3. in
  let mapping = List_sched.schedule dag ~p:3 ~priority:List_sched.Bottom_level in
  let dmin = List_sched.makespan_at_speed mapping ~f:fmax in
  let deadline = 2. *. dmin in
  let rel = Rel.make ~lambda0:1e-5 ~sensitivity:3. ~fmin ~fmax ~frel:0.8 () in
  Printf.printf "DAG: %d tasks, %d edges on 3 processors; Dmin=%.3f, D=%.3f\n\n"
    (Dag.n dag) (Dag.n_edges dag) dmin deadline;
  (match Bicrit_continuous.solve ~deadline ~fmin ~fmax mapping with
  | Some s -> Printf.printf "BI-CRIT continuous optimum: E = %.5f\n" (Schedule.energy s)
  | None -> print_endline "BI-CRIT infeasible");
  (match Heuristics.best_of ~rel ~deadline mapping with
  | Some (sol, who) ->
    Printf.printf "TRI-CRIT best-of heuristics:  E = %.5f (winner: %s)\n\n"
      sol.Heuristics.energy
      (Heuristics.winner_name who);
    Gantt.print ?width:None ~deadline sol.Heuristics.schedule
  | None -> print_endline "TRI-CRIT infeasible");
  0

(* --- cmdliner ------------------------------------------------------ *)

open Cmdliner

let kind_arg =
  Arg.(value & opt workload_conv Layered & info [ "workload"; "w" ] ~docv:"KIND"
         ~doc:"Workload: chain, fork, fork-join, layered, stencil, lu, fft.")

let n_arg = Arg.(value & opt int 16 & info [ "n" ] ~docv:"N" ~doc:"Workload size.")
let seed_arg = Arg.(value & opt int 42 & info [ "seed" ] ~docv:"SEED" ~doc:"Random seed.")
let p_arg = Arg.(value & opt int 4 & info [ "p" ] ~docv:"P" ~doc:"Processor count.")

let slack_arg =
  Arg.(value & opt float 2. & info [ "slack" ] ~docv:"S"
         ~doc:"Deadline as a multiple of the fmax makespan.")

let stats_arg =
  Arg.(value & flag & info [ "stats" ]
         ~doc:"Print solver telemetry (counters, per-phase timers, spans) after the run.")

let jobs_arg =
  Arg.(
    value
    (* sizing query for the CLI default — no domain is spawned here *)
    & opt int (Domain.recommended_domain_count () [@lint.allow "P004"])
    & info [ "jobs"; "j" ] ~docv:"N"
        ~doc:
          "Worker domains for the sweep (default: the recommended domain count \
           of this machine).  Output is identical for every $(docv); 1 runs \
           fully sequentially.")

let generate_cmd =
  let dot = Arg.(value & flag & info [ "dot" ] ~doc:"Emit Graphviz DOT.") in
  Cmd.v (Cmd.info "generate" ~doc:"Generate a workload DAG")
    Term.(const generate $ kind_arg $ n_arg $ seed_arg $ dot)

let solve_cmd =
  let model =
    Arg.(value & opt model_conv Continuous & info [ "model"; "m" ] ~docv:"MODEL"
           ~doc:"Speed model: continuous, discrete, vdd, incremental.")
  in
  let reliability =
    Arg.(value & flag & info [ "reliability"; "r" ]
           ~doc:"Enforce the TRI-CRIT reliability constraint (with re-execution).")
  in
  let gantt = Arg.(value & flag & info [ "gantt" ] ~doc:"Print an ASCII Gantt chart.") in
  Cmd.v (Cmd.info "solve" ~doc:"Minimise energy under a deadline")
    Term.(const solve $ kind_arg $ n_arg $ seed_arg $ p_arg $ slack_arg $ model
          $ reliability $ gantt $ stats_arg)

let simulate_cmd =
  let trials =
    Arg.(value & opt int 10_000 & info [ "trials" ] ~docv:"N" ~doc:"Monte-Carlo trials.")
  in
  let lambda0 =
    Arg.(value & opt float 0.004 & info [ "lambda0" ] ~docv:"L"
           ~doc:"Fault rate at fmax (per time unit).")
  in
  Cmd.v (Cmd.info "simulate" ~doc:"Fault-inject a TRI-CRIT schedule")
    Term.(const simulate $ kind_arg $ n_arg $ seed_arg $ p_arg $ slack_arg $ trials
          $ lambda0 $ stats_arg $ jobs_arg)

let pareto_cmd =
  let reliability =
    Arg.(value & flag & info [ "reliability"; "r" ]
           ~doc:"Sweep the TRI-CRIT front instead of BI-CRIT.")
  in
  let vdd =
    Arg.(value & flag & info [ "vdd" ]
           ~doc:"Sweep the VDD-HOPPING BI-CRIT LP (Section IV) instead of the \
                 continuous model, re-optimising each deadline from the previous \
                 optimal basis.")
  in
  let cold =
    Arg.(value & flag & info [ "cold" ]
           ~doc:"With $(b,--vdd): solve every deadline from scratch instead of \
                 warm-starting.  The front is identical either way.")
  in
  Cmd.v (Cmd.info "pareto" ~doc:"Sweep the energy/deadline trade-off")
    Term.(const pareto $ kind_arg $ n_arg $ seed_arg $ p_arg $ reliability $ vdd
          $ cold $ stats_arg $ jobs_arg)

let demo_cmd =
  Cmd.v (Cmd.info "demo" ~doc:"End-to-end pipeline demo") Term.(const demo $ seed_arg)

let () =
  let info =
    Cmd.info "esched" ~version:"1.0.0"
      ~doc:"Energy-aware scheduling under makespan and reliability constraints."
  in
  exit (Cmd.eval' (Cmd.group info [ generate_cmd; solve_cmd; simulate_cmd; pareto_cmd; demo_cmd ]))
