module Problem = Es_lp.Problem
module Obs = Es_obs.Obs

type solution = {
  schedule : Schedule.t;
  energy : float;
  reexecuted : bool array;
}

let c_subsets = Obs.counter "tricrit_vdd_subsets"
let c_cache_hits = Obs.counter "tricrit_vdd_probe_cache_hits"
let c_cache_misses = Obs.counter "tricrit_vdd_probe_cache_misses"

let solve_subset_split ~rel ~deadline ~levels mapping ~subset ~splits =
  Obs.incr c_subsets;
  let cdag = Mapping.constraint_dag mapping in
  let n = Dag.n cdag in
  assert (Array.length subset = n);
  assert (Array.length splits = n);
  let m = Array.length levels in
  let lp = Problem.create () in
  (* alphas.(i) is one array of per-level time shares per execution *)
  let alphas =
    Array.init n (fun i ->
        let n_exec = if subset.(i) then 2 else 1 in
        Array.init n_exec (fun e ->
            Array.init m (fun k ->
                Problem.var lp
                  ~obj:(levels.(k) *. levels.(k) *. levels.(k))
                  (Printf.sprintf "a_%d_%d_%d" i e k))))
  in
  let start = Array.init n (fun i -> Problem.var lp (Printf.sprintf "s_%d" i)) in
  let task_time_expr i =
    Array.to_list alphas.(i)
    |> List.concat_map (fun exec -> Array.to_list (Array.map (fun v -> (1., v)) exec))
  in
  let feasible = ref true in
  for i = 0 to n - 1 do
    let w = Dag.weight cdag i in
    let target = Rel.target_failure rel ~w in
    (* per-execution budgets: θ / 1−θ exponents keep the product at
       the exact target for any split of a sub-1 target *)
    let budgets =
      if subset.(i) then [| target ** splits.(i); target ** (1. -. splits.(i)) |]
      else [| target |]
    in
    Array.iteri
      (fun e exec ->
        (* work conservation per execution *)
        Problem.eq lp
          (Array.to_list (Array.mapi (fun k v -> (levels.(k), v)) exec))
          w;
        (* linear reliability budget per execution *)
        Problem.le lp
          (Array.to_list (Array.mapi (fun k v -> (Rel.rate rel ~f:levels.(k), v)) exec))
          budgets.(e))
      alphas.(i);
    (* even the fastest level must be able to meet every budget *)
    let top = levels.(Array.length levels - 1) in
    Array.iter
      (fun budget ->
        if Rel.failure_prob rel ~f:top ~w > budget *. (1. +. 1e-9) then feasible := false)
      budgets;
    Problem.le lp ((1., start.(i)) :: task_time_expr i) deadline
  done;
  List.iter
    (fun (i, j) ->
      Problem.le lp (((1., start.(i)) :: task_time_expr i) @ [ (-1., start.(j)) ]) 0.)
    (Dag.edges cdag);
  if not !feasible then None
  else begin
    match Problem.solve lp with
    | Problem.Infeasible -> None
    | Problem.Unbounded -> assert false
    | Problem.Solution s ->
      let executions =
        Array.init n (fun i ->
            let w = Dag.weight cdag i in
            Array.to_list alphas.(i)
            |> List.map (fun exec ->
                   let parts = ref [] in
                   let total =
                     Es_util.Futil.sum (Array.map (Problem.value s) exec)
                   in
                   Array.iteri
                     (fun k v ->
                       let t = Problem.value s v in
                       if t > 1e-9 *. Float.max total 1. then
                         parts := { Schedule.speed = levels.(k); time = t } :: !parts)
                     exec;
                   let parts = List.rev !parts in
                   let work =
                     Es_util.Futil.sum_by
                       (fun (p : Schedule.part) -> p.speed *. p.time)
                       parts
                   in
                   let scale = w /. work in
                   List.map
                     (fun (p : Schedule.part) -> { p with Schedule.time = p.time *. scale })
                     parts))
      in
      let schedule = Schedule.make mapping ~executions in
      Some { schedule; energy = Schedule.energy schedule; reexecuted = Array.copy subset }
  end

let solve_subset ~rel ~deadline ~levels mapping ~subset =
  let n = Array.length subset in
  solve_subset_split ~rel ~deadline ~levels mapping ~subset ~splits:(Array.make n 0.5)

let refine_splits ?(rounds = 1) ?(use_cache = true) ~rel ~deadline ~levels mapping
    solution =
  let subset = solution.reexecuted in
  let n = Array.length subset in
  let splits = Array.make n 0.5 in
  (* Probe memo: the subset LP as a function of (i, θ), valid for the
     current committed splits of every other task.  A committed change
     alters the LP for all tasks, so commits clear the table.  This
     removes the re-solves the seed code paid for the accepted θ
     ([cost theta] followed by [energy_at ()] on the same LP) and lets
     any later sweep over an unchanged task replay from cache instead
     of re-solving the whole golden-section trajectory. *)
  let cache : (int * float, solution option) Hashtbl.t = Hashtbl.create 64 in
  let solve_at i theta =
    match if use_cache then Hashtbl.find_opt cache (i, theta) else None with
    | Some res ->
      Obs.incr c_cache_hits;
      res
    | None ->
      Obs.incr c_cache_misses;
      let saved = splits.(i) in
      splits.(i) <- theta;
      let res = solve_subset_split ~rel ~deadline ~levels mapping ~subset ~splits in
      splits.(i) <- saved;
      if use_cache then Hashtbl.replace cache (i, theta) res;
      res
  in
  let best = ref solution in
  for _ = 1 to rounds do
    for i = 0 to n - 1 do
      if subset.(i) then begin
        let cost theta =
          match solve_at i theta with Some s -> s.energy | None -> infinity
        in
        let theta =
          Es_numopt.Scalar.golden_min ?max_iters:None ~tol:1e-3 ~f:cost ~lo:0.15 ~hi:0.85
        in
        if cost theta < !best.energy -. 1e-12 then begin
          (* the accepted probe was just solved by [cost]: with the
             cache this lookup is free, uncached it re-solves the LP *)
          match solve_at i theta with
          | Some s ->
            splits.(i) <- theta;
            (* committing θᵢ changes the LP seen by every other task *)
            Hashtbl.reset cache;
            best := s
          | None -> ()
        end
      end
    done
  done;
  !best

let solve_exact ?(max_n = 12) ~rel ~deadline ~levels mapping =
  let n = Dag.n (Mapping.dag mapping) in
  if n > max_n then
    invalid_arg (Printf.sprintf "Tricrit_vdd.solve_exact: n = %d > %d" n max_n);
  let best = ref None in
  let subset = Array.make n false in
  let consider () =
    match solve_subset ~rel ~deadline ~levels mapping ~subset with
    | None -> ()
    | Some sol -> (
      match !best with
      | Some b when b.energy <= sol.energy -> ()
      | _ -> best := Some sol)
  in
  let rec enum i =
    if i = n then consider ()
    else begin
      subset.(i) <- false;
      enum (i + 1);
      subset.(i) <- true;
      enum (i + 1);
      subset.(i) <- false
    end
  in
  enum 0;
  !best

let solve_heuristic ~rel ~deadline ~levels mapping =
  let n = Dag.n (Mapping.dag mapping) in
  let subset =
    match Heuristics.best_of ~rel ~deadline mapping with
    | Some (sol, _) -> sol.Heuristics.reexecuted
    | None -> Array.make n false
  in
  match solve_subset ~rel ~deadline ~levels mapping ~subset with
  | Some sol -> Some sol
  | None ->
    (* the continuous subset may be too aggressive for the discrete
       level set: retreat to no re-execution *)
    solve_subset ~rel ~deadline ~levels mapping ~subset:(Array.make n false)
