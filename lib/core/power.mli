(** Static-power ablation.

    The paper's energy model is purely dynamic ([P = f³]), justified in
    Section II: "we do not take static energy into account, because all
    processors are up and alive during the whole execution" — with
    always-on processors the static term is the constant [p·σ·D] and
    cannot change the optimiser's decisions.  This module makes that
    design choice testable (ablation bench E15) by implementing the
    alternative: processors that can idle at zero power once their work
    is done ("race to idle"), where running a task at speed [f] costs

    {v E(w, f) = (f³ + σ)·(w/f) = w·(f² + σ/f) v}

    for leakage power [σ].  That function is no longer monotone in [f]:
    it is minimised at the {e critical speed} [f_crit = (σ/2)^{1/3}],
    below which slowing down {e wastes} energy.  The ablation measures
    how wrong the paper-model optimum becomes as σ grows. *)

val energy :
  static:(float[@units "power"]) ->
  w:(float[@units "work"]) ->
  f:(float[@units "freq"]) ->
  (float[@units "energy"])
(** [w·(f² + σ/f)]. *)

val critical_speed : static:(float[@units "power"]) -> (float[@units "freq"])
(** [(σ/2)^{1/3}] — the unconstrained minimiser of [f² + σ/f]. *)

val always_on_energy :
  static:(float[@units "power"]) ->
  p:int ->
  deadline:(float[@units "time"]) ->
  dynamic:(float[@units "energy"]) ->
  (float[@units "energy"])
(** The paper's regime: [dynamic + p·σ·D].  The static part is
    schedule-independent — the formal content of the paper's
    justification. *)

type result = {
  speeds : (float[@units "freq"]) array;
  energy : (float[@units "energy"]);
}

val chain_aware :
  static:(float[@units "power"]) ->
  weights:(float[@units "work"]) array ->
  deadline:(float[@units "time"]) ->
  fmin:(float[@units "freq"]) ->
  fmax:(float[@units "freq"]) ->
  result option
(** Race-to-idle optimum for a single-processor chain: common speed
    [max(Σw/D, f_crit)] clamped into [\[fmin, fmax\]] (the objective is
    convex and symmetric across tasks, so the equal-speed argument of
    the dynamic model still applies).  [None] if [fmax] misses the
    deadline. *)

val chain_naive :
  static:(float[@units "power"]) ->
  weights:(float[@units "work"]) array ->
  deadline:(float[@units "time"]) ->
  fmin:(float[@units "freq"]) ->
  fmax:(float[@units "freq"]) ->
  result option
(** The paper-model speeds (ignore σ when optimising: run at
    [max(Σw/D, fmin)]) re-costed under the race-to-idle energy — what a
    dynamic-only optimiser actually pays when leakage exists. *)

val ablation_penalty :
  static:(float[@units "power"]) ->
  weights:(float[@units "work"]) array ->
  deadline:(float[@units "time"]) ->
  fmin:(float[@units "freq"]) ->
  fmax:(float[@units "freq"]) ->
  (float[@units "dimensionless"]) option
(** [energy(naive)/energy(aware)] — 1.0 when the paper's assumption is
    harmless, growing once the deadline slack pushes the dynamic-only
    optimum below the critical speed. *)
