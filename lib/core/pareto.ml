type point = { deadline : float; energy : float; n_reexecuted : int }

(* Both sweeps solve each deadline independently, so they parallelise
   over the pool; results come back in deadline order either way, and
   infeasible deadlines are dropped after the join.

   X002 allowed: the solvers validate their mapping argument, which is
   the same caller-validated value for every deadline of the sweep —
   if one task raises they all would, and that programming error
   should surface loudly at the joiner rather than be swallowed. *)
let bicrit_front ?pool ~fmin ~fmax ~deadlines mapping =
  let n = Dag.n (Mapping.dag mapping) in
  let lo = Array.make n fmin and hi = Array.make n fmax in
  List.filter_map Fun.id
    (Es_par.Par.parallel_map ?pool
       (fun deadline ->
         match Bicrit_continuous.solve_general ~lo ~hi ~deadline mapping with
         | None -> None
         | Some { energy; _ } -> Some { deadline; energy; n_reexecuted = 0 })
       deadlines)
[@@lint.allow "X002"]

(* Warm chaining runs inside fixed 25-deadline blocks: the partition
   is a function of the deadline list alone, never of the pool size,
   so the basis handed to each solve — and therefore every computed
   point — is identical under --jobs 1 and --jobs 4.  Blocks are the
   parallelism grain; within a block each LP re-starts from the
   previous deadline's optimal basis. *)
let vdd_block = 25

let bicrit_vdd_front ?pool ?(warm = true) ~levels ~deadlines mapping =
  let ds = Array.of_list deadlines in
  let n = Array.length ds in
  let n_blocks = (n + vdd_block - 1) / vdd_block in
  let blocks =
    List.init n_blocks (fun b ->
        Array.sub ds (b * vdd_block) (min vdd_block (n - (b * vdd_block))))
  in
  let results =
    Es_par.Par.parallel_map ?pool
      (fun block ->
        Bicrit_vdd.energy_sweep ~warm ~deadlines:block ~levels mapping)
      blocks
  in
  List.concat
    (List.map2
       (fun block energies ->
         List.filter_map Fun.id
           (List.mapi
              (fun i e ->
                match e with
                | None -> None
                | Some energy ->
                  Some { deadline = block.(i); energy; n_reexecuted = 0 })
              (Array.to_list energies)))
       blocks results)
[@@lint.allow "X002"]

let tricrit_front ?pool ~rel ~deadlines mapping =
  List.filter_map Fun.id
    (Es_par.Par.parallel_map ?pool
       (fun deadline ->
         match Heuristics.best_of ~rel ~deadline mapping with
         | None -> None
         | Some (sol, _) ->
           let n_reexecuted =
             Array.fold_left
               (fun a b -> if b then a + 1 else a)
               0 sol.Heuristics.reexecuted
           in
           Some { deadline; energy = sol.Heuristics.energy; n_reexecuted })
       deadlines)
[@@lint.allow "X002"]

let dominates a b =
  a.deadline <= b.deadline && a.energy <= b.energy
  && (a.deadline < b.deadline || a.energy < b.energy)

let is_front points =
  List.for_all
    (fun p -> not (List.exists (fun q -> q != p && dominates q p) points))
    points
