(** Checkpointing as an alternative fault-tolerance model.

    The paper (Section II) lists three reliability techniques:
    re-execution (its focus), replication (Section V / {!Replication})
    and {e checkpointing} — "saving the work done at some certain
    points of the work, hence reducing the amount of work lost when a
    failure occurs" [Melhem, Mosse & Elnozahy].  This module implements
    the natural checkpointing counterpart of the paper's worst-case
    model on a linear chain:

    - the chain is cut into contiguous {e segments}; a checkpoint
      (extra work [c_w], run at the segment's speed) is written at the
      end of each segment;
    - a segment whose execution fails is re-executed {e as a whole}
      from the previous checkpoint, so the worst case charges every
      segment twice (work [2·(W_s + c_w)]);
    - the reliability constraint applies per segment, mirroring the
      task constraint: two attempts of the whole segment must reach the
      threshold reliability of its total work,
      [ε_s(f)² ≤ ε(f_rel, W_s)].

    Task-level re-execution is the special case "checkpoint after every
    task" with [c_w = 0]; positive [c_w] creates the classic
    granularity trade-off: long segments amortise checkpoint cost but
    must re-execute more work and need faster (costlier) speeds.

    The optimiser sweeps a grid of common speed levels; for each level
    the optimal segmentation is an interval DP over the chain
    (O(n²) per level). *)

type segmentation = int list
(** Segment lengths, in chain order; they sum to [n]. *)

type solution = {
  segments : segmentation;
  speeds : (float[@units "freq"]) array;  (** one speed per segment *)
  energy : (float[@units "energy"]);
      (** worst case: both attempts of every segment *)
  time : (float[@units "time"]);  (** worst-case chain time *)
}

val segment_floor :
  rel:Rel.params -> work:(float[@units "work"]) -> (float[@units "freq"]) option
(** Minimum speed at which two attempts of a segment with total work
    [work] satisfy the segment reliability constraint.

    @raise Invalid_argument if a root-bracketing step finds no sign change (degenerate reliability or speed bounds). *)

val evaluate :
  rel:Rel.params ->
  checkpoint_work:(float[@units "work"]) ->
  deadline:(float[@units "time"]) ->
  weights:(float[@units "work"]) array ->
  segmentation ->
  solution option
(** Optimal speeds (waterfilling with per-segment floors) for a given
    segmentation; [None] when infeasible or when the lengths do not
    partition the chain.

    @raise Invalid_argument if a root-bracketing step finds no sign change (degenerate reliability or speed bounds). *)

val solve :
  ?speed_grid:int ->
  rel:Rel.params ->
  checkpoint_work:(float[@units "work"]) ->
  deadline:(float[@units "time"]) ->
  weights:(float[@units "work"]) array ->
  solution option
(** Best segmentation over a grid of [speed_grid] (default 64) common
    speed levels: per level, an interval DP picks the
    minimum-"energy at that level" segmentation, then {!evaluate}
    re-optimises its speeds exactly.  Returns the cheapest feasible
    result.

    @raise Invalid_argument if a root-bracketing step finds no sign change (degenerate reliability or speed bounds). *)

val reexec_equivalent :
  rel:Rel.params ->
  deadline:(float[@units "time"]) ->
  weights:(float[@units "work"]) array ->
  solution option
(** The degenerate comparison point: one task per segment and zero
    checkpoint cost — numerically equal to
    {!Tricrit_chain.evaluate_subset} with every task re-executed.

    @raise Invalid_argument if a root-bracketing step finds no sign change (degenerate reliability or speed bounds). *)
