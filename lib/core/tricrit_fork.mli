(** TRI-CRIT on a fork graph — the polynomial case (Section III).

    For a fork (source [T₀], children [T₁ … Tₙ] on their own
    processors) the paper gives a polynomial-time algorithm based on an
    observation opposite to the chain strategy: {e highly
    parallelizable tasks should be preferred when allocating time slots
    for re-execution or deceleration}.  Structurally, once the time
    window is split between the source ([\[0, t₀\]]) and the children
    ([\[t₀, D\]]), every child decides {e independently} whether to
    re-execute — children only interact through [t₀].  The algorithm
    is therefore a one-dimensional search over [t₀] with an O(1)
    optimal decision per task inside a given window. *)

type decision = {
  reexec : bool;
  speed : (float[@units "freq"]);
      (** common speed of the one or two executions *)
  energy : (float[@units "energy"]);
}

val best_in_window :
  rel:Rel.params ->
  w:(float[@units "work"]) ->
  window:(float[@units "time"]) ->
  decision option
(** Cheapest feasible way to run a task of weight [w] inside a time
    window: once at [max(f_rel, w/window)] or twice at
    [max(f_lo, 2w/window)], whichever is cheaper; [None] when neither
    fits below [fmax].  This is the per-child oracle.

    @raise Invalid_argument if a root-bracketing step finds no sign change (degenerate reliability or speed bounds). *)

type solution = {
  schedule : Schedule.t;
  energy : (float[@units "energy"]);
  reexecuted : bool array;
  source_window : (float[@units "time"]);  (** the optimised [t₀] *)
}

val solve :
  ?grid:int ->
  rel:Rel.params ->
  deadline:(float[@units "time"]) ->
  Dag.t ->
  solution option
(** The fork algorithm.  The DAG must be a fork with task 0 as the
    source (as produced by {!Generators.fork}); the mapping used is one
    task per processor.  [grid] (default 512) is the resolution of the
    coarse scan over [t₀], refined by golden-section search around the
    best cell.  @raise Invalid_argument if the DAG is not a fork. *)
