(** Replication as an alternative to re-execution (Section V).

    The paper's future-work section proposes combining {e replication}
    (run the task simultaneously on a second processor; same energy
    doubling and the same [ε²] reliability gain as re-execution, but
    {e no} extra time on the critical path) with re-execution, and asks
    for the best trade-off.  This module studies the cleanest setting
    exhibiting the trade-off — a linear chain on one processor with one
    idle mirror processor — which experiment E12 sweeps.

    Per task the three options are:

    - [Single]:     time [w/f],  energy [w·f²],  needs [f ≥ f_rel];
    - [Reexecute]:  time [2w/f], energy [2w·f²], needs [f ≥ f_lo];
    - [Replicate]:  time [w/f],  energy [2w·f²], needs [f ≥ f_lo]
      (the replica occupies the mirror exactly while the primary runs,
      so chain tasks never contend for it).

    Given the per-task choices, optimal speeds again come from a
    waterfilling, now with option-dependent time/energy coefficients:
    the KKT condition gives [fᵢ = κᵢ·f_c] with [κᵢ = (Tᵢ/Eᵢ)^{1/3}] —
    replicated tasks run a factor [2^{-1/3}] slower than the common
    level, which is where their extra energy is clawed back. *)

type kind = Single | Reexecute | Replicate

type solution = {
  kinds : kind array;
  speeds : (float[@units "freq"]) array;
  energy : (float[@units "energy"]);
  time : (float[@units "time"]);
      (** worst-case chain time (= mirror-feasible) *)
}

val evaluate :
  rel:Rel.params ->
  deadline:(float[@units "time"]) ->
  weights:(float[@units "work"]) array ->
  kinds:kind array ->
  solution option
(** Optimal speeds for fixed per-task choices via the generalised
    waterfilling; [None] when infeasible.

    @raise Invalid_argument if a root-bracketing step finds no sign change (degenerate reliability or speed bounds). *)

val solve_exact :
  ?max_n:int ->
  rel:Rel.params ->
  deadline:(float[@units "time"]) ->
  weights:(float[@units "work"]) array ->
  solution option
(** Enumerate all [3ⁿ] option vectors (guard [max_n], default 12).

    @raise Invalid_argument if the instance exceeds the exhaustive-search size bound. *)

val solve_greedy :
  rel:Rel.params ->
  deadline:(float[@units "time"]) ->
  weights:(float[@units "work"]) array ->
  solution option
(** Local search over per-task option toggles, mirroring
    {!Tricrit_chain.solve_greedy}.

    @raise Invalid_argument if a root-bracketing step finds no sign change (degenerate reliability or speed bounds). *)

val reexec_only :
  rel:Rel.params ->
  deadline:(float[@units "time"]) ->
  weights:(float[@units "work"]) array ->
  solution option
(** Best solution with [Replicate] forbidden — the comparison baseline
    showing what the mirror processor buys.

    @raise Invalid_argument if a root-bracketing step finds no sign change (degenerate reliability or speed bounds). *)

val kind_name : kind -> string
