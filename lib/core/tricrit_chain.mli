(** TRI-CRIT on a linear chain mapped to one processor (Section III).

    This is the setting of the paper's sharpest negative and positive
    results: the problem is {e NP-hard already here} (choosing the
    subset of re-executed tasks has knapsack structure), yet the
    optimal strategy has a clean shape — {e "first slow the execution
    of all tasks equally, then choose the tasks to be re-executed"}.

    Concretely: once the re-executed subset [S] is fixed, the optimal
    speeds are a waterfilling — every execution of every task runs at a
    common speed [f_c], clamped from below by the per-task reliability
    floor ([f_rel] for single execution, the equal-speed re-execution
    floor {!Rel.min_reexec_speed} for tasks in [S]).  This module
    implements that characterisation, an exact exponential search over
    [S] for small chains, and the greedy subset selection used on long
    chains. *)

type solution = {
  schedule : Schedule.t;
  energy : (float[@units "energy"]);
  reexecuted : bool array;  (** the chosen subset [S] *)
}

val waterfill :
  eff_weights:(float[@units "work"]) array ->
  floors:(float[@units "freq"]) array ->
  fmax:(float[@units "freq"]) ->
  deadline:(float[@units "time"]) ->
  (float[@units "freq"]) array option
(** The "slow everything equally" step: minimise [Σ Wᵢ·fᵢ²] subject to
    [Σ Wᵢ/fᵢ ≤ D] and [floorᵢ ≤ fᵢ ≤ fmax].  The optimum sets
    [fᵢ = max(f_c, floorᵢ)] for a common level [f_c] (KKT); [f_c] is
    found by bisection on the total-time curve.  [None] when even
    all-[fmax] misses [D].

    @raise Invalid_argument if an argument violates a documented precondition. *)

val evaluate_subset :
  rel:Rel.params ->
  deadline:(float[@units "time"]) ->
  Mapping.t ->
  subset:bool array ->
  solution option
(** Optimal schedule given the re-execution subset: effective weight
    [2wᵢ] and floor [max(fmin, min_reexec_speed)] for tasks in the
    subset, weight [wᵢ] and floor [max(fmin, f_rel)] otherwise, then
    {!waterfill}.  [None] if infeasible (deadline too tight for this
    subset, or a task in the subset cannot meet the reliability
    constraint even at [fmax]).

    @raise Invalid_argument if the mapping is not a single-processor chain. *)

val solve_exact :
  ?max_n:int ->
  rel:Rel.params ->
  deadline:(float[@units "time"]) ->
  Mapping.t ->
  solution option
(** Exhaustive minimum over all [2ⁿ] subsets.  @raise Invalid_argument
    when the chain is longer than [max_n] (default 20). *)

val solve_greedy :
  rel:Rel.params -> deadline:(float[@units "time"]) -> Mapping.t -> solution option
(** Greedy subset construction: starting from [S = ∅], repeatedly add
    (or drop) the task whose toggle decreases energy the most, until a
    local minimum.  Polynomial ([O(n²)] waterfills) and, in the
    experiments, within a fraction of a percent of {!solve_exact}.

    @raise Invalid_argument if the mapping is not a single-processor chain. *)

val no_reexecution :
  rel:Rel.params -> deadline:(float[@units "time"]) -> Mapping.t -> solution option
(** The BI-CRIT-with-floor baseline ([S = ∅]): every task once, at
    least at [f_rel].  The gap to {!solve_greedy} is the energy that
    re-execution reclaims (experiment E6).

    @raise Invalid_argument if the mapping is not a single-processor chain. *)

val solve_dp :
  ?buckets:int ->
  rel:Rel.params ->
  deadline:(float[@units "time"]) ->
  Mapping.t ->
  solution option
(** Pseudo-polynomial knapsack DP over the chain's slack budget — the
    algorithmic counterpart of the NP-hardness proof's structure.  In
    the loose-deadline regime every execution sits on its reliability
    floor, so choosing the re-executed subset is exactly a knapsack:
    item cost [2wᵢ/f_loᵢ − wᵢ/f_rel] (extra chain time), item value
    [wᵢ(f_rel² − 2f_loᵢ²)] (energy saved), budget [D − Σ wᵢ/f_rel].
    The DP discretises the budget into [buckets] (default 512) slices,
    rounding item costs {e up} so the selected subset is always
    feasible, and finishes with the exact waterfilling on the selected
    subset.  Outside the loose regime it is a heuristic (the greedy and
    exact solvers remain the references).

    @raise Invalid_argument if the mapping is not a single-processor chain. *)
