type solution = {
  schedule : Schedule.t;
  energy : float;
  reexecuted : bool array;
}

let waterfill ~eff_weights ~floors ~fmax ~deadline =
  let n = Array.length eff_weights in
  assert (Array.length floors = n);
  let time_at fc =
    let acc = ref 0. in
    for i = 0 to n - 1 do
      acc := !acc +. (eff_weights.(i) /. Float.max fc floors.(i))
    done;
    !acc
  in
  if Array.exists (fun fl -> fl > fmax *. (1. +. 1e-12)) floors then None
  else if time_at fmax > deadline *. (1. +. 1e-9) then None
  else begin
    let speeds_of fc = Array.init n (fun i -> Float.min fmax (Float.max fc floors.(i))) in
    if time_at 0. <= deadline then Some (speeds_of 0.)
    else begin
      (* time_at is continuous, strictly decreasing where active;
         bracket [0, fmax] contains the crossing. *)
      let fc =
        Es_numopt.Scalar.root_monotone ~tol:1e-14
          ~f:(fun fc -> time_at fc -. deadline)
          ~lo:0. ~hi:fmax
      in
      Some (speeds_of fc)
    end
  end

let c_subsets = Es_obs.Obs.counter "tricrit_chain_subsets"

let chain_tasks mapping =
  if Mapping.p mapping <> 1 then
    invalid_arg "Tricrit_chain: mapping must use a single processor";
  Array.of_list (Mapping.order mapping 0)

let evaluate_subset ~rel ~deadline mapping ~subset =
  Es_obs.Obs.incr c_subsets;
  let dag = Mapping.dag mapping in
  let tasks = chain_tasks mapping in
  let n = Array.length tasks in
  assert (Array.length subset = Dag.n dag);
  let exception Cannot in
  match
    Array.init n (fun pos ->
        let i = tasks.(pos) in
        let w = Dag.weight dag i in
        if subset.(i) then begin
          match Rel.min_reexec_speed rel ~w with
          | None -> raise Cannot
          | Some flo -> (2. *. w, Float.max rel.Rel.fmin flo)
        end
        else (w, Float.max rel.Rel.fmin rel.Rel.frel))
  with
  | exception Cannot -> None
  | profile ->
    let eff_weights = Array.map fst profile and floors = Array.map snd profile in
    (match waterfill ~eff_weights ~floors ~fmax:rel.Rel.fmax ~deadline with
    | None -> None
    | Some speeds ->
      let executions = Array.make (Dag.n dag) [] in
      Array.iteri
        (fun pos i ->
          let w = Dag.weight dag i in
          let f = speeds.(pos) in
          let part = { Schedule.speed = f; time = w /. f } in
          executions.(i) <- (if subset.(i) then [ [ part ]; [ part ] ] else [ [ part ] ]))
        tasks;
      let schedule = Schedule.make mapping ~executions in
      Some { schedule; energy = Schedule.energy schedule; reexecuted = Array.copy subset })

let no_reexecution ~rel ~deadline mapping =
  let subset = Array.make (Dag.n (Mapping.dag mapping)) false in
  evaluate_subset ~rel ~deadline mapping ~subset

let solve_exact ?(max_n = 20) ~rel ~deadline mapping =
  let dag = Mapping.dag mapping in
  let n = Dag.n dag in
  if n > max_n then
    invalid_arg (Printf.sprintf "Tricrit_chain.solve_exact: n = %d > %d" n max_n);
  let best = ref None in
  let subset = Array.make n false in
  let consider () =
    match evaluate_subset ~rel ~deadline mapping ~subset with
    | None -> ()
    | Some sol -> (
      match !best with
      | Some b when b.energy <= sol.energy -> ()
      | _ -> best := Some sol)
  in
  let rec enum i =
    if i = n then consider ()
    else begin
      subset.(i) <- false;
      enum (i + 1);
      subset.(i) <- true;
      enum (i + 1);
      subset.(i) <- false
    end
  in
  enum 0;
  !best

let solve_greedy ~rel ~deadline mapping =
  let dag = Mapping.dag mapping in
  let n = Dag.n dag in
  let subset = Array.make n false in
  let current = ref (evaluate_subset ~rel ~deadline mapping ~subset) in
  (* When the deadline is too tight even for S = ∅ the instance is
     infeasible: adding re-executions only lengthens the chain. *)
  match !current with
  | None -> None
  | Some _ ->
    let improved = ref true in
    while !improved do
      improved := false;
      let best_toggle = ref None in
      for i = 0 to n - 1 do
        subset.(i) <- not subset.(i);
        (match (evaluate_subset ~rel ~deadline mapping ~subset, !current) with
        | Some cand, Some cur when cand.energy < cur.energy -. 1e-12 -> (
          match !best_toggle with
          | Some (_, e) when e <= cand.energy -> ()
          | _ -> best_toggle := Some (i, cand.energy))
        | _ -> ());
        subset.(i) <- not subset.(i)
      done;
      match !best_toggle with
      | Some (i, _) ->
        subset.(i) <- not subset.(i);
        current := evaluate_subset ~rel ~deadline mapping ~subset;
        improved := true
      | None -> ()
    done;
    !current

let solve_dp ?(buckets = 512) ~rel ~deadline mapping =
  let dag = Mapping.dag mapping in
  let tasks = chain_tasks mapping in
  let n = Array.length tasks in
  let frel_floor = Float.max rel.Rel.fmin rel.Rel.frel in
  let base_time =
    Es_util.Futil.sum (Array.map (fun i -> Dag.weight dag i /. frel_floor) tasks)
  in
  let budget = deadline -. base_time in
  if budget <= 0. then
    (* no loose slack: the knapsack view is void, defer to greedy *)
    solve_greedy ~rel ~deadline mapping
  else begin
    (* knapsack items: only tasks whose floor-level re-execution saves
       energy *)
    let items =
      Array.to_list tasks
      |> List.filter_map (fun i ->
             let w = Dag.weight dag i in
             match Rel.min_reexec_speed rel ~w with
             | None -> None
             | Some flo ->
               let flo = Float.max flo rel.Rel.fmin in
               let saving = w *. ((frel_floor *. frel_floor) -. (2. *. flo *. flo)) in
               let cost = (2. *. w /. flo) -. (w /. frel_floor) in
               if saving > 0. && cost > 0. then Some (i, cost, saving) else None)
    in
    let unit = budget /. float_of_int buckets in
    (* cost in slices, rounded up: the chosen set never overruns the
       true budget *)
    let slice c = int_of_float (Float.ceil (c /. unit -. 1e-12)) in
    let value = Array.make (buckets + 1) 0. in
    let chosen = Array.make (buckets + 1) [] in
    List.iter
      (fun (i, cost, saving) ->
        let k = slice cost in
        if k <= buckets then
          for b = buckets downto k do
            let cand = value.(b - k) +. saving in
            if cand > value.(b) then begin
              value.(b) <- cand;
              chosen.(b) <- i :: chosen.(b - k)
            end
          done)
      items;
    let best_b = ref 0 in
    for b = 1 to buckets do
      if value.(b) > value.(!best_b) then best_b := b
    done;
    let subset = Array.make n false in
    List.iter (fun i -> subset.(i) <- true) chosen.(!best_b);
    match evaluate_subset ~rel ~deadline mapping ~subset with
    | Some sol -> Some sol
    | None ->
      (* can only happen through discretisation corner cases *)
      no_reexecution ~rel ~deadline mapping
  end
