type solution = {
  schedule : Schedule.t;
  energy : float;
  reexecuted : bool array;
}

(* Effective weight and reliability floor of each task for a given
   re-execution subset; None if some re-executed task cannot meet the
   constraint at any speed. *)
let profile ~rel dag subset =
  let n = Dag.n dag in
  let exception Cannot in
  match
    Array.init n (fun i ->
        let w = Dag.weight dag i in
        if subset.(i) then begin
          match Rel.min_reexec_speed rel ~w with
          | None -> raise Cannot
          | Some flo -> (2. *. w, Float.max rel.Rel.fmin flo)
        end
        else (w, Float.max rel.Rel.fmin rel.Rel.frel))
  with
  | profile -> Some profile
  | exception Cannot -> None

let evaluate_subset ?tol ~rel ~deadline mapping ~subset =
  let dag = Mapping.dag mapping in
  match profile ~rel dag subset with
  | None -> None
  | Some prof ->
    let eff = Array.map fst prof and lo = Array.map snd prof in
    let hi = Array.make (Dag.n dag) rel.Rel.fmax in
    (match Bicrit_continuous.solve_general ~eff_weights:eff ~lo ~hi ?tol ~deadline mapping with
    | None -> None
    | Some { speeds; _ } ->
      let executions =
        Array.init (Dag.n dag) (fun i ->
            let w = Dag.weight dag i in
            let part = { Schedule.speed = speeds.(i); time = w /. speeds.(i) } in
            if subset.(i) then [ [ part ]; [ part ] ] else [ [ part ] ])
      in
      let schedule = Schedule.make mapping ~executions in
      Some { schedule; energy = Schedule.energy schedule; reexecuted = Array.copy subset })

let baseline ~rel ~deadline mapping =
  evaluate_subset ~rel ~deadline mapping
    ~subset:(Array.make (Dag.n (Mapping.dag mapping)) false)

(* ---- family A: chain-oriented ------------------------------------ *)

let chain_oriented ~rel ~deadline mapping =
  let dag = Mapping.dag mapping in
  let n = Dag.n dag in
  match baseline ~rel ~deadline mapping with
  | None -> None
  | Some base ->
    let base_speed i =
      match Schedule.executions base.schedule i with
      | [ p ] :: _ -> p.Schedule.speed
      | _ -> rel.Rel.frel
    in
    (* optimistic gain of re-executing i: pay 2w·f_lo² instead of the
       current w·f² *)
    let gains =
      Array.init n (fun i ->
          let w = Dag.weight dag i in
          match Rel.min_reexec_speed rel ~w with
          | None -> (i, neg_infinity)
          | Some flo ->
            let flo = Float.max flo rel.Rel.fmin in
            let f = base_speed i in
            (i, (w *. f *. f) -. (2. *. w *. flo *. flo)))
    in
    let ranked =
      gains |> Array.to_list
      |> List.filter (fun (_, g) -> g > 0.)
      |> List.sort (fun (_, a) (_, b) -> Float.compare b a)
      |> List.map fst |> Array.of_list
    in
    let subset_of_prefix k =
      let s = Array.make n false in
      for j = 0 to k - 1 do
        s.(ranked.(j)) <- true
      done;
      s
    in
    (* candidate probes run at a loose duality gap; the winner is
       re-evaluated at full precision below *)
    let evaluate k =
      evaluate_subset ~tol:1e-4 ~rel ~deadline mapping ~subset:(subset_of_prefix k)
    in
    let consider (bk, bsol) k =
      match evaluate k with
      | Some sol when sol.energy < bsol.energy -> (k, sol)
      | _ -> (bk, bsol)
    in
    let m = Array.length ranked in
    (* doubling scan over prefix sizes *)
    let probes =
      let rec doubling k acc = if k > m then acc else doubling (2 * k) (k :: acc) in
      List.sort_uniq Int.compare (m :: doubling 1 [])
    in
    let bk, bsol = List.fold_left consider (0, base) probes in
    (* local refinement around the best prefix *)
    let around = List.filter (fun k -> k >= 0 && k <= m) [ bk - 2; bk - 1; bk + 1; bk + 2 ] in
    let bk, best = List.fold_left consider (bk, bsol) around in
    (* polish the winning subset at full precision *)
    (match evaluate_subset ~rel ~deadline mapping ~subset:(subset_of_prefix bk) with
    | Some polished when polished.energy <= best.energy +. 1e-9 -> Some polished
    | _ -> Some best)

(* ---- family B: parallel-oriented --------------------------------- *)

let parallel_oriented ~rel ~deadline mapping =
  let dag = Mapping.dag mapping in
  let cdag = Mapping.constraint_dag mapping in
  let n = Dag.n dag in
  let frel_floor = Float.max rel.Rel.frel rel.Rel.fmin in
  let base_durations = Array.init n (fun i -> Dag.weight dag i /. frel_floor) in
  if Dag.critical_path_length cdag ~durations:base_durations > deadline *. (1. +. 1e-9)
  then
    (* not even the all-frel single-execution schedule fits: fall back
       to the baseline (which may speed tasks up beyond frel) *)
    baseline ~rel ~deadline mapping
  else begin
    let slack0 = Dag.slack cdag ~durations:base_durations ~deadline in
    let floor_of i =
      Option.map (Float.max rel.Rel.fmin) (Rel.min_reexec_speed rel ~w:(Dag.weight dag i))
    in
    let candidates =
      List.init n Fun.id
      |> List.filter (fun i -> floor_of i <> None)
      |> List.sort (fun a b -> Float.compare slack0.(b) slack0.(a))
    in
    let durations = Array.copy base_durations in
    let subset = Array.make n false in
    List.iter
      (fun i ->
        let w = Dag.weight dag i in
        match floor_of i with
        | None -> ()
        | Some flo ->
          (* Re-execute within the float currently available to the
             task: the speed is the slowest that both fits the float
             and respects the reliability floor.  Accept only when it
             beats the single execution at frel (2f² < f_rel²) and the
             critical path indeed stays within the deadline. *)
          let slack = Dag.slack cdag ~durations ~deadline in
          let avail = durations.(i) +. Float.max 0. slack.(i) in
          let f = Float.max flo (2. *. w /. avail) in
          if
            f <= rel.Rel.fmax
            && 2. *. f *. f < frel_floor *. frel_floor
          then begin
            let saved = durations.(i) in
            durations.(i) <- 2. *. w /. f;
            if Dag.critical_path_length cdag ~durations <= deadline *. (1. +. 1e-12)
            then subset.(i) <- true
            else durations.(i) <- saved
          end)
      candidates;
    match evaluate_subset ~rel ~deadline mapping ~subset with
    | Some sol -> Some sol
    | None -> baseline ~rel ~deadline mapping
  end

type winner = Chain_oriented | Parallel_oriented | Baseline_only

let best_of ~rel ~deadline mapping =
  let cands =
    [
      (Baseline_only, baseline ~rel ~deadline mapping);
      (Chain_oriented, chain_oriented ~rel ~deadline mapping);
      (Parallel_oriented, parallel_oriented ~rel ~deadline mapping);
    ]
  in
  List.fold_left
    (fun acc (who, sol) ->
      match (acc, sol) with
      | None, Some s -> Some (s, who)
      | Some (b, _), Some s when s.energy < b.energy -. 1e-12 -> Some (s, who)
      | acc, _ -> acc)
    None cands

let winner_name = function
  | Chain_oriented -> "chain-oriented"
  | Parallel_oriented -> "parallel-oriented"
  | Baseline_only -> "baseline"

let local_search ?(sweeps = 2) ?(max_candidates = 20) ~rel ~deadline mapping start =
  let dag = Mapping.dag mapping in
  let n = Dag.n dag in
  let frel_floor = Float.max rel.Rel.fmin rel.Rel.frel in
  (* rank toggle candidates by the optimistic gain of flipping them *)
  let gain i currently_reexec =
    let w = Dag.weight dag i in
    match Rel.min_reexec_speed rel ~w with
    | None -> neg_infinity
    | Some flo ->
      let flo = Float.max flo rel.Rel.fmin in
      let g = (w *. frel_floor *. frel_floor) -. (2. *. w *. flo *. flo) in
      if currently_reexec then -.g else g
  in
  let current = ref start in
  let continue = ref true in
  let sweep = ref 0 in
  while !continue && !sweep < sweeps do
    incr sweep;
    continue := false;
    let subset = Array.copy !current.reexecuted in
    let candidates =
      List.init n Fun.id
      |> List.map (fun i -> (i, Float.abs (gain i subset.(i))))
      |> List.filter (fun (_, g) -> Float.is_finite g)
      |> List.sort (fun (_, a) (_, b) -> Float.compare b a)
      |> List.filteri (fun k _ -> k < max_candidates)
      |> List.map fst
    in
    let best_toggle = ref None in
    List.iter
      (fun i ->
        subset.(i) <- not subset.(i);
        (match evaluate_subset ~tol:1e-4 ~rel ~deadline mapping ~subset with
        | Some cand when cand.energy < !current.energy -. 1e-9 -> (
          match !best_toggle with
          | Some (_, e) when e <= cand.energy -> ()
          | _ -> best_toggle := Some (i, cand.energy))
        | _ -> ());
        subset.(i) <- not subset.(i))
      candidates;
    match !best_toggle with
    | None -> ()
    | Some (i, _) -> (
      subset.(i) <- not subset.(i);
      (* accept at full precision *)
      match evaluate_subset ~rel ~deadline mapping ~subset with
      | Some sol when sol.energy < !current.energy -. 1e-12 ->
        current := sol;
        continue := true
      | _ -> subset.(i) <- not subset.(i))
  done;
  !current

let best_of_refined ~rel ~deadline mapping =
  match best_of ~rel ~deadline mapping with
  | None -> None
  | Some (sol, who) -> Some (local_search ~rel ~deadline mapping sol, who)
