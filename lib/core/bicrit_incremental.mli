(** BI-CRIT under the INCREMENTAL model and its approximation guarantee
    (Section IV of the paper).

    The INCREMENTAL model restricts speeds to the regular grid
    [fmin + i·δ].  BI-CRIT stays NP-complete (it contains DISCRETE),
    but the paper shows it is approximable within
    [(1 + δ/fmin)²·(1 + 1/K)²] in time polynomial in the instance and
    in [K]: solve the CONTINUOUS relaxation to accuracy [(1 + 1/K)]
    and round every speed up to the next grid point — rounding
    multiplies each speed by at most [(1 + δ/fmin)], hence the energy
    by its square, and keeps the schedule feasible because durations
    only shrink.

    Our continuous solver is numerically near-exact, so the measured
    ratio in experiment E4 is compared against the [(1 + δ/fmin)²]
    factor alone. *)

val approximate :
  deadline:(float[@units "time"]) ->
  fmin:(float[@units "freq"]) ->
  fmax:(float[@units "freq"]) ->
  delta:(float[@units "freq"]) ->
  Mapping.t ->
  Schedule.t option
(** Continuous solve + grid round-up.  [None] when the continuous
    relaxation is infeasible (then the INCREMENTAL instance is too).

    @raise Invalid_argument on a schedule whose executions disagree with the mapping (length mismatch or empty execution list). *)

val bound :
  fmin:(float[@units "freq"]) ->
  delta:(float[@units "freq"]) ->
  k:int option ->
  (float[@units "dimensionless"])
(** The paper's ratio: [(1 + δ/fmin)²] times [(1 + 1/K)²] when
    [k = Some K] (accounting for an approximate continuous solve),
    without it when [None]. *)

val grid :
  fmin:(float[@units "freq"]) ->
  fmax:(float[@units "freq"]) ->
  delta:(float[@units "freq"]) ->
  (float[@units "freq"]) array
(** The admissible speed set of the model (exposed for reuse by the
    DISCRETE solvers in experiments).

    @raise Invalid_argument unless [delta > 0]. *)
