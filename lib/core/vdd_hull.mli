(** The convex-hull view of VDD-HOPPING — why two speeds suffice, and a
    closed form for chains.

    Executing one unit of work with inverse speed [u = 1/f] costs [u⁻²]
    energy; the admissible operating points of a VDD-HOPPING processor
    are the level points [(1/fₖ, fₖ²)] and, by time-sharing, their
    convex combinations.  Because [u ↦ u⁻²] is strictly convex, every
    level point is a vertex of the lower hull, so the reachable
    energy-per-work function [g(u)] is the piecewise-linear
    interpolation between {e consecutive} levels — which is exactly the
    paper's statement (Section IV) that an optimal execution mixes at
    most two consecutive speeds.

    The hull also yields a closed form on chains: minimising
    [Σ wᵢ·g(uᵢ)] under [Σ wᵢ·uᵢ = D] with convex [g] has, by Jensen's
    inequality, the uniform optimum [uᵢ = D/W], so

    {v E_chain = W · g(D / W),   W = Σ wᵢ v}

    This module computes [g], the closed form, and the corresponding
    two-speed schedule, all cross-validated against the LP solver in
    the test suite. *)

val energy_per_work :
  levels:(float[@units "freq"]) array ->
  (float[@units "1/freq"]) ->
  (float[@units "freq^2"])
(** [energy_per_work ~levels u] is [g(u)]: the cheapest energy to
    process one unit of work in time [u] per unit.  Outside
    [\[1/fmax, 1/fmin\]] the value is [infinity] (too fast) or the
    [fmin] point's cost (slower brings no gain — the processor can
    finish early). *)

val bracket_for_time :
  levels:(float[@units "freq"]) array ->
  (float[@units "1/freq"]) ->
  ((float[@units "freq"]) * (float[@units "freq"])) option
(** The two consecutive levels whose mix realises inverse speed [u];
    [None] when [u < 1/fmax]. *)

val chain_energy :
  levels:(float[@units "freq"]) array ->
  total_weight:(float[@units "work"]) ->
  deadline:(float[@units "time"]) ->
  (float[@units "energy"]) option
(** The closed form [W·g(D/W)]; [None] when even [fmax] misses the
    deadline. *)

val chain_schedule :
  levels:(float[@units "freq"]) array ->
  deadline:(float[@units "time"]) ->
  Mapping.t ->
  Schedule.t option
(** Materialise the closed form on a single-processor chain mapping:
    every task runs the same two-speed mix.  @raise Invalid_argument if
    the mapping uses more than one processor. *)
