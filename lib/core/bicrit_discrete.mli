(** BI-CRIT under the DISCRETE model — the NP-complete case
    (Section IV of the paper).

    Each task runs at exactly one speed from the finite set; choosing
    the speeds to meet [D] at minimum energy is NP-complete (the paper
    reduces from 2-PARTITION; see {!Complexity}).  This module provides
    the two sides the reproduction needs:

    - an {e exact} branch-and-bound solver for small instances —
      depth-first over tasks in topological order, slowest level first,
      pruned by (a) a makespan bound with unassigned tasks at [fmax]
      and (b) an energy bound combining assigned energy with per-task
      speed floors derived from DAG slack; and
    - the {e round-up approximation}: solve the CONTINUOUS relaxation
      and round every speed to the next admissible level, which
      preserves feasibility (durations only shrink) and bounds the
      energy ratio by [max_k (f_{k+1}/f_k)²] — the scheme behind the
      paper's INCREMENTAL approximation guarantee. *)

type exact = {
  schedule : Schedule.t;
  energy : (float[@units "energy"]);
  nodes_explored : int;  (** search-tree size, reported by E5 *)
}

val solve_exact :
  ?node_limit:int ->
  deadline:(float[@units "time"]) ->
  levels:(float[@units "freq"]) array ->
  Mapping.t ->
  exact option
(** Optimal discrete speed assignment.  [None] when infeasible.
    @raise Failure when [node_limit] (default [50_000_000]) is hit —
    the instance is too large for exact search. *)

val round_up :
  deadline:(float[@units "time"]) ->
  levels:(float[@units "freq"]) array ->
  Mapping.t ->
  Schedule.t option
(** Continuous relaxation + per-task round-up.  [None] when the
    relaxation is infeasible or a rounded speed exceeds the largest
    level.

    @raise Invalid_argument on a schedule whose executions disagree with the mapping (length mismatch or empty execution list). *)

val ratio_bound : levels:(float[@units "freq"]) array -> (float[@units "dimensionless"])
(** The a-priori approximation ratio of {!round_up} on instances where
    no speed is clamped: [max_k (f_{k+1}/f_k)²]. *)
