(** TRI-CRIT heuristics for general DAGs under the CONTINUOUS model
    (Section III of the paper).

    The paper reports two complementary heuristic families, one derived
    from the linear-chain strategy ({e slow everything equally, then
    choose re-executions}) and one from the fork strategy ({e prefer
    highly-parallelizable tasks when allocating re-execution slots}),
    and observes that taking the best of the two wins across all
    instance classes.  This module implements both families and the
    best-of combiner; experiment E8 reproduces the complementarity
    claim.

    Both families share the same evaluation primitive: once the
    re-executed subset [S] is fixed, the optimal continuous speeds
    solve the convex program of {!Bicrit_continuous.solve_general} with
    effective weight [2wᵢ] and reliability floor
    {!Rel.min_reexec_speed} for tasks in [S], and weight [wᵢ] with
    floor [f_rel] otherwise. *)

type solution = {
  schedule : Schedule.t;
  energy : (float[@units "energy"]);
  reexecuted : bool array;
}

val evaluate_subset :
  ?tol:(float[@units "energy"]) ->
  rel:Rel.params ->
  deadline:(float[@units "time"]) ->
  Mapping.t ->
  subset:bool array ->
  solution option
(** Optimal speeds for a fixed re-execution subset (one barrier solve
    at duality gap [tol], default [1e-8]).  [None] when the subset does
    not fit the deadline or a task cannot meet reliability.

    @raise Invalid_argument on a schedule whose executions disagree with the mapping (length mismatch or empty execution list). *)

val baseline :
  rel:Rel.params -> deadline:(float[@units "time"]) -> Mapping.t -> solution option
(** No re-execution: BI-CRIT with a global [f_rel] floor.

    @raise Invalid_argument on a schedule whose executions disagree with the mapping (length mismatch or empty execution list). *)

val chain_oriented :
  rel:Rel.params -> deadline:(float[@units "time"]) -> Mapping.t -> solution option
(** Family A.  Rank tasks by the optimistic energy gain of
    re-execution ([wᵢfᵢ² − 2wᵢf_loᵢ²] at the baseline speeds), then
    search prefix sizes of that ranking (doubling scan plus local
    refinement, one subset evaluation per probe) and keep the best
    feasible subset.  Mirrors the chain strategy: re-execution is paid
    for by uniformly slowing the whole schedule.

    @raise Invalid_argument if a root-bracketing step finds no sign change (degenerate reliability or speed bounds). *)

val parallel_oriented :
  rel:Rel.params -> deadline:(float[@units "time"]) -> Mapping.t -> solution option
(** Family B.  Compute each task's float (slack) in the deadline-[D]
    schedule at speed [f_rel]; greedily re-execute tasks whose slack
    absorbs the extra execution time without moving the critical path,
    most-slack first; one final subset evaluation optimises the
    speeds.  Mirrors the fork strategy: re-executions go where
    parallelism makes them free.

    @raise Invalid_argument if a root-bracketing step finds no sign change (degenerate reliability or speed bounds). *)

type winner = Chain_oriented | Parallel_oriented | Baseline_only

val best_of :
  rel:Rel.params ->
  deadline:(float[@units "time"]) ->
  Mapping.t ->
  (solution * winner) option
(** The paper's headline combination: run both families (and the
    baseline) and keep the cheapest feasible schedule.

    @raise Invalid_argument on a schedule whose executions disagree with the mapping (length mismatch or empty execution list). *)

val winner_name : winner -> string
(** ["chain-oriented"], ["parallel-oriented"] or ["baseline"] — for
    reports. *)

val local_search :
  ?sweeps:int ->
  ?max_candidates:int ->
  rel:Rel.params ->
  deadline:(float[@units "time"]) ->
  Mapping.t ->
  solution ->
  solution
(** Single-task toggle descent seeded from an existing solution: in
    each sweep (default 2), try flipping the re-execution bit of up to
    [max_candidates] tasks (default 20, ranked by optimistic gain) and
    keep the best improvement; candidate probes run at a loose barrier
    tolerance and the final winner is re-evaluated at full precision.
    Never returns a worse solution.  Closes most of the gap the prefix
    structure of family A leaves on irregular DAGs (experiment E13).

    @raise Invalid_argument if a root-bracketing step finds no sign change (degenerate reliability or speed bounds). *)

val best_of_refined :
  rel:Rel.params ->
  deadline:(float[@units "time"]) ->
  Mapping.t ->
  (solution * winner) option
(** {!best_of} followed by {!local_search} on the winner.

    @raise Invalid_argument if a root-bracketing step finds no sign change (degenerate reliability or speed bounds). *)
