(** BI-CRIT under the VDD-HOPPING model — the polynomial-time case
    (Section IV of the paper).

    With a finite speed set [f₁ < … < fₘ] and hopping allowed inside a
    task, the problem "minimise [Σᵢₖ fₖ³·αᵢₖ] subject to work
    conservation [Σₖ fₖ·αᵢₖ = wᵢ], precedence and the deadline" is a
    linear program in the per-speed time shares [αᵢₖ] and the start
    times — which is the paper's proof that BI-CRIT ∈ P for
    VDD-HOPPING.  We build exactly that LP over the mapping's
    constraint DAG and solve it with our simplex.

    The classical structural result (R4) also holds here: some optimal
    solution uses at most two, consecutive, speeds per task —
    geometrically, the optimal energy/time trade-off lives on the lower
    convex hull of the points [(1/fₖ, fₖ²)]. *)

val lp :
  deadline:(float[@units "time"]) ->
  levels:(float[@units "freq"]) array ->
  Mapping.t ->
  Es_lp.Problem.t
(** The LP itself (objective and rows), exposed so that the
    verification subsystem can solve it and certify the result against
    the raw problem statement (primal/dual feasibility, complementary
    slackness) independently of this module. *)

val solve :
  deadline:(float[@units "time"]) ->
  levels:(float[@units "freq"]) array ->
  Mapping.t ->
  Schedule.t option
(** Solve the LP; [None] when even all-[fmax] misses the deadline
    (the LP is then infeasible).  Parts with negligible time share
    (< 1e-9 relative to the task duration) are dropped from the
    returned schedule.

    @raise Failure if an internal iteration or node budget is exhausted (e.g. the simplex pivot limit).
    @raise Invalid_argument if an argument violates a documented precondition. *)

val two_speed_support : levels:(float[@units "freq"]) array -> Schedule.t -> bool
(** Whether every task uses at most two distinct speeds, and those two
    are consecutive levels of [levels] — the property R4 asserts of an
    optimal basic solution. *)

val energy :
  deadline:(float[@units "time"]) ->
  levels:(float[@units "freq"]) array ->
  Mapping.t ->
  (float[@units "energy"]) option
(** Optimal objective value without materialising the schedule.

    @raise Failure if an internal iteration or node budget is exhausted (e.g. the simplex pivot limit). *)

val energy_sweep :
  ?warm:bool ->
  deadlines:(float[@units "time"]) array ->
  levels:(float[@units "freq"]) array ->
  Mapping.t ->
  (float[@units "energy"]) option array
(** {!energy} at each deadline, in order, re-optimising each LP from
    the previous deadline's optimal basis (the LPs differ only in
    their right-hand side).  [~warm:false] forces independent cold
    solves — same results, no basis reuse; the warm-invariance tests
    pin the two paths against each other point-for-point.

    @raise Failure if an internal iteration or node budget is exhausted (e.g. the simplex pivot limit). *)

val energy_with_deadline_price :
  deadline:(float[@units "time"]) ->
  levels:(float[@units "freq"]) array ->
  Mapping.t ->
  ((float[@units "energy"]) * (float[@units "power"])) option
(** [(E*, dE*/dD)]: the optimum together with the sum of the dual
    multipliers of the deadline rows — the marginal energy a tighter
    deadline would cost, i.e. the slope of the Pareto front at [D]
    (non-positive; experiment E17 cross-checks it against finite
    differences).

    @raise Failure if an internal iteration or node budget is exhausted (e.g. the simplex pivot limit). *)

val emulate_continuous :
  levels:(float[@units "freq"]) array ->
  speeds:(float[@units "freq"]) array ->
  Mapping.t ->
  Schedule.t option
(** The paper's bridge from CONTINUOUS results to VDD-HOPPING
    (Section IV, last paragraph): replace each continuous speed [f] by
    a mix of the two bracketing levels that preserves the execution
    time ([time-matching]: shares solve [α·f₋ + β·f₊ = w],
    [α + β = w/f]).  [None] if some speed falls outside the level
    range.

    @raise Invalid_argument on a schedule whose executions disagree with the mapping (length mismatch or empty execution list). *)
