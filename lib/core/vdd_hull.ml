let sorted_levels levels =
  let l = Array.copy levels in
  Array.sort Float.compare l;
  l

(* Hull points ordered by increasing u = 1/f: fastest level first. *)
let points levels =
  let l = sorted_levels levels in
  let m = Array.length l in
  Array.init m (fun i ->
      let f = l.(m - 1 - i) in
      (1. /. f, f *. f))

let bracket_for_time ~levels u =
  let pts = points levels in
  let m = Array.length pts in
  let u_min = fst pts.(0) and u_max = fst pts.(m - 1) in
  if u < u_min -. 1e-12 then None
  else if u >= u_max then begin
    (* slower than the slowest level: pad with idle time, run at fmin *)
    let f = sqrt (snd pts.(m - 1)) in
    Some (f, f)
  end
  else begin
    let k = ref 0 in
    while fst pts.(!k + 1) < u do
      incr k
    done;
    let f_hi = sqrt (snd pts.(!k)) and f_lo = sqrt (snd pts.(!k + 1)) in
    Some (f_lo, f_hi)
  end

let energy_per_work ~levels u =
  let pts = points levels in
  let m = Array.length pts in
  let u_min = fst pts.(0) and u_max = fst pts.(m - 1) in
  if u < u_min -. 1e-12 then infinity
  else if u >= u_max then snd pts.(m - 1)
  else begin
    let k = ref 0 in
    while fst pts.(!k + 1) < u do
      incr k
    done;
    let u0, e0 = pts.(!k) and u1, e1 = pts.(!k + 1) in
    if u1 -. u0 <= 1e-15 then e0
    else e0 +. ((e1 -. e0) *. (u -. u0) /. (u1 -. u0))
  end

let chain_energy ~levels ~total_weight ~deadline =
  let u = deadline /. total_weight in
  let g = energy_per_work ~levels u in
  if Float.is_finite g then Some (total_weight *. g) else None

let chain_schedule ~levels ~deadline mapping =
  if Mapping.p mapping <> 1 then
    invalid_arg "Vdd_hull.chain_schedule: single-processor mapping required";
  let dag = Mapping.dag mapping in
  let total_weight = Dag.total_weight dag in
  let u = deadline /. total_weight in
  match bracket_for_time ~levels u with
  | None -> None
  | Some (f_lo, f_hi) ->
    let executions =
      Array.init (Dag.n dag) (fun i ->
          let w = Dag.weight dag i in
          if Float.abs (f_hi -. f_lo) <= 1e-12 then
            [ [ { Schedule.speed = f_lo; time = w /. f_lo } ] ]
          else begin
            (* time-matching shares at inverse speed u, capped at the
               slow end: t_lo + t_hi = w·u', f_lo·t_lo + f_hi·t_hi = w *)
            let u' = Float.min u (1. /. f_lo) in
            let total = w *. u' in
            let t_hi = (w -. (f_lo *. total)) /. (f_hi -. f_lo) in
            let t_lo = total -. t_hi in
            [
              List.filter
                (fun (p : Schedule.part) -> p.time > 1e-12 *. total)
                [
                  { Schedule.speed = f_lo; time = t_lo };
                  { Schedule.speed = f_hi; time = t_hi };
                ];
            ]
          end)
    in
    Some (Schedule.make mapping ~executions)
