(** BI-CRIT under the CONTINUOUS model (Section III of the paper).

    Minimise [E = Σ wᵢ·fᵢ²] subject to the deadline [D], speeds free in
    [\[fmin, fmax\]], mapping given.  The paper provides closed forms
    for special structures — chains, forks (the theorem quoted in
    Section III) and series-parallel graphs — and reduces general DAGs
    to a geometric program; here the geometric program is solved by the
    log-barrier method of {!Es_numopt.Barrier} on the equivalent convex
    program over start times and durations.

    {!solve_general} is the workhorse shared with the TRI-CRIT
    heuristics: it accepts per-task {e effective} weights and speed
    bounds, which is exactly what re-execution decisions and
    reliability floors induce. *)

type result = {
  speeds : (float[@units "freq"]) array;  (** optimal speed per task *)
  energy : (float[@units "energy"]);  (** [Σ wᵢ·fᵢ²] *)
}

val chain :
  weights:(float[@units "work"]) array ->
  deadline:(float[@units "time"]) ->
  fmin:(float[@units "freq"]) ->
  fmax:(float[@units "freq"]) ->
  result option
(** Closed form for a linear chain on one processor: the unique KKT
    point runs every task at the common speed [Σw/D] (clamped to
    [fmin] from below).  [None] when even [fmax] misses the deadline. *)

val fork_speeds :
  root:(float[@units "work"]) ->
  children:(float[@units "work"]) array ->
  deadline:(float[@units "time"]) ->
  fmax:(float[@units "freq"]) ->
  result option
(** The paper's fork theorem.  With [W₃ = (Σ wᵢ³)^{1/3}]:
    [f₀ = (W₃ + w₀)/D] for the source and [fᵢ = f₀·wᵢ/W₃] for the
    children; if [f₀ > fmax] the source runs at [fmax] and the children
    at [wᵢ/(D − w₀/fmax)]; [None] when any child then still exceeds
    [fmax].  The returned speeds array is [\[|f₀; f₁; …; fₙ|\]]. *)

val fork_energy :
  root:(float[@units "work"]) ->
  children:(float[@units "work"]) array ->
  deadline:(float[@units "time"]) ->
  (float[@units "energy"])
(** The closed-form optimal energy
    [((Σ wᵢ³)^{1/3} + w₀)³ / D²] (valid when no speed is clamped). *)

val sp_equivalent_weight : Sp.t -> (float[@units "work"])
(** The SP recursion behind the closed forms: series composition adds
    equivalent weights, parallel composition combines them as
    [(W_A³ + W_B³)^{1/3}].  The optimal energy of an SP graph (each
    branch on its own processor, no speed bound binding) is
    [W_eq³/D²]. *)

val sp_speeds : Sp.t -> deadline:(float[@units "time"]) -> result
(** Closed-form optimal speeds for an SP graph, leaf order matching
    {!Sp.to_dag}: the root receives the full window [D], series nodes
    split their window proportionally to equivalent weights, parallel
    nodes share it.  Assumes no speed bound binds (the experiment
    checks this against {!solve}). *)

val solve_general :
  ?eff_weights:(float[@units "work"]) array ->
  ?lo:(float[@units "freq"]) array ->
  ?hi:(float[@units "freq"]) array ->
  ?tol:(float[@units "energy"]) ->
  deadline:(float[@units "time"]) ->
  Mapping.t ->
  result option
(** Barrier solve of the convex program over the mapping's constraint
    DAG: variables are durations [dᵢ] and start times [sᵢ], objective
    [Σ Wᵢ³/dᵢ²] with [Wᵢ] the effective weight (default: the task
    weight; pass [2wᵢ] to model an equal-speed re-execution), subject
    to precedence, deadline and per-task speed bounds [lo/hi]
    (defaults: none / ∞ — pass the model's [fmin]/[fmax]).

    Returns the optimal speed of each {e effective} task and the
    energy [Σ Wᵢ·fᵢ²], or [None] when running everything at [hi]
    already misses the deadline.  Accuracy is that of the barrier
    method: duality gap ≤ [tol] (default [1e-8]; the TRI-CRIT
    heuristics probe candidate subsets at a looser tolerance and only
    polish the winner at full precision).

    @raise Invalid_argument on a malformed task graph (nonpositive weight, out-of-range or self-loop edge, or cycle). *)

val solve :
  deadline:(float[@units "time"]) ->
  fmin:(float[@units "freq"]) ->
  fmax:(float[@units "freq"]) ->
  Mapping.t ->
  Schedule.t option
(** BI-CRIT on a mapped DAG: {!solve_general} with uniform bounds,
    packaged as a single-execution {!Schedule.t}.

    @raise Invalid_argument on a schedule whose executions disagree with the mapping (length mismatch or empty execution list). *)

val energy_lower_bound :
  deadline:(float[@units "time"]) ->
  fmin:(float[@units "freq"]) ->
  fmax:(float[@units "freq"]) ->
  Mapping.t ->
  (float[@units "energy"])
(** The continuous optimum — a valid lower bound for every model and
    for TRI-CRIT (re-executions only add energy), used to normalise
    heuristic results in the experiments.  Falls back to
    [Σ wᵢ·fmin²] when the instance is deadline-infeasible.

    @raise Invalid_argument on a malformed task graph (nonpositive weight, out-of-range or self-loop edge, or cycle). *)
