(** Exact TRI-CRIT CONTINUOUS on general (small) DAGs.

    The paper proves TRI-CRIT NP-hard and therefore evaluates
    heuristics; to *measure* heuristic quality the reproduction also
    needs ground truth on small instances.  This module provides it by
    exhausting the combinatorial dimension — the re-executed subset —
    and solving the remaining convex program exactly for each subset
    (one {!Heuristics.evaluate_subset} call, i.e. one barrier solve).

    Cost: [2ⁿ] convex solves.  A simple dominance prune cuts most
    subsets: if re-executing task [i] cannot pay for itself even at its
    reliability floor with unlimited time ([2wᵢ·f_loᵢ² ≥ wᵢ·f_rel²]),
    no optimal subset contains [i]. *)

type solution = Heuristics.solution

val solve :
  ?max_n:int ->
  rel:Rel.params ->
  deadline:(float[@units "time"]) ->
  Mapping.t ->
  solution option
(** Exact optimum.  @raise Invalid_argument when the number of
    {e candidate} tasks (after the dominance prune) exceeds [max_n]
    (default 12). *)

val candidates : rel:Rel.params -> Dag.t -> bool array
(** The dominance prune: [true] for tasks whose re-execution could ever
    reduce energy.

    @raise Invalid_argument if a root-bracketing step finds no sign change (degenerate reliability or speed bounds). *)

val heuristic_gap :
  ?max_n:int ->
  rel:Rel.params ->
  deadline:(float[@units "time"]) ->
  Mapping.t ->
  (float[@units "dimensionless"]) option
(** Convenience for experiment E13: energy(best-of heuristics) /
    energy(exact), [None] when the instance is infeasible.

    @raise Invalid_argument if the candidate set exceeds the exhaustive-search bound. *)
