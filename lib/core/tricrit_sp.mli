(** TRI-CRIT on series-parallel graphs: a structure-aware heuristic.

    The paper's future work asks for algorithms "only for special graph
    structures, e.g. series-parallel graphs" (Section V).  This module
    provides the natural generalisation of the fork algorithm to SP
    trees, combining the two proven building blocks:

    - the BI-CRIT equivalent-weight recursion
      ({!Bicrit_continuous.sp_equivalent_weight}) allocates the
      deadline window down the tree — series nodes split time
      proportionally to equivalent weight, parallel branches share it;
    - inside its window every leaf decides single vs. re-execution
      independently with the fork oracle
      ({!Tricrit_fork.best_in_window}).

    A final global convex solve ({!Heuristics.evaluate_subset}) then
    re-optimises all speeds for the selected subset, which both repairs
    the window approximation (window splits ignore that re-executed
    leaves double their work) and guarantees feasibility.  Experiment
    E18 compares this family "C" against families A/B and the exact
    optimum on SP instances. *)

type solution = Heuristics.solution

val decide_subset :
  rel:Rel.params -> deadline:(float[@units "time"]) -> Sp.t -> bool array
(** The window-allocation pass: re-execution decisions per leaf, in
    {!Sp.to_dag} leaf order.  Leaves whose window admits no feasible
    execution at all are marked [false] (the polish step will speed
    them up).

    @raise Invalid_argument if the mapping does not match the series-parallel tree shape. *)

val solve :
  rel:Rel.params -> deadline:(float[@units "time"]) -> Sp.t -> solution option
(** Decisions + global polish on the one-task-per-processor mapping of
    [Sp.to_dag].  Falls back to the empty subset if the decided subset
    does not fit.

    @raise Invalid_argument if the mapping does not match the series-parallel tree shape. *)
