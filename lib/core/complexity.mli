(** Constructive companions to the paper's complexity results.

    The paper's negative results are reductions; this module builds the
    corresponding instances so that the test suite can {e exercise}
    them: solving the constructed scheduling instance exactly answers
    the original combinatorial question.

    {b DISCRETE BI-CRIT is NP-complete (R5).}  From 2-PARTITION: given
    integers [a₁ … aₙ] of sum [S], build a chain of [n] tasks with
    weights [aᵢ] on one processor, speed set [{1, 2}], deadline
    [D = 3S/4] and energy threshold [E* = 5S/2].  Writing [S_A] for the
    total weight of tasks run at speed 1: the makespan is
    [S/2 + S_A/2 ≤ D ⟺ S_A ≤ S/2] and the energy is
    [4S − 3S_A ≤ E* ⟺ S_A ≥ S/2] — both hold iff [S_A = S/2], i.e. iff
    the multiset admits a perfect partition.

    {b TRI-CRIT is NP-hard on a chain (R7).}  In the loose-deadline
    regime (the common waterfilling level below every reliability
    floor), choosing the re-executed subset is exactly a knapsack:
    re-executing task [i] saves energy [sᵢ = wᵢ·(f_rel² − 2f_loᵢ²)]
    and costs extra time [cᵢ = 2wᵢ/f_loᵢ − wᵢ/f_rel] against the slack
    budget [B = D − Σ wᵢ/f_rel].  {!knapsack_view} extracts
    [(s, c, B)] and {!knapsack_optimal} solves it by enumeration so
    tests can confirm the equivalence with
    {!Tricrit_chain.solve_exact}. *)

type two_partition = {
  mapping : Mapping.t;  (** chain of the [aᵢ] on one processor *)
  levels : (float[@units "freq"]) array;  (** [{1, 2}] *)
  deadline : (float[@units "time"]);  (** [3S/4] *)
  energy_threshold : (float[@units "energy"]);  (** [5S/2] *)
}

val of_two_partition : int array -> two_partition
(** Build the reduction instance.  @raise Invalid_argument on an empty
    array or non-positive entries. *)

val decide_two_partition : int array -> bool
(** Answer 2-PARTITION by solving the reduced instance with
    {!Bicrit_discrete.solve_exact} and comparing to the threshold.
    Exponential in the worst case — for tests on small inputs.

    @raise Failure if the exact search exhausts its node budget.
    @raise Invalid_argument if an argument violates a documented precondition. *)

val two_partition_brute_force : int array -> bool
(** Direct subset enumeration, the test oracle. *)

type knapsack = {
  savings : (float[@units "energy"]) array;
      (** energy saved by re-executing each task *)
  costs : (float[@units "time"]) array;  (** extra chain time consumed *)
  budget : (float[@units "time"]);  (** available slack [D − Σ wᵢ/f_rel] *)
}

val knapsack_view :
  rel:Rel.params ->
  deadline:(float[@units "time"]) ->
  weights:(float[@units "work"]) array ->
  knapsack option
(** The knapsack structure of the loose-deadline chain (valid when
    every floor dominates the common level; [None] if some task cannot
    be re-executed at all).

    @raise Invalid_argument if a root-bracketing step finds no sign change (degenerate reliability or speed bounds). *)

val knapsack_optimal : knapsack -> bool array * (float[@units "energy"])
(** Enumerate subsets: maximise total saving within the budget.
    Returns the chosen subset and the saving. *)

val incremental_of_two_partition : int array -> two_partition
(** The same reduction targeted at the INCREMENTAL model: the speed set
    [{1, 2}] is the grid [fmin = 1, δ = 1, fmax = 2], so the instance
    witnesses NP-completeness of INCREMENTAL BI-CRIT as well (the paper
    derives DISCRETE hardness "and hence" INCREMENTAL).

    @raise Invalid_argument on an empty item list. *)
