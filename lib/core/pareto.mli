(** Energy/deadline trade-off exploration.

    BI-CRIT and TRI-CRIT are constrained formulations of an underlying
    multi-objective problem; sweeping the deadline exposes the Pareto
    front the paper's introduction alludes to ("faster speeds allow for
    a faster execution, but ... much higher power consumption").  Used
    by the examples and by EXPERIMENTS.md narrative figures. *)

type point = {
  deadline : (float[@units "time"]);
  energy : (float[@units "energy"]);
  n_reexecuted : int;  (** 0 for BI-CRIT sweeps *)
}

val bicrit_front :
  ?pool:Es_par.Pool.t ->
  fmin:(float[@units "freq"]) ->
  fmax:(float[@units "freq"]) ->
  deadlines:(float[@units "time"]) list ->
  Mapping.t ->
  point list
(** CONTINUOUS BI-CRIT optimum per deadline; infeasible deadlines are
    skipped.  With [?pool], deadlines are solved on the pool's worker
    domains; the front is identical either way.

    @raise Invalid_argument on a malformed task graph (nonpositive weight, out-of-range or self-loop edge, or cycle). *)

val bicrit_vdd_front :
  ?pool:Es_par.Pool.t ->
  ?warm:bool ->
  levels:(float[@units "freq"]) array ->
  deadlines:(float[@units "time"]) list ->
  Mapping.t ->
  point list
(** VDD-HOPPING BI-CRIT optimum (the Section-IV LP) per deadline,
    re-optimising each LP from the previous deadline's basis via
    {!Bicrit_vdd.energy_sweep}.  Warm chaining happens inside fixed
    25-deadline blocks whose partition depends only on [deadlines], so
    the front is identical point-for-point across pool sizes and under
    [~warm:false] (independent cold solves) — the warm-start
    invariance suite pins exactly that.  [?pool] parallelises over
    blocks.

    @raise Failure if an internal iteration or node budget is exhausted (e.g. the simplex pivot limit).
    @raise Invalid_argument on a malformed task graph (nonpositive weight, out-of-range or self-loop edge, or cycle). *)

val tricrit_front :
  ?pool:Es_par.Pool.t ->
  rel:Rel.params ->
  deadlines:(float[@units "time"]) list ->
  Mapping.t ->
  point list
(** Best-of-two-heuristics TRI-CRIT energy per deadline.  [?pool] as
    in {!bicrit_front}.

    @raise Invalid_argument on a schedule whose executions disagree with the mapping (length mismatch or empty execution list). *)

val dominates : point -> point -> bool
(** [dominates a b] when [a] is no worse on both axes and better on
    one. *)

val is_front : point list -> bool
(** Checks mutual non-domination — the monotonicity test used by the
    property suite (energy must not increase when the deadline
    loosens). *)
