module Problem = Es_lp.Problem

let build_lp ~deadline ~levels mapping =
  let cdag = Mapping.constraint_dag mapping in
  let n = Dag.n cdag in
  let m = Array.length levels in
  let lp = Problem.create () in
  (* alpha.(i).(k): time task i spends at speed levels.(k) *)
  let alpha =
    Array.init n (fun i ->
        Array.init m (fun k ->
            Problem.var lp
              ~obj:(levels.(k) *. levels.(k) *. levels.(k))
              (Printf.sprintf "a_%d_%d" i k)))
  in
  let start = Array.init n (fun i -> Problem.var lp (Printf.sprintf "s_%d" i)) in
  let time_expr i = Array.to_list (Array.map (fun v -> (1., v)) alpha.(i)) in
  (* record which rows carry the deadline on their right-hand side, so
     their duals sum to dE/dD *)
  let deadline_rows = ref [] in
  let row_count = ref 0 in
  let add_eq expr rhs =
    Problem.eq lp expr rhs;
    incr row_count
  in
  let add_le ?(is_deadline = false) expr rhs =
    Problem.le lp expr rhs;
    if is_deadline then deadline_rows := !row_count :: !deadline_rows;
    incr row_count
  in
  for i = 0 to n - 1 do
    (* work conservation *)
    let work = Array.to_list (Array.mapi (fun k v -> (levels.(k), v)) alpha.(i)) in
    add_eq work (Dag.weight cdag i);
    (* deadline: s_i + time_i <= D *)
    add_le ~is_deadline:true ((1., start.(i)) :: time_expr i) deadline
  done;
  List.iter
    (fun (i, j) ->
      (* s_i + time_i - s_j <= 0 *)
      add_le (((1., start.(i)) :: time_expr i) @ [ (-1., start.(j)) ]) 0.)
    (Dag.edges cdag);
  (lp, alpha, !deadline_rows)

let extract_schedule ~levels mapping alpha solution =
  let cdag = Mapping.constraint_dag mapping in
  let n = Dag.n cdag in
  let executions =
    Array.init n (fun i ->
        let total = Es_util.Futil.sum (Array.map (Problem.value solution) alpha.(i)) in
        let parts = ref [] in
        Array.iteri
          (fun k v ->
            let t = Problem.value solution v in
            if t > 1e-9 *. Float.max total 1. then
              parts := { Schedule.speed = levels.(k); time = t } :: !parts)
          alpha.(i);
        (* repair rounding: rescale part times so the work is exact *)
        let parts = List.rev !parts in
        let work =
          Es_util.Futil.sum_by (fun (p : Schedule.part) -> p.speed *. p.time) parts
        in
        let target = Dag.weight cdag i in
        let scale = target /. work in
        [ List.map (fun (p : Schedule.part) -> { p with Schedule.time = p.time *. scale }) parts ])
  in
  Schedule.make mapping ~executions

let lp ~deadline ~levels mapping =
  let lp, _, _ = build_lp ~deadline ~levels mapping in
  lp

let solve ~deadline ~levels mapping =
  let lp, alpha, _ = build_lp ~deadline ~levels mapping in
  match Problem.solve lp with
  | Problem.Solution s -> Some (extract_schedule ~levels mapping alpha s)
  | Problem.Infeasible -> None
  | Problem.Unbounded ->
    (* energy is bounded below by 0: cannot happen on well-formed input *)
    assert false

let energy ~deadline ~levels mapping =
  let lp, _, _ = build_lp ~deadline ~levels mapping in
  match Problem.solve lp with
  | Problem.Solution s -> Some (Problem.objective s)
  | Problem.Infeasible -> None
  | Problem.Unbounded -> assert false

(* The LPs of a deadline sweep share every coefficient — the deadline
   enters only as the right-hand side of the deadline (and nothing
   else), so the optimal basis at one deadline is a legal warm start at
   the next.  Chaining bases turns a sweep of two-phase solves into a
   chain of few-pivot dual-simplex re-optimisations. *)
let energy_sweep ?(warm = true) ~deadlines ~levels mapping =
  let basis = ref None in
  Array.map
    (fun deadline ->
      let lp, _, _ = build_lp ~deadline ~levels mapping in
      let outcome =
        if warm then begin
          let outcome, next = Problem.solve_warm ?basis:!basis lp in
          basis := next;
          outcome
        end
        else Problem.solve lp
      in
      match outcome with
      | Problem.Solution s -> Some (Problem.objective s)
      | Problem.Infeasible -> None
      | Problem.Unbounded ->
        (* energy is bounded below by 0: cannot happen on well-formed input *)
        assert false)
    deadlines

let energy_with_deadline_price ~deadline ~levels mapping =
  let lp, _, deadline_rows = build_lp ~deadline ~levels mapping in
  match Problem.solve lp with
  | Problem.Solution s ->
    let duals = Problem.duals s in
    let price = List.fold_left (fun acc r -> acc +. duals.(r)) 0. deadline_rows in
    Some (Problem.objective s, price)
  | Problem.Infeasible -> None
  | Problem.Unbounded -> assert false

let two_speed_support ~levels sched =
  let sorted = Array.copy levels in
  Array.sort Float.compare sorted;
  let index f =
    let found = ref (-1) in
    Array.iteri (fun k g -> if Float.abs (g -. f) <= 1e-9 then found := k) sorted;
    !found
  in
  let dag = Schedule.dag sched in
  let ok = ref true in
  for i = 0 to Dag.n dag - 1 do
    List.iter
      (fun e ->
        let speeds =
          List.sort_uniq Float.compare
            (List.map (fun (p : Schedule.part) -> p.speed) e)
        in
        match speeds with
        | [] | [ _ ] -> ()
        | [ f1; f2 ] ->
          let k1 = index f1 and k2 = index f2 in
          if k1 < 0 || k2 < 0 || abs (k1 - k2) <> 1 then ok := false
        | _ -> ok := false)
      (Schedule.executions sched i)
  done;
  !ok

let emulate_continuous ~levels ~speeds mapping =
  let dag = Mapping.dag mapping in
  let n = Dag.n dag in
  assert (Array.length speeds = n);
  let sorted = Array.copy levels in
  Array.sort Float.compare sorted;
  let lo0 = sorted.(0) and hi0 = sorted.(Array.length sorted - 1) in
  let bracket f =
    if f < lo0 -. 1e-12 || f > hi0 +. 1e-12 then None
    else begin
      let f = Es_util.Futil.clamp ~lo:lo0 ~hi:hi0 f in
      let below = ref lo0 and above = ref hi0 in
      Array.iter
        (fun g ->
          if g <= f +. 1e-12 && g > !below then below := g;
          if g >= f -. 1e-12 && g < !above then above := g)
        sorted;
      Some (!below, !above)
    end
  in
  let exception Out_of_range in
  match
    Array.init n (fun i ->
        let w = Dag.weight dag i and f = speeds.(i) in
        match bracket f with
        | None -> raise Out_of_range
        | Some (flo, fhi) ->
          if Float.abs (fhi -. flo) <= 1e-12 then
            [ [ { Schedule.speed = flo; time = w /. flo } ] ]
          else begin
            (* time-matching shares: t_lo + t_hi = w/f and
               f_lo·t_lo + f_hi·t_hi = w *)
            let total = w /. f in
            let t_hi = (w -. (flo *. total)) /. (fhi -. flo) in
            let t_lo = total -. t_hi in
            let parts =
              List.filter
                (fun (p : Schedule.part) -> p.time > 1e-12 *. total)
                [ { Schedule.speed = flo; time = t_lo }; { Schedule.speed = fhi; time = t_hi } ]
            in
            [ parts ]
          end)
  with
  | executions -> Some (Schedule.make mapping ~executions)
  | exception Out_of_range -> None
