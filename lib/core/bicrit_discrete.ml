type exact = { schedule : Schedule.t; energy : float; nodes_explored : int }

module Obs = Es_obs.Obs

let c_nodes = Obs.counter "bicrit_discrete_nodes"
let c_pruned = Obs.counter "bicrit_discrete_nodes_pruned"

let ratio_bound ~levels =
  let sorted = Array.copy levels in
  Array.sort Float.compare sorted;
  let worst = ref 1. in
  for k = 0 to Array.length sorted - 2 do
    let r = sorted.(k + 1) /. sorted.(k) in
    if r *. r > !worst then worst := r *. r
  done;
  !worst

(* Longest path strictly after each task (durations given), i.e. the
   minimum time that must elapse between a task's completion and the
   end of the schedule. *)
let tails cdag ~durations =
  let order = Dag.topological_order cdag in
  let tl = Array.make (Dag.n cdag) 0. in
  for k = Dag.n cdag - 1 downto 0 do
    let i = order.(k) in
    tl.(i) <-
      List.fold_left
        (fun acc s -> Float.max acc (durations.(s) +. tl.(s)))
        0. (Dag.succs cdag i)
  done;
  tl

let solve_exact ?(node_limit = 50_000_000) ~deadline ~levels mapping =
  let cdag = Mapping.constraint_dag mapping in
  let n = Dag.n cdag in
  let sorted = Array.copy levels in
  Array.sort Float.compare sorted;
  let m = Array.length sorted in
  let fmax = sorted.(m - 1) in
  let w = Dag.weights cdag in
  let d_fast = Array.map (fun wi -> wi /. fmax) w in
  let es_fast = Dag.earliest_start cdag ~durations:d_fast in
  let tail_fast = tails cdag ~durations:d_fast in
  (* Feasibility and per-task admissible level floor. *)
  let feasible_at_all =
    Dag.critical_path_length cdag ~durations:d_fast <= deadline *. (1. +. 1e-12)
  in
  if not feasible_at_all then None
  else begin
    let order = Dag.topological_order cdag in
    let level_floor =
      Array.init n (fun i ->
          let avail = deadline -. es_fast.(i) -. tail_fast.(i) in
          let fneed = w.(i) /. avail in
          (* smallest admissible index with level >= fneed (tolerant) *)
          let rec find k =
            if k >= m then m - 1
            else if sorted.(k) >= fneed *. (1. -. 1e-12) then k
            else find (k + 1)
          in
          find 0)
    in
    let min_energy = Array.init n (fun i -> w.(i) *. Es_util.Futil.square sorted.(level_floor.(i))) in
    (* suffix sums of min_energy in topological position order *)
    let suffix = Array.make (n + 1) 0. in
    for k = n - 1 downto 0 do
      suffix.(k) <- suffix.(k + 1) +. min_energy.(order.(k))
    done;
    let assigned = Array.make n (-1) in
    let finish = Array.make n 0. in
    let best_energy = ref infinity in
    let best_assignment = Array.make n (-1) in
    let nodes = ref 0 in
    let rec branch pos acc_energy =
      incr nodes;
      Obs.incr c_nodes;
      if !nodes > node_limit then failwith "Bicrit_discrete.solve_exact: node limit";
      if pos = n then begin
        if acc_energy < !best_energy then begin
          best_energy := acc_energy;
          Array.blit assigned 0 best_assignment 0 n
        end
      end
      else begin
        let i = order.(pos) in
        let start =
          List.fold_left (fun acc p -> Float.max acc finish.(p)) 0. (Dag.preds cdag i)
        in
        for k = level_floor.(i) to m - 1 do
          let f = sorted.(k) in
          let e = acc_energy +. (w.(i) *. f *. f) in
          (* energy bound: assigned energy + per-task floors for the rest *)
          if e +. suffix.(pos + 1) < !best_energy then begin
            let fin = start +. (w.(i) /. f) in
            (* makespan bound: this finish plus the all-fmax tail *)
            if fin +. tail_fast.(i) <= deadline *. (1. +. 1e-12) then begin
              assigned.(i) <- k;
              finish.(i) <- fin;
              branch (pos + 1) e;
              assigned.(i) <- -1
            end
            else Obs.incr c_pruned
          end
          else Obs.incr c_pruned
        done
      end
    in
    branch 0 0.;
    if !best_energy = infinity then None
    else begin
      let speeds = Array.init n (fun i -> sorted.(best_assignment.(i))) in
      let schedule = Schedule.of_speeds mapping ~speeds in
      Some { schedule; energy = !best_energy; nodes_explored = !nodes }
    end
  end

let round_up ~deadline ~levels mapping =
  let cdag = Mapping.constraint_dag mapping in
  let n = Dag.n cdag in
  let sorted = Array.copy levels in
  Array.sort Float.compare sorted;
  let m = Array.length sorted in
  let lo = Array.make n sorted.(0) and hi = Array.make n sorted.(m - 1) in
  match Bicrit_continuous.solve_general ~lo ~hi ~deadline mapping with
  | None -> None
  | Some { speeds; _ } ->
    let rounded =
      Array.map
        (fun f ->
          let rec find k = if sorted.(k) >= f *. (1. -. 1e-12) then sorted.(k) else find (k + 1) in
          find 0)
        speeds
    in
    Some (Schedule.of_speeds mapping ~speeds:rounded)
