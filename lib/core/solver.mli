(** One-call facade over the whole library.

    Downstream users mostly want "here is my mapped DAG, my speed
    model, my deadline — give me the best schedule you can".  This
    module dispatches to the right engine per speed model and
    reliability requirement, always returning a schedule the
    {!Validate} checker accepts:

    {v
    model        BI-CRIT                       TRI-CRIT
    ───────────  ────────────────────────────  ─────────────────────────────
    CONTINUOUS   convex solve (exact)          best-of heuristics (A/B)
    VDD-HOPPING  LP (exact)                    continuous bridge + LP
    DISCRETE     B&B if small, else round-up   (not in the paper — rejected)
    INCREMENTAL  round-up approximation        (not in the paper — rejected)
    v}

    The exact/heuristic choice per cell mirrors the paper's complexity
    results: polynomial cells get exact algorithms, NP-complete cells
    get the approximation/heuristic the paper proposes (with exact
    search when the instance is small enough). *)

type request = {
  mapping : Mapping.t;
  model : Speed.t;
  deadline : (float[@units "time"]);
  rel : Rel.params option;  (** [Some _] switches to TRI-CRIT *)
}

type answer = {
  schedule : Schedule.t;
  energy : (float[@units "energy"]);
  exact : bool;  (** whether the engine used is provably optimal *)
  engine : string;  (** human-readable engine name, for reports *)
}

val solve : ?exact_threshold:int -> request -> (answer, string) result
(** [exact_threshold] (default 14) bounds the instance size for which
    the exponential exact engines are used in NP-complete cells.
    Errors are human-readable: infeasible deadline, unsupported
    model/reliability combination, or inconsistent parameters (e.g.
    [rel] bounds disagreeing with the model's).

    @raise Failure if an internal iteration or node budget is exhausted (e.g. the simplex pivot limit).
    @raise Invalid_argument if an argument violates a documented precondition. *)
