(** TRI-CRIT under the VDD-HOPPING model (Section IV of the paper).

    The paper shows that adding the reliability constraint flips
    VDD-HOPPING BI-CRIT from P to NP-complete: the combinatorial part
    is {e which tasks to re-execute}.  The structure we exploit — and
    the reason the subproblem stays tractable — is that once the
    re-execution subset [S] {e and a per-execution failure budget} are
    fixed, everything is linear again:

    - work conservation [Σₖ fₖ·αₑₖ = wᵢ] per execution,
    - precedence/deadline in start times and total task times,
    - and crucially the reliability constraint itself, because the
      failure probability of a hopped execution is
      [Σₖ rate(fₖ)·αₑₖ] — {e linear in the time shares} (see
      {!Rel.vdd_failure}).

    For a re-executed task the exact constraint is a product
    [ε₁·ε₂ ≤ ε_target]; we linearise it by splitting the budget
    equally ([εₑ ≤ √ε_target] per attempt), which is the natural
    symmetric choice and an upper-bounding restriction (any feasible
    point of the restricted LP is feasible for the true problem).

    Solvers: exhaustive subset enumeration + LP for small instances,
    and the paper's adaptation of the CONTINUOUS heuristics (take the
    best-of-two continuous subset, then let the LP mix speeds). *)

type solution = {
  schedule : Schedule.t;
  energy : (float[@units "energy"]);
  reexecuted : bool array;
}

val solve_subset :
  rel:Rel.params ->
  deadline:(float[@units "time"]) ->
  levels:(float[@units "freq"]) array ->
  Mapping.t ->
  subset:bool array ->
  solution option
(** The fixed-subset LP described above.  [None] if infeasible.

    @raise Failure if an internal iteration or node budget is exhausted (e.g. the simplex pivot limit).
    @raise Invalid_argument if an argument violates a documented precondition. *)

val solve_exact :
  ?max_n:int ->
  rel:Rel.params ->
  deadline:(float[@units "time"]) ->
  levels:(float[@units "freq"]) array ->
  Mapping.t ->
  solution option
(** Minimum over all [2ⁿ] subsets (default size guard [max_n = 12]:
    each subset costs one LP).  @raise Invalid_argument above the
    guard. *)

val solve_heuristic :
  rel:Rel.params ->
  deadline:(float[@units "time"]) ->
  levels:(float[@units "freq"]) array ->
  Mapping.t ->
  solution option
(** The paper's CONTINUOUS→VDD-HOPPING bridge: run
    {!Heuristics.best_of} under the continuous model spanning the
    level range, keep its re-execution subset, and re-optimise the
    speed mixes with the LP.  Falls back to the empty subset when the
    continuous heuristic fails.

    @raise Failure if an internal iteration or node budget is exhausted (e.g. the simplex pivot limit).
    @raise Invalid_argument if an argument violates a documented precondition. *)

val refine_splits :
  ?rounds:int ->
  ?use_cache:bool ->
  rel:Rel.params ->
  deadline:(float[@units "time"]) ->
  levels:(float[@units "freq"]) array ->
  Mapping.t ->
  solution ->
  solution
(** Coordinate descent over the per-task budget split: instead of the
    symmetric [√ε_target] per attempt, attempt budgets
    [ε_target^θᵢ / ε_target^{1−θᵢ}] with [θᵢ] optimised one task at a
    time by golden search ([rounds] sweeps, default 1; each probe is
    one LP).  Never returns a worse solution than its input.  This
    closes part of the gap the symmetric linearisation leaves against
    the true product constraint.

    Probe solutions are memoised by [(task, θ)] while the committed
    splits are unchanged, so accepting a probe costs no extra LP solve
    and repeated sweeps replay cached trajectories ([use_cache = false]
    restores the uncached seed behaviour — same results, strictly more
    [lp_solves]; it exists for A/B measurement).

    @raise Failure if an internal iteration or node budget is exhausted (e.g. the simplex pivot limit).
    @raise Invalid_argument if an argument violates a documented precondition. *)
