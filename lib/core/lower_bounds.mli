(** Energy lower bounds used to normalise heuristic results.

    Experiment E8 reports heuristic energies as ratios to a bound that
    no feasible TRI-CRIT schedule can beat, so that numbers are
    comparable across instances.  Two complementary bounds are
    combined:

    - the {e relaxation bound}: the CONTINUOUS BI-CRIT optimum with the
      same deadline and no reliability constraint — dropping
      constraints and re-executions only lowers energy;
    - the {e per-task reliability bound}: with unlimited time, task [i]
      pays at least [min(wᵢ·f_rel², 2wᵢ·f_loᵢ²)] — the cheapest
      reliability-respecting single or double execution. *)

val relaxation :
  rel:Rel.params ->
  deadline:(float[@units "time"]) ->
  Mapping.t ->
  (float[@units "energy"])
(** CONTINUOUS BI-CRIT optimum over [\[fmin, fmax\]].

    @raise Invalid_argument on a malformed task graph (nonpositive weight, out-of-range or self-loop edge, or cycle). *)

val per_task : rel:Rel.params -> Mapping.t -> (float[@units "energy"])
(** [Σᵢ min(wᵢ·max(fmin,f_rel)², 2wᵢ·max(fmin,f_loᵢ)²)].

    @raise Invalid_argument if a root-bracketing step finds no sign change (degenerate reliability or speed bounds). *)

val tricrit :
  rel:Rel.params ->
  deadline:(float[@units "time"]) ->
  Mapping.t ->
  (float[@units "energy"])
(** [max(relaxation, per_task)].

    @raise Invalid_argument if a root-bracketing step finds no sign change (degenerate reliability or speed bounds). *)
