(** Realised execution traces.

    {!Sim} reports aggregates; this module records one run in full —
    which attempts ran, when, and whether they failed — and renders the
    realised timeline, making the difference between the paper's
    worst-case accounting and an actual execution visible (used by the
    examples and for debugging schedules by eye). *)

type event = {
  task : Dag.task;
  attempt : int;  (** 1 or 2 *)
  start : float;
  finish : float;
  failed : bool;
}

type t = {
  events : event list;  (** ordered by start time *)
  success : bool;
  makespan : float;  (** realised *)
  energy : float;  (** realised *)
}

val run : Es_util.Rng.t -> rel:Rel.params -> Schedule.t -> t
(** Simulate one execution and record every attempt.  Start times are
    the earliest-start times of the realised durations on the
    mapping's constraint DAG (attempt 2 runs immediately after a failed
    attempt 1).

    @raise Invalid_argument on a malformed task graph (nonpositive weight, out-of-range or self-loop edge, or cycle). *)

val render : ?width:int -> Schedule.t -> t -> string
(** ASCII chart of the realised run: one row per processor; attempts
    that failed are drawn with ['x'], successful second attempts with
    ['*']. *)
