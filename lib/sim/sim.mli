(** Monte-Carlo fault-injection simulator.

    The paper's reliability analysis (Eq. 1) is purely analytic; this
    simulator validates it empirically (experiment E10) and lets the
    examples show re-execution actually absorbing faults.  A run
    replays a {!Schedule.t} task by task: each execution attempt fails
    with the probability that Eq. (1) assigns to it
    ([ε = Σ rate(fₖ)·tₖ] over its constant-speed parts, clamped to
    [\[0,1\]]); a re-executed task falls back to its second attempt.

    Two timelines are reported:
    - the {e worst-case} timeline of the paper's objective (every
      attempt always runs, which is how energy is accounted), and
    - the {e realised} timeline, where the second attempt only runs if
      the first failed — showing the actual-energy savings the
      worst-case accounting gives up. *)

type run = {
  success : bool;  (** every task completed within its attempts *)
  faults : int;  (** number of failed attempts *)
  realised_makespan : float;
  realised_energy : float;
}

val run : Es_util.Rng.t -> rel:Rel.params -> Schedule.t -> run
(** Simulate one execution of the schedule.
    @raise Invalid_argument if some task has no execution attempts —
    such a schedule is malformed, not merely unlucky. *)

type report = {
  trials : int;
  success_rate : float;  (** fraction of runs with [success] *)
  task_failure_rate : float array;
      (** per-task empirical probability that the task (after
          re-execution, if any) failed — to compare with the analytic
          [ε] / [ε₁·ε₂] *)
  mean_faults : float;
  mean_realised_makespan : float;
  max_realised_makespan : float;
  mean_realised_energy : float;
  worst_case_makespan : float;  (** analytic, from {!Schedule.makespan} *)
  worst_case_energy : float;  (** analytic, from {!Schedule.energy} *)
}

val monte_carlo : Es_util.Rng.t -> rel:Rel.params -> trials:int -> Schedule.t -> report
(** [trials] independent runs.
    @raise Invalid_argument if some task has no execution attempts. *)

val monte_carlo_par :
  ?pool:Es_par.Pool.t ->
  ?replicas:int ->
  Es_util.Rng.t ->
  rel:Rel.params ->
  trials:int ->
  Schedule.t ->
  report
(** Like {!monte_carlo}, but the trials are partitioned over
    [replicas] independent sub-simulations (default 16, clamped to
    [trials]), each with its own stream derived from the argument
    generator by [Rng.split] up front — one pool task per replica.
    The partial tallies are merged in replica order, so the report
    depends only on [(rng, replicas, trials)], never on [?pool] or
    scheduling: passing a pool changes wall-clock time, not results.
    Note the replica streams differ from the single stream of
    {!monte_carlo}, so the two functions agree only statistically.
    @raise Invalid_argument on [trials <= 0] or [replicas < 1]. *)

val analytic_task_failure : rel:Rel.params -> Schedule.t -> Dag.task -> float
(** The failure probability Eq. (1) assigns to the task under this
    schedule (product over attempts) — the quantity
    [task_failure_rate] estimates. *)
