module Rng = Es_util.Rng

type event = {
  task : Dag.task;
  attempt : int;
  start : float;
  finish : float;
  failed : bool;
}

type t = { events : event list; success : bool; makespan : float; energy : float }

let attempt_failure ~rel e =
  let parts = List.map (fun (p : Schedule.part) -> (p.speed, p.time)) e in
  Es_util.Futil.clamp ~lo:0. ~hi:1. (Rel.vdd_failure rel ~parts)

let run rng ~rel sched =
  let dag = Schedule.dag sched in
  let cdag = Mapping.constraint_dag (Schedule.mapping sched) in
  let n = Dag.n dag in
  (* First pass: decide the fate of every attempt and the realised
     duration of every task. *)
  let outcomes = Array.make n [] in
  let durations = Array.make n 0. in
  let energy = ref 0. in
  let success = ref true in
  for i = 0 to n - 1 do
    let rec attempts ok acc = function
      | [] -> (ok, List.rev acc)
      | e :: rest ->
        if ok then (ok, List.rev acc)
        else begin
          durations.(i) <- durations.(i) +. Schedule.exec_time e;
          energy := !energy +. Schedule.exec_energy e;
          let failed = Rng.bernoulli rng (attempt_failure ~rel e) in
          attempts (not failed) ((e, failed) :: acc) rest
        end
    in
    let ok, ran = attempts false [] (Schedule.executions sched i) in
    outcomes.(i) <- ran;
    if not ok then success := false
  done;
  (* Second pass: realised start times from the realised durations. *)
  let starts = Dag.earliest_start cdag ~durations in
  let events = ref [] in
  for i = n - 1 downto 0 do
    let t = ref starts.(i) in
    List.iteri
      (fun k (e, failed) ->
        let finish = !t +. Schedule.exec_time e in
        events := { task = i; attempt = k + 1; start = !t; finish; failed } :: !events;
        t := finish)
      outcomes.(i)
  done;
  let events = List.sort (fun a b -> Float.compare a.start b.start) !events in
  let makespan = Dag.critical_path_length cdag ~durations in
  { events; success = !success; makespan; energy = !energy }

let render ?(width = 72) sched t =
  let mapping = Schedule.mapping sched in
  let horizon = Float.max t.makespan 1e-9 in
  let col x = int_of_float (float_of_int width *. x /. horizon) in
  let buf = Buffer.create 512 in
  for k = 0 to Mapping.p mapping - 1 do
    let row = Bytes.make (width + 1) '.' in
    List.iter
      (fun ev ->
        if Mapping.proc_of mapping ev.task = k then begin
          let letter =
            if ev.failed then 'x'
            else if ev.attempt = 2 then '*'
            else Char.chr (Char.code 'A' + (ev.task mod 26))
          in
          for x = max 0 (col ev.start) to min width (col ev.finish - 1) do
            Bytes.set row x letter
          done
        end)
      t.events;
    Buffer.add_string buf (Printf.sprintf "P%-2d %s\n" k (Bytes.to_string row))
  done;
  Buffer.add_string buf
    (Printf.sprintf "    0%s%.3g  %s\n"
       (String.make (max 0 (width - 8)) ' ')
       horizon
       (if t.success then "(success)" else "(FAILED)"));
  Buffer.contents buf
