module Rng = Es_util.Rng
module Obs = Es_obs.Obs

type run = {
  success : bool;
  faults : int;
  realised_makespan : float;
  realised_energy : float;
}

let c_trials = Obs.counter "sim_trials"
let t_monte_carlo = Obs.timer "sim_monte_carlo"

let attempt_failure ~rel e =
  let parts = List.map (fun (p : Schedule.part) -> (p.speed, p.time)) e in
  Es_util.Futil.clamp ~lo:0. ~hi:1. (Rel.vdd_failure rel ~parts)

let analytic_task_failure ~rel sched i =
  List.fold_left
    (fun acc e -> acc *. attempt_failure ~rel e)
    1. (Schedule.executions sched i)

(* Replay one task: walk its attempts until one succeeds, accumulating
   the realised duration/energy of every attempt that ran.  Returns
   [true] iff some attempt succeeded.  A task without executions is a
   malformed schedule, not a failed one. *)
let replay_task rng ~rel ~durations ~energy ~faults i = function
  | [] -> invalid_arg "Sim: task has no executions"
  | executions ->
    let rec attempts = function
      | [] -> false
      | e :: rest ->
        durations.(i) <- durations.(i) +. Schedule.exec_time e;
        energy := !energy +. Schedule.exec_energy e;
        if Rng.bernoulli rng (attempt_failure ~rel e) then begin
          incr faults;
          attempts rest
        end
        else true
    in
    attempts executions

let run rng ~rel sched =
  let dag = Schedule.dag sched in
  let cdag = Mapping.constraint_dag (Schedule.mapping sched) in
  let n = Dag.n dag in
  let faults = ref 0 in
  let all_ok = ref true in
  (* realised duration and energy of every task in this run *)
  let durations = Array.make n 0. in
  let energy = ref 0. in
  for i = 0 to n - 1 do
    let ok =
      replay_task rng ~rel ~durations ~energy ~faults i (Schedule.executions sched i)
    in
    if not ok then all_ok := false
  done;
  let realised_makespan = Dag.critical_path_length cdag ~durations in
  { success = !all_ok; faults = !faults; realised_makespan; realised_energy = !energy }

type report = {
  trials : int;
  success_rate : float;
  task_failure_rate : float array;
  mean_faults : float;
  mean_realised_makespan : float;
  max_realised_makespan : float;
  mean_realised_energy : float;
  worst_case_makespan : float;
  worst_case_energy : float;
}

(* Partial tallies: one per replica, mergeable with [merge_tally] so
   the parallel driver can combine them in replica order.  All
   accumulators are plain sums — merging is exact and associative up
   to float addition order, which the driver fixes deterministically. *)
type tally = {
  t_trials : int;
  t_successes : int;
  t_task_failures : int array;
  t_faults : int;
  t_sum_ms : float;
  t_sum_en : float;
  t_max_ms : float;
}

let run_tally rng ~rel ~trials sched =
  let dag = Schedule.dag sched in
  let cdag = Mapping.constraint_dag (Schedule.mapping sched) in
  let n = Dag.n dag in
  let task_failures = Array.make n 0 in
  let successes = ref 0 in
  let total_faults = ref 0 in
  let sum_ms = ref 0. in
  let sum_en = ref 0. in
  let max_ms = ref 0. in
  let durations = Array.make n 0. in
  for _ = 1 to trials do
    Obs.incr c_trials;
    Array.fill durations 0 n 0.;
    let energy = ref 0. and all_ok = ref true in
    for i = 0 to n - 1 do
      if
        not
          (replay_task rng ~rel ~durations ~energy ~faults:total_faults i
             (Schedule.executions sched i))
      then begin
        all_ok := false;
        task_failures.(i) <- task_failures.(i) + 1
      end
    done;
    if !all_ok then incr successes;
    let m = Dag.critical_path_length cdag ~durations in
    if m > !max_ms then max_ms := m;
    sum_ms := !sum_ms +. m;
    sum_en := !sum_en +. !energy
  done;
  {
    t_trials = trials;
    t_successes = !successes;
    t_task_failures = task_failures;
    t_faults = !total_faults;
    t_sum_ms = !sum_ms;
    t_sum_en = !sum_en;
    t_max_ms = !max_ms;
  }

let merge_tally a b =
  {
    t_trials = a.t_trials + b.t_trials;
    t_successes = a.t_successes + b.t_successes;
    t_task_failures = Array.map2 ( + ) a.t_task_failures b.t_task_failures;
    t_faults = a.t_faults + b.t_faults;
    t_sum_ms = a.t_sum_ms +. b.t_sum_ms;
    t_sum_en = a.t_sum_en +. b.t_sum_en;
    t_max_ms = Float.max a.t_max_ms b.t_max_ms;
  }

let report_of_tally sched t =
  let ftrials = float_of_int t.t_trials in
  {
    trials = t.t_trials;
    success_rate = float_of_int t.t_successes /. ftrials;
    task_failure_rate =
      Array.map (fun c -> float_of_int c /. ftrials) t.t_task_failures;
    mean_faults = float_of_int t.t_faults /. ftrials;
    mean_realised_makespan = t.t_sum_ms /. ftrials;
    max_realised_makespan = t.t_max_ms;
    mean_realised_energy = t.t_sum_en /. ftrials;
    worst_case_makespan = Schedule.makespan sched;
    worst_case_energy = Schedule.energy sched;
  }

let monte_carlo rng ~rel ~trials sched =
  assert (trials > 0);
  Obs.time t_monte_carlo @@ fun () ->
  report_of_tally sched (run_tally rng ~rel ~trials sched)

let default_replicas = 16

let monte_carlo_par ?pool ?(replicas = default_replicas) rng ~rel ~trials sched =
  if trials <= 0 then invalid_arg "Sim.monte_carlo_par: trials must be > 0";
  if replicas < 1 then invalid_arg "Sim.monte_carlo_par: replicas must be >= 1";
  Obs.time t_monte_carlo @@ fun () ->
  let replicas = min replicas trials in
  let base = trials / replicas and rem = trials mod replicas in
  (* split the replica streams in an explicit left-to-right loop: the
     split order is part of the determinism contract *)
  let plan =
    let rec go i acc =
      if i = replicas then List.rev acc
      else
        go (i + 1)
          ((Rng.split rng, base + (if i < rem then 1 else 0)) :: acc)
    in
    go 0 []
  in
  let tallies =
    Es_par.Par.parallel_map ?pool ~chunk:1
      (fun (rng, trials) -> run_tally rng ~rel ~trials sched)
      plan
  in
  match tallies with
  | [] -> assert false (* replicas >= 1 *)
  | first :: rest -> report_of_tally sched (List.fold_left merge_tally first rest)
(* X002 allowed: every replica replays the same caller-validated
   schedule, so a raising task is a programming error shared by the
   whole batch — let it surface at the joiner *)
[@@lint.allow "X002"]
