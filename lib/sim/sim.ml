module Rng = Es_util.Rng
module Obs = Es_obs.Obs

type run = {
  success : bool;
  faults : int;
  realised_makespan : float;
  realised_energy : float;
}

let c_trials = Obs.counter "sim_trials"
let t_monte_carlo = Obs.timer "sim_monte_carlo"

let attempt_failure ~rel e =
  let parts = List.map (fun (p : Schedule.part) -> (p.speed, p.time)) e in
  Es_util.Futil.clamp ~lo:0. ~hi:1. (Rel.vdd_failure rel ~parts)

let analytic_task_failure ~rel sched i =
  List.fold_left
    (fun acc e -> acc *. attempt_failure ~rel e)
    1. (Schedule.executions sched i)

(* Replay one task: walk its attempts until one succeeds, accumulating
   the realised duration/energy of every attempt that ran.  Returns
   [true] iff some attempt succeeded.  A task without executions is a
   malformed schedule, not a failed one. *)
let replay_task rng ~rel ~durations ~energy ~faults i = function
  | [] -> invalid_arg "Sim: task has no executions"
  | executions ->
    let rec attempts = function
      | [] -> false
      | e :: rest ->
        durations.(i) <- durations.(i) +. Schedule.exec_time e;
        energy := !energy +. Schedule.exec_energy e;
        if Rng.bernoulli rng (attempt_failure ~rel e) then begin
          incr faults;
          attempts rest
        end
        else true
    in
    attempts executions

let run rng ~rel sched =
  let dag = Schedule.dag sched in
  let cdag = Mapping.constraint_dag (Schedule.mapping sched) in
  let n = Dag.n dag in
  let faults = ref 0 in
  let all_ok = ref true in
  (* realised duration and energy of every task in this run *)
  let durations = Array.make n 0. in
  let energy = ref 0. in
  for i = 0 to n - 1 do
    let ok =
      replay_task rng ~rel ~durations ~energy ~faults i (Schedule.executions sched i)
    in
    if not ok then all_ok := false
  done;
  let realised_makespan = Dag.critical_path_length cdag ~durations in
  { success = !all_ok; faults = !faults; realised_makespan; realised_energy = !energy }

type report = {
  trials : int;
  success_rate : float;
  task_failure_rate : float array;
  mean_faults : float;
  mean_realised_makespan : float;
  max_realised_makespan : float;
  mean_realised_energy : float;
  worst_case_makespan : float;
  worst_case_energy : float;
}

let monte_carlo rng ~rel ~trials sched =
  assert (trials > 0);
  Obs.time t_monte_carlo @@ fun () ->
  let dag = Schedule.dag sched in
  let cdag = Mapping.constraint_dag (Schedule.mapping sched) in
  let n = Dag.n dag in
  let task_failures = Array.make n 0 in
  let successes = ref 0 in
  let total_faults = ref 0 in
  let ms = Es_util.Stats.online_create () in
  let en = Es_util.Stats.online_create () in
  let max_ms = ref 0. in
  let durations = Array.make n 0. in
  for _ = 1 to trials do
    Obs.incr c_trials;
    Array.fill durations 0 n 0.;
    let energy = ref 0. and all_ok = ref true in
    for i = 0 to n - 1 do
      if
        not
          (replay_task rng ~rel ~durations ~energy ~faults:total_faults i
             (Schedule.executions sched i))
      then begin
        all_ok := false;
        task_failures.(i) <- task_failures.(i) + 1
      end
    done;
    if !all_ok then incr successes;
    let m = Dag.critical_path_length cdag ~durations in
    if m > !max_ms then max_ms := m;
    Es_util.Stats.online_add ms m;
    Es_util.Stats.online_add en !energy
  done;
  let ftrials = float_of_int trials in
  {
    trials;
    success_rate = float_of_int !successes /. ftrials;
    task_failure_rate = Array.map (fun c -> float_of_int c /. ftrials) task_failures;
    mean_faults = float_of_int !total_faults /. ftrials;
    mean_realised_makespan = Es_util.Stats.online_mean ms;
    max_realised_makespan = !max_ms;
    mean_realised_energy = Es_util.Stats.online_mean en;
    worst_case_makespan = Schedule.makespan sched;
    worst_case_energy = Schedule.energy sched;
  }
