(** Transient-fault reliability model — Equation (1) of the paper.

    The reliability of task [Tᵢ] (weight [wᵢ]) executed once at speed
    [f] is

    {v Rᵢ(f) = 1 − λ₀ · exp(d·(fmax − f)/(fmax − fmin)) · wᵢ/f v}

    i.e. the failure probability is an instantaneous fault rate
    [rate f = λ₀·exp(d·(fmax−f)/(fmax−fmin))] — increasing as the
    processor slows down, which is DVFS's negative effect on
    reliability [Zhu et al. 2004] — multiplied by the execution time
    [wᵢ/f].  The TRI-CRIT constraint demands [Rᵢ ≥ Rᵢ(f_rel)] for a
    threshold speed [f_rel].

    A re-executed task succeeds unless both attempts fail:
    [Rᵢ = 1 − (1 − Rᵢ(f⁽¹⁾))(1 − Rᵢ(f⁽²⁾))], so the constraint becomes
    [ε(f⁽¹⁾)·ε(f⁽²⁾) ≤ ε(f_rel)] on failure probabilities — which is
    what lets a re-executed task run {e slower} than [f_rel] while
    still meeting the threshold, the central trade-off of the
    TRI-CRIT problem. *)

type params = {
  lambda0 : float;  (** average fault rate at [fmax] (per time unit) *)
  sensitivity : float;  (** the exponent [d ≥ 0] of Eq. (1) *)
  fmin : float;
  fmax : float;
  frel : float;  (** reliability threshold speed [f_rel] *)
}

val default : params
(** λ₀ = 10⁻⁵, d = 3, fmin = 1/3·fmax with fmax = 1, f_rel = fmax —
    magnitudes used throughout the DVFS-reliability literature the
    paper builds on (Zhu et al.).

    @raise Invalid_argument unless [0 < fmin <= fmax]. *)

val make :
  ?lambda0:float -> ?sensitivity:float -> ?frel:float -> fmin:float -> fmax:float ->
  unit -> params
(** Build parameters; defaults as in {!default} with [frel = fmax].
    @raise Invalid_argument if [frel] is outside [\[fmin, fmax\]]. *)

val rate : params -> f:float -> float
(** Fault rate [λ₀·exp(d·(fmax−f)/(fmax−fmin))] at speed [f] (per time
    unit).  When [fmin = fmax] the exponent is taken as 0. *)

val failure_prob : params -> f:float -> w:float -> float
(** [ε = rate(f) · w/f].  Not clamped — the analysis of the paper
    treats it as a linear quantity; it stays ≪ 1 for realistic λ₀. *)

val reliability : params -> f:float -> w:float -> float
(** [1 − ε], clamped into [\[0, 1\]] (only for display/simulation). *)

val target_failure : params -> w:float -> float
(** [ε(f_rel)] — the per-task bound the TRI-CRIT constraint imposes. *)

val reexec_failure : params -> f1:float -> f2:float -> w:float -> float
(** Combined failure probability of two attempts, [ε(f1)·ε(f2)]. *)

val meets_single : ?tol:float -> params -> f:float -> w:float -> bool
(** Single execution meets the constraint iff [f ≥ f_rel] (reliability
    increases with speed).  The check is numerical on [ε]. *)

val meets_reexec : ?tol:float -> params -> f1:float -> f2:float -> w:float -> bool
(** Two executions meet the constraint iff
    [ε(f1)·ε(f2) ≤ ε(f_rel)]. *)

val min_reexec_speed : params -> w:float -> float option
(** Smallest equal speed [f] such that re-executing at [(f, f)]
    satisfies the constraint: the root of [ε(f)² = ε(f_rel)] in
    [\[fmin, fmax\]] ([ε] is strictly decreasing in [f]).  [None] when
    even [fmax] fails — cannot happen for sane parameters since
    [ε(f_rel) ≥ ε(fmax)²] would be violated only for huge [λ₀·w].
    Equal speeds are optimal for a re-executed task under a total-time
    budget (by convexity of [f ↦ w·f²] along [1/f]-budgets), so this
    is the relevant lower bound.

    @raise Invalid_argument if a root-bracketing step finds no sign change (degenerate reliability or speed bounds). *)

val vdd_failure : params -> parts:(float * float) list -> float
(** Failure probability of a VDD-HOPPING execution given [parts], a
    list of [(speed, time)] intervals covering the task:
    [Σ rate(fₖ)·tₖ].  Reduces to {!failure_prob} for a single part
    executing the whole task. *)

val pp : Format.formatter -> params -> unit
