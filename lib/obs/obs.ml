(* Global, process-wide solver telemetry: named counters, wall-clock
   timers and hierarchical spans.  Everything is disabled by default;
   the single [on] test keeps the instrumented hot paths within noise
   of the uninstrumented code when telemetry is off.

   Handles ([counter]/[timer]) are meant to be created once at module
   initialisation and hit through a record field, so the hot path never
   touches the registry hashtable.

   Domain safety: the toggle and the clock are [Atomic.t]; counter and
   timer cells are atomic integers (durations accumulate in integer
   nanoseconds, so [Atomic.fetch_and_add] applies); the span stack is
   per-domain state in [Domain.DLS]; and the name->handle registries
   are guarded by one mutex, taken only on the cold find-or-create and
   snapshot/reset paths. *)

let on = Atomic.make false

let enabled () = Atomic.get on
let enable () = Atomic.set on true
let disable () = Atomic.set on false

(* ------------------------------------------------------------------ *)
(* clock                                                               *)
(* ------------------------------------------------------------------ *)

let clock = Atomic.make Unix.gettimeofday

let set_clock f = Atomic.set clock f
let now () = (Atomic.get clock) ()

(* ------------------------------------------------------------------ *)
(* registries                                                          *)
(* ------------------------------------------------------------------ *)

(* One lock for every registry: find-or-create happens at module
   initialisation, snapshot/reset between runs — never on the hot
   path, so contention is a non-issue. *)
let registry_mutex = Mutex.create ()

let locked f = Mutex.protect registry_mutex f

(* ------------------------------------------------------------------ *)
(* counters                                                            *)
(* ------------------------------------------------------------------ *)

type counter = int Atomic.t

let counters : (string, counter) Hashtbl.t = Hashtbl.create 64

let counter name =
  locked @@ fun () ->
  match Hashtbl.find_opt counters name with
  | Some c -> c
  | None ->
    let c = Atomic.make 0 in
    Hashtbl.add counters name c;
    c

let incr c = if Atomic.get on then Atomic.incr c
let add c k = if Atomic.get on then ignore (Atomic.fetch_and_add c k)
let value c = Atomic.get c

(* ------------------------------------------------------------------ *)
(* timers                                                              *)
(* ------------------------------------------------------------------ *)

(* Durations are accumulated in integer nanoseconds: floats cannot be
   atomically added, ints can ([fetch_and_add]), and 2^62 ns is ~146
   years of accumulated time — far beyond any run. *)

type timer = { total_ns : int Atomic.t; count : int Atomic.t }

let ns_of_seconds dt = int_of_float (Float.round (Float.max dt 0. *. 1e9))
let seconds_of_ns ns = float_of_int ns /. 1e9

let timers : (string, timer) Hashtbl.t = Hashtbl.create 64

let timer name =
  locked @@ fun () ->
  match Hashtbl.find_opt timers name with
  | Some t -> t
  | None ->
    let t = { total_ns = Atomic.make 0; count = Atomic.make 0 } in
    Hashtbl.add timers name t;
    t

let record t dt =
  (* clamp: a stepping wall clock must never produce negative totals *)
  ignore (Atomic.fetch_and_add t.total_ns (ns_of_seconds dt));
  Atomic.incr t.count

let time t f =
  if not (Atomic.get on) then f ()
  else begin
    let t0 = now () in
    Fun.protect ~finally:(fun () -> record t (now () -. t0)) f
  end

let timer_total t = seconds_of_ns (Atomic.get t.total_ns)
let timer_count t = Atomic.get t.count

(* ------------------------------------------------------------------ *)
(* spans                                                               *)
(* ------------------------------------------------------------------ *)

(* Aggregated by full path: entering "solve" then "lp" accumulates
   under the key ["solve"; "lp"].  Each domain has its own nesting
   stack (stored reversed); the aggregation cells are shared and
   atomic, so concurrent domains entering the same path accumulate
   into one cell without losing updates. *)

type span_cell = { s_total_ns : int Atomic.t; s_count : int Atomic.t }

let spans : (string list, span_cell) Hashtbl.t = Hashtbl.create 64

let span_stack_key : string list ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref [])

let span_cell path =
  locked @@ fun () ->
  match Hashtbl.find_opt spans path with
  | Some c -> c
  | None ->
    let c = { s_total_ns = Atomic.make 0; s_count = Atomic.make 0 } in
    Hashtbl.add spans path c;
    c

let with_span name f =
  if not (Atomic.get on) then f ()
  else begin
    let stack = Domain.DLS.get span_stack_key in
    let path = name :: !stack in
    stack := path;
    let cell = span_cell path in
    let t0 = now () in
    Fun.protect
      ~finally:(fun () ->
        ignore (Atomic.fetch_and_add cell.s_total_ns (ns_of_seconds (now () -. t0)));
        Atomic.incr cell.s_count;
        stack := (match !stack with _ :: tl -> tl | [] -> []))
      f
  end

(* ------------------------------------------------------------------ *)
(* reset / snapshot                                                    *)
(* ------------------------------------------------------------------ *)

let reset () =
  (* zero in place: modules hold handles obtained at init time.  Call
     when no other domain is mid-measurement; concurrent increments
     land in the fresh epoch.  Only the calling domain's span stack can
     be cleared — other domains' stacks unwind on their own. *)
  locked (fun () ->
      Hashtbl.iter (fun _ c -> Atomic.set c 0) counters;
      Hashtbl.iter
        (fun _ t ->
          Atomic.set t.total_ns 0;
          Atomic.set t.count 0)
        timers;
      Hashtbl.reset spans);
  Domain.DLS.get span_stack_key := []

type timer_stat = { total : float; count : int }
type span_stat = { path : string list; span_total : float; span_count : int }

type snapshot = {
  counters : (string * int) list;
  timers : (string * timer_stat) list;
  spans : span_stat list;
}

let snapshot () =
  locked @@ fun () ->
  let cs =
    Hashtbl.fold
      (fun name c acc ->
        let n = Atomic.get c in
        if n <> 0 then (name, n) :: acc else acc)
      counters []
    |> List.sort (fun (a, _) (b, _) -> String.compare a b)
  in
  let ts =
    Hashtbl.fold
      (fun name (t : timer) acc ->
        let count = Atomic.get t.count in
        if count <> 0 then
          (name, { total = seconds_of_ns (Atomic.get t.total_ns); count }) :: acc
        else acc)
      timers []
    |> List.sort (fun (a, _) (b, _) -> String.compare a b)
  in
  let sps =
    Hashtbl.fold
      (fun path c acc ->
        {
          path = List.rev path;
          span_total = seconds_of_ns (Atomic.get c.s_total_ns);
          span_count = Atomic.get c.s_count;
        }
        :: acc)
      spans []
    |> List.sort (fun a b -> List.compare String.compare a.path b.path)
  in
  { counters = cs; timers = ts; spans = sps }

(* ------------------------------------------------------------------ *)
(* rendering                                                           *)
(* ------------------------------------------------------------------ *)

let pp_duration secs =
  if secs >= 1. then Printf.sprintf "%.3f s" secs
  else if secs >= 1e-3 then Printf.sprintf "%.3f ms" (secs *. 1e3)
  else if secs >= 1e-6 then Printf.sprintf "%.3f us" (secs *. 1e6)
  else Printf.sprintf "%.0f ns" (secs *. 1e9)

let render_text snap =
  let buf = Buffer.create 512 in
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string buf (s ^ "\n")) fmt in
  if snap.counters = [] && snap.timers = [] && snap.spans = [] then
    line "obs: no telemetry recorded (was Obs.enable called?)"
  else begin
    if snap.counters <> [] then begin
      line "counters:";
      List.iter (fun (name, n) -> line "  %-36s %12d" name n) snap.counters
    end;
    if snap.timers <> [] then begin
      line "timers:%-31s %12s %8s %12s" "" "total" "count" "mean";
      List.iter
        (fun (name, (t : timer_stat)) ->
          line "  %-36s %12s %8d %12s" name (pp_duration t.total) t.count
            (pp_duration (t.total /. float_of_int t.count)))
        snap.timers
    end;
    if snap.spans <> [] then begin
      line "spans:";
      List.iter
        (fun s ->
          let depth = List.length s.path - 1 in
          let name =
            match List.rev s.path with [] -> "?" | leaf :: _ -> leaf
          in
          line "  %s%-*s %12s %8d"
            (String.concat "" (List.init depth (fun _ -> "  ")))
            (36 - (2 * depth)) name (pp_duration s.span_total) s.span_count)
        snap.spans
    end
  end;
  Buffer.contents buf

let to_json snap =
  let open Obs_json in
  Obj
    [
      ("counters", Obj (List.map (fun (n, v) -> (n, Num (float_of_int v))) snap.counters));
      ( "timers",
        Obj
          (List.map
             (fun (n, (t : timer_stat)) ->
               ( n,
                 Obj
                   [
                     ("total_s", Num t.total);
                     ("count", Num (float_of_int t.count));
                   ] ))
             snap.timers) );
      ( "spans",
        List
          (List.map
             (fun s ->
               Obj
                 [
                   ("path", List (List.map (fun p -> Str p) s.path));
                   ("total_s", Num s.span_total);
                   ("count", Num (float_of_int s.span_count));
                 ])
             snap.spans) );
    ]

let render_json snap = Obs_json.to_string (to_json snap)

let of_json j =
  let open Obs_json in
  let num = function Some (Num x) -> x | _ -> raise (Parse_error "expected number") in
  let counters =
    match member "counters" j with
    | Some (Obj fields) ->
      List.map (fun (n, v) -> (n, int_of_float (num (Some v)))) fields
    | _ -> []
  in
  let timers =
    match member "timers" j with
    | Some (Obj fields) ->
      List.map
        (fun (n, v) ->
          ( n,
            {
              total = num (member "total_s" v);
              count = int_of_float (num (member "count" v));
            } ))
        fields
    | _ -> []
  in
  let spans =
    match member "spans" j with
    | Some (List items) ->
      List.map
        (fun item ->
          let path =
            match member "path" item with
            | Some (List ps) ->
              List.map (function Str p -> p | _ -> raise (Parse_error "path")) ps
            | _ -> raise (Parse_error "path")
          in
          {
            path;
            span_total = num (member "total_s" item);
            span_count = int_of_float (num (member "count" item));
          })
        items
    | _ -> []
  in
  { counters; timers; spans }
