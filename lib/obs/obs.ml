(* Global, process-wide solver telemetry: named counters, wall-clock
   timers and hierarchical spans.  Everything is disabled by default;
   the single [on] test keeps the instrumented hot paths within noise
   of the uninstrumented code when telemetry is off.

   Handles ([counter]/[timer]) are meant to be created once at module
   initialisation and hit through a record field, so the hot path never
   touches the registry hashtable. *)

let on = ref false

let enabled () = !on
let enable () = on := true
let disable () = on := false

(* ------------------------------------------------------------------ *)
(* clock                                                               *)
(* ------------------------------------------------------------------ *)

let clock = ref Unix.gettimeofday

let set_clock f = clock := f
let now () = !clock ()

(* ------------------------------------------------------------------ *)
(* counters                                                            *)
(* ------------------------------------------------------------------ *)

type counter = { mutable n : int }

let counters : (string, counter) Hashtbl.t = Hashtbl.create 64

let counter name =
  match Hashtbl.find_opt counters name with
  | Some c -> c
  | None ->
    let c = { n = 0 } in
    Hashtbl.add counters name c;
    c

let incr c = if !on then c.n <- c.n + 1
let add c k = if !on then c.n <- c.n + k
let value c = c.n

(* ------------------------------------------------------------------ *)
(* timers                                                              *)
(* ------------------------------------------------------------------ *)

type timer = { mutable total : float; mutable count : int }

let timers : (string, timer) Hashtbl.t = Hashtbl.create 64

let timer name =
  match Hashtbl.find_opt timers name with
  | Some t -> t
  | None ->
    let t = { total = 0.; count = 0 } in
    Hashtbl.add timers name t;
    t

let record t dt =
  (* clamp: a stepping wall clock must never produce negative totals *)
  t.total <- t.total +. Float.max dt 0.;
  t.count <- t.count + 1

let time t f =
  if not !on then f ()
  else begin
    let t0 = now () in
    Fun.protect ~finally:(fun () -> record t (now () -. t0)) f
  end

let timer_total t = t.total
let timer_count t = t.count

(* ------------------------------------------------------------------ *)
(* spans                                                               *)
(* ------------------------------------------------------------------ *)

(* Aggregated by full path: entering "solve" then "lp" accumulates
   under the key ["solve"; "lp"].  The stack is stored reversed. *)

type span_cell = { mutable s_total : float; mutable s_count : int }

let spans : (string list, span_cell) Hashtbl.t = Hashtbl.create 64
let span_stack : string list ref = ref []

let with_span name f =
  if not !on then f ()
  else begin
    let path = name :: !span_stack in
    span_stack := path;
    let cell =
      match Hashtbl.find_opt spans path with
      | Some c -> c
      | None ->
        let c = { s_total = 0.; s_count = 0 } in
        Hashtbl.add spans path c;
        c
    in
    let t0 = now () in
    Fun.protect
      ~finally:(fun () ->
        cell.s_total <- cell.s_total +. Float.max (now () -. t0) 0.;
        cell.s_count <- cell.s_count + 1;
        span_stack := (match !span_stack with _ :: tl -> tl | [] -> []))
      f
  end

(* ------------------------------------------------------------------ *)
(* reset / snapshot                                                    *)
(* ------------------------------------------------------------------ *)

let reset () =
  (* zero in place: modules hold handles obtained at init time *)
  Hashtbl.iter (fun _ c -> c.n <- 0) counters;
  Hashtbl.iter
    (fun _ t ->
      t.total <- 0.;
      t.count <- 0)
    timers;
  Hashtbl.reset spans;
  span_stack := []

type timer_stat = { total : float; count : int }
type span_stat = { path : string list; span_total : float; span_count : int }

type snapshot = {
  counters : (string * int) list;
  timers : (string * timer_stat) list;
  spans : span_stat list;
}

let snapshot () =
  let cs =
    Hashtbl.fold (fun name c acc -> if c.n <> 0 then (name, c.n) :: acc else acc)
      counters []
    |> List.sort (fun (a, _) (b, _) -> String.compare a b)
  in
  let ts =
    Hashtbl.fold
      (fun name (t : timer) acc ->
        if t.count <> 0 then (name, { total = t.total; count = t.count }) :: acc
        else acc)
      timers []
    |> List.sort (fun (a, _) (b, _) -> String.compare a b)
  in
  let sps =
    Hashtbl.fold
      (fun path c acc ->
        { path = List.rev path; span_total = c.s_total; span_count = c.s_count } :: acc)
      spans []
    |> List.sort (fun a b -> List.compare String.compare a.path b.path)
  in
  { counters = cs; timers = ts; spans = sps }

(* ------------------------------------------------------------------ *)
(* rendering                                                           *)
(* ------------------------------------------------------------------ *)

let pp_duration secs =
  if secs >= 1. then Printf.sprintf "%.3f s" secs
  else if secs >= 1e-3 then Printf.sprintf "%.3f ms" (secs *. 1e3)
  else if secs >= 1e-6 then Printf.sprintf "%.3f us" (secs *. 1e6)
  else Printf.sprintf "%.0f ns" (secs *. 1e9)

let render_text snap =
  let buf = Buffer.create 512 in
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string buf (s ^ "\n")) fmt in
  if snap.counters = [] && snap.timers = [] && snap.spans = [] then
    line "obs: no telemetry recorded (was Obs.enable called?)"
  else begin
    if snap.counters <> [] then begin
      line "counters:";
      List.iter (fun (name, n) -> line "  %-36s %12d" name n) snap.counters
    end;
    if snap.timers <> [] then begin
      line "timers:%-31s %12s %8s %12s" "" "total" "count" "mean";
      List.iter
        (fun (name, (t : timer_stat)) ->
          line "  %-36s %12s %8d %12s" name (pp_duration t.total) t.count
            (pp_duration (t.total /. float_of_int t.count)))
        snap.timers
    end;
    if snap.spans <> [] then begin
      line "spans:";
      List.iter
        (fun s ->
          let depth = List.length s.path - 1 in
          let name =
            match List.rev s.path with [] -> "?" | leaf :: _ -> leaf
          in
          line "  %s%-*s %12s %8d"
            (String.concat "" (List.init depth (fun _ -> "  ")))
            (36 - (2 * depth)) name (pp_duration s.span_total) s.span_count)
        snap.spans
    end
  end;
  Buffer.contents buf

let to_json snap =
  let open Obs_json in
  Obj
    [
      ("counters", Obj (List.map (fun (n, v) -> (n, Num (float_of_int v))) snap.counters));
      ( "timers",
        Obj
          (List.map
             (fun (n, (t : timer_stat)) ->
               ( n,
                 Obj
                   [
                     ("total_s", Num t.total);
                     ("count", Num (float_of_int t.count));
                   ] ))
             snap.timers) );
      ( "spans",
        List
          (List.map
             (fun s ->
               Obj
                 [
                   ("path", List (List.map (fun p -> Str p) s.path));
                   ("total_s", Num s.span_total);
                   ("count", Num (float_of_int s.span_count));
                 ])
             snap.spans) );
    ]

let render_json snap = Obs_json.to_string (to_json snap)

let of_json j =
  let open Obs_json in
  let num = function Some (Num x) -> x | _ -> raise (Parse_error "expected number") in
  let counters =
    match member "counters" j with
    | Some (Obj fields) ->
      List.map (fun (n, v) -> (n, int_of_float (num (Some v)))) fields
    | _ -> []
  in
  let timers =
    match member "timers" j with
    | Some (Obj fields) ->
      List.map
        (fun (n, v) ->
          ( n,
            {
              total = num (member "total_s" v);
              count = int_of_float (num (member "count" v));
            } ))
        fields
    | _ -> []
  in
  let spans =
    match member "spans" j with
    | Some (List items) ->
      List.map
        (fun item ->
          let path =
            match member "path" item with
            | Some (List ps) ->
              List.map (function Str p -> p | _ -> raise (Parse_error "path")) ps
            | _ -> raise (Parse_error "path")
          in
          {
            path;
            span_total = num (member "total_s" item);
            span_count = int_of_float (num (member "count" item));
          })
        items
    | _ -> []
  in
  { counters; timers; spans }
