type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

(* ------------------------------------------------------------------ *)
(* printing                                                            *)
(* ------------------------------------------------------------------ *)

let escape buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let number_to_string x =
  if Float.is_integer x && Float.abs x < 1e15 then
    Printf.sprintf "%.0f" x
  else
    (* shortest representation that round-trips *)
    let s = Printf.sprintf "%.17g" x in
    let shorter = Printf.sprintf "%.12g" x in
    if float_of_string shorter = x then shorter else s

let rec write ?(indent = 0) buf j =
  let pad n = Buffer.add_string buf (String.make n ' ') in
  match j with
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Num x ->
    (* JSON has no representation for non-finite numbers *)
    if Float.is_nan x || Float.abs x = infinity then Buffer.add_string buf "null"
    else Buffer.add_string buf (number_to_string x)
  | Str s -> escape buf s
  | List [] -> Buffer.add_string buf "[]"
  | List items ->
    Buffer.add_string buf "[\n";
    List.iteri
      (fun k item ->
        if k > 0 then Buffer.add_string buf ",\n";
        pad (indent + 2);
        write ~indent:(indent + 2) buf item)
      items;
    Buffer.add_char buf '\n';
    pad indent;
    Buffer.add_char buf ']'
  | Obj [] -> Buffer.add_string buf "{}"
  | Obj fields ->
    Buffer.add_string buf "{\n";
    List.iteri
      (fun k (name, v) ->
        if k > 0 then Buffer.add_string buf ",\n";
        pad (indent + 2);
        escape buf name;
        Buffer.add_string buf ": ";
        write ~indent:(indent + 2) buf v)
      fields;
    Buffer.add_char buf '\n';
    pad indent;
    Buffer.add_char buf '}'

let to_string j =
  let buf = Buffer.create 256 in
  write buf j;
  Buffer.contents buf

(* Single-line rendering for newline-delimited protocols: same escaping
   and number formatting as [write], no whitespace at all. *)
let rec write_compact buf j =
  match j with
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Num x ->
    if Float.is_nan x || Float.abs x = infinity then Buffer.add_string buf "null"
    else Buffer.add_string buf (number_to_string x)
  | Str s -> escape buf s
  | List items ->
    Buffer.add_char buf '[';
    List.iteri
      (fun k item ->
        if k > 0 then Buffer.add_char buf ',';
        write_compact buf item)
      items;
    Buffer.add_char buf ']'
  | Obj fields ->
    Buffer.add_char buf '{';
    List.iteri
      (fun k (name, v) ->
        if k > 0 then Buffer.add_char buf ',';
        escape buf name;
        Buffer.add_char buf ':';
        write_compact buf v)
      fields;
    Buffer.add_char buf '}'

let to_compact_string j =
  let buf = Buffer.create 128 in
  write_compact buf j;
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* parsing (recursive descent, enough for our own output)              *)
(* ------------------------------------------------------------------ *)

exception Parse_error of string

type cursor = { s : string; mutable pos : int }

let fail cur msg =
  raise (Parse_error (Printf.sprintf "%s at offset %d" msg cur.pos))

let peek cur = if cur.pos < String.length cur.s then Some cur.s.[cur.pos] else None

let advance cur = cur.pos <- cur.pos + 1

let skip_ws cur =
  let rec go () =
    match peek cur with
    | Some (' ' | '\t' | '\n' | '\r') ->
      advance cur;
      go ()
    | _ -> ()
  in
  go ()

let expect cur c =
  match peek cur with
  | Some c' when c' = c -> advance cur
  | _ -> fail cur (Printf.sprintf "expected '%c'" c)

let literal cur word value =
  let n = String.length word in
  if
    cur.pos + n <= String.length cur.s
    && String.sub cur.s cur.pos n = word
  then begin
    cur.pos <- cur.pos + n;
    value
  end
  else fail cur (Printf.sprintf "expected %s" word)

let parse_string cur =
  expect cur '"';
  let buf = Buffer.create 16 in
  let rec go () =
    match peek cur with
    | None -> fail cur "unterminated string"
    | Some '"' ->
      advance cur;
      Buffer.contents buf
    | Some '\\' ->
      advance cur;
      (match peek cur with
      | Some '"' -> Buffer.add_char buf '"'
      | Some '\\' -> Buffer.add_char buf '\\'
      | Some '/' -> Buffer.add_char buf '/'
      | Some 'n' -> Buffer.add_char buf '\n'
      | Some 'r' -> Buffer.add_char buf '\r'
      | Some 't' -> Buffer.add_char buf '\t'
      | Some 'b' -> Buffer.add_char buf '\b'
      | Some 'f' -> Buffer.add_char buf '\012'
      | Some 'u' ->
        (* decode \uXXXX; non-ASCII code points are emitted raw as a
           single byte when < 256, else replaced — our own output never
           produces them *)
        if cur.pos + 4 >= String.length cur.s then fail cur "bad \\u escape";
        let hex = String.sub cur.s (cur.pos + 1) 4 in
        (match int_of_string_opt ("0x" ^ hex) with
        | Some code when code < 256 -> Buffer.add_char buf (Char.chr code)
        | Some _ -> Buffer.add_char buf '?'
        | None -> fail cur "bad \\u escape");
        cur.pos <- cur.pos + 4
      | _ -> fail cur "bad escape");
      advance cur;
      go ()
    | Some c ->
      advance cur;
      Buffer.add_char buf c;
      go ()
  in
  go ()

let parse_number cur =
  let start = cur.pos in
  let is_num_char = function
    | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
    | _ -> false
  in
  while (match peek cur with Some c -> is_num_char c | None -> false) do
    advance cur
  done;
  let text = String.sub cur.s start (cur.pos - start) in
  match float_of_string_opt text with
  | Some x -> Num x
  | None -> fail cur "bad number"

let rec parse_value cur =
  skip_ws cur;
  match peek cur with
  | None -> fail cur "unexpected end of input"
  | Some 'n' -> literal cur "null" Null
  | Some 't' -> literal cur "true" (Bool true)
  | Some 'f' -> literal cur "false" (Bool false)
  | Some '"' -> Str (parse_string cur)
  | Some '[' ->
    advance cur;
    skip_ws cur;
    if peek cur = Some ']' then begin
      advance cur;
      List []
    end
    else begin
      let rec items acc =
        let v = parse_value cur in
        skip_ws cur;
        match peek cur with
        | Some ',' ->
          advance cur;
          items (v :: acc)
        | Some ']' ->
          advance cur;
          List.rev (v :: acc)
        | _ -> fail cur "expected ',' or ']'"
      in
      List (items [])
    end
  | Some '{' ->
    advance cur;
    skip_ws cur;
    if peek cur = Some '}' then begin
      advance cur;
      Obj []
    end
    else begin
      let field () =
        skip_ws cur;
        let name = parse_string cur in
        skip_ws cur;
        expect cur ':';
        (name, parse_value cur)
      in
      let rec fields acc =
        let f = field () in
        skip_ws cur;
        match peek cur with
        | Some ',' ->
          advance cur;
          fields (f :: acc)
        | Some '}' ->
          advance cur;
          List.rev (f :: acc)
        | _ -> fail cur "expected ',' or '}'"
      in
      Obj (fields [])
    end
  | Some _ -> parse_number cur

let of_string s =
  let cur = { s; pos = 0 } in
  let v = parse_value cur in
  skip_ws cur;
  if cur.pos <> String.length s then fail cur "trailing garbage";
  v

let member name = function
  | Obj fields -> List.assoc_opt name fields
  | _ -> None
