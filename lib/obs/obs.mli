(** Solver telemetry: named counters, wall-clock timers and
    hierarchical spans behind one process-wide toggle.

    The paper's headline results are complexity claims — the
    VDD-HOPPING LP is polynomial, the TRI-CRIT heuristics avoid the
    exponential subset enumeration — so the interesting quantity is
    {e solver work}: simplex pivots, LP solves, Newton iterations,
    subsets explored.  This module gives every hot path a place to
    report that work without paying for it when nobody is looking:

    - everything is {b disabled by default}; when disabled, a counter
      bump is a single load-test-branch and [time]/[with_span] run the
      thunk directly (< 2 % overhead on the instrumented paths);
    - handles are created once at module-initialisation time
      ([counter]/[timer] memoise by name), so the hot path never
      touches a hashtable;
    - state is global and process-wide, matching how the CLI tools
      use it: enable, run the solve, snapshot, render.

    {b Domain-safe.}  The toggle and the clock are atomic; counter,
    timer and span cells are atomic integers (durations accumulate in
    integer nanoseconds), so concurrent increments from several
    domains are never lost; each domain keeps its own span-nesting
    stack in [Domain.DLS], so [with_span] nests correctly per domain
    while aggregation cells are shared by path.  The name->handle
    registries are mutex-guarded on the cold find-or-create and
    snapshot paths only.  [reset] and [set_clock] are meant for
    quiescent points (between runs): concurrent measurements straddle
    the epoch boundary but nothing is corrupted. *)

(** {1 Toggle} *)

val enabled : unit -> bool
val enable : unit -> unit
val disable : unit -> unit

val reset : unit -> unit
(** Zero every counter and timer and clear all spans.  Existing
    handles remain valid.  Call between runs, when no other domain is
    mid-measurement; only the calling domain's span-nesting stack is
    cleared (other domains' stacks unwind on their own). *)

(** {1 Clock} *)

val now : unit -> float
(** Seconds from the current clock (default [Unix.gettimeofday]). *)

val set_clock : (unit -> float) -> unit
(** Substitute the time source, e.g. a true monotonic clock or a fake
    clock in tests.  Negative steps are clamped to zero at
    accumulation time, so timers are monotone even under a stepping
    wall clock. *)

(** {1 Counters} *)

type counter

val counter : string -> counter
(** Find-or-create the counter registered under [name].  Call once per
    call site, at module initialisation. *)

val incr : counter -> unit
val add : counter -> int -> unit

val value : counter -> int
(** Current count (readable even while disabled). *)

(** {1 Timers} *)

type timer

val timer : string -> timer
(** Find-or-create, like {!counter}. *)

val time : timer -> (unit -> 'a) -> 'a
(** Run the thunk, accumulating its wall-clock duration and bumping
    the invocation count.  Exceptions propagate; the duration is still
    recorded.  When disabled, runs the thunk with no clock reads. *)

val timer_total : timer -> float
(** Accumulated seconds. *)

val timer_count : timer -> int

(** {1 Spans}

    Spans are timers with context: [with_span "solve" (fun () ->
    with_span "lp" ...)] accumulates under the path [solve/lp].
    Aggregation is by full path, so recursive or repeated entry adds
    to the same cell. *)

val with_span : string -> (unit -> 'a) -> 'a

(** {1 Snapshots and rendering} *)

type timer_stat = { total : float; count : int }
type span_stat = { path : string list; span_total : float; span_count : int }

type snapshot = {
  counters : (string * int) list;  (** sorted by name; zero entries omitted *)
  timers : (string * timer_stat) list;  (** sorted by name; idle timers omitted *)
  spans : span_stat list;  (** sorted by path *)
}

val snapshot : unit -> snapshot

val render_text : snapshot -> string
(** Aligned human-readable listing (counters, timers, span tree). *)

val to_json : snapshot -> Obs_json.t

val render_json : snapshot -> string

val of_json : Obs_json.t -> snapshot
(** Inverse of {!to_json} up to float printing precision.
    @raise Obs_json.Parse_error on structurally invalid input. *)

val pp_duration : float -> string
(** [1.5e-4] ↦ ["150.000 us"] — shared by the renderers and the bench
    harness. *)
