(** Minimal JSON values: just enough to render {!Obs} snapshots and the
    bench baseline, and to parse them back in tests — no external
    dependency.  The printer emits 2-space-indented, round-trippable
    text; non-finite numbers become [null]. *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

val to_string : t -> string
(** Pretty-printed JSON text. *)

val to_compact_string : t -> string
(** Single-line JSON (no whitespace), for newline-delimited framing —
    the serving wire protocol emits one compact value per line.  Same
    escaping and number formatting as {!to_string}. *)

exception Parse_error of string

val of_string : string -> t
(** Parse JSON text.  Handles everything {!to_string} emits (plus
    arbitrary whitespace); @raise Parse_error on malformed input. *)

val member : string -> t -> t option
(** [member name (Obj fields)] looks up a field; [None] on missing
    fields or non-objects. *)
