module Rng = Es_util.Rng
module Json = Es_obs.Obs_json

type shape = Chain | Fork | Join | Sp | Layered | General

type inst = {
  shape : shape;
  weights : float array;
  edges : (Dag.task * Dag.task) list;
  procs : int;
  slack : float;
  levels : float array;
}

let shape_name = function
  | Chain -> "chain"
  | Fork -> "fork"
  | Join -> "join"
  | Sp -> "sp"
  | Layered -> "layered"
  | General -> "general"

let all_shapes = [ Chain; Fork; Join; Sp; Layered; General ]

let dag t = Dag.make ?labels:None ~weights:t.weights ~edges:t.edges

let mapping t =
  let d = dag t in
  match t.shape with
  | Chain -> Mapping.single_processor d
  | Fork | Join | Sp -> Mapping.one_task_per_proc d
  | Layered | General ->
    List_sched.schedule d ~p:(max 1 t.procs) ~priority:List_sched.Bottom_level

let fmin t = t.levels.(0)
let fmax t = t.levels.(Array.length t.levels - 1)

let delta t =
  if Array.length t.levels < 2 then 0.1
  else t.levels.(1) -. t.levels.(0)

let dmin t = List_sched.makespan_at_speed (mapping t) ~f:(fmax t)
let deadline t = t.slack *. dmin t

(* ---- generation --------------------------------------------------- *)

let grid ~flo ~d ~m = Array.init m (fun i -> flo +. (float_of_int i *. d))

let gen_levels rng =
  let m = 2 + Rng.int rng 4 in
  let flo = Rng.uniform_in rng 0.2 0.5 in
  let d = Rng.uniform_in rng 0.1 0.3 in
  grid ~flo ~d ~m

let gen_slack rng =
  (* a thin slice of deliberately infeasible instances keeps the
     None/None agreement paths honest *)
  if Rng.bernoulli rng 0.06 then Rng.uniform_in rng 0.3 0.95
  else Rng.uniform_in rng 1.05 3.

let of_dag ~shape ~procs ~slack ~levels d =
  { shape; weights = Dag.weights d; edges = Dag.edges d; procs; slack; levels }

let generate ?(shapes = all_shapes) rng =
  let shape =
    match shapes with
    | [] -> General
    | _ -> Rng.choice rng (Array.of_list shapes)
  in
  let wlo = 0.5 and whi = 3. in
  let d =
    match shape with
    | Chain -> Generators.chain rng ~n:(1 + Rng.int rng 8) ~wlo ~whi
    | Fork -> Generators.fork rng ~n:(1 + Rng.int rng 7) ~wlo ~whi
    | Join -> Generators.join rng ~n:(1 + Rng.int rng 7) ~wlo ~whi
    | Sp -> Sp.to_dag (Generators.random_sp rng ~n:(2 + Rng.int rng 7) ~wlo ~whi)
    | Layered ->
      Generators.random_layered rng ~layers:(2 + Rng.int rng 3) ~width:(1 + Rng.int rng 3)
        ~density:(Rng.uniform_in rng 0.3 0.8) ~wlo ~whi
    | General -> Generators.random_dag rng ~n:(2 + Rng.int rng 8) ~p:(Rng.uniform_in rng 0.2 0.5) ~wlo ~whi
  in
  let procs = 1 + Rng.int rng 3 in
  of_dag ~shape ~procs ~slack:(gen_slack rng) ~levels:(gen_levels rng) d

(* ---- shrinking ---------------------------------------------------- *)

let keep_tasks t keep =
  (* [keep] is a sorted list of surviving task ids; edges are the
     induced ones, ids remapped densely. *)
  let n = Array.length t.weights in
  let remap = Array.make n (-1) in
  List.iteri (fun fresh old -> remap.(old) <- fresh) keep;
  let weights = Array.of_list (List.map (fun i -> t.weights.(i)) keep) in
  let edges =
    List.filter_map
      (fun (a, b) ->
        if a < n && b < n && remap.(a) >= 0 && remap.(b) >= 0 then
          Some (remap.(a), remap.(b))
        else None)
      t.edges
  in
  { t with weights; edges }

let range a b = List.init (b - a) (fun i -> a + i)

let shrink t =
  let n = Array.length t.weights in
  let candidates = ref [] in
  let add c = candidates := c :: !candidates in
  (* bisect the task set *)
  if n > 1 then begin
    add (keep_tasks t (range 0 ((n + 1) / 2)));
    add (keep_tasks t (range (n / 2) n))
  end;
  (* drop single tasks (bounded fan-out) *)
  if n > 1 && n <= 12 then
    for i = n - 1 downto 0 do
      add (keep_tasks t (List.filter (fun j -> j <> i) (range 0 n)))
    done;
  (* simplify weights *)
  if Array.exists (fun w -> Float.abs (w -. 1.) > 1e-9) t.weights then begin
    add { t with weights = Array.map (fun _ -> 1.) t.weights };
    add { t with weights = Array.map (fun w -> 0.5 *. (w +. 1.)) t.weights }
  end;
  (* collapse the level grid *)
  let m = Array.length t.levels in
  if m > 2 then begin
    add { t with levels = [| t.levels.(0); t.levels.(1) |] };
    add { t with levels = Array.sub t.levels 0 (m - 1) }
  end;
  (* round the slack, drop processors *)
  if Float.abs (t.slack -. 2.) > 1e-9 && t.slack > 1. then add { t with slack = 2. };
  if Float.abs (t.slack -. 1.5) > 1e-9 && t.slack > 1. then add { t with slack = 1.5 };
  if t.procs > 1 then add { t with procs = 1 };
  List.to_seq (List.rev !candidates)

(* ---- rendering ---------------------------------------------------- *)

let pp ppf t =
  let fa ppf a =
    Array.iteri (fun i x -> Format.fprintf ppf "%s%g" (if i = 0 then "" else " ") x) a
  in
  Format.fprintf ppf
    "@[<v>shape: %s (%d tasks, %d edges)@,weights: %a@,edges: %s@,procs: %d@,slack: %g \
     (deadline %g, dmin %g)@,levels: %a@]"
    (shape_name t.shape) (Array.length t.weights) (List.length t.edges) fa t.weights
    (String.concat ", " (List.map (fun (a, b) -> Printf.sprintf "%d->%d" a b) t.edges))
    t.procs t.slack (deadline t) (dmin t) fa t.levels

let describe t = Format.asprintf "%a" pp t

let to_json t =
  Json.Obj
    [
      ("shape", Json.Str (shape_name t.shape));
      ("weights", Json.List (Array.to_list (Array.map (fun w -> Json.Num w) t.weights)));
      ( "edges",
        Json.List
          (List.map
             (fun (a, b) -> Json.List [ Json.Num (float_of_int a); Json.Num (float_of_int b) ])
             t.edges) );
      ("procs", Json.Num (float_of_int t.procs));
      ("slack", Json.Num t.slack);
      ("deadline", Json.Num (deadline t));
      ("levels", Json.List (Array.to_list (Array.map (fun f -> Json.Num f) t.levels)));
    ]

(* ---- QCheck2 ------------------------------------------------------ *)

let qprint = describe

let qgen ?(shapes = all_shapes) () =
  let open QCheck2.Gen in
  let shape = oneofl shapes in
  (* Wiring randomness for layered/general shapes comes from an
     explicit seed so the generator stays a pure function of shrinkable
     scalars. *)
  shape >>= fun shape ->
  int_range 1 8 >>= fun n ->
  array_size (return (max 1 n)) (float_range 0.5 3.) >>= fun weights ->
  int_range 1 3 >>= fun procs ->
  float_range 1.05 3. >>= fun slack ->
  int_range 2 5 >>= fun m ->
  float_range 0.2 0.5 >>= fun flo ->
  float_range 0.1 0.3 >>= fun d ->
  int_range 0 1_000_000 >|= fun wiring_seed ->
  let rng = Es_util.Rng.create ~seed:wiring_seed in
  let n = Array.length weights in
  let structure =
    match shape with
    | Chain -> List.init (max 0 (n - 1)) (fun i -> (i, i + 1))
    | Fork -> List.init (max 0 (n - 1)) (fun i -> (0, i + 1))
    | Join -> List.init (max 0 (n - 1)) (fun i -> (i, n - 1))
    | Sp | Layered | General ->
      (* random increasing-id edges; SP-ness is not guaranteed here,
         relations that need it re-derive it and skip otherwise *)
      let edges = ref [] in
      for i = 0 to n - 1 do
        for j = i + 1 to n - 1 do
          if Es_util.Rng.bernoulli rng 0.35 then edges := (i, j) :: !edges
        done
      done;
      List.rev !edges
  in
  let shape = match shape with Sp -> General | s -> s in
  { shape; weights; edges = structure; procs; slack; levels = grid ~flo ~d ~m }
