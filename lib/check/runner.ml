module Rng = Es_util.Rng
module Json = Es_obs.Obs_json

type failure = {
  relation : string;
  trial : int;
  seed : int;
  message : string;
  inst : Gen.inst;
  original : Gen.inst;
  shrink_steps : int;
}

type summary = {
  name : string;
  attempted : int;
  passed : int;
  skipped : int;
  failures : failure list;
}

type report = { base_seed : int; trials : int; summaries : summary list }

(* An oracle's job is to judge, not to crash: any escaped exception is
   itself a counterexample, so the deliberately catch-all handler here
   is the point of the function. *)
let protected_run (r : Relation.t) inst =
  try r.Relation.run inst with
  | e -> Relation.Fail ("uncaught exception: " ^ Printexc.to_string e)
[@@lint.allow "E003"]

let shrink_to_minimal ?(budget = 400) relation inst =
  let budget = ref budget in
  let still_fails i =
    decr budget;
    match protected_run relation i with
    | Relation.Fail _ -> true
    | Relation.Pass | Relation.Skip _ -> false
  in
  let rec first_failing seq =
    if !budget <= 0 then None
    else
      match seq () with
      | Seq.Nil -> None
      | Seq.Cons (c, rest) -> if still_fails c then Some c else first_failing rest
  in
  let rec descend current steps =
    if !budget <= 0 then (current, steps)
    else
      match first_failing (Gen.shrink current) with
      | None -> (current, steps)
      | Some simpler -> descend simpler (steps + 1)
  in
  descend inst 0

let run_relation ?(max_failures = 5) ~seed ~trials relation =
  let passed = ref 0 and skipped = ref 0 and attempted = ref 0 in
  let failures = ref [] in
  let t = ref 0 in
  while !t < trials && List.length !failures < max_failures do
    let trial_seed = seed + !t in
    let rng = Rng.create ~seed:trial_seed in
    let inst = Gen.generate ~shapes:relation.Relation.shapes rng in
    incr attempted;
    (match protected_run relation inst with
    | Relation.Pass -> incr passed
    | Relation.Skip _ -> incr skipped
    | Relation.Fail first_message ->
      let shrunk, shrink_steps = shrink_to_minimal relation inst in
      let message =
        match protected_run relation shrunk with
        | Relation.Fail m -> m
        | Relation.Pass | Relation.Skip _ -> first_message
      in
      failures :=
        {
          relation = relation.Relation.name;
          trial = !t;
          seed = trial_seed;
          message;
          inst = shrunk;
          original = inst;
          shrink_steps;
        }
        :: !failures);
    incr t
  done;
  {
    name = relation.Relation.name;
    attempted = !attempted;
    passed = !passed;
    skipped = !skipped;
    failures = List.rev !failures;
  }

let run ?max_failures ~seed ~trials relations =
  {
    base_seed = seed;
    trials;
    summaries = List.map (run_relation ?max_failures ~seed ~trials) relations;
  }

let ok report = List.for_all (fun s -> match s.failures with [] -> true | _ :: _ -> false) report.summaries

let repro f = Printf.sprintf "escheck --relation %s --seed %d --trials 1" f.relation f.seed

let render report =
  let buf = Buffer.create 1024 in
  let pf fmt = Printf.bprintf buf fmt in
  pf "escheck: base seed %d, %d trials per relation\n\n" report.base_seed report.trials;
  List.iter
    (fun s ->
      pf "  %-24s %5d run %5d pass %5d skip %5d fail\n" s.name s.attempted s.passed s.skipped
        (List.length s.failures))
    report.summaries;
  let failures = List.concat_map (fun s -> s.failures) report.summaries in
  List.iteri
    (fun i f ->
      pf "\ncounterexample %d: relation %s, trial %d (seed %d)\n" (i + 1) f.relation f.trial
        f.seed;
      pf "  verdict: %s\n" f.message;
      pf "  shrunk %d step%s to:\n" f.shrink_steps (if f.shrink_steps = 1 then "" else "s");
      String.split_on_char '\n' (Gen.describe f.inst)
      |> List.iter (fun line -> pf "    %s\n" line);
      pf "  reproduce with: %s\n" (repro f))
    failures;
  (match failures with
  | [] -> pf "\nall relations hold: no counterexample found\n"
  | _ :: _ -> pf "\n%d counterexample(s) found\n" (List.length failures));
  Buffer.contents buf

let failure_to_json f =
  Json.Obj
    [
      ("relation", Json.Str f.relation);
      ("trial", Json.Num (float_of_int f.trial));
      ("seed", Json.Num (float_of_int f.seed));
      ("message", Json.Str f.message);
      ("shrink_steps", Json.Num (float_of_int f.shrink_steps));
      ("repro", Json.Str (repro f));
      ("instance", Gen.to_json f.inst);
      ("original_instance", Gen.to_json f.original);
    ]

let summary_to_json s =
  Json.Obj
    [
      ("relation", Json.Str s.name);
      ("attempted", Json.Num (float_of_int s.attempted));
      ("passed", Json.Num (float_of_int s.passed));
      ("skipped", Json.Num (float_of_int s.skipped));
      ("failed", Json.Num (float_of_int (List.length s.failures)));
      ("failures", Json.List (List.map failure_to_json s.failures));
    ]

let to_json report =
  Json.Obj
    [
      ("tool", Json.Str "escheck");
      ("base_seed", Json.Num (float_of_int report.base_seed));
      ("trials", Json.Num (float_of_int report.trials));
      ("ok", Json.Bool (ok report));
      ("relations", Json.List (List.map summary_to_json report.summaries));
    ]
