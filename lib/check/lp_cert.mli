(** Independent certification of LP optima.

    {!Es_lp.Simplex} claims [Optimal {objective; solution; duals}];
    this module verifies the claim against the raw problem statement
    without re-running (or trusting) the solver.  For the minimisation
    [min cᵀx, A x (≤|=|≥) b, x ≥ 0] an optimal primal-dual pair
    [(x, y)] is characterised by four checkable conditions:

    - {b primal feasibility}: every row holds and [x ≥ 0];
    - {b dual feasibility}: reduced costs [rⱼ = cⱼ − Σᵢ yᵢ·aᵢⱼ ≥ 0]
      (the implicit [x ≥ 0] rows absorb the slack), with the shadow
      price sign convention of {!Es_lp.Simplex.outcome}: [yᵢ ≤ 0] on
      [≤] rows, [yᵢ ≥ 0] on [≥] rows, free on [=] rows;
    - {b complementary slackness}: [yᵢ·(bᵢ − aᵢx) = 0] per row and
      [xⱼ·rⱼ = 0] per variable;
    - {b zero duality gap}: [cᵀx = bᵀy] (and both equal the reported
      objective).

    Any feasible pair passing all four is optimal by LP duality — the
    checker is a complete certificate, not a heuristic.  All
    tolerances are relative to the magnitude of the data. *)

type report = {
  primal_infeasibility : float;
      (** worst row violation / negative-variable mass, scaled *)
  dual_infeasibility : float;
      (** worst reduced-cost or dual-sign violation, scaled *)
  complementary_slackness : float;
      (** worst [|yᵢ·slackᵢ|] / [|xⱼ·rⱼ|], scaled *)
  duality_gap : float;  (** [|cᵀx − bᵀy|], scaled *)
  objective_mismatch : float;
      (** [|cᵀx − reported objective|], scaled *)
}

type verdict = Certified of report | Rejected of report * string

val certify :
  ?tol:(float[@units "dimensionless"]) ->
  obj:float array ->
  constraints:Es_lp.Simplex.constr list ->
  objective:float ->
  solution:float array ->
  duals:float array ->
  verdict
(** Check one claimed optimum.  [tol] (default [1e-6]) bounds every
    scaled residual of the {!report}. *)

val certify_outcome :
  ?tol:(float[@units "dimensionless"]) ->
  obj:float array ->
  constraints:Es_lp.Simplex.constr list ->
  Es_lp.Simplex.outcome ->
  verdict option
(** [Some] verdict on [Optimal]; [None] on [Infeasible]/[Unbounded]
    (those claims carry no certificate we can check here). *)

val certify_problem :
  ?tol:(float[@units "dimensionless"]) ->
  Es_lp.Problem.t ->
  Es_lp.Problem.solution ->
  verdict
(** Certify a named-variable {!Es_lp.Problem} solution against the
    problem's own rows ({!Es_lp.Problem.constraints}). *)

val describe : verdict -> string
(** One-line human rendering ("certified" or the failing condition). *)
