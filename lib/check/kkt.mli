(** KKT-style optimality certification for CONTINUOUS results.

    The convex program behind BI-CRIT CONTINUOUS ([min Σ wᵢ·fᵢ²] over
    durations and start times, Section III of the paper) has an
    optimality structure that can be checked without re-solving:

    - {b feasibility}: speeds inside [\[lo, hi\]], worst-case makespan
      within the deadline;
    - {b critical-path saturation}: a task running faster than its
      lower clamp must be critical — if it had slack, slowing it would
      save energy, contradicting optimality;
    - {b common-speed intervals / waterfilling}: on a single-processor
      chain the optimum runs every unclamped task at one common speed
      [f_c] with [fᵢ = max(f_c, floorᵢ)], and either the deadline is
      exhausted or every task sits on its floor;
    - {b exchange stationarity}: no small transfer of duration between
      two tasks may strictly reduce the energy while staying feasible
      (a randomised first-order probe on general DAGs).

    These are necessary conditions; together with convexity of the
    program the waterfilling/chain check is also sufficient.  The
    checks deliberately recompute energy from speeds, so wrong energy
    {e accounting} (as opposed to wrong speeds) is caught too. *)

type verdict = Ok | Violation of string

val is_ok : verdict -> bool

val describe : verdict -> string

val check_waterfill :
  ?tol:(float[@units "dimensionless"]) ->
  eff_weights:(float[@units "work"]) array ->
  floors:(float[@units "freq"]) array ->
  fmax:(float[@units "freq"]) ->
  deadline:(float[@units "time"]) ->
  speeds:(float[@units "freq"]) array ->
  verdict
(** Certify a claimed waterfilling optimum of
    [min Σ Wᵢ·fᵢ² s.t. Σ Wᵢ/fᵢ ≤ D, floorᵢ ≤ fᵢ ≤ fmax]: bounds, the
    common-level-above-floors shape, and deadline saturation unless
    every task is floor-clamped.  This is the shared oracle behind the
    BI-CRIT chain closed form and the TRI-CRIT waterfill step. *)

val check_chain :
  ?tol:(float[@units "dimensionless"]) ->
  weights:(float[@units "work"]) array ->
  deadline:(float[@units "time"]) ->
  fmin:(float[@units "freq"]) ->
  fmax:(float[@units "freq"]) ->
  Bicrit_continuous.result ->
  verdict
(** {!check_waterfill} with uniform floors [fmin], plus energy
    accounting ([energy = Σ wᵢ·fᵢ²] recomputed from the speeds). *)

val check_general :
  ?tol:(float[@units "dimensionless"]) ->
  ?slack_tol:(float[@units "dimensionless"]) ->
  ?probes:int ->
  ?probe_seed:int ->
  ?eff_weights:(float[@units "work"]) array ->
  deadline:(float[@units "time"]) ->
  lo:(float[@units "freq"]) array ->
  hi:(float[@units "freq"]) array ->
  Mapping.t ->
  Bicrit_continuous.result ->
  verdict
(** Certify a {!Bicrit_continuous.solve_general} result on an
    arbitrary mapped DAG: feasibility, energy accounting,
    critical-path saturation of every task above its lower clamp
    (slack at most [slack_tol·deadline], default [1e-3]), and
    [probes] (default [32]) randomised duration-exchange probes
    seeded by [probe_seed] that must not find a feasible first-order
    improvement.

    @raise Invalid_argument on a malformed task graph (nonpositive weight, out-of-range or self-loop edge, or cycle). *)
