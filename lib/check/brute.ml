module Futil = Es_util.Futil

let hull ~levels =
  let sorted = Array.copy levels in
  Array.sort Float.compare sorted;
  (* points by increasing u = 1/f, i.e. decreasing speed *)
  let pts =
    Array.to_list sorted
    |> List.rev_map (fun f -> (1. /. f, f *. f))
  in
  let cross (ox, oy) (ax, ay) (bx, by) =
    ((ax -. ox) *. (by -. oy)) -. ((ay -. oy) *. (bx -. ox))
  in
  let push acc p =
    let rec trim = function
      | a :: b :: rest when cross b a p <= 0. -> trim (b :: rest)
      | acc -> p :: acc
    in
    trim acc
  in
  Array.of_list (List.rev (List.fold_left push [] pts))

let energy_per_work ~levels ~u =
  let h = hull ~levels in
  let k = Array.length h in
  let u_min, _ = h.(0) in
  let u_max, e_max = h.(k - 1) in
  if u < u_min *. (1. -. 1e-12) then None
  else if u >= u_max then Some e_max (* run at fmin, idle through the slack *)
  else begin
    let u = Float.max u u_min in
    (* find the hull segment containing u and interpolate *)
    let e = ref e_max in
    (try
       for s = 0 to k - 2 do
         let u0, e0 = h.(s) and u1, e1 = h.(s + 1) in
         if u <= u1 then begin
           let t = if u1 > u0 then (u -. u0) /. (u1 -. u0) else 0. in
           e := e0 +. (t *. (e1 -. e0));
           raise Exit
         end
       done
     with Exit -> ());
    Some !e
  end

let vdd_chain_optimum ~levels ~weights ~deadline =
  let total = Futil.sum weights in
  if total <= 0. then Some 0.
  else
    match energy_per_work ~levels ~u:(deadline /. total) with
    | None -> None
    | Some h -> Some (total *. h)

let discrete_optimum ?(assignment_limit = 200_000) ~levels ~deadline mapping =
  let cdag = Mapping.constraint_dag mapping in
  let n = Dag.n cdag in
  let w = Dag.weights cdag in
  let m = Array.length levels in
  let count =
    let rec pow acc k = if k = 0 then acc else pow (acc * m) (k - 1) in
    pow 1 n
  in
  if m = 0 then invalid_arg "Brute.discrete_optimum: empty level set";
  if count > assignment_limit || count <= 0 then
    invalid_arg
      (Printf.sprintf "Brute.discrete_optimum: %d^%d assignments exceed the limit %d" m n
         assignment_limit);
  let choice = Array.make n 0 in
  let durations = Array.make n 0. in
  let best = ref infinity in
  let rec enumerate i =
    if i = n then begin
      for k = 0 to n - 1 do
        durations.(k) <- w.(k) /. levels.(choice.(k))
      done;
      if Dag.critical_path_length cdag ~durations <= deadline *. (1. +. 1e-12) then begin
        let e = ref 0. in
        for k = 0 to n - 1 do
          let f = levels.(choice.(k)) in
          e := !e +. (w.(k) *. f *. f)
        done;
        if !e < !best then best := !e
      end
    end
    else
      for k = 0 to m - 1 do
        choice.(i) <- k;
        enumerate (i + 1)
      done
  in
  enumerate 0;
  if Float.is_finite !best then Some !best else None
