(** The metamorphic / differential relation catalogue.

    A relation takes a generated {!Gen.inst} and checks one executable
    consequence of the paper's theory against the production solvers:

    - ["lp-cert"]: every [Simplex] optimum of the VDD-HOPPING LP is
      re-certified by {!Lp_cert} (primal/dual feasibility,
      complementary slackness, zero gap); an [Infeasible] claim is
      cross-checked against the all-[fmax] schedule.
    - ["lp-warm"]: sweeping the VDD LP over several deadlines with the
      optimal basis chained from one solve into the next
      ({!Es_lp.Problem.solve_warm}) yields the same outcome class and
      objective (rtol 1e-8) as independent cold solves, and every warm
      optimum is re-certified by {!Lp_cert}.
    - ["kkt"]: every {!Bicrit_continuous.solve_general} result passes
      {!Kkt.check_general} (feasibility, energy accounting,
      critical-path saturation, exchange stationarity).
    - ["deadline-scaling"]: with no speed clamp active, [D → 2D]
      scales optimal CONTINUOUS speeds by [1/2] and energy by [1/4]
      (speeds ∝ 1/D, energy ∝ 1/D²).
    - ["work-scaling"]: [w → 2w] at fixed [D] scales speeds by [2] and
      energy by [8] ([c³]).
    - ["model-dominance"]: on a shared even speed grid,
      [E_CONT ≤ E_VDD ≤ E_INCR ≤ E_DISCRETE] where INCREMENTAL uses
      the full grid and DISCRETE a coarser subset; the round-up
      approximation can never beat the exact DISCRETE optimum.
    - ["closed-form-vs-barrier"]: the paper's chain/fork/SP closed
      forms agree with the log-barrier convex solver.
    - ["simplex-vs-brute"]: on one processor the VDD-HOPPING LP
      optimum equals the hull closed form [W·H(D/W)] of {!Brute}.
    - ["discrete-vs-brute"]: branch-and-bound DISCRETE optima equal
      exhaustive enumeration on tiny instances.
    - ["feasibility"]: every schedule returned by any solver passes
      {!Validate.check} under its own model, and [check]/[is_feasible]
      agree.

    Relations return {!Skip} when the instance does not exercise them
    (e.g. too large for exhaustive search, non-SP graph after
    shrinking, deadline on the feasibility boundary) — a skip is not a
    verdict. *)

type outcome = Pass | Skip of string | Fail of string

type t = {
  name : string;
  descr : string;
  shapes : Gen.shape list;  (** instance shapes this relation draws *)
  run : Gen.inst -> outcome;
}

val all : t list
(** The registry, in documentation order.

    @raise Failure if an internal iteration or node budget is exhausted (e.g. the simplex pivot limit).
    @raise Invalid_argument if an argument violates a documented precondition. *)

val find : string -> t option
(** @raise Failure if an internal iteration or node budget is exhausted (e.g. the simplex pivot limit).
    @raise Invalid_argument if an argument violates a documented precondition. *)

val names : unit -> string list
(** @raise Failure if an internal iteration or node budget is exhausted (e.g. the simplex pivot limit).
    @raise Invalid_argument if an argument violates a documented precondition. *)
