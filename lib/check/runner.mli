(** The seeded fuzzing loop behind [escheck].

    For each relation the runner draws [trials] instances — trial [t]
    uses seed [base + t], so any failure is reproducible in isolation
    with [escheck --relation R --seed (base+t) --trials 1] — runs the
    relation, and greedily shrinks every failing instance over
    {!Gen.shrink} until no simpler candidate still fails.  Relations
    that raise are converted to failures (an oracle must judge, not
    crash), so a crashing solver is itself a reportable
    counterexample.

    The runner is pure with respect to output: it returns data and
    renders to strings ({!render}, {!to_json}); printing and exit codes
    belong to the executable. *)

type failure = {
  relation : string;
  trial : int;  (** 0-based index within the run *)
  seed : int;  (** the per-trial seed: [base_seed + trial] *)
  message : string;  (** relation verdict on the shrunk instance *)
  inst : Gen.inst;  (** minimal failing instance *)
  original : Gen.inst;  (** the instance as generated *)
  shrink_steps : int;
}

type summary = {
  name : string;
  attempted : int;
  passed : int;
  skipped : int;
  failures : failure list;  (** in trial order *)
}

type report = {
  base_seed : int;
  trials : int;  (** requested trials per relation *)
  summaries : summary list;
}

val shrink_to_minimal :
  ?budget:int -> Relation.t -> Gen.inst -> Gen.inst * int
(** Greedy descent over {!Gen.shrink}: repeatedly move to the first
    simplification on which the relation still fails; stop at a local
    minimum or after [budget] (default [400]) candidate evaluations.
    Returns the final instance and the number of accepted steps. *)

val run_relation :
  ?max_failures:int -> seed:int -> trials:int -> Relation.t -> summary
(** Fuzz one relation.  Stops early once [max_failures] (default [5])
    counterexamples have been collected and shrunk.

    @raise Invalid_argument on a malformed task graph (nonpositive weight, out-of-range or self-loop edge, or cycle). *)

val run :
  ?max_failures:int -> seed:int -> trials:int -> Relation.t list -> report
(** @raise Invalid_argument on a malformed task graph (nonpositive weight, out-of-range or self-loop edge, or cycle). *)

val ok : report -> bool
(** No failures anywhere. *)

val repro : failure -> string
(** The command line that replays exactly this counterexample. *)

val render : report -> string
(** Human-readable text: a per-relation tally plus, for each
    counterexample, the verdict, the shrunk instance and the repro
    command.

    @raise Invalid_argument on a malformed task graph (nonpositive weight, out-of-range or self-loop edge, or cycle). *)

val to_json : report -> Es_obs.Obs_json.t
(** @raise Invalid_argument on a malformed task graph (nonpositive weight, out-of-range or self-loop edge, or cycle). *)
