module Problem = Es_lp.Problem

type outcome = Pass | Skip of string | Fail of string

type t = {
  name : string;
  descr : string;
  shapes : Gen.shape list;
  run : Gen.inst -> outcome;
}

(* All numeric comparisons are relative to the data magnitude, floored
   at 1 so that near-zero quantities degrade to an absolute test. *)
let scale a b = Float.max 1. (Float.max (Float.abs a) (Float.abs b))
let close ~rtol a b = Float.abs (a -. b) <= rtol *. scale a b
let le_tol ~rtol a b = a <= b +. (rtol *. scale a b)

let feasible t = t.Gen.slack >= 1.

let rec first_some f i n =
  if i >= n then None
  else match f i with Some _ as s -> s | None -> first_some f (i + 1) n

let combine outcomes =
  let is_fail = function Fail _ -> true | Pass | Skip _ -> false in
  let is_skip = function Skip _ -> true | Pass | Fail _ -> false in
  match List.find_opt is_fail outcomes with
  | Some f -> f
  | None -> (
    match List.find_opt is_skip outcomes with Some s -> s | None -> Pass)

let edge_cmp (a, b) (c, d) =
  if Int.compare a c <> 0 then Int.compare a c else Int.compare b d

let edge_set_is edges expected =
  List.equal
    (fun (a, b) (c, d) -> a = c && b = d)
    (List.sort_uniq edge_cmp edges)
    (List.sort_uniq edge_cmp expected)

let is_chain n edges = edge_set_is edges (List.init (max 0 (n - 1)) (fun i -> (i, i + 1)))
let is_fork n edges = edge_set_is edges (List.init (max 0 (n - 1)) (fun i -> (0, i + 1)))

(* ---- lp-cert ------------------------------------------------------- *)

let run_lp_cert t =
  let mapping = Gen.mapping t in
  let deadline = Gen.deadline t in
  let lp = Bicrit_vdd.lp ~deadline ~levels:t.Gen.levels mapping in
  match Problem.solve lp with
  | Problem.Solution s -> (
    match Lp_cert.certify_problem lp s with
    | Lp_cert.Certified _ -> Pass
    | Lp_cert.Rejected _ as v -> Fail (Lp_cert.describe v))
  | Problem.Infeasible ->
    if feasible t then
      Fail
        (Printf.sprintf "LP infeasible but all-fmax meets the deadline (slack %g)" t.Gen.slack)
    else Pass
  | Problem.Unbounded -> Fail "VDD LP reported unbounded; energy is bounded below by 0"

(* ---- lp-warm ------------------------------------------------------- *)

(* Warm-started re-optimisation must be indistinguishable from cold
   solving: sweep the VDD LP over a handful of deadlines, chaining the
   optimal basis from one solve into the next, and demand (a) the same
   outcome class as an independent cold solve, (b) objectives within
   rtol 1e-8, and (c) that every warm optimum still carries a valid
   primal-dual certificate against the raw LP statement. *)
let run_lp_warm t =
  let mapping = Gen.mapping t in
  let base = Gen.deadline t in
  let basis = ref None in
  let check_at deadline =
    let lp = Bicrit_vdd.lp ~deadline ~levels:t.Gen.levels mapping in
    let cold = Problem.solve lp in
    let warm, basis' = Problem.solve_warm ?basis:!basis lp in
    basis := basis';
    match (cold, warm) with
    | Problem.Infeasible, Problem.Infeasible -> Pass
    | Problem.Unbounded, _ | _, Problem.Unbounded ->
      Fail "VDD LP reported unbounded; energy is bounded below by 0"
    | Problem.Solution c, Problem.Solution w -> (
      let ec = Problem.objective c and ew = Problem.objective w in
      if not (close ~rtol:1e-8 ec ew) then
        Fail (Printf.sprintf "D=%g: cold objective %.12g vs warm %.12g" deadline ec ew)
      else
        match Lp_cert.certify_problem lp w with
        | Lp_cert.Certified _ -> Pass
        | Lp_cert.Rejected _ as v ->
          Fail (Printf.sprintf "D=%g: warm optimum rejected: %s" deadline (Lp_cert.describe v)))
    | Problem.Solution _, Problem.Infeasible ->
      Fail (Printf.sprintf "D=%g: cold feasible but warm-started solve claims infeasible" deadline)
    | Problem.Infeasible, Problem.Solution _ ->
      Fail (Printf.sprintf "D=%g: warm-started solve feasible but cold claims infeasible" deadline)
  in
  combine (List.map (fun s -> check_at (s *. base)) [ 1.; 1.3; 0.9; 1.8 ])

(* ---- kkt ----------------------------------------------------------- *)

let run_kkt t =
  let mapping = Gen.mapping t in
  let deadline = Gen.deadline t in
  let n = Array.length t.Gen.weights in
  let lo = Array.make n (Gen.fmin t) in
  let hi = Array.make n (Gen.fmax t) in
  match Bicrit_continuous.solve_general ~lo ~hi ~deadline mapping with
  | Some r -> (
    match Kkt.check_general ~deadline ~lo ~hi mapping r with
    | Kkt.Ok -> Pass
    | Kkt.Violation msg -> Fail ("KKT: " ^ msg))
  | None ->
    if feasible t then
      Fail (Printf.sprintf "solver claims infeasible at slack %g >= 1" t.Gen.slack)
    else Pass

(* ---- deadline-scaling ---------------------------------------------- *)

(* Generous uniform speed cap: high enough that no clamp is ever active
   at either deadline, so the pure 1/D (speed) and 1/D² (energy)
   scaling laws apply exactly. *)
let generous_hi mapping ~deadline =
  100. *. List_sched.makespan_at_speed mapping ~f:1. /. deadline

let run_deadline_scaling t =
  if not (feasible t) then Skip "deliberately infeasible instance"
  else begin
    let mapping = Gen.mapping t in
    let d1 = Gen.deadline t in
    let n = Array.length t.Gen.weights in
    let hi = Array.make n (generous_hi mapping ~deadline:d1) in
    match
      ( Bicrit_continuous.solve_general ~hi ~deadline:d1 mapping,
        Bicrit_continuous.solve_general ~hi ~deadline:(2. *. d1) mapping )
    with
    | Some r1, Some r2 -> (
      let mismatch =
        first_some
          (fun i ->
            let f1 = r1.Bicrit_continuous.speeds.(i) in
            let f2 = r2.Bicrit_continuous.speeds.(i) in
            if close ~rtol:1e-3 (f1 /. 2.) f2 then None
            else
              Some
                (Printf.sprintf "task %d: f(D)=%g, f(2D)=%g, expected f(D)/2=%g" i f1 f2
                   (f1 /. 2.)))
          0 n
      in
      match mismatch with
      | Some msg -> Fail msg
      | None ->
        let e1 = r1.Bicrit_continuous.energy and e2 = r2.Bicrit_continuous.energy in
        if close ~rtol:1e-3 (e1 /. 4.) e2 then Pass
        else Fail (Printf.sprintf "E(2D)=%g, expected E(D)/4=%g" e2 (e1 /. 4.)))
    | None, _ -> Fail "solver infeasible at D despite a generous speed cap"
    | _, None -> Fail "solver infeasible at 2D despite a generous speed cap"
  end

(* ---- work-scaling -------------------------------------------------- *)

(* Same processor assignment for the scaled instance: rebuilding the
   list schedule would be equivalent under uniform scaling, but pinning
   the mapping keeps the relation about the solver, not the scheduler. *)
let same_mapping_on mapping d2 =
  let p = Mapping.p mapping in
  Mapping.make ~p d2 ~order:(Array.init p (Mapping.order mapping))

let run_work_scaling t =
  if not (feasible t) then Skip "deliberately infeasible instance"
  else begin
    let c = 2. in
    let mapping = Gen.mapping t in
    let t2 = { t with Gen.weights = Array.map (fun w -> c *. w) t.Gen.weights } in
    let mapping2 = same_mapping_on mapping (Gen.dag t2) in
    let d = Gen.deadline t in
    let n = Array.length t.Gen.weights in
    let hi = Array.make n (c *. generous_hi mapping ~deadline:d) in
    match
      ( Bicrit_continuous.solve_general ~hi ~deadline:d mapping,
        Bicrit_continuous.solve_general ~hi ~deadline:d mapping2 )
    with
    | Some r1, Some r2 -> (
      let mismatch =
        first_some
          (fun i ->
            let f1 = r1.Bicrit_continuous.speeds.(i) in
            let f2 = r2.Bicrit_continuous.speeds.(i) in
            if close ~rtol:1e-3 (c *. f1) f2 then None
            else
              Some
                (Printf.sprintf "task %d: f(w)=%g, f(%gw)=%g, expected %g" i f1 c f2 (c *. f1)))
          0 n
      in
      match mismatch with
      | Some msg -> Fail msg
      | None ->
        let e1 = r1.Bicrit_continuous.energy and e2 = r2.Bicrit_continuous.energy in
        if close ~rtol:1e-3 (c *. c *. c *. e1) e2 then Pass
        else Fail (Printf.sprintf "E(%gw)=%g, expected c³·E(w)=%g" c e2 (c *. c *. c *. e1)))
    | None, _ -> Fail "solver infeasible on the base instance despite a generous speed cap"
    | _, None -> Fail "solver infeasible on the scaled instance despite a generous speed cap"
  end

(* ---- model-dominance ----------------------------------------------- *)

let assignments_of t =
  let m = Array.length t.Gen.levels and n = Array.length t.Gen.weights in
  float_of_int m ** float_of_int n

let coarse_subset levels =
  (* every other level, always keeping the top one so the feasibility
     frontier (all-fmax) is shared with the full grid *)
  let m = Array.length levels in
  let idx = List.init m (fun i -> i) in
  let keep = List.filter (fun i -> i mod 2 = 0 || i = m - 1) idx in
  Array.of_list (List.map (fun i -> levels.(i)) keep)

let run_model_dominance t =
  if assignments_of t > 60_000. then Skip "too many assignments for the exact DISCRETE solver"
  else begin
    let mapping = Gen.mapping t in
    let deadline = Gen.deadline t in
    let levels = t.Gen.levels in
    let coarse = coarse_subset levels in
    let n = Array.length t.Gen.weights in
    let lo = Array.make n (Gen.fmin t) and hi = Array.make n (Gen.fmax t) in
    let e_cont =
      Option.map
        (fun r -> r.Bicrit_continuous.energy)
        (Bicrit_continuous.solve_general ~lo ~hi ~deadline mapping)
    in
    let e_vdd = Bicrit_vdd.energy ~deadline ~levels mapping in
    match
      ( (try `Done (Bicrit_discrete.solve_exact ~deadline ~levels mapping) with
        | Failure _ -> `Limit),
        try `Done (Bicrit_discrete.solve_exact ~deadline ~levels:coarse mapping) with
        | Failure _ -> `Limit )
    with
    | `Limit, _ | _, `Limit -> Skip "exact DISCRETE solver hit its node limit"
    | `Done incr, `Done disc -> (
      match (e_cont, e_vdd, incr, disc) with
      | None, None, None, None ->
        if feasible t then Fail "every model claims infeasible on a feasible instance" else Pass
      | Some ec, Some ev, Some ei, Some ed ->
        let ei = ei.Bicrit_discrete.energy and ed = ed.Bicrit_discrete.energy in
        if not (le_tol ~rtol:1e-6 ec ev) then
          Fail (Printf.sprintf "E_CONT=%g exceeds E_VDD=%g" ec ev)
        else if not (le_tol ~rtol:1e-6 ev ei) then
          Fail (Printf.sprintf "E_VDD=%g exceeds E_INCR=%g" ev ei)
        else if not (le_tol ~rtol:1e-6 ei ed) then
          Fail (Printf.sprintf "E_INCR=%g (full grid) exceeds E_DISCRETE=%g (coarse grid)" ei ed)
        else begin
          (* the round-up approximation can never beat the exact optimum *)
          match Bicrit_discrete.round_up ~deadline ~levels mapping with
          | None -> Fail "round-up approximation infeasible on a feasible instance"
          | Some sched ->
            let e_ru = Schedule.energy sched in
            if le_tol ~rtol:1e-6 ei e_ru then Pass
            else Fail (Printf.sprintf "round-up energy %g beats the exact optimum %g" e_ru ei)
        end
      | _ ->
        let claim name = function Some _ -> name ^ ":feasible" | None -> name ^ ":infeasible" in
        Fail
          (String.concat ", "
             [
               claim "cont" e_cont;
               claim "vdd" e_vdd;
               claim "incr" (Option.map (fun e -> e.Bicrit_discrete.energy) incr);
               claim "disc" (Option.map (fun e -> e.Bicrit_discrete.energy) disc);
             ]))
  end

(* ---- closed-form-vs-barrier ----------------------------------------- *)

let run_closed_form t =
  let deadline = Gen.deadline t in
  let weights = t.Gen.weights in
  let n = Array.length weights in
  match t.Gen.shape with
  | Gen.Chain when is_chain n t.Gen.edges -> (
    let fmin = Gen.fmin t and fmax = Gen.fmax t in
    let mapping = Mapping.single_processor (Gen.dag t) in
    let cf = Bicrit_continuous.chain ~weights ~deadline ~fmin ~fmax in
    let lo = Array.make n fmin and hi = Array.make n fmax in
    let nm = Bicrit_continuous.solve_general ~lo ~hi ~deadline mapping in
    match (cf, nm) with
    | None, None -> if feasible t then Fail "both solvers claim an infeasible chain" else Pass
    | Some a, Some b -> (
      match Kkt.check_chain ~weights ~deadline ~fmin ~fmax a with
      | Kkt.Violation msg -> Fail ("chain closed form fails its own KKT check: " ^ msg)
      | Kkt.Ok ->
        if close ~rtol:1e-4 a.Bicrit_continuous.energy b.Bicrit_continuous.energy then Pass
        else
          Fail
            (Printf.sprintf "chain closed form %g vs barrier %g" a.Bicrit_continuous.energy
               b.Bicrit_continuous.energy))
    | Some _, None -> Fail "closed form feasible, barrier infeasible"
    | None, Some _ -> Fail "barrier feasible, closed form infeasible")
  | Gen.Fork when is_fork n t.Gen.edges && n >= 2 -> (
    let fmax = Gen.fmax t in
    let root = weights.(0) in
    let children = Array.sub weights 1 (n - 1) in
    let mapping = Mapping.one_task_per_proc (Gen.dag t) in
    let cf = Bicrit_continuous.fork_speeds ~root ~children ~deadline ~fmax in
    let hi = Array.make n fmax in
    let nm = Bicrit_continuous.solve_general ~hi ~deadline mapping in
    match (cf, nm) with
    | None, None -> if feasible t then Fail "both solvers claim an infeasible fork" else Pass
    | Some a, Some b ->
      if close ~rtol:1e-4 a.Bicrit_continuous.energy b.Bicrit_continuous.energy then Pass
      else
        Fail
          (Printf.sprintf "fork closed form %g vs barrier %g" a.Bicrit_continuous.energy
             b.Bicrit_continuous.energy)
    | Some _, None -> Fail "fork closed form feasible, barrier infeasible"
    | None, Some _ -> Fail "barrier feasible, fork closed form infeasible")
  | Gen.Sp -> (
    match Sp.of_dag (Gen.dag t) with
    | None -> Skip "not series-parallel (structure changed by shrinking)"
    | Some sp -> (
      (* the SP closed form assumes no speed bound binds: give the
         barrier solver comfortable headroom above the closed-form
         speeds instead of the instance's fmax *)
      let cf = Bicrit_continuous.sp_speeds sp ~deadline in
      let top = Array.fold_left Float.max 1e-6 cf.Bicrit_continuous.speeds in
      let hi = Array.make n (10. *. top) in
      let mapping = Mapping.one_task_per_proc (Gen.dag t) in
      match Bicrit_continuous.solve_general ~hi ~deadline mapping with
      | None -> Fail "barrier infeasible with headroom above the SP closed-form speeds"
      | Some b ->
        if close ~rtol:1e-4 cf.Bicrit_continuous.energy b.Bicrit_continuous.energy then Pass
        else
          Fail
            (Printf.sprintf "SP closed form %g vs barrier %g" cf.Bicrit_continuous.energy
               b.Bicrit_continuous.energy)))
  | _ -> Skip "no closed form for this structure"

(* ---- simplex-vs-brute ----------------------------------------------- *)

let run_simplex_vs_brute t =
  (* Serialise everything onto one processor: whatever the DAG, the
     constraint graph is then a chain, whose VDD optimum has the hull
     closed form W·H(D/W). *)
  let mapping = Mapping.single_processor (Gen.dag t) in
  let deadline = t.Gen.slack *. List_sched.makespan_at_speed mapping ~f:(Gen.fmax t) in
  let levels = t.Gen.levels in
  let e_lp = Bicrit_vdd.energy ~deadline ~levels mapping in
  let e_cf = Brute.vdd_chain_optimum ~levels ~weights:t.Gen.weights ~deadline in
  match (e_lp, e_cf) with
  | None, None -> Pass
  | Some a, Some b ->
    if close ~rtol:1e-6 a b then Pass
    else Fail (Printf.sprintf "simplex LP optimum %g vs hull closed form %g" a b)
  | Some a, None -> Fail (Printf.sprintf "LP found E=%g but the hull says infeasible" a)
  | None, Some b -> Fail (Printf.sprintf "hull optimum %g exists but the LP is infeasible" b)

(* ---- discrete-vs-brute ---------------------------------------------- *)

let run_discrete_vs_brute t =
  if assignments_of t > 60_000. then Skip "too many assignments to enumerate"
  else begin
    let mapping = Gen.mapping t in
    let deadline = Gen.deadline t in
    let levels = t.Gen.levels in
    match
      try `Done (Bicrit_discrete.solve_exact ~deadline ~levels mapping) with
      | Failure _ -> `Limit
    with
    | `Limit -> Skip "exact solver hit its node limit"
    | `Done ex -> (
      let brute = Brute.discrete_optimum ~levels ~deadline mapping in
      match (ex, brute) with
      | None, None -> Pass
      | Some e, Some b ->
        if close ~rtol:1e-7 e.Bicrit_discrete.energy b then Pass
        else
          Fail
            (Printf.sprintf "branch-and-bound %g vs exhaustive enumeration %g"
               e.Bicrit_discrete.energy b)
      | Some e, None ->
        Fail
          (Printf.sprintf "branch-and-bound found E=%g but enumeration says infeasible"
             e.Bicrit_discrete.energy)
      | None, Some b ->
        Fail (Printf.sprintf "enumeration found E=%g but branch-and-bound says infeasible" b))
  end

(* ---- feasibility ---------------------------------------------------- *)

let run_feasibility t =
  let mapping = Gen.mapping t in
  let deadline = Gen.deadline t in
  let levels = t.Gen.levels in
  let fmin = Gen.fmin t and fmax = Gen.fmax t and delta = Gen.delta t in
  let dag = Gen.dag t in
  let agree name model result =
    match result with
    | None ->
      if feasible t then Fail (name ^ " returned no schedule on a feasible instance") else Pass
    | Some sched -> (
      let viols = Validate.check ~deadline ~model sched in
      let empty = match viols with [] -> true | _ :: _ -> false in
      if Validate.is_feasible ~deadline ~model sched <> empty then
        Fail (name ^ ": Validate.check and Validate.is_feasible disagree")
      else
        match viols with
        | [] -> Pass
        | v :: _ -> Fail (name ^ ": " ^ Validate.explain dag v))
  in
  combine
    [
      agree "continuous"
        (Speed.continuous ~fmin ~fmax)
        (Bicrit_continuous.solve ~deadline ~fmin ~fmax mapping);
      agree "vdd" (Speed.vdd_hopping levels) (Bicrit_vdd.solve ~deadline ~levels mapping);
      agree "round-up" (Speed.discrete levels)
        (Bicrit_discrete.round_up ~deadline ~levels mapping);
      agree "incremental"
        (Speed.incremental ~fmin ~fmax ~delta)
        (Bicrit_incremental.approximate ~deadline ~fmin ~fmax ~delta mapping);
    ]

(* ---- registry ------------------------------------------------------- *)

let all =
  [
    {
      name = "lp-cert";
      descr = "every simplex optimum of the VDD LP carries a valid primal-dual certificate";
      shapes = Gen.all_shapes;
      run = run_lp_cert;
    };
    {
      name = "lp-warm";
      descr = "warm-started LP re-optimisation matches cold solves and stays certified";
      shapes = Gen.all_shapes;
      run = run_lp_warm;
    };
    {
      name = "kkt";
      descr = "every continuous barrier result satisfies the KKT optimality conditions";
      shapes = Gen.all_shapes;
      run = run_kkt;
    };
    {
      name = "deadline-scaling";
      descr = "doubling the deadline halves continuous speeds and quarters the energy";
      shapes = Gen.all_shapes;
      run = run_deadline_scaling;
    };
    {
      name = "work-scaling";
      descr = "doubling all weights doubles continuous speeds and multiplies energy by 8";
      shapes = Gen.all_shapes;
      run = run_work_scaling;
    };
    {
      name = "model-dominance";
      descr = "E_CONT <= E_VDD <= E_INCR <= E_DISCRETE on a shared speed grid";
      shapes = [ Gen.Chain; Gen.Fork; Gen.Join; Gen.Layered ];
      run = run_model_dominance;
    };
    {
      name = "closed-form-vs-barrier";
      descr = "the paper's chain/fork/SP closed forms agree with the barrier solver";
      shapes = [ Gen.Chain; Gen.Fork; Gen.Sp ];
      run = run_closed_form;
    };
    {
      name = "simplex-vs-brute";
      descr = "single-processor VDD LP optimum equals the hull closed form W·H(D/W)";
      shapes = Gen.all_shapes;
      run = run_simplex_vs_brute;
    };
    {
      name = "discrete-vs-brute";
      descr = "branch-and-bound DISCRETE optima match exhaustive enumeration";
      shapes = [ Gen.Chain; Gen.Fork; Gen.Join; Gen.Layered ];
      run = run_discrete_vs_brute;
    };
    {
      name = "feasibility";
      descr = "every solver schedule passes Validate.check under its own model";
      shapes = Gen.all_shapes;
      run = run_feasibility;
    };
  ]

let find name = List.find_opt (fun r -> String.equal r.name name) all
let names () = List.map (fun r -> r.name) all
