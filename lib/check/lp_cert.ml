module Simplex = Es_lp.Simplex
module Problem = Es_lp.Problem

type report = {
  primal_infeasibility : float;
  dual_infeasibility : float;
  complementary_slackness : float;
  duality_gap : float;
  objective_mismatch : float;
}

type verdict = Certified of report | Rejected of report * string

let dot a b =
  let acc = ref 0. in
  Array.iteri (fun i ai -> acc := !acc +. (ai *. b.(i))) a;
  !acc

(* Residuals are reported relative to the magnitude of the data they
   involve, so one tolerance works across instances of any scale. *)
let scale_of ~obj ~rows ~solution ~duals =
  let m = ref 1. in
  let see v = if Float.abs v > !m then m := Float.abs v in
  Array.iter see obj;
  List.iter
    (fun (r : Simplex.constr) ->
      see r.rhs;
      Array.iter see r.coeffs)
    rows;
  Array.iter see solution;
  Array.iter see duals;
  !m

let certify ?(tol = 1e-6) ~obj ~constraints ~objective ~solution ~duals =
  let rows = constraints in
  let m = List.length rows in
  let n = Array.length obj in
  if Array.length solution <> n || Array.length duals <> m then
    Rejected
      ( {
          primal_infeasibility = infinity;
          dual_infeasibility = infinity;
          complementary_slackness = infinity;
          duality_gap = infinity;
          objective_mismatch = infinity;
        },
        "dimension mismatch between problem and certificate" )
  else begin
    let s = scale_of ~obj ~rows ~solution ~duals in
    let primal = ref 0. and dual = ref 0. and cs = ref 0. in
    (* primal: x >= 0 *)
    Array.iter (fun x -> if -.x > !primal then primal := -.x) solution;
    (* rows: feasibility, dual signs, y_i * slack_i *)
    List.iteri
      (fun i (r : Simplex.constr) ->
        let ax = dot r.coeffs solution in
        let slack = r.rhs -. ax in
        let viol =
          match r.relation with
          | Simplex.Le -> -.slack (* ax <= b *)
          | Simplex.Ge -> slack (* ax >= b *)
          | Simplex.Eq -> Float.abs slack
        in
        if viol > !primal then primal := viol;
        let y = duals.(i) in
        let sign_viol =
          match r.relation with
          | Simplex.Le -> y (* shadow price of a <= row: y <= 0 *)
          | Simplex.Ge -> -.y (* >= row: y >= 0 *)
          | Simplex.Eq -> 0. (* free *)
        in
        if sign_viol > !dual then dual := sign_viol;
        let c = Float.abs (y *. slack) in
        if c > !cs then cs := c)
      rows;
    (* reduced costs r_j = c_j - sum_i y_i a_ij >= 0, and x_j r_j = 0 *)
    let red = Array.copy obj in
    List.iteri
      (fun i (r : Simplex.constr) ->
        let y = duals.(i) in
        if y <> 0. then
          Array.iteri (fun j a -> red.(j) <- red.(j) -. (y *. a)) r.coeffs)
      rows;
    Array.iteri
      (fun j rj ->
        if -.rj > !dual then dual := -.rj;
        let c = Float.abs (solution.(j) *. rj) in
        if c > !cs then cs := c)
      red;
    let cx = dot obj solution in
    let by =
      let acc = ref 0. in
      List.iteri (fun i (r : Simplex.constr) -> acc := !acc +. (r.rhs *. duals.(i))) rows;
      !acc
    in
    let report =
      {
        primal_infeasibility = !primal /. s;
        dual_infeasibility = !dual /. s;
        complementary_slackness = !cs /. (s *. s);
        duality_gap = Float.abs (cx -. by) /. Float.max 1. (Float.abs cx);
        objective_mismatch = Float.abs (cx -. objective) /. Float.max 1. (Float.abs cx);
      }
    in
    let fail reason = Rejected (report, reason) in
    if report.primal_infeasibility > tol then fail "primal infeasibility"
    else if report.dual_infeasibility > tol then
      fail "dual infeasibility (reduced cost or shadow-price sign)"
    else if report.complementary_slackness > tol then fail "complementary slackness"
    else if report.duality_gap > tol then fail "primal-dual objective gap"
    else if report.objective_mismatch > tol then
      fail "reported objective does not match c'x"
    else Certified report
  end

let certify_outcome ?tol ~obj ~constraints = function
  | Simplex.Optimal { objective; solution; duals } ->
    Some (certify ?tol ~obj ~constraints ~objective ~solution ~duals)
  | Simplex.Infeasible | Simplex.Unbounded -> None

let certify_problem ?tol lp solution =
  certify ?tol ~obj:(Problem.objective_coeffs lp) ~constraints:(Problem.constraints lp)
    ~objective:(Problem.objective solution) ~solution:(Problem.values solution)
    ~duals:(Problem.duals solution)

let describe = function
  | Certified r -> Printf.sprintf "certified (gap %.2e)" r.duality_gap
  | Rejected (r, reason) ->
    Printf.sprintf
      "REJECTED: %s (primal %.2e, dual %.2e, comp-slack %.2e, gap %.2e, obj %.2e)"
      reason r.primal_infeasibility r.dual_infeasibility r.complementary_slackness
      r.duality_gap r.objective_mismatch
