(** Random solver instances with shrinking.

    An {!inst} is a self-contained, reproducible test case for every
    relation in {!Relation}: a weighted DAG (stored as raw weights and
    edges so it can be shrunk structurally), a processor count, a
    deadline expressed as a slack factor over the tightest achievable
    makespan, and a speed-level grid.  The level grid is always evenly
    spaced ([fmin + i·δ]), so the same instance serves the DISCRETE,
    VDD-HOPPING and INCREMENTAL models and the CONTINUOUS interval
    [\[fmin, fmax\]].

    {!shrink} enumerates simplified candidates (bisected task sets,
    single-task removals, unit weights, collapsed level grids, round
    slack) — the fuzz runner in {!Runner} greedily re-runs a failing
    relation on them to deliver a minimal counterexample.  The same
    instances are exposed as QCheck2 generators ({!qgen}) whose
    integrated shrinking bisects the raw components. *)

type shape = Chain | Fork | Join | Sp | Layered | General

type inst = {
  shape : shape;
  weights : (float[@units "work"]) array;
  edges : (Dag.task * Dag.task) list;
  procs : int;
  slack : (float[@units "dimensionless"]);
      (** deadline = slack × (makespan with every task at fmax) *)
  levels : (float[@units "freq"]) array;  (** even grid, ascending *)
}

val shape_name : shape -> string
val all_shapes : shape list

val dag : inst -> Dag.t
(** @raise Invalid_argument on a malformed task graph (nonpositive weight, out-of-range or self-loop edge, or cycle). *)

val mapping : inst -> Mapping.t
(** Chains map to a single processor, forks/joins/SP graphs to one
    task per processor (the closed-form settings), layered/general
    DAGs through critical-path list scheduling on [procs]
    processors.

    @raise Invalid_argument on a malformed task graph (nonpositive weight, out-of-range or self-loop edge, or cycle). *)

val fmin : inst -> (float[@units "freq"])
val fmax : inst -> (float[@units "freq"])
val delta : inst -> (float[@units "freq"])

val dmin : inst -> (float[@units "time"])
(** Makespan with every task at [fmax] — the tightest meetable
    deadline for this mapping.

    @raise Invalid_argument on a malformed task graph (nonpositive weight, out-of-range or self-loop edge, or cycle). *)

val deadline : inst -> (float[@units "time"])
(** @raise Invalid_argument on a malformed task graph (nonpositive weight, out-of-range or self-loop edge, or cycle). *)

val of_dag :
  shape:shape ->
  procs:int ->
  slack:(float[@units "dimensionless"]) ->
  levels:(float[@units "freq"]) array ->
  Dag.t ->
  inst
(** Wrap an existing DAG as an instance — lets the test suite run the
    relation oracles on hand-built or legacy test graphs. *)

val generate : ?shapes:shape list -> Es_util.Rng.t -> inst
(** Draw an instance: a shape from [shapes] (default {!all_shapes}),
    1–10 tasks with weights in [\[0.5, 3)], 1–3 processors, slack
    mostly in [\[1.05, 3)] (a few percent of draws are deliberately
    infeasible, [slack < 1], to exercise infeasibility paths), and a
    2–5 point even speed grid.

    @raise Invalid_argument on a malformed task graph (nonpositive weight, out-of-range or self-loop edge, or cycle). *)

val shrink : inst -> inst Seq.t
(** Simplification candidates, most aggressive first.  Every candidate
    is a valid instance; the caller keeps a candidate only when the
    failure it is chasing reproduces on it. *)

val pp : Format.formatter -> inst -> unit
(** @raise Invalid_argument on a malformed task graph (nonpositive weight, out-of-range or self-loop edge, or cycle). *)

val describe : inst -> string
(** @raise Invalid_argument on a malformed task graph (nonpositive weight, out-of-range or self-loop edge, or cycle). *)

val to_json : inst -> Es_obs.Obs_json.t
(** @raise Invalid_argument on a malformed task graph (nonpositive weight, out-of-range or self-loop edge, or cycle). *)

val qgen : ?shapes:shape list -> unit -> inst QCheck2.Gen.t
(** QCheck2 generator with integrated shrinking over the instance
    components. *)

val qprint : inst -> string
(** Printer for QCheck2 counterexample reporting.

    @raise Invalid_argument on a malformed task graph (nonpositive weight, out-of-range or self-loop edge, or cycle). *)
