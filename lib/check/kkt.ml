module Futil = Es_util.Futil
module Rng = Es_util.Rng

type verdict = Ok | Violation of string

let is_ok = function Ok -> true | Violation _ -> false
let describe = function Ok -> "KKT conditions hold" | Violation v -> "KKT violated: " ^ v

let violationf fmt = Printf.ksprintf (fun s -> Violation s) fmt

(* [significantly_less ~tol a b]: a < b beyond a symmetric relative
   slop.  The slop scales with the operands, so both sides of every
   comparison keep the operands' unit. *)
let significantly_less ~tol a b = b -. a > tol *. (Float.abs a +. Float.abs b)

let energy_of ~weights ~speeds =
  Futil.sum (Array.map2 (fun w f -> w *. f *. f) weights speeds)

let check_waterfill ?(tol = 1e-6) ~eff_weights ~floors ~fmax ~deadline ~speeds =
  let n = Array.length eff_weights in
  if Array.length speeds <> n || Array.length floors <> n then
    Violation "dimension mismatch"
  else begin
    let bad = ref Ok in
    let report v = match !bad with Ok -> bad := v | Violation _ -> () in
    Array.iteri
      (fun i f ->
        if significantly_less ~tol f floors.(i) then
          report (violationf "task %d below its floor (%g < %g)" i f floors.(i));
        if significantly_less ~tol fmax f then
          report (violationf "task %d above fmax (%g > %g)" i f fmax))
      speeds;
    let time = Futil.sum (Array.mapi (fun i f -> eff_weights.(i) /. f) speeds) in
    if time > deadline *. (1. +. tol) then
      report (violationf "total time %g exceeds deadline %g" time deadline);
    (* Common level: every task strictly above its floor must run at
       one shared speed f_c, and floor-clamped tasks must sit at a
       floor at least f_c (they would otherwise join the water
       level). *)
    let unclamped =
      Array.to_list
        (Array.mapi (fun i f -> (i, f)) speeds)
      |> List.filter (fun (i, f) -> significantly_less ~tol floors.(i) f)
    in
    (match unclamped with
    | [] -> ()
    | (_, f0) :: rest ->
      List.iter
        (fun (i, f) ->
          if not (Futil.approx_equal ~rel:tol ~abs:tol f f0) then
            report
              (violationf "unclamped tasks disagree on the common speed (%g vs %g at task %d)"
                 f0 f i))
        rest;
      let f_c = f0 in
      Array.iteri
        (fun i f ->
          let clamped = not (significantly_less ~tol floors.(i) f) in
          if clamped && significantly_less ~tol floors.(i) f_c then
            report
              (violationf
                 "task %d clamped at floor %g below the water level %g (should run at f_c)" i
                 floors.(i) f_c))
        speeds;
      (* Saturation: with at least one task above its floor the
         deadline must bind — otherwise slowing that task strictly
         reduces energy while staying feasible. *)
      if time < deadline *. (1. -. tol) then
        report
          (violationf "deadline not saturated (%g < %g) yet task speeds are above their floors"
             time deadline));
    !bad
  end

let check_chain ?(tol = 1e-6) ~weights ~deadline ~fmin ~fmax (r : Bicrit_continuous.result) =
  let n = Array.length weights in
  if Array.length r.speeds <> n then Violation "dimension mismatch"
  else begin
    let floors = Array.make n fmin in
    match
      check_waterfill ~tol ~eff_weights:weights ~floors ~fmax ~deadline ~speeds:r.speeds
    with
    | Violation _ as v -> v
    | Ok ->
      let e = energy_of ~weights ~speeds:r.speeds in
      if not (Futil.approx_equal ~rel:tol ~abs:tol e r.energy) then
        violationf "energy accounting wrong: reported %g, speeds imply %g" r.energy e
      else Ok
  end

let check_general ?(tol = 1e-6) ?(slack_tol = 1e-3) ?(probes = 32) ?(probe_seed = 7)
    ?eff_weights ~deadline ~lo ~hi mapping (r : Bicrit_continuous.result) =
  let cdag = Mapping.constraint_dag mapping in
  let n = Dag.n cdag in
  let w = match eff_weights with Some a -> a | None -> Dag.weights cdag in
  if Array.length r.speeds <> n then Violation "dimension mismatch"
  else begin
    let bad = ref Ok in
    let report v = match !bad with Ok -> bad := v | Violation _ -> () in
    Array.iteri
      (fun i f ->
        if significantly_less ~tol f lo.(i) then
          report (violationf "task %d below lo (%g < %g)" i f lo.(i));
        if significantly_less ~tol hi.(i) f then
          report (violationf "task %d above hi (%g > %g)" i f hi.(i)))
      r.speeds;
    let durations = Array.init n (fun i -> w.(i) /. r.speeds.(i)) in
    let makespan = Dag.critical_path_length cdag ~durations in
    if makespan > deadline *. (1. +. tol) then
      report (violationf "makespan %g exceeds deadline %g" makespan deadline);
    let e = energy_of ~weights:w ~speeds:r.speeds in
    if not (Futil.approx_equal ~rel:tol ~abs:tol e r.energy) then
      report (violationf "energy accounting wrong: reported %g, speeds imply %g" r.energy e);
    (* Critical-path saturation: a task above its lower clamp must have
       (almost) no slack against the deadline. *)
    let slack = Dag.slack cdag ~durations ~deadline in
    Array.iteri
      (fun i f ->
        if significantly_less ~tol lo.(i) f && slack.(i) > slack_tol *. deadline then
          report
            (violationf "task %d runs at %g > lo %g but has slack %g (could be slowed)" i f
               lo.(i) slack.(i)))
      r.speeds;
    (* Exchange probes: transferring a sliver of duration between two
       tasks must not produce a feasible, strictly cheaper point. *)
    (match !bad with
    | Violation _ -> ()
    | Ok ->
      if n >= 2 && probes > 0 then begin
        let rng = Rng.create ~seed:probe_seed in
        let base_energy = e in
        for _ = 1 to probes do
          let i = Rng.int rng n in
          let j = Rng.int rng n in
          if i <> j then begin
            let delta = 0.01 *. Float.min durations.(i) durations.(j) in
            let d' = Array.copy durations in
            d'.(i) <- durations.(i) +. delta;
            d'.(j) <- durations.(j) -. delta;
            let f' = Array.init n (fun k -> w.(k) /. d'.(k)) in
            let in_bounds =
              Array.for_all Fun.id
                (Array.init n (fun k -> f'.(k) >= lo.(k) && f'.(k) <= hi.(k)))
            in
            if in_bounds && Dag.critical_path_length cdag ~durations:d' <= deadline then begin
              let e' = energy_of ~weights:w ~speeds:f' in
              if e' < base_energy *. (1. -. Float.max tol 1e-6) then
                report
                  (violationf
                     "exchange probe found a cheaper feasible point (move %g of duration from \
                      task %d to %d: %g -> %g)"
                     delta j i base_energy e')
            end
          end
        done
      end);
    !bad
  end
