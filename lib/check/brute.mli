(** Independent reference optima for differential testing.

    Everything here is computed by means deliberately different from
    the production solvers — convex-hull geometry and exhaustive
    enumeration instead of simplex and branch-and-bound — so agreement
    between the two is meaningful evidence of correctness.

    The VDD-HOPPING references rest on the paper's R4 structure: the
    reachable (time-per-work, energy-per-work) trade-offs of a task
    are exactly the lower convex hull of the points [(1/fₖ, fₖ²)].
    For a single-processor chain with deadline [D] and total work [W],
    convexity (Jensen) gives the closed-form optimum [W·H(D/W)] where
    [H] is that hull — no LP involved. *)

val hull : levels:(float[@units "freq"]) array -> (float * float) array
(** Lower convex hull of [(1/fₖ, fₖ²)], sorted by increasing
    time-per-work.  The first point corresponds to [fmax], the last to
    [fmin]. *)

val energy_per_work :
  levels:(float[@units "freq"]) array -> u:float -> float option
(** [H(u)]: minimal energy per unit work when spending [u] time units
    per unit work, mixing speeds from [levels].  [None] when
    [u < 1/fmax] (infeasible even flat out); values above [1/fmin]
    clamp to running at [fmin] (the processor idles in the slack). *)

val vdd_chain_optimum :
  levels:(float[@units "freq"]) array ->
  weights:(float[@units "work"]) array ->
  deadline:(float[@units "time"]) ->
  (float[@units "energy"]) option
(** Closed-form optimal VDD-HOPPING energy of a single-processor
    chain: [W·H(D/W)].  [None] when the deadline is infeasible. *)

val discrete_optimum :
  ?assignment_limit:int ->
  levels:(float[@units "freq"]) array ->
  deadline:(float[@units "time"]) ->
  Mapping.t ->
  (float[@units "energy"]) option
(** Exhaustive DISCRETE optimum: try all [mⁿ] one-speed-per-task
    assignments against the mapping's constraint DAG and keep the
    cheapest deadline-feasible one.  [None] when none is feasible.
    @raise Invalid_argument when [mⁿ] exceeds [assignment_limit]
    (default [200_000]) — use it only on tiny instances. *)
