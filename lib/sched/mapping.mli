(** Task-to-processor mappings.

    Following the paper (Section II), the mapping of the DAG onto the
    [p] processors is an {e input} of both BI-CRIT and TRI-CRIT: "an
    ordered list of tasks to execute on each processor".  The schedule
    may change speeds and add re-executions but never moves a task.

    The central derived object is the {!constraint_dag}: the
    application DAG augmented with an edge between consecutive tasks of
    each processor's list.  A speed assignment meets the deadline iff
    the longest path of the constraint DAG under the induced durations
    is at most [D] — this reduction is what lets every optimizer in
    [lib/core] reason about a single DAG. *)

type t

val make : p:int -> Dag.t -> order:Dag.task list array -> t
(** [make ~p dag ~order] with [order.(k)] the execution order on
    processor [k].  The lists must partition the task set, and the
    concatenation must respect precedence (checked by building the
    constraint DAG).  @raise Invalid_argument otherwise. *)

val single_processor : Dag.t -> t
(** All tasks on one processor, in (deterministic) topological order —
    the linear-chain setting of the paper's TRI-CRIT NP-hardness
    proof.

    @raise Invalid_argument on a malformed task graph (nonpositive weight, out-of-range or self-loop edge, or cycle). *)

val one_task_per_proc : Dag.t -> t
(** Task [i] on processor [i] — the fully parallel mapping assumed by
    the fork/SP closed-form theorems.

    @raise Invalid_argument on an inconsistent processor count or order permutation. *)

val p : t -> int
val dag : t -> Dag.t

val order : t -> int -> Dag.task list
(** Execution order of one processor. *)

val proc_of : t -> Dag.task -> int
val rank_of : t -> Dag.task -> int
(** Position of the task in its processor's list. *)

val constraint_dag : t -> Dag.t
(** The application DAG plus processor-order edges (memoised). *)

val load : t -> int -> float
(** Total weight mapped on a processor. *)

val pp : Format.formatter -> t -> unit

val of_assignment : p:int -> Dag.t -> proc:int array -> t
(** Build a mapping from a bare task→processor assignment, ordering
    each processor's list by the DAG's (deterministic) topological
    order — the natural completion when a placement tool provides no
    intra-processor order.  @raise Invalid_argument on an out-of-range
    processor. *)
