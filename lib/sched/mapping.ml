(* Immutable: mappings are shared freely across worker domains by the
   parallel sweeps, so the constraint DAG is computed eagerly in [make]
   instead of being memoised through a mutable field (E007). *)
type t = {
  p : int;
  dag : Dag.t;
  order : Dag.task list array;
  proc_of : int array;
  rank_of : int array;
  cdag : Dag.t;
}

let build_constraint_dag dag order =
  let proc_edges =
    Array.to_list order
    |> List.concat_map (fun tasks ->
           let rec pairs = function
             | a :: (b :: _ as rest) -> (a, b) :: pairs rest
             | [ _ ] | [] -> []
           in
           pairs tasks)
  in
  (* Dag.make validates acyclicity, which is exactly the "order
     respects precedence" requirement. *)
  Dag.make ?labels:None ~weights:(Dag.weights dag)
    ~edges:(Dag.edges dag @ proc_edges)

let make ~p dag ~order =
  if Array.length order <> p then invalid_arg "Mapping.make: order length <> p";
  let n = Dag.n dag in
  let proc_of = Array.make n (-1) and rank_of = Array.make n (-1) in
  Array.iteri
    (fun k tasks ->
      List.iteri
        (fun r i ->
          if i < 0 || i >= n then invalid_arg "Mapping.make: task out of range";
          if proc_of.(i) >= 0 then invalid_arg "Mapping.make: task mapped twice";
          proc_of.(i) <- k;
          rank_of.(i) <- r)
        tasks)
    order;
  Array.iteri
    (fun i k -> if k < 0 then invalid_arg (Printf.sprintf "Mapping.make: task %d unmapped" i))
    proc_of;
  (* Raises through Dag.make if the order conflicts with precedence. *)
  let cdag = build_constraint_dag dag order in
  { p; dag; order = Array.map (fun l -> l) order; proc_of; rank_of; cdag }

let single_processor dag =
  let topo = Array.to_list (Dag.topological_order dag) in
  make ~p:1 dag ~order:[| topo |]

let one_task_per_proc dag =
  let n = Dag.n dag in
  make ~p:n dag ~order:(Array.init n (fun i -> [ i ]))

let p t = t.p
let dag t = t.dag
let order t k = t.order.(k)
let proc_of t i = t.proc_of.(i)
let rank_of t i = t.rank_of.(i)

let constraint_dag t = t.cdag

let load t k = Es_util.Futil.sum_by (Dag.weight t.dag) t.order.(k)

let pp ppf t =
  Array.iteri
    (fun k tasks ->
      Format.fprintf ppf "P%d: %s@." k
        (String.concat " -> " (List.map (Dag.label t.dag) tasks)))
    t.order

let of_assignment ~p dag ~proc =
  if Array.length proc <> Dag.n dag then
    invalid_arg "Mapping.of_assignment: proc length mismatch";
  Array.iter
    (fun k -> if k < 0 || k >= p then invalid_arg "Mapping.of_assignment: processor out of range")
    proc;
  let topo = Dag.topological_order dag in
  let order = Array.make p [] in
  for idx = Dag.n dag - 1 downto 0 do
    let i = topo.(idx) in
    order.(proc.(i)) <- i :: order.(proc.(i))
  done;
  make ~p dag ~order
