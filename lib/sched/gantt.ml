let render ?(width = 72) ?deadline sched =
  let dag = Schedule.dag sched in
  let mapping = Schedule.mapping sched in
  let starts = Schedule.start_times sched in
  let horizon =
    let ms = Schedule.makespan sched in
    match deadline with Some d -> Float.max ms d | None -> ms
  in
  let horizon = if horizon <= 0. then 1. else horizon in
  let col t = int_of_float (Float.of_int width *. t /. horizon) in
  let buf = Buffer.create 1024 in
  for k = 0 to Mapping.p mapping - 1 do
    let row = Bytes.make (width + 1) '.' in
    List.iter
      (fun i ->
        let t0 = starts.(i) in
        let execs = Schedule.executions sched i in
        let letter = Char.chr (Char.code 'A' + (i mod 26)) in
        let paint from until c =
          for x = max 0 (col from) to min width (col until - 1) do
            Bytes.set row x c
          done
        in
        (match execs with
        | [ e ] -> paint t0 (t0 +. Schedule.exec_time e) letter
        | [ e1; e2 ] ->
          let mid = t0 +. Schedule.exec_time e1 in
          paint t0 mid letter;
          paint mid (mid +. Schedule.exec_time e2) '*'
        | _ -> ()))
      (Mapping.order mapping k);
    (match deadline with
    | Some d when col d <= width -> Bytes.set row (min width (col d)) '|'
    | _ -> ());
    Buffer.add_string buf (Printf.sprintf "P%-2d %s\n" k (Bytes.to_string row))
  done;
  Buffer.add_string buf
    (Printf.sprintf "    0%s%.3g\n" (String.make (max 0 (width - 6)) ' ') horizon);
  ignore dag;
  Buffer.contents buf

(* stdout is this entry point's contract: it exists so CLI callers can
   dump a chart without buffering it themselves *)
let print ?width ?deadline sched = print_string (render ?width ?deadline sched)
[@@lint.allow "E004"]
