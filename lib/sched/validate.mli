(** Feasibility checking of complete schedules.

    Every optimizer and heuristic in the core library is checked
    against this single validator in the test suite, so that
    "feasible" means the same thing everywhere: speeds admissible for
    the platform's speed model, worst-case makespan within the
    deadline, and — when reliability parameters are supplied — the
    per-task TRI-CRIT constraint of Eq. (1). *)

type violation =
  | Inadmissible_speed of { task : Dag.task; speed : float }
  | Speed_change_forbidden of { task : Dag.task }
      (** more than one constant-speed part under DISCRETE or
          INCREMENTAL *)
  | Deadline_exceeded of { makespan : float; deadline : float }
  | Reliability_violated of { task : Dag.task; failure : float; target : float }

val check :
  ?deadline:float ->
  ?rel:Rel.params ->
  model:Speed.t ->
  Schedule.t ->
  violation list
(** Empty list = feasible.  The makespan is the worst-case one (all
    re-executions count).

    @raise Invalid_argument on a malformed task graph (nonpositive weight, out-of-range or self-loop edge, or cycle). *)

val is_feasible :
  ?deadline:float ->
  ?rel:Rel.params ->
  model:Speed.t ->
  Schedule.t ->
  bool
(** @raise Invalid_argument on a malformed task graph (nonpositive weight, out-of-range or self-loop edge, or cycle). *)

val explain : Dag.t -> violation -> string
(** Human-readable rendering for error reports. *)
