(** ASCII Gantt charts of worst-case schedules, for the examples and
    for debugging heuristics by eye. *)

val render : ?width:int -> ?deadline:float -> Schedule.t -> string
(** One row per processor; each task paints its worst-case execution
    interval (both attempts for re-executed tasks, the second marked
    with ['*']).  [width] is the chart width in characters (default
    72); [deadline] adds a marker column.

    @raise Invalid_argument on a malformed task graph (nonpositive weight, out-of-range or self-loop edge, or cycle). *)

val print : ?width:int -> ?deadline:float -> Schedule.t -> unit
(** @raise Invalid_argument on a malformed task graph (nonpositive weight, out-of-range or self-loop edge, or cycle). *)
