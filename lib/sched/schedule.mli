(** Concrete schedules: speeds (and re-executions) on top of a mapping.

    A schedule assigns to each task one or two {e executions}; an
    execution is a list of [(speed, duration)] parts — a single part
    under CONTINUOUS/DISCRETE/INCREMENTAL, possibly several under
    VDD-HOPPING.  Makespan and feasibility are always evaluated in the
    paper's worst case: {e every} execution of a re-executed task
    counts in both time and energy (Section II, "the deadline D must be
    matched even in the case where all tasks that are re-executed fail
    during their first execution"). *)

type part = { speed : float; time : float }
(** A constant-speed interval; it performs [speed ·time] units of
    work. *)

type execution = part list
(** One attempt at running a task, from start to completion. *)

type t

val make : Mapping.t -> executions:execution list array -> t
(** [executions.(i)] lists the attempts for task [i] (length 1 or 2).
    @raise Invalid_argument if a task has no or more than two
    executions, a part is non-positive, or the parts of an execution
    do not add up to the task's weight (within 1e-6 relative). *)

val uniform : Mapping.t -> speed:float -> t
(** Every task executed once at [speed].

    @raise Invalid_argument on a schedule whose executions disagree with the mapping (length mismatch or empty execution list). *)

val of_speeds : Mapping.t -> speeds:float array -> t
(** Task [i] executed once at [speeds.(i)].

    @raise Invalid_argument on a schedule whose executions disagree with the mapping (length mismatch or empty execution list). *)

val mapping : t -> Mapping.t
val dag : t -> Dag.t

val executions : t -> Dag.task -> execution list

val reexecuted : t -> Dag.task -> bool

val exec_time : execution -> float
(** Total duration of one execution. *)

val exec_work : execution -> float
val exec_energy : execution -> float
(** [Σ f²·(f·t)] = [Σ f³·t] over the parts. *)

val duration : t -> Dag.task -> float
(** Worst-case time charged to the task: the sum over all its
    executions. *)

val durations : t -> float array

val energy : t -> float
(** Total energy, both executions always counted. *)

val task_energy : t -> Dag.task -> float

val makespan : t -> float
(** Worst-case makespan: longest path of the mapping's constraint DAG
    under {!durations}.

    @raise Invalid_argument on a malformed task graph (nonpositive weight, out-of-range or self-loop edge, or cycle). *)

val start_times : t -> float array
(** Earliest start of each task's (first) execution in the worst-case
    schedule.

    @raise Invalid_argument on a malformed task graph (nonpositive weight, out-of-range or self-loop edge, or cycle). *)

val with_execs : t -> Dag.task -> execution list -> t
(** Functional update of one task's executions.

    @raise Invalid_argument on a schedule whose executions disagree with the mapping (length mismatch or empty execution list). *)

val pp : Format.formatter -> t -> unit
