(** Critical-path list scheduling — the mapping stage.

    The paper assumes the mapping is given, and suggests obtaining it
    by coupling the energy heuristics "with classical list-scheduling
    heuristics" (Sections II and V); its future-work section asks how
    much the choice of the list-scheduling priority affects the final
    energy.  This module provides that stage: a greedy list scheduler
    on [p] identical processors (durations taken at reference speed 1,
    i.e. proportional to weights) with interchangeable priority rules,
    reproduced in experiment E11. *)

type priority =
  | Bottom_level
      (** critical-path priority: longest weight-path to a sink,
          including the task — the classical choice the authors used *)
  | Top_level  (** longest path from a source; breadth-first flavour *)
  | Heaviest_first  (** largest weight first among ready tasks *)
  | Lightest_first  (** smallest weight first (an intentionally poor rule) *)
  | Max_out_degree  (** most successors first *)

val bottom_levels : Dag.t -> float array
(** Longest weight-path from each task to a sink (inclusive).

    @raise Invalid_argument on a malformed task graph (nonpositive weight, out-of-range or self-loop edge, or cycle). *)

val top_levels : Dag.t -> float array
(** Longest weight-path from a source to each task (exclusive).

    @raise Invalid_argument on a malformed task graph (nonpositive weight, out-of-range or self-loop edge, or cycle). *)

val schedule : Dag.t -> p:int -> priority:priority -> Mapping.t
(** Greedy list scheduling: repeatedly start the highest-priority ready
    task on the processor that frees up first.  Ties break on smaller
    task id, so the result is deterministic.

    @raise Invalid_argument on an inconsistent processor count or order permutation. *)

val makespan_at_speed : Mapping.t -> f:float -> float
(** Makespan when every task runs once at speed [f] — the reference
    deadline scale: [D_min = makespan_at_speed m ~f:fmax] is the
    tightest deadline any speed assignment can meet, and experiments
    sweep [D = slack · D_min].

    @raise Invalid_argument on a malformed task graph (nonpositive weight, out-of-range or self-loop edge, or cycle). *)

val priority_name : priority -> string
val all_priorities : priority list
