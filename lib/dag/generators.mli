(** Workload generators.

    Every experiment of the reproduction draws its task graphs from
    here.  The first group mirrors the structures for which the paper
    proves closed forms or polynomial algorithms (chains, forks, joins,
    series-parallel graphs); the second group provides the general-DAG
    classes used to compare the TRI-CRIT heuristic families (random
    layered graphs, Erdős–Rényi-style DAGs, trees); the third group are
    classic dense-linear-algebra task graphs, standing in for the
    "legacy application" workloads the paper motivates. *)

type r = Es_util.Rng.t

val chain : r -> n:int -> wlo:float -> whi:float -> Dag.t
(** Linear chain of [n] tasks, weights uniform in [\[wlo, whi)].

    @raise Invalid_argument on a malformed task graph (nonpositive weight, out-of-range or self-loop edge, or cycle). *)

val fork : r -> n:int -> wlo:float -> whi:float -> Dag.t
(** Source task plus [n] parallel children ([n+1] tasks; task 0 is the
    source, matching the paper's fork theorem).

    @raise Invalid_argument on a malformed task graph (nonpositive weight, out-of-range or self-loop edge, or cycle). *)

val join : r -> n:int -> wlo:float -> whi:float -> Dag.t
(** [n] parallel tasks followed by a sink (task [n]).

    @raise Invalid_argument on a malformed task graph (nonpositive weight, out-of-range or self-loop edge, or cycle). *)

val fork_join : r -> n:int -> wlo:float -> whi:float -> Dag.t
(** Source, [n] parallel children, sink.

    @raise Invalid_argument on a malformed task graph (nonpositive weight, out-of-range or self-loop edge, or cycle). *)

val random_sp : r -> n:int -> wlo:float -> whi:float -> Sp.t
(** Random series-parallel tree with [n] leaves obtained by recursive
    splitting with a fair series/parallel coin. *)

val random_layered : r -> layers:int -> width:int -> density:float -> wlo:float -> whi:float -> Dag.t
(** Layered DAG: [layers] levels of [1..width] tasks; each consecutive
    pair of layers is connected with probability [density] per pair
    (at least one incoming edge per non-first-layer task, so the graph
    is connected level to level).

    @raise Invalid_argument on a malformed task graph (nonpositive weight, out-of-range or self-loop edge, or cycle). *)

val random_dag : r -> n:int -> p:float -> wlo:float -> whi:float -> Dag.t
(** Erdős–Rényi style: each pair [(i, j)], [i < j], is an edge with
    probability [p].

    @raise Invalid_argument on a malformed task graph (nonpositive weight, out-of-range or self-loop edge, or cycle). *)

val out_tree : r -> n:int -> max_children:int -> wlo:float -> whi:float -> Dag.t
(** Random rooted out-tree (each task's parent drawn among earlier
    tasks, capped arity).

    @raise Invalid_argument on a malformed task graph (nonpositive weight, out-of-range or self-loop edge, or cycle). *)

val in_tree : r -> n:int -> max_children:int -> wlo:float -> whi:float -> Dag.t
(** Reverse of {!out_tree}: a reduction tree.

    @raise Invalid_argument on a malformed task graph (nonpositive weight, out-of-range or self-loop edge, or cycle). *)

val lu : n:int -> Dag.t
(** Task graph of right-looking LU factorisation on an [n × n] tile
    grid: per step [k] a pivot task, [n−k−1] panel updates in each
    dimension and [(n−k−1)²] trailing updates.  Weights follow tile
    operation counts (pivot 1/3, panel 1/2, update 1 — in arbitrary
    flop units).

    @raise Invalid_argument on a malformed task graph (nonpositive weight, out-of-range or self-loop edge, or cycle). *)

val fft : levels:int -> Dag.t
(** Butterfly task graph of a radix-2 FFT with [2^levels] lanes and
    [levels] stages; unit weights.

    @raise Invalid_argument on a malformed task graph (nonpositive weight, out-of-range or self-loop edge, or cycle). *)

val stencil : rows:int -> cols:int -> Dag.t
(** Wavefront dependency grid (Gauss–Seidel sweep): task [(i,j)]
    depends on [(i−1,j)] and [(i,j−1)]; unit weights.

    @raise Invalid_argument on a malformed task graph (nonpositive weight, out-of-range or self-loop edge, or cycle). *)

val cholesky : n:int -> Dag.t
(** Task graph of tiled Cholesky factorisation on an [n × n] tile grid:
    per step [k] one factorisation task (POTRF, weight 1/3), [n−k−1]
    triangular solves (TRSM, weight 1), and updates of the trailing
    lower triangle (SYRK on diagonals, weight 1/2; GEMM elsewhere,
    weight 1).

    @raise Invalid_argument on a malformed task graph (nonpositive weight, out-of-range or self-loop edge, or cycle). *)

val pipeline : r -> stages:int -> width:int -> wlo:float -> whi:float -> Dag.t
(** A chain of fork-joins ("clusters of multi-cores" motif, Section V
    of the paper): [stages] consecutive stages, each a source task
    fanning out to [width] parallel tasks joined by a sink that feeds
    the next stage's source.

    @raise Invalid_argument on a malformed task graph (nonpositive weight, out-of-range or self-loop edge, or cycle). *)
