(** Graphviz export of task graphs, for documentation and debugging. *)

val of_dag : ?name:string -> Dag.t -> string
(** DOT source for the DAG; node labels show task name and weight. *)

val to_file : ?name:string -> Dag.t -> path:string -> unit
(** Write {!of_dag} output to [path].

    @raise Sys_error if [path] cannot be opened for writing. *)
