type task = int

type t = {
  n : int;
  weights : float array;
  labels : string array;
  succs : task list array; (* ascending *)
  preds : task list array; (* ascending *)
}

let n t = t.n
let weight t i = t.weights.(i)
let weights t = Array.copy t.weights
let label t i = t.labels.(i)
let succs t i = t.succs.(i)
let preds t i = t.preds.(i)

let edges t =
  let acc = ref [] in
  for i = t.n - 1 downto 0 do
    List.iter (fun j -> acc := (i, j) :: !acc) t.succs.(i)
  done;
  !acc

let n_edges t = Array.fold_left (fun acc l -> acc + List.length l) 0 t.succs

let sources t =
  List.filter (fun i -> t.preds.(i) = []) (List.init t.n Fun.id)

let sinks t = List.filter (fun i -> t.succs.(i) = []) (List.init t.n Fun.id)

let topological_order t =
  let indeg = Array.map List.length t.preds in
  let module Q = Set.Make (Int) in
  let ready = ref Q.empty in
  Array.iteri (fun i d -> if d = 0 then ready := Q.add i !ready) indeg;
  let order = Array.make t.n 0 in
  let k = ref 0 in
  while not (Q.is_empty !ready) do
    let i = Q.min_elt !ready in
    ready := Q.remove i !ready;
    order.(!k) <- i;
    incr k;
    List.iter
      (fun j ->
        indeg.(j) <- indeg.(j) - 1;
        if indeg.(j) = 0 then ready := Q.add j !ready)
      t.succs.(i)
  done;
  if !k <> t.n then invalid_arg "Dag: cycle detected";
  order

let make ?labels ~weights ~edges =
  let n = Array.length weights in
  Array.iteri
    (fun i w -> if w <= 0. then invalid_arg (Printf.sprintf "Dag.make: weight %d not positive" i))
    weights;
  let labels =
    match labels with
    | Some l ->
      if Array.length l <> n then invalid_arg "Dag.make: labels length mismatch";
      Array.copy l
    | None -> Array.init n (Printf.sprintf "T%d")
  in
  let succs = Array.make n [] and preds = Array.make n [] in
  let seen = Hashtbl.create (List.length edges) in
  List.iter
    (fun (i, j) ->
      if i < 0 || i >= n || j < 0 || j >= n then invalid_arg "Dag.make: edge out of range";
      if i = j then invalid_arg "Dag.make: self loop";
      if not (Hashtbl.mem seen (i, j)) then begin
        Hashtbl.add seen (i, j) ();
        succs.(i) <- j :: succs.(i);
        preds.(j) <- i :: preds.(j)
      end)
    edges;
  Array.iteri (fun i l -> succs.(i) <- List.sort Int.compare l) succs;
  Array.iteri (fun i l -> preds.(i) <- List.sort Int.compare l) preds;
  let t = { n; weights = Array.copy weights; labels; succs; preds } in
  ignore (topological_order t);
  t

let total_weight t = Es_util.Futil.sum t.weights
let is_edge t i j = List.mem j t.succs.(i)

let map_weights t f =
  { t with weights = Array.mapi (fun i w -> f i w) t.weights }

let earliest_start t ~durations =
  assert (Array.length durations = t.n);
  let order = topological_order t in
  let es = Array.make t.n 0. in
  Array.iter
    (fun i ->
      let start =
        List.fold_left (fun acc p -> Float.max acc (es.(p) +. durations.(p))) 0. t.preds.(i)
      in
      es.(i) <- start)
    order;
  es

let critical_path_length t ~durations =
  let es = earliest_start t ~durations in
  let finish = ref 0. in
  for i = 0 to t.n - 1 do
    finish := Float.max !finish (es.(i) +. durations.(i))
  done;
  !finish

let latest_start t ~durations ~deadline =
  assert (Array.length durations = t.n);
  let order = topological_order t in
  let ls = Array.make t.n 0. in
  for k = t.n - 1 downto 0 do
    let i = order.(k) in
    let latest_finish =
      List.fold_left (fun acc s -> Float.min acc ls.(s)) deadline t.succs.(i)
    in
    ls.(i) <- latest_finish -. durations.(i)
  done;
  ls

let slack t ~durations ~deadline =
  let es = earliest_start t ~durations in
  let ls = latest_start t ~durations ~deadline in
  Array.init t.n (fun i -> ls.(i) -. es.(i))

let descendants t i =
  let seen = Array.make t.n false in
  let rec visit j =
    List.iter
      (fun s ->
        if not seen.(s) then begin
          seen.(s) <- true;
          visit s
        end)
      t.succs.(j)
  in
  visit i;
  List.filter (fun j -> seen.(j)) (List.init t.n Fun.id)

let ancestors t i =
  let seen = Array.make t.n false in
  let rec visit j =
    List.iter
      (fun p ->
        if not seen.(p) then begin
          seen.(p) <- true;
          visit p
        end)
      t.preds.(j)
  in
  visit i;
  List.filter (fun j -> seen.(j)) (List.init t.n Fun.id)

let transitive_reduction t =
  (* Edge (i, j) is redundant iff j is reachable from some other
     successor of i. *)
  let keep (i, j) =
    not
      (List.exists (fun s -> s <> j && List.mem j (descendants t s)) t.succs.(i))
  in
  let edges = List.filter keep (edges t) in
  make ~labels:t.labels ~weights:t.weights ~edges

let reverse t =
  let edges = List.map (fun (i, j) -> (j, i)) (edges t) in
  make ~labels:t.labels ~weights:t.weights ~edges

let pp ppf t =
  for i = 0 to t.n - 1 do
    Format.fprintf ppf "%s (w=%g) -> %s@."
      t.labels.(i) t.weights.(i)
      (String.concat ", " (List.map (fun j -> t.labels.(j)) t.succs.(i)))
  done
