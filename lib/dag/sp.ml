type t = Leaf of float | Series of t * t | Parallel of t * t

let leaf w = Leaf w

let fold1 f = function
  | [] -> invalid_arg "Sp: empty composition"
  | x :: rest -> List.fold_left f x rest

let series l = fold1 (fun a b -> Series (a, b)) l
let parallel l = fold1 (fun a b -> Parallel (a, b)) l
let chain ws = series (List.map leaf (Array.to_list ws))
let fork ~root ws = Series (leaf root, parallel (List.map leaf (Array.to_list ws)))
let join ws ~sink = Series (parallel (List.map leaf (Array.to_list ws)), leaf sink)

let fork_join ~root ws ~sink =
  Series (leaf root, Series (parallel (List.map leaf (Array.to_list ws)), leaf sink))

let rec n_tasks = function
  | Leaf _ -> 1
  | Series (a, b) | Parallel (a, b) -> n_tasks a + n_tasks b

let rec total_weight = function
  | Leaf w -> w
  | Series (a, b) | Parallel (a, b) -> total_weight a +. total_weight b

let weights t =
  let acc = ref [] in
  let rec visit = function
    | Leaf w -> acc := w :: !acc
    | Series (a, b) | Parallel (a, b) ->
      visit a;
      visit b
  in
  visit t;
  Array.of_list (List.rev !acc)

let to_dag t =
  let weights = weights t in
  let next = ref 0 in
  let edges = ref [] in
  (* returns (sources, sinks) of the subgraph *)
  let rec build = function
    | Leaf _ ->
      let id = !next in
      incr next;
      ([ id ], [ id ])
    | Series (a, b) ->
      let src_a, sink_a = build a in
      let src_b, sink_b = build b in
      List.iter (fun s -> List.iter (fun d -> edges := (s, d) :: !edges) src_b) sink_a;
      (src_a, sink_b)
    | Parallel (a, b) ->
      let src_a, sink_a = build a in
      let src_b, sink_b = build b in
      (src_a @ src_b, sink_a @ sink_b)
  in
  ignore (build t);
  Dag.make ?labels:None ~weights ~edges:!edges

(* --- recognition ------------------------------------------------- *)

module ISet = Set.Make (Int)

let of_dag dag =
  let exception Not_sp in
  (* Work on subsets of task ids with edges induced from [dag]. *)
  let succs_in set i = List.filter (fun j -> ISet.mem j set) (Dag.succs dag i) in
  let preds_in set i = List.filter (fun j -> ISet.mem j set) (Dag.preds dag i) in
  let components set =
    (* weakly connected components of the induced subgraph *)
    let remaining = ref set and comps = ref [] in
    while not (ISet.is_empty !remaining) do
      let seed = ISet.min_elt !remaining in
      let comp = ref ISet.empty in
      let stack = ref [ seed ] in
      while !stack <> [] do
        match !stack with
        | [] -> ()
        | i :: rest ->
          stack := rest;
          if (not (ISet.mem i !comp)) && ISet.mem i !remaining then begin
            comp := ISet.add i !comp;
            List.iter (fun j -> stack := j :: !stack) (succs_in !remaining i);
            List.iter (fun j -> stack := j :: !stack) (preds_in !remaining i)
          end
      done;
      remaining := ISet.diff !remaining !comp;
      comps := !comp :: !comps
    done;
    List.rev !comps
  in
  let topo_of set =
    (* induced subgraph topological order, smallest id first *)
    let indeg = Hashtbl.create 16 in
    let indeg_of i = Option.value ~default:0 (Hashtbl.find_opt indeg i) in
    ISet.iter (fun i -> Hashtbl.replace indeg i (List.length (preds_in set i))) set;
    let ready = ref (ISet.filter (fun i -> indeg_of i = 0) set) in
    let order = ref [] in
    while not (ISet.is_empty !ready) do
      let i = ISet.min_elt !ready in
      ready := ISet.remove i !ready;
      order := i :: !order;
      List.iter
        (fun j ->
          let d = indeg_of j - 1 in
          Hashtbl.replace indeg j d;
          if d = 0 then ready := ISet.add j !ready)
        (succs_in set i)
    done;
    Array.of_list (List.rev !order)
  in
  let rec decompose set =
    if ISet.cardinal set = 1 then Leaf (Dag.weight dag (ISet.min_elt set))
    else begin
      match components set with
      | [] -> raise Not_sp
      | _ :: _ :: _ as comps -> parallel (List.map decompose comps)
      | [ _single ] ->
        (* connected: look for a series prefix cut in topological order *)
        let order = topo_of set in
        let n = Array.length order in
        let cut = ref None in
        let k = ref 1 in
        while !cut = None && !k < n do
          let a = ISet.of_list (Array.to_list (Array.sub order 0 !k)) in
          let b = ISet.diff set a in
          let sink_a = ISet.filter (fun i -> succs_in a i = []) a in
          let src_b = ISet.filter (fun i -> preds_in b i = []) b in
          (* cross edges must be exactly sink_a × src_b *)
          let ok = ref true in
          ISet.iter
            (fun i ->
              List.iter
                (fun j ->
                  if ISet.mem j b then
                    if not (ISet.mem i sink_a && ISet.mem j src_b) then ok := false)
                (succs_in set i))
            a;
          if !ok then
            ISet.iter
              (fun i ->
                ISet.iter
                  (fun j -> if not (Dag.is_edge dag i j) then ok := false)
                  src_b)
              sink_a;
          if !ok then cut := Some (a, b) else incr k
        done;
        (match !cut with
        | Some (a, b) -> Series (decompose a, decompose b)
        | None -> raise Not_sp)
    end
  in
  let all = ISet.of_list (List.init (Dag.n dag) Fun.id) in
  if ISet.is_empty all then None
  else match decompose all with sp -> Some sp | exception Not_sp -> None

let rec pp ppf = function
  | Leaf w -> Format.fprintf ppf "%g" w
  | Series (a, b) -> Format.fprintf ppf "(%a ; %a)" pp a pp b
  | Parallel (a, b) -> Format.fprintf ppf "(%a | %a)" pp a pp b
