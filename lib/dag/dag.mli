(** Directed acyclic task graphs.

    The application model of the paper (Section II): [n] tasks
    [T₁ … Tₙ], task [i] carrying a computation weight [wᵢ], related by
    precedence edges.  Tasks are identified by dense integer ids
    [0 … n−1].  The structure is immutable after construction. *)

type task = int
(** Task identifier, [0 ≤ id < n]. *)

type t

val make : ?labels:string array -> weights:float array -> edges:(task * task) list -> t
(** [make ~weights ~edges] builds a DAG with [Array.length weights]
    tasks.  Weights must be strictly positive.  Duplicate edges are
    collapsed; self-loops or cycles raise [Invalid_argument].
    [labels] (default ["T<i>"]) are used by exports only.

    @raise Invalid_argument on a malformed task graph (nonpositive weight, out-of-range or self-loop edge, or cycle). *)

val n : t -> int
(** Number of tasks. *)

val weight : t -> task -> float
(** Computation requirement [wᵢ]. *)

val weights : t -> float array
(** All weights (a fresh copy). *)

val label : t -> task -> string

val succs : t -> task -> task list
(** Immediate successors, ascending. *)

val preds : t -> task -> task list
(** Immediate predecessors, ascending. *)

val edges : t -> (task * task) list
(** All edges, lexicographically sorted. *)

val n_edges : t -> int

val sources : t -> task list
(** Tasks with no predecessor. *)

val sinks : t -> task list
(** Tasks with no successor. *)

val topological_order : t -> task array
(** A topological order (Kahn's algorithm, smallest-id-first, so the
    order is deterministic).

    @raise Invalid_argument on a malformed task graph (nonpositive weight, out-of-range or self-loop edge, or cycle). *)

val total_weight : t -> float
(** [Σ wᵢ]. *)

val is_edge : t -> task -> task -> bool

val map_weights : t -> (task -> float -> float) -> t
(** Same structure with transformed weights. *)

val critical_path_length : t -> durations:float array -> float
(** Longest path through the DAG where task [i] contributes
    [durations.(i)]; the makespan lower bound on unbounded
    processors.

    @raise Invalid_argument on a malformed task graph (nonpositive weight, out-of-range or self-loop edge, or cycle). *)

val earliest_start : t -> durations:float array -> float array
(** Earliest start time of every task under unlimited processors.

    @raise Invalid_argument on a malformed task graph (nonpositive weight, out-of-range or self-loop edge, or cycle). *)

val latest_start : t -> durations:float array -> deadline:float -> float array
(** Latest start times meeting [deadline]; may be negative when the
    deadline is infeasible even with unlimited processors.

    @raise Invalid_argument on a malformed task graph (nonpositive weight, out-of-range or self-loop edge, or cycle). *)

val slack : t -> durations:float array -> deadline:float -> float array
(** Per-task float: [latest_start − earliest_start].  Tasks with zero
    slack are critical.  The parallel-oriented TRI-CRIT heuristic
    allocates re-executions by decreasing slack.

    @raise Invalid_argument on a malformed task graph (nonpositive weight, out-of-range or self-loop edge, or cycle). *)

val transitive_reduction : t -> t
(** Remove every edge implied by a longer path.  Weights preserved.

    @raise Invalid_argument on a malformed task graph (nonpositive weight, out-of-range or self-loop edge, or cycle). *)

val ancestors : t -> task -> task list
(** All transitive predecessors, ascending. *)

val descendants : t -> task -> task list

val reverse : t -> t
(** Flip every edge (used to derive join results from fork results).

    @raise Invalid_argument on a malformed task graph (nonpositive weight, out-of-range or self-loop edge, or cycle). *)

val pp : Format.formatter -> t -> unit
(** Debugging output: one line per task with successors. *)
