(** Series-parallel task graphs.

    The CONTINUOUS BI-CRIT closed forms of the paper (Section III)
    apply to special execution-graph structures — chains, forks and,
    more generally, series-parallel (SP) graphs.  This module gives SP
    graphs a native tree representation on which those closed forms are
    recursions, plus conversion to/from plain DAGs.

    Composition semantics (node series-parallel digraphs):
    - [Leaf w] is a single task of weight [w];
    - [Series (a, b)] runs [a] then [b]: an edge from every sink of [a]
      to every source of [b];
    - [Parallel (a, b)] runs [a] and [b] independently. *)

type t =
  | Leaf of float  (** a single task with its weight *)
  | Series of t * t
  | Parallel of t * t

val leaf : float -> t
val series : t list -> t
(** Right fold of [Series]; requires a non-empty list.

    @raise Invalid_argument on an empty series or parallel composition. *)

val parallel : t list -> t
(** Right fold of [Parallel]; requires a non-empty list.

    @raise Invalid_argument on an empty series or parallel composition. *)

val chain : float array -> t
(** [chain ws] is the linear chain [w₀ ; w₁ ; …].

    @raise Invalid_argument on an empty series or parallel composition. *)

val fork : root:float -> float array -> t
(** [fork ~root ws] is the fork graph of the paper's theorem: source
    [root] followed by the parallel children [ws].

    @raise Invalid_argument on an empty series or parallel composition. *)

val join : float array -> sink:float -> t
(** Parallel children followed by a sink.

    @raise Invalid_argument on an empty series or parallel composition. *)

val fork_join : root:float -> float array -> sink:float -> t
(** @raise Invalid_argument on an empty series or parallel composition. *)

val n_tasks : t -> int
val total_weight : t -> float

val weights : t -> float array
(** Leaf weights in left-to-right order — the task ids of {!to_dag}. *)

val to_dag : t -> Dag.t
(** Expand to a plain DAG.  Task ids follow left-to-right leaf order.

    @raise Invalid_argument on a malformed task graph (nonpositive weight, out-of-range or self-loop edge, or cycle). *)

val of_dag : Dag.t -> t option
(** Best-effort SP recognition: weakly-connected components become
    parallel branches; a topological prefix whose outgoing cross edges
    form a complete bipartite graph [sinks(prefix) × sources(rest)]
    becomes a series cut.  Recognises every graph produced by
    {!to_dag}; returns [None] for non-SP DAGs.

    @raise Invalid_argument on an empty series or parallel composition. *)

val pp : Format.formatter -> t -> unit
