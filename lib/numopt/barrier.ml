module Vec = Es_linalg.Vec
module Mat = Es_linalg.Mat

type objective = { f : Vec.t -> float; grad : Vec.t -> Vec.t; hess : Vec.t -> Mat.t }

exception Not_strictly_feasible

module Obs = Es_obs.Obs

let c_centering = Obs.counter "barrier_centering_steps"
let c_newton = Obs.counter "barrier_newton_iters"
let t_minimize = Obs.timer "barrier_minimize"

let slacks ~a ~b x =
  let ax = Mat.mulv a x in
  Vec.sub b ax

let feasible_start ~a ~b ~x0 =
  Array.for_all (fun s -> s > 0.) (slacks ~a ~b x0)

(* Barrier-augmented value, gradient and Hessian at x for weight t:
   phi(x) = t f(x) - sum_i log s_i with s = b - A x.
   grad = t grad_f + A^T (1/s)
   hess = t hess_f + A^T diag(1/s^2) A *)
let barrier_value obj ~t ~a ~b x =
  let s = slacks ~a ~b x in
  if Array.exists (fun v -> v <= 0.) s then infinity
  else begin
    let logsum = Array.fold_left (fun acc v -> acc +. log v) 0. s in
    (t *. obj.f x) -. logsum
  end

let barrier_grad obj ~t ~a ~b x =
  let s = slacks ~a ~b x in
  let inv = Array.map (fun v -> 1. /. v) s in
  let g = Vec.scale t (obj.grad x) in
  let at_inv = Mat.mulv_t a inv in
  Vec.add g at_inv

let barrier_hess obj ~t ~a ~b x =
  let s = slacks ~a ~b x in
  let h = Mat.scale t (obj.hess x) in
  let m, n = Mat.dims a in
  assert (n = Vec.dim x);
  (* h += A^T diag(1/s²) A, accumulated row by row of A. *)
  for i = 0 to m - 1 do
    let w = 1. /. (s.(i) *. s.(i)) in
    let ai = a.(i) in
    for j = 0 to n - 1 do
      let aij = ai.(j) in
      if aij <> 0. then begin
        let hj = h.(j) in
        let waij = w *. aij in
        for k = 0 to n - 1 do
          hj.(k) <- hj.(k) +. (waij *. ai.(k))
        done
      end
    done
  done;
  h

(* Damped Newton with backtracking on the barrier function; stops when
   the Newton decrement is small. *)
let newton obj ~t ~a ~b ~tol ~max_iters x0 =
  let x = ref (Vec.copy x0) in
  let continue = ref true in
  let iters = ref 0 in
  while !continue && !iters < max_iters do
    incr iters;
    Obs.incr c_newton;
    let g = barrier_grad obj ~t ~a ~b !x in
    let h = barrier_hess obj ~t ~a ~b !x in
    (* Regularise slightly: keeps Cholesky happy when f is flat along
       some direction inside the polytope. *)
    let n = Vec.dim !x in
    for i = 0 to n - 1 do
      h.(i).(i) <- h.(i).(i) +. 1e-12
    done;
    let step =
      match Mat.solve_spd h (Vec.scale (-1.) g) with
      | s -> s
      | exception Mat.Singular -> Vec.scale (-1e-6) g
    in
    let decrement = -.Vec.dot g step in
    if decrement /. 2. <= tol then continue := false
    else begin
      (* backtracking line search, alpha=0.25, beta=0.5 *)
      let phi0 = barrier_value obj ~t ~a ~b !x in
      let rec search stepsize k =
        if k > 60 then None
        else begin
          let cand = Vec.copy !x in
          Vec.axpy stepsize step cand;
          let phi = barrier_value obj ~t ~a ~b cand in
          if phi <= phi0 -. (0.25 *. stepsize *. decrement) then Some cand
          else search (stepsize *. 0.5) (k + 1)
        end
      in
      match search 1. 0 with
      | Some cand -> x := cand
      | None -> continue := false
    end
  done;
  !x

let minimize ?(tol = 1e-8) ?(t0 = 1.) ?(mu = 15.) ?(newton_tol = 1e-10)
    ?(max_newton = 80) obj ~a ~b ~x0 =
  if not (feasible_start ~a ~b ~x0) then raise Not_strictly_feasible;
  Obs.time t_minimize @@ fun () ->
  let m, _ = Mat.dims a in
  let x = ref (Vec.copy x0) in
  let t = ref t0 in
  let gap () = float_of_int m /. !t in
  while gap () > tol do
    Obs.incr c_centering;
    x := newton obj ~t:!t ~a ~b ~tol:newton_tol ~max_iters:max_newton !x;
    t := !t *. mu
  done;
  Obs.incr c_centering;
  x := newton obj ~t:!t ~a ~b ~tol:newton_tol ~max_iters:max_newton !x;
  !x
