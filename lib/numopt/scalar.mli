(** One-dimensional root finding and minimisation.

    These routines back the closed-form-adjacent computations of the
    core library: the minimum re-execution speed (root of a monotone
    reliability equation), the fork TRI-CRIT window split (unimodal
    minimisation), and waterfilling levels. *)

val bisect :
  ?tol:float -> ?max_iters:int -> f:(float -> float) -> lo:float -> hi:float -> float
(** [bisect ~f ~lo ~hi] finds [x] with [f x = 0] assuming
    [f lo] and [f hi] have opposite signs (or one of them is zero).
    [tol] (default [1e-12]) bounds the final interval width relative to
    the initial one.  @raise Invalid_argument if the sign condition
    fails. *)

val root_monotone :
  ?tol:float -> f:(float -> float) -> lo:float -> hi:float -> float
(** Root of a monotone (either direction) function on [\[lo, hi\]],
    clamping to the nearest endpoint when the root lies outside.

    @raise Invalid_argument if a root-bracketing step finds no sign change (degenerate reliability or speed bounds). *)

val golden_min :
  ?tol:float -> ?max_iters:int -> f:(float -> float) -> lo:float -> hi:float -> float
(** Golden-section search for the minimiser of a unimodal [f] on
    [\[lo, hi\]].  Returns the abscissa. *)

val newton_1d :
  ?tol:float -> ?max_iters:int -> f:(float -> float) -> f':(float -> float) ->
  x0:float -> float
(** Newton iteration for a root of [f], seeded at [x0]; falls back to
    halving steps when the derivative degenerates. *)
