let bisect ?(tol = 1e-12) ?(max_iters = 200) ~f ~lo ~hi =
  let flo = f lo and fhi = f hi in
  if flo = 0. then lo
  else if fhi = 0. then hi
  else begin
    if flo *. fhi > 0. then invalid_arg "Scalar.bisect: same sign at both endpoints";
    let width0 = hi -. lo in
    let rec loop lo hi flo iters =
      let mid = 0.5 *. (lo +. hi) in
      if iters = 0 || hi -. lo <= tol *. width0 then mid
      else begin
        let fmid = f mid in
        if fmid = 0. then mid
        else if flo *. fmid < 0. then loop lo mid flo (iters - 1)
        else loop mid hi fmid (iters - 1)
      end
    in
    loop lo hi flo max_iters
  end

let root_monotone ?(tol = 1e-12) ~f ~lo ~hi =
  let flo = f lo and fhi = f hi in
  if flo = 0. then lo
  else if fhi = 0. then hi
  else if flo *. fhi > 0. then
    (* No sign change: the root is outside; clamp to the closer end. *)
    if Float.abs flo < Float.abs fhi then lo else hi
  else bisect ~tol ?max_iters:None ~f ~lo ~hi

let c_golden_probes = Es_obs.Obs.counter "golden_probes"

let golden_min ?(tol = 1e-10) ?(max_iters = 200) ~f ~lo ~hi =
  let f x =
    Es_obs.Obs.incr c_golden_probes;
    f x
  in
  let phi = (sqrt 5. -. 1.) /. 2. in
  let rec loop a b x1 x2 f1 f2 iters =
    if iters = 0 || b -. a <= tol *. (Float.abs a +. Float.abs b +. 1e-30) then
      0.5 *. (a +. b)
    else if f1 < f2 then begin
      let b = x2 and x2 = x1 and f2 = f1 in
      let x1 = b -. (phi *. (b -. a)) in
      loop a b x1 x2 (f x1) f2 (iters - 1)
    end
    else begin
      let a = x1 and x1 = x2 and f1 = f2 in
      let x2 = a +. (phi *. (b -. a)) in
      loop a b x1 x2 f1 (f x2) (iters - 1)
    end
  in
  let x1 = hi -. (phi *. (hi -. lo)) and x2 = lo +. (phi *. (hi -. lo)) in
  loop lo hi x1 x2 (f x1) (f x2) max_iters

let newton_1d ?(tol = 1e-12) ?(max_iters = 100) ~f ~f' ~x0 =
  let rec loop x iters =
    if iters = 0 then x
    else begin
      let fx = f x in
      if Float.abs fx <= tol then x
      else begin
        let d = f' x in
        if Float.abs d < 1e-300 then x
        else begin
          let step = fx /. d in
          loop (x -. step) (iters - 1)
        end
      end
    end
  in
  loop x0 max_iters
