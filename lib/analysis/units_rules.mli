(** Dimensional analysis over the solver numerics — the U-rule family.

    A two-pass analysis on top of the syntactic linter:

    + {b Collection}: every [.mli] in the lint set is parsed and its
      [\[@units "..."\]] annotations harvested — units of value
      parameters and results (attributes on the [float] core types of a
      [val] arrow) and units of record fields (on label declarations,
      including inline records of variant constructors).  Containers
      are transparent: the unit annotated inside
      [(float\[@units "freq"\]) array] is the unit carried by the
      array's elements.
    + {b Checking}: each [.ml] is walked with an intra-procedural
      abstract evaluator mapping expressions to units.  Known units
      enter through the module's own signature (parameters of exported
      functions), through explicit [(e : (float\[@units "..."\]))]
      constraints, and through annotated record fields; they propagate
      through float arithmetic ([+.]/[-.] and comparisons demand equal
      units, [*.]/[/.] combine them, [**]/[sqrt] scale exponents,
      literals are polymorphic) and interprocedurally through call
      sites of annotated signatures.  Anything the evaluator cannot
      prove has a unit is [Unknown] and generates no diagnostic — the
      pass is conservative by construction.

    Rules:
    - {b U001} — unit mismatch between the operands of an addition,
      subtraction, comparison or min/max.
    - {b U002} — unit mismatch against a declared annotation: argument
      at an annotated call site, annotated record field, value
      constraint, or the result of an exported function.
    - {b U003} — public [float] (or [float array/option/list]) in a
      [lib/core] or [lib/platform] interface without a [\[@units\]]
      annotation.

    Suppression uses the same machinery as the E rules:
    [\[@lint.allow "U001"\]] on an expression, [\[@@lint.allow\]] on a
    binding or value declaration, [\[@@@lint.allow\]] file-wide. *)

type env
(** Mutable interprocedural knowledge: value signatures and record
    field units, keyed by module ([Speed.exec_time]) and field name. *)

val empty_env : unit -> env

val module_name_of_file : string -> string
(** ["lib/platform/speed.mli"] -> ["Speed"] — dune's unwrapped module
    naming. *)

val collect_interface :
  env -> module_name:string -> Parsetree.signature -> unit
(** Pass 1.  Malformed [\[@units\]] payloads are treated as absent
    here; they surface as operational errors when the annotated file
    itself is linted (pass 2). *)

val check_interface :
  annotate_scope:bool ->
  report:(Rules.t -> Location.t -> string -> unit) ->
  error:(string -> unit) ->
  Parsetree.signature ->
  unit
(** Pass 2 over an interface: U003, enabled when [annotate_scope] (the
    file lives under [lib/core] or [lib/platform]), plus malformed
    [\[@units\]] payloads through [error] (an operational error, like a
    malformed allowlist line). *)

val check_structure :
  env ->
  module_name:string ->
  report:(Rules.t -> Location.t -> string -> unit) ->
  error:(string -> unit) ->
  Parsetree.structure ->
  unit
(** Pass 2 over an implementation: U001/U002 via abstract
    evaluation. *)
