(* The rule catalogue.  Every rule is independently toggleable from the
   driver; [of_id] is forgiving about case so "e001" works on the
   command line and in [@lint.allow] payloads. *)

type t =
  | E001
  | E002
  | E003
  | E004
  | E005
  | E006
  | E007
  | U001
  | U002
  | U003
  | P001
  | P002
  | P003
  | P004
  | X001
  | X002
  | R001
  | R002
  | R003

let all =
  [ E001; E002; E003; E004; E005; E006; E007; U001; U002; U003; P001; P002; P003; P004; X001; X002; R001; R002; R003 ]

let units = [ U001; U002; U003 ]
let par = [ P001; P002; P003; P004 ]
let effects = [ X001; X002; R001; R002; R003 ]

let id = function
  | E001 -> "E001"
  | E002 -> "E002"
  | E003 -> "E003"
  | E004 -> "E004"
  | E005 -> "E005"
  | E006 -> "E006"
  | E007 -> "E007"
  | U001 -> "U001"
  | U002 -> "U002"
  | U003 -> "U003"
  | P001 -> "P001"
  | P002 -> "P002"
  | P003 -> "P003"
  | P004 -> "P004"
  | X001 -> "X001"
  | X002 -> "X002"
  | R001 -> "R001"
  | R002 -> "R002"
  | R003 -> "R003"

let of_id s =
  match String.uppercase_ascii (String.trim s) with
  | "E001" -> Some E001
  | "E002" -> Some E002
  | "E003" -> Some E003
  | "E004" -> Some E004
  | "E005" -> Some E005
  | "E006" -> Some E006
  | "E007" -> Some E007
  | "U001" -> Some U001
  | "U002" -> Some U002
  | "U003" -> Some U003
  | "P001" -> Some P001
  | "P002" -> Some P002
  | "P003" -> Some P003
  | "P004" -> Some P004
  | "X001" -> Some X001
  | "X002" -> Some X002
  | "R001" -> Some R001
  | "R002" -> Some R002
  | "R003" -> Some R003
  | _ -> None

let describe = function
  | E001 ->
    "polymorphic structural comparison or hash (compare, Hashtbl.hash); \
     use a typed comparator: Float.compare, Int.compare, String.compare, \
     List.compare"
  | E002 ->
    "partial stdlib function (List.hd, List.tl, List.nth, List.find, \
     List.assoc, Option.get, Hashtbl.find, Float.of_string); use a total \
     match or the _opt variant"
  | E003 ->
    "catch-all exception handler (with _ -> ... / with e -> ()); match \
     the exceptions you expect and let the rest propagate"
  | E004 ->
    "direct printing from library code (print_string, Printf.printf); \
     return a string / use a Buffer, or annotate a render entry point \
     with [@lint.allow \"E004\"]"
  | E005 -> "library module without an .mli interface"
  | E006 -> "unsafe representation escape (Obj.magic, Marshal)"
  | E007 ->
    "module-level mutable state (ref, Hashtbl/Queue/Stack/Buffer created \
     at top level, mutable record field) in domain-shared solver code \
     (lib/core, lib/sched, lib/sim); make it immutable, move it into the \
     call, or justify with [@lint.allow \"E007\"]"
  | U001 ->
    "unit mismatch between the operands of a float addition, subtraction, \
     comparison or min/max (adding an energy to a time, comparing a speed \
     against a deadline)"
  | U002 ->
    "unit mismatch against a [@units] annotation: argument at an annotated \
     call site, annotated record field, value constraint, or the result of \
     an exported function"
  | U003 ->
    "public float in a lib/core or lib/platform interface without a [@units \
     \"...\"] annotation (work, freq, time, energy, power, prob, \
     dimensionless, and products/quotients/powers thereof)"
  | P001 ->
    "parallel region captures and writes shared mutable state (ref, mutable \
     field, Hashtbl/Queue/Stack/Buffer defined outside the region) without \
     Atomic/Mutex protection — a data race across worker domains"
  | P002 ->
    "parallel region reaches an ambient-nondeterminism source (Random.*, \
     Sys.time, Unix.gettimeofday, Domain.self, Gc stats, hash-ordered \
     Hashtbl iteration over a captured table); output would depend on \
     scheduling — derive per-task streams with Rng.split / map_seeded"
  | P003 ->
    "parallel region reaches a blocking operation (Mutex.lock/protect on a \
     captured lock, Condition.wait, Unix.sleep*, raw Pool.submit re-entry); \
     workers stall or deadlock — keep worker code non-blocking"
  | P004 ->
    "Domain.* / Domain.DLS use outside the sanctioned owners lib/par and \
     lib/obs; route domain management through Es_par.Pool so the pool owns \
     every worker domain"
  | X001 ->
    "exported lib/ value may raise but its .mli doc comment has no @raise \
     tag; document the contract or narrow the exceptions with try/with"
  | X002 ->
    "callback handed to a parallel region may raise an exception other \
     than the sanctioned Task_error wrapping; a raise inside a worker \
     strands the joiner — make the task total or pre-validate its inputs"
  | R001 ->
    "resource acquired but never released in this binding (open_in/open_out \
     or Unix.openfile without close, Pool.create without shutdown, \
     Mutex.lock without unlock); release it or use the with_/protect form"
  | R002 ->
    "code between a resource acquire and its unprotected release may raise, \
     leaking the resource on the exceptional path; wrap the body in \
     Fun.protect ~finally (or Mutex.protect for locks)"
  | R003 ->
    "Obs.enable without a balanced Obs.disable on every path (missing or \
     unprotected while the code between may raise); put the disable in a \
     Fun.protect ~finally"

let compare_rule a b = String.compare (id a) (id b)
