(* Conservative cross-module call graph over compiler-libs ASTs.

   One eslint run feeds every .ml of the lint set into a single graph
   (pass 1, like the [@units] environment); the parallel-safety pass
   (pass 2) then asks reachability questions against it.  The model is
   deliberately value-level and syntactic:

   - a node is one top-level [let] binding, keyed
     "<Module>.<value>" where <Module> is the innermost enclosing
     module (the file's module for top-level bindings, the submodule
     name for bindings inside [module Sub = struct ... end]);
   - an edge goes from a binding to every identifier path its body
     mentions, whether in call position or not — referencing a value
     is enough to (conservatively) reach it;
   - [module P = Es_par.Par]-style aliases are expanded per file, so
     [P.parallel_map] and [Es_par.Par.parallel_map] resolve alike;
   - identifiers that resolve to no node of the graph (stdlib,
     external libraries, local variables) are terminal: they appear in
     edge lists under their resolved name but have no outgoing edges.
     Reachability treats them as opaque leaves — the soundness default
     for unknown externals is "no further effects visible here", with
     the explicit deny-lists of {!Par_rules} covering the dangerous
     ones by name.

   Functors are not tracked (no higher-order module flow), and [open]
   does not re-scope bare identifiers; both are documented caveats of
   the pass (DESIGN.md §9). *)

module SSet = Set.Make (String)

type def = {
  d_file : string;
  d_loc : Location.t;
  d_expr : Parsetree.expression;
  d_params : string list;
}

type t = {
  defs : (string, def) Hashtbl.t;
  edges : (string, (string * Location.t) list) Hashtbl.t;
  modules : (string, unit) Hashtbl.t;
  (* per-file [module X = Path] aliases: file -> (X -> path segments) *)
  aliases : (string * string, string list) Hashtbl.t;
  file_module : (string, string) Hashtbl.t;
}

let create () =
  {
    defs = Hashtbl.create 256;
    edges = Hashtbl.create 256;
    modules = Hashtbl.create 64;
    aliases = Hashtbl.create 64;
    file_module = Hashtbl.create 64;
  }

let module_name_of_file file =
  Filename.basename file |> Filename.remove_extension |> String.capitalize_ascii

(* ------------------------------------------------------------------ *)
(* identifier paths                                                    *)
(* ------------------------------------------------------------------ *)

let rec flatten_longident = function
  | Longident.Lident s -> Some [ s ]
  | Longident.Ldot (p, s) ->
    Option.map (fun segs -> segs @ [ s ]) (flatten_longident p)
  | Longident.Lapply _ -> None

let strip_stdlib = function
  | "Stdlib" :: rest when rest <> [] -> rest
  | segs -> segs

(* Expand a leading module alias, chasing alias-of-alias up to a small
   bound so cyclic aliases cannot loop. *)
let expand_alias t ~file segs =
  let rec go fuel segs =
    if fuel = 0 then segs
    else
      match segs with
      | head :: rest -> (
        match Hashtbl.find_opt t.aliases (file, head) with
        | Some expansion -> go (fuel - 1) (expansion @ rest)
        | None -> segs)
      | [] -> segs
  in
  go 4 segs

let rec last_two = function
  | [ p; l ] -> Some (p, l)
  | _ :: tl -> last_two tl
  | [] -> None

let resolve t ~file lid =
  match flatten_longident lid with
  | None -> None
  | Some segs -> (
    let segs = strip_stdlib (expand_alias t ~file segs) in
    match segs with
    | [] -> None
    | [ x ] -> (
      match Hashtbl.find_opt t.file_module file with
      | Some m when Hashtbl.mem t.defs (m ^ "." ^ x) -> Some (m ^ "." ^ x)
      | _ -> Some x)
    | _ -> (
      match last_two segs with
      | Some (parent, leaf) when Hashtbl.mem t.modules parent ->
        Some (parent ^ "." ^ leaf)
      | _ -> Some (String.concat "." segs)))

(* ------------------------------------------------------------------ *)
(* harvest                                                             *)
(* ------------------------------------------------------------------ *)

(* Parameter names of the outermost [fun]-chain of a binding. *)
let rec pattern_vars acc (p : Parsetree.pattern) =
  match p.ppat_desc with
  | Ppat_var { txt; _ } -> txt :: acc
  | Ppat_alias (inner, { txt; _ }) -> pattern_vars (txt :: acc) inner
  | Ppat_constraint (inner, _) -> pattern_vars acc inner
  | Ppat_tuple ps -> List.fold_left pattern_vars acc ps
  | Ppat_record (fields, _) ->
    List.fold_left (fun acc (_, p) -> pattern_vars acc p) acc fields
  | _ -> acc

let rec fun_params acc (e : Parsetree.expression) =
  match e.pexp_desc with
  | Pexp_fun (_, _, pat, body) -> fun_params (pattern_vars acc pat) body
  | Pexp_newtype (_, body) -> fun_params acc body
  | Pexp_constraint (body, _) -> fun_params acc body
  | _ -> acc

(* Every identifier the expression mentions, resolved; first
   occurrence keeps its location (the witness-trace hop). *)
let referenced_idents t ~file expr =
  let seen : (string, unit) Hashtbl.t = Hashtbl.create 32 in
  let out = ref [] in
  let open Ast_iterator in
  let expr_iter iter (e : Parsetree.expression) =
    (match e.pexp_desc with
    | Pexp_ident { txt; loc } -> (
      match resolve t ~file txt with
      | Some name when not (Hashtbl.mem seen name) ->
        Hashtbl.replace seen name ();
        out := (name, loc) :: !out
      | _ -> ())
    | _ -> ());
    default_iterator.expr iter e
  in
  let iter = { default_iterator with expr = expr_iter } in
  iter.expr iter expr;
  List.rev !out

let binding_name (vb : Parsetree.value_binding) =
  let rec go (p : Parsetree.pattern) =
    match p.ppat_desc with
    | Ppat_var { txt; _ } -> Some txt
    | Ppat_constraint (inner, _) -> go inner
    | _ -> None
  in
  go vb.pvb_pat

let add_edges t ~file ~module_name (vb : Parsetree.value_binding) =
  match binding_name vb with
  | None -> ()
  | Some name ->
    let id = module_name ^ "." ^ name in
    let callees = referenced_idents t ~file vb.pvb_expr in
    let existing = Option.value ~default:[] (Hashtbl.find_opt t.edges id) in
    Hashtbl.replace t.edges id (existing @ callees)

(* Two sub-passes per file: declarations (defs, submodules, aliases)
   first, then edges — so a binding's references to later bindings of
   the same module (and to its [let rec ... and] siblings) still
   resolve to module-local nodes. *)
let add_source t ~file str =
  let module_name = module_name_of_file file in
  Hashtbl.replace t.file_module file module_name;
  Hashtbl.replace t.modules module_name ();
  (* [module S = Set.Make (Int)] aliases S to the functor's parent
     (Set): the instance's operations behave like the parent module's,
     which is what the effect catalogue knows about *)
  let register_functor_alias ~file sub (f : Parsetree.module_expr) =
    match f.pmod_desc with
    | Pmod_ident { txt; _ } -> (
      match flatten_longident txt with
      | Some segs when List.length segs >= 2 ->
        let parent = List.filteri (fun i _ -> i < List.length segs - 1) segs in
        Hashtbl.replace t.aliases (file, sub) parent
      | _ -> ())
    | _ -> ()
  in
  let rec declare ~module_name (items : Parsetree.structure) =
    List.iter
      (fun (si : Parsetree.structure_item) ->
        match si.pstr_desc with
        | Pstr_value (_, vbs) ->
          List.iter
            (fun vb ->
              match binding_name vb with
              | Some name ->
                let id = module_name ^ "." ^ name in
                (* same key from ANOTHER file (module-name collision
                   across directories): stack both defs, union their
                   edges — conservative.  Shadowing within one file
                   keeps the first binding. *)
                let from_this_file =
                  List.exists
                    (fun d -> d.d_file = file)
                    (Hashtbl.find_all t.defs id)
                in
                if not from_this_file then
                  Hashtbl.add t.defs id
                    {
                      d_file = file;
                      d_loc = vb.pvb_loc;
                      d_expr = vb.pvb_expr;
                      d_params = List.rev (fun_params [] vb.pvb_expr);
                    }
              | None -> ())
            vbs
        | Pstr_module mb -> (
          match mb.pmb_name.txt with
          | None -> ()
          | Some sub -> (
            match mb.pmb_expr.pmod_desc with
            | Pmod_ident { txt; _ } -> (
              match flatten_longident txt with
              | Some segs -> Hashtbl.replace t.aliases (file, sub) segs
              | None -> ())
            | Pmod_structure sub_items ->
              Hashtbl.replace t.modules sub ();
              declare ~module_name:sub sub_items
            | Pmod_apply (f, _) -> register_functor_alias ~file sub f
            | _ -> ()))
        | _ -> ())
      items
  in
  declare ~module_name str;
  (* [let module Q = Set.Make (Int) in ...] registers the same
     functor-parent alias; expression-level, so a dedicated sweep *)
  let letmodule_iter =
    let open Ast_iterator in
    let expr_iter iter (e : Parsetree.expression) =
      (match e.pexp_desc with
      | Pexp_letmodule ({ txt = Some sub; _ }, me, _) -> (
        match me.pmod_desc with
        | Pmod_apply (f, _) -> register_functor_alias ~file sub f
        | Pmod_ident { txt; _ } -> (
          match flatten_longident txt with
          | Some segs -> Hashtbl.replace t.aliases (file, sub) segs
          | None -> ())
        | _ -> ())
      | _ -> ());
      default_iterator.expr iter e
    in
    { default_iterator with expr = expr_iter }
  in
  letmodule_iter.structure letmodule_iter str;
  (* pass 2: edges only — defs are entirely owned by pass 1, so every
     module-local reference (including forward and recursive ones)
     resolves against the complete declaration set *)
  let rec harvest ~module_name (items : Parsetree.structure) =
    List.iter
      (fun (si : Parsetree.structure_item) ->
        match si.pstr_desc with
        | Pstr_value (_, vbs) -> List.iter (add_edges t ~file ~module_name) vbs
        | Pstr_module mb -> (
          match (mb.pmb_name.txt, mb.pmb_expr.pmod_desc) with
          | Some sub, Pmod_structure sub_items ->
            harvest ~module_name:sub sub_items
          | _ -> ())
        | _ -> ())
      items
  in
  harvest ~module_name str

(* ------------------------------------------------------------------ *)
(* queries                                                             *)
(* ------------------------------------------------------------------ *)

let defs t id = Hashtbl.find_all t.defs id
let has_def t id = Hashtbl.mem t.defs id

let edges t id =
  match Hashtbl.find_opt t.edges id with
  | None -> []
  | Some callees ->
    (* stable first-occurrence order, deduped by name *)
    let seen = Hashtbl.create 16 in
    List.filter
      (fun (name, _) ->
        if Hashtbl.mem seen name then false
        else begin
          Hashtbl.replace seen name ();
          true
        end)
      callees

let nodes t =
  Hashtbl.fold (fun id _ acc -> SSet.add id acc) t.defs SSet.empty
  |> SSet.elements

let edge_sources t =
  Hashtbl.fold (fun id _ acc -> SSet.add id acc) t.edges SSet.empty
  |> SSet.elements

(* ------------------------------------------------------------------ *)
(* reachability                                                        *)
(* ------------------------------------------------------------------ *)

let reachable t ~roots =
  let visited = ref SSet.empty in
  let rec visit name =
    if not (SSet.mem name !visited) then begin
      visited := SSet.add name !visited;
      List.iter (fun (callee, _) -> visit callee) (edges t name)
    end
  in
  List.iter visit roots;
  SSet.elements !visited

(* ------------------------------------------------------------------ *)
(* synthetic graphs (unit / property tests)                            *)
(* ------------------------------------------------------------------ *)

let add_edge t src dst =
  let existing = Option.value ~default:[] (Hashtbl.find_opt t.edges src) in
  Hashtbl.replace t.edges src (existing @ [ (dst, Location.none) ])

let of_edges spec =
  let t = create () in
  List.iter
    (fun (src, dsts) -> List.iter (fun dst -> add_edge t src dst) dsts)
    spec;
  t
