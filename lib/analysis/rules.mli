(** The lint rule catalogue.

    - E001: polymorphic structural ops ([compare], [Hashtbl.hash]).
    - E002: partial stdlib functions ([List.hd], [List.tl], [List.nth],
      [Option.get], [Float.of_string]).
    - E003: catch-all exception handlers ([with _ ->], [with e -> ()]).
    - E004: direct printing from [lib/] (and [test/]) code.
    - E005: [lib/] (or [test/]) module missing its [.mli].
    - E006: [Obj.magic] / [Marshal] anywhere.
    - E007: module-level mutable state ([ref], [mutable] record fields,
      [Hashtbl]/[Queue]/[Stack]/[Buffer] created at top level) in the
      domain-shared libraries ([lib/core], [lib/sched], [lib/sim]).
      Top-level [Atomic.make]/[Mutex.create]/[Condition.create] are
      domain-safe and exempt.
    - U001: unit mismatch in a float addition/subtraction/comparison.
    - U002: unit mismatch against a [\[@units\]] annotation (call site,
      record field, constraint, exported result).
    - U003: unannotated public float in [lib/core] / [lib/platform].
    - P001: a parallel region (closure handed to an [Es_par] combinator)
      captures and writes mutable state defined outside the region.
    - P002: ambient nondeterminism ([Random.*], wall clocks, [Domain.self],
      Gc stats, hash-ordered iteration) reachable from a parallel region.
    - P003: blocking operation (captured locks, [Condition.wait],
      [Unix.sleep*], raw [Pool.submit] re-entry) reachable from a region.
    - P004: [Domain.*] / DLS use outside [lib/par] and [lib/obs].
    - X001: a may-raising value is exported from a [lib/] [.mli] whose
      doc comment carries no [@raise] tag.
    - X002: a callback handed to a parallel region may raise something
      other than the sanctioned [Task_error] wrapping.
    - R001: a resource is acquired but never released in the binding
      (channels, [Unix.openfile], [Pool.create], [Mutex.lock]).
    - R002: the code between an acquire and its unprotected release may
      raise (per the {!Effects} summaries), leaking on that path.
    - R003: [Obs.enable] without a balanced, protected [Obs.disable].

    The U rules are the dimensional-analysis pass ({!Units},
    {!Units_rules}); the P rules are the interprocedural parallel-safety
    pass ({!Callgraph}, {!Par_rules}); the X/R rules are the
    exception-flow and resource-lifecycle pass ({!Effects},
    {!Resource_rules}). *)

type t =
  | E001
  | E002
  | E003
  | E004
  | E005
  | E006
  | E007
  | U001
  | U002
  | U003
  | P001
  | P002
  | P003
  | P004
  | X001
  | X002
  | R001
  | R002
  | R003

val all : t list
(** Every rule, in catalogue order. *)

val units : t list
(** The dimensional-analysis family ([U001]-[U003]) — what
    [eslint --units=false] switches off. *)

val par : t list
(** The parallel-safety family ([P001]-[P004]) — what
    [eslint --par=false] switches off. *)

val effects : t list
(** The exception-flow / resource-lifecycle family ([X001]-[R003]) —
    what [eslint --effects=false] switches off. *)

val id : t -> string
(** ["E001"] ... ["P004"]. *)

val of_id : string -> t option
(** Case-insensitive inverse of [id]; [None] on unknown ids. *)

val describe : t -> string
(** One-line human description, used by [--list-rules] and docs. *)

val compare_rule : t -> t -> int
(** Total order by rule id (typed; keeps the linter E001-clean). *)
