(** Conservative cross-module call graph over compiler-libs ASTs.

    Pass 1 of an eslint run feeds every [.ml] file into one graph;
    pass 2 ({!Par_rules}) asks reachability questions against it.  A
    node is a top-level [let] binding keyed ["Module.value"]; an edge
    goes to every identifier path the body mentions (reference is
    reachability — conservative over-approximation).  [module X =
    Path] aliases are expanded per file.  Identifiers that resolve to
    no node (stdlib, external libraries, local variables) are opaque
    terminal leaves: the graph assumes nothing about their effects,
    and the deny-lists of {!Par_rules} name the dangerous ones
    explicitly.  Functor applications and [open]-scoped bare
    identifiers are not tracked (DESIGN.md §9 caveats). *)

type t

type def = {
  d_file : string;  (** file that defines the binding *)
  d_loc : Location.t;  (** binding location *)
  d_expr : Parsetree.expression;  (** the bound expression *)
  d_params : string list;  (** outermost [fun]-chain parameter names *)
}

val create : unit -> t

val module_name_of_file : string -> string
(** ["lib/core/pareto.ml"] -> ["Pareto"]. *)

val flatten_longident : Longident.t -> string list option
(** Path segments of an identifier; [None] for functor application. *)

val add_source : t -> file:string -> Parsetree.structure -> unit
(** Harvest one parsed implementation: top-level (and one-level
    nested-module) bindings become nodes, their referenced identifier
    paths become edges, [module X = Path] becomes a per-file alias. *)

val resolve : t -> file:string -> Longident.t -> string option
(** Canonical name of an identifier path as seen from [file]:
    alias-expanded, [Stdlib.]-stripped, bare names qualified with the
    file's module when that module defines them, dotted paths
    shortened to ["Parent.leaf"] when [Parent] is a module of the
    graph.  [None] only for [Lapply] (functor application). *)

val defs : t -> string -> def list
(** Definitions recorded under a node key — more than one when two
    files define modules with the same name (kept, conservatively). *)

val has_def : t -> string -> bool

val edges : t -> string -> (string * Location.t) list
(** Resolved identifiers referenced by the node's body, deduped by
    name in first-occurrence order; the location is the first
    reference site (used as the witness-trace hop). *)

val nodes : t -> string list
(** Every node key, sorted. *)

val edge_sources : t -> string list
(** Every name with a (possibly empty) recorded edge list, sorted.
    Superset-disjoint from {!nodes} only in synthetic {!of_edges}
    graphs, where edges exist without defs; the {!Effects} fixpoint
    iterates over the union of both. *)

val reachable : t -> roots:string list -> string list
(** Every name reachable from [roots] (roots included), following
    edges transitively; terminal names (no outgoing edges) are
    included.  Sorted.  Termination is by visited-set, so cycles
    (recursion) are fine. *)

val add_edge : t -> string -> string -> unit
(** Synthetic edge, for tests. *)

val of_edges : (string * string list) list -> t
(** Synthetic graph from an adjacency list, for tests. *)
