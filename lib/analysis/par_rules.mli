(** Interprocedural parallel-safety pass (rules P001-P004).

    A {e parallel region} is a function handed to an [Es_par]
    combinator ([Par.parallel_map] / [parallel_iteri] / [map_reduce] /
    [try_map] / [map_seeded]) or to the raw pool ([Pool.submit] /
    [submit_batch]) — including calls through {e derived combinators},
    top-level wrappers that forward a parameter into a region position
    (computed as a fixpoint over the {!Callgraph}).  Each region's
    closure body and everything reachable from it is checked for:

    - P001 — writes to captured mutable state ([:=], [incr]/[decr],
      mutable-field assignment, Hashtbl/Queue/Stack/Buffer mutators)
      outside [Mutex.protect]; array/bytes element writes are exempt
      (the disjoint-slot [parallel_iteri] pattern).
    - P002 — ambient nondeterminism: [Random.*], wall clocks,
      [Domain.self], Gc statistics, hash-ordered iteration over a
      captured table.
    - P003 — blocking operations: captured locks, [Condition.wait],
      [Unix.sleep*], raw [Pool.submit] re-entry.
    - P004 — (file-scoped, not region-based) [Domain.*] use outside
      the sanctioned owners lib/par and lib/obs.

    Findings are anchored at the region call site; the message carries
    the witness call chain
    ["region@file:line -> Node.fn@file:line -> Random.float@file:line"],
    so the existing per-site suppression machinery
    ([[@lint.allow "P001"]], lint.allow) applies unchanged. *)

type ctx
(** Analysis context for one eslint run: the call graph plus the
    derived-combinator fixpoint and a per-node fact cache. *)

val make_ctx : Callgraph.t -> ctx

val empty_ctx : unit -> ctx
(** Context over an empty graph — single-file lints with no
    cross-module information still check inline region bodies. *)

val is_base_combinator : string -> bool
(** Matches the last two segments of a resolved name against the
    [Es_par] region-taking combinators ([Par.parallel_map] ...
    [Pool.submit_batch]). *)

val is_former : ctx -> string -> bool
(** Is the node a derived combinator (a wrapper that forwards a
    parameter into a region position)?  {!Resource_rules} shares the
    fixpoint for its X002 callback check. *)

val is_sanctioned_file : string -> bool
(** True for files under [lib/par] or [lib/obs]: the audited owners of
    domains, blocking joins and telemetry.  Reachability stops at
    their nodes; they are exempt from region scanning and P004. *)

val check_structure :
  ctx ->
  file:string ->
  report:(Rules.t -> Location.t -> string -> unit) ->
  Parsetree.structure ->
  unit
(** Run P001-P004 over one parsed implementation.  [report] receives
    the rule, the anchor location (region call site for P001-P003, the
    identifier for P004) and the full message. *)
