(** May-raise effect inference over the {!Callgraph} (layer 1 of the
    exception-flow pass; {!Resource_rules} is layer 2).

    A summary is an element of the lattice

    {v  Known {} ⊑ Known {Failure} ⊑ ... ⊑ Known S ⊑ Top  v}

    read "this binding can raise at most the exceptions of S" — [Top]
    means an unknown external was reached in call position and anything
    may come out.  [infer] runs a monotone fixpoint over every node of
    the graph: a node's summary is the effect of its bound expression,
    where

    - [raise (C ...)], [failwith], [invalid_arg] and the known-partial
      stdlib catalogue (the E002 list plus channel I/O) introduce
      exceptions;
    - a [match]/[function] over constant patterns with no catch-all
      introduces [Match_failure];
    - [try ... with] narrows the body's summary — an unguarded
      catch-all clears it (including [Top]), a specific constructor
      pattern removes that constructor, guarded handlers narrow
      nothing, and the handler bodies' own effects are added back;
    - calling another node of the graph contributes that node's
      current summary (so narrowing applies to callee effects too);
    - calling an unknown external is [Top]; whitelisted pure stdlib
      names and prefixes contribute nothing;
    - applying a locally-bound name (parameter or [let]-bound closure)
      contributes nothing: closure {e bodies} are charged to the
      binding that contains them, and a parameter's effects belong to
      the caller;
    - nodes of the sanctioned owners (lib/par, lib/obs — see
      {!Par_rules.is_sanctioned_file}) are treated as pure: their
      raise contracts are documented manually and their internals are
      excluded, mirroring the P-pass sanctioning.

    Exceptions are identified by the {e last segment} of their
    constructor path ([Queue.Empty] and [Stack.Empty] collide on
    ["Empty"]), a deliberate trade against the untyped AST.  Soundness
    caveats (DESIGN.md §9): ambient exceptions ([Assert_failure],
    [Division_by_zero], array/string bounds) are not tracked, and an
    unknown external {e referenced} but not applied contributes
    nothing. *)

module SSet : Set.S with type elt = string

type t =
  | Known of SSet.t  (** at most these exception constructors *)
  | Top  (** an unknown external was called — anything may raise *)

val pure : t
(** [Known {}]. *)

val is_pure : t -> bool

val equal : t -> t -> bool

val union : t -> t -> t
(** Lattice join; [Top] absorbs. *)

val mem : string -> t -> bool
(** May this summary raise the given constructor?  Always true for
    [Top]. *)

val to_list : t -> string list option
(** Sorted exception names, or [None] for [Top]. *)

val binders : Parsetree.expression -> string list
(** Every name bound by any pattern under the expression (parameters,
    lets, match arms) — what {!Resource_rules} passes as [bound] when
    summarising a subexpression of a larger binding. *)

type env
(** The result of one fixpoint run: per-node summaries, per-node
    direct (intraprocedural) seeds, and first-raise-site locations for
    witness reconstruction. *)

val infer : ?seeds:(string * t) list -> Callgraph.t -> env
(** Run the fixpoint.  [seeds] force a base summary onto named nodes —
    used by the synthetic-graph property tests ([of_edges] graphs have
    no defs, so their nodes propagate seeds along raw edges instead of
    evaluating bodies). *)

val graph : env -> Callgraph.t

val summary : env -> string -> t
(** Full interprocedural summary of a node; [pure] for unknown
    names. *)

val direct : env -> string -> t
(** Intraprocedural seed only: what the node's own body introduces,
    with callee nodes treated as pure.  Witness chains bottom out on
    nodes whose direct summary contains the exception. *)

val raise_site : env -> string -> string -> Location.t option
(** First location in the node's body that introduces the exception
    (the [raise]/[failwith]/catalogue call recorded while computing
    {!direct}). *)

val expr_summary :
  ?mask:(Parsetree.expression -> bool) ->
  ?bound:string list ->
  env ->
  file:string ->
  Parsetree.expression ->
  t
(** Effect of an arbitrary expression in [file]'s resolution scope,
    looking callee nodes up in [env].  [mask] prunes subtrees (treated
    as pure) — {!Resource_rules} masks release calls and everything
    after them; [bound] adds names bound by enclosing patterns (the
    expression's own binders are always included). *)

type evidence = {
  e_exn : string option;
      (** the exception, or [None] when only an unknown external is to
          blame *)
  e_hops : (string * Location.t) list;
      (** call-chain hops, ["name@file:line"]-renderable, ending at
          the introduction site *)
}

val expr_evidence :
  ?mask:(Parsetree.expression -> bool) ->
  ?bound:string list ->
  env ->
  file:string ->
  Parsetree.expression ->
  evidence option
(** First concrete raise evidence inside the expression, in reading
    order: a direct [raise]/catalogue hit, or a reference to a raising
    node followed by its {!witness} chain.  [None] when the expression
    is pure (or its impurity has no nameable source). *)

val witness : env -> string -> exn:string -> (string * Location.t) list
(** Shortest reference chain from the node to a binding whose
    {!direct} summary introduces [exn], as
    [(callee, reference site); ...; (exn, raise site)].  Empty when
    the node's summary does not contain [exn] or no direct introducer
    is reachable (a [Top] cause). *)
