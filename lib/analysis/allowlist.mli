(** Checked-in path/rule allowlist (the [lint.allow] file).

    Format: one ["<path> <rule>"] pair per line; ['#'] starts a comment;
    blank lines are ignored.  A pair permits findings of [rule] in every
    file whose slash-normalised path equals [path] or ends with
    ["/" ^ path], so entries keep working from inside dune sandboxes.
    A [path] ending in ['/'] is a directory entry: it permits the rule
    in every file under that directory (matched as a leading prefix or
    after any ["/"], e.g. ["test/ E004"] covers [test/lint/foo.ml]). *)

type t

val empty : t

val parse : file:string -> string -> (t, string) result
(** [parse ~file contents] parses an allowlist; [file] is only used in
    error messages.  All malformed lines are reported at once. *)

val load : string -> (t, string) result
(** Read and [parse] a file from disk. *)

val permits : t -> file:string -> Rules.t -> bool
(** Does the allowlist permit findings of this rule in this file? *)
