(* Dimensional analysis (U rules): collection of [@units] annotations
   from interfaces, then a conservative intra-procedural abstract
   evaluation of implementations.

   The evaluator maps every expression to one of three values:

     Known u  -- proven to carry unit [u]
     Literal  -- a numeric literal (polymorphic: adopts any unit)
     Unknown  -- no information; generates no diagnostic

   Diagnostics are only emitted when two *Known* units disagree, so the
   pass cannot produce a false positive from missing annotations — only
   from wrong ones. *)

type value = Known of Units.t | Literal | Unknown

type fn_sig = {
  params : (Asttypes.arg_label * Units.t option) list;
  ret : Units.t option;
}

type env = {
  vals : (string, fn_sig) Hashtbl.t;  (* "Module.value" *)
  fields : (string, Units.t option) Hashtbl.t;
      (* record field -> unit; [None] marks conflicting declarations *)
}

let empty_env () = { vals = Hashtbl.create 64; fields = Hashtbl.create 64 }

let module_name_of_file file =
  Filename.basename file |> Filename.remove_extension |> String.capitalize_ascii

(* ------------------------------------------------------------------ *)
(* [@units] payloads on core types                                     *)
(* ------------------------------------------------------------------ *)

let units_payload (attr : Parsetree.attribute) =
  if attr.attr_name.txt <> "units" then None
  else
    match attr.attr_payload with
    | PStr
        [
          {
            pstr_desc =
              Pstr_eval
                ({ pexp_desc = Pexp_constant (Pconst_string (s, _, _)); _ }, _);
            _;
          };
        ] ->
      Some (Units.parse s)
    | _ -> Some (Error "expected a string literal such as [@units \"energy\"]")

let pos_error loc msg =
  let p = loc.Location.loc_start in
  Printf.sprintf "%s:%d:%d %s" p.pos_fname p.pos_lnum (p.pos_cnum - p.pos_bol) msg

(* First [@units] found wins; [error] fires on malformed payloads when
   provided (pass 2), and malformed annotations count as absent. *)
let unit_of_attrs ?error (attrs : Parsetree.attributes) =
  List.find_map
    (fun (attr : Parsetree.attribute) ->
      match units_payload attr with
      | Some (Ok u) -> Some u
      | Some (Error msg) ->
        Option.iter
          (fun f ->
            f (pos_error attr.attr_loc ("malformed [@units] payload: " ^ msg)))
          error;
        None
      | None -> None)
    attrs

let has_units_attr attrs =
  List.exists (fun (a : Parsetree.attribute) -> a.attr_name.txt = "units") attrs

(* The unit of a value of some core type: the annotation on the type
   itself, or — containers are transparent — on the single type argument
   of a constructor ([float array], [float option], ...). *)
let rec unit_of_core_type ?error (ty : Parsetree.core_type) =
  match unit_of_attrs ?error ty.ptyp_attributes with
  | Some u -> Some u
  | None -> (
    match ty.ptyp_desc with
    | Ptyp_constr (_, [ arg ]) -> unit_of_core_type ?error arg
    | Ptyp_alias (t, _) | Ptyp_poly (_, t) -> unit_of_core_type ?error t
    | _ -> None)

let rec decompose_arrow ?error (ty : Parsetree.core_type) =
  match ty.ptyp_desc with
  | Ptyp_arrow (lbl, a, b) ->
    let ps, ret = decompose_arrow ?error b in
    ((lbl, unit_of_core_type ?error a) :: ps, ret)
  | _ -> ([], unit_of_core_type ?error ty)

(* ------------------------------------------------------------------ *)
(* pass 1: collection                                                  *)
(* ------------------------------------------------------------------ *)

let add_field env name u =
  match Hashtbl.find_opt env.fields name with
  | None -> Hashtbl.replace env.fields name (Some u)
  | Some (Some u') when Units.equal u u' -> ()
  | Some _ -> Hashtbl.replace env.fields name None

let collect_labels env (labels : Parsetree.label_declaration list) =
  List.iter
    (fun (ld : Parsetree.label_declaration) ->
      match
        match unit_of_core_type ld.pld_type with
        | Some u -> Some u
        | None -> unit_of_attrs ld.pld_attributes
      with
      | Some u -> add_field env ld.pld_name.txt u
      | None -> ())
    labels

let collect_type_decl env (td : Parsetree.type_declaration) =
  match td.ptype_kind with
  | Ptype_record labels -> collect_labels env labels
  | Ptype_variant constructors ->
    List.iter
      (fun (c : Parsetree.constructor_declaration) ->
        match c.pcd_args with
        | Pcstr_record labels -> collect_labels env labels
        | Pcstr_tuple _ -> ())
      constructors
  | _ -> ()

let collect_interface env ~module_name (sg : Parsetree.signature) =
  List.iter
    (fun (item : Parsetree.signature_item) ->
      match item.psig_desc with
      | Psig_value vd ->
        let params, ret = decompose_arrow vd.pval_type in
        Hashtbl.replace env.vals
          (module_name ^ "." ^ vd.pval_name.txt)
          { params; ret }
      | Psig_type (_, decls) -> List.iter (collect_type_decl env) decls
      | _ -> ())
    sg

(* ------------------------------------------------------------------ *)
(* pass 2 over interfaces: U003                                        *)
(* ------------------------------------------------------------------ *)

let u003_message =
  "public float without a [@units] annotation; annotate as (float[@units \
   \"work|freq|time|energy|power|prob|dimensionless\"]) or suppress with \
   [@lint.allow \"U003\"]"

(* A [@units] annotation covers its whole subtree, so [(float[@units
   "freq"]) array] and [float array [@units "freq"]] are both fine. *)
let rec scan_floats ~report (ty : Parsetree.core_type) =
  if has_units_attr ty.ptyp_attributes then ()
  else
    match ty.ptyp_desc with
    | Ptyp_constr ({ txt = Lident "float"; _ }, []) ->
      report Rules.U003 ty.ptyp_loc u003_message
    | Ptyp_constr (_, args) -> List.iter (scan_floats ~report) args
    | Ptyp_arrow (_, a, b) ->
      scan_floats ~report a;
      scan_floats ~report b
    | Ptyp_tuple ts -> List.iter (scan_floats ~report) ts
    | Ptyp_alias (t, _) | Ptyp_poly (_, t) -> scan_floats ~report t
    | _ -> ()

let scan_labels ~report labels =
  List.iter
    (fun (ld : Parsetree.label_declaration) ->
      if not (has_units_attr ld.pld_attributes) then
        scan_floats ~report ld.pld_type)
    labels

let check_interface ~annotate_scope ~report ~error (sg : Parsetree.signature) =
  let surface_errors attrs = ignore (unit_of_attrs ~error attrs) in
  let typ_errors =
    let open Ast_iterator in
    {
      default_iterator with
      typ =
        (fun iter ty ->
          surface_errors ty.ptyp_attributes;
          default_iterator.typ iter ty);
    }
  in
  List.iter
    (fun (item : Parsetree.signature_item) ->
      typ_errors.signature_item typ_errors item;
      if annotate_scope then
        match item.psig_desc with
        | Psig_value vd -> scan_floats ~report vd.pval_type
        | Psig_type (_, decls) ->
          List.iter
            (fun (td : Parsetree.type_declaration) ->
              Option.iter (scan_floats ~report) td.ptype_manifest;
              match td.ptype_kind with
              | Ptype_record labels -> scan_labels ~report labels
              | Ptype_variant constructors ->
                List.iter
                  (fun (c : Parsetree.constructor_declaration) ->
                    match c.pcd_args with
                    | Pcstr_record labels -> scan_labels ~report labels
                    | Pcstr_tuple args -> List.iter (scan_floats ~report) args)
                  constructors
              | _ -> ())
            decls
        | _ -> ())
    sg

(* ------------------------------------------------------------------ *)
(* pass 2 over implementations: abstract evaluation (U001/U002)        *)
(* ------------------------------------------------------------------ *)

module SMap = Map.Make (String)

type ctx = {
  genv : env;
  own : string;
  report : Rules.t -> Location.t -> string -> unit;
  error : string -> unit;
}

let rec flatten_longident = function
  | Longident.Lident s -> Some [ s ]
  | Longident.Ldot (p, s) ->
    Option.map (fun segs -> segs @ [ s ]) (flatten_longident p)
  | Longident.Lapply _ -> None

let ident_name lid =
  match flatten_longident lid with
  | None -> None
  | Some segs ->
    let segs =
      match segs with "Stdlib" :: rest when rest <> [] -> rest | _ -> segs
    in
    Some (String.concat "." segs)

let rec last = function [ x ] -> Some x | _ :: rest -> last rest | [] -> None
let last_segment lid = Option.bind (flatten_longident lid) last

let lookup_val ctx name =
  if String.contains name '.' then Hashtbl.find_opt ctx.genv.vals name
  else Hashtbl.find_opt ctx.genv.vals (ctx.own ^ "." ^ name)

let lookup_field ctx lid =
  match last_segment lid with
  | None -> None
  | Some name -> (
    match Hashtbl.find_opt ctx.genv.fields name with
    | Some (Some u) -> Some u
    | _ -> None)

(* Pure float idents that behave like literals. *)
let literal_idents =
  [
    "infinity"; "neg_infinity"; "nan"; "epsilon_float"; "max_float"; "min_float";
    "Float.infinity"; "Float.neg_infinity"; "Float.nan"; "Float.epsilon";
    "Float.max_float"; "Float.min_float"; "Float.pi";
  ]

let additive_ops = [ "+."; "-." ]
let comparison_ops = [ "<"; "<="; ">"; ">="; "="; "<>"; "Float.compare"; "Float.equal" ]
let minmax_ops = [ "min"; "max"; "Float.min"; "Float.max" ]
let preserve_ops =
  [ "~-."; "~+."; "abs_float"; "Float.abs"; "Float.neg"; "Float.succ"; "Float.pred" ]
let sqrt_ops = [ "sqrt"; "Float.sqrt" ]
let pow_ops = [ "**"; "Float.pow" ]
let get_ops = [ "Array.get"; "Array.unsafe_get"; "List.nth_opt" ]
let fold_ops = [ "Array.fold_left"; "List.fold_left" ]

(* U001: both operands Known with different units. *)
let checked_merge ctx what loc a b =
  match (a, b) with
  | Known ua, Known ub ->
    if Units.equal ua ub then Known ua
    else begin
      ctx.report Rules.U001 loc
        (Printf.sprintf "operands of %s have units %s and %s" what
           (Units.to_string ua) (Units.to_string ub));
      Unknown
    end
  | Known u, Literal | Literal, Known u -> Known u
  | Literal, Literal -> Literal
  | _ -> Unknown

(* Silent merge for control-flow joins. *)
let join a b =
  match (a, b) with
  | Known ua, Known ub -> if Units.equal ua ub then a else Unknown
  | Known _, Literal | Literal, Known _ -> ( match a with Known _ -> a | _ -> b)
  | Literal, Literal -> Literal
  | _ -> Unknown

let join_all = function [] -> Unknown | v :: vs -> List.fold_left join v vs

(* Integer-valued literal exponents of [**]. *)
let rec const_exponent (e : Parsetree.expression) =
  match e.pexp_desc with
  | Pexp_constant (Pconst_float (s, _)) -> float_of_string_opt s
  | Pexp_constant (Pconst_integer (s, _)) -> float_of_string_opt s
  | Pexp_apply
      ( { pexp_desc = Pexp_ident { txt = Lident ("~-." | "~-"); _ }; _ },
        [ (Nolabel, arg) ] ) ->
    Option.map (fun x -> -.x) (const_exponent arg)
  | _ -> None

let pow_value base exponent =
  match base with
  | Literal -> Literal
  | Unknown -> Unknown
  | Known u -> (
    match exponent with
    | Some x when Float.is_integer x -> Known (Units.pow u (int_of_float x))
    | Some 0.5 -> ( match Units.sqrt u with Some r -> Known r | None -> Unknown)
    | _ -> if Units.equal u Units.dimensionless then Known u else Unknown)

(* ------------------------------------------------------------------ *)
(* patterns                                                            *)
(* ------------------------------------------------------------------ *)

(* Bind the variables of simple patterns to the matched value; [Some]
   and annotation constraints are transparent, tuples are opaque. *)
let rec bind_pattern ctx env (pat : Parsetree.pattern) value =
  match pat.ppat_desc with
  | Ppat_var { txt; _ } -> SMap.add txt value env
  | Ppat_alias (p, { txt; _ }) -> bind_pattern ctx (SMap.add txt value env) p value
  | Ppat_constraint (p, ty) -> (
    match unit_of_core_type ~error:ctx.error ty with
    | Some u ->
      (match value with
      | Known uv when not (Units.equal uv u) ->
        ctx.report Rules.U002 pat.ppat_loc
          (Printf.sprintf "bound expression has units %s, but the annotation says %s"
             (Units.to_string uv) (Units.to_string u))
      | _ -> ());
      bind_pattern ctx env p (Known u)
    | None -> bind_pattern ctx env p value)
  | Ppat_construct (_, Some (_, p)) -> bind_pattern ctx env p value
  | Ppat_record (fields, _) ->
    List.fold_left
      (fun env (lid, p) ->
        let fv =
          match lookup_field ctx lid.Location.txt with
          | Some u -> Known u
          | None -> Unknown
        in
        bind_pattern ctx env p fv)
      env fields
  | Ppat_or (a, b) -> bind_pattern ctx (bind_pattern ctx env a value) b value
  | _ -> env

(* [let x : t = e] stores [t] in [pvb_constraint] (OCaml >= 5.1), not
   in the pattern — surface its [@units] as if the pattern carried it. *)
let binding_constraint_unit ctx (vb : Parsetree.value_binding) =
  match vb.pvb_constraint with
  | Some (Pvc_constraint { typ; _ }) -> unit_of_core_type ~error:ctx.error typ
  | Some (Pvc_coercion { coercion; _ }) ->
    unit_of_core_type ~error:ctx.error coercion
  | None -> None

(* ------------------------------------------------------------------ *)
(* expressions                                                         *)
(* ------------------------------------------------------------------ *)

let rec eval ctx env (e : Parsetree.expression) : value =
  match e.pexp_desc with
  | Pexp_constant (Pconst_float _ | Pconst_integer _) -> Literal
  | Pexp_constant _ -> Unknown
  | Pexp_ident { txt; _ } -> (
    match ident_name txt with
    | None -> Unknown
    | Some name -> (
      match SMap.find_opt name env with
      | Some v -> v
      | None ->
        if List.mem name literal_idents then Literal
        else (
          match lookup_val ctx name with
          | Some { params = []; ret = Some u } -> Known u
          | _ -> Unknown)))
  | Pexp_apply (fn, args) -> eval_apply ctx env e.pexp_loc fn args
  | Pexp_constraint (inner, ty) -> (
    let v = eval ctx env inner in
    match unit_of_core_type ~error:ctx.error ty with
    | Some u ->
      (match v with
      | Known uv when not (Units.equal uv u) ->
        ctx.report Rules.U002 e.pexp_loc
          (Printf.sprintf "expression has units %s, but the annotation says %s"
             (Units.to_string uv) (Units.to_string u))
      | _ -> ());
      Known u
    | None -> v)
  | Pexp_let (_, vbs, body) ->
    let env =
      List.fold_left
        (fun env' (vb : Parsetree.value_binding) ->
          let v = eval_binding_value ctx env vb in
          bind_pattern ctx env' vb.pvb_pat v)
        env vbs
    in
    eval ctx env body
  | Pexp_ifthenelse (c, a, b) ->
    ignore (eval ctx env c);
    let va = eval ctx env a in
    let vb = match b with Some b -> eval ctx env b | None -> Unknown in
    join va vb
  | Pexp_match (scrut, cases) | Pexp_try (scrut, cases) ->
    let vs = eval ctx env scrut in
    join_all
      (List.map
         (fun (case : Parsetree.case) ->
           let env = bind_pattern ctx env case.pc_lhs vs in
           Option.iter (fun g -> ignore (eval ctx env g)) case.pc_guard;
           eval ctx env case.pc_rhs)
         cases)
  | Pexp_sequence (a, b) ->
    ignore (eval ctx env a);
    eval ctx env b
  | Pexp_field (r, lid) -> (
    ignore (eval ctx env r);
    match lookup_field ctx lid.Location.txt with
    | Some u -> Known u
    | None -> Unknown)
  | Pexp_setfield (r, lid, rhs) ->
    ignore (eval ctx env r);
    check_field ctx env e.pexp_loc lid rhs;
    Unknown
  | Pexp_record (fields, base) ->
    Option.iter (fun b -> ignore (eval ctx env b)) base;
    List.iter (fun (lid, rhs) -> check_field ctx env e.pexp_loc lid rhs) fields;
    Unknown
  | Pexp_array elems ->
    join_all (List.map (eval ctx env) elems)
  | Pexp_tuple elems ->
    List.iter (fun x -> ignore (eval ctx env x)) elems;
    Unknown
  | Pexp_construct (_, arg) | Pexp_variant (_, arg) -> (
    (* [Some e] is transparent, like the option container itself *)
    match arg with Some a -> eval ctx env a | None -> Unknown)
  | Pexp_fun (_, default, pat, body) ->
    Option.iter (fun d -> ignore (eval ctx env d)) default;
    let env = bind_pattern ctx env pat Unknown in
    ignore (eval ctx env body);
    Unknown
  | Pexp_function cases ->
    List.iter
      (fun (case : Parsetree.case) ->
        let env = bind_pattern ctx env case.pc_lhs Unknown in
        Option.iter (fun g -> ignore (eval ctx env g)) case.pc_guard;
        ignore (eval ctx env case.pc_rhs))
      cases;
    Unknown
  | Pexp_open (_, inner)
  | Pexp_letmodule (_, _, inner)
  | Pexp_letexception (_, inner)
  | Pexp_lazy inner
  | Pexp_newtype (_, inner) ->
    eval ctx env inner
  | Pexp_assert inner ->
    ignore (eval ctx env inner);
    Unknown
  | Pexp_while (c, body) ->
    ignore (eval ctx env c);
    ignore (eval ctx env body);
    Unknown
  | Pexp_for (pat, lo, hi, _, body) ->
    ignore (eval ctx env lo);
    ignore (eval ctx env hi);
    let env = bind_pattern ctx env pat Unknown in
    ignore (eval ctx env body);
    Unknown
  | _ ->
    (* anything else: walk children so nested expressions still get
       checked, with no unit information of its own *)
    let it =
      {
        Ast_iterator.default_iterator with
        expr = (fun _ child -> ignore (eval ctx env child));
      }
    in
    Ast_iterator.default_iterator.expr it e;
    Unknown

and check_field ctx env loc lid rhs =
  let v = eval ctx env rhs in
  match (lookup_field ctx lid.Location.txt, v) with
  | Some u, Known uv when not (Units.equal uv u) ->
    let name =
      match last_segment lid.Location.txt with Some s -> s | None -> "?"
    in
    ctx.report Rules.U002 loc
      (Printf.sprintf "record field %s expects units %s, got %s" name
         (Units.to_string u) (Units.to_string uv))
  | _ -> ()

and eval_apply ctx env loc fn args =
  let name =
    match fn.pexp_desc with
    | Pexp_ident { txt; _ } -> ident_name txt
    | _ ->
      ignore (eval ctx env fn);
      None
  in
  let values () = List.map (fun (_, a) -> eval ctx env a) args in
  match (name, args) with
  | Some op, [ (Nolabel, a); (Nolabel, b) ] when List.mem op additive_ops ->
    checked_merge ctx (Printf.sprintf "(%s)" op) loc (eval ctx env a)
      (eval ctx env b)
  | Some op, [ (Nolabel, a); (Nolabel, b) ] when List.mem op comparison_ops ->
    ignore (checked_merge ctx op loc (eval ctx env a) (eval ctx env b));
    Unknown
  | Some op, [ (Nolabel, a); (Nolabel, b) ] when List.mem op minmax_ops ->
    checked_merge ctx op loc (eval ctx env a) (eval ctx env b)
  | Some "*.", [ (Nolabel, a); (Nolabel, b) ] -> (
    match (eval ctx env a, eval ctx env b) with
    | Known ua, Known ub -> Known (Units.mul ua ub)
    | Known u, Literal | Literal, Known u -> Known u
    | Literal, Literal -> Literal
    | _ -> Unknown)
  | Some "/.", [ (Nolabel, a); (Nolabel, b) ] -> (
    match (eval ctx env a, eval ctx env b) with
    | Known ua, Known ub -> Known (Units.div ua ub)
    | Known u, Literal -> Known u
    | Literal, Known u -> Known (Units.inv u)
    | Literal, Literal -> Literal
    | _ -> Unknown)
  | Some op, [ (Nolabel, a); (Nolabel, b) ] when List.mem op pow_ops ->
    ignore (eval ctx env b);
    pow_value (eval ctx env a) (const_exponent b)
  | Some op, [ (Nolabel, a) ] when List.mem op preserve_ops -> eval ctx env a
  | Some op, [ (Nolabel, a) ] when List.mem op sqrt_ops -> (
    match eval ctx env a with
    | Known u -> ( match Units.sqrt u with Some r -> Known r | None -> Unknown)
    | v -> v)
  | Some op, (Nolabel, a) :: rest when List.mem op get_ops ->
    List.iter (fun (_, x) -> ignore (eval ctx env x)) rest;
    eval ctx env a
  | Some "Option.value", [ (Nolabel, a); (Labelled "default", d) ]
  | Some "Option.value", [ (Labelled "default", d); (Nolabel, a) ] ->
    checked_merge ctx "Option.value" loc (eval ctx env a) (eval ctx env d)
  | Some op, [ (Nolabel, f); (Nolabel, init); (Nolabel, seq) ]
    when List.mem op fold_ops -> (
    match f.pexp_desc with
    | Pexp_ident { txt = Lident ("+." | "-."); _ } ->
      checked_merge ctx (op ^ " (+.)") loc (eval ctx env init) (eval ctx env seq)
    | Pexp_ident { txt; _ }
      when match ident_name txt with
           | Some n -> List.mem n minmax_ops
           | None -> false ->
      checked_merge ctx (op ^ " min/max") loc (eval ctx env init)
        (eval ctx env seq)
    | _ ->
      ignore (eval ctx env f);
      ignore (eval ctx env init);
      ignore (eval ctx env seq);
      Unknown)
  | Some "|>", [ (Nolabel, x); (Nolabel, f) ] ->
    eval_apply ctx env loc f [ (Asttypes.Nolabel, x) ]
  | Some "@@", [ (Nolabel, f); (Nolabel, x) ] ->
    eval_apply ctx env loc f [ (Asttypes.Nolabel, x) ]
  | Some name, _ -> (
    match lookup_val ctx name with
    | Some fs -> check_call ctx env loc name fs args
    | None ->
      ignore (values ());
      Unknown)
  | None, _ ->
    ignore (values ());
    Unknown

(* U002 at an annotated call site: match actuals to declared parameters
   (labels by name, positional in order) and compare Known units. *)
and check_call ctx env loc name fs args =
  let remaining = ref fs.params in
  let take lbl =
    match lbl with
    | Asttypes.Labelled s | Asttypes.Optional s ->
      let matches = function
        | (Asttypes.Labelled s' | Asttypes.Optional s'), _ -> s = s'
        | _ -> false
      in
      let found = List.find_opt matches !remaining in
      (match found with
      | Some _ -> remaining := List.filter (fun p -> not (matches p)) !remaining
      | None -> ());
      Option.map snd found
    | Asttypes.Nolabel -> (
      let rec split acc = function
        | ((Asttypes.Nolabel, _) as p) :: rest -> Some (p, List.rev_append acc rest)
        | p :: rest -> split (p :: acc) rest
        | [] -> None
      in
      match split [] !remaining with
      | Some ((_, u), rest) ->
        remaining := rest;
        Some u
      | None -> None)
  in
  List.iter
    (fun (lbl, arg) ->
      let declared = take lbl in
      let v = eval ctx env arg in
      match (declared, v) with
      | Some (Some u), Known uv when not (Units.equal uv u) ->
        let what =
          match lbl with
          | Asttypes.Labelled s | Asttypes.Optional s -> "~" ^ s
          | Asttypes.Nolabel -> "argument"
        in
        ctx.report Rules.U002 arg.Parsetree.pexp_loc
          (Printf.sprintf "%s of %s has units %s, expected %s" what name
             (Units.to_string uv) (Units.to_string u))
      | _ -> ())
    args;
  ignore loc;
  let fully_applied =
    List.for_all
      (function Asttypes.Optional _, _ -> true | _ -> false)
      !remaining
  in
  match (fully_applied, fs.ret) with
  | true, Some u -> Known u
  | _ -> Unknown

(* Evaluate a binding's right-hand side and check/apply the
   [pvb_constraint] annotation of [let x : (float[@units "u"]) = e]. *)
and eval_binding_value ctx env (vb : Parsetree.value_binding) =
  let v = eval ctx env vb.pvb_expr in
  match binding_constraint_unit ctx vb with
  | Some u ->
    (match v with
    | Known uv when not (Units.equal uv u) ->
      ctx.report Rules.U002 vb.pvb_expr.Parsetree.pexp_loc
        (Printf.sprintf
           "bound expression has units %s, but the annotation says %s"
           (Units.to_string uv) (Units.to_string u))
    | _ -> ());
    Known u
  | None -> v

(* ------------------------------------------------------------------ *)
(* top level                                                           *)
(* ------------------------------------------------------------------ *)

(* Walk the [fun]-chain of an exported definition binding parameters to
   the units its own signature declares. *)
let rec bind_params ctx env params (e : Parsetree.expression) =
  match e.pexp_desc with
  | Pexp_fun (lbl, default, pat, body) ->
    Option.iter (fun d -> ignore (eval ctx env d)) default;
    let rec take acc = function
      | (l, u) :: rest ->
        let hit =
          match (lbl, l) with
          | ( (Asttypes.Labelled s | Asttypes.Optional s),
              (Asttypes.Labelled s' | Asttypes.Optional s') ) ->
            s = s'
          | Asttypes.Nolabel, Asttypes.Nolabel -> true
          | _ -> false
        in
        if hit then (Some u, List.rev_append acc rest)
        else take ((l, u) :: acc) rest
      | [] -> (None, List.rev acc)
    in
    let declared, params = take [] params in
    let value = match declared with Some (Some u) -> Known u | _ -> Unknown in
    bind_params ctx (bind_pattern ctx env pat value) params body
  | _ -> (env, params, e)

let check_binding ctx env (vb : Parsetree.value_binding) =
  let bound_name =
    match vb.pvb_pat.ppat_desc with
    | Ppat_var { txt; _ } -> Some txt
    | Ppat_constraint ({ ppat_desc = Ppat_var { txt; _ }; _ }, _) -> Some txt
    | _ -> None
  in
  let own_sig =
    match bound_name with
    | Some n -> lookup_val ctx (ctx.own ^ "." ^ n)
    | None -> None
  in
  match own_sig with
  | Some fs when fs.params <> [] ->
    let benv, _, body = bind_params ctx env fs.params vb.pvb_expr in
    let v = eval ctx benv body in
    (match (fs.ret, v) with
    | Some u, Known uv when not (Units.equal uv u) ->
      ctx.report Rules.U002 body.Parsetree.pexp_loc
        (Printf.sprintf
           "body of %s.%s has units %s, but its signature declares %s" ctx.own
           (Option.value bound_name ~default:"?")
           (Units.to_string uv) (Units.to_string u))
    | _ -> ());
    env
  | Some { params = _ :: _; _ } -> env (* unreachable: guarded above *)
  | Some { params = []; ret } ->
    let v = eval_binding_value ctx env vb in
    (match (ret, v) with
    | Some u, Known uv when not (Units.equal uv u) ->
      ctx.report Rules.U002 vb.pvb_expr.Parsetree.pexp_loc
        (Printf.sprintf "%s.%s has units %s, but its signature declares %s"
           ctx.own
           (Option.value bound_name ~default:"?")
           (Units.to_string uv) (Units.to_string u))
    | _ -> ());
    let value = match ret with Some u -> Known u | None -> v in
    bind_pattern ctx env vb.pvb_pat value
  | None ->
    let v = eval_binding_value ctx env vb in
    bind_pattern ctx env vb.pvb_pat v

let rec check_items ctx env (items : Parsetree.structure) =
  match items with
  | [] -> ()
  | item :: rest ->
    let env =
      match item.pstr_desc with
      | Pstr_value (_, vbs) -> List.fold_left (check_binding ctx) env vbs
      | Pstr_eval (e, _) ->
        ignore (eval ctx env e);
        env
      | Pstr_module mb ->
        check_module ctx env mb.pmb_expr;
        env
      | Pstr_recmodule mbs ->
        List.iter (fun (mb : Parsetree.module_binding) -> check_module ctx env mb.pmb_expr) mbs;
        env
      | _ -> env
    in
    check_items ctx env rest

and check_module ctx env (me : Parsetree.module_expr) =
  match me.pmod_desc with
  | Pmod_structure items -> check_items ctx env items
  | Pmod_functor (_, body) -> check_module ctx env body
  | Pmod_constraint (inner, _) -> check_module ctx env inner
  | _ -> ()

let check_structure genv ~module_name ~report ~error (str : Parsetree.structure) =
  let ctx = { genv; own = module_name; report; error } in
  check_items ctx SMap.empty str
