(** AST-driven lint engine over the repo's own sources.

    Parses [.ml]/[.mli] files with the vanilla compiler front end
    (compiler-libs, no ppx), walks the Parsetree with [Ast_iterator] and
    reports [file:line:col \[RULE\] message] diagnostics for the rule
    catalogue in {!Rules}.

    Suppression: attach [\[@lint.allow "E001"\]] to an expression,
    [\[@@lint.allow "E001"\]] to a let-binding or module binding, or
    float [\[@@@lint.allow "E001"\]] at the top level to suppress a rule
    for the whole file.  Payloads take a comma-separated rule list.
    Checked-in path-level exemptions go in the {!Allowlist} file. *)

type config = {
  rules : Rules.t list;  (** rules to enforce; others are ignored *)
  allow : Allowlist.t;  (** checked-in path/rule exemptions *)
}

val default_config : config
(** All rules on, empty allowlist. *)

type diagnostic = {
  file : string;
  line : int;  (** 1-based *)
  col : int;  (** 0-based, as the compiler reports *)
  rule : Rules.t;
  message : string;
}

val to_string : diagnostic -> string
(** ["file:line:col [E001] message"]. *)

val compare_diagnostic : diagnostic -> diagnostic -> int
(** Order by file, line, column, rule. *)

val lint_source :
  ?units_env:Units_rules.env ->
  ?par_ctx:Par_rules.ctx ->
  ?eff:Effects.env ->
  config ->
  file:string ->
  string ->
  (diagnostic list, string) result
(** Lint source text as if it were [file] (drives fixture tests).
    [units_env] carries the interprocedural [\[@units\]] knowledge of a
    surrounding directory run (default: empty — intra-file constraints
    still check); [par_ctx] carries its cross-module call graph
    (default: a graph over this file alone, so intra-file witness
    chains still resolve); [eff] carries the may-raise summaries of
    that graph for the X/R rules (default for [.ml]: inferred over the
    single-file graph; X001 on a [.mli] is skipped without it, since
    the exported values' bodies live elsewhere).  [Error] means a parse
    failure or a malformed [\[@lint.allow\]]/[\[@units\]] payload, not
    a finding. *)

val build_units_env : config -> string list -> Units_rules.env
(** Pass 1 of the dimensional analysis: harvest [\[@units\]]
    annotations from every [.mli] in the list.  Cheap no-op when no U
    rule is enabled. *)

val build_par_ctx : config -> string list -> Par_rules.ctx
(** Pass 1 of the parallel-safety analysis: one {!Callgraph} over
    every [.ml] in the list, with the derived-combinator fixpoint
    precomputed.  Cheap no-op when no P rule is enabled. *)

val lint_file : config -> string -> (diagnostic list, string) result
(** Lint one file from disk.  Includes the E005 missing-[.mli] check
    for [lib/] implementation files; the file's sibling [.mli] (if
    any) seeds the units environment. *)

val lint_paths :
  ?exclude:string list ->
  config ->
  string list ->
  diagnostic list * string list
(** Lint files and directories (recursively; [_build]/[.git] skipped;
    [exclude] prunes path prefixes such as [test/fixtures], with or
    without a trailing slash) in two passes — [\[@units\]] and
    call-graph collection, then per-file checking — returning sorted,
    deduplicated diagnostics and any per-file errors.  Roots and
    collected files are path-normalised, so naming a file directly and
    reaching it through a directory walk yields one set of findings. *)
