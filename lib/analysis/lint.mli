(** AST-driven lint engine over the repo's own sources.

    Parses [.ml]/[.mli] files with the vanilla compiler front end
    (compiler-libs, no ppx), walks the Parsetree with [Ast_iterator] and
    reports [file:line:col \[RULE\] message] diagnostics for the rule
    catalogue in {!Rules}.

    Suppression: attach [\[@lint.allow "E001"\]] to an expression,
    [\[@@lint.allow "E001"\]] to a let-binding or module binding, or
    float [\[@@@lint.allow "E001"\]] at the top level to suppress a rule
    for the whole file.  Payloads take a comma-separated rule list.
    Checked-in path-level exemptions go in the {!Allowlist} file. *)

type config = {
  rules : Rules.t list;  (** rules to enforce; others are ignored *)
  allow : Allowlist.t;  (** checked-in path/rule exemptions *)
}

val default_config : config
(** All rules on, empty allowlist. *)

type diagnostic = {
  file : string;
  line : int;  (** 1-based *)
  col : int;  (** 0-based, as the compiler reports *)
  rule : Rules.t;
  message : string;
}

val to_string : diagnostic -> string
(** ["file:line:col [E001] message"]. *)

val compare_diagnostic : diagnostic -> diagnostic -> int
(** Order by file, line, column, rule. *)

val lint_source : config -> file:string -> string -> (diagnostic list, string) result
(** Lint source text as if it were [file] (drives fixture tests).
    [Error] means a parse failure or a malformed [\[@lint.allow\]]
    payload, not a finding. *)

val lint_file : config -> string -> (diagnostic list, string) result
(** Lint one file from disk.  Includes the E005 missing-[.mli] check for
    [lib/] implementation files. *)

val lint_paths : config -> string list -> diagnostic list * string list
(** Lint files and directories (recursively; [_build]/[.git] skipped),
    returning sorted diagnostics and any per-file errors. *)
