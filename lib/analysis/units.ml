(* Free abelian group over the three base dimensions of the paper's
   model.  [time]/[energy]/[power] are derived, not generators, so the
   model's own identities (time = w/f, energy = w·f², power = f³ =
   energy/time) hold by construction. *)

type t = { work : int; freq : int; prob : int }

let dimensionless = { work = 0; freq = 0; prob = 0 }
let work = { dimensionless with work = 1 }
let freq = { dimensionless with freq = 1 }
let prob = { dimensionless with prob = 1 }
let time = { work = 1; freq = -1; prob = 0 }
let energy = { work = 1; freq = 2; prob = 0 }
let power = { work = 0; freq = 3; prob = 0 }

let equal a b = a.work = b.work && a.freq = b.freq && a.prob = b.prob

let compare a b =
  let c = Int.compare a.work b.work in
  if c <> 0 then c
  else
    let c = Int.compare a.freq b.freq in
    if c <> 0 then c else Int.compare a.prob b.prob

let mul a b = { work = a.work + b.work; freq = a.freq + b.freq; prob = a.prob + b.prob }
let inv a = { work = -a.work; freq = -a.freq; prob = -a.prob }
let div a b = mul a (inv b)
let pow a n = { work = n * a.work; freq = n * a.freq; prob = n * a.prob }

let sqrt a =
  if a.work mod 2 = 0 && a.freq mod 2 = 0 && a.prob mod 2 = 0 then
    Some { work = a.work / 2; freq = a.freq / 2; prob = a.prob / 2 }
  else None

(* ------------------------------------------------------------------ *)
(* names                                                               *)
(* ------------------------------------------------------------------ *)

(* Catalogue order doubles as the printing preference. *)
let catalogue =
  [
    ("dimensionless", dimensionless);
    ("work", work);
    ("freq", freq);
    ("time", time);
    ("energy", energy);
    ("power", power);
    ("prob", prob);
  ]

let aliases = [ ("speed", freq); ("ratio", dimensionless); ("1", dimensionless) ]

let of_name s = List.assoc_opt s (catalogue @ aliases)

(* ------------------------------------------------------------------ *)
(* parsing                                                             *)
(* ------------------------------------------------------------------ *)

type token = Name of string | Star | Slash | Caret | Lparen | Rparen | Int of int

let tokenize s =
  let n = String.length s in
  let is_word c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_' in
  let is_digit c = c >= '0' && c <= '9' in
  let rec go i acc =
    if i >= n then Ok (List.rev acc)
    else
      match s.[i] with
      | ' ' | '\t' -> go (i + 1) acc
      | '*' -> go (i + 1) (Star :: acc)
      | '/' -> go (i + 1) (Slash :: acc)
      | '^' -> go (i + 1) (Caret :: acc)
      | '(' -> go (i + 1) (Lparen :: acc)
      | ')' -> go (i + 1) (Rparen :: acc)
      | '-' | '0' .. '9' ->
        let j = ref (if s.[i] = '-' then i + 1 else i) in
        while !j < n && is_digit s.[!j] do incr j done;
        if !j = i + 1 && s.[i] = '-' then Error "lone '-' in unit expression"
        else (
          match int_of_string_opt (String.sub s i (!j - i)) with
          | Some v -> go !j (Int v :: acc)
          | None -> Error (Printf.sprintf "bad integer %S" (String.sub s i (!j - i))))
      | c when is_word c ->
        let j = ref i in
        while !j < n && is_word s.[!j] do incr j done;
        go !j (Name (String.sub s i (!j - i)) :: acc)
      | c -> Error (Printf.sprintf "unexpected character %C" c)
  in
  go 0 []

(* unit ::= term (('*'|'/') term)* ; term ::= atom ('^' int)? ;
   atom ::= name | '1' | '(' unit ')' *)
let parse s =
  let ( let* ) r f = Result.bind r f in
  let rec unit toks =
    let* t, toks = term toks in
    tail t toks
  and tail acc = function
    | Star :: toks ->
      let* t, toks = term toks in
      tail (mul acc t) toks
    | Slash :: toks ->
      let* t, toks = term toks in
      tail (div acc t) toks
    | toks -> Ok (acc, toks)
  and term toks =
    let* a, toks = atom toks in
    match toks with
    | Caret :: Int n :: toks -> Ok (pow a n, toks)
    | Caret :: _ -> Error "expected an integer exponent after '^'"
    | _ -> Ok (a, toks)
  and atom = function
    | Name name :: toks -> (
      match of_name name with
      | Some u -> Ok (u, toks)
      | None -> Error (Printf.sprintf "unknown unit name %S" name))
    | Int 1 :: toks -> Ok (dimensionless, toks)
    | Lparen :: toks -> (
      let* u, toks = unit toks in
      match toks with
      | Rparen :: toks -> Ok (u, toks)
      | _ -> Error "unbalanced parentheses")
    | _ -> Error "expected a unit name"
  in
  let* toks = tokenize s in
  let* u, rest = unit toks in
  if rest = [] then Ok u else Error "trailing tokens after unit expression"

(* ------------------------------------------------------------------ *)
(* printing                                                            *)
(* ------------------------------------------------------------------ *)

let find_catalogue u =
  List.find_map (fun (n, v) -> if equal u v then Some n else None) catalogue

let canonical u =
  let base = [ ("work", u.work); ("freq", u.freq); ("prob", u.prob) ] in
  let factors =
    List.filter_map
      (fun (n, e) ->
        if e = 0 then None
        else if e = 1 then Some n
        else Some (Printf.sprintf "%s^%d" n e))
      base
  in
  String.concat "*" factors

let to_string u =
  match find_catalogue u with
  | Some n -> n
  | None -> (
    (* one alias quotient (prob/time, 1/freq, ...) reads better than
       the exponent vector when it exists *)
    let quotients =
      List.concat_map
        (fun (nn, nv) ->
          List.filter_map
            (fun (dn, dv) ->
              if equal dv dimensionless then None
              else if equal u (div nv dv) then
                Some ((if equal nv dimensionless then "1" else nn) ^ "/" ^ dn)
              else None)
            catalogue)
        catalogue
    in
    match quotients with q :: _ -> q | [] -> canonical u)
