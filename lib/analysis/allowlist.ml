(* Checked-in allowlist: one "<path> <rule>" pair per line, '#' starts a
   comment.  Paths are matched by suffix against the (slash-normalised)
   file being linted, so the same file works from the repo root and from
   a dune sandbox.  A path ending in '/' is a directory entry and
   permits the rule in every file under that directory. *)

type entry = { path : string; rule : Rules.t }
type t = entry list

let empty = []

(* Slash-normalise but keep a single trailing '/' — that is the
   directory-entry marker.  Collapsing duplicates means "test//" and
   "./test/" both parse to the entry "test/". *)
let normalise_path p =
  let p = String.map (fun c -> if c = '\\' then '/' else c) p in
  let buf = Buffer.create (String.length p) in
  String.iter
    (fun c ->
      let n = Buffer.length buf in
      if not (c = '/' && n > 0 && Buffer.nth buf (n - 1) = '/') then
        Buffer.add_char buf c)
    p;
  let p = Buffer.contents buf in
  if String.length p > 2 && String.sub p 0 2 = "./" then
    String.sub p 2 (String.length p - 2)
  else p

let strip_comment line =
  match String.index_opt line '#' with
  | Some i -> String.sub line 0 i
  | None -> line

let parse_line ~file ~lineno line =
  let line = String.trim (strip_comment line) in
  if line = "" then Ok None
  else
    match String.split_on_char ' ' line |> List.filter (fun s -> s <> "") with
    | [ path; rule_id ] -> (
      match Rules.of_id rule_id with
      | Some rule -> Ok (Some { path = normalise_path path; rule })
      | None ->
        Error
          (Printf.sprintf "%s:%d: unknown rule id %S" file lineno rule_id))
    | _ ->
      Error
        (Printf.sprintf "%s:%d: expected \"<path> <rule>\", got %S" file
           lineno line)

let parse ~file contents =
  let lines = String.split_on_char '\n' contents in
  let entries, errors, _ =
    List.fold_left
      (fun (entries, errors, lineno) line ->
        match parse_line ~file ~lineno line with
        | Ok None -> (entries, errors, lineno + 1)
        | Ok (Some e) -> (e :: entries, errors, lineno + 1)
        | Error msg -> (entries, msg :: errors, lineno + 1))
      ([], [], 1) lines
  in
  match errors with
  | [] -> Ok (List.rev entries)
  | _ -> Error (String.concat "\n" (List.rev errors))

let load file =
  match In_channel.with_open_text file In_channel.input_all with
  | contents -> parse ~file contents
  | exception Sys_error msg -> Error msg

(* "lib/dag/sp.ml" matches entry "dag/sp.ml"; "test/lint/x.ml" matches
   the directory entry "test/" both as a prefix (repo-root runs) and
   after any "/" (sandbox runs). *)
let path_matches ~file allowed =
  let file = normalise_path file in
  let la = String.length allowed and lf = String.length file in
  if la > 0 && allowed.[la - 1] = '/' then
    (lf > la && String.sub file 0 la = allowed)
    || (let rec at i =
          i >= 0
          && ((file.[i] = '/' && lf - i - 1 > la
               && String.sub file (i + 1) la = allowed)
              || at (i - 1))
        in
        at (lf - la - 2))
  else
    file = allowed
    || (lf > la
        && String.sub file (lf - la) la = allowed
        && file.[lf - la - 1] = '/')

let permits t ~file rule =
  List.exists (fun e -> e.rule = rule && path_matches ~file e.path) t
