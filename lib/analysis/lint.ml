(* AST-driven lint engine.

   A file is parsed with the vanilla compiler front end
   (compiler-libs.common, no ppx) and walked once with [Ast_iterator].
   The walk collects raw findings *and* suppression ranges from
   [@lint.allow "E00x"] attributes; at the end every finding whose
   character range falls inside a matching suppression range (or whose
   file/rule pair is on the checked-in allowlist) is dropped.

   Findings are keyed on fully-qualified identifier paths, with a
   leading [Stdlib.] stripped, so [Stdlib.compare] and [compare] are the
   same offence while [Float.compare] is not. *)

type config = { rules : Rules.t list; allow : Allowlist.t }

let default_config = { rules = Rules.all; allow = Allowlist.empty }

type diagnostic = {
  file : string;
  line : int;
  col : int;
  rule : Rules.t;
  message : string;
}

let to_string d =
  Printf.sprintf "%s:%d:%d [%s] %s" d.file d.line d.col (Rules.id d.rule)
    d.message

let compare_diagnostic a b =
  let c = String.compare a.file b.file in
  if c <> 0 then c
  else
    let c = Int.compare a.line b.line in
    if c <> 0 then c
    else
      let c = Int.compare a.col b.col in
      if c <> 0 then c else Rules.compare_rule a.rule b.rule

(* ------------------------------------------------------------------ *)
(* identifier tables                                                   *)
(* ------------------------------------------------------------------ *)

(* E001: polymorphic structural comparison / hashing. *)
let poly_ops = [ "compare"; "Hashtbl.hash"; "Hashtbl.seeded_hash"; "Hashtbl.hash_param" ]

(* E002: partial stdlib functions on hot paths. *)
let partial_fns =
  [
    "List.hd"; "List.tl"; "List.nth"; "List.find"; "List.assoc";
    "Option.get"; "Hashtbl.find"; "Float.of_string";
  ]

(* E004: direct printing to stdout. *)
let print_fns =
  [
    "print_string"; "print_endline"; "print_newline"; "print_char";
    "print_int"; "print_float"; "print_bytes"; "Printf.printf";
    "Format.printf"; "Format.print_string"; "Format.print_newline";
  ]

(* ------------------------------------------------------------------ *)
(* paths                                                               *)
(* ------------------------------------------------------------------ *)

let segments file =
  String.map (fun c -> if c = '\\' then '/' else c) file
  |> String.split_on_char '/'
  |> List.filter (fun s -> s <> "" && s <> ".")

(* Library code is anything with a [lib] path segment.  Test runners
   (a [test] segment) are held to the same E004/E005 bar — exemptions
   go in the checked-in allowlist, not in the scanner. *)
let is_lib_source file =
  let segs = segments file in
  List.mem "lib" segs || List.mem "test" segs

(* U003 applies to the interfaces of the numeric core: a [lib/core] or
   [lib/platform] directory pair anywhere in the path. *)
let is_units_scope file =
  let rec pairs = function
    | "lib" :: (("core" | "platform") as _next) :: _ -> true
    | _ :: rest -> pairs rest
    | [] -> false
  in
  pairs (segments file)

(* E007 applies to the libraries whose values are shared across worker
   domains by lib/par: the solver core, the schedulers and the
   simulator.  lib/obs keeps its (atomic) counters, and binaries own
   their CLI state, so neither is in scope. *)
let is_domain_scope file =
  let rec pairs = function
    | "lib" :: (("core" | "sched" | "sim") as _next) :: _ -> true
    | _ :: rest -> pairs rest
    | [] -> false
  in
  pairs (segments file)

let rec flatten_longident = function
  | Longident.Lident s -> Some [ s ]
  | Longident.Ldot (p, s) ->
    Option.map (fun segs -> segs @ [ s ]) (flatten_longident p)
  | Longident.Lapply _ -> None

let ident_name lid =
  match flatten_longident lid with
  | None -> None
  | Some segs ->
    let segs = match segs with "Stdlib" :: rest when rest <> [] -> rest | _ -> segs in
    Some (String.concat "." segs)

(* ------------------------------------------------------------------ *)
(* one-file analysis state                                             *)
(* ------------------------------------------------------------------ *)

type raw_finding = { r_rule : Rules.t; r_loc : Location.t; r_message : string }

(* A suppression covers one rule over a [cnum, cnum] character range. *)
type suppression = { s_rule : Rules.t; s_from : int; s_to : int }

type state = {
  src_file : string;
  mutable findings : raw_finding list;
  mutable suppressions : suppression list;
  mutable errors : string list;
}

let report st rule loc message =
  st.findings <- { r_rule = rule; r_loc = loc; r_message = message } :: st.findings

(* [@lint.allow "E001"] / [@lint.allow "E001,E004"] payloads. *)
let allow_attr_rules st (attr : Parsetree.attribute) =
  if attr.attr_name.txt <> "lint.allow" then []
  else
    let malformed () =
      let p = attr.attr_loc.loc_start in
      st.errors <-
        Printf.sprintf
          "%s:%d:%d malformed [@lint.allow] payload: expected a string \
           literal such as \"E001\" or \"E001,E004\""
          st.src_file p.pos_lnum (p.pos_cnum - p.pos_bol)
        :: st.errors;
      []
    in
    match attr.attr_payload with
    | PStr
        [
          {
            pstr_desc =
              Pstr_eval
                ({ pexp_desc = Pexp_constant (Pconst_string (s, _, _)); _ }, _);
            _;
          };
        ] ->
      let ids = String.split_on_char ',' s in
      let rules = List.filter_map Rules.of_id ids in
      if List.length rules <> List.length ids then malformed () else rules
    | _ -> malformed ()

let add_suppressions st ~(scope : Location.t) attrs =
  List.iter
    (fun attr ->
      List.iter
        (fun rule ->
          st.suppressions <-
            {
              s_rule = rule;
              s_from = scope.loc_start.pos_cnum;
              s_to = scope.loc_end.pos_cnum;
            }
            :: st.suppressions)
        (allow_attr_rules st attr))
    attrs

let whole_file : Location.t -> Location.t =
 fun _ ->
  let pos = { Lexing.pos_fname = ""; pos_lnum = 0; pos_bol = 0; pos_cnum = 0 } in
  {
    Location.loc_start = pos;
    loc_end = { pos with pos_cnum = max_int };
    loc_ghost = true;
  }

(* ------------------------------------------------------------------ *)
(* rule checks                                                         *)
(* ------------------------------------------------------------------ *)

let check_ident st ~lib name loc =
  if List.mem name poly_ops then
    report st Rules.E001 loc
      (Printf.sprintf
         "polymorphic structural operation %s; use a typed comparator \
          (Float.compare, Int.compare, String.compare, List.compare, ...)"
         name)
  else if List.mem name partial_fns then
    report st Rules.E002 loc
      (Printf.sprintf
         "partial stdlib function %s; use a total match or the _opt variant"
         name)
  else if lib && List.mem name print_fns then
    report st Rules.E004 loc
      (Printf.sprintf
         "direct printing via %s from library code; return a string or \
          annotate the render entry point with [@lint.allow \"E004\"]"
         name)
  else if name = "Obj.magic" || String.length name > 8 && String.sub name 0 8 = "Marshal." then
    report st Rules.E006 loc
      (Printf.sprintf "unsafe representation escape %s" name)

(* E007: module-level mutable state.  Only constructors that *allocate
   a mutable value at module initialisation time* count — a [let mk ()
   = ref 0] factory is fine because each call gets a fresh cell. *)
let mutable_creators =
  [ "ref"; "Hashtbl.create"; "Queue.create"; "Stack.create"; "Buffer.create" ]

(* ... and domain-safe synchronisation primitives are explicitly
   exempt: a top-level Atomic/Mutex/Condition exists precisely to be
   shared across domains.  (Explicit so a future creator added to
   [mutable_creators] cannot silently re-flag them.) *)
let domain_safe_creators =
  [
    "Atomic.make"; "Mutex.create"; "Condition.create";
    "Semaphore.Counting.make"; "Semaphore.Binary.make";
  ]

(* Walk through the wrappers that still denote "this binding *is* that
   allocation" ([let x : t = ref 0], [let x = let n = 8 in Hashtbl.create n])
   down to the applied function, if any. *)
let rec creation_head (e : Parsetree.expression) =
  match e.pexp_desc with
  | Pexp_constraint (inner, _)
  | Pexp_coerce (inner, _, _)
  | Pexp_open (_, inner)
  | Pexp_let (_, _, inner)
  | Pexp_sequence (_, inner) ->
    creation_head inner
  | Pexp_apply ({ pexp_desc = Pexp_ident { txt; _ }; _ }, _) -> ident_name txt
  | _ -> None

let check_module_level_mutability st (si : Parsetree.structure_item) =
  match si.pstr_desc with
  | Pstr_value (_, vbs) ->
    List.iter
      (fun (vb : Parsetree.value_binding) ->
        match creation_head vb.pvb_expr with
        | Some name when List.mem name domain_safe_creators -> ()
        | Some name when List.mem name mutable_creators ->
          report st Rules.E007 vb.pvb_loc
            (Printf.sprintf
               "module-level mutable state (%s) in domain-shared code; \
                worker domains race on it — make it immutable, pass state \
                explicitly, or justify with [@lint.allow \"E007\"]"
               name)
        | _ -> ())
      vbs
  | Pstr_type (_, decls) ->
    List.iter
      (fun (td : Parsetree.type_declaration) ->
        match td.ptype_kind with
        | Ptype_record labels ->
          List.iter
            (fun (ld : Parsetree.label_declaration) ->
              if ld.pld_mutable = Asttypes.Mutable then
                report st Rules.E007 ld.pld_loc
                  (Printf.sprintf
                     "mutable record field %s in domain-shared code; values \
                      of this type race when shared across worker domains — \
                      drop [mutable] or use Atomic.t"
                     ld.pld_name.txt))
            labels
        | _ -> ())
      decls
  | _ -> ()

let check_try_case st (case : Parsetree.case) =
  (* Guarded handlers ([with _ when p ->]) are selective; leave them. *)
  if case.pc_guard = None then
    match case.pc_lhs.ppat_desc with
    | Ppat_any ->
      report st Rules.E003 case.pc_lhs.ppat_loc
        "catch-all exception handler 'with _ ->' swallows every exception \
         (including Out_of_memory and Assert_failure); match the \
         exceptions you expect"
    | Ppat_var _ -> (
      match case.pc_rhs.pexp_desc with
      | Pexp_construct ({ txt = Lident "()"; _ }, None) ->
        report st Rules.E003 case.pc_lhs.ppat_loc
          "exception handler binds every exception and discards it; \
           match the exceptions you expect"
      | _ -> ())
    | _ -> ()

(* ------------------------------------------------------------------ *)
(* AST walk                                                            *)
(* ------------------------------------------------------------------ *)

let make_iterator st ~lib ~domain =
  let open Ast_iterator in
  let expr iter (e : Parsetree.expression) =
    add_suppressions st ~scope:e.pexp_loc e.pexp_attributes;
    (match e.pexp_desc with
    | Pexp_ident { txt; loc } -> (
      match ident_name txt with
      | Some name -> check_ident st ~lib name loc
      | None -> ())
    | Pexp_try (_, cases) -> List.iter (check_try_case st) cases
    | _ -> ());
    default_iterator.expr iter e
  in
  let value_binding iter (vb : Parsetree.value_binding) =
    add_suppressions st ~scope:vb.pvb_loc vb.pvb_attributes;
    default_iterator.value_binding iter vb
  in
  let structure_item iter (si : Parsetree.structure_item) =
    (match si.pstr_desc with
    | Pstr_attribute attr ->
      (* floating [@@@lint.allow "..."]: suppress for the whole file *)
      add_suppressions st ~scope:(whole_file si.pstr_loc) [ attr ]
    | Pstr_eval (_, attrs) -> add_suppressions st ~scope:si.pstr_loc attrs
    | _ -> ());
    if domain then check_module_level_mutability st si;
    default_iterator.structure_item iter si
  in
  let module_binding iter (mb : Parsetree.module_binding) =
    add_suppressions st ~scope:mb.pmb_loc mb.pmb_attributes;
    default_iterator.module_binding iter mb
  in
  let signature_item iter (si : Parsetree.signature_item) =
    (match si.psig_desc with
    | Psig_attribute attr ->
      add_suppressions st ~scope:(whole_file si.psig_loc) [ attr ]
    | _ -> ());
    default_iterator.signature_item iter si
  in
  (* [@lint.allow] can also sit on a [val] declaration, a record label
     or inline on a core type — the natural scopes for U003. *)
  let value_description iter (vd : Parsetree.value_description) =
    add_suppressions st ~scope:vd.pval_loc vd.pval_attributes;
    default_iterator.value_description iter vd
  in
  let label_declaration iter (ld : Parsetree.label_declaration) =
    add_suppressions st ~scope:ld.pld_loc ld.pld_attributes;
    default_iterator.label_declaration iter ld
  in
  let typ iter (ty : Parsetree.core_type) =
    add_suppressions st ~scope:ty.ptyp_loc ty.ptyp_attributes;
    default_iterator.typ iter ty
  in
  {
    default_iterator with
    expr;
    value_binding;
    structure_item;
    module_binding;
    signature_item;
    value_description;
    label_declaration;
    typ;
  }

(* ------------------------------------------------------------------ *)
(* entry points                                                        *)
(* ------------------------------------------------------------------ *)

let suppressed st (f : raw_finding) =
  let c = f.r_loc.loc_start.pos_cnum in
  List.exists
    (fun s -> s.s_rule = f.r_rule && s.s_from <= c && c <= s.s_to)
    st.suppressions

let finalise config st =
  let diags =
    List.filter_map
      (fun f ->
        if not (List.mem f.r_rule config.rules) then None
        else if suppressed st f then None
        else if Allowlist.permits config.allow ~file:st.src_file f.r_rule then None
        else
          let p = f.r_loc.loc_start in
          Some
            {
              file = st.src_file;
              line = p.pos_lnum;
              col = p.pos_cnum - p.pos_bol;
              rule = f.r_rule;
              message = f.r_message;
            })
      st.findings
    |> List.sort compare_diagnostic
  in
  match st.errors with
  | [] -> Ok diags
  | errs -> Error (String.concat "\n" (List.rev errs))

let has_mli file = Sys.file_exists (Filename.remove_extension file ^ ".mli")

let missing_mli config file =
  if
    List.mem Rules.E005 config.rules
    && Filename.check_suffix file ".ml"
    && is_lib_source file
    && not (has_mli file)
    && not (Allowlist.permits config.allow ~file Rules.E005)
  then
    [
      {
        file;
        line = 1;
        col = 0;
        rule = Rules.E005;
        message =
          Printf.sprintf
            "library module %s has no .mli interface; write one (or \
             allow-list generated modules)"
            (Filename.basename file);
      };
    ]
  else []

let parse_error_message file exn =
  match Location.error_of_exn exn with
  | Some (`Ok report) ->
    Format.asprintf "%s: %a" file Location.print_report report
    |> String.map (fun c -> if c = '\n' then ' ' else c)
  | _ -> Printf.sprintf "%s: parse error" file

let units_enabled config =
  List.exists (fun r -> List.mem r config.rules) Rules.units

let par_enabled config =
  List.exists (fun r -> List.mem r config.rules) Rules.par

let effects_enabled config =
  List.exists (fun r -> List.mem r config.rules) Rules.effects

module Obs = Es_obs.Obs

(* [eslint --stats] reads these back from the Obs snapshot *)
let callgraph_timer = Obs.timer "eslint.callgraph.build"
let effects_timer = Obs.timer "eslint.effects.infer"

let lint_source ?(units_env = Units_rules.empty_env ()) ?par_ctx ?eff config
    ~file contents =
  let st = { src_file = file; findings = []; suppressions = []; errors = [] } in
  let lexbuf = Lexing.from_string contents in
  Location.init lexbuf file;
  let report_units rule loc msg = report st rule loc msg in
  let error_units msg = st.errors <- msg :: st.errors in
  let parsed =
    if Filename.check_suffix file ".mli" then (
      match Parse.interface lexbuf with
      | sg ->
        let iter =
          make_iterator st ~lib:(is_lib_source file)
            ~domain:(is_domain_scope file)
        in
        iter.signature iter sg;
        if units_enabled config then
          Units_rules.check_interface ~annotate_scope:(is_units_scope file)
            ~report:report_units ~error:error_units sg;
        (* X001 needs the cross-file summaries of a directory run; a
           bare interface lint has no implementation to summarise *)
        (if effects_enabled config then
           match eff with
           | Some env ->
             Resource_rules.check_interface ~eff:env ~file
               ~report:(fun rule loc msg -> report st rule loc msg)
               sg
           | None -> ());
        Ok ()
      | exception ((Syntaxerr.Error _ | Lexer.Error _) as exn) ->
        Error (parse_error_message file exn))
    else
      match Parse.implementation lexbuf with
      | str ->
        let iter =
          make_iterator st ~lib:(is_lib_source file)
            ~domain:(is_domain_scope file)
        in
        iter.structure iter str;
        if units_enabled config then
          Units_rules.check_structure units_env
            ~module_name:(Units_rules.module_name_of_file file)
            ~report:report_units ~error:error_units str;
        (if par_enabled config || effects_enabled config then begin
           (* directory runs share the cross-module graph from pass 1;
              a bare single-file lint still gets intra-file traces
              from a graph over just this structure *)
           let local_graph =
             lazy
               (let g = Callgraph.create () in
                Callgraph.add_source g ~file str;
                g)
           in
           let ctx =
             match par_ctx with
             | Some ctx -> ctx
             | None -> Par_rules.make_ctx (Lazy.force local_graph)
           in
           if par_enabled config then
             Par_rules.check_structure ctx ~file
               ~report:(fun rule loc msg -> report st rule loc msg)
               str;
           if effects_enabled config then begin
             let env =
               match eff with
               | Some env -> env
               | None -> Effects.infer (Lazy.force local_graph)
             in
             Resource_rules.check_structure ~eff:env
               ~is_former:(Par_rules.is_former ctx) ~file
               ~report:(fun rule loc msg -> report st rule loc msg)
               str
           end
         end);
        Ok ()
      | exception ((Syntaxerr.Error _ | Lexer.Error _) as exn) ->
        Error (parse_error_message file exn)
  in
  match parsed with
  | Error msg -> Error msg
  | Ok () -> (
    match finalise config st with
    | Ok diags -> Ok (missing_mli config file @ diags |> List.sort compare_diagnostic)
    | Error msg -> Error msg)

(* Pass 1: harvest [@units] annotations from every .mli of the lint
   set.  Parse failures are ignored here — the file surfaces its own
   error when linted in pass 2. *)
let build_units_env config files =
  let env = Units_rules.empty_env () in
  if units_enabled config then
    List.iter
      (fun file ->
        if Filename.check_suffix file ".mli" then
          match In_channel.with_open_text file In_channel.input_all with
          | contents -> (
            let lexbuf = Lexing.from_string contents in
            Location.init lexbuf file;
            match Parse.interface lexbuf with
            | sg ->
              Units_rules.collect_interface env
                ~module_name:(Units_rules.module_name_of_file file)
                sg
            | exception (Syntaxerr.Error _ | Lexer.Error _) -> ())
          | exception Sys_error _ -> ())
      files;
  env

(* Pass 1 of both interprocedural analyses: ONE call graph over every
   .ml of the lint set, shared by the parallel-safety and the
   exception-flow/resource passes.  Parse failures are ignored here —
   the file surfaces its own error when linted in pass 2. *)
let build_graph files =
  Obs.time callgraph_timer (fun () ->
      let graph = Callgraph.create () in
      List.iter
        (fun file ->
          if Filename.check_suffix file ".ml" then
            match In_channel.with_open_text file In_channel.input_all with
            | contents -> (
              let lexbuf = Lexing.from_string contents in
              Location.init lexbuf file;
              match Parse.implementation lexbuf with
              | str -> Callgraph.add_source graph ~file str
              | exception (Syntaxerr.Error _ | Lexer.Error _) -> ())
            | exception Sys_error _ -> ())
        files;
      graph)

let build_par_ctx config files =
  if not (par_enabled config) then Par_rules.empty_ctx ()
  else Par_rules.make_ctx (build_graph files)

let lint_file_in_env ?par_ctx ?eff config ~units_env file =
  match In_channel.with_open_text file In_channel.input_all with
  | contents -> lint_source ~units_env ?par_ctx ?eff config ~file contents
  | exception Sys_error msg -> Error msg

let lint_file config file =
  (* single-file convenience: the sibling .mli (if any) seeds the
     interprocedural environment, mirroring what a directory run sees;
     the par graph covers just this file (lint_source builds it) *)
  let sibling = Filename.remove_extension file ^ ".mli" in
  let seeds = if Sys.file_exists sibling then [ file; sibling ] else [ file ] in
  lint_file_in_env config ~units_env:(build_units_env config seeds) file

(* Directory recursion: descend everywhere except build/VCS droppings.
   Explicitly named roots are always scanned, so pointing the driver at
   a fixture directory works even though [_build] is skipped during
   descent. *)
let skip_dirs = [ "_build"; ".git"; "node_modules" ]

let is_source file =
  Filename.check_suffix file ".ml" || Filename.check_suffix file ".mli"

(* Canonical relative form: forward slashes, duplicate separators
   collapsed, leading "./" and any trailing '/' stripped — so
   [eslint lib/core lib/core/ ./lib//core] all name the same root and
   [--exclude test/fixtures/] matches what the walker compares. *)
let normalise_path p =
  let p = String.map (fun c -> if c = '\\' then '/' else c) p in
  let buf = Buffer.create (String.length p) in
  String.iter
    (fun c ->
      let n = Buffer.length buf in
      if not (c = '/' && n > 0 && Buffer.nth buf (n - 1) = '/') then
        Buffer.add_char buf c)
    p;
  let p = Buffer.contents buf in
  let p =
    if String.length p > 2 && String.sub p 0 2 = "./" then
      String.sub p 2 (String.length p - 2)
    else p
  in
  if String.length p > 1 && p.[String.length p - 1] = '/' then
    String.sub p 0 (String.length p - 1)
  else p

let is_excluded ~exclude path =
  let path = normalise_path path in
  List.exists
    (fun ex ->
      path = ex
      || String.length path > String.length ex
         && String.sub path 0 (String.length ex + 1) = ex ^ "/")
    exclude

let rec collect_path ~exclude acc path =
  if Sys.is_directory path then
    Sys.readdir path |> Array.to_list |> List.sort String.compare
    |> List.fold_left
         (fun acc entry ->
           let child = Filename.concat path entry in
           if is_excluded ~exclude child then acc
           else if Sys.is_directory child then
             if List.mem entry skip_dirs then acc
             else collect_path ~exclude acc child
           else if is_source child then child :: acc
           else acc)
         acc
  else if is_source path then path :: acc
  else acc

(* Full order including the message, so a file reached both directly
   and through a directory walk cannot yield duplicate findings. *)
let compare_diagnostic_full a b =
  let c = compare_diagnostic a b in
  if c <> 0 then c else String.compare a.message b.message

let lint_paths ?(exclude = []) config paths =
  let exclude = List.map normalise_path exclude in
  let files =
    List.fold_left (collect_path ~exclude) [] (List.map normalise_path paths)
    |> List.map normalise_path
    |> List.sort_uniq String.compare
  in
  let units_env = build_units_env config files in
  (* the callgraph is built once per run and shared between the P and
     X/R passes; the par ctx is needed even for an effects-only run
     (X002 asks it which nodes are derived combinators) *)
  let graph =
    if par_enabled config || effects_enabled config then
      Some (build_graph files)
    else None
  in
  let par_ctx = Option.map Par_rules.make_ctx graph in
  let eff =
    if effects_enabled config then
      Option.map (fun g -> Obs.time effects_timer (fun () -> Effects.infer g)) graph
    else None
  in
  List.fold_left
    (fun (diags, errors) file ->
      match lint_file_in_env ?par_ctx ?eff config ~units_env file with
      | Ok ds -> (ds :: diags, errors)
      | Error msg -> (diags, msg :: errors))
    ([], []) files
  |> fun (diags, errors) ->
  ( List.concat (List.rev diags) |> List.sort_uniq compare_diagnostic_full,
    List.rev errors )
