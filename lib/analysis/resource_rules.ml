(* Exception-flow / resource-lifecycle checks (X001, X002, R001-R003)
   — layer 2 over the {!Effects} summaries.  See resource_rules.mli
   for the rule semantics and caveats.

   The leak model is deliberately syntactic and per-binding:

   - [let x = <acquire> in body] opens a protocol obligation on [x];
     release sites are applications of the matching close on [x], and
     a release inside a [Fun.protect ~finally] argument is protected;
   - [Mutex.lock m] / [Obs.enable ()] open sequence-scoped
     obligations: the rest of the enclosing statement sequence must
     contain the matching unlock/disable (or a [Fun.protect] whose
     [~finally] performs it);
   - when the release exists but is unprotected, everything before the
     first unprotected release is summarised with {!Effects}; if it
     may raise, the exceptional path leaks (R002/R003). *)

module SSet = Effects.SSet

(* ------------------------------------------------------------------ *)
(* small shared helpers (mirrors par_rules)                            *)
(* ------------------------------------------------------------------ *)

let last_two_segments name =
  match List.rev (String.split_on_char '.' name) with
  | leaf :: parent :: _ -> parent ^ "." ^ leaf
  | _ -> name

let loc_tag (loc : Location.t) =
  Printf.sprintf "%s:%d" loc.loc_start.pos_fname loc.loc_start.pos_lnum

let hop (name, loc) = Printf.sprintf "%s@%s" name (loc_tag loc)

let segments file =
  String.map (fun c -> if c = '\\' then '/' else c) file
  |> String.split_on_char '/'
  |> List.filter (fun s -> s <> "" && s <> ".")

let is_lib_interface file = List.mem "lib" (segments file)

let contains_sub s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  m = 0 || go 0

let first_positional args =
  List.find_map
    (fun ((label : Asttypes.arg_label), e) ->
      match label with Nolabel -> Some e | _ -> None)
    args

let rec peel (e : Parsetree.expression) =
  match e.pexp_desc with
  | Pexp_constraint (inner, _) | Pexp_newtype (_, inner) -> peel inner
  | _ -> e

(* ------------------------------------------------------------------ *)
(* acquire / release forms                                             *)
(* ------------------------------------------------------------------ *)

type resource = {
  r_word : string;  (* human name of the resource *)
  r_fix : string;  (* suggested structural fix *)
}

(* let-bound acquires: resolved head name -> resource *)
let acquire_of head =
  match head with
  | "open_in" | "open_in_bin" | "open_in_gen" ->
    Some { r_word = "input channel"; r_fix = "Fun.protect ~finally:close_in" }
  | "open_out" | "open_out_bin" | "open_out_gen" ->
    Some
      { r_word = "output channel"; r_fix = "Fun.protect ~finally:close_out" }
  | _ -> (
    match last_two_segments head with
    | "Unix.openfile" ->
      Some
        {
          r_word = "file descriptor";
          r_fix = "Fun.protect ~finally:Unix.close";
        }
    | "Pool.create" ->
      Some { r_word = "worker pool"; r_fix = "Pool.with_pool" }
    | _ -> None)

(* does the resolved name release the handle class of [head]? *)
let releases ~acquire_head name =
  match acquire_head with
  | "open_in" | "open_in_bin" | "open_in_gen" ->
    name = "close_in" || name = "close_in_noerr"
    || last_two_segments name = "In_channel.close"
  | "open_out" | "open_out_bin" | "open_out_gen" ->
    name = "close_out" || name = "close_out_noerr"
    || last_two_segments name = "Out_channel.close"
  | _ -> (
    match last_two_segments acquire_head with
    | "Unix.openfile" -> last_two_segments name = "Unix.close"
    | "Pool.create" -> last_two_segments name = "Pool.shutdown"
    | _ -> false)

(* ------------------------------------------------------------------ *)
(* syntactic searches                                                  *)
(* ------------------------------------------------------------------ *)

(* every [Pexp_apply] with a resolvable identifier head *)
let iter_applies ~resolve expr f =
  let open Ast_iterator in
  let expr_iter iter (e : Parsetree.expression) =
    (match e.pexp_desc with
    | Pexp_apply ({ pexp_desc = Pexp_ident { txt; _ }; _ }, args) -> (
      match resolve txt with
      | Some head -> f ~head ~args ~loc:e.pexp_loc
      | None -> ())
    | _ -> ());
    default_iterator.expr iter e
  in
  let iter = { default_iterator with expr = expr_iter } in
  iter.expr iter expr

(* character ranges of every [~finally] argument of a [Fun.protect]
   application under [expr] — releases inside them are protected *)
let finally_ranges ~resolve expr =
  let ranges = ref [] in
  iter_applies ~resolve expr (fun ~head ~args ~loc:_ ->
      if last_two_segments head = "Fun.protect" then
        List.iter
          (fun ((label : Asttypes.arg_label), (a : Parsetree.expression)) ->
            match label with
            | Labelled "finally" ->
              ranges :=
                (a.pexp_loc.loc_start.pos_cnum, a.pexp_loc.loc_end.pos_cnum)
                :: !ranges
            | _ -> ())
          args);
  !ranges

let in_ranges ranges (loc : Location.t) =
  let c = loc.loc_start.pos_cnum in
  List.exists (fun (lo, hi) -> lo <= c && c <= hi) ranges

(* argument is the bare identifier [x] *)
let arg_is args x =
  match first_positional args with
  | Some
      ({ pexp_desc = Pexp_ident { txt = Longident.Lident y; _ }; _ } :
        Parsetree.expression) ->
    y = x
  | _ -> false

(* leftmost identifier of the first positional argument, for naming
   the lock in messages and matching its unlock *)
let arg_name args =
  match Option.map peel (first_positional args) with
  | Some ({ pexp_desc = Pexp_ident { txt; _ }; _ } : Parsetree.expression) -> (
    match Callgraph.flatten_longident txt with
    | Some segs -> Some (String.concat "." segs)
    | None -> None)
  | _ -> None

let rec sequence_chain (e : Parsetree.expression) =
  match e.pexp_desc with
  | Pexp_sequence (a, b) -> a :: sequence_chain b
  | _ -> [ e ]

(* ------------------------------------------------------------------ *)
(* rendering                                                           *)
(* ------------------------------------------------------------------ *)

let raise_phrase eff_sum =
  match Effects.to_list eff_sum with
  | Some exns -> "may raise " ^ String.concat ", " exns
  | None -> "may raise (an unknown external is reached in call position)"

let evidence_suffix = function
  | Some (ev : Effects.evidence) when ev.e_hops <> [] ->
    "; witness: " ^ String.concat " -> " (List.map hop ev.e_hops)
  | _ -> ""

(* ------------------------------------------------------------------ *)
(* R001/R002: let-bound handles                                        *)
(* ------------------------------------------------------------------ *)

let check_handle ~eff ~file ~bound ~report ~x ~acquire_head ~resource
    ~acq_loc body =
  let graph = Effects.graph eff in
  let resolve = Callgraph.resolve graph ~file in
  let release_sites = ref [] in
  iter_applies ~resolve body (fun ~head ~args ~loc ->
      if releases ~acquire_head head && arg_is args x then
        release_sites := loc :: !release_sites);
  match !release_sites with
  | [] ->
    report Rules.R001 acq_loc
      (Printf.sprintf
         "%s '%s' acquired here is never released in this binding; release \
          it on every path with %s (or justify ownership transfer with \
          [@lint.allow \"R001\"])"
         resource.r_word x resource.r_fix)
  | sites ->
    let protected = finally_ranges ~resolve body in
    let unprotected =
      List.filter (fun l -> not (in_ranges protected l)) sites
    in
    (match unprotected with
    | [] -> ()
    | _ ->
      let cutoff =
        List.fold_left
          (fun acc (l : Location.t) -> min acc l.loc_start.pos_cnum)
          max_int unprotected
      in
      (* everything from the first unprotected release on is out of
         scope: only the stretch between acquire and release decides
         whether the exceptional path can skip the close *)
      let mask (e : Parsetree.expression) =
        let c = e.pexp_loc.loc_start.pos_cnum in
        c >= 0 && c >= cutoff
      in
      let between = Effects.expr_summary ~mask ~bound eff ~file body in
      if not (Effects.is_pure between) then
        let ev = Effects.expr_evidence ~mask ~bound eff ~file body in
        report Rules.R002 acq_loc
          (Printf.sprintf
             "%s '%s' is released, but the code between acquire and release \
              %s and the release is not protected — the exceptional path \
              leaks it%s; wrap the body in %s"
             resource.r_word x (raise_phrase between) (evidence_suffix ev)
             resource.r_fix))

(* ------------------------------------------------------------------ *)
(* sequence protocols: Mutex.lock/unlock and Obs.enable/disable        *)
(* ------------------------------------------------------------------ *)

(* first application under [stmt] satisfying [pred] *)
let find_apply ~resolve stmt pred =
  let found = ref None in
  iter_applies ~resolve stmt (fun ~head ~args ~loc ->
      if !found = None && pred ~head ~args then found := Some (loc, args));
  !found

let check_chain ~eff ~file ~bound ~report ~seen stmts =
  let graph = Effects.graph eff in
  let resolve = Callgraph.resolve graph ~file in
  let once rule loc msg =
    let key = Printf.sprintf "%s|%s" (Rules.id rule) (loc_tag loc) in
    if not (Hashtbl.mem seen key) then begin
      Hashtbl.replace seen key ();
      report rule loc msg
    end
  in
  let between_summary stmts =
    List.fold_left
      (fun acc s ->
        Effects.union acc (Effects.expr_summary ~bound eff ~file s))
      Effects.pure stmts
  in
  let between_evidence stmts =
    List.find_map (fun s -> Effects.expr_evidence ~bound eff ~file s) stmts
  in
  (* split [rest] at the first stmt containing an (unmasked) release;
     returns the in-between stmts, the releasing stmt with the release
     location, and whether the release sits inside a [Fun.protect
     ~finally] *)
  let find_release rest is_release =
    let rec go acc = function
      | [] -> None
      | stmt :: tl -> (
        match find_apply ~resolve stmt is_release with
        | Some (loc, _) ->
          let protected = in_ranges (finally_ranges ~resolve stmt) loc in
          Some (List.rev acc, stmt, loc, protected)
        | None -> go (stmt :: acc) tl)
    in
    go [] rest
  in
  (* effect of the stretch between acquire and release: the whole
     in-between stmts plus the part of the releasing stmt before the
     release (a [let r = step () in Obs.disable (); r] releasing stmt
     hides the raising [step] from the in-between list otherwise) *)
  let stretch_summary between stmt (rel_loc : Location.t) =
    let cutoff = rel_loc.loc_start.pos_cnum in
    let mask (e : Parsetree.expression) =
      let c = e.pexp_loc.loc_start.pos_cnum in
      c >= 0 && c >= cutoff
    in
    Effects.union (between_summary between)
      (Effects.expr_summary ~mask ~bound eff ~file stmt)
  in
  let stretch_evidence between stmt (rel_loc : Location.t) =
    match between_evidence between with
    | Some ev -> Some ev
    | None ->
      let cutoff = rel_loc.loc_start.pos_cnum in
      let mask (e : Parsetree.expression) =
        let c = e.pexp_loc.loc_start.pos_cnum in
        c >= 0 && c >= cutoff
      in
      Effects.expr_evidence ~mask ~bound eff ~file stmt
  in
  (* a statement of an OUTER sequence can contain the whole protocol
     (acquire, body and release); search the same statement for a
     release strictly after the acquire before consulting [rest] *)
  let find_release_in stmt ~after is_release =
    let found = ref None in
    iter_applies ~resolve stmt (fun ~head ~args ~loc ->
        if
          !found = None
          && loc.Location.loc_start.pos_cnum > after
          && is_release ~head ~args
        then found := Some loc);
    !found
  in
  (* release found in the acquiring statement itself: silent when it
     sits in a [~finally]; otherwise flag if the masked in-between
     stretch may raise *)
  let same_stmt_release stmt ~en_loc dis_loc ~rule ~msg =
    if not (in_ranges (finally_ranges ~resolve stmt) dis_loc) then begin
      let lo = en_loc.Location.loc_end.pos_cnum in
      let hi = dis_loc.Location.loc_start.pos_cnum in
      (* prune only subtrees ENTIRELY outside the acquire..release
         window — the mask prunes children too, so a spanning
         container must stay visible for its in-window descendants *)
      let mask (e : Parsetree.expression) =
        let s = e.pexp_loc.loc_start.pos_cnum in
        let f = e.pexp_loc.loc_end.pos_cnum in
        s >= 0 && f >= 0 && (s >= hi || f <= lo)
      in
      let sum = Effects.expr_summary ~mask ~bound eff ~file stmt in
      if not (Effects.is_pure sum) then
        once rule en_loc (msg (raise_phrase sum))
    end
  in
  let rec walk = function
    | [] -> ()
    | stmt :: rest ->
      (* Mutex.lock m, protocol scoped to this sequence *)
      (match
         find_apply ~resolve stmt (fun ~head ~args:_ ->
             last_two_segments head = "Mutex.lock")
       with
      | Some (lock_loc, lock_args) -> (
        let target = arg_name lock_args in
        let is_unlock ~head ~args =
          last_two_segments head = "Mutex.unlock"
          && (target = None || arg_name args = target)
        in
        let lock_name = Option.value ~default:"<lock>" target in
        match
          find_release_in stmt ~after:lock_loc.Location.loc_end.pos_cnum
            is_unlock
        with
        | Some dis_loc ->
          same_stmt_release stmt ~en_loc:lock_loc dis_loc ~rule:Rules.R002
            ~msg:(fun phrase ->
              Printf.sprintf
                "code between Mutex.lock '%s' and its unprotected unlock %s; \
                 use Mutex.protect so the unlock runs on the raising path"
                lock_name phrase)
        | None -> (
        match find_release rest is_unlock with
        | None ->
          once Rules.R001 lock_loc
            (Printf.sprintf
               "Mutex.lock '%s' has no matching unlock in the rest of this \
                statement sequence; the raising (or early-return) path \
                leaves it held — use Mutex.protect"
               lock_name)
        | Some (_, _, _, true) -> ()
        | Some (between, rstmt, rloc, false) ->
          let sum = stretch_summary between rstmt rloc in
          if not (Effects.is_pure sum) then
            once Rules.R002 lock_loc
              (Printf.sprintf
                 "code between Mutex.lock '%s' and its unprotected unlock \
                  %s%s; use Mutex.protect so the unlock runs on the raising \
                  path"
                 lock_name (raise_phrase sum)
                 (evidence_suffix (stretch_evidence between rstmt rloc)))))
      | None -> ());
      (* Obs.enable () toggle protocol *)
      (match
         find_apply ~resolve stmt (fun ~head ~args:_ ->
             last_two_segments head = "Obs.enable")
       with
      | Some (en_loc, _) -> (
        let is_disable ~head ~args:_ = last_two_segments head = "Obs.disable" in
        match
          find_release_in stmt ~after:en_loc.Location.loc_end.pos_cnum
            is_disable
        with
        | Some dis_loc ->
          same_stmt_release stmt ~en_loc dis_loc ~rule:Rules.R003
            ~msg:(fun phrase ->
              Printf.sprintf
                "code between Obs.enable and its unprotected Obs.disable %s; \
                 move the disable into a Fun.protect ~finally so the raising \
                 path restores the toggle"
                phrase)
        | None -> (
        match find_release rest is_disable with
        | None ->
          once Rules.R003 en_loc
            (Printf.sprintf
               "Obs.enable is never balanced by Obs.disable in the rest of \
                this statement sequence; the telemetry toggle leaks across \
                the next caller — put the disable in a Fun.protect ~finally")
        | Some (_, _, _, true) -> ()
        | Some (between, rstmt, rloc, false) ->
          let sum = stretch_summary between rstmt rloc in
          if not (Effects.is_pure sum) then
            once Rules.R003 en_loc
              (Printf.sprintf
                 "code between Obs.enable and its unprotected Obs.disable \
                  %s%s; move the disable into a Fun.protect ~finally so the \
                  raising path restores the toggle"
                 (raise_phrase sum)
                 (evidence_suffix (stretch_evidence between rstmt rloc)))))
      | None -> ());
      walk rest
  in
  walk stmts

(* ------------------------------------------------------------------ *)
(* X002: raising callbacks in parallel regions                         *)
(* ------------------------------------------------------------------ *)

let drop_task_error = function
  | Effects.Top -> Effects.Top
  | Effects.Known s -> Effects.Known (SSet.remove "Task_error" s)

let check_callback ~eff ~is_former ~file ~bound ~report ~combinator args =
  let graph = Effects.graph eff in
  let resolve = Callgraph.resolve graph ~file in
  ignore is_former;
  List.iter
    (fun ((label : Asttypes.arg_label), raw_arg) ->
      match label with
      | Labelled _ | Optional _ -> ()
      | Nolabel -> (
        let arg = peel raw_arg in
        match arg.pexp_desc with
        | Pexp_fun _ | Pexp_function _ ->
          let sum =
            drop_task_error (Effects.expr_summary ~bound eff ~file arg)
          in
          if not (Effects.is_pure sum) then
            let ev = Effects.expr_evidence ~bound eff ~file arg in
            report Rules.X002 arg.pexp_loc
              (Printf.sprintf
                 "callback passed to %s %s beyond the sanctioned Task_error \
                  wrapping — a raise inside a worker surfaces at the joiner \
                  and abandons the batch%s; make the task total (or use \
                  Par.try_map and handle the error value)"
                 combinator (raise_phrase sum) (evidence_suffix ev))
        | Pexp_ident { txt; loc } -> (
          match resolve txt with
          | Some name
            when Callgraph.has_def graph name
                 && List.exists
                      (fun (d : Callgraph.def) -> d.d_params <> [])
                      (Callgraph.defs graph name) -> (
            let sum = drop_task_error (Effects.summary eff name) in
            if not (Effects.is_pure sum) then
              let chain =
                match sum with
                | Effects.Known s when not (SSet.is_empty s) ->
                  (name, loc)
                  :: Effects.witness eff name ~exn:(SSet.min_elt s)
                | _ -> [ (name, loc) ]
              in
              report Rules.X002 loc
                (Printf.sprintf
                   "callback %s passed to %s %s beyond the sanctioned \
                    Task_error wrapping — a raise inside a worker surfaces \
                    at the joiner and abandons the batch; witness: %s; make \
                    the task total (or use Par.try_map and handle the error \
                    value)"
                   name combinator (raise_phrase sum)
                   (String.concat " -> " (List.map hop chain))))
          | _ -> ())
        | _ -> ()))
    args

(* ------------------------------------------------------------------ *)
(* X001: undocumented raising exports                                  *)
(* ------------------------------------------------------------------ *)

let doc_strings (attrs : Parsetree.attributes) =
  List.filter_map
    (fun (a : Parsetree.attribute) ->
      match a.attr_name.txt with
      | "ocaml.doc" | "doc" -> (
        match a.attr_payload with
        | PStr
            [
              {
                pstr_desc =
                  Pstr_eval
                    ( {
                        pexp_desc = Pexp_constant (Pconst_string (s, _, _));
                        _;
                      },
                      _ );
                _;
              };
            ] ->
          Some s
        | _ -> None)
      | _ -> None)
    attrs

let has_raise_tag attrs =
  List.exists (fun s -> contains_sub s "@raise") (doc_strings attrs)

let check_interface ~eff ~file ~report (sg : Parsetree.signature) =
  if is_lib_interface file && not (Par_rules.is_sanctioned_file file) then begin
    let modname = Callgraph.module_name_of_file file in
    List.iter
      (fun (item : Parsetree.signature_item) ->
        match item.psig_desc with
        | Psig_value vd -> (
          let node = modname ^ "." ^ vd.pval_name.txt in
          match Effects.summary eff node with
          | Effects.Known s
            when (not (SSet.is_empty s)) && not (has_raise_tag vd.pval_attributes)
            ->
            let exn = SSet.min_elt s in
            let chain = Effects.witness eff node ~exn in
            let suffix =
              if chain = [] then ""
              else
                Printf.sprintf "; witness: %s"
                  (String.concat " -> " (hop (node, vd.pval_loc) :: List.map hop chain))
            in
            report Rules.X001 vd.pval_loc
              (Printf.sprintf
                 "exported value '%s' may raise %s but its doc comment has \
                  no @raise tag%s; document the contract (@raise %s ...) or \
                  narrow the exceptions in the implementation"
                 vd.pval_name.txt
                 (String.concat ", " (SSet.elements s))
                 suffix exn)
          | _ -> ())
        | _ -> ())
      sg
  end

(* ------------------------------------------------------------------ *)
(* entry point                                                         *)
(* ------------------------------------------------------------------ *)

let check_structure ~eff ~is_former ~file ~report str =
  if not (Par_rules.is_sanctioned_file file) then begin
    let graph = Effects.graph eff in
    let resolve = Callgraph.resolve graph ~file in
    let seen = Hashtbl.create 32 in
    let check_binding (b : Parsetree.expression) =
      let bound = Effects.binders b in
      let open Ast_iterator in
      let expr_iter iter (e : Parsetree.expression) =
        (match e.pexp_desc with
        | Pexp_let (_, vbs, body) ->
          List.iter
            (fun (vb : Parsetree.value_binding) ->
              match (vb.pvb_pat.ppat_desc, (peel vb.pvb_expr).pexp_desc) with
              | ( Ppat_var { txt = x; _ },
                  Pexp_apply ({ pexp_desc = Pexp_ident { txt; _ }; _ }, _) )
                -> (
                match Option.bind (resolve txt) (fun h -> Option.map (fun r -> (h, r)) (acquire_of h)) with
                | Some (acquire_head, resource) ->
                  check_handle ~eff ~file ~bound ~report ~x ~acquire_head
                    ~resource ~acq_loc:vb.pvb_loc body
                | None -> ())
              | _ -> ())
            vbs
        | Pexp_sequence _ ->
          check_chain ~eff ~file ~bound ~report ~seen (sequence_chain e)
        | Pexp_apply ({ pexp_desc = Pexp_ident { txt; _ }; _ }, args) -> (
          match resolve txt with
          | Some head
            when Par_rules.is_base_combinator head || is_former head ->
            check_callback ~eff ~is_former ~file ~bound ~report
              ~combinator:(last_two_segments head) args
          | _ -> ())
        | _ -> ());
        default_iterator.expr iter e
      in
      let iter = { default_iterator with expr = expr_iter } in
      iter.expr iter b
    in
    let rec walk_items (items : Parsetree.structure) =
      List.iter
        (fun (si : Parsetree.structure_item) ->
          match si.pstr_desc with
          | Pstr_value (_, vbs) ->
            List.iter
              (fun (vb : Parsetree.value_binding) -> check_binding vb.pvb_expr)
              vbs
          | Pstr_module
              { pmb_expr = { pmod_desc = Pmod_structure sub; _ }; _ } ->
            walk_items sub
          | _ -> ())
        items
    in
    walk_items str
  end
