(* May-raise effect inference: a monotone fixpoint over the shared
   {!Callgraph}.  See effects.mli for the lattice and the soundness
   caveats; the short version is that summaries over-approximate
   except through three deliberate holes — ambient exceptions
   (Assert_failure, Division_by_zero, bounds), unknown externals that
   are referenced but never applied, and callbacks invoked through a
   parameter (whose effects are charged to the caller that built the
   closure). *)

module SSet = Set.Make (String)

type t = Known of SSet.t | Top

let pure = Known SSet.empty
let is_pure = function Known s -> SSet.is_empty s | Top -> false

let equal a b =
  match (a, b) with
  | Top, Top -> true
  | Known a, Known b -> SSet.equal a b
  | _ -> false

let union a b =
  match (a, b) with
  | Top, _ | _, Top -> Top
  | Known a, Known b -> Known (SSet.union a b)

let mem exn = function Top -> true | Known s -> SSet.mem exn s
let to_list = function Top -> None | Known s -> Some (SSet.elements s)
let known_one exn = Known (SSet.singleton exn)

(* ------------------------------------------------------------------ *)
(* catalogues                                                          *)
(* ------------------------------------------------------------------ *)

(* Known-partial stdlib names (the E002 catalogue plus container pops
   and channel I/O), keyed by resolved identifier.  Exceptions are
   identified by constructor last segment. *)
let raising_catalogue =
  [
    ("List.hd", [ "Failure" ]);
    ("List.tl", [ "Failure" ]);
    ("List.nth", [ "Failure"; "Invalid_argument" ]);
    ("List.find", [ "Not_found" ]);
    ("List.assoc", [ "Not_found" ]);
    ("Option.get", [ "Invalid_argument" ]);
    ("Hashtbl.find", [ "Not_found" ]);
    ("Float.of_string", [ "Failure" ]);
    ("int_of_string", [ "Failure" ]);
    ("bool_of_string", [ "Invalid_argument" ]);
    ("char_of_int", [ "Invalid_argument" ]);
    ("Queue.pop", [ "Empty" ]);
    ("Queue.take", [ "Empty" ]);
    ("Queue.peek", [ "Empty" ]);
    ("Queue.top", [ "Empty" ]);
    ("Stack.pop", [ "Empty" ]);
    ("Stack.top", [ "Empty" ]);
    ("input_line", [ "End_of_file" ]);
    ("input_char", [ "End_of_file" ]);
    ("open_in", [ "Sys_error" ]);
    ("open_in_bin", [ "Sys_error" ]);
    ("open_in_gen", [ "Sys_error" ]);
    ("open_out", [ "Sys_error" ]);
    ("open_out_bin", [ "Sys_error" ]);
    ("open_out_gen", [ "Sys_error" ]);
    ("output_string", [ "Sys_error" ]);
    ("output_char", [ "Sys_error" ]);
    ("output_bytes", [ "Sys_error" ]);
    ("close_out", [ "Sys_error" ]);
    ("close_in", [ "Sys_error" ]);
    ("Sys.getenv", [ "Not_found" ]);
  ]

let raising_tbl =
  let tbl = Hashtbl.create 64 in
  List.iter (fun (k, v) -> Hashtbl.replace tbl k v) raising_catalogue;
  tbl

(* Stdlib modules whose (non-catalogued) functions we trust not to
   raise anything worth tracking.  Checked AFTER the raising
   catalogue, so List.hd still counts. *)
let pure_prefixes =
  [
    "List."; "ListLabels."; "Array."; "ArrayLabels."; "String."; "Bytes.";
    "Char."; "Float."; "Int."; "Int32."; "Int64."; "Nativeint."; "Bool.";
    "Option."; "Result."; "Seq."; "Printf."; "Format."; "Buffer.";
    "Hashtbl."; "Queue."; "Stack."; "Fun."; "Filename."; "Lexing.";
    "Either."; "Atomic."; "Mutex."; "Condition."; "Printexc.";
    (* [module S = Set.Make (...)] instances alias to the functor
       parent (see Callgraph).  Their partial operations ([min_elt],
       [find], ...) are treated as non-raising: in this codebase every
       use sits behind an [is_empty]/[cardinal] guard the flow-
       insensitive analysis cannot see, so cataloguing them would only
       manufacture false [@raise Not_found] contracts (DESIGN.md §9) *)
    "Set."; "Map.";
  ]

let pure_bare =
  [
    "+"; "-"; "*"; "/"; "mod"; "land"; "lor"; "lxor"; "lsl"; "lsr"; "asr";
    "+."; "-."; "*."; "/."; "**"; "@"; "^"; "="; "<>"; "<"; ">"; "<="; ">=";
    "=="; "!="; "&&"; "||"; "not"; "ignore"; "fst"; "snd"; "min"; "max";
    "abs"; "abs_float"; "sqrt"; "exp"; "log"; "log10"; "ceil"; "floor";
    "truncate"; "float_of_int"; "int_of_float"; "float_of_string_opt";
    "int_of_string_opt"; "bool_of_string_opt"; "string_of_int";
    "string_of_float"; "string_of_bool"; "int_of_char"; "succ"; "pred";
    "incr"; "decr"; "ref"; "!"; ":="; "~-"; "~-."; "~+"; "~+."; "|>"; "@@";
    "compare"; "print_string"; "print_endline"; "print_newline"; "print_int";
    "print_float"; "print_char"; "prerr_string"; "prerr_endline";
    "prerr_newline"; "exit"; "flush"; "flush_all"; "close_out_noerr";
    "close_in_noerr"; "at_exit"; "raise"; "raise_notrace"; "failwith";
    "invalid_arg";
    (* [let open Int64 in ...] (and friends) turns these module
       operations into bare names; Division_by_zero is ambient
       arithmetic, out of scope like [/] above *)
    "add"; "sub"; "mul"; "div"; "rem"; "neg"; "logand"; "logor"; "logxor";
    "lognot"; "shift_left"; "shift_right"; "shift_right_logical"; "of_int";
    "to_int"; "of_float"; "to_float"; "equal"; "to_string_opt"; "of_string_opt";
  ]

let pure_tbl =
  let tbl = Hashtbl.create 128 in
  List.iter (fun k -> Hashtbl.replace tbl k ()) pure_bare;
  tbl

let is_pure_name name =
  Hashtbl.mem pure_tbl name
  || List.exists (fun p -> String.length name > String.length p
                           && String.sub name 0 (String.length p) = p)
       pure_prefixes

let last_segment = function
  | Longident.Lident s -> Some s
  | Longident.Ldot (_, s) -> Some s
  | Longident.Lapply _ -> None

(* ------------------------------------------------------------------ *)
(* environment                                                         *)
(* ------------------------------------------------------------------ *)

type env = {
  graph : Callgraph.t;
  summaries : (string, t) Hashtbl.t;
  locals : (string, t) Hashtbl.t;
  raise_sites : (string * string, Location.t) Hashtbl.t;
}

let graph env = env.graph

let summary env id =
  match Hashtbl.find_opt env.summaries id with Some s -> s | None -> pure

let direct env id =
  match Hashtbl.find_opt env.locals id with Some s -> s | None -> pure

let raise_site env id exn = Hashtbl.find_opt env.raise_sites (id, exn)

let node_sanctioned env id =
  match Callgraph.defs env.graph id with
  | [] -> false
  | ds ->
    List.for_all (fun d -> Par_rules.is_sanctioned_file d.Callgraph.d_file) ds

(* ------------------------------------------------------------------ *)
(* expression evaluation                                               *)
(* ------------------------------------------------------------------ *)

type eval_ctx = {
  env : env;
  file : string;
  bound : SSet.t;  (* names bound anywhere inside the enclosing binding *)
  deep : bool;  (* contribute callee-node fixpoint summaries *)
  record : (string -> Location.t -> unit) option;
  masked : Parsetree.expression -> bool;
}

let record ctx exn loc =
  match ctx.record with Some f -> f exn loc | None -> ()

(* Immediate child expressions: the default iterator calls [sub.expr]
   exactly once per direct subexpression, so a non-recursive hook
   collects one layer. *)
let immediate_children (e : Parsetree.expression) =
  let acc = ref [] in
  let open Ast_iterator in
  let iter = { default_iterator with expr = (fun _ c -> acc := c :: !acc) } in
  default_iterator.expr iter e;
  List.rev !acc

(* Every name bound by any pattern under the expression (parameters,
   lets, match arms) — par_rules uses the same over-approximation. *)
let bound_names expr =
  let acc = ref SSet.empty in
  let open Ast_iterator in
  let pat_iter iter (p : Parsetree.pattern) =
    (match p.ppat_desc with
    | Ppat_var { txt; _ } | Ppat_alias (_, { txt; _ }) ->
      acc := SSet.add txt !acc
    | _ -> ());
    default_iterator.pat iter p
  in
  let iter = { default_iterator with pat = pat_iter } in
  iter.expr iter expr;
  !acc

let binders expr = SSet.elements (bound_names expr)

(* What an unguarded handler pattern covers. *)
let rec handled (p : Parsetree.pattern) =
  match p.ppat_desc with
  | Ppat_any | Ppat_var _ -> `All
  | Ppat_alias (inner, _) -> handled inner
  | Ppat_construct ({ txt; _ }, _) -> (
    match last_segment txt with Some n -> `Some [ n ] | None -> `Unknown)
  | Ppat_or (a, b) -> (
    match (handled a, handled b) with
    | `All, _ | _, `All -> `All
    | `Some xs, `Some ys -> `Some (xs @ ys)
    | _ -> `Unknown)
  | _ -> `Unknown

let rec is_catch_all (p : Parsetree.pattern) =
  match p.ppat_desc with
  | Ppat_any | Ppat_var _ -> true
  | Ppat_alias (inner, _) -> is_catch_all inner
  | Ppat_or (a, b) -> is_catch_all a || is_catch_all b
  | _ -> false

let handler_pattern (c : Parsetree.case) =
  match c.pc_lhs.ppat_desc with
  | Ppat_exception p -> p
  | _ -> c.pc_lhs

(* Narrow a body summary through handler cases.  Guarded handlers may
   decline, so they narrow nothing. *)
let narrow eff cases =
  List.fold_left
    (fun eff (c : Parsetree.case) ->
      if c.pc_guard <> None then eff
      else
        match handled (handler_pattern c) with
        | `All -> pure
        | `Some names -> (
          match eff with
          | Top -> Top
          | Known s ->
            Known (List.fold_left (fun s n -> SSet.remove n s) s names))
        | `Unknown -> eff)
    eff cases

let is_exception_case (c : Parsetree.case) =
  match c.pc_lhs.ppat_desc with Ppat_exception _ -> true | _ -> false

let rec constant_pattern (p : Parsetree.pattern) =
  match p.ppat_desc with
  | Ppat_constant _ | Ppat_interval _ -> true
  | Ppat_or (a, b) -> constant_pattern a && constant_pattern b
  | Ppat_alias (inner, _) -> constant_pattern inner
  | _ -> false

(* A match/function over constants with no unguarded catch-all cannot
   be exhaustive: Match_failure.  Constructor coverage needs types, so
   only the constant shape is claimed (sound for what it reports). *)
let partial_constant_match cases =
  let value_cases =
    List.filter (fun c -> not (is_exception_case c)) cases
  in
  value_cases <> []
  && (not
        (List.exists
           (fun (c : Parsetree.case) ->
             c.pc_guard = None && is_catch_all c.pc_lhs)
           value_cases))
  && List.for_all
       (fun (c : Parsetree.case) -> constant_pattern c.pc_lhs)
       value_cases

let rec eval ctx (e : Parsetree.expression) : t =
  if ctx.masked e then pure
  else
    match e.pexp_desc with
    | Pexp_ident { txt; _ } -> ident_effect ctx txt
    | Pexp_apply (head, args) -> apply_effect ctx head args
    | Pexp_try (body, cases) ->
      union (narrow (eval ctx body) cases) (cases_effect ctx cases)
    | Pexp_letexception (ext, body) -> (
      (* [let exception E in body]: E is scoped — no caller can write
         a handler for it, so it is dropped from the escaping summary
         (in this codebase such exceptions are always caught inside
         the scope; the charge-at-definition model would otherwise
         keep them even past their local handler) *)
      match eval ctx body with
      | Top -> Top
      | Known s -> Known (SSet.remove ext.pext_name.txt s))
    | Pexp_match (scrut, cases) ->
      let exn_cases = List.filter is_exception_case cases in
      let scrut_eff = narrow (eval ctx scrut) exn_cases in
      let partial =
        if partial_constant_match cases then begin
          record ctx "Match_failure" e.pexp_loc;
          known_one "Match_failure"
        end
        else pure
      in
      union (union scrut_eff partial) (cases_effect ctx cases)
    | Pexp_function cases ->
      let partial =
        if partial_constant_match cases then begin
          record ctx "Match_failure" e.pexp_loc;
          known_one "Match_failure"
        end
        else pure
      in
      union partial (cases_effect ctx cases)
    | _ ->
      List.fold_left
        (fun acc c -> union acc (eval ctx c))
        pure (immediate_children e)

and cases_effect ctx cases =
  List.fold_left
    (fun acc (c : Parsetree.case) ->
      let acc =
        match c.pc_guard with Some g -> union acc (eval ctx g) | None -> acc
      in
      union acc (eval ctx c.pc_rhs))
    pure cases

(* A bare reference to a raising node counts (passing it to List.map
   is reachability, matching the callgraph's edge semantics); a bare
   reference to anything else contributes nothing. *)
and ident_effect ctx txt =
  match Callgraph.resolve ctx.env.graph ~file:ctx.file txt with
  | None -> pure
  | Some name ->
    if
      ctx.deep
      && Callgraph.has_def ctx.env.graph name
      && not (node_sanctioned ctx.env name)
    then summary ctx.env name
    else pure

and apply_effect ctx (head : Parsetree.expression) args =
  (* re-associate pipes so [x |> f] and [f @@ x] apply [f] *)
  match (head.pexp_desc, args) with
  | Pexp_ident { txt = Longident.Lident "|>"; _ }, [ (_, x); (_, f) ]
  | Pexp_ident { txt = Longident.Lident "@@"; _ }, [ (_, f); (_, x) ] -> (
    match f.pexp_desc with
    | Pexp_apply (inner_head, inner_args) ->
      apply_effect ctx inner_head (inner_args @ [ (Asttypes.Nolabel, x) ])
    | _ -> apply_effect ctx f [ (Asttypes.Nolabel, x) ])
  | _ ->
    let arg_eff =
      List.fold_left (fun acc (_, a) -> union acc (eval ctx a)) pure args
    in
    let head_eff =
      match head.pexp_desc with
      | Pexp_ident { txt; loc } -> (
        match txt with
        | Longident.Lident ("raise" | "raise_notrace") -> (
          match args with
          | (_, { pexp_desc = Pexp_construct ({ txt = c; _ }, _); _ }) :: _
            -> (
            match last_segment c with
            | Some exn ->
              record ctx exn loc;
              known_one exn
            | None -> Top)
          | _ -> Top (* raising a computed exception value *))
        | Longident.Lident "failwith" ->
          record ctx "Failure" loc;
          known_one "Failure"
        | Longident.Lident "invalid_arg" ->
          record ctx "Invalid_argument" loc;
          known_one "Invalid_argument"
        | _ -> (
          match Callgraph.resolve ctx.env.graph ~file:ctx.file txt with
          | None -> Top
          | Some name -> (
            match Hashtbl.find_opt raising_tbl name with
            | Some exns ->
              List.iter (fun exn -> record ctx exn loc) exns;
              Known (SSet.of_list exns)
            | None ->
              if is_pure_name name then pure
              else if SSet.mem name ctx.bound then
                pure (* local closure or parameter: charged elsewhere *)
              else if Callgraph.has_def ctx.env.graph name then
                if node_sanctioned ctx.env name then pure
                else if ctx.deep then summary ctx.env name
                else pure
              else Top (* unknown external in call position *))))
      | Pexp_field (record_expr, _) ->
        (* [obj.f x]: a callback stored in a record field.  Like a
           bound parameter, the closure's body was charged where the
           closure was built (eval descends through [Pexp_fun]), so
           the application itself contributes nothing beyond
           evaluating the record expression. *)
        eval ctx record_expr
      | _ -> union (eval ctx head) Top (* applying a computed function *)
    in
    union arg_eff head_eff

(* ------------------------------------------------------------------ *)
(* fixpoint                                                            *)
(* ------------------------------------------------------------------ *)

let make_ctx ?record ?(mask = fun _ -> false) ?(bound = SSet.empty) env ~file
    ~deep expr =
  {
    env;
    file;
    bound = SSet.union bound (bound_names expr);
    deep;
    record;
    masked = mask;
  }

let node_effect env ~deep ~seed id =
  match Callgraph.defs env.graph id with
  | [] ->
    (* def-less node (synthetic of_edges graph): propagate the raw
       edges instead of evaluating a body *)
    if not deep then seed
    else
      List.fold_left
        (fun acc (callee, _) ->
          if Hashtbl.mem env.summaries callee then
            union acc (summary env callee)
          else acc)
        seed
        (Callgraph.edges env.graph id)
  | ds ->
    List.fold_left
      (fun acc d ->
        let record =
          if deep then None
          else
            Some
              (fun exn loc ->
                if not (Hashtbl.mem env.raise_sites (id, exn)) then
                  Hashtbl.add env.raise_sites (id, exn) loc)
        in
        let ctx =
          make_ctx ?record env ~file:d.Callgraph.d_file ~deep
            d.Callgraph.d_expr
        in
        union acc (eval ctx d.Callgraph.d_expr))
      seed ds

let infer ?(seeds = []) graph =
  let env =
    {
      graph;
      summaries = Hashtbl.create 256;
      locals = Hashtbl.create 256;
      raise_sites = Hashtbl.create 128;
    }
  in
  let ids =
    let s =
      List.fold_left
        (fun s id -> SSet.add id s)
        SSet.empty
        (Callgraph.nodes graph @ Callgraph.edge_sources graph
        @ List.map fst seeds)
    in
    SSet.elements s
  in
  List.iter (fun id -> Hashtbl.replace env.summaries id pure) ids;
  let seed_of id =
    match List.assoc_opt id seeds with Some s -> s | None -> pure
  in
  (* monotone fixpoint; eval is monotone in the summary table, so the
     extra union-with-current is belt and braces for termination *)
  let changed = ref true in
  let iterations = ref 0 in
  while !changed && !iterations < 64 do
    incr iterations;
    changed := false;
    List.iter
      (fun id ->
        let cur = summary env id in
        let next =
          union cur (node_effect env ~deep:true ~seed:(seed_of id) id)
        in
        if not (equal cur next) then begin
          Hashtbl.replace env.summaries id next;
          changed := true
        end)
      ids
  done;
  (* direct (intraprocedural) seeds + raise sites, for witnesses *)
  List.iter
    (fun id ->
      Hashtbl.replace env.locals id
        (node_effect env ~deep:false ~seed:(seed_of id) id))
    ids;
  env

(* ------------------------------------------------------------------ *)
(* public expression queries                                           *)
(* ------------------------------------------------------------------ *)

let expr_summary ?mask ?(bound = []) env ~file expr =
  let ctx =
    make_ctx ?mask ~bound:(SSet.of_list bound) env ~file ~deep:true expr
  in
  eval ctx expr

(* ------------------------------------------------------------------ *)
(* witnesses                                                           *)
(* ------------------------------------------------------------------ *)

let introduces env id exn =
  match direct env id with Known s -> SSet.mem exn s | Top -> false

let witness env start ~exn =
  if not (mem exn (summary env start)) then []
  else begin
    let visited = Hashtbl.create 32 in
    let parent = Hashtbl.create 32 in
    let q = Queue.create () in
    Hashtbl.replace visited start ();
    Queue.add start q;
    let found = ref None in
    let continue = ref true in
    while !found = None && !continue do
      match Queue.take_opt q with
      | None -> continue := false
      | Some n ->
      if introduces env n exn then found := Some n
      else
        List.iter
          (fun (callee, loc) ->
            if
              (not (Hashtbl.mem visited callee))
              && mem exn (summary env callee)
              && Callgraph.has_def env.graph callee
              && not (node_sanctioned env callee)
            then begin
              Hashtbl.replace visited callee ();
              Hashtbl.replace parent callee (n, loc);
              Queue.add callee q
            end)
          (Callgraph.edges env.graph n)
    done;
    match !found with
    | None -> []
    | Some stop ->
      let rec build acc n =
        match Hashtbl.find_opt parent n with
        | None -> acc
        | Some (prev, loc) -> build ((n, loc) :: acc) prev
      in
      let hops = build [] stop in
      let site =
        match raise_site env stop exn with
        | Some l -> l
        | None -> (
          match Callgraph.defs env.graph stop with
          | d :: _ -> d.Callgraph.d_loc
          | [] -> Location.none)
      in
      hops @ [ (exn, site) ]
  end

type evidence = {
  e_exn : string option;
  e_hops : (string * Location.t) list;
}

(* First raising thing in reading order.  Indicative, not exact: a
   try-block that stays impure is descended without replaying the
   narrowing, so the named hop may occasionally be a handled one — the
   summary (not the evidence) is what decides whether to report. *)
let expr_evidence ?(mask = fun _ -> false) ?(bound = []) env ~file expr =
  let ctx =
    make_ctx ~mask ~bound:(SSet.of_list bound) env ~file ~deep:true expr
  in
  let node_evidence name loc =
    match summary env name with
    | Known s when not (SSet.is_empty s) ->
      let exn = SSet.min_elt s in
      Some { e_exn = Some exn; e_hops = (name, loc) :: witness env name ~exn }
    | Top -> Some { e_exn = None; e_hops = [ (name, loc) ] }
    | _ -> None
  in
  let rec search (e : Parsetree.expression) =
    if ctx.masked e then None
    else
      match e.pexp_desc with
      | Pexp_try (body, cases) ->
        if is_pure (eval ctx e) then None
        else first (body :: List.map (fun c -> c.Parsetree.pc_rhs) cases)
      | Pexp_apply (head, args) -> (
        let from_args () = first (List.map snd args) in
        match head.pexp_desc with
        | Pexp_ident { txt; loc } -> (
          match txt with
          | Longident.Lident ("raise" | "raise_notrace") ->
            let exn =
              match args with
              | (_, { pexp_desc = Pexp_construct ({ txt = c; _ }, _); _ })
                :: _ ->
                last_segment c
              | _ -> None
            in
            Some { e_exn = exn; e_hops = [ ("raise", loc) ] }
          | Longident.Lident "failwith" ->
            Some { e_exn = Some "Failure"; e_hops = [ ("failwith", loc) ] }
          | Longident.Lident "invalid_arg" ->
            Some
              {
                e_exn = Some "Invalid_argument";
                e_hops = [ ("invalid_arg", loc) ];
              }
          | _ -> (
            match from_args () with
            | Some ev -> Some ev
            | None -> (
              match Callgraph.resolve env.graph ~file txt with
              | None -> None
              | Some name -> (
                match Hashtbl.find_opt raising_tbl name with
                | Some (exn :: _) ->
                  Some { e_exn = Some exn; e_hops = [ (name, loc) ] }
                | _ ->
                  if
                    is_pure_name name
                    || SSet.mem name ctx.bound
                    || node_sanctioned env name
                  then None
                  else if Callgraph.has_def env.graph name then
                    node_evidence name loc
                  else Some { e_exn = None; e_hops = [ (name, loc) ] }))))
        | _ -> (
          match from_args () with Some ev -> Some ev | None -> search head))
      | Pexp_ident { txt; loc } -> (
        match Callgraph.resolve env.graph ~file txt with
        | Some name
          when Callgraph.has_def env.graph name
               && not (node_sanctioned env name) ->
          node_evidence name loc
        | _ -> None)
      | Pexp_match (scrut, cases) when partial_constant_match cases -> (
        match search scrut with
        | Some ev -> Some ev
        | None ->
          Some
            {
              e_exn = Some "Match_failure";
              e_hops = [ ("partial match", e.pexp_loc) ];
            })
      | Pexp_function cases when partial_constant_match cases ->
        Some
          {
            e_exn = Some "Match_failure";
            e_hops = [ ("partial match", e.pexp_loc) ];
          }
      | _ -> first (immediate_children e)
  and first = function
    | [] -> None
    | e :: rest -> ( match search e with Some ev -> Some ev | None -> first rest)
  in
  search expr
