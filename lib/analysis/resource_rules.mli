(** Exception-flow and resource-lifecycle checks (rules X001, X002,
    R001-R003) — layer 2 over the {!Effects} summaries.

    - X001 ([check_interface]): a value exported from a [lib/] [.mli]
      has a [Known]-nonempty may-raise summary but its doc comment
      carries no [@raise] tag.  [Top] summaries are skipped (there is
      no exception to name); the fix is a doc tag or a [try/with]
      narrowing in the implementation.
    - X002: a callback handed to an [Es_par] combinator (or a derived
      combinator, shared with {!Par_rules}) may raise something other
      than the sanctioned [Task_error] wrapping — a raise inside a
      worker surfaces on the joiner and abandons the batch.
    - R001: a resource bound by [let x = <acquire> in ...] is never
      released in the binding — channels ([open_in]/[open_out]/...),
      [Unix.openfile], [Pool.create] — or a [Mutex.lock] has no
      matching [unlock] in the rest of its statement sequence.
    - R002: the release exists but is unprotected while the code
      between acquire and release may raise (per {!Effects}), so the
      exceptional path leaks; the fix is [Fun.protect ~finally]
      ([Mutex.protect] for locks).  A release inside a [Fun.protect]
      [~finally] argument counts as protected.
    - R003: [Obs.enable] with no balanced [Obs.disable] in the rest of
      the sequence, or an unprotected one behind a may-raising stretch
      — same protocol as R002 but for the telemetry toggle.

    Witness chains are rendered like the P rules
    (["open_out@file:line -> Enc.render@file:line -> Failure@file:line"]).
    Files under lib/par and lib/obs are exempt
    ({!Par_rules.is_sanctioned_file}): they are the audited owners of
    the pool and telemetry lifecycles.

    Caveats (DESIGN.md §9): the leak analysis is per-binding and
    syntactic — a handle that escapes (returned, stored in a record)
    reads as leaked, and a release hidden behind both branches of an
    [if] is seen only if one lands in the statement sequence; use
    [\[@lint.allow "R001"\]] with a comment for deliberate
    ownership transfer. *)

val check_interface :
  eff:Effects.env ->
  file:string ->
  report:(Rules.t -> Location.t -> string -> unit) ->
  Parsetree.signature ->
  unit
(** X001 over one parsed [lib/] interface ([report] is anchored at the
    [val] declaration). *)

val check_structure :
  eff:Effects.env ->
  is_former:(string -> bool) ->
  file:string ->
  report:(Rules.t -> Location.t -> string -> unit) ->
  Parsetree.structure ->
  unit
(** X002 and R001-R003 over one parsed implementation. *)
