(* Interprocedural parallel-safety pass (rules P001-P004).

   A *parallel region* is a function handed to an [Es_par] combinator
   ([Par.parallel_map], [Par.parallel_iteri], [Par.map_reduce],
   [Par.try_map], [Par.map_seeded]) or to the raw pool
   ([Pool.submit], [Pool.submit_batch]) — plus every call through a
   *derived combinator*: a top-level binding that forwards one of its
   own parameters into a region position (the [pmap] wrappers in
   bin/experiments.ml), computed as a fixpoint over the call graph.

   For each region the pass checks the closure body and everything
   transitively reachable from it through the {!Callgraph}:

   - P001: writes to mutable state defined outside the region —
     [x := e] / [incr] / [decr] on a captured ref, [e.f <- v] on a
     captured record, Hashtbl/Queue/Stack/Buffer mutators on a
     captured container — unless syntactically under [Mutex.protect].
     Array/Bytes element writes are exempt: disjoint-slot writes are
     the sanctioned [parallel_iteri] pattern (par.mli).
   - P002: ambient nondeterminism — [Random.*] (the sanctioned
     randomness is a pre-split [Rng] stream), wall clocks,
     [Domain.self] as data, Gc statistics, and hash-ordered iteration
     ([Hashtbl.iter]/[fold]/[to_seq]) over a *captured* table.
   - P003: blocking operations — [Mutex.lock]/[protect] on a captured
     lock, [Condition.wait], [Unix.sleep*], and raw [Pool.submit]
     re-entry, which the combinators' inline-nesting rule cannot
     prove safe.
   - P004 (not region-based): any [Domain.*] / [Domain.DLS] use in a
     file outside the two sanctioned owners, lib/par and lib/obs.

   lib/par and lib/obs are *sanctioned*: reachability stops at their
   nodes (the pool is the audited owner of blocking joins, and Obs
   counters are atomic by construction — par.mli's contract), so
   [Obs.incr] inside a region stays silent while a raw [Mutex.lock]
   does not.

   Soundness caveats (DESIGN.md §9): the pass over-approximates
   reachability (mentioning a value reaches it) but cannot see
   higher-order flow through data structures, mutation of values
   reached via function *arguments* (a helper mutating its parameter),
   or region arguments that are locally-let-bound closures; externals
   not on a deny-list are assumed effect-free. *)

module SSet = Set.Make (String)

(* ------------------------------------------------------------------ *)
(* name tables                                                         *)
(* ------------------------------------------------------------------ *)

(* Matched against the last two dot-segments of a resolved path, so
   [Es_par.Par.parallel_map], [Par.parallel_map] and an aliased
   [P.parallel_map] all hit. *)
let base_combinators =
  [
    "Par.parallel_map"; "Par.parallel_iteri"; "Par.map_reduce"; "Par.try_map";
    "Par.map_seeded"; "Pool.submit"; "Pool.submit_batch";
  ]

let ambient_prefixes = [ "Random." ]

let ambient_exact =
  [
    "Sys.time"; "Unix.gettimeofday"; "Unix.time"; "Domain.self"; "Gc.stat";
    "Gc.quick_stat"; "Gc.counters"; "Gc.minor_words"; "Gc.major_slice";
    "Gc.allocated_bytes";
  ]

let blocking_always =
  [ "Unix.sleep"; "Unix.sleepf"; "Thread.delay"; "Condition.wait" ]

let pool_reentry = [ "Pool.submit"; "Pool.submit_batch" ]
let lock_takers = [ "Mutex.lock"; "Mutex.try_lock"; "Mutex.protect" ]

let container_writes =
  [
    "Hashtbl.replace"; "Hashtbl.add"; "Hashtbl.remove"; "Hashtbl.reset";
    "Hashtbl.clear"; "Hashtbl.filter_map_inplace"; "Queue.add"; "Queue.push";
    "Queue.pop"; "Queue.take"; "Queue.clear"; "Queue.transfer"; "Stack.push";
    "Stack.pop"; "Stack.clear"; "Buffer.add_string"; "Buffer.add_char";
    "Buffer.add_bytes"; "Buffer.add_substring"; "Buffer.add_subbytes";
    "Buffer.clear"; "Buffer.reset"; "Buffer.truncate";
  ]

(* table argument position: [iter f h] / [fold f h init] take the
   table second, [to_seq h] first *)
let hash_iteration = [ ("Hashtbl.iter", 1); ("Hashtbl.fold", 1); ("Hashtbl.to_seq", 0) ]

let last_two_segments name =
  match List.rev (String.split_on_char '.' name) with
  | leaf :: parent :: _ -> parent ^ "." ^ leaf
  | _ -> name

let is_base_combinator name = List.mem (last_two_segments name) base_combinators

let has_prefix ~prefix s =
  String.length s >= String.length prefix
  && String.sub s 0 (String.length prefix) = prefix

(* ------------------------------------------------------------------ *)
(* sanctioned files                                                    *)
(* ------------------------------------------------------------------ *)

let segments file =
  String.map (fun c -> if c = '\\' then '/' else c) file
  |> String.split_on_char '/'
  |> List.filter (fun s -> s <> "" && s <> ".")

(* lib/par owns the pool and its blocking joins; lib/obs owns the
   (atomic) telemetry and the per-domain span stacks. *)
let is_sanctioned_file file =
  let rec pairs = function
    | "lib" :: (("par" | "obs") as _next) :: _ -> true
    | _ :: rest -> pairs rest
    | [] -> false
  in
  pairs (segments file)

(* ------------------------------------------------------------------ *)
(* facts                                                               *)
(* ------------------------------------------------------------------ *)

type fact = {
  f_rule : Rules.t;
  f_what : string;  (* human description of the offence *)
  f_op : string;  (* short op name, the terminal witness hop *)
  f_loc : Location.t;
}

(* Every variable name bound anywhere under [expr]: function
   parameters, let bindings, match/try cases.  Writes to names outside
   this set touch state defined outside the scanned code.  (Shadowing
   an outer name anywhere in the region hides writes to the outer one
   — an accepted false-negative of the scope-free model.) *)
let bound_names expr =
  let acc = ref SSet.empty in
  let open Ast_iterator in
  let pat iter (p : Parsetree.pattern) =
    (match p.ppat_desc with
    | Ppat_var { txt; _ } | Ppat_alias (_, { txt; _ }) ->
      acc := SSet.add txt !acc
    | _ -> ());
    default_iterator.pat iter p
  in
  let iter = { default_iterator with pat } in
  iter.expr iter expr;
  !acc

(* The state a write targets, reduced to its leftmost identifier:
   [Some name] when that identifier lives outside [bound] (a captured
   or module-level value), [None] when it is region-local or too
   complex to track. *)
let rec free_target ~bound (e : Parsetree.expression) =
  match e.pexp_desc with
  | Pexp_ident { txt = Longident.Lident x; _ } ->
    if SSet.mem x bound then None else Some x
  | Pexp_ident { txt; _ } -> (
    (* dotted path: module-level state elsewhere, free by definition *)
    match Callgraph.flatten_longident txt with
    | Some segs -> Some (String.concat "." segs)
    | None -> None)
  | Pexp_field (obj, _) -> free_target ~bound obj
  | Pexp_constraint (inner, _) -> free_target ~bound inner
  | _ -> None

let first_positional args =
  List.find_map
    (fun ((label : Asttypes.arg_label), e) ->
      match label with Nolabel -> Some e | _ -> None)
    args

let positional_at args k =
  let positional =
    List.filter_map
      (fun ((label : Asttypes.arg_label), e) ->
        match label with Nolabel -> Some e | _ -> None)
      args
  in
  List.nth_opt positional k

(* Scan one expression for local facts and outgoing references.
   [resolve] canonicalises identifier paths as seen from the file the
   expression lives in. *)
let scan ~resolve expr =
  let bound = bound_names expr in
  let facts = ref [] in
  let callees = ref [] in
  let seen_callees = Hashtbl.create 32 in
  let protect_ranges = ref [] in
  let add_fact f_rule f_what f_op f_loc =
    facts := { f_rule; f_what; f_op; f_loc } :: !facts
  in
  let check_name name loc =
    if List.exists (fun p -> has_prefix ~prefix:p name) ambient_prefixes then
      add_fact Rules.P002
        (Printf.sprintf "%s (use a pre-split Rng stream / map_seeded)" name)
        name loc
    else if List.mem name ambient_exact then
      add_fact Rules.P002 name name loc
    else if List.mem name blocking_always then
      add_fact Rules.P003 name name loc
    else if List.mem (last_two_segments name) pool_reentry then
      add_fact Rules.P003
        (Printf.sprintf "%s re-enters the pool from worker code" name)
        name loc
  in
  let open Ast_iterator in
  let expr_iter iter (e : Parsetree.expression) =
    (match e.pexp_desc with
    | Pexp_ident { txt; loc } -> (
      match resolve txt with
      | None -> ()
      | Some name ->
        check_name name loc;
        if not (Hashtbl.mem seen_callees name) then begin
          Hashtbl.replace seen_callees name ();
          callees := (name, loc) :: !callees
        end)
    | Pexp_apply ({ pexp_desc = Pexp_ident { txt; loc }; _ }, args) -> (
      match resolve txt with
      | None -> ()
      | Some head -> (
        let tail2 = last_two_segments head in
        (match head with
        | ":=" -> (
          match Option.bind (first_positional args) (fun a -> free_target ~bound a) with
          | Some target ->
            add_fact Rules.P001
              (Printf.sprintf "':=' on captured ref '%s'" target)
              (":= " ^ target) loc
          | None -> ())
        | "incr" | "decr" -> (
          match Option.bind (first_positional args) (fun a -> free_target ~bound a) with
          | Some target ->
            add_fact Rules.P001
              (Printf.sprintf "'%s' on captured ref '%s'" head target)
              (head ^ " " ^ target) loc
          | None -> ())
        | _ -> ());
        if List.mem tail2 container_writes then (
          match Option.bind (first_positional args) (fun a -> free_target ~bound a) with
          | Some target ->
            add_fact Rules.P001
              (Printf.sprintf "%s on captured container '%s'" tail2 target)
              (tail2 ^ " " ^ target) loc
          | None -> ());
        (match List.assoc_opt tail2 hash_iteration with
        | Some table_pos -> (
          match Option.bind (positional_at args table_pos) (fun a -> free_target ~bound a) with
          | Some target ->
            add_fact Rules.P002
              (Printf.sprintf
                 "%s over captured table '%s' (hash-ordered iteration)" tail2
                 target)
              (tail2 ^ " " ^ target) loc
          | None -> ())
        | None -> ());
        if List.mem tail2 lock_takers then begin
          (match Option.bind (first_positional args) (fun a -> free_target ~bound a) with
          | Some target ->
            add_fact Rules.P003
              (Printf.sprintf "%s on captured lock '%s'" tail2 target)
              (tail2 ^ " " ^ target) loc
          | None -> ());
          (* writes under Mutex.protect are protected, not racy *)
          if tail2 = "Mutex.protect" then
            protect_ranges :=
              (e.pexp_loc.loc_start.pos_cnum, e.pexp_loc.loc_end.pos_cnum)
              :: !protect_ranges
        end))
    | Pexp_setfield (obj, field, _) -> (
      match free_target ~bound obj with
      | Some target ->
        let field_name =
          match Callgraph.flatten_longident field.txt with
          | Some segs -> String.concat "." segs
          | None -> "?"
        in
        add_fact Rules.P001
          (Printf.sprintf "mutable-field write '%s.%s <-' on captured state"
             target field_name)
          (Printf.sprintf "%s.%s <-" target field_name)
          e.pexp_loc
      | None -> ())
    | _ -> ());
    default_iterator.expr iter e
  in
  let iter = { default_iterator with expr = expr_iter } in
  iter.expr iter expr;
  let inside_protect (f : fact) =
    f.f_rule = Rules.P001
    && List.exists
         (fun (lo, hi) ->
           let c = f.f_loc.loc_start.pos_cnum in
           lo <= c && c <= hi)
         !protect_ranges
  in
  (List.rev (List.filter (fun f -> not (inside_protect f)) !facts),
   List.rev !callees)

(* ------------------------------------------------------------------ *)
(* derived combinators (region-forming wrappers)                       *)
(* ------------------------------------------------------------------ *)

(* Does [expr] apply a region-forming callee with one of [params] in
   argument position?  If so the enclosing binding is itself
   region-forming: its callers' closures run on the pool. *)
let forwards_param_to_region ~resolve ~params ~is_former expr =
  let found = ref false in
  let open Ast_iterator in
  let expr_iter iter (e : Parsetree.expression) =
    (match e.pexp_desc with
    | Pexp_apply ({ pexp_desc = Pexp_ident { txt; _ }; _ }, args) -> (
      match resolve txt with
      | Some head when is_base_combinator head || is_former head ->
        if
          List.exists
            (fun (_, (a : Parsetree.expression)) ->
              match a.pexp_desc with
              | Pexp_ident { txt = Longident.Lident x; _ } ->
                List.mem x params
              | _ -> false)
            args
        then found := true
      | _ -> ())
    | _ -> ());
    default_iterator.expr iter e
  in
  let iter = { default_iterator with expr = expr_iter } in
  iter.expr iter expr;
  !found

let region_formers graph =
  let formers : (string, unit) Hashtbl.t = Hashtbl.create 16 in
  let changed = ref true in
  let node_list = Callgraph.nodes graph in
  while !changed do
    changed := false;
    List.iter
      (fun id ->
        if not (Hashtbl.mem formers id) then
          let forms =
            List.exists
              (fun (d : Callgraph.def) ->
                (not (is_sanctioned_file d.d_file))
                && forwards_param_to_region
                     ~resolve:(Callgraph.resolve graph ~file:d.d_file)
                     ~params:d.d_params
                     ~is_former:(Hashtbl.mem formers)
                     d.d_expr)
              (Callgraph.defs graph id)
          in
          if forms then begin
            Hashtbl.replace formers id ();
            changed := true
          end)
      node_list
  done;
  formers

(* ------------------------------------------------------------------ *)
(* context (one per eslint run)                                        *)
(* ------------------------------------------------------------------ *)

type ctx = {
  graph : Callgraph.t;
  formers : (string, unit) Hashtbl.t;
  facts_memo : (string, fact list) Hashtbl.t;
}

let make_ctx graph = { graph; formers = region_formers graph; facts_memo = Hashtbl.create 64 }
let empty_ctx () = make_ctx (Callgraph.create ())
let is_former ctx name = Hashtbl.mem ctx.formers name

let node_sanctioned ctx id =
  match Callgraph.defs ctx.graph id with
  | [] -> false
  | defs -> List.exists (fun (d : Callgraph.def) -> is_sanctioned_file d.d_file) defs

let node_facts ctx id =
  match Hashtbl.find_opt ctx.facts_memo id with
  | Some facts -> facts
  | None ->
    let facts =
      List.concat_map
        (fun (d : Callgraph.def) ->
          if is_sanctioned_file d.d_file then []
          else
            fst (scan ~resolve:(Callgraph.resolve ctx.graph ~file:d.d_file) d.d_expr))
        (Callgraph.defs ctx.graph id)
    in
    Hashtbl.replace ctx.facts_memo id facts;
    facts

(* ------------------------------------------------------------------ *)
(* reporting                                                           *)
(* ------------------------------------------------------------------ *)

let loc_tag (loc : Location.t) =
  Printf.sprintf "%s:%d" loc.loc_start.pos_fname loc.loc_start.pos_lnum

let hop (name, loc) = Printf.sprintf "%s@%s" name (loc_tag loc)

let rule_phrase = function
  | Rules.P001 ->
    "writes captured mutable state without Atomic/Mutex protection"
  | Rules.P002 -> "reaches ambient nondeterminism"
  | Rules.P003 -> "reaches a blocking operation"
  | _ -> "violates the parallel-safety contract"

let report_fact ~report ~combinator ~region_loc ~path ~seen (f : fact) =
  let witness =
    String.concat " -> "
      ((Printf.sprintf "region@%s" (loc_tag region_loc) :: List.map hop path)
      @ [ hop (f.f_op, f.f_loc) ])
  in
  let key =
    Printf.sprintf "%s|%s|%s" (Rules.id f.f_rule) f.f_what (loc_tag f.f_loc)
  in
  if not (Hashtbl.mem seen key) then begin
    Hashtbl.replace seen key ();
    report f.f_rule region_loc
      (Printf.sprintf "parallel region (%s) %s: %s; witness: %s" combinator
         (rule_phrase f.f_rule) f.f_what witness)
  end

(* ------------------------------------------------------------------ *)
(* region analysis                                                     *)
(* ------------------------------------------------------------------ *)

let analyse_reachable ctx ~report ~combinator ~region_loc ~seen ~visited roots =
  let rec visit (name, loc) path =
    if Callgraph.has_def ctx.graph name && not (SSet.mem name !visited) then begin
      visited := SSet.add name !visited;
      if not (node_sanctioned ctx name) then begin
        let path = path @ [ (name, loc) ] in
        List.iter
          (report_fact ~report ~combinator ~region_loc ~path ~seen)
          (node_facts ctx name);
        List.iter (fun callee -> visit callee path) (Callgraph.edges ctx.graph name)
      end
    end
  in
  List.iter (fun root -> visit root []) roots

let rec peel (e : Parsetree.expression) =
  match e.pexp_desc with
  | Pexp_constraint (inner, _) | Pexp_newtype (_, inner) -> peel inner
  | _ -> e

let analyse_region ctx ~file ~report ~combinator ~region_loc args =
  let seen = Hashtbl.create 8 in
  let visited = ref SSet.empty in
  List.iter
    (fun (_, arg) ->
      let arg = peel arg in
      match arg.pexp_desc with
      | Pexp_fun _ | Pexp_function _ ->
        let facts, callees =
          scan ~resolve:(Callgraph.resolve ctx.graph ~file) arg
        in
        List.iter
          (report_fact ~report ~combinator ~region_loc ~path:[] ~seen)
          facts;
        analyse_reachable ctx ~report ~combinator ~region_loc ~seen ~visited
          callees
      | Pexp_ident { txt; loc } -> (
        match Callgraph.resolve ctx.graph ~file txt with
        | None -> ()
        | Some name ->
          (* a deny-listed function passed as the region itself *)
          let facts, _ =
            scan
              ~resolve:(Callgraph.resolve ctx.graph ~file)
              { arg with pexp_desc = Pexp_ident { txt; loc } }
          in
          List.iter
            (report_fact ~report ~combinator ~region_loc ~path:[] ~seen)
            facts;
          analyse_reachable ctx ~report ~combinator ~region_loc ~seen ~visited
            [ (name, loc) ])
      | _ -> ())
    args

(* ------------------------------------------------------------------ *)
(* entry point                                                         *)
(* ------------------------------------------------------------------ *)

let check_structure ctx ~file ~report str =
  if not (is_sanctioned_file file) then begin
    let resolve = Callgraph.resolve ctx.graph ~file in
    let open Ast_iterator in
    let expr_iter iter (e : Parsetree.expression) =
      (match e.pexp_desc with
      | Pexp_ident { txt; loc } -> (
        match resolve txt with
        | Some name when has_prefix ~prefix:"Domain." name ->
          report Rules.P004 loc
            (Printf.sprintf
               "%s used outside the sanctioned owners (lib/par, lib/obs); \
                route domain management through Es_par.Pool or justify with \
                [@lint.allow \"P004\"]"
               name)
        | _ -> ())
      | Pexp_apply ({ pexp_desc = Pexp_ident { txt; loc = head_loc }; _ }, args)
        -> (
        match resolve txt with
        | Some head
          when is_base_combinator head || Hashtbl.mem ctx.formers head ->
          ignore head_loc;
          analyse_region ctx ~file ~report
            ~combinator:(last_two_segments head) ~region_loc:e.pexp_loc args
        | _ -> ())
      | _ -> ());
      default_iterator.expr iter e
    in
    let iter = { default_iterator with expr = expr_iter } in
    iter.structure iter str
  end
