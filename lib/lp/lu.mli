(** Sparse LU factorisation of a simplex basis, with product-form
    (eta-file) updates.

    The factorisation is left-looking Gilbert–Peierls with partial
    pivoting: each basis column is solved against the already-built
    [L] by a depth-first search over its pattern, so factor time is
    proportional to arithmetic work, not m².  After a pivot the basis
    is updated in product form — [B·E] with [E] an identity whose
    column [p] is [w = B⁻¹ a_enter] — and {!Revised} refactorises from
    scratch once the eta file grows past its threshold or an update
    looks numerically unsafe. *)

type t
(** A factorisation [P·B = L·U] plus an ordered eta file. *)

exception Singular
(** The supplied basis columns are linearly dependent (to working
    precision).  {!Revised.solve_from} treats this as "the warm basis
    is stale" and falls back to a cold start. *)

exception Unstable
(** A product-form update would divide by a pivot too small relative
    to the column — the caller must refactorise instead. *)

val factor : m:int -> col:(int -> (int * float) list) -> int array -> t
(** [factor ~m ~col basis] factorises the m×m matrix whose k-th column
    is [col basis.(k)] (a row-index/value list).

    @raise Singular if the basis is numerically rank-deficient.
    @raise Invalid_argument if [basis] does not have length [m]. *)

val ftran : t -> float array -> float array
(** [ftran t b] solves [B x = b].  [b] is in row space and is consumed
    as scratch; the result is indexed by basis position. *)

val btran : t -> float array -> float array
(** [btran t c] solves [Bᵀ y = c].  [c] is indexed by basis position
    and is consumed as scratch; the result is in row space. *)

val update : t -> pos:int -> w:float array -> unit
(** [update t ~pos ~w] records the replacement of the basis column at
    [pos], where [w = ftran t a_enter] (position space).  O(nnz w).

    @raise Unstable if [w.(pos)] is too small for a safe update. *)

val n_updates : t -> int
(** Number of eta transforms accumulated since factorisation. *)
