(** Named-variable LP builder on top of {!Simplex}.

    The energy-scheduling LPs (VDD-HOPPING BI-CRIT, fixed-subset
    TRI-CRIT) are much easier to state with named variables and
    incremental rows than with raw coefficient arrays; this module
    provides that layer.  All variables are non-negative, as in the
    paper's formulations (execution-time shares and start times). *)

type t
(** A problem under construction. *)

type var
(** Handle to a variable of a particular problem. *)

val create : unit -> t

val var : t -> ?obj:float -> string -> var
(** [var t ~obj name] registers a fresh non-negative variable with
    objective coefficient [obj] (default [0.]).  Names are for
    debugging and need not be unique. *)

val obj_coeff : t -> var -> float -> unit
(** Overwrite the objective coefficient of [var]. *)

type expr = (float * var) list
(** Linear expression [Σ cᵢ·xᵢ]. *)

val le : t -> expr -> float -> unit
(** Add [expr ≤ rhs]. *)

val ge : t -> expr -> float -> unit
(** Add [expr ≥ rhs]. *)

val eq : t -> expr -> float -> unit
(** Add [expr = rhs]. *)

val upper_bound : t -> var -> float -> unit
(** Convenience for [x ≤ u]. *)

type solution
(** Optimal solution of a solved problem. *)

type outcome = Solution of solution | Infeasible | Unbounded

val solve : ?max_iters:int -> t -> outcome
(** Minimise the objective.  See {!Simplex.solve} for [max_iters].

    @raise Failure if the simplex iteration limit is exceeded. *)

val solve_warm :
  ?max_iters:int -> ?basis:Revised.basis -> t -> outcome * Revised.basis option
(** Like {!solve}, but optionally re-optimises from a previous optimal
    basis and returns the optimal basis alongside the outcome ([Some]
    exactly when the outcome is [Solution]).  The basis is valid as a
    warm start for any problem with the same variables and rows — in a
    Pareto deadline sweep, the same LP re-stated at the next deadline.
    A stale or mismatched basis silently degrades to a cold solve (see
    {!Revised.solve_from}).

    @raise Failure if the simplex iteration limit is exceeded. *)

val objective : solution -> float
val value : solution -> var -> float

val duals : solution -> float array
(** Dual multipliers, one per constraint in the order the rows were
    added (see {!Simplex.outcome}).  Used by the sensitivity experiment
    to read the marginal energy cost of the deadline. *)

val values : solution -> float array
(** All variable values in registration order (a fresh copy) — the raw
    primal point a certificate checker verifies. *)

val n_vars : t -> int
val n_constraints : t -> int

val objective_coeffs : t -> float array
(** Current objective vector, one entry per registered variable.  Used
    by {!Es_check.Lp_cert} to re-derive the LP independently of the
    solver. *)

val constraints : t -> Simplex.constr list
(** The rows in the order they were added, densified exactly as
    {!solve} hands them to {!Simplex.solve}.  Together with
    {!objective_coeffs} this is the full LP statement, so a checker can
    verify a solution without trusting the builder or the solver. *)
