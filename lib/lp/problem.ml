type var = int

type row = { expr : (float * var) list; relation : Simplex.relation; rhs : float }

type t = {
  mutable names : string list; (* reversed *)
  mutable objs : float list; (* reversed *)
  mutable nv : int;
  mutable rows : row list; (* reversed *)
  mutable nr : int;
}

type expr = (float * var) list

let create () = { names = []; objs = []; nv = 0; rows = []; nr = 0 }

let var t ?(obj = 0.) name =
  let id = t.nv in
  t.nv <- id + 1;
  t.names <- name :: t.names;
  t.objs <- obj :: t.objs;
  id

let obj_coeff t v c =
  (* The objective list is reversed: entry for variable [v] sits at
     position [nv - 1 - v]. *)
  let pos = t.nv - 1 - v in
  t.objs <- List.mapi (fun i x -> if i = pos then c else x) t.objs

let add_row t expr relation rhs =
  t.rows <- { expr; relation; rhs } :: t.rows;
  t.nr <- t.nr + 1

let le t expr rhs = add_row t expr Simplex.Le rhs
let ge t expr rhs = add_row t expr Simplex.Ge rhs
let eq t expr rhs = add_row t expr Simplex.Eq rhs
let upper_bound t v u = le t [ (1., v) ] u

type solution = { objective : float; values : float array; duals : float array }
type outcome = Solution of solution | Infeasible | Unbounded

module Obs = Es_obs.Obs

let c_solves = Obs.counter "lp_solves"
let t_solve = Obs.timer "lp_solve"

let objective_coeffs t = Array.of_list (List.rev t.objs)

let to_constr t { expr; relation; rhs } =
  let coeffs = Array.make t.nv 0. in
  List.iter (fun (c, v) -> coeffs.(v) <- coeffs.(v) +. c) expr;
  { Simplex.coeffs; relation; rhs }

let constraints t = List.rev_map (to_constr t) t.rows

let solve ?max_iters t =
  Obs.incr c_solves;
  Obs.time t_solve @@ fun () ->
  let obj = objective_coeffs t in
  let constraints = constraints t in
  match Simplex.solve ?max_iters ~obj constraints with
  | Simplex.Optimal { objective; solution; duals } ->
    Solution { objective; values = solution; duals }
  | Simplex.Infeasible -> Infeasible
  | Simplex.Unbounded -> Unbounded

let solve_warm ?max_iters ?basis t =
  Obs.incr c_solves;
  Obs.time t_solve @@ fun () ->
  let sp = Sparse.of_rows ~obj:(objective_coeffs t) (constraints t) in
  let outcome, next =
    match basis with
    | None -> Revised.solve ?max_iters sp
    | Some b -> Revised.solve_from ?max_iters b sp
  in
  let outcome =
    match outcome with
    | Simplex.Optimal { objective; solution; duals } ->
      Solution { objective; values = solution; duals }
    | Simplex.Infeasible -> Infeasible
    | Simplex.Unbounded -> Unbounded
  in
  (outcome, next)

let objective s = s.objective
let value s v = s.values.(v)
let values s = Array.copy s.values
let duals s = Array.copy s.duals
let n_vars t = t.nv
let n_constraints t = t.nr
