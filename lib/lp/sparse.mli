(** Column-compressed (CSC) standard form of an LP.

    [min obj·x  s.t.  A x (≤|=|≥) b,  x ≥ 0] is stored column-major
    after appending one slack (+1, for [≤]) or surplus (−1, for [≥])
    column per inequality row.  The column structure depends only on
    the rows' coefficients and senses — never on the right-hand side —
    so a basis found at one [b] is a structurally valid starting basis
    at any other [b]; {!with_rhs} plus {!Revised.solve_from} is the
    warm-start path the Pareto deadline sweeps use.

    This module is pure data: {!Revised} does the pivoting, and the
    dense reference implementation in {!Simplex} ignores it. *)

type relation = Le | Eq | Ge

type constr = { coeffs : float array; relation : relation; rhs : float }
(** One row [coeffs · x (≤|=|≥) rhs] with one entry per structural
    variable, exactly as accepted by {!Simplex.solve}. *)

type t
(** An immutable standard-form problem. *)

val of_rows : obj:float array -> constr list -> t
(** Build the CSC form.  Zero coefficients are dropped; rows keep their
    input order (duals are reported against it).

    @raise Invalid_argument if a row's length differs from [obj]'s. *)

val with_rhs : t -> float array -> t
(** Same columns, senses and objective with a fresh right-hand side —
    an O(m) copy sharing the column arrays.  This is how a deadline
    sweep restates "the same LP at a new deadline".

    @raise Invalid_argument if the length differs from the row count. *)

val m : t -> int
(** Row count. *)

val n_struct : t -> int
(** Structural (caller-visible) variable count. *)

val n_cols : t -> int
(** Structural + slack/surplus columns; {!Revised} additionally treats
    indices [n_cols .. n_cols + m − 1] as virtual unit artificials. *)

val nnz : t -> int
(** Stored nonzeros. *)

val slack_col : t -> int -> int
(** The slack/surplus column appended for row [i], or [-1] on [Eq]
    rows.  {!Revised} seeds its initial basis from these. *)

val row_relation : t -> int -> relation
(** Sense of row [i], in input order. *)

val rhs : t -> float array
(** Right-hand side, a fresh copy in row order. *)

val obj : t -> int -> float
(** Objective coefficient of a column (0 on slack columns). *)

val iter_col : t -> int -> (int -> float -> unit) -> unit
(** [iter_col t j f] calls [f row value] for each stored nonzero of
    column [j], in increasing row order. *)

val col_list : t -> int -> (int * float) list
(** Column [j] as a [(row, value)] list in increasing row order. *)

val dot_col : t -> int -> float array -> float
(** [dot_col t j y] is [y · a_j] — the pricing kernel. *)
