type outcome =
  | Optimal of { objective : float; solution : float array; duals : float array }
  | Infeasible
  | Unbounded

type basis = int array

module Obs = Es_obs.Obs

(* Shared names with the dense reference ([Obs.counter] find-or-creates
   by name), so `esched --stats` keeps reporting "simplex_pivots"
   whichever core ran. *)
let c_pivots = Obs.counter "simplex_pivots"
let c_degenerate = Obs.counter "simplex_degenerate_pivots"
let c_phase1_pivots = Obs.counter "simplex_phase1_pivots"
let c_phase2_pivots = Obs.counter "simplex_phase2_pivots"
let c_dual_pivots = Obs.counter "simplex_dual_pivots"
let c_refactor = Obs.counter "simplex_refactorizations"
let c_warm = Obs.counter "lp_warm_starts"
let c_warm_fallback = Obs.counter "lp_warm_cold_fallbacks"
let t_phase1 = Obs.timer "simplex_phase1"
let t_phase2 = Obs.timer "simplex_phase2"

let dual_tol = 1e-9
let ratio_eps = 1e-10
let feas_tol = 1e-9
let art_tol = 1e-7

(* Columns 0..n_cols-1 come from the sparse problem; n_cols..n_cols+m-1
   are virtual artificials: the unit column sign(b_i)·e_i for row
   i = j − n_cols.  The sign is fixed per solve from the current
   right-hand side so a phase-1 artificial starts at |b_i| ≥ 0; it is
   never materialised in the CSC arrays. *)
type state = {
  sp : Sparse.t;
  m : int;
  n_cols : int;
  n_struct : int;
  b : float array;
  art_sign : float array;
  basis : int array; (* per position: its basic column *)
  in_basis : bool array; (* length n_cols + m *)
  mutable lu : Lu.t;
  mutable xb : float array; (* basic values, position space *)
  cost : float array; (* current phase costs, length n_cols + m *)
  mutable price_from : int; (* partial-pricing rotation pointer *)
}

let col_fn sp art_sign =
  let n_cols = Sparse.n_cols sp in
  fun j ->
    if j < n_cols then Sparse.col_list sp j
    else [ (j - n_cols, art_sign.(j - n_cols)) ]

let a_dot st j y =
  if j < st.n_cols then Sparse.dot_col st.sp j y
  else begin
    let i = j - st.n_cols in
    st.art_sign.(i) *. y.(i)
  end

(* w = B⁻¹ a_j, dense in position space *)
let ftran_col st j =
  let bvec = Array.make st.m 0. in
  if j < st.n_cols then
    Sparse.iter_col st.sp j (fun i v -> bvec.(i) <- bvec.(i) +. v)
  else begin
    let i = j - st.n_cols in
    bvec.(i) <- st.art_sign.(i)
  end;
  Lu.ftran st.lu bvec

let basic_costs st = Array.init st.m (fun k -> st.cost.(st.basis.(k)))

let refactor st =
  Obs.incr c_refactor;
  (match Lu.factor ~m:st.m ~col:(col_fn st.sp st.art_sign) st.basis with
  | lu -> st.lu <- lu
  | exception Lu.Singular ->
    failwith "Lp.Revised: basis became singular during pivoting");
  st.xb <- Lu.ftran st.lu (Array.copy st.b)

let apply_pivot st ~p ~j ~w ~theta ~refactor_every =
  for k = 0 to st.m - 1 do
    let v = st.xb.(k) -. (theta *. w.(k)) in
    st.xb.(k) <- (if Float.abs v < 1e-12 then 0. else v)
  done;
  st.xb.(p) <- theta;
  st.in_basis.(st.basis.(p)) <- false;
  st.in_basis.(j) <- true;
  st.basis.(p) <- j;
  if Lu.n_updates st.lu + 1 >= refactor_every then refactor st
  else
    match Lu.update st.lu ~pos:p ~w with
    | () -> ()
    | exception Lu.Unstable -> refactor st

(* Partial Dantzig pricing: on wide problems, scan rotating 512-column
   windows and take the most negative reduced cost in the first window
   that has one; a full fruitless rotation means optimal.  Narrow
   problems get the plain full Dantzig scan. *)
let partial_threshold = 2048
let price_window = 512

let entering_dantzig st y =
  let n = st.n_cols in
  let best = ref (-1) and best_v = ref (-.dual_tol) in
  if n <= partial_threshold then
    for j = 0 to n - 1 do
      if not st.in_basis.(j) then begin
        let d = st.cost.(j) -. a_dot st j y in
        if d < !best_v then begin
          best := j;
          best_v := d
        end
      end
    done
  else begin
    let pos = ref st.price_from and remaining = ref n in
    while !best < 0 && !remaining > 0 do
      let chunk = min price_window !remaining in
      for t = 0 to chunk - 1 do
        let j = (!pos + t) mod n in
        if not st.in_basis.(j) then begin
          let d = st.cost.(j) -. a_dot st j y in
          if d < !best_v then begin
            best := j;
            best_v := d
          end
        end
      done;
      pos := (!pos + chunk) mod n;
      remaining := !remaining - chunk
    done;
    if !best >= 0 then st.price_from <- (!best + 1) mod n
  end;
  !best

let entering_bland st y =
  let found = ref (-1) in
  (try
     for j = 0 to st.n_cols - 1 do
       if not st.in_basis.(j) then begin
         let d = st.cost.(j) -. a_dot st j y in
         if d < -.dual_tol then begin
           found := j;
           raise Exit
         end
       end
     done
   with Exit -> ());
  !found

(* Leaving position for entering direction [w]; Bland tie-break on the
   basic column index for termination.  A zero-level basic artificial
   with w_k < 0 would drift positive (silently leaving the feasible
   region of the real LP), so it is forced out at θ = 0. *)
let ratio_test st w =
  let p = ref (-1) and best = ref infinity in
  let consider k r =
    if
      r < !best -. ratio_eps
      || (Float.abs (r -. !best) <= ratio_eps
         && !p >= 0
         && st.basis.(k) < st.basis.(!p))
    then begin
      best := r;
      p := k
    end
  in
  for k = 0 to st.m - 1 do
    let wk = w.(k) in
    if wk > ratio_eps then begin
      let num = if st.xb.(k) > 0. then st.xb.(k) else 0. in
      consider k (num /. wk)
    end
    else if
      st.basis.(k) >= st.n_cols
      && wk < -.ratio_eps
      && Float.abs st.xb.(k) <= feas_tol
    then consider k 0.
  done;
  (!p, !best)

let optimise st ~max_iters ~bland_after ~refactor_every ~phase_pivots =
  let iters = ref 0 in
  let rec loop () =
    if !iters > max_iters then
      failwith "Lp.Revised: iteration limit exceeded";
    incr iters;
    let y = Lu.btran st.lu (basic_costs st) in
    let j =
      if !iters < bland_after then entering_dantzig st y
      else entering_bland st y
    in
    if j < 0 then `Optimal
    else begin
      let w = ftran_col st j in
      let p, theta = ratio_test st w in
      if p < 0 then `Unbounded
      else begin
        Obs.incr c_pivots;
        Obs.incr phase_pivots;
        if theta <= ratio_eps then Obs.incr c_degenerate;
        apply_pivot st ~p ~j ~w ~theta ~refactor_every;
        loop ()
      end
    end
  in
  loop ()

(* After phase 1, swap any zero-level basic artificial for a real
   column with a nonzero pivot in its row; rows where none exists are
   redundant and keep their artificial pinned at zero. *)
let drive_out_artificials st ~refactor_every =
  for p = 0 to st.m - 1 do
    if st.basis.(p) >= st.n_cols && Float.abs st.xb.(p) <= art_tol then begin
      let e = Array.make st.m 0. in
      e.(p) <- 1.;
      let rho = Lu.btran st.lu e in
      let found = ref (-1) in
      (try
         for j = 0 to st.n_cols - 1 do
           if (not st.in_basis.(j)) && Float.abs (a_dot st j rho) > art_tol
           then begin
             found := j;
             raise Exit
           end
         done
       with Exit -> ());
      if !found >= 0 then begin
        let j = !found in
        let w = ftran_col st j in
        if Float.abs w.(p) > ratio_eps then begin
          let theta = st.xb.(p) /. w.(p) in
          apply_pivot st ~p ~j ~w ~theta ~refactor_every
        end
      end
    end
  done

let set_phase1_costs st =
  Array.fill st.cost 0 (st.n_cols + st.m) 0.;
  for i = 0 to st.m - 1 do
    st.cost.(st.n_cols + i) <- 1.
  done

let set_phase2_costs st =
  Array.fill st.cost 0 (st.n_cols + st.m) 0.;
  for j = 0 to st.n_cols - 1 do
    st.cost.(j) <- Sparse.obj st.sp j
  done

let extract st =
  let solution = Array.make st.n_struct 0. in
  for k = 0 to st.m - 1 do
    let j = st.basis.(k) in
    if j < st.n_struct then
      solution.(j) <- (if st.xb.(k) < 0. then 0. else st.xb.(k))
  done;
  let objective = ref 0. in
  for k = 0 to st.m - 1 do
    objective := !objective +. (st.cost.(st.basis.(k)) *. st.xb.(k))
  done;
  let duals = Lu.btran st.lu (basic_costs st) in
  Optimal { objective = !objective; solution; duals }

let mk_state sp basis =
  let m = Sparse.m sp and n_cols = Sparse.n_cols sp in
  let b = Sparse.rhs sp in
  let art_sign = Array.map (fun v -> if v >= 0. then 1. else -1.) b in
  let in_basis = Array.make (n_cols + m) false in
  Array.iter (fun j -> in_basis.(j) <- true) basis;
  let lu = Lu.factor ~m ~col:(col_fn sp art_sign) basis in
  {
    sp;
    m;
    n_cols;
    n_struct = Sparse.n_struct sp;
    b;
    art_sign;
    basis;
    in_basis;
    lu;
    xb = Lu.ftran lu (Array.copy b);
    cost = Array.make (n_cols + m) 0.;
    price_from = 0;
  }

let phase1_objective st =
  let acc = ref 0. in
  for k = 0 to st.m - 1 do
    if st.basis.(k) >= st.n_cols then
      acc := !acc +. Float.max 0. st.xb.(k)
  done;
  !acc

(* A basic artificial at positive level means A x ≠ b at the current
   point, however non-negative the basic values look. *)
let artificials_at_zero st =
  let ok = ref true in
  for k = 0 to st.m - 1 do
    if st.basis.(k) >= st.n_cols && Float.abs st.xb.(k) > art_tol then
      ok := false
  done;
  !ok

let primal_feasible st =
  let ok = ref true in
  for k = 0 to st.m - 1 do
    if st.xb.(k) < -.feas_tol then ok := false
  done;
  !ok && artificials_at_zero st

let dual_feasible st =
  let y = Lu.btran st.lu (basic_costs st) in
  let ok = ref true in
  (try
     for j = 0 to st.n_cols - 1 do
       if (not st.in_basis.(j)) && st.cost.(j) -. a_dot st j y < -.art_tol
       then begin
         ok := false;
         raise Exit
       end
     done
   with Exit -> ());
  !ok

(* Dual simplex: drive out the most negative basic value while keeping
   reduced costs non-negative.  Used by warm starts whose basis is dual
   feasible at the new rhs (the deadline-sweep case: tightening b keeps
   the old optimal basis dual feasible).  Returns [`Feasible] once
   x_B ≥ 0, [`Infeasible] when the dual is unbounded (no entering
   column), or [`Stalled] on numerical trouble — the caller falls back
   to a cold solve. *)
let dual_simplex st ~max_iters ~refactor_every =
  let iters = ref 0 and retried = ref false in
  let rec loop () =
    if !iters > max_iters then
      failwith "Lp.Revised: dual iteration limit exceeded";
    incr iters;
    let p = ref (-1) and most = ref (-.feas_tol) in
    for k = 0 to st.m - 1 do
      if st.xb.(k) < !most then begin
        most := st.xb.(k);
        p := k
      end
    done;
    if !p < 0 then `Feasible
    else begin
      let e = Array.make st.m 0. in
      e.(!p) <- 1.;
      let rho = Lu.btran st.lu e in
      let y = Lu.btran st.lu (basic_costs st) in
      let je = ref (-1) and best = ref infinity in
      for j = 0 to st.n_cols - 1 do
        if not st.in_basis.(j) then begin
          let alpha = a_dot st j rho in
          if alpha < -.dual_tol then begin
            let d = st.cost.(j) -. a_dot st j y in
            let r = Float.max 0. d /. -.alpha in
            if r < !best -. 1e-12 || (r <= !best +. 1e-12 && !je >= 0 && j < !je)
            then begin
              best := r;
              je := j
            end
          end
        end
      done;
      if !je < 0 then `Infeasible
      else begin
        let j = !je in
        let w = ftran_col st j in
        if Float.abs w.(!p) <= 1e-11 then begin
          if !retried then `Stalled
          else begin
            retried := true;
            refactor st;
            loop ()
          end
        end
        else begin
          retried := false;
          let theta = st.xb.(!p) /. w.(!p) in
          Obs.incr c_pivots;
          Obs.incr c_dual_pivots;
          apply_pivot st ~p:!p ~j ~w ~theta ~refactor_every;
          loop ()
        end
      end
    end
  in
  loop ()

let default_max_iters = 200_000
let default_bland_after = 20_000
let default_refactor_every = 64

(* Phase 2 from a primal-feasible state; assumes costs are set. *)
let finish_phase2 st ~max_iters ~bland_after ~refactor_every =
  match
    Obs.time t_phase2 (fun () ->
        optimise st ~max_iters ~bland_after ~refactor_every
          ~phase_pivots:c_phase2_pivots)
  with
  | `Unbounded -> (Unbounded, None)
  | `Optimal -> (extract st, Some (Array.copy st.basis))

let solve ?(max_iters = default_max_iters) ?(bland_after = default_bland_after)
    ?(refactor_every = default_refactor_every) sp =
  let m = Sparse.m sp and n_cols = Sparse.n_cols sp in
  let b = Sparse.rhs sp in
  (* Slack-basic where the slack is feasible at this rhs (≤ with b ≥ 0,
     ≥ with b ≤ 0), artificial-basic otherwise: B is diagonal ±1. *)
  let basis =
    Array.init m (fun i ->
        let sc = Sparse.slack_col sp i in
        if sc < 0 then n_cols + i
        else begin
          let sigma =
            match Sparse.row_relation sp i with
            | Sparse.Le -> 1.
            | Sparse.Ge -> -1.
            | Sparse.Eq -> 0.
          in
          if sigma *. b.(i) >= 0. then sc else n_cols + i
        end)
  in
  let st = mk_state sp basis in
  let needs_phase1 = ref false in
  Array.iter (fun j -> if j >= n_cols then needs_phase1 := true) st.basis;
  let infeasible = ref false in
  if !needs_phase1 then begin
    set_phase1_costs st;
    (match
       Obs.time t_phase1 (fun () ->
           optimise st ~max_iters ~bland_after ~refactor_every
             ~phase_pivots:c_phase1_pivots)
     with
    | `Unbounded -> failwith "Lp.Revised: phase-1 objective unbounded"
    | `Optimal -> ());
    if phase1_objective st > art_tol then infeasible := true
    else drive_out_artificials st ~refactor_every
  end;
  if !infeasible then (Infeasible, None)
  else begin
    set_phase2_costs st;
    finish_phase2 st ~max_iters ~bland_after ~refactor_every
  end

let valid_basis ~m ~n_cols basis =
  Array.length basis = m
  && Array.for_all (fun j -> j >= 0 && j < n_cols + m) basis
  &&
  let seen = Array.make (n_cols + m) false in
  Array.for_all
    (fun j ->
      if seen.(j) then false
      else begin
        seen.(j) <- true;
        true
      end)
    basis

let solve_from ?(max_iters = default_max_iters)
    ?(bland_after = default_bland_after)
    ?(refactor_every = default_refactor_every) basis0 sp =
  let m = Sparse.m sp and n_cols = Sparse.n_cols sp in
  let fallback () =
    Obs.incr c_warm_fallback;
    solve ~max_iters ~bland_after ~refactor_every sp
  in
  if not (valid_basis ~m ~n_cols basis0) then fallback ()
  else
    match mk_state sp (Array.copy basis0) with
    | exception Lu.Singular -> fallback ()
    | st ->
      Obs.incr c_warm;
      set_phase2_costs st;
      if primal_feasible st then
        finish_phase2 st ~max_iters ~bland_after ~refactor_every
      else if dual_feasible st then begin
        match dual_simplex st ~max_iters ~refactor_every with
        | `Infeasible -> (Infeasible, None)
        | `Stalled -> fallback ()
        | `Feasible ->
          if artificials_at_zero st then
            finish_phase2 st ~max_iters ~bland_after ~refactor_every
          else fallback ()
      end
      else fallback ()
