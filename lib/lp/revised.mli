(** Revised simplex over sparse columns with an LU-factorised basis.

    Instead of carrying an m×n tableau, each iteration prices columns
    against [y = B⁻ᵀc_B] and computes the entering direction
    [w = B⁻¹a_j] from the {!Lu} factorisation, updated in product form
    and refactorised every [refactor_every] pivots (or earlier on a
    numerically unsafe eta).  Pricing is Dantzig (partial, with a
    rotating window, on wide problems) with a Bland fallback after
    [bland_after] iterations of a phase to escape cycling.

    The payoff is {!solve_from}: a deadline sweep re-optimises each
    step from the previous optimal basis — primal simplex if the basis
    is still primal feasible at the new rhs, dual simplex if it is
    only dual feasible (the common case when tightening a deadline),
    and a transparent cold start otherwise.  Soundness does not depend
    on the warm basis: any nonsingular basis is a legal starting
    point, stale bases fall back to a cold solve, and {!Lp_cert}
    certifies every [Optimal] independently of how it was reached. *)

type outcome =
  | Optimal of { objective : float; solution : float array; duals : float array }
  | Infeasible
  | Unbounded
      (** Same shape and dual-sign conventions as the dense reference:
          [duals.(i)] prices row [i] in input order (≤ 0 on [Le] rows,
          ≥ 0 on [Ge] rows, free on [Eq] rows). *)

type basis
(** An optimal basis, reusable as a warm start for any problem with
    the same columns (e.g. {!Sparse.with_rhs} restatements). *)

val solve :
  ?max_iters:int ->
  ?bland_after:int ->
  ?refactor_every:int ->
  Sparse.t ->
  outcome * basis option
(** Cold two-phase solve.  The basis is [Some] exactly on [Optimal].

    @raise Failure if [max_iters] (default 200_000) is exceeded or the
    basis becomes numerically singular mid-solve. *)

val solve_from :
  ?max_iters:int ->
  ?bland_after:int ->
  ?refactor_every:int ->
  basis ->
  Sparse.t ->
  outcome * basis option
(** Warm solve from a previous optimal basis.  Invalid, singular or
    otherwise stale bases fall back to {!solve} (counted under the
    ["lp_warm_cold_fallbacks"] telemetry counter), so the result is
    identical in kind to a cold solve — only faster.

    @raise Failure as {!solve}. *)
