type relation = Le | Eq | Ge
type constr = { coeffs : float array; relation : relation; rhs : float }

(* Standard form: minimise obj·x over  A x = b  after every inequality
   row gains a slack (+1 for <=) or surplus (-1 for >=) column.  Rows
   are NOT sign-normalised: the column structure is a function of the
   rows' coefficients and senses only, never of the right-hand side, so
   a basis learned at one rhs remains a meaningful starting basis at
   any other rhs (the warm-start contract). *)
type t = {
  m : int;
  n_struct : int;
  n_cols : int;
  col_ptr : int array; (* length n_cols + 1 *)
  row_idx : int array;
  col_val : float array;
  obj : float array; (* length n_cols: structural costs then zeros *)
  rhs : float array; (* length m, caller's signs *)
  rels : relation array; (* length m, caller's senses *)
  slack_col : int array; (* per row: its slack/surplus column, or -1 on = rows *)
}

let of_rows ~obj constraints =
  let rows = Array.of_list constraints in
  let m = Array.length rows in
  let n_struct = Array.length obj in
  Array.iter
    (fun r ->
      if Array.length r.coeffs <> n_struct then
        invalid_arg "Sparse.of_rows: row length does not match the objective")
    rows;
  let n_slack =
    Array.fold_left
      (fun acc r -> match r.relation with Eq -> acc | Le | Ge -> acc + 1)
      0 rows
  in
  let n_cols = n_struct + n_slack in
  (* structural columns: count, then fill, per column *)
  let counts = Array.make (n_cols + 1) 0 in
  Array.iter
    (fun r ->
      Array.iteri (fun j v -> if v <> 0. then counts.(j) <- counts.(j) + 1) r.coeffs)
    rows;
  let slack_col = Array.make m (-1) in
  let next_slack = ref n_struct in
  Array.iteri
    (fun _i r ->
      match r.relation with
      | Eq -> ()
      | Le | Ge ->
        counts.(!next_slack) <- 1;
        incr next_slack)
    rows;
  let col_ptr = Array.make (n_cols + 1) 0 in
  for j = 0 to n_cols - 1 do
    col_ptr.(j + 1) <- col_ptr.(j) + counts.(j)
  done;
  let nnz = col_ptr.(n_cols) in
  let row_idx = Array.make nnz 0 in
  let col_val = Array.make nnz 0. in
  let cursor = Array.copy col_ptr in
  let next_slack = ref n_struct in
  Array.iteri
    (fun i r ->
      Array.iteri
        (fun j v ->
          if v <> 0. then begin
            let k = cursor.(j) in
            row_idx.(k) <- i;
            col_val.(k) <- v;
            cursor.(j) <- k + 1
          end)
        r.coeffs;
      match r.relation with
      | Eq -> ()
      | Le | Ge ->
        let j = !next_slack in
        slack_col.(i) <- j;
        let k = cursor.(j) in
        row_idx.(k) <- i;
        col_val.(k) <- (match r.relation with Le -> 1. | Ge -> -1. | Eq -> 0.);
        cursor.(j) <- k + 1;
        incr next_slack)
    rows;
  let full_obj = Array.make n_cols 0. in
  Array.blit obj 0 full_obj 0 n_struct;
  {
    m;
    n_struct;
    n_cols;
    col_ptr;
    row_idx;
    col_val;
    obj = full_obj;
    rhs = Array.map (fun (r : constr) -> r.rhs) rows;
    rels = Array.map (fun (r : constr) -> r.relation) rows;
    slack_col;
  }

let with_rhs t rhs =
  if Array.length rhs <> t.m then
    invalid_arg "Sparse.with_rhs: rhs length does not match the row count";
  { t with rhs = Array.copy rhs }

let m t = t.m
let n_struct t = t.n_struct
let n_cols t = t.n_cols
let slack_col t i = t.slack_col.(i)
let row_relation t i = t.rels.(i)
let nnz t = t.col_ptr.(t.n_cols)
let rhs t = Array.copy t.rhs
let obj t j = t.obj.(j)

let iter_col t j f =
  for k = t.col_ptr.(j) to t.col_ptr.(j + 1) - 1 do
    f t.row_idx.(k) t.col_val.(k)
  done

let col_list t j =
  let acc = ref [] in
  for k = t.col_ptr.(j + 1) - 1 downto t.col_ptr.(j) do
    acc := (t.row_idx.(k), t.col_val.(k)) :: !acc
  done;
  !acc

(* y·a_j without materialising the column *)
let dot_col t j y =
  let acc = ref 0. in
  for k = t.col_ptr.(j) to t.col_ptr.(j + 1) - 1 do
    acc := !acc +. (y.(t.row_idx.(k)) *. t.col_val.(k))
  done;
  !acc
