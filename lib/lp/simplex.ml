type relation = Sparse.relation = Le | Eq | Ge

type constr = Sparse.constr = {
  coeffs : float array;
  relation : relation;
  rhs : float;
}

type outcome = Revised.outcome =
  | Optimal of { objective : float; solution : float array; duals : float array }
  | Infeasible
  | Unbounded

let eps = 1e-9

module Obs = Es_obs.Obs

(* Telemetry: total pivots, degenerate pivots (zero-ratio steps, the
   cycling hazard), per-phase pivot counts and per-phase wall time. *)
let c_pivots = Obs.counter "simplex_pivots"
let c_degenerate = Obs.counter "simplex_degenerate_pivots"
let c_phase1_pivots = Obs.counter "simplex_phase1_pivots"
let c_phase2_pivots = Obs.counter "simplex_phase2_pivots"
let t_phase1 = Obs.timer "simplex_phase1"
let t_phase2 = Obs.timer "simplex_phase2"

(* Tableau layout: columns 0..n_struct-1 structural, then one
   slack/surplus column per inequality row, then one artificial column
   per row needing one.  Row [i] of [tab] stores the coefficients of
   basic-feasible row [i]; [rhs.(i)] its right-hand side; [basis.(i)]
   the index of its basic column. *)
type tableau = {
  tab : float array array;
  rhs : float array;
  basis : int array;
  n_rows : int;
  n_cols : int;
}

let pivot t ~row ~col =
  let p = t.tab.(row).(col) in
  let trow = t.tab.(row) in
  let inv = 1. /. p in
  for j = 0 to t.n_cols - 1 do
    trow.(j) <- trow.(j) *. inv
  done;
  t.rhs.(row) <- t.rhs.(row) *. inv;
  for i = 0 to t.n_rows - 1 do
    if i <> row then begin
      let factor = t.tab.(i).(col) in
      if factor <> 0. then begin
        let ti = t.tab.(i) in
        for j = 0 to t.n_cols - 1 do
          ti.(j) <- ti.(j) -. (factor *. trow.(j))
        done;
        t.rhs.(i) <- t.rhs.(i) -. (factor *. t.rhs.(row))
      end
    end
  done;
  t.basis.(row) <- col

(* Reduced costs for objective [c] (length n_cols) given the current
   basis: z_j - c_j computed by pricing out the basic rows. *)
let reduced_costs t c =
  let red = Array.copy c in
  for i = 0 to t.n_rows - 1 do
    let cb = c.(t.basis.(i)) in
    if cb <> 0. then begin
      let ti = t.tab.(i) in
      for j = 0 to t.n_cols - 1 do
        red.(j) <- red.(j) -. (cb *. ti.(j))
      done
    end
  done;
  red

let objective_value t c =
  let acc = ref 0. in
  for i = 0 to t.n_rows - 1 do
    acc := !acc +. (c.(t.basis.(i)) *. t.rhs.(i))
  done;
  !acc

(* One simplex phase: minimise c over the current tableau.  [allowed j]
   restricts entering columns (used to bar artificials in phase 2).
   Returns [`Optimal] or [`Unbounded].  Switches from Dantzig to
   Bland's rule after [bland_after] pivots to escape cycling. *)
let optimise ?(bland_after = 20_000) ~max_iters ~phase_pivots t c allowed =
  let iters = ref 0 in
  let rec loop () =
    if !iters > max_iters then failwith "Simplex.solve: iteration limit exceeded";
    incr iters;
    let red = reduced_costs t c in
    let entering =
      if !iters < bland_after then begin
        (* Dantzig: most negative reduced cost *)
        let best = ref (-1) and best_val = ref (-.eps) in
        for j = 0 to t.n_cols - 1 do
          if allowed j && red.(j) < !best_val then begin
            best := j;
            best_val := red.(j)
          end
        done;
        !best
      end
      else begin
        (* Bland: smallest index with negative reduced cost *)
        let found = ref (-1) in
        (try
           for j = 0 to t.n_cols - 1 do
             if allowed j && red.(j) < -.eps then begin
               found := j;
               raise Exit
             end
           done
         with Exit -> ());
        !found
      end
    in
    if entering < 0 then `Optimal
    else begin
      (* ratio test; Bland tie-break on basis index for termination *)
      let row = ref (-1) and best_ratio = ref infinity in
      for i = 0 to t.n_rows - 1 do
        let a = t.tab.(i).(entering) in
        if a > eps then begin
          let ratio = t.rhs.(i) /. a in
          if
            ratio < !best_ratio -. eps
            || (Float.abs (ratio -. !best_ratio) <= eps
               && !row >= 0
               && t.basis.(i) < t.basis.(!row))
          then begin
            best_ratio := ratio;
            row := i
          end
        end
      done;
      if !row < 0 then `Unbounded
      else begin
        Obs.incr c_pivots;
        Obs.incr phase_pivots;
        if !best_ratio <= eps then Obs.incr c_degenerate;
        pivot t ~row:!row ~col:entering;
        loop ()
      end
    end
  in
  loop ()

let solve_dense ?(max_iters = 200_000) ~obj constraints =
  let n_struct = Array.length obj in
  let rows = Array.of_list constraints in
  let m = Array.length rows in
  Array.iter (fun r -> assert (Array.length r.coeffs = n_struct)) rows;
  (* Normalise to b >= 0 by flipping rows; remember the flip so duals
     can be reported against the caller's original rows. *)
  let flipped = Array.map (fun (r : constr) -> r.rhs < 0.) rows in
  let rows =
    Array.map
      (fun (r : constr) ->
        if r.rhs < 0. then
          {
            coeffs = Array.map (fun v -> -.v) r.coeffs;
            rhs = -.r.rhs;
            relation = (match r.relation with Le -> Ge | Ge -> Le | Eq -> Eq);
          }
        else r)
      rows
  in
  (* Column layout. *)
  let n_slack = Array.fold_left (fun acc r -> match r.relation with Eq -> acc | Le | Ge -> acc + 1) 0 rows in
  (* A ≤-row with b ≥ 0 gets a slack that can serve as initial basis; a
     ≥-row or =-row needs an artificial. *)
  let needs_artificial r = match r.relation with Le -> false | Ge | Eq -> true in
  let n_art = Array.fold_left (fun acc r -> if needs_artificial r then acc + 1 else acc) 0 rows in
  let n_cols = n_struct + n_slack + n_art in
  let tab = Array.init m (fun _ -> Array.make n_cols 0.) in
  let rhs = Array.make m 0. in
  let basis = Array.make m (-1) in
  let slack_idx = ref n_struct and art_idx = ref (n_struct + n_slack) in
  (* per row: the unit column whose reduced cost prices the row's dual,
     and the sign mapping that reduced cost to y_i (A_col = sign·e_i ⇒
     y_i = −sign·red_col) *)
  let dual_col = Array.make m (-1) in
  let dual_sign = Array.make m 1. in
  Array.iteri
    (fun i r ->
      Array.blit r.coeffs 0 tab.(i) 0 n_struct;
      rhs.(i) <- r.rhs;
      (match r.relation with
      | Le ->
        tab.(i).(!slack_idx) <- 1.;
        basis.(i) <- !slack_idx;
        dual_col.(i) <- !slack_idx;
        dual_sign.(i) <- 1.;
        incr slack_idx
      | Ge ->
        tab.(i).(!slack_idx) <- -1.;
        dual_col.(i) <- !slack_idx;
        dual_sign.(i) <- -1.;
        incr slack_idx
      | Eq -> ());
      if needs_artificial r then begin
        tab.(i).(!art_idx) <- 1.;
        basis.(i) <- !art_idx;
        if r.relation = Eq then begin
          dual_col.(i) <- !art_idx;
          dual_sign.(i) <- 1.
        end;
        incr art_idx
      end)
    rows;
  let t = { tab; rhs; basis; n_rows = m; n_cols } in
  let art_start = n_struct + n_slack in
  (* Phase 1. *)
  if n_art > 0 then begin
    let c1 = Array.init n_cols (fun j -> if j >= art_start then 1. else 0.) in
    (match
       Obs.time t_phase1 (fun () ->
           optimise ~max_iters ~phase_pivots:c_phase1_pivots t c1 (fun _ -> true))
     with
    | `Unbounded -> assert false (* phase-1 objective is bounded below by 0 *)
    | `Optimal -> ());
    if objective_value t c1 > 1e-7 then raise Exit
  end;
  (* Drive any artificial still basic (at zero level) out of the basis
     when possible; rows where it is impossible are redundant. *)
  for i = 0 to m - 1 do
    if t.basis.(i) >= art_start then begin
      let found = ref (-1) in
      (try
         for j = 0 to art_start - 1 do
           if Float.abs t.tab.(i).(j) > eps then begin
             found := j;
             raise Exit
           end
         done
       with Exit -> ());
      if !found >= 0 then pivot t ~row:i ~col:!found
    end
  done;
  (* Phase 2: bar artificial columns. *)
  let c2 = Array.init n_cols (fun j -> if j < n_struct then obj.(j) else 0.) in
  match
    Obs.time t_phase2 (fun () ->
        optimise ~max_iters ~phase_pivots:c_phase2_pivots t c2 (fun j -> j < art_start))
  with
  | `Unbounded -> Unbounded
  | `Optimal ->
    let solution = Array.make n_struct 0. in
    for i = 0 to m - 1 do
      if t.basis.(i) < n_struct then solution.(t.basis.(i)) <- t.rhs.(i)
    done;
    (* duals: y_i = −sign·red(unit column of row i), flipped back when
       the row was normalised *)
    let red = reduced_costs t c2 in
    let duals =
      Array.init m (fun i ->
          if dual_col.(i) < 0 then 0.
          else begin
            let y = -.dual_sign.(i) *. red.(dual_col.(i)) in
            if flipped.(i) then -.y else y
          end)
    in
    Optimal { objective = objective_value t c2; solution; duals }

let solve_dense ?max_iters ~obj constraints =
  match solve_dense ?max_iters ~obj constraints with
  | outcome -> outcome
  | exception Exit -> Infeasible

let solve ?max_iters ~obj constraints =
  fst (Revised.solve ?max_iters (Sparse.of_rows ~obj constraints))
