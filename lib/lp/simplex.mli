(** Two-phase primal simplex — compatibility front door.

    Solves [minimise cᵀx subject to A x (≤|=|≥) b, x ≥ 0].  This is the
    LP engine behind the paper's polynomial-time result for BI-CRIT
    under the VDD-HOPPING model (Section IV) and for the fixed-subset
    TRI-CRIT VDD-HOPPING subproblem.

    {!solve} now routes through {!Revised} — a revised simplex over
    {!Sparse} CSC columns with an LU-factorised basis, eta-file
    updates and periodic refactorisation — which also exposes the
    warm-start entry points ({!Revised.solve_from}) that Pareto
    deadline sweeps chain between near-identical LPs.  The original
    dense tableau method is retained verbatim as {!solve_dense}: it is
    the independent reference implementation the differential test
    harness checks the revised core against, not a production path. *)

type relation = Sparse.relation = Le | Eq | Ge

type constr = Sparse.constr = {
  coeffs : float array;
  relation : relation;
  rhs : float;
}
(** One row [coeffs · x (≤|=|≥) rhs].  [coeffs] has one entry per
    structural variable. *)

type outcome = Revised.outcome =
  | Optimal of {
      objective : float;
      solution : float array;  (** the structural variables *)
      duals : float array;
          (** one dual multiplier per constraint, in input order: the
              shadow price [∂objective/∂rhs].  For a binding [≤] row of
              a minimisation it is non-positive; non-binding rows price
              at 0.  On degenerate optima the value is one valid
              choice. *)
    }  (** Minimiser found. *)
  | Infeasible  (** Phase 1 ended with positive artificial mass. *)
  | Unbounded  (** Phase 2 found an improving ray. *)

val solve : ?max_iters:int -> obj:float array -> constr list -> outcome
(** [solve ~obj constraints] minimises [obj · x].  All structural
    variables are implicitly non-negative.  [max_iters] bounds the
    total pivot count (default [200_000]); exceeding it raises
    [Failure].  Thin wrapper over {!Revised.solve}.

    @raise Failure if the simplex iteration limit is exceeded. *)

val solve_dense : ?max_iters:int -> obj:float array -> constr list -> outcome
(** The retained dense tableau implementation, bit-for-bit the
    pre-revised solver.  Kept as the differential-testing reference:
    slow (O(m·n) per pivot, dense storage) but independent of the
    sparse data structures, LU factorisation and eta updates that
    {!solve} relies on.

    @raise Failure if the simplex iteration limit is exceeded. *)
