(** Dense two-phase primal simplex.

    Solves [minimise cᵀx subject to A x (≤|=|≥) b, x ≥ 0].  This is the
    LP engine behind the paper's polynomial-time result for BI-CRIT
    under the VDD-HOPPING model (Section IV) and for the fixed-subset
    TRI-CRIT VDD-HOPPING subproblem.

    The implementation is a textbook tableau method: phase 1 minimises
    the sum of artificial variables to find a basic feasible point,
    phase 2 optimises the true objective.  Dantzig pricing is used by
    default and the solver falls back to Bland's rule after an
    iteration threshold, which guarantees termination on degenerate
    instances.  Problem sizes in this project are a few hundred rows,
    for which the dense tableau is perfectly adequate. *)

type relation = Le | Eq | Ge

type constr = { coeffs : float array; relation : relation; rhs : float }
(** One row [coeffs · x (≤|=|≥) rhs].  [coeffs] has one entry per
    structural variable. *)

type outcome =
  | Optimal of {
      objective : float;
      solution : float array;  (** the structural variables *)
      duals : float array;
          (** one dual multiplier per constraint, in input order: the
              shadow price [∂objective/∂rhs].  For a binding [≤] row of
              a minimisation it is non-positive; non-binding rows price
              at 0.  On degenerate optima the value is one valid
              choice. *)
    }  (** Minimiser found. *)
  | Infeasible  (** Phase 1 ended with positive artificial mass. *)
  | Unbounded  (** Phase 2 found an improving ray. *)

val solve : ?max_iters:int -> obj:float array -> constr list -> outcome
(** [solve ~obj constraints] minimises [obj · x].  All structural
    variables are implicitly non-negative.  [max_iters] bounds the
    total pivot count (default [200_000]); exceeding it raises
    [Failure].

    @raise Failure if the simplex iteration limit is exceeded. *)
