exception Singular
exception Unstable

(* Product-form update: after the basis column at position [pos] is
   replaced, B_new = B_old · E where E is the identity with column
   [pos] replaced by w = B_old⁻¹ a_entering.  [idx]/[vals] hold w's
   off-[pos] nonzeros; [diag] = w.(pos). *)
type eta = { pos : int; idx : int array; vals : float array; diag : float }

type t = {
  m : int;
  (* L: unit lower triangular over pivot positions; column [j] stores
     (original row, value) pairs with pinv.(row) > j *)
  l_rows : int array array;
  l_vals : float array array;
  (* U: upper triangular in pivot space; column [k] stores (position
     j < k, value) pairs plus the diagonal *)
  u_rows : int array array;
  u_vals : float array array;
  u_diag : float array;
  prow : int array; (* pivot position -> original row *)
  pinv : int array; (* original row -> pivot position *)
  mutable etas : eta array; (* applied oldest-first *)
  mutable n_etas : int;
}

let pivot_floor = 1e-12

(* Left-looking (Gilbert–Peierls) sparse LU with partial pivoting.
   Column k of the basis is solved against the already-built L via a
   DFS over L's pattern (reverse post-order = topological order), so
   the factorisation costs O(flops) rather than O(m²). *)
let factor ~m ~col basis =
  if Array.length basis <> m then invalid_arg "Lu.factor: basis length";
  let l_rows = Array.make m [||] and l_vals = Array.make m [||] in
  let u_rows = Array.make m [||] and u_vals = Array.make m [||] in
  let u_diag = Array.make m 0. in
  let prow = Array.make m (-1) and pinv = Array.make m (-1) in
  let x = Array.make m 0. in
  let stamp = Array.make m (-1) in
  (* DFS scratch: node stack + per-node child cursor + post-order out *)
  let node_stack = Array.make m 0 in
  let child_pos = Array.make m 0 in
  let order = Array.make m 0 in
  let pattern = Array.make m 0 in
  for k = 0 to m - 1 do
    let a = col basis.(k) in
    (* symbolic: pattern of x = reach of rows(a) through L *)
    let n_order = ref 0 and n_pattern = ref 0 in
    List.iter
      (fun (r0, _) ->
        if stamp.(r0) <> k then begin
          (* iterative DFS from r0 *)
          let top = ref 0 in
          node_stack.(0) <- r0;
          child_pos.(0) <- 0;
          stamp.(r0) <- k;
          while !top >= 0 do
            let r = node_stack.(!top) in
            let j = pinv.(r) in
            if j < 0 then begin
              (* unpivoted row: terminal *)
              pattern.(!n_pattern) <- r;
              incr n_pattern;
              decr top
            end
            else begin
              let rows = l_rows.(j) in
              let c = child_pos.(!top) in
              if c < Array.length rows then begin
                child_pos.(!top) <- c + 1;
                let r' = rows.(c) in
                if stamp.(r') <> k then begin
                  stamp.(r') <- k;
                  incr top;
                  node_stack.(!top) <- r';
                  child_pos.(!top) <- 0
                end
              end
              else begin
                (* post-order: all descendants done *)
                order.(!n_order) <- j;
                pattern.(!n_pattern) <- r;
                incr n_pattern;
                incr n_order;
                decr top
              end
            end
          done
        end)
      a;
    (* numeric: scatter, then eliminate in reverse post-order *)
    List.iter (fun (r, v) -> x.(r) <- x.(r) +. v) a;
    for o = !n_order - 1 downto 0 do
      let j = order.(o) in
      let xj = x.(prow.(j)) in
      if xj <> 0. then begin
        let rows = l_rows.(j) and vals = l_vals.(j) in
        for i = 0 to Array.length rows - 1 do
          x.(rows.(i)) <- x.(rows.(i)) -. (vals.(i) *. xj)
        done
      end
    done;
    (* pivot: largest magnitude among unpivoted pattern rows *)
    let prow_k = ref (-1) and pmax = ref 0. in
    for i = 0 to !n_pattern - 1 do
      let r = pattern.(i) in
      if pinv.(r) < 0 then begin
        let a = Float.abs x.(r) in
        if a > !pmax then begin
          pmax := a;
          prow_k := r
        end
      end
    done;
    if !prow_k < 0 || !pmax <= pivot_floor then begin
      (* clean scratch before bailing *)
      for i = 0 to !n_pattern - 1 do
        x.(pattern.(i)) <- 0.
      done;
      raise Singular
    end;
    let piv_row = !prow_k in
    let piv = x.(piv_row) in
    (* U column k: entries at already-pivoted positions *)
    let n_u = ref 0 and n_l = ref 0 in
    for i = 0 to !n_pattern - 1 do
      let r = pattern.(i) in
      if pinv.(r) >= 0 then begin
        if x.(r) <> 0. then incr n_u
      end
      else if r <> piv_row && x.(r) <> 0. then incr n_l
    done;
    let ur = Array.make !n_u 0 and uv = Array.make !n_u 0. in
    let lr = Array.make !n_l 0 and lv = Array.make !n_l 0. in
    let iu = ref 0 and il = ref 0 in
    for i = 0 to !n_pattern - 1 do
      let r = pattern.(i) in
      if pinv.(r) >= 0 then begin
        if x.(r) <> 0. then begin
          ur.(!iu) <- pinv.(r);
          uv.(!iu) <- x.(r);
          incr iu
        end
      end
      else if r <> piv_row && x.(r) <> 0. then begin
        lr.(!il) <- r;
        lv.(!il) <- x.(r) /. piv;
        incr il
      end;
      x.(r) <- 0.
    done;
    u_rows.(k) <- ur;
    u_vals.(k) <- uv;
    u_diag.(k) <- piv;
    l_rows.(k) <- lr;
    l_vals.(k) <- lv;
    prow.(k) <- piv_row;
    pinv.(piv_row) <- k
  done;
  { m; l_rows; l_vals; u_rows; u_vals; u_diag; prow; pinv; etas = [||]; n_etas = 0 }

let n_updates t = t.n_etas

(* solve B x = b: x returned in basis-position space; [b] is consumed
   as scratch (row space). *)
let ftran t b =
  let m = t.m in
  let z = Array.make m 0. in
  (* L z = P b *)
  for j = 0 to m - 1 do
    let zj = b.(t.prow.(j)) in
    z.(j) <- zj;
    if zj <> 0. then begin
      let rows = t.l_rows.(j) and vals = t.l_vals.(j) in
      for i = 0 to Array.length rows - 1 do
        b.(rows.(i)) <- b.(rows.(i)) -. (vals.(i) *. zj)
      done
    end
  done;
  (* U x = z *)
  for k = m - 1 downto 0 do
    let xk = z.(k) /. t.u_diag.(k) in
    z.(k) <- xk;
    if xk <> 0. then begin
      let rows = t.u_rows.(k) and vals = t.u_vals.(k) in
      for i = 0 to Array.length rows - 1 do
        z.(rows.(i)) <- z.(rows.(i)) -. (vals.(i) *. xk)
      done
    end
  done;
  (* eta file, oldest first *)
  for e = 0 to t.n_etas - 1 do
    let eta = t.etas.(e) in
    let xp = z.(eta.pos) /. eta.diag in
    if xp <> 0. then
      for i = 0 to Array.length eta.idx - 1 do
        z.(eta.idx.(i)) <- z.(eta.idx.(i)) -. (eta.vals.(i) *. xp)
      done;
    z.(eta.pos) <- xp
  done;
  z

(* solve Bᵀ y = c: [c] indexed by basis position (consumed as
   scratch); y returned in row space. *)
let btran t c =
  let m = t.m in
  (* eta transposes, newest first *)
  for e = t.n_etas - 1 downto 0 do
    let eta = t.etas.(e) in
    let s = ref c.(eta.pos) in
    for i = 0 to Array.length eta.idx - 1 do
      s := !s -. (eta.vals.(i) *. c.(eta.idx.(i)))
    done;
    c.(eta.pos) <- !s /. eta.diag
  done;
  (* Uᵀ s = c (forward) *)
  for k = 0 to m - 1 do
    let acc = ref c.(k) in
    let rows = t.u_rows.(k) and vals = t.u_vals.(k) in
    for i = 0 to Array.length rows - 1 do
      acc := !acc -. (vals.(i) *. c.(rows.(i)))
    done;
    c.(k) <- !acc /. t.u_diag.(k)
  done;
  (* Lᵀ t = s (backward), then y = Pᵀ t *)
  let y = Array.make m 0. in
  for j = m - 1 downto 0 do
    let acc = ref c.(j) in
    let rows = t.l_rows.(j) and vals = t.l_vals.(j) in
    for i = 0 to Array.length rows - 1 do
      acc := !acc -. (vals.(i) *. c.(t.pinv.(rows.(i))))
    done;
    c.(j) <- !acc;
    y.(t.prow.(j)) <- !acc
  done;
  y

let eta_stability = 1e-8

let update t ~pos ~w =
  let wp = w.(pos) in
  let wmax = Array.fold_left (fun acc v -> Float.max acc (Float.abs v)) 0. w in
  if Float.abs wp <= eta_stability *. Float.max 1. wmax then raise Unstable;
  let n = ref 0 in
  Array.iteri (fun i v -> if i <> pos && v <> 0. then incr n) w;
  let idx = Array.make !n 0 and vals = Array.make !n 0. in
  let k = ref 0 in
  Array.iteri
    (fun i v ->
      if i <> pos && v <> 0. then begin
        idx.(!k) <- i;
        vals.(!k) <- v;
        incr k
      end)
    w;
  let eta = { pos; idx; vals; diag = wp } in
  let cap = Array.length t.etas in
  if t.n_etas >= cap then begin
    let grown = Array.make (max 8 (2 * cap)) eta in
    Array.blit t.etas 0 grown 0 t.n_etas;
    t.etas <- grown
  end;
  t.etas.(t.n_etas) <- eta;
  t.n_etas <- t.n_etas + 1
