(** Dense row-major matrices and the factorisations used by the
    log-barrier Newton solver ({!Es_numopt.Barrier}).

    Matrices are represented as [float array array] (array of rows).
    Sizes in this library stay small (a few hundred rows), so dense
    O(n³) factorisations are appropriate; no attempt is made at
    blocking or SIMD. *)

type t = float array array

val make : int -> int -> float -> t
(** [make r c x] is an [r × c] matrix filled with [x]. *)

val init : int -> int -> (int -> int -> float) -> t
val identity : int -> t
val copy : t -> t
val dims : t -> int * int
val transpose : t -> t

val mul : t -> t -> t
(** Matrix product.  Inner dimensions must agree. *)

val mulv : t -> Vec.t -> Vec.t
(** Matrix–vector product. *)

val mulv_t : t -> Vec.t -> Vec.t
(** [mulv_t a x] is [aᵀ x], computed without forming the transpose. *)

val add : t -> t -> t
val scale : float -> t -> t

exception Not_positive_definite
(** Raised by {!cholesky} when a pivot is not strictly positive. *)

exception Singular
(** Raised by {!lu} / {!solve} on (numerically) singular input. *)

val cholesky : t -> t
(** [cholesky a] returns the lower-triangular [l] with [l lᵀ = a] for a
    symmetric positive-definite [a].  Only the lower triangle of [a] is
    read.  @raise Not_positive_definite otherwise. *)

val solve_cholesky : t -> Vec.t -> Vec.t
(** [solve_cholesky l b] solves [l lᵀ x = b] given the factor from
    {!cholesky}. *)

val lu : t -> t * int array
(** Doolittle LU with partial pivoting: returns the packed factors and
    the permutation.  @raise Singular on zero pivot. *)

val lu_solve : t * int array -> Vec.t -> Vec.t
(** Solve using factors from {!lu}.

    @raise Singular if the linear system is numerically singular. *)

val solve : t -> Vec.t -> Vec.t
(** One-shot [a x = b] through {!lu}.  @raise Singular. *)

val solve_spd : t -> Vec.t -> Vec.t
(** One-shot solve for symmetric positive-definite [a] through
    {!cholesky}, falling back to {!solve} if the Cholesky pivot check
    fails (which can happen near the boundary of feasibility in the
    barrier method).

    @raise Singular if the linear system is numerically singular. *)
