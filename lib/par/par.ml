(* Deterministic combinators over Pool.  The design invariant: result
   assembly, exception selection and RNG stream assignment depend only
   on the input list, never on which worker ran what or in which
   order.  See par.mli for the contract.

   Chunk granularity is what decides whether the pool wins or loses:
   too fine and queue traffic dominates, too coarse and workers idle.
   When the caller does not pin [?chunk], the combinators probe the
   first few items inline, estimate the per-item cost, and size chunks
   to ~1 ms of work each (clamped so every worker still gets several
   chunks to steal).  The probe runs the items it measures — their
   outcomes are kept — so tuning costs nothing and, since chunking is
   invisible in the results, the output stays byte-identical whatever
   granularity the probe picks. *)

module Obs = Es_obs.Obs

exception Task_error of { index : int; exn : exn; backtrace : string }

type 'a outcome =
  | Done of 'a
  | Failed of { exn : exn; backtrace : string }
  | Timed_out

let now () = Unix.gettimeofday ()

let c_probed = Obs.counter "par.chunk.probed_items"
let c_chunks = Obs.counter "par.chunk.tasks"

let protected f x =
  match f x with
  | y -> Done y
  | exception exn ->
    let backtrace = Printexc.get_backtrace () in
    Failed { exn; backtrace }

(* Split [xs] into consecutive runs of [size] items, preserving order. *)
let chunk_list ~size xs =
  let rec take k acc = function
    | rest when k = 0 -> (List.rev acc, rest)
    | [] -> (List.rev acc, [])
    | x :: rest -> take (k - 1) (x :: acc) rest
  in
  let rec go acc = function
    | [] -> List.rev acc
    | xs ->
      let chunk, rest = take size [] xs in
      go (chunk :: acc) rest
  in
  go [] xs

(* Static fallback chunk size, used when there is no cost probe (the
   timeout path, [parallel_iteri]): ~4 tasks per worker, by *ceiling*
   division — floor division degenerated to chunk 1 (one task per
   item) as soon as [n < 4 * pool_size] — with a floor of
   [min_items_per_chunk] so tiny sweeps never pay per-item queue
   traffic. *)
let min_items_per_chunk = 2

let default_chunk ~pool_size ~n =
  if pool_size < 1 then invalid_arg "Par.default_chunk: pool_size must be >= 1";
  if n < 0 then invalid_arg "Par.default_chunk: n must be >= 0";
  let denom = 4 * pool_size in
  max min_items_per_chunk ((n + denom - 1) / denom)

(* Cost-probe auto-tuning: run items inline until [probe_budget]
   seconds of measured work (or the item cap) accumulate, then size
   chunks to [chunk_target] seconds of estimated work, clamped so the
   rest of the list still splits into >= 2 chunks per worker for
   stealing to balance.  Returns the probed outcomes (kept — they are
   slots 0..k-1 of the result) and the chosen size. *)
let probe_budget = 2e-4

let chunk_target = 1e-3

let probe_and_tune ~pool_size ~n f xs =
  let cap = max 1 (min 8 (n / 8)) in
  let t0 = now () in
  let rec go acc taken rest =
    match rest with
    | [] -> (List.rev acc, [], 1)
    | x :: tl ->
      let elapsed = now () -. t0 in
      if taken >= cap || (taken >= 1 && elapsed >= probe_budget) then begin
        let remaining = n - taken in
        let per_item = elapsed /. float_of_int taken in
        let size =
          if per_item <= 0. then default_chunk ~pool_size ~n:remaining
          else begin
            let ideal = int_of_float (Float.ceil (chunk_target /. per_item)) in
            let balance_cap =
              let denom = 2 * pool_size in
              max 1 ((remaining + denom - 1) / denom)
            in
            max 1 (min ideal balance_cap)
          end
        in
        (List.rev acc, rest, size)
      end
      else begin
        Obs.incr c_probed;
        go (protected f x :: acc) (taken + 1) tl
      end
  in
  go [] 0 xs

(* ------------------------------------------------------------------ *)
(* joins                                                               *)
(* ------------------------------------------------------------------ *)

(* Result slots are strided 8 words apart so two workers completing
   adjacent chunks never write the same cache line. *)
let slot_stride = 8

(* No-timeout join: thunks must not raise (callers wrap with
   [protected]).  Each completion is one plain slot write plus one
   atomic decrement; only the final task touches the mutex, to hand
   the join condition to the caller.  There is no polling and no
   per-completion lock on this path. *)
let run_thunks pool (thunks : (unit -> 'r) array) : 'r array =
  let n = Array.length thunks in
  if n = 0 then [||]
  else begin
    let slots : 'r option array = Array.make (n * slot_stride) None in
    let remaining = Atomic.make n in
    let m = Mutex.create () in
    let all_done = Condition.create () in
    let tasks =
      Array.mapi
        (fun i thunk () ->
          let r = thunk () in
          slots.(i * slot_stride) <- Some r;
          (* the decrement publishes the slot write; the last task
             signals the joiner under the lock it waits on *)
          if Atomic.fetch_and_add remaining (-1) = 1 then begin
            Mutex.lock m;
            Condition.signal all_done;
            Mutex.unlock m
          end)
        thunks
    in
    Pool.submit_batch pool tasks;
    Mutex.lock m;
    while Atomic.get remaining > 0 do
      Condition.wait all_done m
    done;
    Mutex.unlock m;
    Array.init n (fun i ->
        match slots.(i * slot_stride) with
        | Some r -> r
        | None -> assert false (* every slot resolved before the join *))
  end

(* Timeout join ([try_map] only): a thunk still running [limit]
   seconds after a worker picked it up resolves to [Error `Timed_out];
   its late real result is discarded.  Queued-but-unstarted thunks
   cannot time out — the clock starts at pick-up.  The stdlib
   condition has no deadline wait, so the joiner polls at 1 ms — but
   only while [live > 0], i.e. while some started task could actually
   expire; with nothing overdue-eligible it blocks on the condition
   (workers signal on start and on completion). *)
let run_thunks_timeout pool ~limit (thunks : (unit -> 'r) array) :
    ('r, [ `Timed_out ]) result array =
  let n = Array.length thunks in
  if n = 0 then [||]
  else begin
    let slots : ('r, [ `Timed_out ]) result option array = Array.make n None in
    let started = Array.make n Float.nan in
    let resolved = ref 0 in
    let live = ref 0 in
    (* started and not yet resolved *)
    let m = Mutex.create () in
    let settled = Condition.create () in
    let tasks =
      Array.mapi
        (fun i thunk () ->
          Mutex.lock m;
          started.(i) <- now ();
          incr live;
          Condition.signal settled;
          Mutex.unlock m;
          let r = thunk () in
          Mutex.lock m;
          (match slots.(i) with
          | None ->
            slots.(i) <- Some (Ok r);
            incr resolved;
            decr live;
            Condition.signal settled
          | Some _ -> () (* joiner timed this slot out; [live] already down *));
          Mutex.unlock m)
        thunks
    in
    Pool.submit_batch pool tasks;
    Mutex.lock m;
    while !resolved < n do
      if !live = 0 then Condition.wait settled m
      else begin
        let t = now () in
        Array.iteri
          (fun i slot ->
            match slot with
            | Some _ -> ()
            | None ->
              if (not (Float.is_nan started.(i))) && t -. started.(i) > limit
              then begin
                slots.(i) <- Some (Error `Timed_out);
                incr resolved;
                decr live
              end)
          slots;
        if !resolved < n && !live > 0 then begin
          Mutex.unlock m;
          Unix.sleepf 0.001;
          Mutex.lock m
        end
      end
    done;
    Mutex.unlock m;
    Array.map
      (function
        | Some r -> r
        | None -> assert false (* every slot resolved before the join *))
      slots
  end

(* ------------------------------------------------------------------ *)
(* core                                                                *)
(* ------------------------------------------------------------------ *)

let usable_pool pool =
  match pool with Some p when not (Pool.in_worker ()) -> Some p | _ -> None

let explicit_chunk c =
  if c < 1 then invalid_arg "Par: chunk must be >= 1";
  c

(* Core: per-item outcomes in submission order, chunked onto the pool.
   [pool = None] — and any call from inside a worker — takes the
   sequential reference path. *)
let outcomes ?pool ?timeout ?chunk f xs =
  match usable_pool pool with
  | None ->
    List.map
      (fun x ->
        let t0 = now () in
        let r = protected f x in
        match timeout with
        | Some limit when now () -. t0 > limit -> Timed_out
        | _ -> r)
      xs
  | Some pool -> (
    let n = List.length xs in
    if n = 0 then []
    else
      match timeout with
      | Some limit ->
        (* no probing under a timeout: probed items would run inline,
           un-timed-out; callers ([try_map]) pin the chunk anyway *)
        let size =
          match chunk with
          | Some c -> explicit_chunk c
          | None -> default_chunk ~pool_size:(Pool.size pool) ~n
        in
        let chunks = chunk_list ~size xs in
        let thunks =
          Array.of_list
            (List.map (fun items () -> List.map (protected f) items) chunks)
        in
        let results = run_thunks_timeout pool ~limit thunks in
        List.concat
          (List.map2
             (fun items result ->
               match result with
               | Ok outs -> outs
               | Error `Timed_out -> List.map (fun _ -> Timed_out) items)
             chunks (Array.to_list results))
      | None ->
        let probed, rest, size =
          match chunk with
          | Some c -> ([], xs, explicit_chunk c)
          | None -> probe_and_tune ~pool_size:(Pool.size pool) ~n f xs
        in
        let chunks = chunk_list ~size rest in
        let thunks =
          Array.of_list
            (List.map (fun items () -> List.map (protected f) items) chunks)
        in
        Obs.add c_chunks (Array.length thunks);
        let results = run_thunks pool thunks in
        probed @ List.concat (Array.to_list results))

(* Raise the lowest-index failure; outcomes are already in submission
   order, so the first [Failed] encountered is the one to raise. *)
let collect_exn outs =
  List.mapi
    (fun index out ->
      match out with
      | Done y -> y
      | Failed { exn; backtrace } -> raise (Task_error { index; exn; backtrace })
      | Timed_out -> assert false (* no timeout on this path *))
    outs

let parallel_map ?pool ?chunk f xs = collect_exn (outcomes ?pool ?chunk f xs)

(* Effect-only sweep: no per-item result is materialised.  Each chunk
   task returns only its first failure (index, exn, backtrace) — chunks
   cover consecutive index ranges, so the first failing chunk's first
   failure is the globally lowest index. *)
let parallel_iteri ?pool ?chunk f xs =
  let run_items first items =
    List.iter
      (fun (i, x) ->
        match f i x with
        | () -> ()
        | exception exn -> (
          match !first with
          | None -> first := Some (i, exn, Printexc.get_backtrace ())
          | Some _ -> ()))
      items
  in
  let raise_first first =
    match first with
    | Some (index, exn, backtrace) ->
      raise (Task_error { index; exn; backtrace })
    | None -> ()
  in
  match usable_pool pool with
  | None ->
    (* sequential reference path: like the pool path, every item runs
       even when an earlier one failed, then the lowest index raises *)
    let first = ref None in
    run_items first (List.mapi (fun i x -> (i, x)) xs);
    raise_first !first
  | Some pool ->
    let n = List.length xs in
    if n > 0 then begin
      let size =
        match chunk with
        | Some c -> explicit_chunk c
        | None -> default_chunk ~pool_size:(Pool.size pool) ~n
      in
      let chunks = chunk_list ~size (List.mapi (fun i x -> (i, x)) xs) in
      let thunks =
        Array.of_list
          (List.map
             (fun items () ->
               let first = ref None in
               run_items first items;
               !first)
             chunks)
      in
      Obs.add c_chunks (Array.length thunks);
      let failures = run_thunks pool thunks in
      raise_first (Array.fold_left
                     (fun acc failure ->
                       match acc with Some _ -> acc | None -> failure)
                     None failures)
    end

let map_reduce ?pool ?chunk ~map ~reduce init xs =
  let mapped = parallel_map ?pool ?chunk map xs in
  List.fold_left reduce init mapped

let try_map ?pool ?timeout f xs =
  (* chunk = 1 so a timeout marks exactly the overdue task, not the
     innocent neighbours sharing its chunk *)
  outcomes ?pool ?timeout ~chunk:1 f xs

let map_seeded ?pool ?chunk ~rng f xs =
  (* split with fold_left, whose application order is guaranteed: the
     order of the splits is part of the determinism contract *)
  let seeded =
    List.rev
      (List.fold_left (fun acc x -> (Es_util.Rng.split rng, x) :: acc) [] xs)
  in
  parallel_map ?pool ?chunk (fun (r, x) -> f r x) seeded
