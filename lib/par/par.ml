(* Deterministic combinators over Pool.  The design invariant: result
   assembly, exception selection and RNG stream assignment depend only
   on the input list, never on which worker ran what or in which
   order.  See par.mli for the contract. *)

exception Task_error of { index : int; exn : exn; backtrace : string }

type 'a outcome =
  | Done of 'a
  | Failed of { exn : exn; backtrace : string }
  | Timed_out

let now () = Unix.gettimeofday ()

let protected f x =
  match f x with
  | y -> Done y
  | exception exn ->
    let backtrace = Printexc.get_backtrace () in
    Failed { exn; backtrace }

(* Split [xs] into consecutive runs of [size] items, preserving order. *)
let chunk_list ~size xs =
  let rec take k acc = function
    | rest when k = 0 -> (List.rev acc, rest)
    | [] -> (List.rev acc, [])
    | x :: rest -> take (k - 1) (x :: acc) rest
  in
  let rec go acc = function
    | [] -> List.rev acc
    | xs ->
      let chunk, rest = take size [] xs in
      go (chunk :: acc) rest
  in
  go [] xs

(* Default chunk size: ~4 tasks per worker so the queue stays long
   enough to absorb uneven task costs, without per-item overhead. *)
let default_chunk ~pool_size ~n = max 1 (n / (4 * pool_size))

(* Run the thunks on the pool; thunks must not raise (callers wrap
   with [protected]).  Returns per-thunk results in submission order.
   With [?timeout], a thunk still running [timeout] seconds after it
   started resolves to [Error `Timed_out]; its late real result is
   discarded.  Queued-but-unstarted thunks cannot time out — the clock
   starts when a worker picks the task up. *)
let run_thunks ?timeout pool (thunks : (unit -> 'r) array) :
    ('r, [ `Timed_out ]) result array =
  let n = Array.length thunks in
  let slots : ('r, [ `Timed_out ]) result option array = Array.make n None in
  let started = Array.make n Float.nan in
  let resolved = ref 0 in
  let m = Mutex.create () in
  let settled = Condition.create () in
  Array.iteri
    (fun i thunk ->
      Pool.submit pool (fun () ->
          Mutex.lock m;
          started.(i) <- now ();
          Mutex.unlock m;
          let r = thunk () in
          Mutex.lock m;
          (match slots.(i) with
          | None ->
            slots.(i) <- Some (Ok r);
            incr resolved;
            Condition.signal settled
          | Some _ -> () (* joiner already timed this slot out *));
          Mutex.unlock m))
    thunks;
  Mutex.lock m;
  (match timeout with
  | None -> while !resolved < n do Condition.wait settled m done
  | Some limit ->
    (* The stdlib condition has no deadline wait, so the joiner polls:
       expire overdue running tasks, then sleep briefly off-lock. *)
    while !resolved < n do
      let t = now () in
      Array.iteri
        (fun i slot ->
          match slot with
          | Some _ -> ()
          | None ->
            if (not (Float.is_nan started.(i))) && t -. started.(i) > limit
            then begin
              slots.(i) <- Some (Error `Timed_out);
              incr resolved
            end)
        slots;
      if !resolved < n then begin
        Mutex.unlock m;
        Unix.sleepf 0.001;
        Mutex.lock m
      end
    done);
  Mutex.unlock m;
  Array.map
    (function
      | Some r -> r
      | None -> assert false (* every slot resolved before the join *))
    slots

(* Core: per-item outcomes in submission order, chunked onto the pool.
   [pool = None] — and any call from inside a worker — takes the
   sequential reference path. *)
let outcomes ?pool ?timeout ?chunk f xs =
  let pool =
    match pool with Some p when not (Pool.in_worker ()) -> Some p | _ -> None
  in
  match pool with
  | None ->
    List.map
      (fun x ->
        let t0 = now () in
        let r = protected f x in
        match timeout with
        | Some limit when now () -. t0 > limit -> Timed_out
        | _ -> r)
      xs
  | Some pool ->
    let n = List.length xs in
    if n = 0 then []
    else begin
      let size =
        match chunk with
        | Some c ->
          if c < 1 then invalid_arg "Par: chunk must be >= 1";
          c
        | None -> default_chunk ~pool_size:(Pool.size pool) ~n
      in
      let chunks = chunk_list ~size xs in
      let thunks =
        Array.of_list
          (List.map (fun items () -> List.map (protected f) items) chunks)
      in
      let results = run_thunks ?timeout pool thunks in
      List.concat
        (List.map2
           (fun items result ->
             match result with
             | Ok outs -> outs
             | Error `Timed_out -> List.map (fun _ -> Timed_out) items)
           chunks (Array.to_list results))
    end

(* Raise the lowest-index failure; outcomes are already in submission
   order, so the first [Failed] encountered is the one to raise. *)
let collect_exn outs =
  List.mapi
    (fun index out ->
      match out with
      | Done y -> y
      | Failed { exn; backtrace } -> raise (Task_error { index; exn; backtrace })
      | Timed_out -> assert false (* no timeout on this path *))
    outs

let parallel_map ?pool ?chunk f xs = collect_exn (outcomes ?pool ?chunk f xs)

let parallel_iteri ?pool ?chunk f xs =
  let indexed = List.mapi (fun i x -> (i, x)) xs in
  let _ : unit list =
    parallel_map ?pool ?chunk (fun (i, x) -> f i x) indexed
  in
  ()

let map_reduce ?pool ?chunk ~map ~reduce init xs =
  let mapped = parallel_map ?pool ?chunk map xs in
  List.fold_left reduce init mapped

let try_map ?pool ?timeout f xs =
  (* chunk = 1 so a timeout marks exactly the overdue task, not the
     innocent neighbours sharing its chunk *)
  outcomes ?pool ?timeout ~chunk:1 f xs

let map_seeded ?pool ?chunk ~rng f xs =
  (* split with fold_left, whose application order is guaranteed: the
     order of the splits is part of the determinism contract *)
  let seeded =
    List.rev
      (List.fold_left (fun acc x -> (Es_util.Rng.split rng, x) :: acc) [] xs)
  in
  parallel_map ?pool ?chunk (fun (r, x) -> f r x) seeded
