(* Fixed-size domain pool over per-worker sharded deques with work
   stealing.  Each worker owns one mutex-guarded deque and drains it
   FIFO; when it runs dry it scans the other shards (try_lock, so a
   busy shard is skipped rather than convoyed on) and steals from the
   front.  Submission distributes tasks round-robin across the shards
   — batched submission takes each shard lock once per batch — and
   wakes only as many parked workers as there are new tasks.
   [Condition.broadcast] happens exactly once, at shutdown.

   Liveness hinges on [pending], an atomic over-approximation of the
   number of queued tasks: it is incremented before the push and
   decremented after the pop, so [pending = 0] implies every shard is
   empty.  A worker only blocks on the condition while [pending = 0]
   and the pool is not stopping; the windows where [pending] is ahead
   of the queues are a few instructions wide, costing at worst one
   extra scan.  Shutdown flips [stopping] and broadcasts; workers keep
   scanning until the shards are drained, so submitted work is never
   dropped. *)

module Obs = Es_obs.Obs

type shard = { lock : Mutex.t; q : (unit -> unit) Queue.t }

type t = {
  shards : shard array;  (* one per worker; worker [i] owns [shards.(i)] *)
  pending : int Atomic.t;  (* >= total queued tasks, see above *)
  next : int Atomic.t;  (* round-robin submission cursor *)
  park_mutex : Mutex.t;
  wakeup : Condition.t;  (* signalled per new task; broadcast on shutdown *)
  n_idle : int Atomic.t;  (* workers blocked on [wakeup] *)
  stopping : bool Atomic.t;
  mutable workers : unit Domain.t list;  (* [] once joined *)
  uncaught : exn option Atomic.t;  (* first raise from a raw submit task *)
  n : int;
}

let c_parks = Obs.counter "par.pool.parks"
let c_batches = Obs.counter "par.pool.submit_batches"

let in_worker_key : bool Domain.DLS.key = Domain.DLS.new_key (fun () -> false)
let in_worker () = Domain.DLS.get in_worker_key

let pop_shard shard =
  Mutex.lock shard.lock;
  let r = Queue.take_opt shard.q in
  Mutex.unlock shard.lock;
  r

let try_pop_shard shard =
  if Mutex.try_lock shard.lock then begin
    let r = Queue.take_opt shard.q in
    Mutex.unlock shard.lock;
    r
  end
  else None

(* Own shard first (blocking lock: the owner never convoys for long),
   then one try_lock sweep over the victims. *)
let find_task pool id c_steals =
  match pop_shard pool.shards.(id) with
  | Some task ->
    Atomic.decr pool.pending;
    Some task
  | None ->
    let rec steal k =
      if k >= pool.n then None
      else
        match try_pop_shard pool.shards.((id + k) mod pool.n) with
        | Some task ->
          Atomic.decr pool.pending;
          Obs.incr c_steals;
          Some task
        | None -> steal (k + 1)
    in
    steal 1

let rec worker_loop pool id c_tasks c_steals =
  match find_task pool id c_steals with
  | Some task ->
    Obs.incr c_tasks;
    (try task ()
     with exn ->
       (* tasks from Par combinators never raise; a raw submit that
          does must not kill the worker silently — keep the first *)
       ignore (Atomic.compare_and_set pool.uncaught None (Some exn)));
    worker_loop pool id c_tasks c_steals
  | None ->
    if Atomic.get pool.stopping && Atomic.get pool.pending = 0 then
      () (* drained and stopping: exit *)
    else begin
      (* Park until new work or shutdown.  When [pending > 0] the scan
         simply raced a push or a locked victim: don't wait, rescan. *)
      Mutex.lock pool.park_mutex;
      Atomic.incr pool.n_idle;
      while Atomic.get pool.pending = 0 && not (Atomic.get pool.stopping) do
        Obs.incr c_parks;
        Condition.wait pool.wakeup pool.park_mutex
      done;
      Atomic.decr pool.n_idle;
      Mutex.unlock pool.park_mutex;
      Domain.cpu_relax ();
      worker_loop pool id c_tasks c_steals
    end

let create ~domains () =
  if domains < 1 then invalid_arg "Pool.create: domains must be >= 1";
  let pool =
    {
      shards =
        Array.init domains (fun _ ->
            { lock = Mutex.create (); q = Queue.create () });
      pending = Atomic.make 0;
      next = Atomic.make 0;
      park_mutex = Mutex.create ();
      wakeup = Condition.create ();
      n_idle = Atomic.make 0;
      stopping = Atomic.make false;
      workers = [];
      uncaught = Atomic.make None;
      n = domains;
    }
  in
  pool.workers <-
    List.init domains (fun id ->
        Domain.spawn (fun () ->
            Domain.DLS.set in_worker_key true;
            (* per-worker handles, created once on the cold spawn path *)
            let c_tasks = Obs.counter (Printf.sprintf "par.pool.w%d.tasks" id) in
            let c_steals = Obs.counter (Printf.sprintf "par.pool.w%d.steals" id) in
            worker_loop pool id c_tasks c_steals));
  pool

let size pool = pool.n

(* Wake at most [k] parked workers, one signal each; no-op when nobody
   is parked, which is the common case mid-sweep. *)
let wake pool k =
  if Atomic.get pool.n_idle > 0 then begin
    Mutex.lock pool.park_mutex;
    let idle = Atomic.get pool.n_idle in
    let wakes = if k < idle then k else idle in
    for _ = 1 to wakes do
      Condition.signal pool.wakeup
    done;
    Mutex.unlock pool.park_mutex
  end

let submit pool task =
  if Atomic.get pool.stopping then
    invalid_arg "Pool.submit: pool is shut down";
  let shard = pool.shards.(Atomic.fetch_and_add pool.next 1 mod pool.n) in
  Atomic.incr pool.pending;
  Mutex.lock shard.lock;
  Queue.push task shard.q;
  Mutex.unlock shard.lock;
  wake pool 1

let submit_batch pool tasks =
  let k = Array.length tasks in
  if k > 0 then begin
    if Atomic.get pool.stopping then
      invalid_arg "Pool.submit_batch: pool is shut down";
    Obs.incr c_batches;
    ignore (Atomic.fetch_and_add pool.pending k);
    (* Shard [start + j] takes tasks j, j + n, j + 2n, ...: the head of
       the batch is spread across all workers, one lock per shard. *)
    let start = Atomic.fetch_and_add pool.next 1 in
    for j = 0 to min (pool.n - 1) (k - 1) do
      let shard = pool.shards.((start + j) mod pool.n) in
      Mutex.lock shard.lock;
      let i = ref j in
      while !i < k do
        Queue.push tasks.(!i) shard.q;
        i := !i + pool.n
      done;
      Mutex.unlock shard.lock
    done;
    wake pool k
  end

let shutdown pool =
  let workers = pool.workers in
  pool.workers <- [];
  Atomic.set pool.stopping true;
  Mutex.lock pool.park_mutex;
  Condition.broadcast pool.wakeup;
  Mutex.unlock pool.park_mutex;
  List.iter Domain.join workers;
  match (Atomic.get pool.uncaught, workers) with
  | Some exn, _ :: _ ->
    Atomic.set pool.uncaught None;
    raise exn
  | _ -> ()

let with_pool ~domains f =
  let pool = create ~domains () in
  Fun.protect ~finally:(fun () -> shutdown pool) (fun () -> f pool)
