(* Fixed-size domain pool: N workers spawned once, blocking on a
   mutex+condition work queue, drained FIFO.  Shutdown flips a flag
   and broadcasts; workers finish the remaining queue before exiting,
   so submitted work is never dropped. *)

type t = {
  queue : (unit -> unit) Queue.t;
  mutex : Mutex.t;
  wakeup : Condition.t;  (* signalled on submit and on shutdown *)
  mutable stopping : bool;
  mutable workers : unit Domain.t list;  (* [] once joined *)
  mutable uncaught : exn option;  (* first raise from a raw submit task *)
  n : int;
}

let in_worker_key : bool Domain.DLS.key = Domain.DLS.new_key (fun () -> false)
let in_worker () = Domain.DLS.get in_worker_key

let rec worker_loop pool =
  Mutex.lock pool.mutex;
  while Queue.is_empty pool.queue && not pool.stopping do
    Condition.wait pool.wakeup pool.mutex
  done;
  if Queue.is_empty pool.queue then (* stopping and drained *)
    Mutex.unlock pool.mutex
  else begin
    let task = Queue.pop pool.queue in
    Mutex.unlock pool.mutex;
    (try task ()
     with exn ->
       (* tasks from Par combinators never raise; a raw submit that
          does must not kill the worker silently — keep the first *)
       Mutex.lock pool.mutex;
       if pool.uncaught = None then pool.uncaught <- Some exn;
       Mutex.unlock pool.mutex);
    worker_loop pool
  end

let create ~domains () =
  if domains < 1 then invalid_arg "Pool.create: domains must be >= 1";
  let pool =
    {
      queue = Queue.create ();
      mutex = Mutex.create ();
      wakeup = Condition.create ();
      stopping = false;
      workers = [];
      uncaught = None;
      n = domains;
    }
  in
  pool.workers <-
    List.init domains (fun _ ->
        Domain.spawn (fun () ->
            Domain.DLS.set in_worker_key true;
            worker_loop pool));
  pool

let size pool = pool.n

let submit pool task =
  Mutex.lock pool.mutex;
  if pool.stopping then begin
    Mutex.unlock pool.mutex;
    invalid_arg "Pool.submit: pool is shut down"
  end;
  Queue.push task pool.queue;
  Condition.signal pool.wakeup;
  Mutex.unlock pool.mutex

let shutdown pool =
  Mutex.lock pool.mutex;
  let workers = pool.workers in
  pool.stopping <- true;
  pool.workers <- [];
  Condition.broadcast pool.wakeup;
  Mutex.unlock pool.mutex;
  List.iter Domain.join workers;
  match pool.uncaught with
  | Some exn when workers <> [] ->
    pool.uncaught <- None;
    raise exn
  | _ -> ()

let with_pool ~domains f =
  let pool = create ~domains () in
  Fun.protect ~finally:(fun () -> shutdown pool) (fun () -> f pool)
