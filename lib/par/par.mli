(** Deterministic multicore execution combinators.

    The experiment harness is an embarrassingly-parallel sweep — many
    seeds x deadlines x speed models x heuristics — and every
    repetition is a pure function of its inputs.  These combinators
    run such repetitions on a {!Pool} of reusable domains while
    keeping the {b sequential semantics observable}: results come back
    in submission order, the RNG stream of each task is derived up
    front with [Rng.split] (never from a shared generator mid-flight),
    and a failure is re-raised at the join point carrying the index of
    the task that caused it.  Consequently the output of a sweep is
    byte-identical whether it ran on 1 domain or N — parallelism is a
    pure wall-clock optimisation, never a semantic knob.

    All combinators accept [?pool]:
    - [None] (default): run sequentially, inline, in the calling
      domain — the reference semantics;
    - [Some pool]: distribute over the pool's workers.

    Called from inside a pool worker, every combinator runs inline
    (see {!Pool.in_worker}): nested parallelism degrades to sequential
    execution instead of deadlocking on a queue the caller's own
    worker must drain.

    {b Chunking.}  Work is submitted in chunks of consecutive items.
    An explicit [?chunk] pins the size; otherwise the combinator
    probes the first few items inline, estimates the per-item cost,
    and sizes chunks to ~1 ms of work each (clamped so every worker
    still gets at least two chunks for stealing to balance) — cheap
    items get coarse chunks that amortise queue traffic, expensive
    items get fine chunks that spread across the workers.  The probed
    items' results are kept, and chunking is invisible in the output:
    any [?chunk] and any probe decision yield the same bytes.

    Determinism contract: for a pure [f], any [?pool] and any
    [?chunk],
    [parallel_map ?pool ?chunk f xs = List.map f xs]
    (and likewise [map_reduce] against the sequential fold).  Effects
    inside [f] run concurrently and must be independent per task —
    telemetry counters ({!Es_obs.Obs}) are safe, shared mutable
    work-state is not. *)

exception Task_error of { index : int; exn : exn; backtrace : string }
(** A task raised: [exn] is the original exception, [index] the
    0-based submission index of the failing task.  When several tasks
    fail, the lowest index wins — independently of scheduling. *)

type 'a outcome =
  | Done of 'a
  | Failed of { exn : exn; backtrace : string }
  | Timed_out  (** the task exceeded its [?timeout]; see {!try_map} *)

val default_chunk : pool_size:int -> n:int -> int
(** The static fallback chunk size used when no cost probe is possible
    (the {!try_map} timeout path, {!parallel_iteri}): [n] items split
    into ~4 tasks per worker by {e ceiling} division, never below a
    floor of 2 items per chunk — so small sweeps ([n < 4 * pool_size],
    where floor division used to degenerate to one task per item) stay
    coarse enough to amortise queue traffic.
    @raise Invalid_argument when [pool_size < 1] or [n < 0]. *)

val parallel_map : ?pool:Pool.t -> ?chunk:int -> ('a -> 'b) -> 'a list -> 'b list
(** [parallel_map ?pool ?chunk f xs] is [List.map f xs], computed on
    the pool.  [chunk] groups that many consecutive items into one
    pool task (default: probe-tuned, see the chunking note above);
    results are re-assembled in submission order either way.  If any
    [f x] raises, the join point raises {!Task_error} for the lowest
    failing index after all tasks settle. *)

val parallel_iteri : ?pool:Pool.t -> ?chunk:int -> (int -> 'a -> unit) -> 'a list -> unit
(** [parallel_iteri ?pool f xs] runs [f i x] for every item.  The
    effects of distinct tasks run concurrently (write to disjoint
    state, e.g. distinct array slots); completion order is
    unspecified but the join only returns once every task settled.
    No per-item result list is materialised — each chunk reports only
    its first failure.  Failures raise {!Task_error} as in
    {!parallel_map}. *)

val map_reduce :
  ?pool:Pool.t ->
  ?chunk:int ->
  map:('a -> 'b) ->
  reduce:('c -> 'b -> 'c) ->
  'c ->
  'a list ->
  'c
(** [map_reduce ?pool ~map ~reduce init xs] computes every [map x] on
    the pool, then folds [reduce] over the results {e at the join
    point, left-to-right in submission order} — so it equals
    [List.fold_left reduce init (List.map map xs)] exactly, with no
    associativity requirement on [reduce].  Parallelism covers the
    [map] phase, which is where sweep time goes. *)

val try_map :
  ?pool:Pool.t -> ?timeout:float -> ('a -> 'b) -> 'a list -> 'b outcome list
(** Like {!parallel_map} but total: per-task outcomes instead of a
    re-raise, one per input in submission order.  [?timeout] (seconds,
    per task) marks a straggler {!Timed_out} and lets the rest of the
    sweep continue — the straggler's domain keeps running until its
    task returns (domains cannot be cancelled) and its late result is
    discarded.  Timeouts are measured from task start; on the
    sequential path they are applied after the fact (the task runs to
    completion, then is marked).  The joiner only polls (1 ms) while
    at least one started task could still expire; with no task
    overdue-eligible it blocks on a condition, and without [?timeout]
    the join never polls at all.  A run where no task times out is
    deterministic; [Timed_out] outcomes themselves depend on machine
    speed, which is the point. *)

val map_seeded :
  ?pool:Pool.t ->
  ?chunk:int ->
  rng:Es_util.Rng.t ->
  (Es_util.Rng.t -> 'a -> 'b) ->
  'a list ->
  'b list
(** [map_seeded ~rng f xs] gives each task its own generator, derived
    with [Rng.split rng] {e up front, in submission order} — so the
    streams tasks consume are a function of the input list alone,
    never of scheduling.  This is the only safe way to use randomness
    under [parallel_map]: a shared generator mutated from several
    domains would tear its state and destroy reproducibility. *)
