(** Fixed-size domain pool over sharded work-stealing deques.

    Workers are spawned once at {!create} and reused for every task
    until {!shutdown}: spawning a domain costs orders of magnitude
    more than running a typical sweep repetition, so the pool
    amortises it across the whole experiment run.

    Each worker owns a private mutex-guarded deque; submission
    distributes tasks round-robin across the deques and a worker whose
    deque runs dry steals from the others, so no single lock is on the
    hot path ({!submit_batch} takes each shard lock once per batch,
    not once per task).  Idle workers park on a condition variable
    that is signalled per new task and broadcast only at shutdown.
    Per-worker executed/stolen task counts and pool-wide park/batch
    counts are reported through [Es_obs] ([par.pool.*]).

    Tasks are [unit -> unit] thunks; they may run in any order and a
    task must not raise: the combinators in {!Par} wrap user functions
    so exceptions are captured and re-raised at the join point; a raw
    {!submit} task that does raise is recorded and re-raised at
    {!shutdown} rather than silently killing a worker. *)

type t

val create : domains:int -> unit -> t
(** [create ~domains ()] spawns [domains] worker domains parked on
    empty deques.  Requires [domains >= 1].  Keep [domains] at or
    below [Domain.recommended_domain_count () - 1] for throughput;
    more is legal (they time-share). *)

val size : t -> int
(** Number of worker domains. *)

val submit : t -> (unit -> unit) -> unit
(** Enqueue one task on the next shard (round-robin) and wake at most
    one parked worker.  @raise Invalid_argument after {!shutdown}. *)

val submit_batch : t -> (unit -> unit) array -> unit
(** [submit_batch pool tasks] enqueues the whole batch, interleaving
    it across the worker deques (task [j] of the batch lands on shard
    [(start + j) mod domains]) with one lock acquisition per shard,
    then wakes at most [Array.length tasks] parked workers.  This is
    what the {!Par} combinators use: per-task queue traffic is the
    overhead that made fine chunks unprofitable.
    @raise Invalid_argument after {!shutdown}. *)

val shutdown : t -> unit
(** Graceful shutdown: workers drain every deque (their own and by
    stealing), then exit and are joined.  Idempotent.  If any raw
    {!submit} task raised, the first such exception is re-raised here
    (combinator-wrapped tasks never raise). *)

val with_pool : domains:int -> (t -> 'a) -> 'a
(** [with_pool ~domains f] runs [f] with a fresh pool and shuts it
    down afterwards, whether [f] returns or raises. *)

val in_worker : unit -> bool
(** [true] when called from inside a pool worker.  {!Par} combinators
    use this to run nested parallelism inline instead of deadlocking
    on a deque their own worker must drain. *)
