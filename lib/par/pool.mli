(** Fixed-size domain pool with a shared work queue.

    Workers are spawned once at {!create} and reused for every task
    until {!shutdown}: spawning a domain costs orders of magnitude
    more than running a typical sweep repetition, so the pool
    amortises it across the whole experiment run.

    Tasks are [unit -> unit] thunks executed FIFO.  A task must not
    raise: the combinators in {!Par} wrap user functions so exceptions
    are captured and re-raised at the join point; a raw {!submit} task
    that does raise is recorded and re-raised at {!shutdown} rather
    than silently killing a worker. *)

type t

val create : domains:int -> unit -> t
(** [create ~domains ()] spawns [domains] worker domains blocked on an
    empty queue.  Requires [domains >= 1].  Keep [domains] at or below
    [Domain.recommended_domain_count () - 1] for throughput; more is
    legal (they time-share). *)

val size : t -> int
(** Number of worker domains. *)

val submit : t -> (unit -> unit) -> unit
(** Enqueue a task.  @raise Invalid_argument after {!shutdown}. *)

val shutdown : t -> unit
(** Graceful shutdown: workers drain the queue, then exit and are
    joined.  Idempotent.  If any raw {!submit} task raised, the first
    such exception is re-raised here (combinator-wrapped tasks never
    raise). *)

val with_pool : domains:int -> (t -> 'a) -> 'a
(** [with_pool ~domains f] runs [f] with a fresh pool and shuts it
    down afterwards, whether [f] returns or raises. *)

val in_worker : unit -> bool
(** [true] when called from inside a pool worker.  {!Par} combinators
    use this to run nested parallelism inline instead of deadlocking
    on a queue their own worker must drain. *)
