let mean xs =
  assert (Array.length xs > 0);
  Array.fold_left ( +. ) 0. xs /. float_of_int (Array.length xs)

let variance xs =
  let n = Array.length xs in
  if n < 2 then 0.
  else begin
    let m = mean xs in
    let acc = Array.fold_left (fun a x -> a +. ((x -. m) *. (x -. m))) 0. xs in
    acc /. float_of_int (n - 1)
  end

let stddev xs = sqrt (variance xs)

let min xs =
  assert (Array.length xs > 0);
  Array.fold_left Float.min xs.(0) xs

let max xs =
  assert (Array.length xs > 0);
  Array.fold_left Float.max xs.(0) xs

let quantile xs q =
  assert (Array.length xs > 0);
  assert (0. <= q && q <= 1.);
  let sorted = Array.copy xs in
  Array.sort Float.compare sorted;
  let n = Array.length sorted in
  let pos = q *. float_of_int (n - 1) in
  let lo = int_of_float (Float.floor pos) in
  let hi = Stdlib.min (lo + 1) (n - 1) in
  let frac = pos -. float_of_int lo in
  ((1. -. frac) *. sorted.(lo)) +. (frac *. sorted.(hi))

let median xs = quantile xs 0.5

let geometric_mean xs =
  assert (Array.length xs > 0);
  let acc =
    Array.fold_left
      (fun a x ->
        assert (x > 0.);
        a +. log x)
      0. xs
  in
  exp (acc /. float_of_int (Array.length xs))

let summary xs =
  Printf.sprintf "%.4g ± %.2g [%.4g, %.4g]" (mean xs) (stddev xs) (min xs) (max xs)

type online = { mutable count : int; mutable m : float; mutable s : float }

let online_create () = { count = 0; m = 0.; s = 0. }

let online_add o x =
  o.count <- o.count + 1;
  let delta = x -. o.m in
  o.m <- o.m +. (delta /. float_of_int o.count);
  o.s <- o.s +. (delta *. (x -. o.m))

let online_count o = o.count
let online_mean o = o.m

let online_stddev o =
  if o.count < 2 then 0. else sqrt (o.s /. float_of_int (o.count - 1))
