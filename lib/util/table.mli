(** ASCII table rendering for the experiment harness.

    Every experiment in [bin/experiments.ml] prints its results through
    this module so that all tables of the reproduction share one layout
    (aligned columns, a header rule, optional caption), making the
    output directly comparable with the paper's tables. *)

type t
(** A table under construction. *)

val create : columns:string list -> t
(** [create ~columns] starts a table with the given header.  Every row
    added later must have the same arity. *)

val add_row : t -> string list -> unit
(** Append a row of pre-rendered cells.  Raises [Invalid_argument] on
    arity mismatch.

    @raise Invalid_argument on a row arity mismatch with the header. *)

val add_float_row : t -> ?fmt:(float -> string) -> string -> float list -> unit
(** [add_float_row t label xs] appends [label :: map fmt xs].  The
    default [fmt] is {!Es_util.Futil.fmt_g}.

    @raise Invalid_argument on a row arity mismatch with the header. *)

val render : ?caption:string -> t -> string
(** Render with padded, right-aligned numeric-looking cells and a rule
    under the header. *)

val print : ?caption:string -> t -> unit
(** [render] followed by [print_string] and a trailing newline. *)

val render_csv : t -> string
(** Comma-separated rendering (header + rows); cells containing commas
    or quotes are quoted.  For piping experiment output into plotting
    tools. *)
