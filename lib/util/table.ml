type t = { columns : string list; mutable rows : string list list }

let create ~columns = { columns; rows = [] }

let add_row t row =
  if List.length row <> List.length t.columns then
    invalid_arg "Table.add_row: arity mismatch";
  t.rows <- row :: t.rows

let add_float_row t ?(fmt = Futil.fmt_g) label xs =
  add_row t (label :: List.map fmt xs)

(* A cell is "numeric-looking" when it parses as a float; those are
   right-aligned, labels are left-aligned. *)
let numericp s = match float_of_string_opt s with Some _ -> true | None -> false

let render ?caption t =
  let rows = List.rev t.rows in
  let all = t.columns :: rows in
  let ncols = List.length t.columns in
  let widths = Array.make ncols 0 in
  let record row =
    List.iteri (fun i cell -> widths.(i) <- max widths.(i) (String.length cell)) row
  in
  List.iter record all;
  let buf = Buffer.create 1024 in
  (match caption with
  | Some c ->
    Buffer.add_string buf c;
    Buffer.add_char buf '\n'
  | None -> ());
  let pad i cell =
    let w = widths.(i) in
    let n = w - String.length cell in
    if numericp cell then String.make n ' ' ^ cell else cell ^ String.make n ' '
  in
  let emit_row row =
    List.iteri
      (fun i cell ->
        if i > 0 then Buffer.add_string buf "  ";
        Buffer.add_string buf (pad i cell))
      row;
    Buffer.add_char buf '\n'
  in
  emit_row t.columns;
  let total = Array.fold_left ( + ) 0 widths + (2 * (ncols - 1)) in
  Buffer.add_string buf (String.make total '-');
  Buffer.add_char buf '\n';
  List.iter emit_row rows;
  Buffer.contents buf

(* stdout is this entry point's contract: the experiment harness calls
   it to emit result tables directly *)
let print ?caption t =
  print_string (render ?caption t);
  print_newline ()
[@@lint.allow "E004"]

let render_csv t =
  let buf = Buffer.create 512 in
  let escape cell =
    if String.exists (fun c -> c = ',' || c = '"' || c = '\n') cell then
      "\"" ^ String.concat "\"\"" (String.split_on_char '"' cell) ^ "\""
    else cell
  in
  let emit row =
    Buffer.add_string buf (String.concat "," (List.map escape row));
    Buffer.add_char buf '\n'
  in
  emit t.columns;
  List.iter emit (List.rev t.rows);
  Buffer.contents buf
