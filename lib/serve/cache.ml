module Obs = Es_obs.Obs

(* Outcomes are stored in canonical task order; a hit permutes them
   back into the request's labeling.  Scalars (energy, makespan) are
   label-invariant. *)
type exact_payload = {
  c_energy : float;
  c_makespan : float;
  c_speeds : float array;
  c_engine : string;
  c_exact : bool;
  c_reexec : int list; (* canonical positions, sorted *)
}

type exact_entry =
  | E_solved of exact_payload
  | E_infeasible of string
  | E_rejected of string

type scaled_entry = {
  s_speeds : float array; (* canonical order *)
  s_w0 : float;
  s_d0 : float;
  s_engine : string;
}

type t = {
  capacity : int;
  exact : (string, exact_entry) Hashtbl.t;
  exact_fifo : string Queue.t;
  scaled : (string, scaled_entry) Hashtbl.t;
  scaled_fifo : string Queue.t;
}

let c_hit = Obs.counter "serve.cache.hit"
let c_miss = Obs.counter "serve.cache.miss"
let c_rescale_hit = Obs.counter "serve.cache.rescale_hit"
let c_rescale_reject = Obs.counter "serve.cache.rescale_reject"
let c_insert = Obs.counter "serve.cache.insert"
let c_evict = Obs.counter "serve.cache.evict"

let create ?(capacity = 4096) () =
  {
    capacity = max 1 capacity;
    exact = Hashtbl.create 64;
    exact_fifo = Queue.create ();
    scaled = Hashtbl.create 64;
    scaled_fifo = Queue.create ();
  }

let bump t tbl fifo key value =
  if Hashtbl.mem tbl key then Hashtbl.replace tbl key value
  else begin
    if Queue.length fifo >= t.capacity then begin
      match Queue.take_opt fifo with
      | Some old ->
        Hashtbl.remove tbl old;
        Obs.incr c_evict
      | None -> ()
    end;
    Hashtbl.add tbl key value;
    Queue.add key fifo;
    Obs.incr c_insert
  end

(* Strict interiority w.r.t. the speed bounds: all Lagrange
   multipliers of the bound constraints are zero, so the cached point
   is the unbounded optimum and rescales covariantly. *)
let interior ~fmin ~fmax speeds =
  let margin = 1e-4 in
  Array.for_all
    (fun s -> s > fmin *. (1. +. margin) && s < fmax *. (1. -. margin))
    speeds

type found = {
  status : Protocol.status;
  disposition : Protocol.disposition;
}

let insert t ~(inst : Protocol.instance) ~(canon : Canon.t)
    (status : Protocol.status) =
  match status with
  | Protocol.Solved s ->
    let n = Array.length s.speeds in
    let c_speeds = Array.make n 0. in
    Array.iteri (fun i p -> c_speeds.(p) <- s.speeds.(i)) canon.perm;
    let c_reexec =
      List.sort Int.compare (List.map (fun i -> canon.perm.(i)) s.reexecuted)
    in
    bump t t.exact t.exact_fifo canon.exact_key
      (E_solved
         {
           c_energy = s.energy;
           c_makespan = s.makespan;
           c_speeds;
           c_engine = s.engine;
           c_exact = s.exact;
           c_reexec;
         });
    (match (canon.scaled_key, inst.model, s.reexecuted) with
    | Some key, Speed.Continuous { fmin; fmax }, []
      when s.exact
           && interior ~fmin ~fmax s.speeds
           && canon.total_work > 0.
           && inst.deadline > 0. ->
      bump t t.scaled t.scaled_fifo key
        {
          s_speeds = c_speeds;
          s_w0 = canon.total_work;
          s_d0 = inst.deadline;
          s_engine = s.engine;
        }
    | _ -> ())
  | Protocol.Infeasible msg ->
    bump t t.exact t.exact_fifo canon.exact_key (E_infeasible msg)
  | Protocol.Rejected msg ->
    bump t t.exact t.exact_fifo canon.exact_key (E_rejected msg)
  | Protocol.Shed _ | Protocol.Over_budget _ -> ()

let try_rescale ~(inst : Protocol.instance) ~order ~(canon : Canon.t)
    (e : scaled_entry) =
  if canon.total_work <= 0. || inst.deadline <= 0. then None
  else begin
    let factor = canon.total_work /. e.s_w0 /. (inst.deadline /. e.s_d0) in
    let n = Array.length inst.weights in
    let speeds =
      Array.init n (fun i -> e.s_speeds.(canon.perm.(i)) *. factor)
    in
    match
      let mapping = Mapping.make ~p:(Array.length order) (Protocol.dag inst) ~order in
      let sched = Schedule.of_speeds mapping ~speeds in
      match
        Validate.check ~deadline:inst.deadline ?rel:inst.rel ~model:inst.model
          sched
      with
      | [] -> Some (Protocol.solved_of_schedule ~engine:e.s_engine ~exact:true sched)
      | _ :: _ -> None
    with
    | exception Invalid_argument _ -> None
    | None -> None
    | Some solved ->
      Some { status = Protocol.Solved solved; disposition = Protocol.Rescale_hit }
  end

let lookup t ~(inst : Protocol.instance) ~order ~(canon : Canon.t) =
  match Hashtbl.find_opt t.exact canon.exact_key with
  | Some (E_solved p) ->
    Obs.incr c_hit;
    let n = Array.length inst.weights in
    let speeds = Array.init n (fun i -> p.c_speeds.(canon.perm.(i))) in
    let reexecuted =
      List.filter
        (fun i -> List.exists (Int.equal canon.perm.(i)) p.c_reexec)
        (List.init n (fun i -> i))
    in
    Some
      {
        status =
          Protocol.Solved
            {
              energy = p.c_energy;
              speeds;
              makespan = p.c_makespan;
              engine = p.c_engine;
              exact = p.c_exact;
              reexecuted;
            };
        disposition = Protocol.Hit;
      }
  | Some (E_infeasible msg) ->
    Obs.incr c_hit;
    Some { status = Protocol.Infeasible msg; disposition = Protocol.Hit }
  | Some (E_rejected msg) ->
    Obs.incr c_hit;
    Some { status = Protocol.Rejected msg; disposition = Protocol.Hit }
  | None -> (
    let scaled =
      match canon.scaled_key with
      | None -> None
      | Some key -> (
        match Hashtbl.find_opt t.scaled key with
        | None -> None
        | Some e -> (
          match try_rescale ~inst ~order ~canon e with
          | Some f ->
            Obs.incr c_rescale_hit;
            Some f
          | None ->
            Obs.incr c_rescale_reject;
            None))
    in
    match scaled with
    | Some f -> Some f
    | None ->
      Obs.incr c_miss;
      None)
