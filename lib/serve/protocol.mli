(** The `esservd` wire protocol: newline-delimited JSON.

    One request per line in, one response per line out, in request
    order.  A request carries the payload class real users send (cf.
    the Gurobi formulation of SNIPPETS.md Snippet 2): a task set with
    weights and precedence edges, a processor budget (or an explicit
    mapping), a frequency menu (one of the paper's four speed models),
    a deadline, and optionally the TRI-CRIT reliability parameters and
    a per-request solve-time budget.

    {v
    request  := { "id"?: json,              // echoed verbatim
                  "tasks": [w, ...],        // weights, > 0
                  "edges"?: [[a, b], ...],  // precedence, default []
                  "procs"?: int,            // default 1
                  "mapping"?: [[t, ...], ...], // per-processor order;
                                            // default: list scheduling
                  "model": model,
                  "deadline": num,
                  "rel"?: { "lambda0"?: num, "sensitivity"?: num,
                            "frel"?: num }, // bounds from the model
                  "budget_s"?: num }        // per-request time budget
    model    := { "kind": "continuous", "fmin": num, "fmax": num }
              | { "kind": "discrete" | "vdd", "levels": [num, ...] }
              | { "kind": "incremental", "fmin": num, "fmax": num,
                  "delta": num }
    v}

    Responses always carry ["id"] (null when the request had none) and
    ["status"]; a solved response adds the energy, worst-case makespan,
    per-task effective speeds (weight / first-execution time, in task
    order), the engine that produced it, and the cache disposition
    ("miss", "hit" or "rescale-hit").  Malformed or rejected requests
    get ["status": "error"] with a message — the session continues;
    admission control responds ["status": "shed"]; a blown time budget
    responds ["status": "over-budget"].  *)

type instance = {
  weights : (float[@units "work"]) array;
  edges : (Dag.task * Dag.task) list;
  procs : int;
  order : Dag.task list array option;  (** explicit mapping, if given *)
  model : Speed.t;
  deadline : (float[@units "time"]);
  rel : Rel.params option;
}

type request = {
  id : Es_obs.Obs_json.t;  (** echoed verbatim; [Null] when absent *)
  inst : instance;
  budget_s : (float[@units "time"]) option;
}

type parsed = Request of request | Malformed of string

val parse_line : string -> parsed
(** Total: every parse or shape error becomes [Malformed]. *)

val dag : instance -> Dag.t
(** The task graph of the instance.

    @raise Invalid_argument on a malformed task graph (nonpositive
    weight, out-of-range or self-loop edge, or cycle). *)

val resolve_order : instance -> Dag.task list array
(** The per-processor execution orders actually used: the explicit
    ["mapping"] when given, otherwise bottom-level list scheduling of
    the task graph on [procs] processors — a deterministic function of
    the instance.

    @raise Invalid_argument on a malformed task graph (nonpositive
    weight, out-of-range or self-loop edge, or cycle) or an invalid
    mapping (not a partition, precedence violated). *)

val resolve_mapping : instance -> Mapping.t
(** [Mapping.make] over {!resolve_order}.

    @raise Invalid_argument on a malformed task graph or mapping (see
    {!resolve_order}). *)

type disposition = Cold | Hit | Rescale_hit

val disposition_name : disposition -> string
(** ["miss"], ["hit"], ["rescale-hit"]. *)

type solved = {
  energy : (float[@units "energy"]);
  speeds : (float[@units "freq"]) array;
      (** effective speed per task: weight / first-execution time *)
  makespan : (float[@units "time"]);
  engine : string;
  exact : bool;
  reexecuted : Dag.task list;
}

type status =
  | Solved of solved
  | Infeasible of string  (** the deadline cannot be met *)
  | Rejected of string  (** malformed, invalid or unsupported request *)
  | Shed of string  (** admission control refused the request *)
  | Over_budget of { budget_s : (float[@units "time"]) }

type response = {
  rid : Es_obs.Obs_json.t;
  status : status;
  cache : disposition option;  (** [None] when no lookup happened *)
  self_check : bool option;
      (** sampled rescale-hit re-solve verdict; [None] = not sampled *)
}

val render : response -> string
(** One compact JSON line (no trailing newline). *)

val solved_of_schedule :
  engine:string -> exact:bool -> Schedule.t -> solved
(** Extract the response payload from a solver schedule.

    @raise Invalid_argument on a malformed task graph (nonpositive
    weight, out-of-range or self-loop edge, or cycle). *)
