(** Structural solution cache.

    Two tables, both keyed by {!Canon} encodings (full encodings, so
    key equality is structural equality — see {!Canon}):

    - {b exact}: keyed by [exact_key]; stores the complete outcome
      (solved payload in canonical task order, or the infeasible /
      rejected verdict).  A hit is answered by permuting the cached
      arrays into the request's labeling — energy and makespan are
      label-invariant scalars, so no re-solve and no schedule
      reconstruction happens.
    - {b scaled}: keyed by [scaled_key] (CONTINUOUS, no reliability);
      stores the canonical-order optimal speeds together with the
      cached instance's total work [W₀] and deadline [D₀].  An entry
      is written only when the cached solution is {e exact} and
      strictly {e interior} to its [fmin]/[fmax] bounds: interiority
      means the bound multipliers are zero, so the cached point is the
      optimum of the unbounded convex program, which is
      scale-covariant — scaling work by [c] and deadline by [d] maps
      the optimum to speeds [×c/d] (energy [×c³/d²], the D⁻² law
      checked by escheck's deadline-scaling relation).  At lookup time
      the rescaled speeds are re-validated ({!Validate.check} against
      the request's own deadline, bounds and model); if the rescaled
      point is admissible it is optimal for the request by the same
      convexity argument, otherwise the request falls through to a
      cold solve.

    Both tables are FIFO-bounded.  The cache is single-domain state:
    the server does all lookups and inserts on the coordinating
    thread, never inside pool workers. *)

type t

val create : ?capacity:int -> unit -> t
(** [capacity] bounds each table's entry count (default 4096); the
    oldest insertion is evicted first. *)

type found = {
  status : Protocol.status;
  disposition : Protocol.disposition;  (** [Hit] or [Rescale_hit] *)
}

val lookup :
  t ->
  inst:Protocol.instance ->
  order:Dag.task list array ->
  canon:Canon.t ->
  found option
(** Exact key first, then the scaled table.  [None] means cold: no
    entry, or a scaled entry whose rescaling failed re-validation.
    Total — internal schedule reconstruction failures count as misses.
    Maintains the [serve.cache.{hit,miss,rescale_hit,rescale_reject}]
    counters. *)

val insert :
  t -> inst:Protocol.instance -> canon:Canon.t -> Protocol.status -> unit
(** Record a cold outcome.  [Solved], [Infeasible] and [Rejected] go
    to the exact table; [Solved] additionally feeds the scaled table
    when eligible (see above).  [Shed] and [Over_budget] are never
    cached.  Maintains [serve.cache.{insert,evict}]. *)
