module Json = Es_obs.Obs_json

type instance = {
  weights : float array;
  edges : (Dag.task * Dag.task) list;
  procs : int;
  order : Dag.task list array option;
  model : Speed.t;
  deadline : float;
  rel : Rel.params option;
}

type request = {
  id : Json.t;
  inst : instance;
  budget_s : float option;
}

type parsed = Request of request | Malformed of string

(* ---- parsing ------------------------------------------------------ *)

exception Bad of string

let bad fmt = Printf.ksprintf (fun s -> raise (Bad s)) fmt

let num field = function
  | Json.Num x when Float.is_finite x -> x
  | _ -> bad "field %S must be a finite number" field

let int_field field j =
  let x = num field j in
  if Float.is_integer x && Float.abs x < 1e9 then int_of_float x
  else bad "field %S must be an integer" field

let num_array field = function
  | Json.List items -> Array.of_list (List.map (num field) items)
  | _ -> bad "field %S must be an array of numbers" field

let int_list field = function
  | Json.List items -> List.map (int_field field) items
  | _ -> bad "field %S must be an array of integers" field

let member name j = Json.member name j

let required name j =
  match member name j with
  | Some v -> v
  | None -> bad "missing required field %S" name

let parse_edges j =
  match member "edges" j with
  | None -> []
  | Some (Json.List items) ->
    List.map
      (fun pair ->
        match pair with
        | Json.List [ a; b ] -> (int_field "edges" a, int_field "edges" b)
        | _ -> bad "field \"edges\" must contain [from, to] pairs")
      items
  | Some _ -> bad "field \"edges\" must be an array of [from, to] pairs"

let parse_order j =
  match member "mapping" j with
  | None -> None
  | Some (Json.List procs) ->
    Some (Array.of_list (List.map (int_list "mapping") procs))
  | Some _ -> bad "field \"mapping\" must be an array of task-id arrays"

(* Speed/Rel constructors validate their arguments and raise
   [Invalid_argument]; surface those as parse errors (the handlers are
   written out at each site so the exception stays locally caught). *)
let parse_model j =
  let m = required "model" j in
  let kind =
    match member "kind" m with
    | Some (Json.Str k) -> k
    | _ -> bad "field \"model\" needs a \"kind\" string"
  in
  try
    match kind with
  | "continuous" ->
    Speed.continuous ~fmin:(num "fmin" (required "fmin" m))
      ~fmax:(num "fmax" (required "fmax" m))
  | "discrete" -> Speed.discrete (num_array "levels" (required "levels" m))
  | "vdd" -> Speed.vdd_hopping (num_array "levels" (required "levels" m))
  | "incremental" ->
    Speed.incremental
      ~fmin:(num "fmin" (required "fmin" m))
      ~fmax:(num "fmax" (required "fmax" m))
      ~delta:(num "delta" (required "delta" m))
    | k -> bad "unknown model kind %S" k
  with Invalid_argument msg -> bad "invalid model: %s" msg

let parse_rel ~model j =
  match member "rel" j with
  | None -> None
  | Some r -> (
    let opt name = Option.map (num name) (member name r) in
    try
      Some
        (Rel.make ?lambda0:(opt "lambda0") ?sensitivity:(opt "sensitivity")
           ?frel:(opt "frel") ~fmin:(Speed.fmin model) ~fmax:(Speed.fmax model) ())
    with Invalid_argument msg -> bad "invalid rel: %s" msg)

let parse_line line =
  match Json.of_string line with
  | exception Json.Parse_error msg -> Malformed ("malformed JSON: " ^ msg)
  | Json.Obj _ as j -> (
    try
      let model = parse_model j in
      let inst =
        {
          weights = num_array "tasks" (required "tasks" j);
          edges = parse_edges j;
          procs =
            (match member "procs" j with
            | None -> 1
            | Some p ->
              let p = int_field "procs" p in
              if p < 1 then bad "field \"procs\" must be >= 1" else p);
          order = parse_order j;
          model;
          deadline = num "deadline" (required "deadline" j);
          rel = parse_rel ~model j;
        }
      in
      let budget_s =
        match member "budget_s" j with
        | None -> None
        | Some b ->
          let b = num "budget_s" b in
          if b <= 0. then bad "field \"budget_s\" must be > 0" else Some b
      in
      Request
        { id = Option.value ~default:Json.Null (member "id" j); inst; budget_s }
    with Bad msg -> Malformed msg)
  | _ -> Malformed "request must be a JSON object"

(* ---- instance resolution ------------------------------------------ *)

let dag inst = Dag.make ?labels:None ~weights:inst.weights ~edges:inst.edges

let resolve_order inst =
  match inst.order with
  | Some order -> order
  | None ->
    let d = dag inst in
    let m = List_sched.schedule d ~p:inst.procs ~priority:List_sched.Bottom_level in
    Array.init (Mapping.p m) (Mapping.order m)

let resolve_mapping inst =
  let d = dag inst in
  match inst.order with
  | Some order -> Mapping.make ~p:(Array.length order) d ~order
  | None -> List_sched.schedule d ~p:inst.procs ~priority:List_sched.Bottom_level

(* ---- responses ---------------------------------------------------- *)

type disposition = Cold | Hit | Rescale_hit

let disposition_name = function
  | Cold -> "miss"
  | Hit -> "hit"
  | Rescale_hit -> "rescale-hit"

type solved = {
  energy : float;
  speeds : float array;
  makespan : float;
  engine : string;
  exact : bool;
  reexecuted : Dag.task list;
}

type status =
  | Solved of solved
  | Infeasible of string
  | Rejected of string
  | Shed of string
  | Over_budget of { budget_s : float }

type response = {
  rid : Json.t;
  status : status;
  cache : disposition option;
  self_check : bool option;
}

let solved_of_schedule ~engine ~exact sched =
  let dag = Schedule.dag sched in
  let n = Dag.n dag in
  let speeds =
    Array.init n (fun i ->
        match Schedule.executions sched i with
        | e :: _ -> Dag.weight dag i /. Schedule.exec_time e
        | [] -> 0. (* Schedule.make guarantees >= 1 execution *))
  in
  let reexecuted =
    List.filter (Schedule.reexecuted sched) (List.init n (fun i -> i))
  in
  {
    energy = Schedule.energy sched;
    speeds;
    makespan = Schedule.makespan sched;
    engine;
    exact;
    reexecuted;
  }

let render r =
  let open Json in
  let nums xs = List (Array.to_list (Array.map (fun x -> Num x) xs)) in
  let ints xs = List (List.map (fun i -> Num (float_of_int i)) xs) in
  let cache_field =
    match r.cache with
    | None -> []
    | Some d -> [ ("cache", Str (disposition_name d)) ]
  in
  let self_check_field =
    match r.self_check with
    | None -> []
    | Some ok -> [ ("self_check", Str (if ok then "ok" else "fail")) ]
  in
  let fields =
    match r.status with
    | Solved s ->
      [ ("id", r.rid); ("status", Str "ok") ]
      @ cache_field
      @ [
          ("engine", Str s.engine);
          ("exact", Bool s.exact);
          ("energy", Num s.energy);
          ("makespan", Num s.makespan);
          ("speeds", nums s.speeds);
        ]
      @ (if s.reexecuted = [] then [] else [ ("reexecuted", ints s.reexecuted) ])
      @ self_check_field
    | Infeasible msg ->
      [ ("id", r.rid); ("status", Str "infeasible") ]
      @ cache_field
      @ [ ("error", Str msg) ]
    | Rejected msg -> [ ("id", r.rid); ("status", Str "error"); ("error", Str msg) ]
    | Shed msg -> [ ("id", r.rid); ("status", Str "shed"); ("error", Str msg) ]
    | Over_budget { budget_s } ->
      [ ("id", r.rid); ("status", Str "over-budget"); ("budget_s", Num budget_s) ]
  in
  Json.to_compact_string (Obj fields)
