(* Canonical labeling by colour refinement (1-WL) over the task graph
   and the processor chains, with individualization-refinement on tied
   colour classes.  Every ingredient of a colour is itself canonical
   (normalized weights, degrees, chain ranks, previously computed
   colours), so the resulting labeling — and hence the key strings —
   is invariant under any relabeling of tasks or processors. *)

type t = {
  perm : int array;
  exact_key : string;
  scaled_key : string option;
  total_work : float;
}

let f17 x = Printf.sprintf "%.17g" x
let f12 x = Printf.sprintf "%.12g" x

exception Budget
(* Raised when the refinement budget is exhausted; caught at the top of
   [of_instance], which then falls back to the identity labeling. *)

(* Dense ranks (0..k-1) of an array of sort keys.  Any total order
   works for partition refinement; [String.compare] over strings built
   from canonical components keeps the ranking label-independent. *)
let rank_compress keys =
  let n = Array.length keys in
  let idx = Array.init n (fun i -> i) in
  Array.sort (fun a b -> String.compare keys.(a) keys.(b)) idx;
  let colors = Array.make n 0 in
  let c = ref 0 in
  Array.iteri
    (fun k i ->
      if k > 0 && String.compare keys.(idx.(k - 1)) keys.(i) <> 0 then incr c;
      colors.(i) <- !c)
    idx;
  colors

let n_classes colors = Array.fold_left (fun m x -> max m x) (-1) colors + 1

let cmp_edge (a1, b1) (a2, b2) =
  let c = Int.compare a1 a2 in
  if c <> 0 then c else Int.compare b1 b2

let of_instance ~order (inst : Protocol.instance) =
  let n = Array.length inst.weights in
  (* Sum in sorted order: float addition is not associative, so a
     label-order sum would differ in the last bits between relabelings
     of the same instance and split the exact key. *)
  let total_work =
    let w = Array.copy inst.weights in
    Array.sort Float.compare w;
    Array.fold_left ( +. ) 0. w
  in
  (* -- relations ---------------------------------------------------- *)
  let succs = Array.make n [] and preds = Array.make n [] in
  List.iter
    (fun (a, b) ->
      succs.(a) <- b :: succs.(a);
      preds.(b) <- a :: preds.(b))
    inst.edges;
  for i = 0 to n - 1 do
    succs.(i) <- List.sort_uniq Int.compare succs.(i);
    preds.(i) <- List.sort_uniq Int.compare preds.(i)
  done;
  let pnext = Array.make n (-1) and pprev = Array.make n (-1) in
  let chain_rank = Array.make n 0 in
  Array.iter
    (fun chain ->
      let rec go pos prev = function
        | [] -> ()
        | a :: rest ->
          chain_rank.(a) <- pos;
          (match prev with
          | Some p ->
            pnext.(p) <- a;
            pprev.(a) <- p
          | None -> ());
          go (pos + 1) (Some a) rest
      in
      go 0 None chain)
    order;
  (* -- encodings ---------------------------------------------------- *)
  let encode_struct perm =
    (* tasks listed by canonical position *)
    let inv = Array.make n 0 in
    Array.iteri (fun i c -> inv.(c) <- i) perm;
    let w =
      String.concat ","
        (List.init n (fun c -> f12 (inst.weights.(inv.(c)) /. total_work)))
    in
    let e =
      String.concat ","
        (List.map
           (fun (a, b) -> Printf.sprintf "%d>%d" a b)
           (List.sort_uniq cmp_edge
              (List.map (fun (a, b) -> (perm.(a), perm.(b))) inst.edges)))
    in
    (* processors are interchangeable: sort the relabeled chains *)
    let chains =
      List.sort String.compare
        (List.map
           (fun chain ->
             String.concat "."
               (List.map (fun t -> string_of_int perm.(t)) chain))
           (Array.to_list order))
    in
    Printf.sprintf "n=%d;p=%d;w=%s;e=%s;c=%s" n (Array.length order) w e
      (String.concat ";" chains)
  in
  let encode_w17 perm =
    let inv = Array.make n 0 in
    Array.iteri (fun i c -> inv.(c) <- i) perm;
    String.concat "," (List.init n (fun c -> f17 inst.weights.(inv.(c))))
  in
  (* -- individualization-refinement search -------------------------- *)
  let best = ref None in
  let consider perm =
    let s = encode_struct perm in
    let better =
      match !best with
      | None -> true
      | Some (s0, w0, _) ->
        let c = String.compare s s0 in
        c < 0 || (c = 0 && String.compare (encode_w17 perm) w0 < 0)
    in
    if better then best := Some (s, encode_w17 perm, perm)
  in
  (* -- colour refinement + individualization search ------------------ *)
  (* [refine] and [search] live inside the [try] so the [Budget] raise
     is syntactically within its own handler (the effects analysis
     charges closure bodies at their definition point). *)
  let budget = ref 1000 in
  (try
     let refine colors0 =
       let colors = Array.copy colors0 in
       let stable = ref false in
       while not !stable do
         decr budget;
         if !budget < 0 then raise Budget;
         let nbr l =
           String.concat ","
             (List.map string_of_int
                (List.sort Int.compare (List.map (fun j -> colors.(j)) l)))
         in
         let sigs =
           Array.init n (fun i ->
               Printf.sprintf "%d|%s|%s|%d|%d" colors.(i) (nbr succs.(i))
                 (nbr preds.(i))
                 (if pnext.(i) >= 0 then colors.(pnext.(i)) else -1)
                 (if pprev.(i) >= 0 then colors.(pprev.(i)) else -1))
         in
         let colors' = rank_compress sigs in
         if n_classes colors' = n_classes colors then stable := true;
         Array.blit colors' 0 colors 0 n
       done;
       colors
     in
     let rec search colors =
       let colors = refine colors in
       let k = n_classes colors in
       if k = n then consider (Array.copy colors)
       else begin
         (* smallest non-singleton class, lowest colour on ties *)
         let sizes = Array.make k 0 in
         Array.iter (fun c -> sizes.(c) <- sizes.(c) + 1) colors;
         let target = ref (-1) in
         for c = k - 1 downto 0 do
           if sizes.(c) >= 2 && (!target < 0 || sizes.(c) <= sizes.(!target))
           then target := c
         done;
         for m = 0 to n - 1 do
           if colors.(m) = !target then begin
             (* split m off below the rest of its class *)
             let c' = Array.map (fun x -> (2 * x) + 1) colors in
             c'.(m) <- 2 * colors.(m);
             search c'
           end
         done
       end
     in
     let initial =
       rank_compress
         (Array.init n (fun i ->
              Printf.sprintf "%s|%d|%d|%d"
                (f12 (inst.weights.(i) /. total_work))
                (List.length preds.(i))
                (List.length succs.(i))
                chain_rank.(i)))
     in
     search initial
   with Budget -> ());
  let perm =
    match !best with
    | Some (_, _, perm) -> perm
    | None -> Array.init n (fun i -> i) (* budget blown before any leaf *)
  in
  let struct_enc = encode_struct perm in
  let model_enc =
    match inst.model with
    | Speed.Continuous { fmin; fmax } ->
      Printf.sprintf "cont:%s:%s" (f17 fmin) (f17 fmax)
    | Speed.Discrete levels ->
      "disc:" ^ String.concat ":" (List.map f17 (Array.to_list levels))
    | Speed.Vdd_hopping levels ->
      "vdd:" ^ String.concat ":" (List.map f17 (Array.to_list levels))
    | Speed.Incremental { fmin; fmax; delta } ->
      Printf.sprintf "incr:%s:%s:%s" (f17 fmin) (f17 fmax) (f17 delta)
  in
  let rel_enc =
    match inst.rel with
    | None -> "norel"
    | Some (r : Rel.params) ->
      Printf.sprintf "rel:%s:%s:%s:%s:%s" (f17 r.lambda0) (f17 r.sensitivity)
        (f17 r.fmin) (f17 r.fmax) (f17 r.frel)
  in
  let exact_key =
    Printf.sprintf "x1|%s|W=%s|w17=%s|m=%s|d=%s|r=%s" struct_enc
      (f17 total_work) (encode_w17 perm) model_enc (f17 inst.deadline) rel_enc
  in
  let scaled_key =
    match (inst.model, inst.rel) with
    | Speed.Continuous _, None -> Some ("s1|" ^ struct_enc)
    | _ -> None
  in
  { perm; exact_key; scaled_key; total_work }
