(** The serving engine: batched request processing over a structural
    cache, decoupled from transport so the bench harness can drive it
    in-process and [esservd] can wrap it around stdin/stdout or a
    Unix-domain socket.

    {b Batching.}  {!run} reads up to [batch] lines, hands them to
    {!process_batch}, writes the responses (one line each, in request
    order) and flushes — so a client that pipes its whole session and
    half-closes (what the cram tests and [esservd --connect] do) gets
    every answer; an interactive client wanting per-request turnaround
    uses [--batch 1].

    {b Admission control.}  Within a batch window the first [queue]
    well-formed requests are admitted; the rest are answered
    [status = "shed"] without being looked up or solved.  Malformed
    lines are answered immediately with [status = "error"] and do not
    consume admission slots.  The bound is positional, so a given
    input trace sheds the same requests on every run.

    {b Caching.}  Admitted requests are looked up sequentially, in
    request order, against the cache state left by the {e previous}
    batch (plus a byte-verbatim front table hit first — an identical
    request line short-circuits canonicalization entirely).  Misses
    are solved in parallel on the pool ({!Es_par.Par.parallel_map}:
    order-preserving, exception-safe) and inserted back in request
    order after the join.  Consequently the response stream for a
    given input trace is byte-identical whatever the pool size —
    checked by the bench gate.

    {b Self-check.}  With [selfcheck = k > 0], every [k]-th
    rescale-hit (counted deterministically in admission order) is
    {e also} re-solved cold during the parallel phase; the response
    keeps the rescaled values and reports ["self_check": "ok"|"fail"]
    (energy within 1e-5 relative, speeds within 1e-4).  Disagreements
    bump [serve.selfcheck.fail].

    Per-request service walls are recorded by cache disposition
    ([serve.lat.*] timers, and {!samples} for the bench quantiles).
    The [status = "over-budget"] path compares the solve wall against
    the request's [budget_s] after the fact; it is the one
    machine-dependent response and is excluded from byte-identity
    traces. *)

type config = {
  jobs : int;  (** pool width the transport should create *)
  batch : int;  (** max requests per batch window *)
  queue : int;  (** admission bound per batch window *)
  cache_capacity : int;
  selfcheck : int;  (** re-solve every k-th rescale hit; 0 = off *)
  exact_threshold : int option;  (** forwarded to {!Solver.solve} *)
}

val default_config : config
(** jobs 1, batch 8, queue 64, cache 4096, selfcheck 0. *)

type t

val create : config -> t

val process_batch : t -> pool:Es_par.Pool.t option -> string list -> string list
(** One batch window: parse, admit, look up, solve misses on [pool]
    ([None] = inline), insert, render.  Returns one response line per
    input line, in order, without trailing newlines.  Total: every
    failure mode becomes an error response. *)

val run : t -> pool:Es_par.Pool.t option -> in_channel -> out_channel -> unit
(** Serve until end-of-input.  Flushes after every batch.

    @raise Sys_error when the transport channels fail (e.g. the peer
    closed the connection mid-write). *)

val samples : t -> (string * (float[@units "time"])) list
(** Accumulated per-request service walls, oldest first, tagged with
    the disposition name (["miss"], ["hit"], ["rescale-hit"]). *)
