module Obs = Es_obs.Obs
module Json = Es_obs.Obs_json
module Par = Es_par.Par

type config = {
  jobs : int;
  batch : int;
  queue : int;
  cache_capacity : int;
  selfcheck : int;
  exact_threshold : int option;
}

let default_config =
  {
    jobs = 1;
    batch = 8;
    queue = 64;
    cache_capacity = 4096;
    selfcheck = 0;
    exact_threshold = None;
  }

type t = {
  config : config;
  cache : Cache.t;
  (* byte-verbatim front table: request line -> deterministic outcome *)
  verbatim : (string, Protocol.status) Hashtbl.t;
  verbatim_fifo : string Queue.t;
  mutable rescale_seen : int;
  mutable samples_rev : (string * float) list;
}

let c_requests = Obs.counter "serve.requests"
let c_batches = Obs.counter "serve.batches"
let c_shed = Obs.counter "serve.shed"
let c_malformed = Obs.counter "serve.malformed"
let c_verbatim = Obs.counter "serve.cache.verbatim_hit"
let c_sc_ok = Obs.counter "serve.selfcheck.ok"
let c_sc_fail = Obs.counter "serve.selfcheck.fail"
let t_batch = Obs.timer "serve.batch"
let t_solve = Obs.timer "serve.solve"

let create config =
  {
    config;
    cache = Cache.create ~capacity:config.cache_capacity ();
    verbatim = Hashtbl.create 64;
    verbatim_fifo = Queue.create ();
    rescale_seen = 0;
    samples_rev = [];
  }

let push_sample t tag wall = t.samples_rev <- (tag, wall) :: t.samples_rev

let samples t = List.rev t.samples_rev

let verbatim_insert t line status =
  match status with
  | Protocol.Solved _ | Protocol.Infeasible _ | Protocol.Rejected _ ->
    if not (Hashtbl.mem t.verbatim line) then begin
      if Queue.length t.verbatim_fifo >= t.config.cache_capacity then begin
        match Queue.take_opt t.verbatim_fifo with
        | Some old -> Hashtbl.remove t.verbatim old
        | None -> ()
      end;
      Hashtbl.add t.verbatim line status;
      Queue.add line t.verbatim_fifo
    end
  | Protocol.Shed _ | Protocol.Over_budget _ -> ()

(* ---- the parallel phase ------------------------------------------- *)

type work = { w_req : Protocol.request; w_mapping : Mapping.t }

(* Runs inside pool workers: must not raise (the catch-all turns any
   engine failure into a response) and must not touch shared state —
   walls come from [Obs.now], results travel back through the
   order-preserving join of [Par.parallel_map]. *)
let solve_one exact_threshold (w : work) =
  let t0 = Obs.now () in
  let status =
    try
      match
        Solver.solve ?exact_threshold
          {
            Solver.mapping = w.w_mapping;
            model = w.w_req.inst.model;
            deadline = w.w_req.inst.deadline;
            rel = w.w_req.inst.rel;
          }
      with
      | Ok a ->
        Protocol.Solved
          (Protocol.solved_of_schedule ~engine:a.engine ~exact:a.exact
             a.schedule)
      | Error msg ->
        if String.starts_with ~prefix:"infeasible" msg then
          Protocol.Infeasible msg
        else Protocol.Rejected msg
    with e -> Protocol.Rejected ("solver error: " ^ Printexc.to_string e)
  in
  let wall = Obs.now () -. t0 in
  let status =
    match w.w_req.budget_s with
    | Some b when wall > b -> Protocol.Over_budget { budget_s = b }
    | _ -> status
  in
  (status, wall)

let close rtol a b =
  Float.abs (a -. b) <= rtol *. Float.max 1. (Float.max (Float.abs a) (Float.abs b))

let agree (a : Protocol.solved) (b : Protocol.solved) =
  close 1e-5 a.energy b.energy
  && Array.length a.speeds = Array.length b.speeds
  && Array.for_all2 (fun x y -> close 1e-4 x y) a.speeds b.speeds

(* ---- one batch window --------------------------------------------- *)

type slot =
  | Immediate of Protocol.response
  | Cached of { resp : Protocol.response; check : work option }
  | Cold of {
      req : Protocol.request;
      order : Dag.task list array;
      canon : Canon.t;
      work : work;
      line : string;
      prep : float;
    }

let reply ?cache ?self_check rid status =
  { Protocol.rid; status; cache; self_check }

let classify t ~admitted line =
  let t0 = Obs.now () in
  match Protocol.parse_line line with
  | Protocol.Malformed msg ->
    Obs.incr c_malformed;
    Immediate (reply Json.Null (Protocol.Rejected msg))
  | Protocol.Request req ->
    if !admitted >= t.config.queue then begin
      Obs.incr c_shed;
      Immediate (reply req.id (Protocol.Shed "queue full"))
    end
    else begin
      incr admitted;
      match Hashtbl.find_opt t.verbatim line with
      | Some status ->
        Obs.incr c_verbatim;
        push_sample t "hit" (Obs.now () -. t0);
        Immediate (reply ~cache:Protocol.Hit req.id status)
      | None -> (
        match Protocol.resolve_mapping req.inst with
        | exception Invalid_argument msg ->
          Immediate (reply req.id (Protocol.Rejected ("invalid instance: " ^ msg)))
        | mapping -> (
          let order = Array.init (Mapping.p mapping) (Mapping.order mapping) in
          let canon = Canon.of_instance ~order req.inst in
          match Cache.lookup t.cache ~inst:req.inst ~order ~canon with
          | Some { status; disposition = Protocol.Hit } ->
            push_sample t "hit" (Obs.now () -. t0);
            Immediate (reply ~cache:Protocol.Hit req.id status)
          | Some { status; disposition = (Protocol.Rescale_hit | Protocol.Cold) as d } ->
            push_sample t "rescale-hit" (Obs.now () -. t0);
            t.rescale_seen <- t.rescale_seen + 1;
            let check =
              if
                t.config.selfcheck > 0
                && t.rescale_seen mod t.config.selfcheck = 0
              then Some { w_req = req; w_mapping = mapping }
              else None
            in
            Cached { resp = reply ~cache:d req.id status; check }
          | None ->
            Cold
              {
                req;
                order;
                canon;
                work = { w_req = req; w_mapping = mapping };
                line;
                prep = Obs.now () -. t0;
              }))
    end

let process_batch t ~pool lines =
  Obs.time t_batch @@ fun () ->
  Obs.incr c_batches;
  let admitted = ref 0 in
  let slots =
    List.map
      (fun line ->
        Obs.incr c_requests;
        classify t ~admitted line)
      lines
  in
  (* gather the parallel work in slot order: cold solves, then sampled
     self-check re-solves ride along in the same batch *)
  let works =
    List.concat_map
      (function
        | Immediate _ -> []
        | Cached { check = Some w; _ } -> [ w ]
        | Cached { check = None; _ } -> []
        | Cold c -> [ c.work ])
      slots
  in
  let solved =
    Obs.time t_solve (fun () ->
        Par.parallel_map ?pool (solve_one t.config.exact_threshold) works)
  in
  let remaining = ref solved in
  let next () =
    match !remaining with
    | [] -> (Protocol.Rejected "internal error: result underflow", 0.)
    | x :: rest ->
      remaining := rest;
      x
  in
  List.map
    (fun slot ->
      let resp =
        match slot with
        | Immediate r -> r
        | Cached { resp; check = None } -> resp
        | Cached { resp; check = Some _ } ->
          let re_status, _ = next () in
          let ok =
            match (resp.Protocol.status, re_status) with
            | Protocol.Solved a, Protocol.Solved b -> agree a b
            | _ -> false
          in
          Obs.incr (if ok then c_sc_ok else c_sc_fail);
          { resp with Protocol.self_check = Some ok }
        | Cold c ->
          let status, wall = next () in
          push_sample t "miss" (c.prep +. wall);
          Cache.insert t.cache ~inst:c.req.inst ~canon:c.canon status;
          verbatim_insert t c.line status;
          reply ~cache:Protocol.Cold c.req.id status
      in
      Protocol.render resp)
    slots

(* ---- transport ---------------------------------------------------- *)

let read_batch ic n =
  let rec go n acc =
    if n <= 0 then List.rev acc
    else
      match input_line ic with
      | line -> go (n - 1) (line :: acc)
      | exception End_of_file -> List.rev acc
  in
  go n []

let run t ~pool ic oc =
  let rec loop () =
    match read_batch ic t.config.batch with
    | [] -> ()
    | lines ->
      List.iter
        (fun r ->
          output_string oc r;
          output_char oc '\n')
        (process_batch t ~pool lines);
      flush oc;
      loop ()
  in
  loop ()
