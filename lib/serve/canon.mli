(** Structural canonicalization of solve requests — the cache key.

    Two requests that are the same instance up to a renaming of task
    ids (and of processor ids) must hit the same cache line; two
    requests whose task graphs additionally differ only by a uniform
    work factor and a different deadline are {e scaled-equivalent}
    under the CONTINUOUS model and can be answered by rescaling (the
    D⁻²/w³ laws checked by escheck's deadline-/work-scaling
    relations).

    Canonical labeling is colour refinement (1-WL) over the task
    graph {e and} the processor chains — initial colours are the
    scale-normalized weights plus degrees and processor ranks, refined
    by the multisets of successor/predecessor colours and the colours
    of the same-processor neighbours — followed, when symmetry leaves
    ties, by individualization: branch on each member of the first
    tied class and keep the lexicographically smallest encoding.  The
    result is a permutation of task ids that is invariant under
    relabeling, so the canonical encodings below are too.

    Keys are the {e full} canonical encodings, not digests: key
    equality is structural equality (the weights rounded to 12
    significant digits in the scaled key), never a hash collision.

    - {!exact_key} encodes everything the answer depends on: canonical
      structure, full-precision weights, processor chains and count,
      speed model parameters, deadline, reliability parameters.
    - {!scaled_key} exists only for CONTINUOUS BI-CRIT requests; it
      encodes the canonical structure with weights {e normalized by
      the total work} and {e omits} the deadline, the total work and
      the [fmin]/[fmax] bounds — whether a cached optimum may be
      rescaled into this instance's bounds is decided at lookup time
      ({!Cache}), not by the key. *)

type t = {
  perm : int array;  (** [perm.(i)] = canonical position of task [i] *)
  exact_key : string;
  scaled_key : string option;
  total_work : (float[@units "work"]);
}

val of_instance : order:Dag.task list array -> Protocol.instance -> t
(** Canonicalize an instance together with its resolved per-processor
    orders (see {!Protocol.resolve_order}).  Pure and total for any
    structurally valid instance; the search budget is generous and, if
    ever exhausted on a pathological symmetric graph, the function
    falls back to the identity labeling — still sound (keys remain
    exact encodings), merely blind to relabeled duplicates. *)
