(** Speed models (Section II of the paper).

    A processor can run at different speeds; which values are
    admissible, and whether the speed may change in the middle of a
    task, is the speed model:

    - {b CONTINUOUS}: any real speed in [\[fmin, fmax\]];
    - {b DISCRETE}: a finite, arbitrarily spread set [f₁ < … < fₘ],
      one speed per task execution;
    - {b VDD-HOPPING}: the same finite set, but the processor may hop
      between speeds during a task, so any point of the convex hull of
      [(1/f, f²)] trade-offs is reachable;
    - {b INCREMENTAL}: evenly spaced speeds [fmin + i·δ ≤ fmax] — the
      "potentiometer knob" model. *)

type t =
  | Continuous of {
      fmin : (float[@units "freq"]);
      fmax : (float[@units "freq"]);
    }
  | Discrete of (float[@units "freq"]) array
      (** strictly increasing, positive *)
  | Vdd_hopping of (float[@units "freq"]) array
      (** strictly increasing, positive *)
  | Incremental of {
      fmin : (float[@units "freq"]);
      fmax : (float[@units "freq"]);
      delta : (float[@units "freq"]);
    }

val continuous : fmin:(float[@units "freq"]) -> fmax:(float[@units "freq"]) -> t
(** @raise Invalid_argument unless [0 < fmin <= fmax]. *)

val discrete : (float[@units "freq"]) array -> t
(** Sorts and deduplicates.  @raise Invalid_argument on empty input or
    non-positive speeds. *)

val vdd_hopping : (float[@units "freq"]) array -> t
(** Same validation as {!discrete}.

    @raise Invalid_argument on an empty speed set. *)

val incremental :
  fmin:(float[@units "freq"]) ->
  fmax:(float[@units "freq"]) ->
  delta:(float[@units "freq"]) ->
  t
(** @raise Invalid_argument unless [0 < fmin <= fmax] and [delta > 0]. *)

val fmin : t -> (float[@units "freq"])
(** Smallest admissible speed. *)

val fmax : t -> (float[@units "freq"])
(** Largest admissible speed. *)

val levels : t -> (float[@units "freq"]) array option
(** The admissible speed set for the three discrete models (for
    INCREMENTAL, the expanded grid), [None] for CONTINUOUS. *)

val n_levels : t -> int option

val admissible :
  ?tol:(float[@units "freq"]) -> t -> (float[@units "freq"]) -> bool
(** Whether a single-execution speed value is allowed by the model.
    Under VDD-HOPPING any value between [fmin] and [fmax] is reachable
    as a mix, so the check is the interval test. *)

val round_up : t -> (float[@units "freq"]) -> (float[@units "freq"]) option
(** Smallest admissible speed [≥ f]; [None] above [fmax].  For
    CONTINUOUS (and VDD-HOPPING mixes) this clamps into the interval.
    This is the rounding step of the paper's INCREMENTAL approximation
    algorithm. *)

val round_down : t -> (float[@units "freq"]) -> (float[@units "freq"]) option
(** Largest admissible speed [≤ f]; [None] below [fmin]. *)

val bracket :
  t -> (float[@units "freq"]) -> ((float[@units "freq"]) * (float[@units "freq"])) option
(** [bracket m f] returns consecutive levels [(f₋, f₊)] with
    [f₋ ≤ f ≤ f₊] for discrete models — the two speeds used to emulate
    a continuous speed under VDD-HOPPING.  Returns [(f, f)] when [f] is
    itself a level, [None] outside the range, and [(f, f)] for
    CONTINUOUS. *)

val exec_time : w:(float[@units "work"]) -> f:(float[@units "freq"]) -> (float[@units "time"])
(** [w / f]: duration of a task of weight [w] at speed [f]. *)

val energy : w:(float[@units "work"]) -> f:(float[@units "freq"]) -> (float[@units "energy"])
(** [w·f²]: dynamic energy of executing weight [w] at speed [f]
    (power [f³] during [w/f] time units). *)

val pp : Format.formatter -> t -> unit
