type t =
  | Continuous of { fmin : float; fmax : float }
  | Discrete of float array
  | Vdd_hopping of float array
  | Incremental of { fmin : float; fmax : float; delta : float }

let check_range ~fmin ~fmax =
  if not (0. < fmin && fmin <= fmax) then
    invalid_arg "Speed: need 0 < fmin <= fmax"

let continuous ~fmin ~fmax =
  check_range ~fmin ~fmax;
  Continuous { fmin; fmax }

let normalise_levels speeds =
  if Array.length speeds = 0 then invalid_arg "Speed: empty speed set";
  Array.iter (fun f -> if f <= 0. then invalid_arg "Speed: non-positive speed") speeds;
  let sorted = Array.copy speeds in
  Array.sort Float.compare sorted;
  let uniq =
    Array.fold_left
      (fun acc f ->
        match acc with prev :: _ when f <= prev -> acc | _ -> f :: acc)
      [] sorted
  in
  Array.of_list (List.rev uniq)

let discrete speeds = Discrete (normalise_levels speeds)
let vdd_hopping speeds = Vdd_hopping (normalise_levels speeds)

let incremental ~fmin ~fmax ~delta =
  check_range ~fmin ~fmax;
  if delta <= 0. then invalid_arg "Speed: need delta > 0";
  Incremental { fmin; fmax; delta }

let incremental_grid ~fmin ~fmax ~delta =
  let n = int_of_float (Float.floor (((fmax -. fmin) /. delta) +. 1e-9)) in
  Array.init (n + 1) (fun i -> fmin +. (float_of_int i *. delta))

let fmin = function
  | Continuous { fmin; _ } | Incremental { fmin; _ } -> fmin
  | Discrete levels | Vdd_hopping levels -> levels.(0)

let fmax = function
  | Continuous { fmax; _ } | Incremental { fmax; _ } -> fmax
  | Discrete levels | Vdd_hopping levels -> levels.(Array.length levels - 1)

let levels = function
  | Continuous _ -> None
  | Discrete l | Vdd_hopping l -> Some (Array.copy l)
  | Incremental { fmin; fmax; delta } -> Some (incremental_grid ~fmin ~fmax ~delta)

let n_levels t = Option.map Array.length (levels t)

let admissible ?(tol = 1e-9) t f =
  match t with
  | Continuous _ | Vdd_hopping _ -> f >= fmin t -. tol && f <= fmax t +. tol
  | Discrete l -> Array.exists (fun g -> Float.abs (g -. f) <= tol) l
  | Incremental { fmin; fmax; delta } ->
    if f < fmin -. tol || f > fmax +. tol then false
    else begin
      let k = Float.round ((f -. fmin) /. delta) in
      Float.abs (f -. (fmin +. (k *. delta))) <= tol
    end

let round_up t f =
  match t with
  | Continuous { fmin; fmax } ->
    if f > fmax then None else Some (Float.max fmin f)
  | Vdd_hopping l ->
    let hi = l.(Array.length l - 1) in
    if f > hi then None else Some (Float.max l.(0) f)
  | Discrete l ->
    let n = Array.length l in
    let rec find i = if i >= n then None else if l.(i) >= f then Some l.(i) else find (i + 1) in
    find 0
  | Incremental { fmin; fmax; delta } ->
    if f > fmax then None
    else if f <= fmin then Some fmin
    else begin
      let k = Float.ceil (((f -. fmin) /. delta) -. 1e-12) in
      let v = fmin +. (k *. delta) in
      if v > fmax +. 1e-12 then None else Some (Float.min v fmax)
    end

let round_down t f =
  match t with
  | Continuous { fmin; fmax } -> if f < fmin then None else Some (Float.min fmax f)
  | Vdd_hopping l ->
    if f < l.(0) then None else Some (Float.min l.(Array.length l - 1) f)
  | Discrete l ->
    let rec find i acc =
      if i >= Array.length l then acc
      else if l.(i) <= f then find (i + 1) (Some l.(i))
      else acc
    in
    find 0 None
  | Incremental { fmin; fmax; delta } ->
    if f < fmin then None
    else begin
      let k = Float.floor (((f -. fmin) /. delta) +. 1e-12) in
      let v = Float.min (fmin +. (k *. delta)) fmax in
      Some v
    end

let bracket t f =
  match t with
  | Continuous { fmin; fmax } ->
    if f < fmin || f > fmax then None else Some (f, f)
  | Discrete _ | Vdd_hopping _ | Incremental _ -> (
    match (round_down t f, round_up t f) with
    | Some lo, Some hi -> Some (lo, hi)
    | _ -> None)

let exec_time ~w ~f = w /. f
let energy ~w ~f = w *. f *. f

let pp ppf = function
  | Continuous { fmin; fmax } ->
    Format.fprintf ppf "CONTINUOUS [%g, %g]" fmin fmax
  | Discrete l ->
    Format.fprintf ppf "DISCRETE {%s}"
      (String.concat ", " (List.map (Printf.sprintf "%g") (Array.to_list l)))
  | Vdd_hopping l ->
    Format.fprintf ppf "VDD-HOPPING {%s}"
      (String.concat ", " (List.map (Printf.sprintf "%g") (Array.to_list l)))
  | Incremental { fmin; fmax; delta } ->
    Format.fprintf ppf "INCREMENTAL [%g, %g] step %g" fmin fmax delta
