(* Bechamel benchmarks: one Test.make per experiment table (E1..E12),
   measuring the cost of the algorithm that regenerates it.  Run with:
   dune exec bench/main.exe

   Besides the human-readable OLS table, the harness writes a
   machine-readable baseline (default BENCH_PR1.json): every experiment
   run once under Es_obs telemetry, recording wall time plus the
   solver-work counters (LP solves, simplex pivots, Newton iterations,
   subsets explored...).  Later perf PRs diff against this trajectory.

     dune exec bench/main.exe                      # bechamel + JSON
     dune exec bench/main.exe -- --json-only       # skip bechamel (CI smoke)
     dune exec bench/main.exe -- --out other.json  # change the output path *)

open Bechamel
open Toolkit
module Obs = Es_obs.Obs

let fmin = 0.2
let fmax = 1.0
let levels = [| 0.2; 0.4; 0.6; 0.8; 1.0 |]
let rel = Rel.make ~lambda0:1e-5 ~sensitivity:3. ~fmin ~fmax ~frel:0.8 ()

(* Fixed instances, prepared once so staged closures only measure the
   algorithms themselves. *)

let fork_dag =
  let rng = Es_util.Rng.create ~seed:1 in
  Generators.fork rng ~n:16 ~wlo:0.5 ~whi:3.

let fork_mapping = Mapping.one_task_per_proc fork_dag
let fork_deadline = 2. *. List_sched.makespan_at_speed fork_mapping ~f:fmax

let sp =
  let rng = Es_util.Rng.create ~seed:2 in
  Generators.random_sp rng ~n:24 ~wlo:0.5 ~whi:3.

let layered_mapping, layered_deadline =
  let rng = Es_util.Rng.create ~seed:3 in
  let dag = Generators.random_layered rng ~layers:4 ~width:3 ~density:0.5 ~wlo:1. ~whi:3. in
  let m = List_sched.schedule dag ~p:3 ~priority:List_sched.Bottom_level in
  (m, 1.6 *. List_sched.makespan_at_speed m ~f:fmax)

let small_mapping, small_deadline =
  let rng = Es_util.Rng.create ~seed:4 in
  let dag = Generators.random_layered rng ~layers:3 ~width:3 ~density:0.5 ~wlo:1. ~whi:3. in
  let m = List_sched.schedule dag ~p:2 ~priority:List_sched.Bottom_level in
  (m, 1.5 *. List_sched.makespan_at_speed m ~f:fmax)

let chain_mapping, chain_deadline =
  let rng = Es_util.Rng.create ~seed:5 in
  let dag = Generators.chain rng ~n:10 ~wlo:0.5 ~whi:3. in
  let m = Mapping.single_processor dag in
  (m, 2.5 *. Dag.total_weight dag /. fmax)

let vdd_chain_mapping, vdd_chain_deadline =
  let rng = Es_util.Rng.create ~seed:6 in
  let dag = Generators.chain rng ~n:6 ~wlo:0.5 ~whi:2. in
  let m = Mapping.single_processor dag in
  (m, 2. *. Dag.total_weight dag /. fmax)

let repl_weights =
  let rng = Es_util.Rng.create ~seed:7 in
  Es_util.Rng.sample_weights rng ~n:8 ~lo:0.5 ~hi:3.

let repl_deadline = 2. *. Es_util.Futil.sum repl_weights /. fmax

let sim_schedule =
  let speeds = Array.make (Dag.n (Mapping.dag chain_mapping)) 0.5 in
  Schedule.of_speeds chain_mapping ~speeds

let bounds m =
  let n = Dag.n (Mapping.dag m) in
  (Array.make n fmin, Array.make n fmax)

let expect_some name f () = match f () with Some _ -> () | None -> failwith name

(* Every experiment as a named thunk: bechamel stages them for OLS
   timing, the JSON baseline runs them once under telemetry. *)
let experiments : (string * (unit -> unit)) list =
  [
    (* E1: fork closed form *)
    ( "e1-fork-closed-form",
      fun () ->
        let root = Dag.weight fork_dag 0 in
        let children = Array.init 16 (fun i -> Dag.weight fork_dag (i + 1)) in
        ignore
          (Bicrit_continuous.fork_speeds ~root ~children ~deadline:fork_deadline ~fmax) );
    (* E1/E2: barrier convex solver *)
    ( "e1-barrier-solver",
      expect_some "e1-barrier-solver" (fun () ->
          let lo, hi = bounds fork_mapping in
          Bicrit_continuous.solve_general ~lo ~hi ~deadline:fork_deadline fork_mapping) );
    (* E2: SP recursion *)
    ( "e2-sp-recursion",
      fun () ->
        ignore (Bicrit_continuous.sp_speeds sp ~deadline:(2. *. Sp.total_weight sp)) );
    (* E3: VDD-HOPPING LP *)
    ( "e3-vdd-lp",
      expect_some "e3-vdd-lp" (fun () ->
          Bicrit_vdd.solve ~deadline:layered_deadline ~levels layered_mapping) );
    (* E4: incremental approximation *)
    ( "e4-incremental-approx",
      expect_some "e4-incremental-approx" (fun () ->
          Bicrit_incremental.approximate ~deadline:layered_deadline ~fmin ~fmax
            ~delta:0.1 layered_mapping) );
    (* E5: discrete exact B&B *)
    ( "e5-discrete-bb",
      expect_some "e5-discrete-bb" (fun () ->
          Bicrit_discrete.solve_exact ?node_limit:None ~deadline:small_deadline ~levels
            small_mapping) );
    (* E6: tri-crit chain greedy *)
    ( "e6-tricrit-chain-greedy",
      expect_some "e6-tricrit-chain-greedy" (fun () ->
          Tricrit_chain.solve_greedy ~rel ~deadline:chain_deadline chain_mapping) );
    (* E7: tri-crit fork polynomial algorithm *)
    ( "e7-tricrit-fork-poly",
      expect_some "e7-tricrit-fork-poly" (fun () ->
          Tricrit_fork.solve ?grid:None ~rel ~deadline:fork_deadline fork_dag) );
    (* E8: best-of heuristics *)
    ( "e8-heuristics-best-of",
      expect_some "e8-heuristics-best-of" (fun () ->
          Heuristics.best_of ~rel ~deadline:layered_deadline layered_mapping) );
    (* E9: tri-crit vdd fixed-subset LP *)
    ( "e9-tricrit-vdd-lp",
      expect_some "e9-tricrit-vdd-lp" (fun () ->
          let n = Dag.n (Mapping.dag vdd_chain_mapping) in
          Tricrit_vdd.solve_subset ~rel ~deadline:vdd_chain_deadline ~levels
            vdd_chain_mapping
            ~subset:(Array.init n (fun i -> i mod 2 = 0))) );
    (* E9b: split refinement with the probe cache *)
    ( "e9-tricrit-vdd-refine",
      expect_some "e9-tricrit-vdd-refine" (fun () ->
          let n = Dag.n (Mapping.dag vdd_chain_mapping) in
          let subset = Array.init n (fun i -> i mod 2 = 0) in
          match
            Tricrit_vdd.solve_subset ~rel ~deadline:vdd_chain_deadline ~levels
              vdd_chain_mapping ~subset
          with
          | None -> None
          | Some sol ->
            Some
              (Tricrit_vdd.refine_splits ?rounds:None ?use_cache:None ~rel
                 ~deadline:vdd_chain_deadline ~levels vdd_chain_mapping sol)) );
    (* E10: fault-injection simulator (1000 trials) *)
    ( "e10-sim-1000-trials",
      fun () ->
        ignore
          (Sim.monte_carlo (Es_util.Rng.create ~seed:8) ~rel ~trials:1000 sim_schedule)
    );
    (* E11: list scheduling *)
    ( "e11-list-scheduling",
      let rng = Es_util.Rng.create ~seed:9 in
      let dag =
        Generators.random_layered rng ~layers:6 ~width:5 ~density:0.4 ~wlo:1. ~whi:3.
      in
      fun () -> ignore (List_sched.schedule dag ~p:4 ~priority:List_sched.Bottom_level) );
    (* E12: replication greedy *)
    ( "e12-replication-greedy",
      expect_some "e12-replication-greedy" (fun () ->
          Replication.solve_greedy ~rel ~deadline:repl_deadline ~weights:repl_weights) );
    (* E13: exact general-DAG tri-crit (2^n barrier solves, small n) *)
    ( "e13-tricrit-exact-n6",
      expect_some "e13-tricrit-exact-n6" (fun () ->
          Tricrit_exact.solve ?max_n:None ~rel ~deadline:vdd_chain_deadline
            vdd_chain_mapping) );
    (* E14: checkpointing segmentation *)
    ( "e14-checkpointing",
      expect_some "e14-checkpointing" (fun () ->
          (* worst case re-runs every segment: needs more than 2x slack *)
          Checkpointing.solve ?speed_grid:None ~rel ~checkpoint_work:0.2
            ~deadline:(2. *. repl_deadline) ~weights:repl_weights) );
    (* E15: static-power closed form *)
    ( "e15-power-ablation",
      expect_some "e15-power-ablation" (fun () ->
          Power.ablation_penalty ~static:0.25 ~weights:repl_weights
            ~deadline:repl_deadline ~fmin:0.05 ~fmax) );
    (* chain knapsack DP *)
    ( "e6-tricrit-chain-dp",
      expect_some "e6-tricrit-chain-dp" (fun () ->
          Tricrit_chain.solve_dp ?buckets:None ~rel ~deadline:chain_deadline
            chain_mapping) );
  ]

let tests =
  List.map (fun (name, f) -> Test.make ~name (Staged.stage f)) experiments

(* ------------------------------------------------------------------ *)
(* bechamel OLS table                                                  *)
(* ------------------------------------------------------------------ *)

let benchmark () =
  let ols = Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |] in
  let instances = Instance.[ monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:500 ~quota:(Time.second 0.5) ~kde:(Some 500) () in
  let raw = Benchmark.all cfg instances (Test.make_grouped ~name:"energy_sched" tests) in
  let results = List.map (fun instance -> Analyze.all ols instance raw) instances in
  Analyze.merge ols instances results

let print_table () =
  let results = benchmark () in
  match Hashtbl.find_opt results (Measure.label Instance.monotonic_clock) with
  | None -> print_endline "no results"
  | Some tbl ->
    let rows = Hashtbl.fold (fun name ols acc -> (name, ols) :: acc) tbl [] in
    let rows = List.sort (fun (a, _) (b, _) -> String.compare a b) rows in
    let table = Es_util.Table.create ~columns:[ "benchmark"; "time/run" ] in
    List.iter
      (fun (name, ols) ->
        let time =
          match Analyze.OLS.estimates ols with
          | Some (t :: _) ->
            if t > 1e9 then Printf.sprintf "%.3f s" (t /. 1e9)
            else if t > 1e6 then Printf.sprintf "%.3f ms" (t /. 1e6)
            else if t > 1e3 then Printf.sprintf "%.3f us" (t /. 1e3)
            else Printf.sprintf "%.1f ns" t
          | _ -> "n/a"
        in
        Es_util.Table.add_row table [ name; time ])
      rows;
    Es_util.Table.print
      ~caption:"Per-run cost of each experiment's core algorithm (OLS time estimate)"
      table

(* ------------------------------------------------------------------ *)
(* JSON baseline                                                       *)
(* ------------------------------------------------------------------ *)

let baseline_json () =
  let open Es_obs.Obs_json in
  Obs.enable ();
  let entries =
    Fun.protect
      ~finally:(fun () ->
        Obs.disable ();
        Obs.reset ())
      (fun () ->
        List.map
          (fun (name, f) ->
            Obs.reset ();
            let t0 = Obs.now () in
            f ();
            let wall = Obs.now () -. t0 in
            Obj
              [
                ("name", Str name);
                ("wall_s", Num wall);
                ("telemetry", Obs.to_json (Obs.snapshot ()));
              ])
          experiments)
  in
  Obj
    [
      ("schema", Str "esched-bench/1");
      ("baseline", Str "PR1");
      ("runs_per_experiment", Num 1.);
      ("experiments", List entries);
    ]

let write_baseline path =
  Bench_common.write_json ~path (baseline_json ());
  Printf.printf "baseline: wrote %s (%d experiments)\n" path (List.length experiments)

(* ------------------------------------------------------------------ *)
(* LP scaling curves (--lp-scaling): BENCH_PR10.json                   *)
(* ------------------------------------------------------------------ *)

(* Scaling behaviour of the revised sparse simplex (PR10) against the
   retained dense tableau: task-count curve n ∈ {10², 10³, 10⁴} on the
   5-level VDD menu, menu curve m ∈ {5, 25, 100} speeds at n = 10²,
   each split into single-solve cost and a warm-chained deadline
   sweep.  Full solves that would take minutes (dense at n ≥ 10³,
   anything at n = 10⁴) are recorded as explicit power-law
   extrapolations ("extrapolated": true, fitted from the measured
   sizes) rather than silently dropped or silently endured. *)
module Lp_scaling = struct
  module Problem = Es_lp.Problem
  module Lp_cert = Es_check.Lp_cert
  open Es_obs.Obs_json

  let levels5 = [| 0.2; 0.4; 0.6; 0.8; 1.0 |]
  let sweep_k = 20

  let chain_mapping n =
    let rng = Es_util.Rng.create ~seed:(100 + n) in
    Mapping.single_processor (Generators.chain rng ~n ~wlo:0.5 ~whi:2.)

  let base_deadline mapping = 2. *. Dag.total_weight (Mapping.dag mapping)

  let lp_at ~levels mapping scale =
    Bicrit_vdd.lp ~deadline:(scale *. base_deadline mapping) ~levels mapping

  let revised_cold ~levels mapping =
    let t, o = Bench_common.wall (fun () -> Problem.solve (lp_at ~levels mapping 1.)) in
    match o with
    | Problem.Solution _ -> t
    | Problem.Infeasible | Problem.Unbounded -> failwith "lp-scaling: cold solve not optimal"

  let dense_cold ~levels mapping =
    let lp = lp_at ~levels mapping 1. in
    let obj = Problem.objective_coeffs lp in
    let rows = Problem.constraints lp in
    let t, o = Bench_common.wall (fun () -> Es_lp.Simplex.solve_dense ~obj rows) in
    match o with
    | Es_lp.Simplex.Optimal _ -> t
    | Es_lp.Simplex.Infeasible | Es_lp.Simplex.Unbounded ->
      failwith "lp-scaling: dense solve not optimal"

  (* Warm-chained sweep over [sweep_k] deadlines (1% steps), certifying
     every optimum against the raw LP statement.  Returns total wall,
     and whether all solves were optimal and certified. *)
  let warm_sweep ~levels mapping =
    let certified = ref true in
    let basis = ref None in
    let t, () =
      Bench_common.wall (fun () ->
          for i = 0 to sweep_k - 1 do
            let lp = lp_at ~levels mapping (1. +. (0.01 *. float_of_int i)) in
            let o, b = Problem.solve_warm ?basis:!basis lp in
            basis := b;
            match o with
            | Problem.Solution s -> (
              match Lp_cert.certify_problem lp s with
              | Lp_cert.Certified _ -> ()
              | Lp_cert.Rejected _ -> certified := false)
            | Problem.Infeasible | Problem.Unbounded -> certified := false
          done)
    in
    (t, !certified)

  (* Least-squares power-law fit t = c·n^k on log-log axes. *)
  let fit_power points =
    let n = float_of_int (List.length points) in
    let lx = List.map (fun (x, _) -> log x) points in
    let ly = List.map (fun (_, y) -> log y) points in
    let sum = List.fold_left ( +. ) 0. in
    let sx = sum lx and sy = sum ly in
    let sxx = sum (List.map (fun x -> x *. x) lx) in
    let sxy = sum (List.map2 ( *. ) lx ly) in
    let k = ((n *. sxy) -. (sx *. sy)) /. ((n *. sxx) -. (sx *. sx)) in
    let c = exp ((sy -. (k *. sx)) /. n) in
    (c, k)

  let eval_power (c, k) x = c *. (x ** k)

  (* Differential corpus: seeded random LPs with mixed row senses,
     dense vs revised (cold, then warm re-solve from the cold basis);
     any outcome-class mismatch, objective divergence beyond rtol 1e-8,
     or uncertified optimum counts as a disagreement. *)
  let differential ~trials =
    let disagreements = ref 0 in
    for seed = 1 to trials do
      let rng = Es_util.Rng.create ~seed:(9000 + seed) in
      let nv = 2 + Es_util.Rng.int rng 3 in
      let nr = 2 + Es_util.Rng.int rng 4 in
      let coeffs () =
        Array.init nv (fun _ ->
            if Es_util.Rng.uniform_in rng 0. 1. < 0.25 then 0.
            else Es_util.Rng.uniform_in rng (-2.) 2.)
      in
      let obj =
        Array.init nv (fun _ ->
            if Es_util.Rng.uniform_in rng 0. 1. < 0.85 then Es_util.Rng.uniform_in rng 0.1 2.
            else Es_util.Rng.uniform_in rng (-1.) 0.)
      in
      let rows =
        List.init nr (fun _ ->
            let relation =
              match Es_util.Rng.int rng 3 with
              | 0 -> Es_lp.Simplex.Le
              | 1 -> Es_lp.Simplex.Ge
              | _ -> Es_lp.Simplex.Eq
            in
            { Es_lp.Simplex.coeffs = coeffs (); relation; rhs = Es_util.Rng.uniform_in rng (-2.) 4. })
      in
      let sp = Es_lp.Sparse.of_rows ~obj rows in
      let dense = Es_lp.Simplex.solve_dense ~obj rows in
      let cold, basis = Es_lp.Revised.solve sp in
      let ok_certified o =
        match Lp_cert.certify_outcome ~obj ~constraints:rows o with
        | None | Some (Lp_cert.Certified _) -> true
        | Some (Lp_cert.Rejected _) -> false
      in
      let agree a b =
        match (a, b) with
        | Es_lp.Simplex.Optimal { objective = x; _ }, Es_lp.Simplex.Optimal { objective = y; _ }
          ->
          Float.abs (x -. y) <= 1e-8 *. Float.max 1. (Float.max (Float.abs x) (Float.abs y))
        | Es_lp.Simplex.Infeasible, Es_lp.Simplex.Infeasible
        | Es_lp.Simplex.Unbounded, Es_lp.Simplex.Unbounded ->
          true
        | _ -> false
      in
      let warm_ok =
        match basis with
        | None -> true
        | Some b ->
          let warm, _ = Es_lp.Revised.solve_from b sp in
          agree cold warm && ok_certified warm
      in
      if not (agree dense cold && ok_certified cold && warm_ok) then incr disagreements
    done;
    !disagreements

  let run ~gate =
    (* fit points for the two solvers (dense stops where it gets slow) *)
    let fit_sizes_dense = [ 50; 100; 200 ] in
    let fit_sizes_revised = [ 50; 100; 200; 500; 1000 ] in
    let measure sizes solver =
      List.map
        (fun n ->
          let t = solver ~levels:levels5 (chain_mapping n) in
          Printf.printf "  measured n=%d: %.3fs\n%!" n t;
          (float_of_int n, t))
        sizes
    in
    print_endline "lp-scaling: dense single-solve fit points";
    let dense_pts = measure fit_sizes_dense dense_cold in
    print_endline "lp-scaling: revised single-solve fit points";
    let revised_pts = measure fit_sizes_revised revised_cold in
    let dense_fit = fit_power dense_pts in
    let revised_fit = fit_power revised_pts in
    let lookup pts n = List.assoc_opt (float_of_int n) pts in
    (* task-count curve on the 5-level menu *)
    let task_curve =
      List.map
        (fun n ->
          let fn = float_of_int n in
          let revised_s, revised_ex =
            match lookup revised_pts n with
            | Some t -> (t, false)
            | None -> (eval_power revised_fit fn, true)
          in
          let dense_s, dense_ex =
            match lookup dense_pts n with
            | Some t -> (t, false)
            | None -> (eval_power dense_fit fn, true)
          in
          let sweep =
            if n > 1000 then
              Obj
                [
                  ("skipped_reason", Str "full solves at this size are extrapolated");
                  ("k", Num (float_of_int sweep_k));
                ]
            else begin
              let wall, certified = warm_sweep ~levels:levels5 (chain_mapping n) in
              let per_solve = wall /. float_of_int sweep_k in
              Printf.printf
                "  n=%d warm sweep: %.2fs total, %.3fs/solve (dense %.3fs/solve%s)\n%!" n wall
                per_solve dense_s
                (if dense_ex then ", extrapolated" else "");
              Obj
                [
                  ("k", Num (float_of_int sweep_k));
                  ("wall_s", Num wall);
                  ("per_solve_s", Num per_solve);
                  ("certified_all", Bool certified);
                  ("cold_sweep_s_equiv", Num (revised_s *. float_of_int sweep_k));
                  ("speedup_vs_cold", Num (revised_s /. per_solve));
                  ("speedup_vs_dense", Num (dense_s /. per_solve));
                ]
            end
          in
          ( n,
            Obj
              [
                ("n", Num fn);
                ("revised_cold_s", Num revised_s);
                ("revised_extrapolated", Bool revised_ex);
                ("dense_cold_s", Num dense_s);
                ("dense_extrapolated", Bool dense_ex);
                ("sweep", sweep);
              ] ))
        [ 100; 1000; 10_000 ]
    in
    (* menu curve at n = 100 *)
    let menu_curve =
      List.map
        (fun m ->
          let levels =
            Array.init m (fun i ->
                0.1 +. (0.9 *. float_of_int i /. float_of_int (max 1 (m - 1))))
          in
          let mapping = chain_mapping 100 in
          let cold = revised_cold ~levels mapping in
          let wall, certified = warm_sweep ~levels mapping in
          Printf.printf "  n=100 m=%d: cold %.3fs, warm sweep %.2fs\n%!" m cold wall;
          Obj
            [
              ("levels", Num (float_of_int m));
              ("revised_cold_s", Num cold);
              ("sweep", Obj
                 [
                   ("k", Num (float_of_int sweep_k));
                   ("wall_s", Num wall);
                   ("per_solve_s", Num (wall /. float_of_int sweep_k));
                   ("certified_all", Bool certified);
                 ]);
            ])
        [ 5; 25; 100 ]
    in
    print_endline "lp-scaling: differential corpus";
    let diff_trials = 200 in
    let disagreements = differential ~trials:diff_trials in
    Printf.printf "  %d trials, %d disagreements\n%!" diff_trials disagreements;
    (* the gate: warm sweep >= 5x the dense baseline at n = 10^3, all
       sweep solves certified, zero differential disagreements *)
    let threshold = 5. in
    let gate_entry =
      match List.find_opt (fun (n, _) -> n = 1000) task_curve with
      | Some (_, entry) -> entry
      | None -> failwith "lp-scaling: no n=1000 curve point for the gate"
    in
    let gate_speedup, gate_certified =
      match member "sweep" gate_entry with
      | Some sweep -> (
        ( (match member "speedup_vs_dense" sweep with Some (Num s) -> s | _ -> 0.),
          match member "certified_all" sweep with Some (Bool b) -> b | _ -> false ))
      | None -> (0., false)
    in
    let certified_all_sweeps =
      gate_certified
      && List.for_all
           (fun e ->
             match member "sweep" e with
             | Some sweep -> (
               match member "certified_all" sweep with Some (Bool b) -> b | _ -> true)
             | None -> true)
           menu_curve
    in
    let passed =
      gate_speedup >= threshold && certified_all_sweeps && disagreements = 0
    in
    Printf.printf
      "gate: warm sweep at n=1000 is %.1fx dense (threshold %.0fx), certified=%b, \
       differential disagreements=%d -> %s\n%!"
      gate_speedup threshold certified_all_sweeps disagreements
      (if passed then "PASS" else "FAIL");
    let doc =
      Obj
        [
          ("schema", Str "esched-bench/3");
          ("baseline", Str "PR10");
          ("sweep_deadlines", Num (float_of_int sweep_k));
          ("task_scaling", List (List.map snd task_curve));
          ("menu_scaling", List menu_curve);
          ( "dense_fit",
            Obj [ ("c", Num (fst dense_fit)); ("k", Num (snd dense_fit)) ] );
          ( "revised_fit",
            Obj [ ("c", Num (fst revised_fit)); ("k", Num (snd revised_fit)) ] );
          ( "differential",
            Obj
              [
                ("trials", Num (float_of_int diff_trials));
                ("disagreements", Num (float_of_int disagreements));
              ] );
          ( "gate",
            Obj
              [
                ("applied", Bool gate);
                ("threshold_speedup", Num threshold);
                ("at_n", Num 1000.);
                ("speedup_vs_dense", Num gate_speedup);
                ("certified_all_sweeps", Bool certified_all_sweeps);
                ("differential_disagreements", Num (float_of_int disagreements));
                ("passed", Bool passed);
              ] );
        ]
    in
    (doc, passed)
end

let () =
  let argv = Array.to_list Sys.argv in
  if List.mem "--lp-scaling" argv then begin
    let gate = List.mem "--gate" argv in
    let doc, passed = Lp_scaling.run ~gate in
    let path = Bench_common.out_path ~default:"BENCH_PR10.json" argv in
    Bench_common.write_json ~path doc;
    Printf.printf "lp-scaling: wrote %s\n" path;
    if gate && not passed then exit 1
  end
  else begin
    let json_only = List.mem "--json-only" argv in
    if not json_only then print_table ();
    write_baseline (Bench_common.out_path ~default:"BENCH_PR1.json" argv)
  end
