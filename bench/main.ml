(* Bechamel benchmarks: one Test.make per experiment table (E1..E12),
   measuring the cost of the algorithm that regenerates it.  Run with:
   dune exec bench/main.exe

   Besides the human-readable OLS table, the harness writes a
   machine-readable baseline (default BENCH_PR1.json): every experiment
   run once under Es_obs telemetry, recording wall time plus the
   solver-work counters (LP solves, simplex pivots, Newton iterations,
   subsets explored...).  Later perf PRs diff against this trajectory.

     dune exec bench/main.exe                      # bechamel + JSON
     dune exec bench/main.exe -- --json-only       # skip bechamel (CI smoke)
     dune exec bench/main.exe -- --out other.json  # change the output path *)

open Bechamel
open Toolkit
module Obs = Es_obs.Obs

let fmin = 0.2
let fmax = 1.0
let levels = [| 0.2; 0.4; 0.6; 0.8; 1.0 |]
let rel = Rel.make ~lambda0:1e-5 ~sensitivity:3. ~fmin ~fmax ~frel:0.8 ()

(* Fixed instances, prepared once so staged closures only measure the
   algorithms themselves. *)

let fork_dag =
  let rng = Es_util.Rng.create ~seed:1 in
  Generators.fork rng ~n:16 ~wlo:0.5 ~whi:3.

let fork_mapping = Mapping.one_task_per_proc fork_dag
let fork_deadline = 2. *. List_sched.makespan_at_speed fork_mapping ~f:fmax

let sp =
  let rng = Es_util.Rng.create ~seed:2 in
  Generators.random_sp rng ~n:24 ~wlo:0.5 ~whi:3.

let layered_mapping, layered_deadline =
  let rng = Es_util.Rng.create ~seed:3 in
  let dag = Generators.random_layered rng ~layers:4 ~width:3 ~density:0.5 ~wlo:1. ~whi:3. in
  let m = List_sched.schedule dag ~p:3 ~priority:List_sched.Bottom_level in
  (m, 1.6 *. List_sched.makespan_at_speed m ~f:fmax)

let small_mapping, small_deadline =
  let rng = Es_util.Rng.create ~seed:4 in
  let dag = Generators.random_layered rng ~layers:3 ~width:3 ~density:0.5 ~wlo:1. ~whi:3. in
  let m = List_sched.schedule dag ~p:2 ~priority:List_sched.Bottom_level in
  (m, 1.5 *. List_sched.makespan_at_speed m ~f:fmax)

let chain_mapping, chain_deadline =
  let rng = Es_util.Rng.create ~seed:5 in
  let dag = Generators.chain rng ~n:10 ~wlo:0.5 ~whi:3. in
  let m = Mapping.single_processor dag in
  (m, 2.5 *. Dag.total_weight dag /. fmax)

let vdd_chain_mapping, vdd_chain_deadline =
  let rng = Es_util.Rng.create ~seed:6 in
  let dag = Generators.chain rng ~n:6 ~wlo:0.5 ~whi:2. in
  let m = Mapping.single_processor dag in
  (m, 2. *. Dag.total_weight dag /. fmax)

let repl_weights =
  let rng = Es_util.Rng.create ~seed:7 in
  Es_util.Rng.sample_weights rng ~n:8 ~lo:0.5 ~hi:3.

let repl_deadline = 2. *. Es_util.Futil.sum repl_weights /. fmax

let sim_schedule =
  let speeds = Array.make (Dag.n (Mapping.dag chain_mapping)) 0.5 in
  Schedule.of_speeds chain_mapping ~speeds

let bounds m =
  let n = Dag.n (Mapping.dag m) in
  (Array.make n fmin, Array.make n fmax)

let expect_some name f () = match f () with Some _ -> () | None -> failwith name

(* Every experiment as a named thunk: bechamel stages them for OLS
   timing, the JSON baseline runs them once under telemetry. *)
let experiments : (string * (unit -> unit)) list =
  [
    (* E1: fork closed form *)
    ( "e1-fork-closed-form",
      fun () ->
        let root = Dag.weight fork_dag 0 in
        let children = Array.init 16 (fun i -> Dag.weight fork_dag (i + 1)) in
        ignore
          (Bicrit_continuous.fork_speeds ~root ~children ~deadline:fork_deadline ~fmax) );
    (* E1/E2: barrier convex solver *)
    ( "e1-barrier-solver",
      expect_some "e1-barrier-solver" (fun () ->
          let lo, hi = bounds fork_mapping in
          Bicrit_continuous.solve_general ~lo ~hi ~deadline:fork_deadline fork_mapping) );
    (* E2: SP recursion *)
    ( "e2-sp-recursion",
      fun () ->
        ignore (Bicrit_continuous.sp_speeds sp ~deadline:(2. *. Sp.total_weight sp)) );
    (* E3: VDD-HOPPING LP *)
    ( "e3-vdd-lp",
      expect_some "e3-vdd-lp" (fun () ->
          Bicrit_vdd.solve ~deadline:layered_deadline ~levels layered_mapping) );
    (* E4: incremental approximation *)
    ( "e4-incremental-approx",
      expect_some "e4-incremental-approx" (fun () ->
          Bicrit_incremental.approximate ~deadline:layered_deadline ~fmin ~fmax
            ~delta:0.1 layered_mapping) );
    (* E5: discrete exact B&B *)
    ( "e5-discrete-bb",
      expect_some "e5-discrete-bb" (fun () ->
          Bicrit_discrete.solve_exact ?node_limit:None ~deadline:small_deadline ~levels
            small_mapping) );
    (* E6: tri-crit chain greedy *)
    ( "e6-tricrit-chain-greedy",
      expect_some "e6-tricrit-chain-greedy" (fun () ->
          Tricrit_chain.solve_greedy ~rel ~deadline:chain_deadline chain_mapping) );
    (* E7: tri-crit fork polynomial algorithm *)
    ( "e7-tricrit-fork-poly",
      expect_some "e7-tricrit-fork-poly" (fun () ->
          Tricrit_fork.solve ?grid:None ~rel ~deadline:fork_deadline fork_dag) );
    (* E8: best-of heuristics *)
    ( "e8-heuristics-best-of",
      expect_some "e8-heuristics-best-of" (fun () ->
          Heuristics.best_of ~rel ~deadline:layered_deadline layered_mapping) );
    (* E9: tri-crit vdd fixed-subset LP *)
    ( "e9-tricrit-vdd-lp",
      expect_some "e9-tricrit-vdd-lp" (fun () ->
          let n = Dag.n (Mapping.dag vdd_chain_mapping) in
          Tricrit_vdd.solve_subset ~rel ~deadline:vdd_chain_deadline ~levels
            vdd_chain_mapping
            ~subset:(Array.init n (fun i -> i mod 2 = 0))) );
    (* E9b: split refinement with the probe cache *)
    ( "e9-tricrit-vdd-refine",
      expect_some "e9-tricrit-vdd-refine" (fun () ->
          let n = Dag.n (Mapping.dag vdd_chain_mapping) in
          let subset = Array.init n (fun i -> i mod 2 = 0) in
          match
            Tricrit_vdd.solve_subset ~rel ~deadline:vdd_chain_deadline ~levels
              vdd_chain_mapping ~subset
          with
          | None -> None
          | Some sol ->
            Some
              (Tricrit_vdd.refine_splits ?rounds:None ?use_cache:None ~rel
                 ~deadline:vdd_chain_deadline ~levels vdd_chain_mapping sol)) );
    (* E10: fault-injection simulator (1000 trials) *)
    ( "e10-sim-1000-trials",
      fun () ->
        ignore
          (Sim.monte_carlo (Es_util.Rng.create ~seed:8) ~rel ~trials:1000 sim_schedule)
    );
    (* E11: list scheduling *)
    ( "e11-list-scheduling",
      let rng = Es_util.Rng.create ~seed:9 in
      let dag =
        Generators.random_layered rng ~layers:6 ~width:5 ~density:0.4 ~wlo:1. ~whi:3.
      in
      fun () -> ignore (List_sched.schedule dag ~p:4 ~priority:List_sched.Bottom_level) );
    (* E12: replication greedy *)
    ( "e12-replication-greedy",
      expect_some "e12-replication-greedy" (fun () ->
          Replication.solve_greedy ~rel ~deadline:repl_deadline ~weights:repl_weights) );
    (* E13: exact general-DAG tri-crit (2^n barrier solves, small n) *)
    ( "e13-tricrit-exact-n6",
      expect_some "e13-tricrit-exact-n6" (fun () ->
          Tricrit_exact.solve ?max_n:None ~rel ~deadline:vdd_chain_deadline
            vdd_chain_mapping) );
    (* E14: checkpointing segmentation *)
    ( "e14-checkpointing",
      expect_some "e14-checkpointing" (fun () ->
          (* worst case re-runs every segment: needs more than 2x slack *)
          Checkpointing.solve ?speed_grid:None ~rel ~checkpoint_work:0.2
            ~deadline:(2. *. repl_deadline) ~weights:repl_weights) );
    (* E15: static-power closed form *)
    ( "e15-power-ablation",
      expect_some "e15-power-ablation" (fun () ->
          Power.ablation_penalty ~static:0.25 ~weights:repl_weights
            ~deadline:repl_deadline ~fmin:0.05 ~fmax) );
    (* chain knapsack DP *)
    ( "e6-tricrit-chain-dp",
      expect_some "e6-tricrit-chain-dp" (fun () ->
          Tricrit_chain.solve_dp ?buckets:None ~rel ~deadline:chain_deadline
            chain_mapping) );
  ]

let tests =
  List.map (fun (name, f) -> Test.make ~name (Staged.stage f)) experiments

(* ------------------------------------------------------------------ *)
(* bechamel OLS table                                                  *)
(* ------------------------------------------------------------------ *)

let benchmark () =
  let ols = Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |] in
  let instances = Instance.[ monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:500 ~quota:(Time.second 0.5) ~kde:(Some 500) () in
  let raw = Benchmark.all cfg instances (Test.make_grouped ~name:"energy_sched" tests) in
  let results = List.map (fun instance -> Analyze.all ols instance raw) instances in
  Analyze.merge ols instances results

let print_table () =
  let results = benchmark () in
  match Hashtbl.find_opt results (Measure.label Instance.monotonic_clock) with
  | None -> print_endline "no results"
  | Some tbl ->
    let rows = Hashtbl.fold (fun name ols acc -> (name, ols) :: acc) tbl [] in
    let rows = List.sort (fun (a, _) (b, _) -> String.compare a b) rows in
    let table = Es_util.Table.create ~columns:[ "benchmark"; "time/run" ] in
    List.iter
      (fun (name, ols) ->
        let time =
          match Analyze.OLS.estimates ols with
          | Some (t :: _) ->
            if t > 1e9 then Printf.sprintf "%.3f s" (t /. 1e9)
            else if t > 1e6 then Printf.sprintf "%.3f ms" (t /. 1e6)
            else if t > 1e3 then Printf.sprintf "%.3f us" (t /. 1e3)
            else Printf.sprintf "%.1f ns" t
          | _ -> "n/a"
        in
        Es_util.Table.add_row table [ name; time ])
      rows;
    Es_util.Table.print
      ~caption:"Per-run cost of each experiment's core algorithm (OLS time estimate)"
      table

(* ------------------------------------------------------------------ *)
(* JSON baseline                                                       *)
(* ------------------------------------------------------------------ *)

let baseline_json () =
  let open Es_obs.Obs_json in
  Obs.enable ();
  let entries =
    Fun.protect
      ~finally:(fun () ->
        Obs.disable ();
        Obs.reset ())
      (fun () ->
        List.map
          (fun (name, f) ->
            Obs.reset ();
            let t0 = Obs.now () in
            f ();
            let wall = Obs.now () -. t0 in
            Obj
              [
                ("name", Str name);
                ("wall_s", Num wall);
                ("telemetry", Obs.to_json (Obs.snapshot ()));
              ])
          experiments)
  in
  Obj
    [
      ("schema", Str "esched-bench/1");
      ("baseline", Str "PR1");
      ("runs_per_experiment", Num 1.);
      ("experiments", List entries);
    ]

let write_baseline path =
  Bench_common.write_json ~path (baseline_json ());
  Printf.printf "baseline: wrote %s (%d experiments)\n" path (List.length experiments)

let () =
  let argv = Array.to_list Sys.argv in
  let json_only = List.mem "--json-only" argv in
  if not json_only then print_table ();
  write_baseline (Bench_common.out_path ~default:"BENCH_PR1.json" argv)
